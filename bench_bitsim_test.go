package partialfaults

import (
	"testing"

	"github.com/memtest/partialfaults/internal/bitsim"
	"github.com/memtest/partialfaults/internal/march"
)

// The bit-plane versus scalar engine pair below is the performance
// acceptance exhibit for the sharded march engine: the same March PF ×
// partial-fault evaluation, once word-parallel over a megabit array and
// once cell-at-a-time at the largest geometry the scalar oracle can
// sustain inside a benchmark budget. EXPERIMENTS.md records the
// per-cell speedup the two cells/s metrics imply.

// bitsimBenchEntry is the completed partial read fault the engine
// benchmarks evaluate — a Table 1 row March PF exists to catch.
func bitsimBenchEntry() march.CatalogEntry { return march.PaperFaultCatalog()[0] }

// BenchmarkBitsimMarchPF evaluates March PF against a completed partial
// fault over a 1024×1024 (1 Mi-cell) array — all victims × all 16
// ⇕-order assignments — on the bit-plane engine.
func BenchmarkBitsimMarchPF(b *testing.B) {
	const rows, cols = 1024, 1024
	test := march.MarchPF()
	entry := bitsimBenchEntry()
	eng := bitsim.New()
	b.ReportAllocs()
	b.ResetTimer()
	var det march.Detection
	for i := 0; i < b.N; i++ {
		var err error
		det, err = eng.Detects(test, rows, cols, entry)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(rows*cols)/secs, "cells/s")
	b.ReportMetric(float64(det.Caught), "caught")
	b.ReportMetric(float64(det.Scenarios), "scenarios")
}

// BenchmarkMemsimMarchPF is the scalar baseline at 16×16 — the walk ×
// victims × assignments product grows as N², which is exactly why the
// megabit geometry above is out of the oracle's reach.
func BenchmarkMemsimMarchPF(b *testing.B) {
	const rows, cols = 16, 16
	test := march.MarchPF()
	entry := bitsimBenchEntry()
	eng := march.ScalarEngine{}
	b.ReportAllocs()
	b.ResetTimer()
	var det march.Detection
	for i := 0; i < b.N; i++ {
		var err error
		det, err = eng.Detects(test, rows, cols, entry)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	secs := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(rows*cols)/secs, "cells/s")
	b.ReportMetric(float64(det.Caught), "caught")
	b.ReportMetric(float64(det.Scenarios), "scenarios")
}
