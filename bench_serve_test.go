package partialfaults

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/memtest/partialfaults/internal/service"
)

// BenchmarkServeLoad load-tests the analysis service over real HTTP:
// at least eight concurrent clients fire a mixed request stream
// (inventory sweeps, coverage matrices, detection proofs, merge
// predictions) at a pfserve instance backed by a persistent store. One
// iteration is one served request. Metrics: sustained requests/s across
// the whole run, the store hit fraction, and how many requests the
// singleflight layer collapsed into another caller's flight — the two
// mechanisms the service layer adds over the bare pipeline.
func BenchmarkServeLoad(b *testing.B) {
	srv, err := service.New(service.Config{StoreDir: b.TempDir(), Parallelism: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	requests := []struct{ path, body string }{
		{"/v1/inventory", `{"opens":[1,4],"rdefs":[1e4,1e5,1e6],"us":[0,1.1,2.2,3.3]}`},
		{"/v1/coverage", `{"tests":["MATS+"],"rows":3,"cols":2}`},
		{"/v1/matrix", `{"tests":["March PF"]}`},
		{"/v1/predict", `{"defects":[{"site":"bridge.bl.bl","ohms":2e6}]}`},
		{"/v1/inventory", `{"opens":[5],"rdefs":[1e4,1e6],"us":[0,3.3]}`},
		{"/v1/twocell", `{"test":"MATS+","rows":3,"cols":2,"offsets":[1,-1]}`},
	}

	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConnsPerHost: 64}
	var seq atomic.Uint64
	b.SetParallelism(8) // ≥8 concurrent clients even on a single-CPU host
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			r := requests[seq.Add(1)%uint64(len(requests))]
			resp, err := client.Post(ts.URL+r.path, "application/json", bytes.NewReader([]byte(r.body)))
			if err != nil {
				b.Error(err)
				return
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("%s: status %d: %s", r.path, resp.StatusCode, body)
				return
			}
		}
	})
	b.StopTimer()

	elapsed := b.Elapsed().Seconds()
	if elapsed > 0 {
		b.ReportMetric(float64(b.N)/elapsed, "req/s")
	}
	var m struct {
		SingleflightCollapsed float64 `json:"singleflight_collapsed"`
		Store                 *struct {
			Hits   float64 `json:"hits"`
			Misses float64 `json:"misses"`
		} `json:"store"`
	}
	if err := getJSON(client, ts.URL+"/v1/metrics", &m); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(m.SingleflightCollapsed, "collapsed")
	if m.Store != nil && m.Store.Hits+m.Store.Misses > 0 {
		b.ReportMetric(m.Store.Hits/(m.Store.Hits+m.Store.Misses), "store-hit-frac")
	}
}

func getJSON(client *http.Client, url string, v any) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: status %d", url, resp.StatusCode)
	}
	return json.Unmarshal(buf, v)
}
