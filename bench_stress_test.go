package partialfaults

import (
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/stress"
)

// BenchmarkStressMatrix measures the stress-condition scenario matrix
// end to end: three operating corners (nominal, low-vdd, hot) swept
// over a reduced grid through the shared pooled/memoized pipeline,
// per-corner coverage simulated, deltas and the worst-corner
// certificate assembled. One iteration is one full matrix with a cold
// memo — the realistic first-request cost; repeated requests are the
// store layer's business, measured by BenchmarkServeLoad. Metrics:
// corners per second and certificate claims evaluated per iteration.
func BenchmarkStressMatrix(b *testing.B) {
	lowVDD, err := stress.ParseSpec("low-vdd")
	if err != nil {
		b.Fatal(err)
	}
	hot, err := stress.ParseSpec("hot")
	if err != nil {
		b.Fatal(err)
	}
	var opens []defect.Open
	for _, id := range []int{1, 5} {
		o, ok := defect.ByID(id)
		if !ok {
			b.Fatalf("no open %d", id)
		}
		opens = append(opens, o)
	}
	var tests []march.Test
	for _, mt := range march.All() {
		if mt.Name == "March PF" || mt.Name == "MATS+" {
			tests = append(tests, mt)
		}
	}

	claims := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := stress.Analyze(stress.Config{
			Corners: []stress.Spec{stress.Nominal(), lowVDD, hot},
			Opens:   opens,
			RDefs:   []float64{1e4, 1e5, 1e6},
			Us:      []float64{0, 1.1, 2.2, 3.3},
			Tests:   tests,
			Rows:    2, Cols: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		claims = len(res.Certificate.Claims)
	}
	b.StopTimer()
	b.ReportMetric(float64(3*b.N)/b.Elapsed().Seconds(), "corners/s")
	b.ReportMetric(float64(claims), "claims")
}
