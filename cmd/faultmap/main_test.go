package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-open", "42"},
		{"-engine", "verilog"},
		{"-sos", "not an sos"},
		{"-open", "4", "-float", "Imaginary line"},
		{"-defect", "nowhere"},
		{"-defect", "short.bl.vdd@-5"},
		{"-twocell", "March ZZ"},
		{"-twocell", "MATS+", "-march-engine", "quantum"},
		{"-prove", "March ZZ"},
		{"-sweep", "sideways"},
	}
	for _, args := range cases {
		code, _, errw := runCLI(t, args...)
		if code == 0 {
			t.Errorf("run(%v) succeeded, want failure", args)
		}
		if errw == "" {
			t.Errorf("run(%v) failed silently", args)
		}
	}
}

func TestRunFaultMap(t *testing.T) {
	code, out, errw := runCLI(t,
		"-open", "4", "-sos", "1r1",
		"-rdef-steps", "3", "-u-steps", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "R_def") && !strings.Contains(out, "U") {
		t.Fatalf("map output:\n%s", out)
	}
}

// TestRunFaultMapTraced checks the -sweep traced path: the map on
// stdout must be byte-identical to the dense sweep's, with the
// simulated/inferred split reported on stderr.
func TestRunFaultMapTraced(t *testing.T) {
	grid := []string{"-open", "4", "-sos", "1r1", "-rdef-steps", "13", "-u-steps", "12"}
	code, dense, errw := runCLI(t, append(grid, "-sweep", "dense")...)
	if code != 0 {
		t.Fatalf("dense exit %d: %s", code, errw)
	}
	code, traced, errw := runCLI(t, append(grid, "-sweep", "traced")...)
	if code != 0 {
		t.Fatalf("traced exit %d: %s", code, errw)
	}
	if traced != dense {
		t.Errorf("traced map differs from dense map:\n--- dense ---\n%s--- traced ---\n%s", dense, traced)
	}
	if !strings.Contains(errw, "traced sweep simulated") {
		t.Errorf("missing trace stats on stderr: %q", errw)
	}
}

func TestRunFaultMapCSV(t *testing.T) {
	code, out, errw := runCLI(t,
		"-open", "4", "-sos", "1r1", "-csv",
		"-rdef-steps", "3", "-u-steps", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, ",") || len(strings.Split(strings.TrimSpace(out), "\n")) < 2 {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestRunPredictFloats(t *testing.T) {
	code, out, errw := runCLI(t, "-open", "4", "-predict")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "primary floats") {
		t.Fatalf("predict output:\n%s", out)
	}
}

func TestRunPredictMerge(t *testing.T) {
	code, out, errw := runCLI(t, "-defect", "bridge.bl.bl@2e6")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "bridge") {
		t.Fatalf("merge output:\n%s", out)
	}
}

func TestRunProveAndTwoCell(t *testing.T) {
	code, out, errw := runCLI(t, "-prove", "March PF")
	if code != 0 {
		t.Fatalf("prove exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "static detection matrix") {
		t.Fatalf("prove output:\n%s", out)
	}
	code, out, errw = runCLI(t, "-twocell", "MATS+")
	if code != 0 {
		t.Fatalf("twocell exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "certificate") {
		t.Fatalf("twocell output:\n%s", out)
	}
}

// TestRunStress drives the -stress mode end to end on a reduced grid
// and a single extra corner: the report must carry every section — the
// header, both per-corner inventories, the delta report and the
// worst-corner certificate — with the corner progress on stderr.
func TestRunStress(t *testing.T) {
	code, out, errw := runCLI(t,
		"-stress", "-corners", "low-vdd",
		"-rdef-steps", "2", "-u-steps", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	for _, want := range []string{
		"# Stress matrix — engine behav, march engine memsim",
		"## Corner nominal (nominal:",
		"## Corner low-vdd (low-vdd:vdd=0.9,vpp=0.9",
		"## Corner deltas vs nominal",
		"## Worst-corner certificate —",
		"| Sim. FFM |",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stress report missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(errw, "corner low-vdd: sweeping inventory") {
		t.Errorf("missing corner progress on stderr: %q", errw)
	}
}

// TestRunStressExplicitCorner checks the name:key=val,... derivation
// path and the traced sweep through -stress.
func TestRunStressExplicitCorner(t *testing.T) {
	code, out, errw := runCLI(t,
		"-stress", "-corners", "burn-in:temp=125,vdd=1.05", "-sweep", "traced",
		"-rdef-steps", "2", "-u-steps", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "## Corner burn-in (burn-in:vdd=1.05,vpp=1,bleq=0,vref=0,temp=125)") {
		t.Errorf("derived corner missing from report:\n%s", out)
	}
}

// TestRunStressBadCorners: invalid corner lists fail fast with exit 1.
func TestRunStressBadCorners(t *testing.T) {
	cases := [][]string{
		{"-stress", "-corners", "volcanic"},
		{"-stress", "-corners", "x:vdd=-1"},
		{"-stress", "-corners", "x:temp=500"},
		{"-stress", "-corners", "hot;hot"},
		{"-stress", "-corners", "x:warp=9"},
		{"-stress", "-march-engine", "quantum"},
		{"-stress", "-engine", "verilog"},
		{"-stress", "-sweep", "sideways"},
	}
	for _, args := range cases {
		code, _, errw := runCLI(t, args...)
		if code != 1 {
			t.Errorf("run(%v) exit %d, want 1", args, code)
		}
		if errw == "" {
			t.Errorf("run(%v) failed silently", args)
		}
	}
}
