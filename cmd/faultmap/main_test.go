package main

import (
	"bytes"
	"strings"
	"testing"
)

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunBadFlags(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-open", "42"},
		{"-engine", "verilog"},
		{"-sos", "not an sos"},
		{"-open", "4", "-float", "Imaginary line"},
		{"-defect", "nowhere"},
		{"-defect", "short.bl.vdd@-5"},
		{"-twocell", "March ZZ"},
		{"-twocell", "MATS+", "-march-engine", "quantum"},
		{"-prove", "March ZZ"},
		{"-sweep", "sideways"},
	}
	for _, args := range cases {
		code, _, errw := runCLI(t, args...)
		if code == 0 {
			t.Errorf("run(%v) succeeded, want failure", args)
		}
		if errw == "" {
			t.Errorf("run(%v) failed silently", args)
		}
	}
}

func TestRunFaultMap(t *testing.T) {
	code, out, errw := runCLI(t,
		"-open", "4", "-sos", "1r1",
		"-rdef-steps", "3", "-u-steps", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "R_def") && !strings.Contains(out, "U") {
		t.Fatalf("map output:\n%s", out)
	}
}

// TestRunFaultMapTraced checks the -sweep traced path: the map on
// stdout must be byte-identical to the dense sweep's, with the
// simulated/inferred split reported on stderr.
func TestRunFaultMapTraced(t *testing.T) {
	grid := []string{"-open", "4", "-sos", "1r1", "-rdef-steps", "13", "-u-steps", "12"}
	code, dense, errw := runCLI(t, append(grid, "-sweep", "dense")...)
	if code != 0 {
		t.Fatalf("dense exit %d: %s", code, errw)
	}
	code, traced, errw := runCLI(t, append(grid, "-sweep", "traced")...)
	if code != 0 {
		t.Fatalf("traced exit %d: %s", code, errw)
	}
	if traced != dense {
		t.Errorf("traced map differs from dense map:\n--- dense ---\n%s--- traced ---\n%s", dense, traced)
	}
	if !strings.Contains(errw, "traced sweep simulated") {
		t.Errorf("missing trace stats on stderr: %q", errw)
	}
}

func TestRunFaultMapCSV(t *testing.T) {
	code, out, errw := runCLI(t,
		"-open", "4", "-sos", "1r1", "-csv",
		"-rdef-steps", "3", "-u-steps", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, ",") || len(strings.Split(strings.TrimSpace(out), "\n")) < 2 {
		t.Fatalf("csv output:\n%s", out)
	}
}

func TestRunPredictFloats(t *testing.T) {
	code, out, errw := runCLI(t, "-open", "4", "-predict")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "primary floats") {
		t.Fatalf("predict output:\n%s", out)
	}
}

func TestRunPredictMerge(t *testing.T) {
	code, out, errw := runCLI(t, "-defect", "bridge.bl.bl@2e6")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "bridge") {
		t.Fatalf("merge output:\n%s", out)
	}
}

func TestRunProveAndTwoCell(t *testing.T) {
	code, out, errw := runCLI(t, "-prove", "March PF")
	if code != 0 {
		t.Fatalf("prove exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "static detection matrix") {
		t.Fatalf("prove output:\n%s", out)
	}
	code, out, errw = runCLI(t, "-twocell", "MATS+")
	if code != 0 {
		t.Fatalf("twocell exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "certificate") {
		t.Fatalf("twocell output:\n%s", out)
	}
}
