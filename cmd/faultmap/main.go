// Command faultmap generates an (R_def, U) fault-region map for a chosen
// open defect and sensitizing operation sequence — the tool behind the
// paper's Figures 3 and 4.
//
// Usage:
//
//	faultmap -open 4 -sos "<1r1/0/0>" [-engine behav|spice]
//	         [-rdef-min 1e3] [-rdef-max 1e7] [-rdef-steps 13]
//	         [-u-min 0] [-u-max 3.3] [-u-steps 12] [-csv]
//	         [-sweep dense|traced]
//
// -sweep traced replaces the dense grid sweep with the adaptive
// boundary tracer (DESIGN.md §14): identical map, a fraction of the
// simulations; the simulated/inferred split is reported on stderr.
//
// The -sos flag accepts either a bare SOS ("1r1", "1v [w0BL] r1v") or a
// full fault primitive whose S part is used.
//
// -twocell "March C-" (or "all") prints the two-cell coverage
// certificate for the named march test on a 4×2 array: the static
// completion pre-pass checked against the exhaustive coupling-fault
// simulation.
//
// -prove "March PF" (or "all") prints the static three-valued detection
// matrix for the named march test against the paper's partial-fault
// catalog and the two-cell catalog: proved Detects/Misses verdicts
// quantified over every geometry, placement and address order, with the
// proof trace or witness behind each verdict.
//
// -stress sweeps the full defect catalog at every operating corner
// (-corners "low-vdd;hot" or name:key=val,... derivations; default: the
// built-in corner set) and prints the per-corner Table 1 inventories,
// the corner deltas against nominal, and the worst-corner coverage
// certificate. -engine, -march-engine and the grid flags apply.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/bitsim"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
	"github.com/memtest/partialfaults/internal/numeric"
	"github.com/memtest/partialfaults/internal/report"
	"github.com/memtest/partialfaults/internal/stress"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("faultmap", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		openID    = fs.Int("open", 4, "open defect number (1-9, Figure 2)")
		sosStr    = fs.String("sos", "1r1", "sensitizing operation sequence or fault primitive")
		floatVar  = fs.String("float", "", "floating voltage to sweep (default: the open's primary group)")
		engine    = fs.String("engine", "behav", "simulation engine: behav (analytical) or spice (transient)")
		rdefMin   = fs.Float64("rdef-min", 1e3, "minimum open resistance [Ω]")
		rdefMax   = fs.Float64("rdef-max", 1e7, "maximum open resistance [Ω]")
		rdefSteps = fs.Int("rdef-steps", 13, "log-spaced resistance steps")
		uMin      = fs.Float64("u-min", 0, "minimum floating voltage [V]")
		uMax      = fs.Float64("u-max", 3.3, "maximum floating voltage [V]")
		uSteps    = fs.Int("u-steps", 12, "linear voltage steps")
		csv       = fs.Bool("csv", false, "emit CSV instead of the ASCII map")
		sweepMode = fs.String("sweep", "dense", "plane-sweep strategy: dense (simulate every grid point) or traced (adaptive boundary tracing, identical map)")
		doLint    = fs.Bool("lint", false, "run the static-analysis pre-flight and abort on errors")
		predict   = fs.Bool("predict", false, "print the statically predicted floating-line set for the open and exit")
		defSite   = fs.String("defect", "", "comma-separated short/bridge defect sites, each optionally @ohms (e.g. short.cell.gnd,bridge.cell.cell or short.bl.vdd@2e3); with -predict, prints the net-merge verdict table instead of an open's float set")
		twoCell   = fs.String("twocell", "", "march test name (or \"all\") whose two-cell coverage certificate to print; exits nonzero on an unsound certificate")
		marchEng  = fs.String("march-engine", "memsim", "march simulation backend for -twocell: memsim (scalar oracle) or bitsim (bit-plane)")
		proveTest = fs.String("prove", "", "march test name (or \"all\") whose static three-valued detection matrix to print; exits nonzero when the prover and the completion pre-pass disagree")
		doStress  = fs.Bool("stress", false, "sweep the defect catalog at every operating corner and print per-corner inventories, corner deltas and the worst-corner coverage certificate")
		cornersFl = fs.String("corners", "", "semicolon-separated corner list for -stress: built-in names (nominal, low-vdd, high-vdd, weak-precharge, hot, cold) or name:key=val,... derivations (keys vdd, vpp, bleq, vref, temp); default: the built-in set")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "faultmap: "+format+"\n", a...)
		return 1
	}

	if *doLint {
		if err := preflight(stderr); err != nil {
			return fail("%v", err)
		}
	}

	if *doStress {
		err := stressMatrix(stdout, stderr, stressOpts{
			engine: *engine, marchEngine: *marchEng,
			corners: *cornersFl, sweep: *sweepMode,
			rdefs: numeric.Logspace(*rdefMin, *rdefMax, *rdefSteps),
			us:    numeric.Linspace(*uMin, *uMax, *uSteps),
		})
		if err != nil {
			return fail("%v", err)
		}
		return 0
	}
	if *proveTest != "" {
		if err := detectionMatrix(stdout, *proveTest); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	if *twoCell != "" {
		if err := twoCellCertificates(stdout, *twoCell, *marchEng); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	if *defSite != "" {
		if err := predictMerge(stdout, *defSite); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	open, ok := defect.ByID(*openID)
	if !ok {
		return fail("unknown open %d; the paper defines opens 1-9", *openID)
	}
	if *predict {
		if err := predictFloats(stdout, open); err != nil {
			return fail("%v", err)
		}
		return 0
	}
	sos, err := parseSOSOrFP(*sosStr)
	if err != nil {
		return fail("bad -sos: %v", err)
	}
	group := open.Floats[0]
	if *floatVar != "" {
		g, ok := open.Float(defect.FloatVar(*floatVar))
		if !ok {
			return fail("open %d has no floating group %q", *openID, *floatVar)
		}
		group = g
	}
	var factory analysis.Factory
	switch *engine {
	case "behav":
		factory = behav.NewFactory(behav.DefaultParams())
	case "spice":
		factory = analysis.NewSpiceFactory(dram.Default())
	default:
		return fail("unknown engine %q", *engine)
	}

	mode, err := analysis.ParseSweepMode(*sweepMode)
	if err != nil {
		return fail("bad -sweep: %v", err)
	}
	var trace analysis.TraceCounters
	plane, err := analysis.RunSweep(mode, 0, &trace, analysis.SweepConfig{
		Factory: factory, Open: open, Float: group, SOS: sos,
		RDefs: numeric.Logspace(*rdefMin, *rdefMax, *rdefSteps),
		Us:    numeric.Linspace(*uMin, *uMax, *uSteps),
	})
	if err != nil {
		return fail("sweep: %v", err)
	}
	if mode == analysis.SweepTraced {
		ts, _ := trace.Snapshot()
		fmt.Fprintf(stderr, "faultmap: traced sweep simulated %d of %d points (%d inferred, %.1fx fewer simulations)\n",
			ts.Simulated(), ts.Points(), ts.Inferred, ts.Reduction())
	}
	if *csv {
		if err := report.WritePlaneCSV(stdout, plane); err != nil {
			return fail("csv: %v", err)
		}
		return 0
	}
	if err := report.WritePlane(stdout, plane); err != nil {
		return fail("map: %v", err)
	}
	for _, f := range analysis.IdentifyPartialFaults(plane) {
		fmt.Fprintf(stdout, "partial fault: %s observed only for U ∈ [%.2f, %.2f] V (e.g. %s)\n",
			f.FFM, f.ULow, f.UHigh, f.Example)
	}
	return 0
}

func parseSOSOrFP(s string) (fp.SOS, error) {
	if strings.HasPrefix(strings.TrimSpace(s), "<") {
		p, err := fp.Parse(s)
		if err != nil {
			return fp.SOS{}, err
		}
		return p.S, nil
	}
	return fp.ParseSOS(s)
}

// predictFloats prints the floating-line set the netlist graph predicts
// for the open — the static counterpart of the sweep's declared float
// groups. Primary nets lose their only DC drive path when the open's
// site element is cut; secondary nets are starved transitively because a
// floating control net stops reaching their access gates.
func predictFloats(w io.Writer, open defect.Open) error {
	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		return fmt.Errorf("predict: %v", err)
	}
	az := netlint.New(col.Circuit(), dram.LintModel())
	pred := az.PredictFloats([]string{dram.SiteElementName(open.Site)})
	fmt.Fprintf(w, "open %d cuts element %s\n", open.ID, dram.SiteElementName(open.Site))
	fmt.Fprintf(w, "primary floats:   %s\n", joinOrNone(pred.Primary))
	fmt.Fprintf(w, "secondary floats: %s\n", joinOrNone(pred.Secondary))
	return nil
}

// predictMerge prints the net-merge verdict table for one or more
// short/bridge defect sites, comma-separated, each optionally suffixed
// "@ohms" for a resistive (weak) bridge: which nets become electrically
// identified (transitively, across all sites at once), whether each
// merged class is supply-stuck or contested per phase, how each weak
// bridge's divider resolves, and the (empty) floating prediction — the
// paper's Section 2 negative result, proven statically.
func predictMerge(w io.Writer, arg string) error {
	catalog := map[string]defect.ShortOrBridge{}
	var sites []string
	for _, s := range defect.ShortsAndBridges() {
		sites = append(sites, s.Site)
		catalog[s.Site] = s
	}
	var spec netlint.MergeSpec
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		site, ohms := part, 0.0
		if at := strings.IndexByte(part, '@'); at >= 0 {
			site = part[:at]
			v, err := strconv.ParseFloat(part[at+1:], 64)
			if err != nil || v < 0 {
				return fmt.Errorf("bad resistance in %q; want e.g. %s@2e3", part, site)
			}
			ohms = v
		}
		sb, ok := catalog[site]
		if !ok {
			return fmt.Errorf("unknown defect site %q; catalog: %s", site, strings.Join(sites, ", "))
		}
		fmt.Fprintf(w, "%s: %s\n", sb.Name(), sb.Description)
		spec.Elems = append(spec.Elems, netlint.MergeElem{
			Name: dram.SiteElementName(site), Ohms: ohms,
		})
	}
	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		return fmt.Errorf("predict: %v", err)
	}
	az := netlint.New(col.Circuit(), dram.LintModel())
	pred, err := az.PredictMergeSet(spec)
	if err != nil {
		return fmt.Errorf("predict: %v", err)
	}
	if err := report.WriteMergePrediction(w, pred); err != nil {
		return fmt.Errorf("predict: %v", err)
	}
	return nil
}

// twoCellCertificates prints the two-cell coverage certificate for the
// named march test ("all" for the whole library) on a 4×2 array: every
// catalog coupling fault's simulated detection verdict side by side
// with the static completion pre-pass, plus the soundness check that no
// statically proved miss was caught dynamically. The engine name picks
// the simulation backend (the bit-plane engine produces identical
// verdicts; useful for cross-checking and for larger geometries).
func twoCellCertificates(w io.Writer, name, engineName string) error {
	var eng march.Engine
	switch engineName {
	case "memsim":
		eng = march.ScalarEngine{}
	case "bitsim":
		eng = bitsim.New()
	default:
		return fmt.Errorf("unknown -march-engine %q (want memsim or bitsim)", engineName)
	}
	tests, err := testsNamed(name)
	if err != nil {
		return err
	}
	unsound := false
	for _, t := range tests {
		cert, err := march.TwoCellCertificateWith(eng, t, march.TwoCellCatalog(), 4, 2)
		if err != nil {
			return fmt.Errorf("twocell: %v", err)
		}
		if err := report.WriteTwoCellCoverage(w, cert); err != nil {
			return fmt.Errorf("twocell: %v", err)
		}
		fmt.Fprintln(w)
		if len(cert.Violations()) > 0 {
			unsound = true
		}
	}
	if unsound {
		return fmt.Errorf("twocell: at least one certificate is unsound")
	}
	return nil
}

// detectionMatrix prints the static three-valued detection matrix for
// the named march test ("all" for the whole library) against the
// paper's partial-fault catalog and the two-cell coupling catalog, and
// errors when any completion-pre-pass cannot-complete claim is not
// confirmed as a proved miss.
func detectionMatrix(w io.Writer, name string) error {
	tests, err := testsNamed(name)
	if err != nil {
		return err
	}
	m := march.BuildDetectionMatrix(tests, march.PaperFaultCatalog(), march.TwoCellCatalog())
	if err := report.WriteDetectionMatrix(w, m); err != nil {
		return fmt.Errorf("prove: %v", err)
	}
	if len(m.Drift()) > 0 {
		return fmt.Errorf("prove: the detection prover and the completion pre-pass disagree")
	}
	return nil
}

// stressOpts carries the CLI knobs of the -stress mode.
type stressOpts struct {
	engine, marchEngine, corners, sweep string
	rdefs, us                           []float64
}

// stressMatrix runs the stress-condition scenario matrix and prints the
// per-corner inventories, the corner deltas against nominal and the
// worst-corner certificate. Corner progress goes to stderr.
func stressMatrix(stdout, stderr io.Writer, o stressOpts) error {
	corners := stress.DefaultCorners()
	if o.corners != "" {
		var err error
		corners, err = stress.ParseSpecs(o.corners)
		if err != nil {
			return fmt.Errorf("bad -corners: %v", err)
		}
	}
	var eng march.Engine
	switch o.marchEngine {
	case "memsim":
		eng = march.ScalarEngine{}
	case "bitsim":
		eng = bitsim.New()
	default:
		return fmt.Errorf("unknown -march-engine %q (want memsim or bitsim)", o.marchEngine)
	}
	mode, err := analysis.ParseSweepMode(o.sweep)
	if err != nil {
		return fmt.Errorf("bad -sweep: %v", err)
	}
	res, err := stress.Analyze(stress.Config{
		Corners: corners,
		Engine:  o.engine,
		MarchEngine: eng,
		RDefs:   o.rdefs, Us: o.us,
		Sweep: mode,
		Progress: func(line string) {
			fmt.Fprintf(stderr, "faultmap: %s\n", line)
		},
	})
	if err != nil {
		return fmt.Errorf("stress: %v", err)
	}
	if err := report.WriteStressMatrix(stdout, res); err != nil {
		return fmt.Errorf("stress: %v", err)
	}
	return nil
}

// testsNamed resolves a march test name, or "all" for the library.
func testsNamed(name string) ([]march.Test, error) {
	if name == "all" {
		return march.All(), nil
	}
	for _, t := range march.All() {
		if t.Name == name {
			return []march.Test{t}, nil
		}
	}
	return nil, fmt.Errorf("unknown march test %q; use \"all\" or one of the library names", name)
}

func joinOrNone(nets []string) string {
	if len(nets) == 0 {
		return "(none)"
	}
	return strings.Join(nets, ", ")
}

// preflight runs the static netlist, inventory and march checks and
// aborts before any simulation when they find an error.
func preflight(stderr io.Writer) error {
	findings, err := analysis.Preflight(dram.Default())
	if err != nil {
		return fmt.Errorf("lint: %v", err)
	}
	if err := report.WriteFindings(stderr, findings, lint.Warning); err != nil {
		return fmt.Errorf("lint: %v", err)
	}
	if findings.Count(lint.Error) > 0 {
		return fmt.Errorf("lint: static analysis failed; not simulating")
	}
	return nil
}
