// Command faultmap generates an (R_def, U) fault-region map for a chosen
// open defect and sensitizing operation sequence — the tool behind the
// paper's Figures 3 and 4.
//
// Usage:
//
//	faultmap -open 4 -sos "<1r1/0/0>" [-engine behav|spice]
//	         [-rdef-min 1e3] [-rdef-max 1e7] [-rdef-steps 13]
//	         [-u-min 0] [-u-max 3.3] [-u-steps 12] [-csv]
//
// The -sos flag accepts either a bare SOS ("1r1", "1v [w0BL] r1v") or a
// full fault primitive whose S part is used.
//
// -twocell "March C-" (or "all") prints the two-cell coverage
// certificate for the named march test on a 4×2 array: the static
// completion pre-pass checked against the exhaustive coupling-fault
// simulation.
//
// -prove "March PF" (or "all") prints the static three-valued detection
// matrix for the named march test against the paper's partial-fault
// catalog and the two-cell catalog: proved Detects/Misses verdicts
// quantified over every geometry, placement and address order, with the
// proof trace or witness behind each verdict.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/bitsim"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
	"github.com/memtest/partialfaults/internal/numeric"
	"github.com/memtest/partialfaults/internal/report"
)

func main() {
	var (
		openID    = flag.Int("open", 4, "open defect number (1-9, Figure 2)")
		sosStr    = flag.String("sos", "1r1", "sensitizing operation sequence or fault primitive")
		floatVar  = flag.String("float", "", "floating voltage to sweep (default: the open's primary group)")
		engine    = flag.String("engine", "behav", "simulation engine: behav (analytical) or spice (transient)")
		rdefMin   = flag.Float64("rdef-min", 1e3, "minimum open resistance [Ω]")
		rdefMax   = flag.Float64("rdef-max", 1e7, "maximum open resistance [Ω]")
		rdefSteps = flag.Int("rdef-steps", 13, "log-spaced resistance steps")
		uMin      = flag.Float64("u-min", 0, "minimum floating voltage [V]")
		uMax      = flag.Float64("u-max", 3.3, "maximum floating voltage [V]")
		uSteps    = flag.Int("u-steps", 12, "linear voltage steps")
		csv       = flag.Bool("csv", false, "emit CSV instead of the ASCII map")
		doLint    = flag.Bool("lint", false, "run the static-analysis pre-flight and abort on errors")
		predict   = flag.Bool("predict", false, "print the statically predicted floating-line set for the open and exit")
		defSite   = flag.String("defect", "", "comma-separated short/bridge defect sites, each optionally @ohms (e.g. short.cell.gnd,bridge.cell.cell or short.bl.vdd@2e3); with -predict, prints the net-merge verdict table instead of an open's float set")
		twoCell   = flag.String("twocell", "", "march test name (or \"all\") whose two-cell coverage certificate to print; exits nonzero on an unsound certificate")
		marchEng  = flag.String("march-engine", "memsim", "march simulation backend for -twocell: memsim (scalar oracle) or bitsim (bit-plane)")
		proveTest = flag.String("prove", "", "march test name (or \"all\") whose static three-valued detection matrix to print; exits nonzero when the prover and the completion pre-pass disagree")
	)
	flag.Parse()

	if *doLint {
		preflight()
	}

	if *proveTest != "" {
		detectionMatrix(*proveTest)
		return
	}
	if *twoCell != "" {
		twoCellCertificates(*twoCell, *marchEng)
		return
	}
	if *defSite != "" {
		predictMerge(*defSite)
		return
	}
	open, ok := defect.ByID(*openID)
	if !ok {
		fatalf("unknown open %d; the paper defines opens 1-9", *openID)
	}
	if *predict {
		predictFloats(open)
		return
	}
	sos, err := parseSOSOrFP(*sosStr)
	if err != nil {
		fatalf("bad -sos: %v", err)
	}
	group := open.Floats[0]
	if *floatVar != "" {
		g, ok := open.Float(defect.FloatVar(*floatVar))
		if !ok {
			fatalf("open %d has no floating group %q", *openID, *floatVar)
		}
		group = g
	}
	var factory analysis.Factory
	switch *engine {
	case "behav":
		factory = behav.NewFactory(behav.DefaultParams())
	case "spice":
		factory = analysis.NewSpiceFactory(dram.Default())
	default:
		fatalf("unknown engine %q", *engine)
	}

	plane, err := analysis.SweepPlane(analysis.SweepConfig{
		Factory: factory, Open: open, Float: group, SOS: sos,
		RDefs: numeric.Logspace(*rdefMin, *rdefMax, *rdefSteps),
		Us:    numeric.Linspace(*uMin, *uMax, *uSteps),
	})
	if err != nil {
		fatalf("sweep: %v", err)
	}
	if *csv {
		if err := report.WritePlaneCSV(os.Stdout, plane); err != nil {
			fatalf("csv: %v", err)
		}
		return
	}
	if err := report.WritePlane(os.Stdout, plane); err != nil {
		fatalf("map: %v", err)
	}
	for _, f := range analysis.IdentifyPartialFaults(plane) {
		fmt.Printf("partial fault: %s observed only for U ∈ [%.2f, %.2f] V (e.g. %s)\n",
			f.FFM, f.ULow, f.UHigh, f.Example)
	}
}

func parseSOSOrFP(s string) (fp.SOS, error) {
	if strings.HasPrefix(strings.TrimSpace(s), "<") {
		p, err := fp.Parse(s)
		if err != nil {
			return fp.SOS{}, err
		}
		return p.S, nil
	}
	return fp.ParseSOS(s)
}

// predictFloats prints the floating-line set the netlist graph predicts
// for the open — the static counterpart of the sweep's declared float
// groups. Primary nets lose their only DC drive path when the open's
// site element is cut; secondary nets are starved transitively because a
// floating control net stops reaching their access gates.
func predictFloats(open defect.Open) {
	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		fatalf("predict: %v", err)
	}
	az := netlint.New(col.Circuit(), dram.LintModel())
	pred := az.PredictFloats([]string{dram.SiteElementName(open.Site)})
	fmt.Printf("open %d cuts element %s\n", open.ID, dram.SiteElementName(open.Site))
	fmt.Printf("primary floats:   %s\n", joinOrNone(pred.Primary))
	fmt.Printf("secondary floats: %s\n", joinOrNone(pred.Secondary))
}

// predictMerge prints the net-merge verdict table for one or more
// short/bridge defect sites, comma-separated, each optionally suffixed
// "@ohms" for a resistive (weak) bridge: which nets become electrically
// identified (transitively, across all sites at once), whether each
// merged class is supply-stuck or contested per phase, how each weak
// bridge's divider resolves, and the (empty) floating prediction — the
// paper's Section 2 negative result, proven statically.
func predictMerge(arg string) {
	catalog := map[string]defect.ShortOrBridge{}
	var sites []string
	for _, s := range defect.ShortsAndBridges() {
		sites = append(sites, s.Site)
		catalog[s.Site] = s
	}
	var spec netlint.MergeSpec
	for _, part := range strings.Split(arg, ",") {
		part = strings.TrimSpace(part)
		site, ohms := part, 0.0
		if at := strings.IndexByte(part, '@'); at >= 0 {
			site = part[:at]
			v, err := strconv.ParseFloat(part[at+1:], 64)
			if err != nil || v < 0 {
				fatalf("bad resistance in %q; want e.g. %s@2e3", part, site)
			}
			ohms = v
		}
		sb, ok := catalog[site]
		if !ok {
			fatalf("unknown defect site %q; catalog: %s", site, strings.Join(sites, ", "))
		}
		fmt.Printf("%s: %s\n", sb.Name(), sb.Description)
		spec.Elems = append(spec.Elems, netlint.MergeElem{
			Name: dram.SiteElementName(site), Ohms: ohms,
		})
	}
	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		fatalf("predict: %v", err)
	}
	az := netlint.New(col.Circuit(), dram.LintModel())
	pred, err := az.PredictMergeSet(spec)
	if err != nil {
		fatalf("predict: %v", err)
	}
	if err := report.WriteMergePrediction(os.Stdout, pred); err != nil {
		fatalf("predict: %v", err)
	}
}

// twoCellCertificates prints the two-cell coverage certificate for the
// named march test ("all" for the whole library) on a 4×2 array: every
// catalog coupling fault's simulated detection verdict side by side
// with the static completion pre-pass, plus the soundness check that no
// statically proved miss was caught dynamically. The engine name picks
// the simulation backend (the bit-plane engine produces identical
// verdicts; useful for cross-checking and for larger geometries).
func twoCellCertificates(name, engineName string) {
	var eng march.Engine
	switch engineName {
	case "memsim":
		eng = march.ScalarEngine{}
	case "bitsim":
		eng = bitsim.New()
	default:
		fatalf("unknown -march-engine %q (want memsim or bitsim)", engineName)
	}
	var tests []march.Test
	if name == "all" {
		tests = march.All()
	} else {
		for _, t := range march.All() {
			if t.Name == name {
				tests = []march.Test{t}
				break
			}
		}
		if len(tests) == 0 {
			fatalf("unknown march test %q; use \"all\" or one of the library names", name)
		}
	}
	unsound := false
	for _, t := range tests {
		cert, err := march.TwoCellCertificateWith(eng, t, march.TwoCellCatalog(), 4, 2)
		if err != nil {
			fatalf("twocell: %v", err)
		}
		if err := report.WriteTwoCellCoverage(os.Stdout, cert); err != nil {
			fatalf("twocell: %v", err)
		}
		fmt.Println()
		if len(cert.Violations()) > 0 {
			unsound = true
		}
	}
	if unsound {
		fatalf("twocell: at least one certificate is unsound")
	}
}

// detectionMatrix prints the static three-valued detection matrix for
// the named march test ("all" for the whole library) against the
// paper's partial-fault catalog and the two-cell coupling catalog, and
// exits nonzero when any completion-pre-pass cannot-complete claim is
// not confirmed as a proved miss.
func detectionMatrix(name string) {
	var tests []march.Test
	if name == "all" {
		tests = march.All()
	} else {
		for _, t := range march.All() {
			if t.Name == name {
				tests = []march.Test{t}
				break
			}
		}
		if len(tests) == 0 {
			fatalf("unknown march test %q; use \"all\" or one of the library names", name)
		}
	}
	m := march.BuildDetectionMatrix(tests, march.PaperFaultCatalog(), march.TwoCellCatalog())
	if err := report.WriteDetectionMatrix(os.Stdout, m); err != nil {
		fatalf("prove: %v", err)
	}
	if len(m.Drift()) > 0 {
		fatalf("prove: the detection prover and the completion pre-pass disagree")
	}
}

func joinOrNone(nets []string) string {
	if len(nets) == 0 {
		return "(none)"
	}
	return strings.Join(nets, ", ")
}

// preflight runs the static netlist, inventory and march checks and
// aborts before any simulation when they find an error.
func preflight() {
	findings, err := analysis.Preflight(dram.Default())
	if err != nil {
		fatalf("lint: %v", err)
	}
	if err := report.WriteFindings(os.Stderr, findings, lint.Warning); err != nil {
		fatalf("lint: %v", err)
	}
	if findings.Count(lint.Error) > 0 {
		fatalf("lint: static analysis failed; not simulating")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "faultmap: "+format+"\n", args...)
	os.Exit(1)
}
