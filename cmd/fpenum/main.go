// Command fpenum enumerates and counts the single-cell fault-primitive
// space — the Section 4 analysis of the paper, including the exponential
// growth that motivates directed (partial-fault-guided) analysis.
//
// Usage:
//
//	fpenum [-max-ops 4] [-list] [-classify]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/memtest/partialfaults/internal/fp"
)

func main() {
	var (
		maxOps   = flag.Int("max-ops", 4, "maximum #O to enumerate")
		list     = flag.Bool("list", false, "list every fault primitive")
		classify = flag.Bool("classify", false, "with -list, append FFM classifications")
	)
	flag.Parse()
	if *maxOps < 0 {
		fmt.Fprintln(os.Stderr, "fpenum: -max-ops must be non-negative")
		os.Exit(1)
	}

	fmt.Println("#O   #FPs   cumulative")
	total := 0
	for n := 0; n <= *maxOps; n++ {
		c := fp.CountSingleCellFPs(n)
		total += c
		fmt.Printf("%-4d %-6d %d\n", n, c, total)
	}
	fmt.Printf("\nbrute-force fault analysis at #O ≤ %d must inspect %d FPs;\n", *maxOps, total)
	fmt.Println("the partial-fault method needs only the 12 static FPs (#O ≤ 1)")
	fmt.Println("plus a directed completing-operation search (Section 4).")

	if !*list {
		return
	}
	fmt.Println()
	for n := 0; n <= *maxOps; n++ {
		for _, p := range fp.EnumerateSingleCellFPs(n) {
			if *classify {
				fmt.Printf("%-28s %s\n", p, p.Classify())
			} else {
				fmt.Println(p)
			}
		}
	}
}
