package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestParseGeometry(t *testing.T) {
	cases := []struct {
		in         string
		rows, cols int
		wantErr    bool
	}{
		{"4x2", 4, 2, false},
		{"1024x1024", 1024, 1024, false},
		{"1024x1024x2", 0, 0, true}, // 3-D geometry: reject, don't truncate
		{"x4", 0, 0, true},
		{"4x", 0, 0, true},
		{"4", 0, 0, true},
		{"0x4", 0, 0, true},
		{"4x-2", 0, 0, true},
		{"axb", 0, 0, true},
		{"", 0, 0, true},
	}
	for _, c := range cases {
		rows, cols, err := parseGeometry(c.in)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseGeometry(%q) = %dx%d, want error", c.in, rows, cols)
			}
			continue
		}
		if err != nil || rows != c.rows || cols != c.cols {
			t.Errorf("parseGeometry(%q) = %d, %d, %v; want %d, %d", c.in, rows, cols, err, c.rows, c.cols)
		}
	}
}

func TestParseOffsets(t *testing.T) {
	got, err := parseOffsets("1,-1, 64 ,-64")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, -1, 64, -64}
	if len(got) != len(want) {
		t.Fatalf("parseOffsets = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parseOffsets = %v, want %v", got, want)
		}
	}
	if got, err := parseOffsets(""); err != nil || got != nil {
		t.Fatalf("empty: %v, %v", got, err)
	}
	for _, bad := range []string{"0", "1,0", "1,1", "1,", "a"} {
		if _, err := parseOffsets(bad); err == nil {
			t.Errorf("parseOffsets(%q) accepted", bad)
		}
	}
}

func runCLI(t *testing.T, args ...string) (int, string, string) {
	t.Helper()
	var out, errw bytes.Buffer
	code := run(args, &out, &errw)
	return code, out.String(), errw.String()
}

func TestRunBadFlagCombos(t *testing.T) {
	cases := [][]string{
		{"-no-such-flag"},
		{"-geometry", "1024x1024x2"},
		{"-engine", "quantum"},
		{"-test", "March ZZ"},
		{"-offsets", "1,-1"}, // offsets without -twocell
		{"-twocell", "-offsets", "0"},
		{"-fault", "not a primitive"},
		{"-test", "custom", "-notation", "not march"},
	}
	for _, args := range cases {
		code, _, errw := runCLI(t, args...)
		if code == 0 {
			t.Errorf("run(%v) succeeded, want failure", args)
		}
		if errw == "" {
			t.Errorf("run(%v) failed silently", args)
		}
	}
}

func TestRunSingleTestCoverage(t *testing.T) {
	code, out, errw := runCLI(t, "-test", "MATS+", "-rows", "3", "-cols", "2")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "MATS+") || !strings.Contains(out, "SF") {
		t.Fatalf("coverage output:\n%s", out)
	}
}

func TestRunBitsimEngine(t *testing.T) {
	code, out, errw := runCLI(t, "-engine", "bitsim", "-geometry", "8x8", "-test", "March PF")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "March PF") {
		t.Fatalf("output:\n%s", out)
	}
}

// TestRunTwoCellOffsets drives the new -offsets path end to end and
// checks the restricted certificate still renders.
func TestRunTwoCellOffsets(t *testing.T) {
	code, out, errw := runCLI(t, "-test", "March C-", "-twocell", "-offsets", "1,-1", "-rows", "3", "-cols", "3")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "March C-") || !strings.Contains(out, "CF") {
		t.Fatalf("certificate output:\n%s", out)
	}
	full, _, _ := runCLI(t, "-test", "March C-", "-twocell", "-rows", "3", "-cols", "3")
	if full != 0 {
		t.Fatal("full-walk run failed")
	}
	if out == "" {
		t.Fatal("empty restricted certificate")
	}
}

func TestRunProve(t *testing.T) {
	code, out, errw := runCLI(t, "-test", "March PF", "-prove")
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errw)
	}
	if !strings.Contains(out, "static detection matrix") || !strings.Contains(out, "proved detected") {
		t.Fatalf("prove output:\n%s", out)
	}
}
