// Command marchsim runs march tests against fault-injected functional
// memories and reports guaranteed detection — the engine behind the
// paper's March PF claim and the classical-test comparison.
//
// Usage:
//
//	marchsim                             # full coverage matrix
//	marchsim -test "March PF"            # one test against the catalog
//	marchsim -test custom -notation "{m(w0); u(r0,w1); d(r1,w0)}"
//	marchsim -fault "<1v [w0BL] r1v/0/0>" -float "Bit line"
//	marchsim -test "March C-" -twocell    # two-cell coverage certificate
//	marchsim -test "March PF" -prove      # static three-valued detection matrix
//	marchsim -engine bitsim -geometry 1024x1024 -test "March PF"
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/bitsim"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/report"
)

func main() {
	var (
		testName = flag.String("test", "", "run only the named test (default: whole library)")
		notation = flag.String("notation", "", "march notation for a custom -test")
		faultStr = flag.String("fault", "", "single fault primitive to evaluate (default: full catalog)")
		floatVar = flag.String("float", "Bit line", "mediating floating voltage for a partial -fault")
		rows     = flag.Int("rows", 4, "array rows")
		cols     = flag.Int("cols", 2, "array columns (cells per row; same column = same bit line)")
		geometry = flag.String("geometry", "", "array geometry as ROWSxCOLS (e.g. 1024x1024); overrides -rows/-cols")
		engine   = flag.String("engine", "memsim", "simulation backend: memsim (scalar oracle) or bitsim (bit-plane, for megabit arrays)")
		doLint   = flag.Bool("lint", false, "lint the tests and print the static completion pre-passes before simulating")
		twoCell  = flag.Bool("twocell", false, "emit the two-cell coverage certificate (static pre-pass checked against the exhaustive coupling-fault simulation) instead of the single-cell matrix")
		prove    = flag.Bool("prove", false, "emit the static three-valued detection matrix (proved Detects/Misses verdicts over all geometries and orders) instead of simulating")
	)
	flag.Parse()

	if *geometry != "" {
		r, c, err := parseGeometry(*geometry)
		if err != nil {
			fatalf("bad -geometry: %v", err)
		}
		*rows, *cols = r, c
	}
	var eng march.Engine
	switch *engine {
	case "memsim":
		eng = march.ScalarEngine{}
	case "bitsim":
		eng = bitsim.New()
	default:
		fatalf("unknown -engine %q (want memsim or bitsim)", *engine)
	}

	tests := march.All()
	if *testName != "" {
		if *notation != "" {
			t, err := march.Parse(*testName, *notation)
			if err != nil {
				fatalf("bad -notation: %v", err)
			}
			tests = []march.Test{t}
		} else {
			var found bool
			for _, t := range march.All() {
				if t.Name == *testName {
					tests = []march.Test{t}
					found = true
					break
				}
			}
			if !found {
				fatalf("unknown test %q (and no -notation given)", *testName)
			}
		}
	}

	catalog := append(march.ClassicalFaultCatalog(), march.PaperFaultCatalog()...)
	if *faultStr != "" {
		p, err := fp.Parse(*faultStr)
		if err != nil {
			fatalf("bad -fault: %v", err)
		}
		catalog = []march.CatalogEntry{{
			Name: p.String(), FP: p,
			Float:   defect.FloatVar(*floatVar),
			Partial: p.IsCompleted(),
		}}
	}

	for _, t := range tests {
		fmt.Printf("%-9s (%2dN): %s\n", t.Name, t.Length(), t)
	}
	fmt.Println()

	if *doLint {
		findings := march.LintAll(tests)
		findings = append(findings, march.CompletionPrePass(tests, catalog)...)
		findings = append(findings, march.TwoCellCompletionPrePass(tests, march.TwoCellCatalog())...)
		findings.Sort()
		if err := report.WriteFindings(os.Stdout, findings, lint.Info); err != nil {
			fatalf("lint: %v", err)
		}
		fmt.Println()
		if findings.Count(lint.Error) > 0 {
			fatalf("lint: the selected tests are statically broken; not simulating")
		}
	}

	if *prove {
		// With a custom -fault the matrix brackets just that primitive;
		// otherwise it covers the full single- and two-cell catalogs.
		twos := march.TwoCellCatalog()
		if *faultStr != "" {
			twos = nil
		}
		m := march.BuildDetectionMatrix(tests, catalog, twos)
		if err := report.WriteDetectionMatrix(os.Stdout, m); err != nil {
			fatalf("report: %v", err)
		}
		if len(m.Drift()) > 0 {
			fatalf("prove: the detection prover and the completion pre-pass disagree")
		}
		return
	}

	if *twoCell {
		unsound := false
		for _, t := range tests {
			cert, err := march.TwoCellCertificateWith(eng, t, march.TwoCellCatalog(), *rows, *cols)
			if err != nil {
				fatalf("twocell: %v", err)
			}
			if err := report.WriteTwoCellCoverage(os.Stdout, cert); err != nil {
				fatalf("report: %v", err)
			}
			fmt.Println()
			if len(cert.Violations()) > 0 {
				unsound = true
			}
		}
		if unsound {
			fatalf("twocell: at least one certificate is unsound")
		}
		return
	}

	results, err := march.CoverageMatrixWith(eng, tests, catalog, *rows, *cols)
	if err != nil {
		fatalf("coverage: %v", err)
	}
	names := make([]string, len(tests))
	for i, t := range tests {
		names[i] = t.Name
	}
	if err := report.WriteCoverage(os.Stdout, results, names); err != nil {
		fatalf("report: %v", err)
	}
}

func parseGeometry(s string) (rows, cols int, err error) {
	r, c, ok := strings.Cut(s, "x")
	if !ok {
		return 0, 0, fmt.Errorf("want ROWSxCOLS, got %q", s)
	}
	rows, err = strconv.Atoi(r)
	if err != nil {
		return 0, 0, fmt.Errorf("bad rows in %q: %v", s, err)
	}
	cols, err = strconv.Atoi(c)
	if err != nil {
		return 0, 0, fmt.Errorf("bad columns in %q: %v", s, err)
	}
	if rows <= 0 || cols <= 0 {
		return 0, 0, fmt.Errorf("geometry %q must be positive", s)
	}
	return rows, cols, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "marchsim: "+format+"\n", args...)
	os.Exit(1)
}
