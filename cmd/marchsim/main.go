// Command marchsim runs march tests against fault-injected functional
// memories and reports guaranteed detection — the engine behind the
// paper's March PF claim and the classical-test comparison.
//
// Usage:
//
//	marchsim                             # full coverage matrix
//	marchsim -test "March PF"            # one test against the catalog
//	marchsim -test custom -notation "{m(w0); u(r0,w1); d(r1,w0)}"
//	marchsim -fault "<1v [w0BL] r1v/0/0>" -float "Bit line"
//	marchsim -test "March C-" -twocell    # two-cell coverage certificate
//	marchsim -test "March C-" -twocell -offsets 1,-1,64,-64
//	marchsim -test "March PF" -prove      # static three-valued detection matrix
//	marchsim -engine bitsim -geometry 1024x1024 -test "March PF"
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/bitsim"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("marchsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		testName = fs.String("test", "", "run only the named test (default: whole library)")
		notation = fs.String("notation", "", "march notation for a custom -test")
		faultStr = fs.String("fault", "", "single fault primitive to evaluate (default: full catalog)")
		floatVar = fs.String("float", "Bit line", "mediating floating voltage for a partial -fault")
		rows     = fs.Int("rows", 4, "array rows")
		cols     = fs.Int("cols", 2, "array columns (cells per row; same column = same bit line)")
		geometry = fs.String("geometry", "", "array geometry as ROWSxCOLS (e.g. 1024x1024); overrides -rows/-cols")
		engine   = fs.String("engine", "memsim", "simulation backend: memsim (scalar oracle) or bitsim (bit-plane, for megabit arrays)")
		doLint   = fs.Bool("lint", false, "lint the tests and print the static completion pre-passes before simulating")
		twoCell  = fs.Bool("twocell", false, "emit the two-cell coverage certificate (static pre-pass checked against the exhaustive coupling-fault simulation) instead of the single-cell matrix")
		offsets  = fs.String("offsets", "", "with -twocell: comma-separated aggressor offsets δ (aggressor = victim + δ), e.g. 1,-1,64,-64; empty = all ordered pairs")
		prove    = fs.Bool("prove", false, "emit the static three-valued detection matrix (proved Detects/Misses verdicts over all geometries and orders) instead of simulating")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(format string, a ...any) int {
		fmt.Fprintf(stderr, "marchsim: "+format+"\n", a...)
		return 1
	}

	if *geometry != "" {
		r, c, err := parseGeometry(*geometry)
		if err != nil {
			return fail("bad -geometry: %v", err)
		}
		*rows, *cols = r, c
	}
	deltas, err := parseOffsets(*offsets)
	if err != nil {
		return fail("bad -offsets: %v", err)
	}
	if deltas != nil && !*twoCell {
		return fail("-offsets only applies with -twocell")
	}
	var eng march.Engine
	switch *engine {
	case "memsim":
		eng = march.ScalarEngine{}
	case "bitsim":
		eng = bitsim.New()
	default:
		return fail("unknown -engine %q (want memsim or bitsim)", *engine)
	}

	tests := march.All()
	if *testName != "" {
		if *notation != "" {
			t, err := march.Parse(*testName, *notation)
			if err != nil {
				return fail("bad -notation: %v", err)
			}
			tests = []march.Test{t}
		} else {
			var found bool
			for _, t := range march.All() {
				if t.Name == *testName {
					tests = []march.Test{t}
					found = true
					break
				}
			}
			if !found {
				return fail("unknown test %q (and no -notation given)", *testName)
			}
		}
	}

	catalog := append(march.ClassicalFaultCatalog(), march.PaperFaultCatalog()...)
	if *faultStr != "" {
		p, err := fp.Parse(*faultStr)
		if err != nil {
			return fail("bad -fault: %v", err)
		}
		catalog = []march.CatalogEntry{{
			Name: p.String(), FP: p,
			Float:   defect.FloatVar(*floatVar),
			Partial: p.IsCompleted(),
		}}
	}

	for _, t := range tests {
		fmt.Fprintf(stdout, "%-9s (%2dN): %s\n", t.Name, t.Length(), t)
	}
	fmt.Fprintln(stdout)

	if *doLint {
		findings := march.LintAll(tests)
		findings = append(findings, march.CompletionPrePass(tests, catalog)...)
		findings = append(findings, march.TwoCellCompletionPrePass(tests, march.TwoCellCatalog())...)
		findings.Sort()
		if err := report.WriteFindings(stdout, findings, lint.Info); err != nil {
			return fail("lint: %v", err)
		}
		fmt.Fprintln(stdout)
		if findings.Count(lint.Error) > 0 {
			return fail("lint: the selected tests are statically broken; not simulating")
		}
	}

	if *prove {
		// With a custom -fault the matrix brackets just that primitive;
		// otherwise it covers the full single- and two-cell catalogs.
		twos := march.TwoCellCatalog()
		if *faultStr != "" {
			twos = nil
		}
		m := march.BuildDetectionMatrix(tests, catalog, twos)
		if err := report.WriteDetectionMatrix(stdout, m); err != nil {
			return fail("report: %v", err)
		}
		if len(m.Drift()) > 0 {
			return fail("prove: the detection prover and the completion pre-pass disagree")
		}
		return 0
	}

	if *twoCell {
		unsound := false
		for _, t := range tests {
			cert, err := march.TwoCellCertificateOffsetsWith(eng, t, march.TwoCellCatalog(), *rows, *cols, deltas)
			if err != nil {
				return fail("twocell: %v", err)
			}
			if err := report.WriteTwoCellCoverage(stdout, cert); err != nil {
				return fail("report: %v", err)
			}
			fmt.Fprintln(stdout)
			if len(cert.Violations()) > 0 {
				unsound = true
			}
		}
		if unsound {
			return fail("twocell: at least one certificate is unsound")
		}
		return 0
	}

	results, err := march.CoverageMatrixWith(eng, tests, catalog, *rows, *cols)
	if err != nil {
		return fail("coverage: %v", err)
	}
	names := make([]string, len(tests))
	for i, t := range tests {
		names[i] = t.Name
	}
	if err := report.WriteCoverage(stdout, results, names); err != nil {
		return fail("report: %v", err)
	}
	return 0
}

// parseGeometry parses strict ROWSxCOLS. Exactly one "x" is allowed:
// "1024x1024x2" (a 3-D geometry the array model has no notion of) is an
// error, not a silent truncation.
func parseGeometry(s string) (rows, cols int, err error) {
	parts := strings.Split(s, "x")
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("want ROWSxCOLS (exactly one 'x'), got %q", s)
	}
	rows, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("bad rows in %q: %v", s, err)
	}
	cols, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("bad columns in %q: %v", s, err)
	}
	if rows <= 0 || cols <= 0 {
		return 0, 0, fmt.Errorf("geometry %q must be positive", s)
	}
	return rows, cols, nil
}

// parseOffsets parses a comma-separated aggressor-offset list. Empty
// input means nil (full pair space); zero and duplicate offsets are
// rejected here so the error names the flag rather than surfacing from
// deep inside the walk.
func parseOffsets(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	seen := map[int]bool{}
	var out []int
	for _, f := range strings.Split(s, ",") {
		d, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return nil, fmt.Errorf("bad offset %q: %v", f, err)
		}
		if d == 0 {
			return nil, fmt.Errorf("offset 0 is not a neighbour")
		}
		if seen[d] {
			return nil, fmt.Errorf("duplicate offset %d", d)
		}
		seen[d] = true
		out = append(out, d)
	}
	return out, nil
}
