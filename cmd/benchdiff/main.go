// Command benchdiff compares two committed BENCH_*.json benchmark
// snapshots and fails when the new one regresses beyond a noise band.
//
// Usage:
//
//	benchdiff [-threshold 0.15] [-history 'bench/BENCH_*.json'] [-force] OLD.json NEW.json
//
// The wall-clock comparison only makes sense on like hardware, so the
// snapshots' host fields (GOOS, GOARCH, CPU count) must match; -force
// compares anyway (deltas across machines are informational only, and
// the exit code then ignores timing regressions).
//
// -history points at accumulated snapshots from the same host. A
// benchmark with at least three history samples gets its own noise
// band, 3σ/µ of its observed ns/op (floored at 2%), in place of the
// flat -threshold ratio — quiet benchmarks tighten, noisy ones widen.
// Benchmarks with fewer samples keep the flat ratio.
//
// Exit codes: 0 no regression, 1 a benchmark slowed beyond its noise
// band, 2 usage/IO error or host mismatch without -force.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
)

// snapshot mirrors the schema written by TestBenchSnapshot.
type snapshot struct {
	Date      string            `json:"date"`
	GoVersion string            `json:"go_version"`
	GOOS      string            `json:"goos"`
	GOARCH    string            `json:"goarch"`
	NumCPU    int               `json:"num_cpu"`
	Results   map[string]result `json:"results"`
}

type result struct {
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	threshold := fs.Float64("threshold", 0.15, "relative slowdown tolerated as noise (0.15 = +15%); per-benchmark fallback when -history has too few samples")
	force := fs.Bool("force", false, "compare snapshots from different hosts (informational; timing regressions do not fail)")
	historyGlob := fs.String("history", "", "glob of accumulated same-host snapshots; ≥3 samples per benchmark derive its own noise band (3σ/µ) instead of the flat ratio")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [-threshold 0.15] [-force] OLD.json NEW.json")
		return 2
	}
	oldSnap, err := load(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}
	newSnap, err := load(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(stderr, "benchdiff: %v\n", err)
		return 2
	}

	sameHost := oldSnap.GOOS == newSnap.GOOS && oldSnap.GOARCH == newSnap.GOARCH && oldSnap.NumCPU == newSnap.NumCPU
	if !sameHost {
		fmt.Fprintf(stderr, "benchdiff: host mismatch: %s/%s/%d CPU vs %s/%s/%d CPU\n",
			oldSnap.GOOS, oldSnap.GOARCH, oldSnap.NumCPU, newSnap.GOOS, newSnap.GOARCH, newSnap.NumCPU)
		if !*force {
			return 2
		}
	}

	bands := map[string]float64{}
	if *historyGlob != "" {
		history, err := loadHistory(*historyGlob, newSnap)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return 2
		}
		bands = noiseBands(history)
		fmt.Fprintf(stdout, "noise bands from %d same-host history snapshots (%d benchmarks banded)\n",
			len(history), len(bands))
	}

	names := map[string]bool{}
	for n := range oldSnap.Results {
		names[n] = true
	}
	for n := range newSnap.Results {
		names[n] = true
	}
	order := make([]string, 0, len(names))
	for n := range names {
		order = append(order, n)
	}
	sort.Strings(order)

	fmt.Fprintf(stdout, "%-42s %12s %12s %8s\n", "benchmark", "old ms/op", "new ms/op", "delta")
	regressed := false
	for _, n := range order {
		o, haveOld := oldSnap.Results[n]
		nw, haveNew := newSnap.Results[n]
		switch {
		case !haveOld:
			fmt.Fprintf(stdout, "%-42s %12s %12.3f %8s\n", n, "—", nw.NsPerOp/1e6, "new")
			continue
		case !haveNew:
			fmt.Fprintf(stdout, "%-42s %12.3f %12s %8s\n", n, o.NsPerOp/1e6, "—", "gone")
			continue
		}
		delta := 0.0
		if o.NsPerOp > 0 {
			delta = nw.NsPerOp/o.NsPerOp - 1
		}
		band, banded := bands[n]
		if !banded {
			band = *threshold
		}
		mark := ""
		if delta > band {
			mark = "  REGRESSION"
			if banded {
				mark = fmt.Sprintf("  REGRESSION (band ±%.1f%%)", band*100)
			}
			if sameHost {
				regressed = true
			}
		}
		fmt.Fprintf(stdout, "%-42s %12.3f %12.3f %+7.1f%%%s\n", n, o.NsPerOp/1e6, nw.NsPerOp/1e6, delta*100, mark)
		// Custom metrics are correctness counters (inventory sizes,
		// faulty fractions); any drift is worth a line even though it
		// does not gate the exit code.
		for _, m := range sortedKeys(o.Metrics, nw.Metrics) {
			ov, nv := o.Metrics[m], nw.Metrics[m]
			if ov != nv {
				fmt.Fprintf(stdout, "  metric %s: %g -> %g\n", m, ov, nv)
			}
		}
	}
	if regressed {
		fmt.Fprintln(stdout, "FAIL: at least one benchmark slowed beyond its noise band")
		return 1
	}
	fmt.Fprintln(stdout, "ok: no regression beyond the noise band")
	return 0
}

// minBand is the tightest per-benchmark noise band history can derive:
// below 2% the comparison chases scheduler jitter even on a benchmark
// whose samples happen to agree closely.
const minBand = 0.02

// loadHistory loads every snapshot matching the glob and keeps those
// from the same host as ref. Unreadable or non-snapshot files are
// errors — a half-read history would silently skew the bands.
func loadHistory(glob string, ref snapshot) ([]snapshot, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return nil, fmt.Errorf("bad -history glob: %w", err)
	}
	var out []snapshot
	for _, p := range paths {
		s, err := load(p)
		if err != nil {
			return nil, err
		}
		if s.GOOS == ref.GOOS && s.GOARCH == ref.GOARCH && s.NumCPU == ref.NumCPU {
			out = append(out, s)
		}
	}
	return out, nil
}

// noiseBands derives a per-benchmark relative noise band from history:
// for every benchmark with at least three samples, 3·σ/µ of its
// observed ns/op (sample standard deviation), floored at minBand.
// Benchmarks with fewer samples get no entry — callers fall back to
// the flat threshold.
func noiseBands(history []snapshot) map[string]float64 {
	samples := map[string][]float64{}
	for _, s := range history {
		for n, r := range s.Results {
			if r.NsPerOp > 0 {
				samples[n] = append(samples[n], r.NsPerOp)
			}
		}
	}
	bands := map[string]float64{}
	for n, xs := range samples {
		if len(xs) < 3 {
			continue
		}
		mean := 0.0
		for _, x := range xs {
			mean += x
		}
		mean /= float64(len(xs))
		if mean <= 0 {
			continue
		}
		variance := 0.0
		for _, x := range xs {
			variance += (x - mean) * (x - mean)
		}
		variance /= float64(len(xs) - 1)
		band := 3 * math.Sqrt(variance) / mean
		if band < minBand {
			band = minBand
		}
		bands[n] = band
	}
	return bands
}

func load(path string) (snapshot, error) {
	var s snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Results) == 0 {
		return s, fmt.Errorf("%s: no benchmark results (not a BENCH_*.json snapshot?)", path)
	}
	return s, nil
}

func sortedKeys(ms ...map[string]float64) []string {
	seen := map[string]bool{}
	var out []string
	for _, m := range ms {
		for k := range m {
			if !seen[k] {
				seen[k] = true
				out = append(out, k)
			}
		}
	}
	sort.Strings(out)
	return out
}
