package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, name string, s snapshot) string {
	t.Helper()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseSnap() snapshot {
	return snapshot{
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4,
		Results: map[string]result{
			"BenchmarkFast": {Iterations: 100, NsPerOp: 1e6},
			"BenchmarkSlow": {Iterations: 10, NsPerOp: 5e8, Metrics: map[string]float64{"completed": 34}},
		},
	}
}

func TestIdenticalSnapshotsPass(t *testing.T) {
	p := writeSnap(t, "a.json", baseSnap())
	var out, errOut strings.Builder
	if code := run([]string{p, p}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Errorf("missing ok line:\n%s", out.String())
	}
}

func TestRegressionBeyondBandFails(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	slowed := baseSnap()
	slowed.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: 1.5e6} // +50%
	nw := writeSnap(t, "new.json", slowed)
	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION marker:\n%s", out.String())
	}
	// A wider band absorbs the same slowdown as noise.
	out.Reset()
	if code := run([]string{"-threshold", "0.6", old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("exit with -threshold 0.6 = %d, want 0\n%s", code, out.String())
	}
}

func TestSpeedupAndMetricDriftPass(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	faster := baseSnap()
	faster.Results["BenchmarkSlow"] = result{Iterations: 20, NsPerOp: 2e8, Metrics: map[string]float64{"completed": 35}}
	nw := writeSnap(t, "new.json", faster)
	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "metric completed: 34 -> 35") {
		t.Errorf("metric drift not reported:\n%s", out.String())
	}
}

func TestHostMismatchNeedsForce(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	other := baseSnap()
	other.NumCPU = 96
	other.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: 9e6}
	nw := writeSnap(t, "new.json", other)
	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2 on host mismatch", code)
	}
	if !strings.Contains(errOut.String(), "host mismatch") {
		t.Errorf("stderr should explain the mismatch:\n%s", errOut.String())
	}
	// -force compares informationally: the cross-host slowdown is shown
	// but must not fail the run.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-force", old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("exit with -force = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("-force should still show the delta marker:\n%s", out.String())
	}
}

func TestMissingAndNewBenchmarksAreListed(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	changed := baseSnap()
	delete(changed.Results, "BenchmarkSlow")
	changed.Results["BenchmarkAdded"] = result{Iterations: 5, NsPerOp: 1e7}
	nw := writeSnap(t, "new.json", changed)
	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"new", "gone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q column:\n%s", want, out.String())
		}
	}
}

func TestUsageAndBadInputExitTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"only-one.json"}, &out, &errOut); code != 2 {
		t.Errorf("exit with one arg = %d, want 2", code)
	}
	if code := run([]string{"nope.json", "nope.json"}, &out, &errOut); code != 2 {
		t.Errorf("exit with missing file = %d, want 2", code)
	}
	empty := writeSnap(t, "empty.json", snapshot{GOOS: "linux"})
	if code := run([]string{empty, empty}, &out, &errOut); code != 2 {
		t.Errorf("exit with empty results = %d, want 2", code)
	}
}

// The committed repository snapshot must stay loadable and self-compare
// clean — the exact invocation CI smokes.
func TestCommittedSnapshotSelfCompares(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Skip("no committed BENCH_*.json snapshot")
	}
	var out, errOut strings.Builder
	if code := run([]string{matches[0], matches[0]}, &out, &errOut); code != 0 {
		t.Fatalf("self-compare of %s: exit %d\n%s%s", matches[0], code, out.String(), errOut.String())
	}
}
