package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeSnap(t *testing.T, name string, s snapshot) string {
	t.Helper()
	buf, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseSnap() snapshot {
	return snapshot{
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", NumCPU: 4,
		Results: map[string]result{
			"BenchmarkFast": {Iterations: 100, NsPerOp: 1e6},
			"BenchmarkSlow": {Iterations: 10, NsPerOp: 5e8, Metrics: map[string]float64{"completed": 34}},
		},
	}
}

func TestIdenticalSnapshotsPass(t *testing.T) {
	p := writeSnap(t, "a.json", baseSnap())
	var out, errOut strings.Builder
	if code := run([]string{p, p}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "no regression") {
		t.Errorf("missing ok line:\n%s", out.String())
	}
}

func TestRegressionBeyondBandFails(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	slowed := baseSnap()
	slowed.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: 1.5e6} // +50%
	nw := writeSnap(t, "new.json", slowed)
	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("missing REGRESSION marker:\n%s", out.String())
	}
	// A wider band absorbs the same slowdown as noise.
	out.Reset()
	if code := run([]string{"-threshold", "0.6", old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("exit with -threshold 0.6 = %d, want 0\n%s", code, out.String())
	}
}

func TestSpeedupAndMetricDriftPass(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	faster := baseSnap()
	faster.Results["BenchmarkSlow"] = result{Iterations: 20, NsPerOp: 2e8, Metrics: map[string]float64{"completed": 35}}
	nw := writeSnap(t, "new.json", faster)
	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "metric completed: 34 -> 35") {
		t.Errorf("metric drift not reported:\n%s", out.String())
	}
}

func TestHostMismatchNeedsForce(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	other := baseSnap()
	other.NumCPU = 96
	other.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: 9e6}
	nw := writeSnap(t, "new.json", other)
	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 2 {
		t.Fatalf("exit = %d, want 2 on host mismatch", code)
	}
	if !strings.Contains(errOut.String(), "host mismatch") {
		t.Errorf("stderr should explain the mismatch:\n%s", errOut.String())
	}
	// -force compares informationally: the cross-host slowdown is shown
	// but must not fail the run.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-force", old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("exit with -force = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("-force should still show the delta marker:\n%s", out.String())
	}
}

func TestMissingAndNewBenchmarksAreListed(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	changed := baseSnap()
	delete(changed.Results, "BenchmarkSlow")
	changed.Results["BenchmarkAdded"] = result{Iterations: 5, NsPerOp: 1e7}
	nw := writeSnap(t, "new.json", changed)
	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"new", "gone"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q column:\n%s", want, out.String())
		}
	}
}

func TestUsageAndBadInputExitTwo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"only-one.json"}, &out, &errOut); code != 2 {
		t.Errorf("exit with one arg = %d, want 2", code)
	}
	if code := run([]string{"nope.json", "nope.json"}, &out, &errOut); code != 2 {
		t.Errorf("exit with missing file = %d, want 2", code)
	}
	empty := writeSnap(t, "empty.json", snapshot{GOOS: "linux"})
	if code := run([]string{empty, empty}, &out, &errOut); code != 2 {
		t.Errorf("exit with empty results = %d, want 2", code)
	}
}

// The committed repository snapshot must stay loadable and self-compare
// clean — the exact invocation CI smokes.
func TestCommittedSnapshotSelfCompares(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		t.Skip("no committed BENCH_*.json snapshot")
	}
	var out, errOut strings.Builder
	if code := run([]string{matches[0], matches[0]}, &out, &errOut); code != 0 {
		t.Fatalf("self-compare of %s: exit %d\n%s%s", matches[0], code, out.String(), errOut.String())
	}
}

// writeHistory commits n same-host history snapshots into one dir with
// BenchmarkFast sampled at the given ns/op values.
func writeHistory(t *testing.T, fastNs []float64) string {
	t.Helper()
	dir := t.TempDir()
	for i, ns := range fastNs {
		s := baseSnap()
		s.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: ns}
		buf, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("BENCH_%03d.json", i)), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return filepath.Join(dir, "BENCH_*.json")
}

// A quiet benchmark's history tightens its band below the flat ratio:
// a +10% slowdown passes the default 15% threshold but fails against
// the ~5% band three sigma of its own variance derives.
func TestHistoryTightensBand(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	slowed := baseSnap()
	slowed.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: 1.1e6} // +10%
	nw := writeSnap(t, "new.json", slowed)
	glob := writeHistory(t, []float64{1.00e6, 1.02e6, 0.98e6, 1.00e6}) // 3σ/µ ≈ 4.9%

	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("flat threshold should absorb +10%%: exit %d\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-history", glob, old, nw}, &out, &errOut); code != 1 {
		t.Fatalf("history band should flag +10%% on a quiet benchmark: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION (band") {
		t.Errorf("regression line should name the derived band:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "noise bands from 4 same-host history snapshots") {
		t.Errorf("band provenance line missing:\n%s", out.String())
	}
}

// A noisy benchmark's history widens its band beyond the flat ratio:
// the same +25% slowdown that fails the default threshold is absorbed
// when the benchmark's own variance says it is noise.
func TestHistoryWidensBand(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	slowed := baseSnap()
	slowed.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: 1.25e6} // +25%
	nw := writeSnap(t, "new.json", slowed)
	glob := writeHistory(t, []float64{1.0e6, 1.3e6, 0.7e6, 1.15e6, 0.85e6}) // 3σ/µ ≈ 72%

	var out, errOut strings.Builder
	if code := run([]string{old, nw}, &out, &errOut); code != 1 {
		t.Fatalf("flat threshold should flag +25%%: exit %d\n%s", code, out.String())
	}
	out.Reset()
	if code := run([]string{"-history", glob, old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("history band should absorb +25%% on a noisy benchmark: exit %d\n%s", code, out.String())
	}
}

// With fewer than three same-host samples the flat ratio still governs,
// and snapshots from other hosts never contribute to a band.
func TestHistoryFallbackAndHostFilter(t *testing.T) {
	old := writeSnap(t, "old.json", baseSnap())
	slowed := baseSnap()
	slowed.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: 1.1e6} // +10%
	nw := writeSnap(t, "new.json", slowed)

	// Two same-host samples: below the minimum, flat 15% applies, +10% passes.
	glob := writeHistory(t, []float64{1.0e6, 1.0e6})
	var out, errOut strings.Builder
	if code := run([]string{"-history", glob, old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("two samples must fall back to the flat ratio: exit %d\n%s", code, out.String())
	}

	// Four foreign-host samples: filtered out entirely, flat ratio again.
	dir := t.TempDir()
	for i := 0; i < 4; i++ {
		s := baseSnap()
		s.NumCPU = 96
		s.Results["BenchmarkFast"] = result{Iterations: 100, NsPerOp: 1e6}
		buf, _ := json.Marshal(s)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", i)), buf, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out.Reset()
	if code := run([]string{"-history", filepath.Join(dir, "BENCH_*.json"), old, nw}, &out, &errOut); code != 0 {
		t.Fatalf("foreign-host history must not band: exit %d\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "0 benchmarks banded") {
		t.Errorf("provenance should show zero banded benchmarks:\n%s", out.String())
	}

	// An unreadable history file is a hard error: exit 2.
	if err := os.WriteFile(filepath.Join(dir, "BENCH_bad.json"), []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	if code := run([]string{"-history", filepath.Join(dir, "BENCH_*.json"), old, nw}, &out, &errOut); code != 2 {
		t.Fatalf("corrupt history file must exit 2, got %d", code)
	}
}

// noiseBands itself: quiet benchmarks floor at minBand, the sample
// standard deviation (n-1) is used, and <3 samples yield no band.
func TestNoiseBands(t *testing.T) {
	mk := func(ns float64) snapshot {
		return snapshot{GOOS: "linux", GOARCH: "amd64", NumCPU: 4,
			Results: map[string]result{"B": {NsPerOp: ns}}}
	}
	// Identical samples: σ=0 → floored at minBand.
	bands := noiseBands([]snapshot{mk(1e6), mk(1e6), mk(1e6)})
	if got := bands["B"]; got != minBand {
		t.Errorf("zero-variance band = %g, want floor %g", got, minBand)
	}
	// Hand-computed: samples 9e5,1e6,1.1e6 → µ=1e6, σ=1e5 → 3σ/µ=0.3.
	bands = noiseBands([]snapshot{mk(9e5), mk(1e6), mk(1.1e6)})
	if got := bands["B"]; got < 0.2999 || got > 0.3001 {
		t.Errorf("band = %g, want 0.3", got)
	}
	// Two samples: no band.
	if bands := noiseBands([]snapshot{mk(1e6), mk(2e6)}); len(bands) != 0 {
		t.Errorf("two samples must not band: %v", bands)
	}
}
