package main

import (
	"strconv"
	"strings"
	"testing"
)

// Capturing the ground net and a supply-pinned net must work: ground
// reads a constant 0 and the reduced-MNA machinery still reports the
// eliminated supply net at its pinned voltage. Historically this path
// could only panic (unknown-net capture, nil Trace dereference); the
// regression pins the graceful behaviour.
func TestRunCapturesGroundAndEliminatedNet(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-ops", "w1,r1", "-nets", "0,vddn,btS"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) < 2 {
		t.Fatalf("CSV has %d lines, want samples", len(lines))
	}
	if lines[0] != "time,0,vddn,btS" {
		t.Fatalf("CSV header = %q", lines[0])
	}
	last := strings.Split(lines[len(lines)-1], ",")
	if len(last) != 4 {
		t.Fatalf("CSV row has %d fields: %q", len(last), lines[len(lines)-1])
	}
	gnd, err := strconv.ParseFloat(last[1], 64)
	if err != nil || gnd != 0 {
		t.Errorf("ground column = %q, want 0", last[1])
	}
	vdd, err := strconv.ParseFloat(last[2], 64)
	if err != nil || vdd < 3.2 || vdd > 3.4 {
		t.Errorf("vddn column = %q, want ≈3.3", last[2])
	}
	if !strings.Contains(errOut.String(), "r1 returned 1") {
		t.Errorf("read-back missing from stderr:\n%s", errOut.String())
	}
}

// A typo in -nets must exit with a diagnostic, not a panic.
func TestRunRejectsUnknownNet(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-nets", "btS,nope"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), `unknown net "nope"`) {
		t.Errorf("stderr should name the unknown net:\n%s", errOut.String())
	}
}
