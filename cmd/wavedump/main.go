// Command wavedump runs an operation sequence on the (optionally
// defective) electrical DRAM column and dumps the transient waveforms of
// selected nets as CSV — for inspecting the charge-sharing and
// sense-amplifier dynamics behind the fault-region maps.
//
// Usage:
//
//	wavedump -ops "w1,r1" -nets btS,bcS,c0s
//	wavedump -open 4 -rdef 1e7 -u 0 -ops "w1,r1" -nets btC,btS,c0s,obuf
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("wavedump", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		openID = fs.Int("open", 0, "open defect number to inject (0 = healthy)")
		rdef   = fs.Float64("rdef", 1e6, "open resistance [Ω]")
		u      = fs.Float64("u", -1, "floating-voltage initialization before the last operation [V] (-1 = none)")
		opsStr = fs.String("ops", "w1,r1", "comma-separated operations: w0,w1,r0,r1 (to the victim) or W0,W1 (to the bit-line neighbour)")
		nets   = fs.String("nets", dram.NetBTSA+","+dram.NetBCSA+","+dram.NetCell0Store, "comma-separated nets to record")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		return fail(stderr, "build column: %v", err)
	}
	var floatNets []string
	if *openID != 0 {
		o, ok := defect.ByID(*openID)
		if !ok {
			return fail(stderr, "unknown open %d", *openID)
		}
		col.SetSiteResistance(o.Site, *rdef)
		floatNets = o.Floats[0].Nets
	}
	if err := col.PowerUp(); err != nil {
		return fail(stderr, "power-up: %v", err)
	}

	ops := strings.Split(*opsStr, ",")
	netList := strings.Split(*nets, ",")
	rec, release, err := col.Capture(netList...)
	if err != nil {
		return fail(stderr, "capture: %v", err)
	}
	defer release()

	for i, op := range ops {
		op = strings.TrimSpace(op)
		if i == len(ops)-1 && *u >= 0 && len(floatNets) > 0 {
			col.SetNodeVoltages(*u, floatNets...)
		}
		if err := apply(col, op, stderr); err != nil {
			return fail(stderr, "op %q: %v", op, err)
		}
	}
	if err := rec.WriteCSV(stdout); err != nil {
		return fail(stderr, "csv: %v", err)
	}
	// Per-net summary. Trace returns nil for any net the recorder did
	// not capture, so the lookup is guarded even though netList was
	// validated above — a released recorder or an empty run must degrade
	// to a diagnostic, not a panic.
	for _, n := range netList {
		tr := rec.Trace(n)
		if tr == nil || tr.Len() == 0 {
			fmt.Fprintf(stderr, "wavedump: %-8s no samples recorded\n", n)
			continue
		}
		fmt.Fprintf(stderr, "wavedump: %-8s last %.3f V (min %.3f, max %.3f)\n",
			n, tr.Last(), tr.Min(), tr.Max())
	}
	fmt.Fprintf(stderr, "wavedump: %d ops, victim cell at %.3f V, output %d\n",
		len(ops), col.CellVoltage(0), col.OutputBit())
	return 0
}

// apply performs one operation token on the column.
func apply(col *dram.Column, op string, stderr io.Writer) error {
	if len(op) != 2 {
		return fmt.Errorf("bad operation token")
	}
	cell := 0
	if op[0] == 'W' || op[0] == 'R' {
		cell = 1
	}
	data, err := strconv.Atoi(op[1:])
	if err != nil || (data != 0 && data != 1) {
		return fmt.Errorf("bad data bit")
	}
	switch op[0] {
	case 'w', 'W':
		return col.Write(cell, data)
	case 'r', 'R':
		got, err := col.Read(cell)
		if err != nil {
			return err
		}
		fmt.Fprintf(stderr, "wavedump: %s returned %d\n", op, got)
		return nil
	}
	return fmt.Errorf("bad operation kind")
}

func fail(stderr io.Writer, format string, args ...any) int {
	fmt.Fprintf(stderr, "wavedump: "+format+"\n", args...)
	return 1
}
