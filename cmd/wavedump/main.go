// Command wavedump runs an operation sequence on the (optionally
// defective) electrical DRAM column and dumps the transient waveforms of
// selected nets as CSV — for inspecting the charge-sharing and
// sense-amplifier dynamics behind the fault-region maps.
//
// Usage:
//
//	wavedump -ops "w1,r1" -nets btS,bcS,c0s
//	wavedump -open 4 -rdef 1e7 -u 0 -ops "w1,r1" -nets btC,btS,c0s,obuf
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
)

func main() {
	var (
		openID = flag.Int("open", 0, "open defect number to inject (0 = healthy)")
		rdef   = flag.Float64("rdef", 1e6, "open resistance [Ω]")
		u      = flag.Float64("u", -1, "floating-voltage initialization before the last operation [V] (-1 = none)")
		opsStr = flag.String("ops", "w1,r1", "comma-separated operations: w0,w1,r0,r1 (to the victim) or W0,W1 (to the bit-line neighbour)")
		nets   = flag.String("nets", dram.NetBTSA+","+dram.NetBCSA+","+dram.NetCell0Store, "comma-separated nets to record")
	)
	flag.Parse()

	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		fatalf("build column: %v", err)
	}
	var floatNets []string
	if *openID != 0 {
		o, ok := defect.ByID(*openID)
		if !ok {
			fatalf("unknown open %d", *openID)
		}
		col.SetSiteResistance(o.Site, *rdef)
		floatNets = o.Floats[0].Nets
	}
	if err := col.PowerUp(); err != nil {
		fatalf("power-up: %v", err)
	}

	ops := strings.Split(*opsStr, ",")
	rec, release := col.Capture(strings.Split(*nets, ",")...)
	defer release()

	for i, op := range ops {
		op = strings.TrimSpace(op)
		if i == len(ops)-1 && *u >= 0 && len(floatNets) > 0 {
			col.SetNodeVoltages(*u, floatNets...)
		}
		if err := apply(col, op); err != nil {
			fatalf("op %q: %v", op, err)
		}
	}
	if err := rec.WriteCSV(os.Stdout); err != nil {
		fatalf("csv: %v", err)
	}
	fmt.Fprintf(os.Stderr, "wavedump: %d ops, victim cell at %.3f V, output %d\n",
		len(ops), col.CellVoltage(0), col.OutputBit())
}

// apply performs one operation token on the column.
func apply(col *dram.Column, op string) error {
	if len(op) != 2 {
		return fmt.Errorf("bad operation token")
	}
	cell := 0
	if op[0] == 'W' || op[0] == 'R' {
		cell = 1
	}
	data, err := strconv.Atoi(op[1:])
	if err != nil || (data != 0 && data != 1) {
		return fmt.Errorf("bad data bit")
	}
	switch op[0] {
	case 'w', 'W':
		return col.Write(cell, data)
	case 'r', 'R':
		got, err := col.Read(cell)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wavedump: %s returned %d\n", op, got)
		return nil
	}
	return fmt.Errorf("bad operation kind")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "wavedump: "+format+"\n", args...)
	os.Exit(1)
}
