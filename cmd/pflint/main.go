// Command pflint runs the full static-analysis stack over this
// repository: the netlist layer (floating-net prover, MNA solvability,
// phase-model verification, nine-opens floating-line cross-check), the
// march-test layer (structural lint plus the completion pre-pass), and
// the Go project linter.
//
// Usage:
//
//	pflint [flags] [./...]
//
// The optional package pattern selects the module root for the Go
// linter (default "./..."). The exit code is nonzero when any finding
// at error severity exists.
//
//	-v        also print informational findings
//	-selftest lint deliberately broken inputs instead of the repo; the
//	          exit code must be nonzero (used by CI to prove the tools
//	          can fail)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/device"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/lint/golint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
	"github.com/memtest/partialfaults/internal/report"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("pflint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	verbose := fs.Bool("v", false, "also print informational findings")
	selftest := fs.Bool("selftest", false, "lint deliberately broken inputs; exit must be nonzero")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	root := "."
	if rest := fs.Args(); len(rest) > 0 {
		root = strings.TrimSuffix(rest[0], "...")
		root = strings.TrimSuffix(root, "/")
		if root == "" {
			root = "."
		}
	}

	var findings lint.Findings
	if *selftest {
		findings = seededBadFindings()
	} else {
		var err error
		findings, err = lintRepo(root)
		if err != nil {
			fmt.Fprintf(stderr, "pflint: %v\n", err)
			return 2
		}
	}

	minSev := lint.Warning
	if *verbose {
		minSev = lint.Info
	}
	if err := report.WriteFindings(stdout, findings, minSev); err != nil {
		fmt.Fprintf(stderr, "pflint: %v\n", err)
		return 2
	}
	if findings.Count(lint.Error) > 0 {
		return 1
	}
	return 0
}

// lintRepo runs all three layers against the real inputs: the DRAM
// column netlist with its phase model and defect inventory, the march
// library, and the Go sources under root.
func lintRepo(root string) (lint.Findings, error) {
	out, err := analysis.Preflight(dram.Default())
	if err != nil {
		return nil, err
	}
	gofs, err := golint.Run(golint.DefaultConfig(root))
	if err != nil {
		return nil, err
	}
	out = append(out, gofs...)
	out.Sort()
	return out, nil
}

// seededBadFindings lints intentionally broken inputs — a netlist with
// a floating net and a voltage-source loop, a march test that can never
// pass on a healthy memory, a march test that provably misses coupling
// faults, a march test with a provable partial-fault detection gap,
// a technology with unphysical parameters, a rail-to-rail
// short, a transitive double short joining both rails only through an
// intermediate net, and a weak resistive bridge forming a contested
// divider — proving the analyzers can fail.
func seededBadFindings() lint.Findings {
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	lost := ckt.Node("lost")
	ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(3.3)))
	ckt.MustAdd(device.NewVSource("V2", vdd, 0, device.DC(3.3))) // source loop
	ckt.MustAdd(device.NewCapacitor("C1", lost, 0, 1e-15))       // floating net
	ckt.Freeze()
	out := netlint.New(ckt, netlint.Model{CutoffOhms: 1e9}).Check()

	bad := march.Test{Name: "seeded-bad", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(0)}},
		{Order: march.Up, Ops: []march.Op{march.R(1), march.W(0)}}, // reads 1, stores 0
	}}
	out = append(out, march.Lint(bad)...)

	// A structurally clean march test that provably misses coupling
	// faults: without any non-transition write it can never perform the
	// aggressor condition of a non-transition CFds, which the two-cell
	// completion pre-pass proves statically.
	missesCFds := march.Test{Name: "seeded-cfds-miss", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(0)}},
		{Order: march.Up, Ops: []march.Op{march.R(0), march.W(1)}},
		{Order: march.Down, Ops: []march.Op{march.R(1), march.W(0)}},
		{Order: march.Any, Ops: []march.Op{march.R(0)}},
	}}
	out = append(out, march.TwoCellCompletionPrePass([]march.Test{missesCFds}, march.TwoCellCatalog())...)

	// A march test with a provable detection gap: the MATS+ shape fires
	// the bit-line-mediated TF↓ partial fault (its ⇓ element's w0 sees a
	// bit line left high by the preceding r1) but never reads the victim
	// again, so the detection prover returns a guaranteed miss — for a
	// fault March PF provably detects. The paired error finding is a
	// tripwire: it appears only if the prover's verdicts regress.
	gap := march.Test{Name: "seeded-partial-gap", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(0)}},
		{Order: march.Up, Ops: []march.Op{march.R(0), march.W(1)}},
		{Order: march.Down, Ops: []march.Op{march.R(1), march.W(0)}},
	}}
	var tfdown march.CatalogEntry
	for _, e := range march.PaperFaultCatalog() {
		if e.Name == "TF↓ partial (bit line, Open 5)" {
			tfdown = e
		}
	}
	gapProof := march.ProveDetects(gap, tfdown)
	pfProof := march.ProveDetects(march.MarchPF(), tfdown)
	if gapProof.Verdict == march.VerdictMisses && pfProof.Verdict == march.VerdictDetects {
		out = append(out, lint.Finding{
			Layer: "march", Rule: "detection-gap", Severity: lint.Warning,
			Subject: gap.Name,
			Message: fmt.Sprintf("provably never detects %q: %s — March PF provably detects it (%s)", tfdown.Name, gapProof.Witness, pfProof.Trace),
		})
	} else {
		out = append(out, lint.Finding{
			Layer: "march", Rule: "detection-selftest", Severity: lint.Error,
			Subject: gap.Name,
			Message: fmt.Sprintf("expected a proved miss for %q and a proved March PF detection, got %s and %s — the detection prover regressed", tfdown.Name, gapProof.Verdict, pfProof.Verdict),
		})
	}

	badTech := dram.Default()
	badTech.CCell = -30e-15       // negative capacitance
	badTech.VPP = badTech.VDD - 1 // no word-line boost
	badTech.TPre = 1e-13          // precharge shorter than the bit-line RC
	out = append(out, dram.LintTechnology(badTech)...)

	// A rail-to-rail short: merging vdd and vpp contracts two different
	// supplies into one class, which the net-merge prover must report as
	// a contested supply pair.
	sck := circuit.New()
	svdd := sck.Node("vdd")
	svpp := sck.Node("vpp")
	sout := sck.Node("out")
	sck.MustAdd(device.NewVSource("V1", svdd, 0, device.DC(1.8)))
	sck.MustAdd(device.NewVSource("V2", svpp, 0, device.DC(3.3)))
	sck.MustAdd(device.NewResistor("R_load", svdd, sout, 1e3))
	sck.MustAdd(device.NewResistor("R_gnd", sout, 0, 1e3))
	sck.MustAdd(device.NewResistor("R_short", svdd, svpp, 10))
	sck.Freeze()
	merged := netlint.New(sck, netlint.Model{
		Phases: []netlint.Phase{{Name: "on"}},
		Roles:  map[string][]string{"out": {"on"}},
	})
	out = append(out, merged.CheckMerges([]string{"R_short"})...)

	// A transitive double short: neither defect alone touches both
	// rails, but together they chain vdd—mid—gnd, so only the
	// multi-defect contraction sees the supply pair.
	dck := circuit.New()
	dvdd := dck.Node("vdd")
	dmid := dck.Node("mid")
	dout := dck.Node("out")
	dck.MustAdd(device.NewVSource("V1", dvdd, 0, device.DC(3.3)))
	dck.MustAdd(device.NewResistor("R_load", dvdd, dout, 1e3))
	dck.MustAdd(device.NewResistor("R_gnd", dout, 0, 1e3))
	dck.MustAdd(device.NewResistor("R_s1", dvdd, dmid, 10))
	dck.MustAdd(device.NewResistor("R_s2", dmid, 0, 10))
	dck.Freeze()
	double := netlint.New(dck, netlint.Model{
		Phases: []netlint.Phase{{Name: "on"}},
		Roles:  map[string][]string{"out": {"on"}, "mid": {"on"}},
	})
	out = append(out, double.CheckMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{
		{Name: "R_s1"}, {Name: "R_s2"},
	}})...)

	// A weak resistive bridge: out's own 2 mS divider drive against an
	// ideal rail through a 1.5 kΩ bridge is within the weak ratio — a
	// genuine analog fight the prover must flag as weak-contested.
	wck := circuit.New()
	wvdd := wck.Node("vdd")
	wout := wck.Node("out")
	wck.MustAdd(device.NewVSource("V1", wvdd, 0, device.DC(3.3)))
	wck.MustAdd(device.NewResistor("R_a", wvdd, wout, 1e3))
	wck.MustAdd(device.NewResistor("R_b", wout, 0, 1e3))
	wck.MustAdd(device.NewResistor("R_weak", wout, wvdd, 1.5e3))
	wck.Freeze()
	weak := netlint.New(wck, netlint.Model{
		Phases:     []netlint.Phase{{Name: "on"}},
		Roles:      map[string][]string{"out": {"on"}},
		CutoffOhms: 1e9,
		NetVolts:   map[string]float64{"vdd": 3.3},
	})
	out = append(out, weak.CheckMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{
		{Name: "R_weak", Ohms: 1.5e3},
	}})...)
	out.Sort()
	return out
}
