package main

import (
	"strings"
	"testing"
)

// The acceptance gate: zero on the repository itself, nonzero on the
// seeded bad inputs.
func TestRepositoryExitsZero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"../../..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d on the repository, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "0 errors, 0 warnings") {
		t.Errorf("summary should report a clean run:\n%s", out.String())
	}
}

func TestSelftestExitsNonzero(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-selftest"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d on seeded bad inputs, want 1\nstderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{
		"floating-net", "vsource-loop", "contradictory-read", "merge-supply-pair",
		// The transitive double short: neither R_s1 nor R_s2 alone joins
		// both rails, so this class can only come from the multi-defect
		// contraction.
		"0=mid=vdd",
		// The weak resistive bridge's contested divider.
		"merge-weak-contested",
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("selftest output missing %q:\n%s", want, out.String())
		}
	}
}

// -v surfaces the informational findings (the completion pre-passes and
// gmin diagnostics) that the default threshold hides.
func TestVerboseShowsInfo(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-v", "../../..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, want 0\nstderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"cannot-complete", "cannot-complete-twocell", "gmin-dependent"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose output missing %q", want)
		}
	}
}

// The seeded CFds-missing march test: structurally clean (no error
// findings of its own), but the two-cell completion pre-pass proves it
// cannot detect the non-transition disturb couplings.
func TestSelftestFlagsSeededCFdsMiss(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-selftest", "-v"}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d on seeded bad inputs, want 1\nstderr:\n%s", code, errOut.String())
	}
	for _, want := range []string{"seeded-cfds-miss", "cannot-complete-twocell", "CFds"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("verbose selftest output missing %q:\n%s", want, out.String())
		}
	}
}
