// Command pfserve runs the partial-fault analysis service: a
// long-running HTTP JSON API over the paper's pipeline — Table 1
// inventories, march coverage matrices, two-cell certificates, the
// static detection matrix and the net-merge prover — with singleflight
// de-duplication of concurrent identical requests and an optional
// disk-persistent content-addressed result store.
//
// Usage:
//
//	pfserve -addr :8080 -store /var/lib/pfserve
//	pfserve -addr 127.0.0.1:0 -parallel 4
//
// Endpoints (POST JSON unless noted):
//
//	GET  /v1/healthz    liveness
//	GET  /v1/metrics    request/cache/singleflight/traced-sweep counters
//	POST /v1/inventory  {"engine":"behav|spice","sweep":"dense|traced","opens":[..],"rdefs":[..],"us":[..]}
//	POST /v1/coverage   {"tests":[..],"catalog":"classical|paper","engine":"memsim|bitsim"}
//	POST /v1/twocell    {"test":"MATS+","offsets":[1,-1],"rows":4,"cols":4}
//	POST /v1/matrix     {"tests":[..]}
//	POST /v1/predict    {"open":4} or {"defects":[{"site":"bridge.bl.bl","ohms":2e6}]}
//	POST /v1/stress     {"corners":"low-vdd;hot","opens":[..],"rdefs":[..],"us":[..]}
//	POST /v1/batch      {"requests":[{"kind":"matrix","body":{..}},..]}
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"github.com/memtest/partialfaults/internal/service"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr, nil))
}

// run builds the server and serves until the listener fails. When ready
// is non-nil it receives the bound address once the listener is up —
// tests pass ":0" and read the real port from it.
func run(args []string, stdout, stderr io.Writer, ready chan<- string) int {
	fs := flag.NewFlagSet("pfserve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		storeDir = fs.String("store", "", "persistent result-store directory (empty = in-memory only)")
		parallel = fs.Int("parallel", 0, "max concurrent simulations (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	srv, err := service.New(service.Config{StoreDir: *storeDir, Parallelism: *parallel})
	if err != nil {
		fmt.Fprintf(stderr, "pfserve: %v\n", err)
		return 1
	}
	defer srv.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "pfserve: %v\n", err)
		return 1
	}
	fmt.Fprintf(stdout, "pfserve listening on %s\n", ln.Addr())
	if ready != nil {
		ready <- ln.Addr().String()
	}
	if err := http.Serve(ln, srv); err != nil {
		fmt.Fprintf(stderr, "pfserve: %v\n", err)
		return 1
	}
	return 0
}
