package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// bootServer starts pfserve on an ephemeral port and returns its base
// URL. The serve goroutine dies with the test process; the OS reclaims
// the listener.
func bootServer(t *testing.T, extra ...string) string {
	t.Helper()
	ready := make(chan string, 1)
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	go run(args, io_Discard{}, io_Discard{}, ready)
	select {
	case addr := <-ready:
		return "http://" + addr
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
		return ""
	}
}

type io_Discard struct{}

func (io_Discard) Write(p []byte) (int, error) { return len(p), nil }

func TestRunRejectsBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errw, nil); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "flag") {
		t.Fatalf("stderr: %s", errw.String())
	}
}

func TestRunRejectsBadAddr(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-addr", "999.999.999.999:1"}, &out, &errw, nil); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestServeHealthzAndMatrix(t *testing.T) {
	base := bootServer(t, "-store", t.TempDir())
	resp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}

	body := strings.NewReader(`{"tests":["MATS+"]}`)
	resp, err = http.Post(base+"/v1/matrix", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("matrix: %d", resp.StatusCode)
	}
	var env struct {
		Result json.RawMessage `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if len(env.Result) == 0 {
		t.Fatal("empty matrix result")
	}
}

// TestServeTracedInventory drives the traced-sweep knob end to end
// over HTTP: a traced inventory answers, the dense spelling of the
// same request hits its store entry byte for byte, and /v1/metrics
// reports the traced-sweep work.
func TestServeTracedInventory(t *testing.T) {
	base := bootServer(t, "-store", t.TempDir())
	grid := `"opens":[1],"rdefs":[1e3,1e4,1e5,1e6,1e7],"us":[0,0.66,1.32,1.98,2.64,3.3]`
	fetch := func(body string) (bool, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/inventory", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("inventory: %d", resp.StatusCode)
		}
		var env struct {
			Cached bool            `json:"cached"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return env.Cached, env.Result
	}
	cached, traced := fetch(`{"sweep":"traced",` + grid + `}`)
	if cached {
		t.Fatal("first traced request claims cached")
	}
	cached, dense := fetch(`{` + grid + `}`)
	if !cached {
		t.Fatal("dense request missed the traced store entry")
	}
	if !bytes.Equal(traced, dense) {
		t.Fatal("traced and dense payloads differ")
	}

	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Trace struct {
			Planes    int     `json:"planes"`
			Simulated int     `json:"simulated"`
			Inferred  int     `json:"inferred"`
			Reduction float64 `json:"reduction"`
		} `json:"trace"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Trace.Planes == 0 || m.Trace.Simulated == 0 {
		t.Fatalf("metrics missing traced-sweep work: %+v", m.Trace)
	}
}

// TestServeStress drives /v1/stress end to end over HTTP: a two-corner
// matrix on a reduced grid answers with per-corner inventories and a
// certificate, the repeated request hits the store byte for byte, and
// /v1/metrics reports the stress work.
func TestServeStress(t *testing.T) {
	base := bootServer(t, "-store", t.TempDir())
	req := `{"corners":"low-vdd","tests":["March PF"],"opens":[1,5],"rdefs":[1e4,1e6],"us":[0,1.5,3.3],"rows":2,"cols":2}`
	fetch := func() (bool, []byte) {
		t.Helper()
		resp, err := http.Post(base+"/v1/stress", "application/json", strings.NewReader(req))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("stress: %d", resp.StatusCode)
		}
		var env struct {
			Cached bool            `json:"cached"`
			Result json.RawMessage `json:"result"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Fatal(err)
		}
		return env.Cached, env.Result
	}
	cached, fresh := fetch()
	if cached {
		t.Fatal("first stress request claims cached")
	}
	var res struct {
		Corners []struct {
			Name      string            `json:"name"`
			Inventory []json.RawMessage `json:"inventory"`
		} `json:"corners"`
		Certificate struct {
			Claims []json.RawMessage `json:"claims"`
		} `json:"certificate"`
	}
	if err := json.Unmarshal(fresh, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Corners) != 2 || res.Corners[0].Name != "nominal" || res.Corners[1].Name != "low-vdd" {
		t.Fatalf("corners: %+v", res.Corners)
	}
	for _, c := range res.Corners {
		if len(c.Inventory) == 0 {
			t.Fatalf("corner %s has an empty inventory", c.Name)
		}
	}
	if len(res.Certificate.Claims) == 0 {
		t.Fatal("certificate has no claims")
	}

	cached, stored := fetch()
	if !cached {
		t.Fatal("repeated stress request missed the store")
	}
	if !bytes.Equal(fresh, stored) {
		t.Fatal("fresh and stored stress payloads differ")
	}

	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Stress struct {
			Matrices uint64 `json:"matrices"`
			Corners  uint64 `json:"corners"`
		} `json:"stress"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Stress.Matrices != 1 || m.Stress.Corners != 2 {
		t.Fatalf("stress metrics = %+v, want 1 matrix over 2 corners", m.Stress)
	}
}

// TestConcurrentDuplicatesCollapse boots the real server, fires
// concurrent identical sweep requests over HTTP and asserts the
// singleflight layer collapsed the duplicates (via /v1/metrics).
func TestConcurrentDuplicatesCollapse(t *testing.T) {
	base := bootServer(t, "-parallel", "2")
	const n = 8
	// A spice-engine sweep: slow enough that all eight clients are in
	// flight together, so the duplicates genuinely race.
	req := `{"engine":"spice","opens":[1,4],"rdefs":[1e4,1e6],"us":[0,3.3]}`
	results := make([][]byte, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/inventory", "application/json", strings.NewReader(req))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var env struct {
				Result json.RawMessage `json:"result"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				errs[i] = err
				return
			}
			results[i] = env.Result
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < n; i++ {
		if !bytes.Equal(results[0], results[i]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}

	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m struct {
		Requests              map[string]uint64 `json:"requests"`
		SingleflightCollapsed uint64            `json:"singleflight_collapsed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["inventory"] != n {
		t.Fatalf("request counter = %d, want %d", m.Requests["inventory"], n)
	}
	if m.SingleflightCollapsed == 0 {
		t.Fatal("no requests collapsed — singleflight did not engage")
	}
}
