// Command partialfaults runs the full fault-analysis pipeline of the
// paper: inject every simulated open, sweep every floating-voltage
// group over the (R_def, U) plane for the static SOSes, identify partial
// faults, search completing operations, and print the resulting
// inventory — our reproduction of Table 1.
//
// Usage:
//
//	partialfaults [-engine behav|spice] [-opens 1,3,4,5] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/numeric"
	"github.com/memtest/partialfaults/internal/report"
)

func main() {
	var (
		engine  = flag.String("engine", "behav", "simulation engine: behav (analytical) or spice (transient)")
		opens   = flag.String("opens", "", "comma-separated open numbers (default: all simulated opens)")
		quick   = flag.Bool("quick", false, "coarser grid for a fast run")
		verbose = flag.Bool("v", false, "print pipeline progress")
		doLint  = flag.Bool("lint", false, "run the static-analysis pre-flight and abort on errors")
	)
	flag.Parse()

	if *doLint {
		preflight()
	}

	var factory analysis.Factory
	switch *engine {
	case "behav":
		factory = behav.NewFactory(behav.DefaultParams())
	case "spice":
		factory = analysis.NewSpiceFactory(dram.Default())
	default:
		fatalf("unknown engine %q", *engine)
	}

	cfg := analysis.InventoryConfig{
		Factory: factory,
		RDefs:   numeric.Logspace(1e3, 1e8, 11),
		Us:      numeric.Linspace(0, 4.6, 8),
	}
	if *quick {
		cfg.RDefs = numeric.Logspace(1e4, 1e8, 5)
		cfg.Us = numeric.Linspace(0, 4.6, 4)
	}
	if *verbose {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}
	if *opens != "" {
		for _, tok := range strings.Split(*opens, ",") {
			id, err := strconv.Atoi(strings.TrimSpace(tok))
			if err != nil {
				fatalf("bad -opens entry %q", tok)
			}
			o, ok := defect.ByID(id)
			if !ok {
				fatalf("unknown open %d", id)
			}
			cfg.Opens = append(cfg.Opens, o)
		}
	}

	rows, err := analysis.BuildInventory(cfg)
	if err != nil {
		fatalf("pipeline: %v", err)
	}
	fmt.Println("Partial faults observed in DRAM simulation (reproduction of Table 1):")
	fmt.Println()
	if err := report.WriteInventory(os.Stdout, rows); err != nil {
		fatalf("report: %v", err)
	}
	possible, impossible := 0, 0
	for _, r := range rows {
		if r.Possible {
			possible++
		} else {
			impossible++
		}
	}
	fmt.Printf("\n%d partial faults found; %d completed, %d not completable by memory operations\n",
		len(rows), possible, impossible)

	matches, exact, ffmOnly := analysis.CompareWithPaper(rows)
	fmt.Printf("\nComparison with the paper's published Table 1 (%d exact, %d FFM-only, %d rows):\n\n",
		exact, ffmOnly, len(matches))
	fmt.Print(analysis.SummarizeComparison(matches))
}

// preflight runs the static netlist, inventory and march checks and
// aborts before the pipeline when they find an error.
func preflight() {
	findings, err := analysis.Preflight(dram.Default())
	if err != nil {
		fatalf("lint: %v", err)
	}
	if err := report.WriteFindings(os.Stderr, findings, lint.Warning); err != nil {
		fatalf("lint: %v", err)
	}
	if findings.Count(lint.Error) > 0 {
		fatalf("lint: static analysis failed; not running the pipeline")
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "partialfaults: "+format+"\n", args...)
	os.Exit(1)
}
