package partialfaults

import (
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// These integration tests exercise the public facade end-to-end: the
// full paper pipeline through only exported API.

func TestIntegrationPaperHeadlineViaFacade(t *testing.T) {
	// The complete Figure 3 story through the public API.
	open, ok := OpenByID(4)
	if !ok {
		t.Fatal("Open 4 missing")
	}
	group := open.Floats[0]

	bare, err := SweepPlane(SweepConfig{
		Factory: NewBehavFactory(), Open: open, Float: group,
		SOS:   MustParseFP("<1r1/0/0>").S,
		RDefs: []float64{1e3, 1e5, 1e7},
		Us:    []float64{0, 1.65, 3.3},
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	findings := IdentifyPartialFaults(bare)
	if len(findings) == 0 {
		t.Fatal("the bare 1r1 must be partial for Open 4")
	}

	comp, err := SearchCompletion(CompletionConfig{
		Factory: NewBehavFactory(), Open: open, Float: group,
		Base:  MustParseFP("<1r1/0/0>"),
		RDefs: []float64{1e6},
		Us:    []float64{0, 1.65, 3.3},
	})
	if err != nil {
		t.Fatalf("completion: %v", err)
	}
	if !comp.Possible || comp.Completed.String() != "<1v [w0BL] r1v/0/0>" {
		t.Fatalf("completion = %v %s, want the paper's <1v [w0BL] r1v/0/0>", comp.Possible, comp.Completed)
	}
}

func TestIntegrationElectricalColumnViaFacade(t *testing.T) {
	col, err := NewColumn(DefaultTechnology())
	if err != nil {
		t.Fatalf("build column: %v", err)
	}
	if err := col.PowerUp(); err != nil {
		t.Fatalf("power-up: %v", err)
	}
	if err := col.Write(0, 1); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := col.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got != 1 {
		t.Errorf("read = %d, want 1", got)
	}
}

func TestIntegrationBehavModelViaFacade(t *testing.T) {
	m := NewBehavModel()
	if err := m.Write(1, 1); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Read(1); got != 1 {
		t.Errorf("behav read = %d, want 1", got)
	}
}

func TestIntegrationMarchPFViaFacade(t *testing.T) {
	pf := MarchPF()
	if pf.Length() != 16 {
		t.Errorf("March PF length = %dN, want 16N", pf.Length())
	}
	parsed, err := ParseMarchTest("copy", pf.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if parsed.String() != pf.String() {
		t.Error("march notation round trip failed")
	}
	if len(MarchTests()) < 9 {
		t.Errorf("library has %d tests, want ≥ 9", len(MarchTests()))
	}

	arr := NewMemArray(3, 3)
	if err := arr.Inject(InjectableFault{
		Victim: 4,
		FP:     MustParseFP("<[w1 w1 w0] r0/1/1>"),
		Float:  defect.FloatMemoryCell,
	}); err != nil {
		t.Fatal(err)
	}
	ms, err := pf.Run(arr, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) == 0 {
		t.Error("March PF must catch the Open 1 completed RDF0")
	}
}

func TestIntegrationOpensCatalog(t *testing.T) {
	opens := Opens()
	if len(opens) != 9 {
		t.Fatalf("Opens() = %d, want 9", len(opens))
	}
	for i, o := range opens {
		if o.ID != i+1 {
			t.Errorf("open %d has ID %d", i, o.ID)
		}
		if !strings.Contains(o.Name(), "Open") {
			t.Errorf("open name %q", o.Name())
		}
	}
	if _, ok := OpenByID(42); ok {
		t.Error("OpenByID(42) must not exist")
	}
}

func TestIntegrationFPFacade(t *testing.T) {
	p, err := ParseFP("<1v [w0BL] r1v/0/0>")
	if err != nil {
		t.Fatal(err)
	}
	if p.Classify() != fp.RDF1 {
		t.Errorf("classified %s, want RDF1", p.Classify())
	}
	if CountSingleCellFPs(1) != 10 {
		t.Error("static one-op FP count must be 10")
	}
}
