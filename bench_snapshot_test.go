package partialfaults

import (
	"encoding/json"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// benchSnapshot is the schema of the committed BENCH_*.json files: one
// record per tracked benchmark with the wall-clock cost and the custom
// metrics it reports. Snapshots committed across PRs record the perf
// trajectory of the sweep pipeline; compare like with like — the files
// also record the host, and the repo's history spans machines.
type benchSnapshot struct {
	Date      string                 `json:"date"`
	GoVersion string                 `json:"go_version"`
	GOOS      string                 `json:"goos"`
	GOARCH    string                 `json:"goarch"`
	NumCPU    int                    `json:"num_cpu"`
	Results   map[string]benchResult `json:"results"`
}

type benchResult struct {
	Iterations int                `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// TestBenchSnapshot records a benchmark snapshot when BENCH_SNAPSHOT is
// set — to "1" for the date-stamped default filename, or to an explicit
// *.json path. The tracked set covers the performance layer's acceptance
// benchmarks (the Table 1 pipeline, the electrical plane sweeps naive
// versus pooled, the two per-operation unit costs, the bit-plane versus
// scalar march engines, and the analysis service under concurrent HTTP
// load). testing.Benchmark honours -benchtime, so CI smoke runs can
// pass -benchtime 1x.
func TestBenchSnapshot(t *testing.T) {
	dest := os.Getenv("BENCH_SNAPSHOT")
	if dest == "" {
		t.Skip("set BENCH_SNAPSHOT=1 (or a target *.json path) to record a benchmark snapshot")
	}
	if !strings.HasSuffix(dest, ".json") {
		dest = "BENCH_" + time.Now().UTC().Format("2006-01-02") + ".json"
	}
	tracked := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkTable1PartialFaultInventory", BenchmarkTable1PartialFaultInventory},
		{"BenchmarkTracedPlaneSweep", BenchmarkTracedPlaneSweep},
		{"BenchmarkSpicePlaneSweepNaive", BenchmarkSpicePlaneSweepNaive},
		{"BenchmarkSpicePlaneSweepPooled", BenchmarkSpicePlaneSweepPooled},
		{"BenchmarkSpiceOperation", BenchmarkSpiceOperation},
		{"BenchmarkBehavOperation", BenchmarkBehavOperation},
		{"BenchmarkBitsimMarchPF", BenchmarkBitsimMarchPF},
		{"BenchmarkMemsimMarchPF", BenchmarkMemsimMarchPF},
		{"BenchmarkServeLoad", BenchmarkServeLoad},
		{"BenchmarkStressMatrix", BenchmarkStressMatrix},
	}
	snap := benchSnapshot{
		Date:      time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Results:   map[string]benchResult{},
	}
	for _, tb := range tracked {
		r := testing.Benchmark(tb.fn)
		if r.N == 0 {
			t.Fatalf("%s did not run (a b.Fatal inside the benchmark aborts the snapshot)", tb.name)
		}
		snap.Results[tb.name] = benchResult{
			Iterations: r.N,
			NsPerOp:    float64(r.NsPerOp()),
			Metrics:    r.Extra,
		}
		t.Logf("%s: %d iter, %.3g ms/op", tb.name, r.N, float64(r.NsPerOp())/1e6)
	}
	buf, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(dest, append(buf, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", dest)
}
