// March coverage: evaluates the paper's March PF and the classical march
// test library against the static fault catalog and the completed
// partial faults of Table 1, printing the detection matrix — the
// testing-impact story of Sections 1 and 5.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/report"
)

func main() {
	tests := []march.Test{
		march.MATSPlus(), march.MarchX(), march.MarchCMinus(),
		march.MarchSS(), march.MarchPF(),
	}
	for _, t := range tests {
		fmt.Printf("%-9s %2dN  %s\n", t.Name, t.Length(), t)
	}
	fmt.Println()

	// The paper's Section 1 example first: {m(w1,r1)} vs RDF1.
	w1r1 := march.Test{Name: "{m(w1,r1)}", Elements: []march.Element{
		{Order: march.Any, Ops: []march.Op{march.W(1), march.R(1)}},
	}}
	plain := march.CatalogEntry{Name: "plain RDF1", FP: fp.MustParse("<1r1/0/0>")}
	partial := march.CatalogEntry{
		Name: "partial RDF1", FP: fp.MustParse("<1v [w0BL] r1v/0/0>"),
		Float: defect.FloatBitLine, Partial: true,
	}
	for _, e := range []march.CatalogEntry{plain, partial} {
		det, caught, total, err := march.Detects(w1r1, 4, 1, e.Make)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("{m(w1,r1)} vs %-13s detected=%v (%d/%d scenarios)\n", e.Name+":", det, caught, total)
	}
	fmt.Println("→ the fault model alone suggests {m(w1,r1)} suffices; the partial form escapes it.")
	fmt.Println()

	// Full matrix over both catalogs.
	catalog := append(march.ClassicalFaultCatalog(), march.PaperFaultCatalog()...)
	results, err := march.CoverageMatrix(tests, catalog, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(tests))
	for i, t := range tests {
		names[i] = t.Name
	}
	if err := report.WriteCoverage(os.Stdout, results, names); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n✓ = guaranteed detection, ✗ = guaranteed miss, a/b = caught in a of b scenarios.")
	fmt.Println("The word-line (\"Not possible\") partial faults evade every march test — no")
	fmt.Println("memory operation can set a floating word line, exactly as the paper proves.")
}
