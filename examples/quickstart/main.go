// Quickstart: build a DRAM column, inject a bit-line open, and watch a
// partial fault appear and disappear with the floating bit-line voltage —
// the paper's Figure 1 scenario in a dozen lines of API.
package main

import (
	"fmt"
	"log"

	"github.com/memtest/partialfaults/internal/dram"
)

func main() {
	// A healthy 0.35 µm-class column, simulated at the electrical level.
	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		log.Fatalf("build column: %v", err)
	}
	if err := col.PowerUp(); err != nil {
		log.Fatalf("power-up: %v", err)
	}

	// Healthy behaviour: write 1, read 1.
	if err := col.Write(0, 1); err != nil {
		log.Fatalf("write: %v", err)
	}
	got, err := col.Read(0)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("healthy column:  w1 → r%d (cell at %.2f V)\n", got, col.CellVoltage(0))

	// Inject the paper's Figure 1 defect: a 10 MΩ open on the bit line
	// between the cell and the precharge devices (Open 4).
	col.SetSiteResistance(dram.SiteOpen4BLPre, 10e6)

	// The march test {m(w1, r1)} implied by the RDF1 fault model passes:
	// the w1 preconditions the floating bit line high.
	if err := col.Write(0, 1); err != nil {
		log.Fatalf("write: %v", err)
	}
	got, err = col.Read(0)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("defective, w1;r1: r%d — the fault hides (BL preconditioned high)\n", got)

	// A completing w0 to ANOTHER cell on the same bit line pulls the
	// floating line low; now the read destroys the stored 1.
	if err := col.Write(0, 1); err != nil {
		log.Fatalf("write: %v", err)
	}
	if err := col.Write(1, 0); err != nil { // completing operation
		log.Fatalf("write: %v", err)
	}
	got, err = col.Read(0)
	if err != nil {
		log.Fatalf("read: %v", err)
	}
	fmt.Printf("defective, w1v [w0BL] r1v: r%d, cell left at %.2f V — the completed fault <1v [w0BL] r1v/0/0>\n",
		got, col.CellVoltage(0))
}
