// Cell open walkthrough: regenerates the paper's Figure 4 — the wedge-
// shaped RDF0 region of an in-cell open (Open 1), whose onset resistance
// depends strongly on the floating cell voltage, and the triple-write
// completion [w1 w1 w0] r0 that removes the dependence. Runs both the
// fast analytical engine and, at a few probe points, the full electrical
// (SPICE-level) column for cross-validation.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/numeric"
	"github.com/memtest/partialfaults/internal/report"
)

func main() {
	open, _ := defect.ByID(1)
	group, _ := open.Float(defect.FloatMemoryCell)
	fast := behav.NewFactory(behav.DefaultParams())

	rdefs := numeric.Logspace(1e4, 1e7, 9)
	us := numeric.Linspace(0, 3.3, 10)

	// Figure 4(a): the bare r0.
	bare, err := analysis.SweepPlane(analysis.SweepConfig{
		Factory: fast, Open: open, Float: group,
		SOS:   fp.NewSOS(fp.Init0, fp.R(0)),
		RDefs: rdefs, Us: us,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 4(a): S = 0r0 ===")
	if err := report.WritePlane(os.Stdout, bare); err != nil {
		log.Fatal(err)
	}

	// The paper's headline numbers: RDF0 onset at U = 1.6 V vs U = 0 V.
	uLow, uHigh := 0, 0
	for j, u := range us {
		if u <= 0.01 {
			uLow = j
		}
		if u <= 1.6 {
			uHigh = j
		}
	}
	onHigh, _ := bare.MinRDefWithFFM(fp.RDF0, uHigh)
	onLow, okLow := bare.MinRDefWithFFM(fp.RDF0, uLow)
	fmt.Printf("\nRDF0 onset: %.0f kΩ at U≈1.6 V", onHigh/1e3)
	if okLow {
		fmt.Printf(" vs %.0f kΩ at U=0 V (paper: 150 kΩ vs 300 kΩ)\n\n", onLow/1e3)
	} else {
		fmt.Printf("; never at U=0 V in this grid (paper: 300 kΩ)\n\n")
	}

	// Figure 4(b): the completed SOS.
	completed, err := analysis.SweepPlane(analysis.SweepConfig{
		Factory: fast, Open: open, Float: group,
		SOS:   fp.MustParse("<[w1 w1 w0] r0/1/1>").S,
		RDefs: rdefs, Us: us,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Figure 4(b): S = [w1 w1 w0] r0 ===")
	if err := report.WritePlane(os.Stdout, completed); err != nil {
		log.Fatal(err)
	}

	// Cross-validate a few points against the full electrical model.
	fmt.Println("\ncross-validation against the transient (SPICE-level) column:")
	spice := analysis.NewSpiceFactory(dram.Default())
	sos := fp.NewSOS(fp.Init0, fp.R(0))
	for _, probe := range [][2]float64{{5e4, 1.6}, {5e4, 0}, {3e6, 0}} {
		a, err := analysis.RunSOS(fast, open, probe[0], group.Nets, probe[1], sos)
		if err != nil {
			log.Fatal(err)
		}
		b, err := analysis.RunSOS(spice, open, probe[0], group.Nets, probe[1], sos)
		if err != nil {
			log.Fatal(err)
		}
		_, fa := analysis.ClassifyOutcome(sos, a)
		_, fb := analysis.ClassifyOutcome(sos, b)
		agree := "agree"
		if fa != fb {
			agree = "DISAGREE"
		}
		fmt.Printf("  R_def=%-8.3g U=%.1f V: behav faulty=%-5v spice faulty=%-5v → %s\n",
			probe[0], probe[1], fa, fb, agree)
	}
}
