// Bit-line open walkthrough: regenerates the paper's Figure 3 — the
// (R_def, U) fault-region plane of a bit-line open (Open 4) under the
// bare SOS 1r1 (partial RDF1) and under the completed SOS
// 1v [w0BL] r1v (RDF1 for every floating voltage) — and runs the
// automatic completing-operation search.
package main

import (
	"fmt"
	"log"
	"os"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/numeric"
	"github.com/memtest/partialfaults/internal/report"
)

func main() {
	open, _ := defect.ByID(4)
	group, _ := open.Float(defect.FloatBitLine)
	factory := behav.NewFactory(behav.DefaultParams())

	rdefs := numeric.Logspace(1e3, 1e7, 9)
	us := numeric.Linspace(0, 3.3, 10)

	sweep := func(sos fp.SOS, caption string) *analysis.Plane {
		plane, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: factory, Open: open, Float: group, SOS: sos,
			RDefs: rdefs, Us: us,
		})
		if err != nil {
			log.Fatalf("sweep %q: %v", sos, err)
		}
		fmt.Println(caption)
		if err := report.WritePlane(os.Stdout, plane); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
		return plane
	}

	// Figure 3(a): the bare read — a partial fault.
	bare := sweep(fp.NewSOS(fp.Init1, fp.R(1)), "=== Figure 3(a): S = 1r1 ===")
	findings := analysis.IdentifyPartialFaults(bare)
	for _, f := range findings {
		fmt.Printf("Section 3 rule: %s is PARTIAL — observed only for U ∈ [%.2f, %.2f] V\n\n",
			f.FFM, f.ULow, f.UHigh)
	}

	// The automatic completing-operation search.
	comp, err := analysis.SearchCompletion(analysis.CompletionConfig{
		Factory: factory, Open: open, Float: group,
		Base:  fp.MustParse("<1r1/0/0>"),
		RDefs: []float64{1e5, 1e7},
		Us:    us,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !comp.Possible {
		log.Fatal("no completion found — unexpected for Open 4")
	}
	fmt.Printf("completing-operation search (%d candidates tried): %s\n\n",
		comp.Tried, comp.Completed)

	// Figure 3(b): the completed SOS — fault for every floating voltage.
	completed := sweep(comp.Completed.S, "=== Figure 3(b): S = 1v [w0BL] r1v ===")
	if analysis.IsCompletedIn(completed, fp.RDF1) {
		fmt.Println("RDF1 is now sensitized for every initial bit-line voltage ✓")
	}
}
