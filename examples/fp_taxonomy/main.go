// FP taxonomy tour: prints the paper's formal machinery — the twelve
// static single-cell fault primitives with their FFM names, the
// completed-FP notation, the #C/#O accounting of Section 4, and the
// exponential growth that motivates the directed partial-fault method.
package main

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/fp"
)

func main() {
	fmt.Println("The 12 static single-cell fault primitives (#O ≤ 1):")
	fmt.Println()
	for _, f := range fp.AllFFMs() {
		p, _ := f.CanonicalFP()
		fmt.Printf("  %-22s %-6s %s\n", p, f, fp.Describe(f))
	}

	fmt.Println("\nCompleted fault primitives (Table 1 examples) and their #C/#O:")
	fmt.Println()
	for _, s := range []string{
		"<1v [w0BL] r1v/0/0>",
		"<[w1 w1 w0] r0/1/1>",
		"<0v [w1BL] r0v/1/1>",
		"<1v [w1BL] w0v/1/->",
	} {
		p := fp.MustParse(s)
		base := p.Base()
		fmt.Printf("  %-24s %-6s #C=%d #O=%d   (partial counterpart %s: #C=%d #O=%d)\n",
			p, p.Classify(), p.S.NumCells(), p.S.NumOps(),
			base, base.S.NumCells(), base.S.NumOps())
		if !fp.CompletedSatisfiesRelations(base, p) {
			fmt.Println("    *** violates the Section 4 relations!")
		}
	}

	fmt.Println("\nThe fault-primitive space (Section 4):")
	fmt.Println()
	fmt.Println("  #O   single-cell FPs   cumulative")
	total := 0
	for n := 0; n <= 4; n++ {
		c := fp.CountSingleCellFPs(n)
		total += c
		fmt.Printf("  %-4d %-17d %d\n", n, c, total)
	}
	fmt.Printf("\n  static two-cell FPs (#C=2, #O ≤ 1): %d\n", fp.CountTwoCellStaticFPs())
	fmt.Println("\nBrute-force analysis of higher-order FPs explodes exponentially;")
	fmt.Println("the partial-fault method (Section 3) sweeps only the 12 static FPs")
	fmt.Println("and derives the higher-order completed FPs by a directed search.")
}
