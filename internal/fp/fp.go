package fp

import "fmt"

// ReadResult is the R component of <S/F/R>.
type ReadResult int

// Read results. RNone ("-") means the SOS does not end with a read of the
// victim, so there is no output to observe.
const (
	RNone ReadResult = iota
	R0
	R1
)

// String renders the R token.
func (r ReadResult) String() string {
	switch r {
	case R0:
		return "0"
	case R1:
		return "1"
	default:
		return "-"
	}
}

// Bit returns the read value and whether one exists.
func (r ReadResult) Bit() (int, bool) {
	switch r {
	case R0:
		return 0, true
	case R1:
		return 1, true
	}
	return 0, false
}

// ReadResultOf converts a bit to a ReadResult.
func ReadResultOf(bit int) ReadResult {
	if mustBit(bit) == 1 {
		return R1
	}
	return R0
}

// FP is a fault primitive <S/F/R>: an SOS, the resulting faulty victim
// state F, and the read output R (if the SOS ends with a victim read).
type FP struct {
	// S is the sensitizing operation sequence.
	S SOS
	// F is the faulty victim state after S.
	F int
	// R is the output of the final read, or RNone.
	R ReadResult
}

// New builds an FP, validating the combination.
func New(s SOS, f int, r ReadResult) (FP, error) {
	out := FP{S: s, F: mustBit(f), R: r}
	if err := out.Validate(); err != nil {
		return FP{}, err
	}
	return out, nil
}

// MustNew builds an FP and panics on invalid input; intended for
// package-level fault libraries.
func MustNew(s SOS, f int, r ReadResult) FP {
	out, err := New(s, f, r)
	if err != nil {
		panic(err)
	}
	return out
}

// Validate checks the <S/F/R> combination: R must be present exactly when
// the SOS ends with a victim read, and the behaviour must actually be
// faulty (F or R deviating from the fault-free outcome).
func (p FP) Validate() error {
	if err := p.S.Validate(); err != nil {
		return err
	}
	if p.F != 0 && p.F != 1 {
		return fmt.Errorf("fp: F = %d out of range", p.F)
	}
	last, hasOp := p.S.FinalOp()
	endsWithVictimRead := hasOp && last.Kind == OpRead && last.Target == TargetVictim && !last.Completing
	if endsWithVictimRead && p.R == RNone {
		return fmt.Errorf("fp: %s ends with a victim read but R is '-'", p.S)
	}
	if !endsWithVictimRead && p.R != RNone {
		return fmt.Errorf("fp: %s does not end with a victim read but R = %s", p.S, p.R)
	}
	expected, known := p.S.ExpectedFinalState()
	if known {
		stateFaulty := p.F != expected
		readFaulty := false
		if rb, ok := p.R.Bit(); ok && endsWithVictimRead {
			readFaulty = rb != last.Data
		}
		if !stateFaulty && !readFaulty {
			return fmt.Errorf("fp: <%s/%d/%s> describes fault-free behaviour", p.S, p.F, p.R)
		}
	}
	return nil
}

// String renders the paper's notation, e.g. "<1r1/0/0>",
// "<1v [w0BL] r1v/0/0>", "<0/1/->".
func (p FP) String() string {
	return fmt.Sprintf("<%s/%d/%s>", p.S, p.F, p.R)
}

// Complement returns the FP describing the complementary defect's
// behaviour: all data values flipped [Al-Ars00].
func (p FP) Complement() FP {
	return FP{S: p.S.Complement(), F: 1 - p.F, R: complementR(p.R)}
}

func complementR(r ReadResult) ReadResult {
	switch r {
	case R0:
		return R1
	case R1:
		return R0
	}
	return RNone
}

// IsCompleted reports whether the FP carries completing operations.
func (p FP) IsCompleted() bool { return p.S.HasCompleting() }

// Base returns the FP with its completing operations stripped — the
// partial FP underlying a completed one. The initialization is restored
// from the expected state before the first sensitizing operation when the
// completed form dropped it.
func (p FP) Base() FP {
	sens := p.S.SensitizingOps()
	init := p.S.Init
	if init == InitNone && len(sens) > 0 {
		// Recover the init the bare FFM notation would use: the state the
		// completing prefix leaves the victim in, fault-free.
		state := -1
		switch p.S.Init {
		case Init0:
			state = 0
		case Init1:
			state = 1
		}
		for _, o := range p.S.CompletingOps() {
			if o.Target == TargetVictim && o.Kind == OpWrite {
				state = o.Data
			}
		}
		if state < 0 {
			// Fall back to the final op's expected pre-state for reads.
			if sens[0].Kind == OpRead {
				state = sens[0].Data
			}
		}
		switch state {
		case 0:
			init = Init0
		case 1:
			init = Init1
		}
	}
	return FP{S: SOS{Init: init, Ops: sens}, F: p.F, R: p.R}
}
