package fp

import "fmt"

// Two-cell (coupling) fault primitives. The paper's Section 4 defines
// #C, the number of distinct cells an SOS accesses; completed FPs such
// as <1v [w0BL] r1v/0/0> have #C = 2. This file provides the standard
// static two-cell FP space of [vdGoor00] — aggressor state or single
// aggressor/victim operation sensitizing a victim deviation — both to
// ground the #C accounting and to let the march engine reason about
// classical coupling faults alongside the partial faults.

// CFKind names the classical two-cell (coupling) FFM classes.
type CFKind int

// The static coupling-fault classes.
const (
	CFUnknown CFKind = iota
	// CFst: state coupling — <s_a; s_v / F / ->, both cells in a state.
	CFst
	// CFds: disturb coupling — an aggressor operation disturbs the
	// victim: <xwy_a; s_v / F / -> or <xrx_a; s_v / F / ->.
	CFds
	// CFtr: transition coupling — a victim transition write fails for an
	// aggressor state: <s_a; xwy_v / F / ->.
	CFtr
	// CFwd: write destructive coupling — a victim non-transition write
	// flips it under an aggressor state.
	CFwd
	// CFrd: read destructive coupling — a victim read flips cell and
	// output under an aggressor state.
	CFrd
	// CFdr: deceptive read destructive coupling.
	CFdr
	// CFir: incorrect read coupling.
	CFir
)

// String names the class.
func (k CFKind) String() string {
	switch k {
	case CFst:
		return "CFst"
	case CFds:
		return "CFds"
	case CFtr:
		return "CFtr"
	case CFwd:
		return "CFwd"
	case CFrd:
		return "CFrd"
	case CFdr:
		return "CFdr"
	case CFir:
		return "CFir"
	}
	return "?"
}

// TwoCellFP is a static two-cell fault primitive <S_a; S_v / F / R>: the
// aggressor condition, the victim condition, and the faulty outcome on
// the victim.
type TwoCellFP struct {
	// AggState is the aggressor's required state.
	AggState int
	// AggOp is the aggressor operation, if the FP is aggressor-
	// operation sensitized (CFds); nil otherwise.
	AggOp *Op
	// VictimState is the victim's required state.
	VictimState int
	// VictimOp is the victim operation, if victim-operation sensitized;
	// nil otherwise.
	VictimOp *Op
	// F is the faulty victim state.
	F int
	// R is the faulty read output for read-sensitized FPs.
	R ReadResult
}

// String renders the standard notation, e.g. "<0w1; 1/0/->" (CFds) or
// "<1; 0w1/0/->" (CFtr).
func (p TwoCellFP) String() string {
	agg := fmt.Sprintf("%d", p.AggState)
	if p.AggOp != nil {
		agg = fmt.Sprintf("%d%s", p.AggState, p.AggOp)
	}
	vic := fmt.Sprintf("%d", p.VictimState)
	if p.VictimOp != nil {
		vic = fmt.Sprintf("%d%s", p.VictimState, p.VictimOp)
	}
	return fmt.Sprintf("<%s; %s/%d/%s>", agg, vic, p.F, p.R)
}

// CompletedTwoCellString renders a partial two-cell FP in completed
// form: the completing operation bracketed before the victim condition,
// mirroring the single-cell notation — e.g. "<0w1; [w1BL] 1/0/->" for a
// disturb coupling that only fires while the victim's bit line floats
// at the completing value.
func CompletedTwoCellString(p TwoCellFP, comp Op) string {
	agg := fmt.Sprintf("%d", p.AggState)
	if p.AggOp != nil {
		agg = fmt.Sprintf("%d%s", p.AggState, p.AggOp)
	}
	vic := fmt.Sprintf("%d", p.VictimState)
	if p.VictimOp != nil {
		vic = fmt.Sprintf("%d%s", p.VictimState, p.VictimOp)
	}
	return fmt.Sprintf("<%s; [%s] %s/%d/%s>", agg, comp.withSubscript(), vic, p.F, p.R)
}

// Validate checks that the FP is a member of the static two-cell space:
// bit-valued states and data, and a classifiable <S_a; S_v / F / R>
// combination (Classify != CFUnknown).
func (p TwoCellFP) Validate() error {
	for _, b := range []int{p.AggState, p.VictimState, p.F} {
		if b != 0 && b != 1 {
			return fmt.Errorf("fp: two-cell FP %s has a non-bit state", p)
		}
	}
	if p.AggOp != nil && p.VictimOp != nil {
		return fmt.Errorf("fp: %s has both an aggressor and a victim operation; the static space allows at most one", p)
	}
	if p.Classify() == CFUnknown {
		return fmt.Errorf("fp: %s is not a valid static two-cell FP", p)
	}
	return nil
}

// NumCells returns #C (always 2 for a two-cell FP).
func (p TwoCellFP) NumCells() int { return 2 }

// NumOps returns #O: aggressor plus victim operations.
func (p TwoCellFP) NumOps() int {
	n := 0
	if p.AggOp != nil {
		n++
	}
	if p.VictimOp != nil {
		n++
	}
	return n
}

// Classify maps the FP onto the coupling-fault taxonomy.
func (p TwoCellFP) Classify() CFKind {
	switch {
	case p.AggOp == nil && p.VictimOp == nil:
		if p.F != p.VictimState {
			return CFst
		}
	case p.AggOp != nil && p.VictimOp == nil:
		if p.F != p.VictimState {
			return CFds
		}
	case p.AggOp == nil && p.VictimOp != nil && p.VictimOp.Kind == OpWrite:
		if p.VictimOp.Data != p.VictimState && p.F == p.VictimState {
			return CFtr
		}
		if p.VictimOp.Data == p.VictimState && p.F != p.VictimState {
			return CFwd
		}
	case p.AggOp == nil && p.VictimOp != nil && p.VictimOp.Kind == OpRead:
		r, ok := p.R.Bit()
		if !ok {
			return CFUnknown
		}
		d := p.VictimOp.Data
		switch {
		case p.F != d && r != d:
			return CFrd
		case p.F != d && r == d:
			return CFdr
		case p.F == d && r != d:
			return CFir
		}
	}
	return CFUnknown
}

// EnumerateTwoCellStaticFPs generates the complete static two-cell FP
// space with at most one operation, following [vdGoor00]:
//
//   - 4 CFst  (aggressor state × victim state, victim flipped)
//   - 12 CFds (aggressor op ∈ {w0,w1 transitions and non-transitions,
//     r0, r1} × victim state, victim flipped)
//   - 4 CFtr, 4 CFwd (aggressor state × victim transition /
//     non-transition write, wrong final state)
//   - 12 CFrd/CFdr/CFir (aggressor state × victim read × 3 faulty
//     outcome combinations)
//
// for 36 FPs in total.
func EnumerateTwoCellStaticFPs() []TwoCellFP {
	var out []TwoCellFP
	// CFst.
	for _, a := range []int{0, 1} {
		for _, v := range []int{0, 1} {
			out = append(out, TwoCellFP{AggState: a, VictimState: v, F: 1 - v})
		}
	}
	// CFds: aggressor ops x=init, op w0/w1/r(init).
	for _, aInit := range []int{0, 1} {
		aggOps := []Op{W(0), W(1), R(aInit)}
		for _, ao := range aggOps {
			ao := ao
			for _, v := range []int{0, 1} {
				out = append(out, TwoCellFP{
					AggState: aInit, AggOp: &ao,
					VictimState: v, F: 1 - v,
				})
			}
		}
	}
	// CFtr and CFwd: victim writes.
	for _, a := range []int{0, 1} {
		for _, v := range []int{0, 1} {
			for _, d := range []int{0, 1} {
				op := W(d)
				out = append(out, TwoCellFP{
					AggState: a, VictimState: v, VictimOp: &op, F: 1 - d,
				})
			}
		}
	}
	// CFrd/CFdr/CFir: victim reads with the three faulty outcomes.
	for _, a := range []int{0, 1} {
		for _, v := range []int{0, 1} {
			op := R(v)
			for _, f := range []int{0, 1} {
				for _, r := range []int{0, 1} {
					if f == v && r == v {
						continue
					}
					out = append(out, TwoCellFP{
						AggState: a, VictimState: v, VictimOp: &op,
						F: f, R: ReadResultOf(r),
					})
				}
			}
		}
	}
	return out
}

// CountTwoCellStaticFPs returns the closed-form size of the static
// two-cell FP space: 4 + 12 + 8 + 12 = 36.
func CountTwoCellStaticFPs() int { return 36 }
