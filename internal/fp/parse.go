package fp

import (
	"fmt"
	"strings"
)

// Parse reads a fault primitive in the paper's notation:
//
//	<1r1/0/0>
//	<0w1/0/->
//	<1v [w0BL] r1v/0/0>
//	<[w1 w1 w0] r0/1/1>
//	<0/1/->
//
// Whitespace between tokens is optional except inside bracket groups,
// where it separates operations.
func Parse(s string) (FP, error) {
	t := strings.TrimSpace(s)
	if !strings.HasPrefix(t, "<") || !strings.HasSuffix(t, ">") {
		return FP{}, fmt.Errorf("fp: %q is not bracketed by <>", s)
	}
	t = t[1 : len(t)-1]
	// Split into S / F / R on the LAST two slashes so that future
	// extensions of S cannot collide.
	i2 := strings.LastIndex(t, "/")
	if i2 < 0 {
		return FP{}, fmt.Errorf("fp: %q lacks /F/R fields", s)
	}
	i1 := strings.LastIndex(t[:i2], "/")
	if i1 < 0 {
		return FP{}, fmt.Errorf("fp: %q lacks /F/R fields", s)
	}
	sosStr := strings.TrimSpace(t[:i1])
	fStr := strings.TrimSpace(t[i1+1 : i2])
	rStr := strings.TrimSpace(t[i2+1:])

	sos, err := ParseSOS(sosStr)
	if err != nil {
		return FP{}, err
	}
	var f int
	switch fStr {
	case "0":
		f = 0
	case "1":
		f = 1
	default:
		return FP{}, fmt.Errorf("fp: invalid F field %q", fStr)
	}
	var r ReadResult
	switch rStr {
	case "0":
		r = R0
	case "1":
		r = R1
	case "-", "−", "":
		r = RNone
	default:
		return FP{}, fmt.Errorf("fp: invalid R field %q", rStr)
	}
	return New(sos, f, r)
}

// MustParse parses an FP and panics on error; for static fault tables.
func MustParse(s string) FP {
	out, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return out
}

// ParseSOS reads the S component of the notation.
func ParseSOS(s string) (SOS, error) {
	var out SOS
	rest := strings.TrimSpace(s)
	if rest == "" {
		return SOS{}, fmt.Errorf("fp: empty SOS")
	}
	// Optional initialization: a leading 0/1 not followed by w/r digits
	// (i.e. a bare state token, possibly with a v subscript).
	if rest[0] == '0' || rest[0] == '1' {
		init := Init0
		if rest[0] == '1' {
			init = Init1
		}
		rest = rest[1:]
		rest = strings.TrimPrefix(rest, "v")
		out.Init = init
		rest = strings.TrimSpace(rest)
	}
	for len(rest) > 0 {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		if rest[0] == '[' {
			end := strings.IndexByte(rest, ']')
			if end < 0 {
				return SOS{}, fmt.Errorf("fp: unterminated bracket group in %q", s)
			}
			group := rest[1:end]
			rest = rest[end+1:]
			for _, tok := range strings.Fields(group) {
				op, err := parseOpToken(tok, true)
				if err != nil {
					return SOS{}, err
				}
				out.Ops = append(out.Ops, op)
			}
			continue
		}
		tok, remainder := nextOpToken(rest)
		if tok == "" {
			return SOS{}, fmt.Errorf("fp: cannot parse SOS near %q", rest)
		}
		op, err := parseOpToken(tok, false)
		if err != nil {
			return SOS{}, err
		}
		out.Ops = append(out.Ops, op)
		rest = remainder
	}
	if err := out.Validate(); err != nil {
		return SOS{}, err
	}
	return out, nil
}

// nextOpToken peels one operation token (like "w0BL" or "r1v") off the
// front of the string.
func nextOpToken(s string) (tok, rest string) {
	if len(s) < 2 || (s[0] != 'w' && s[0] != 'r') {
		return "", s
	}
	n := 2 // op letter + data bit
	if len(s) > n && s[n] == 'v' {
		n++
	} else if len(s) >= n+2 && s[n:n+2] == "BL" {
		n += 2
	}
	return s[:n], s[n:]
}

// parseOpToken parses a single operation token.
func parseOpToken(tok string, completing bool) (Op, error) {
	if len(tok) < 2 {
		return Op{}, fmt.Errorf("fp: invalid operation token %q", tok)
	}
	var kind OpKind
	switch tok[0] {
	case 'w':
		kind = OpWrite
	case 'r':
		kind = OpRead
	default:
		return Op{}, fmt.Errorf("fp: invalid operation token %q", tok)
	}
	var data int
	switch tok[1] {
	case '0':
		data = 0
	case '1':
		data = 1
	default:
		return Op{}, fmt.Errorf("fp: invalid data in token %q", tok)
	}
	target := TargetVictim
	switch tok[2:] {
	case "", "v":
	case "BL":
		target = TargetBitLine
	default:
		return Op{}, fmt.Errorf("fp: invalid subscript in token %q", tok)
	}
	return Op{Kind: kind, Data: data, Target: target, Completing: completing}, nil
}
