package fp

// FFM is a functional fault model: the named class a fault primitive
// belongs to. The single-cell static taxonomy follows [vdGoor00] and the
// paper's Table 1.
type FFM int

// The single-cell static FFMs.
const (
	FFMUnknown FFM = iota
	SF0            // state fault:       <0/1/->
	SF1            // state fault:       <1/0/->
	TFUp           // up-transition:     <0w1/0/->
	TFDown         // down-transition:   <1w0/1/->
	WDF0           // write destructive: <0w0/1/->
	WDF1           // write destructive: <1w1/0/->
	RDF0           // read destructive:  <0r0/1/1>
	RDF1           // read destructive:  <1r1/0/0>
	DRDF0          // deceptive RDF:     <0r0/1/0>
	DRDF1          // deceptive RDF:     <1r1/0/1>
	IRF0           // incorrect read:    <0r0/0/1>
	IRF1           // incorrect read:    <1r1/1/0>
)

// ffmNames uses the paper's spelling; ↑/↓ mark transition direction.
var ffmNames = map[FFM]string{
	FFMUnknown: "?",
	SF0:        "SF0",
	SF1:        "SF1",
	TFUp:       "TF↑",
	TFDown:     "TF↓",
	WDF0:       "WDF0",
	WDF1:       "WDF1",
	RDF0:       "RDF0",
	RDF1:       "RDF1",
	DRDF0:      "DRDF0",
	DRDF1:      "DRDF1",
	IRF0:       "IRF0",
	IRF1:       "IRF1",
}

// String returns the FFM's conventional name.
func (f FFM) String() string { return ffmNames[f] }

// AllFFMs lists the twelve single-cell static FFMs in taxonomy order.
func AllFFMs() []FFM {
	return []FFM{SF0, SF1, TFUp, TFDown, WDF0, WDF1, RDF0, RDF1, DRDF0, DRDF1, IRF0, IRF1}
}

// Describe returns a one-line description of an FFM.
func Describe(f FFM) string {
	switch f {
	case SF0, SF1:
		return "state fault: the cell cannot hold its value"
	case TFUp:
		return "transition fault: the 0→1 write fails"
	case TFDown:
		return "transition fault: the 1→0 write fails"
	case WDF0, WDF1:
		return "write destructive: a non-transition write flips the cell"
	case RDF0, RDF1:
		return "read destructive: the read flips the cell and returns the wrong value"
	case DRDF0, DRDF1:
		return "deceptive read destructive: the read returns the right value but flips the cell"
	case IRF0, IRF1:
		return "incorrect read: wrong output, cell unchanged"
	}
	return "unknown fault model"
}

// Complement maps an FFM to the FFM its complementary defect exhibits
// (Table 1's "Com. FFM" column): all data values flip.
func (f FFM) Complement() FFM {
	switch f {
	case SF0:
		return SF1
	case SF1:
		return SF0
	case TFUp:
		return TFDown
	case TFDown:
		return TFUp
	case WDF0:
		return WDF1
	case WDF1:
		return WDF0
	case RDF0:
		return RDF1
	case RDF1:
		return RDF0
	case DRDF0:
		return DRDF1
	case DRDF1:
		return DRDF0
	case IRF0:
		return IRF1
	case IRF1:
		return IRF0
	}
	return FFMUnknown
}

// CanonicalFP returns the defining single-cell fault primitive of an FFM.
func (f FFM) CanonicalFP() (FP, bool) {
	switch f {
	case SF0:
		return MustNew(NewSOS(Init0), 1, RNone), true
	case SF1:
		return MustNew(NewSOS(Init1), 0, RNone), true
	case TFUp:
		return MustNew(NewSOS(Init0, W(1)), 0, RNone), true
	case TFDown:
		return MustNew(NewSOS(Init1, W(0)), 1, RNone), true
	case WDF0:
		return MustNew(NewSOS(Init0, W(0)), 1, RNone), true
	case WDF1:
		return MustNew(NewSOS(Init1, W(1)), 0, RNone), true
	case RDF0:
		return MustNew(NewSOS(Init0, R(0)), 1, R1), true
	case RDF1:
		return MustNew(NewSOS(Init1, R(1)), 0, R0), true
	case DRDF0:
		return MustNew(NewSOS(Init0, R(0)), 1, R0), true
	case DRDF1:
		return MustNew(NewSOS(Init1, R(1)), 0, R1), true
	case IRF0:
		return MustNew(NewSOS(Init0, R(0)), 0, R1), true
	case IRF1:
		return MustNew(NewSOS(Init1, R(1)), 1, R0), true
	}
	return FP{}, false
}

// Classify determines the FFM of a fault primitive by examining the final
// victim operation (ignoring the completing prefix, as the paper does
// when it labels <1v [w0BL] r1v/0/0> an RDF1).
func (p FP) Classify() FFM {
	base := p.Base()
	last, hasOp := base.S.FinalOp()
	if !hasOp {
		switch base.S.Init {
		case Init0:
			if p.F == 1 {
				return SF0
			}
		case Init1:
			if p.F == 0 {
				return SF1
			}
		}
		return FFMUnknown
	}
	if last.Target != TargetVictim {
		return FFMUnknown
	}
	// State expected before the last operation.
	pre, preKnown := SOS{Init: base.S.Init, Ops: base.S.Ops[:len(base.S.Ops)-1]}.ExpectedFinalState()
	if !preKnown {
		// Reads imply the expected pre-state.
		if last.Kind == OpRead {
			pre, preKnown = last.Data, true
		}
	}
	if !preKnown {
		return FFMUnknown
	}
	switch last.Kind {
	case OpWrite:
		switch {
		case pre == 0 && last.Data == 1 && p.F == 0:
			return TFUp
		case pre == 1 && last.Data == 0 && p.F == 1:
			return TFDown
		case pre == 0 && last.Data == 0 && p.F == 1:
			return WDF0
		case pre == 1 && last.Data == 1 && p.F == 0:
			return WDF1
		}
	case OpRead:
		r, ok := p.R.Bit()
		if !ok || pre != last.Data {
			return FFMUnknown
		}
		d := last.Data
		switch {
		case p.F != d && r != d:
			if d == 0 {
				return RDF0
			}
			return RDF1
		case p.F != d && r == d:
			if d == 0 {
				return DRDF0
			}
			return DRDF1
		case p.F == d && r != d:
			if d == 0 {
				return IRF0
			}
			return IRF1
		}
	}
	return FFMUnknown
}
