package fp

import (
	"fmt"
	"strings"
)

// Init describes the initial victim state required by an SOS.
type Init int

// Initial states. InitNone means the SOS drops the initialization because
// its own operations sufficiently initialize the cell (the paper does
// this for <[w1 w1 w0] r0/1/1>).
const (
	InitNone Init = iota
	Init0
	Init1
)

// String renders the init token ("", "0" or "1").
func (i Init) String() string {
	switch i {
	case Init0:
		return "0"
	case Init1:
		return "1"
	default:
		return ""
	}
}

// SOS is a sensitizing operation sequence: an optional victim
// initialization followed by operations.
type SOS struct {
	// Init is the required initial victim state.
	Init Init
	// Ops are the operations in application order.
	Ops []Op
}

// NewSOS builds an SOS from an initial state and operations.
func NewSOS(init Init, ops ...Op) SOS { return SOS{Init: init, Ops: ops} }

// NumOps returns #O: the number of operations in the SOS (initializations
// do not count), per the paper's Section 4 definition.
func (s SOS) NumOps() int { return len(s.Ops) }

// NumCells returns #C: the number of distinct cells the SOS touches —
// the victim (via init or a victim-targeted op) plus one for any
// bit-line-targeted cell.
func (s SOS) NumCells() int {
	victim := s.Init != InitNone
	bl := false
	for _, o := range s.Ops {
		switch o.Target {
		case TargetVictim:
			victim = true
		case TargetBitLine:
			bl = true
		}
	}
	n := 0
	if victim {
		n++
	}
	if bl {
		n++
	}
	return n
}

// HasCompleting reports whether any operation is a completing operation.
func (s SOS) HasCompleting() bool {
	for _, o := range s.Ops {
		if o.Completing {
			return true
		}
	}
	return false
}

// CompletingOps returns the completing-operation prefix.
func (s SOS) CompletingOps() []Op {
	var out []Op
	for _, o := range s.Ops {
		if o.Completing {
			out = append(out, o)
		}
	}
	return out
}

// CompletingTarget returns the common target of the completing
// operations and true, or false when there are none or they mix victim
// and bit-line targets (a shape the functional engine rejects).
func (s SOS) CompletingTarget() (Target, bool) {
	comp := s.CompletingOps()
	if len(comp) == 0 {
		return TargetVictim, false
	}
	t := comp[0].Target
	for _, o := range comp[1:] {
		if o.Target != t {
			return TargetVictim, false
		}
	}
	return t, true
}

// SensitizingOps returns the non-completing operations.
func (s SOS) SensitizingOps() []Op {
	var out []Op
	for _, o := range s.Ops {
		if !o.Completing {
			out = append(out, o)
		}
	}
	return out
}

// FinalOp returns the last operation and true, or a zero Op and false for
// an operation-free SOS (a state fault's).
func (s SOS) FinalOp() (Op, bool) {
	if len(s.Ops) == 0 {
		return Op{}, false
	}
	return s.Ops[len(s.Ops)-1], true
}

// ExpectedFinalState returns the victim state a fault-free memory would
// hold after the SOS, and whether it is determined (an SOS with no init
// and no victim write leaves it undetermined).
func (s SOS) ExpectedFinalState() (int, bool) {
	state, known := 0, false
	switch s.Init {
	case Init0:
		state, known = 0, true
	case Init1:
		state, known = 1, true
	}
	for _, o := range s.Ops {
		if o.Target == TargetVictim && o.Kind == OpWrite {
			state, known = o.Data, true
		}
	}
	return state, known
}

// usesSubscripts reports whether the printed form needs v/BL subscripts
// (the paper adds them as soon as more than one cell is involved).
func (s SOS) usesSubscripts() bool {
	for _, o := range s.Ops {
		if o.Target != TargetVictim {
			return true
		}
	}
	return false
}

// String renders the SOS in the paper's notation, grouping consecutive
// completing operations in square brackets. Following the paper, tokens
// are concatenated when only the victim is involved ("1r1", "0w1") and
// space-separated with v/BL subscripts once a second cell appears
// ("1v [w0BL] r1v"); bracket groups are always space-delimited:
//
//	"1r1", "0w1", "1v [w0BL] r1v", "[w1 w1 w0] r0"
func (s SOS) String() string {
	sub := s.usesSubscripts()
	var parts []string
	if s.Init != InitNone {
		tok := s.Init.String()
		if sub {
			tok += "v"
		}
		parts = append(parts, tok)
	}
	i := 0
	for i < len(s.Ops) {
		o := s.Ops[i]
		if o.Completing {
			var grp []string
			for i < len(s.Ops) && s.Ops[i].Completing {
				g := s.Ops[i]
				if sub {
					grp = append(grp, g.withSubscript())
				} else {
					grp = append(grp, g.String())
				}
				i++
			}
			parts = append(parts, "["+strings.Join(grp, " ")+"]")
			continue
		}
		if sub {
			parts = append(parts, o.withSubscript())
		} else {
			parts = append(parts, o.String())
		}
		i++
	}
	if sub {
		return strings.Join(parts, " ")
	}
	// Concatenate, but keep bracket groups space-delimited.
	var b strings.Builder
	for j, p := range parts {
		if j > 0 && (strings.HasPrefix(p, "[") || strings.HasSuffix(parts[j-1], "]")) {
			b.WriteByte(' ')
		}
		b.WriteString(p)
	}
	return b.String()
}

// Complement returns the SOS with all data values flipped.
func (s SOS) Complement() SOS {
	out := SOS{Init: s.Init}
	switch s.Init {
	case Init0:
		out.Init = Init1
	case Init1:
		out.Init = Init0
	}
	out.Ops = make([]Op, len(s.Ops))
	for i, o := range s.Ops {
		out.Ops[i] = o.Complement()
	}
	return out
}

// Validate checks internal consistency: completing operations must
// precede the sensitizing ones, and data values must be bits.
func (s SOS) Validate() error {
	seenSensitizing := false
	for i, o := range s.Ops {
		if o.Data != 0 && o.Data != 1 {
			return fmt.Errorf("fp: op %d has data %d", i, o.Data)
		}
		if o.Completing && seenSensitizing {
			return fmt.Errorf("fp: completing op %d follows a sensitizing op", i)
		}
		if !o.Completing {
			seenSensitizing = true
		}
	}
	return nil
}
