package fp

import (
	"testing"
	"testing/quick"
)

func TestCountSingleCellFPs(t *testing.T) {
	// The taxonomy counts: 2 state faults, 10 one-op FPs (the classical
	// twelve static single-cell FPs together), then ×3 per extra op.
	cases := []struct{ n, want int }{
		{0, 2}, {1, 10}, {2, 30}, {3, 90}, {4, 270},
	}
	for _, c := range cases {
		if got := CountSingleCellFPs(c.n); got != c.want {
			t.Errorf("CountSingleCellFPs(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestCumulativeCounts(t *testing.T) {
	// Section 4: analysis with #O = 0 and 1 inspects 12 FPs.
	if got := CumulativeSingleCellFPs(1); got != 12 {
		t.Errorf("cumulative #O≤1 = %d, want 12 (the paper's value)", got)
	}
	// Exact cumulative count at #O ≤ 4 (the paper's scan prints 372; the
	// exact value is 402 — see EXPERIMENTS.md).
	if got := CumulativeSingleCellFPs(4); got != 402 {
		t.Errorf("cumulative #O≤4 = %d, want 402", got)
	}
}

func TestEnumerationMatchesCount(t *testing.T) {
	for n := 0; n <= 4; n++ {
		fps := EnumerateSingleCellFPs(n)
		if got, want := len(fps), CountSingleCellFPs(n); got != want {
			t.Errorf("#O=%d: enumerated %d FPs, want %d", n, got, want)
		}
	}
}

func TestEnumerationIsDistinct(t *testing.T) {
	for n := 0; n <= 3; n++ {
		seen := map[string]bool{}
		for _, p := range EnumerateSingleCellFPs(n) {
			s := p.String()
			if seen[s] {
				t.Errorf("#O=%d: duplicate FP %s", n, s)
			}
			seen[s] = true
		}
	}
}

func TestEnumerationAllValid(t *testing.T) {
	for n := 0; n <= 3; n++ {
		for _, p := range EnumerateSingleCellFPs(n) {
			if err := p.Validate(); err != nil {
				t.Errorf("#O=%d: invalid enumerated FP %s: %v", n, p, err)
			}
			if p.S.NumOps() != n {
				t.Errorf("#O=%d: FP %s has %d ops", n, p, p.S.NumOps())
			}
			if p.S.NumCells() != 1 {
				t.Errorf("#O=%d: FP %s is not single-cell", n, p)
			}
		}
	}
}

func TestEnumerationOneOpIsTheStaticTaxonomy(t *testing.T) {
	// #O ≤ 1 must reproduce exactly the 12 classical static single-cell
	// FPs: every one classifies to a named FFM and all 12 FFMs appear.
	all := append(EnumerateSingleCellFPs(0), EnumerateSingleCellFPs(1)...)
	seen := map[FFM]int{}
	for _, p := range all {
		f := p.Classify()
		if f == FFMUnknown {
			t.Errorf("static FP %s does not classify", p)
		}
		seen[f]++
	}
	for _, f := range AllFFMs() {
		if seen[f] != 1 {
			t.Errorf("FFM %s appears %d times in the static space, want 1", f, seen[f])
		}
	}
}

// Property: every enumerated FP round-trips through the parser.
func TestEnumerationParseRoundTripProperty(t *testing.T) {
	all := EnumerateSingleCellFPs(2)
	prop := func(idx uint16) bool {
		p := all[int(idx)%len(all)]
		q, err := Parse(p.String())
		if err != nil {
			return false
		}
		return q.String() == p.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: complementing is an involution on enumerated FPs.
func TestComplementInvolutionProperty(t *testing.T) {
	all := EnumerateSingleCellFPs(3)
	prop := func(idx uint16) bool {
		p := all[int(idx)%len(all)]
		return p.Complement().Complement().String() == p.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCountPanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative count should panic")
		}
	}()
	CountSingleCellFPs(-1)
}
