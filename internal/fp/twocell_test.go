package fp

import "testing"

func TestTwoCellEnumerationCount(t *testing.T) {
	fps := EnumerateTwoCellStaticFPs()
	if len(fps) != CountTwoCellStaticFPs() {
		t.Fatalf("enumerated %d two-cell FPs, want %d", len(fps), CountTwoCellStaticFPs())
	}
	if CountTwoCellStaticFPs() != 36 {
		t.Fatalf("static two-cell space = %d, want 36 [vdGoor00]", CountTwoCellStaticFPs())
	}
}

func TestTwoCellClassDistribution(t *testing.T) {
	counts := map[CFKind]int{}
	for _, p := range EnumerateTwoCellStaticFPs() {
		k := p.Classify()
		if k == CFUnknown {
			t.Errorf("FP %s does not classify", p)
		}
		counts[k]++
	}
	want := map[CFKind]int{
		CFst: 4, CFds: 12, CFtr: 4, CFwd: 4, CFrd: 4, CFdr: 4, CFir: 4,
	}
	for k, n := range want {
		if counts[k] != n {
			t.Errorf("%s count = %d, want %d", k, counts[k], n)
		}
	}
}

func TestTwoCellInvariants(t *testing.T) {
	seen := map[string]bool{}
	for _, p := range EnumerateTwoCellStaticFPs() {
		if p.NumCells() != 2 {
			t.Errorf("%s: #C = %d, want 2", p, p.NumCells())
		}
		if n := p.NumOps(); n > 1 {
			t.Errorf("%s: #O = %d, want ≤ 1 (static space)", p, n)
		}
		s := p.String()
		if seen[s] {
			t.Errorf("duplicate two-cell FP %s", s)
		}
		seen[s] = true
	}
}

func TestTwoCellNotation(t *testing.T) {
	w1 := W(1)
	cfds := TwoCellFP{AggState: 0, AggOp: &w1, VictimState: 1, F: 0}
	if got := cfds.String(); got != "<0w1; 1/0/->" {
		t.Errorf("CFds notation = %q, want <0w1; 1/0/->", got)
	}
	if cfds.Classify() != CFds {
		t.Errorf("classified %s, want CFds", cfds.Classify())
	}
	cfst := TwoCellFP{AggState: 1, VictimState: 0, F: 1}
	if got := cfst.String(); got != "<1; 0/1/->" {
		t.Errorf("CFst notation = %q, want <1; 0/1/->", got)
	}
	r0 := R(0)
	cfrd := TwoCellFP{AggState: 1, VictimState: 0, VictimOp: &r0, F: 1, R: R1}
	if cfrd.Classify() != CFrd {
		t.Errorf("classified %s, want CFrd", cfrd.Classify())
	}
}

func TestCFKindStrings(t *testing.T) {
	kinds := []CFKind{CFst, CFds, CFtr, CFwd, CFrd, CFdr, CFir}
	names := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || names[s] {
			t.Errorf("bad or duplicate class name %q", s)
		}
		names[s] = true
	}
	if CFUnknown.String() != "?" {
		t.Error("CFUnknown must render as ?")
	}
}
