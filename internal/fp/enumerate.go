package fp

import "fmt"

// CountSingleCellFPs returns the number of single-cell fault primitives
// whose SOS performs exactly nOps operations:
//
//	#O = 0 → 2           (the two state faults)
//	#O = n → 10·3^(n−1)  (n ≥ 1)
//
// Derivation: an SOS is an initial value (2 choices) followed by n
// operations drawn from {w0, w1, r} (reads are deterministic, so one read
// token per position). A write-final SOS admits 1 faulty outcome (the
// flipped final state), a read-final SOS admits 3 (the faulty (F,R)
// combinations). Hence 2·3^(n−1)·(2·1 + 1·3) = 10·3^(n−1).
//
// Note: the paper's scan prints "372" for the cumulative count at
// #O ≤ 4; the exact enumeration (verified by EnumerateSingleCellFPs) is
// 2+10+30+90+270 = 402. See EXPERIMENTS.md.
func CountSingleCellFPs(nOps int) int {
	if nOps < 0 {
		panic(fmt.Sprintf("fp: negative operation count %d", nOps))
	}
	if nOps == 0 {
		return 2
	}
	n := 10
	for i := 1; i < nOps; i++ {
		n *= 3
	}
	return n
}

// CumulativeSingleCellFPs returns the number of single-cell FPs with
// #O ≤ maxOps — the size of the space a brute-force fault analysis must
// inspect (Section 4's exponential blow-up).
func CumulativeSingleCellFPs(maxOps int) int {
	total := 0
	for n := 0; n <= maxOps; n++ {
		total += CountSingleCellFPs(n)
	}
	return total
}

// EnumerateSingleCellFPs generates every single-cell FP whose SOS has
// exactly nOps operations, in deterministic order. All operations target
// the victim; reads carry the value a fault-free memory would return.
func EnumerateSingleCellFPs(nOps int) []FP {
	if nOps < 0 {
		panic(fmt.Sprintf("fp: negative operation count %d", nOps))
	}
	var out []FP
	for _, init := range []Init{Init0, Init1} {
		state := 0
		if init == Init1 {
			state = 1
		}
		out = appendFPs(out, SOS{Init: init}, state, nOps)
	}
	return out
}

// appendFPs extends the partial SOS by remaining operations and, when
// none remain, emits the faulty outcomes.
func appendFPs(out []FP, s SOS, state, remaining int) []FP {
	if remaining == 0 {
		return appendOutcomes(out, s, state)
	}
	// Writes 0 and 1.
	for _, d := range []int{0, 1} {
		next := s
		next.Ops = append(append([]Op(nil), s.Ops...), W(d))
		out = appendFPs(out, next, d, remaining-1)
	}
	// The deterministic read of the current state.
	next := s
	next.Ops = append(append([]Op(nil), s.Ops...), R(state))
	out = appendFPs(out, next, state, remaining-1)
	return out
}

// appendOutcomes emits every faulty <F,R> combination for a finished SOS.
func appendOutcomes(out []FP, s SOS, state int) []FP {
	last, hasOp := s.FinalOp()
	if hasOp && last.Kind == OpRead {
		for _, f := range []int{0, 1} {
			for _, r := range []int{0, 1} {
				if f == state && r == last.Data {
					continue // fault-free
				}
				out = append(out, FP{S: s, F: f, R: ReadResultOf(r)})
			}
		}
		return out
	}
	// Write-final (or op-free): the only faulty outcome is a flipped state.
	out = append(out, FP{S: s, F: 1 - state, R: RNone})
	return out
}

// CompletedSatisfiesRelations checks the paper's Section 4 property: a
// completed FP has at least as many cell accesses and/or operations as
// its partial counterpart (one of the three relations must hold, which
// reduces to #Cc ≥ #Cp or #Oc ≥ #Op).
func CompletedSatisfiesRelations(partial, completed FP) bool {
	cp, op := partial.S.NumCells(), partial.S.NumOps()
	cc, oc := completed.S.NumCells(), completed.S.NumOps()
	return cc >= cp || oc >= op
}
