package fp

import (
	"testing"
)

func TestPaperNotationRoundTrip(t *testing.T) {
	// Every FP string the paper itself uses.
	cases := []string{
		"<0w1/0/->",
		"<1r1/0/0>",
		"<0r0/1/1>",
		"<1v [w0BL] r1v/0/0>",
		"<[w1 w1 w0] r0/1/1>",
		"<0v [w1BL] r0v/1/1>",
		"<1v [w1BL] r1v/0/1>",
		"<0v [w1BL] r0v/0/1>",
		"<1v [w0BL] r1v/1/0>",
		"<1v [w0BL] w1v/0/->",
		"<1v [w1BL] w0v/1/->",
	}
	for _, c := range cases {
		p, err := Parse(c)
		if err != nil {
			t.Errorf("Parse(%q): %v", c, err)
			continue
		}
		if got := p.String(); got != c {
			t.Errorf("round trip %q → %q", c, got)
		}
	}
}

func TestParseWhitespaceTolerance(t *testing.T) {
	a := MustParse("<1v [w0BL] r1v/0/0>")
	b := MustParse("< 1v [w0BL] r1v / 0 / 0 >")
	if a.String() != b.String() {
		t.Errorf("whitespace variants differ: %s vs %s", a, b)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"<1r1/0/0",
		"1r1/0/0",
		"<1r1>",
		"<1r1/2/0>",
		"<1r1/0/x>",
		"<1x1/0/0>",
		"<w2/0/->",
		"<1r1 [w0BL]/0/0>", // completing ops after sensitizing
		"<[w0BL/0/->",      // unterminated bracket
		"<0w1BX/0/->",      // bad subscript
		"<0r0/1/->",        // victim read without R
		"<0w1/0/1>",        // write-final with R
		"<0w1/1/->",        // fault-free behaviour
	}
	for _, c := range bad {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestStateFaultNotation(t *testing.T) {
	sf0 := MustNew(NewSOS(Init0), 1, RNone)
	if got := sf0.String(); got != "<0/1/->" {
		t.Errorf("SF0 = %q, want <0/1/->", got)
	}
	parsed := MustParse("<0/1/->")
	if parsed.Classify() != SF0 {
		t.Errorf("parsed SF0 classifies as %s", parsed.Classify())
	}
}

func TestNumCellsNumOps(t *testing.T) {
	cases := []struct {
		fp     string
		nc, no int
	}{
		{"<1r1/0/0>", 1, 1},
		{"<0/1/->", 1, 0},
		{"<1v [w0BL] r1v/0/0>", 2, 2},
		{"<[w1 w1 w0] r0/1/1>", 1, 4},
		{"<0v [w1BL] r0v/1/1>", 2, 2},
	}
	for _, c := range cases {
		p := MustParse(c.fp)
		if got := p.S.NumCells(); got != c.nc {
			t.Errorf("%s #C = %d, want %d", c.fp, got, c.nc)
		}
		if got := p.S.NumOps(); got != c.no {
			t.Errorf("%s #O = %d, want %d", c.fp, got, c.no)
		}
	}
}

func TestPaperSection4Example(t *testing.T) {
	// "Open 4 results in the partial fault RDF1 (#Cp=1, #Op=1); the
	// completed <1v [w0BL] r1v/0/0> has #Cc=2, #Oc=2, satisfying
	// Relation 3."
	partial := MustParse("<1r1/0/0>")
	completed := MustParse("<1v [w0BL] r1v/0/0>")
	if partial.S.NumCells() != 1 || partial.S.NumOps() != 1 {
		t.Error("partial RDF1 must have #C=1, #O=1")
	}
	if completed.S.NumCells() != 2 || completed.S.NumOps() != 2 {
		t.Error("completed RDF1 must have #C=2, #O=2")
	}
	if !CompletedSatisfiesRelations(partial, completed) {
		t.Error("the paper's example must satisfy the #C/#O relations")
	}
}

func TestClassifyCanonicalFPs(t *testing.T) {
	for _, f := range AllFFMs() {
		p, ok := f.CanonicalFP()
		if !ok {
			t.Fatalf("no canonical FP for %s", f)
		}
		if got := p.Classify(); got != f {
			t.Errorf("canonical %s classifies as %s (%s)", f, got, p)
		}
	}
}

func TestClassifyCompletedFPs(t *testing.T) {
	cases := []struct {
		fp   string
		want FFM
	}{
		{"<1v [w0BL] r1v/0/0>", RDF1},
		{"<[w1 w1 w0] r0/1/1>", RDF0},
		{"<0v [w1BL] r0v/1/1>", RDF0},
		{"<1v [w1BL] r1v/0/1>", DRDF1},
		{"<0v [w1BL] r0v/0/1>", IRF0},
		{"<1v [w0BL] r1v/1/0>", IRF1},
		{"<1v [w0BL] w1v/0/->", WDF1},
		{"<1v [w1BL] w0v/1/->", TFDown},
	}
	for _, c := range cases {
		if got := MustParse(c.fp).Classify(); got != c.want {
			t.Errorf("%s classifies as %s, want %s", c.fp, got, c.want)
		}
	}
}

func TestFFMComplementInvolution(t *testing.T) {
	for _, f := range AllFFMs() {
		if f.Complement().Complement() != f {
			t.Errorf("%s complement is not an involution", f)
		}
		if f.Complement() == f {
			t.Errorf("%s is its own complement", f)
		}
	}
}

func TestFPComplementMatchesFFMComplement(t *testing.T) {
	// Complementing an FP must complement its classification — the rule
	// behind Table 1's Sim./Com. FFM pairing.
	for _, f := range AllFFMs() {
		p, _ := f.CanonicalFP()
		comp := p.Complement()
		if got := comp.Classify(); got != f.Complement() {
			t.Errorf("%s complement FP %s classifies as %s, want %s", f, comp, got, f.Complement())
		}
	}
}

func TestComplementTable1Examples(t *testing.T) {
	// Table 1 pairs <0v [w1BL] r0v/1/1> (RDF0) with the complementary
	// RDF1 behaviour.
	p := MustParse("<0v [w1BL] r0v/1/1>")
	want := "<1v [w0BL] r1v/0/0>"
	if got := p.Complement().String(); got != want {
		t.Errorf("complement = %s, want %s", got, want)
	}
}

func TestBaseStripsCompletingOps(t *testing.T) {
	completed := MustParse("<1v [w0BL] r1v/0/0>")
	base := completed.Base()
	if base.String() != "<1r1/0/0>" {
		t.Errorf("Base = %s, want <1r1/0/0>", base)
	}
	// Init recovered from a victim-targeted completing write.
	c2 := MustParse("<[w1 w1 w0] r0/1/1>")
	b2 := c2.Base()
	if b2.String() != "<0r0/1/1>" {
		t.Errorf("Base = %s, want <0r0/1/1>", b2)
	}
}

func TestExpectedFinalState(t *testing.T) {
	cases := []struct {
		sos   string
		state int
		known bool
	}{
		{"1r1", 1, true},
		{"0w1", 1, true},
		{"[w1 w1 w0] r0", 0, true},
		{"1v [w0BL] r1v", 1, true},
	}
	for _, c := range cases {
		s, err := ParseSOS(c.sos)
		if err != nil {
			t.Fatalf("ParseSOS(%q): %v", c.sos, err)
		}
		got, known := s.ExpectedFinalState()
		if known != c.known || (known && got != c.state) {
			t.Errorf("%q expected final state = %d,%v, want %d,%v", c.sos, got, known, c.state, c.known)
		}
	}
}

func TestSOSValidateOrdering(t *testing.T) {
	s := SOS{Init: Init0, Ops: []Op{R(0), CWBL(1)}}
	if err := s.Validate(); err == nil {
		t.Error("completing op after sensitizing op must be invalid")
	}
}

func TestOpConstructorsPanicOnBadData(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("W(2) should panic")
		}
	}()
	W(2)
}
