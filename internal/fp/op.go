// Package fp implements the formal fault-primitive machinery of the
// paper: memory operations, sensitizing operation sequences (SOSes),
// fault primitives <S/F/R> including the *completed* FPs with bracketed
// completing operations (e.g. <1v [w0BL] r1v/0/0>), the FFM taxonomy
// (SF, TF, WDF, RDF, DRDF, IRF), parsing and printing of the paper's
// notation, and exhaustive enumeration of the single-cell FP space with
// the #C/#O counting rules of Section 4.
package fp

import "fmt"

// OpKind distinguishes reads from writes.
type OpKind int

// Operation kinds.
const (
	OpWrite OpKind = iota
	OpRead
)

// Target says which cell an operation addresses.
type Target int

// Operation targets. TargetBitLine is the paper's "BL" subscript: the
// operation goes to *any* cell on the same bit line as the victim.
const (
	TargetVictim Target = iota
	TargetBitLine
)

// Op is one memory operation within an SOS.
type Op struct {
	// Kind is read or write.
	Kind OpKind
	// Data is the written value for writes, or the expected read value
	// for reads.
	Data int
	// Target is the addressed cell.
	Target Target
	// Completing marks the operation as a completing operation (printed
	// in square brackets), added to turn a partial fault into a fault
	// that is sensitized for every floating-voltage value.
	Completing bool
}

// W returns a write operation of the given value to the victim.
func W(data int) Op { return Op{Kind: OpWrite, Data: mustBit(data)} }

// R returns a read operation expecting the given value from the victim.
func R(data int) Op { return Op{Kind: OpRead, Data: mustBit(data)} }

// CW returns a completing write to the victim.
func CW(data int) Op {
	return Op{Kind: OpWrite, Data: mustBit(data), Completing: true}
}

// CWBL returns a completing write to any cell on the victim's bit line.
func CWBL(data int) Op {
	return Op{Kind: OpWrite, Data: mustBit(data), Target: TargetBitLine, Completing: true}
}

// CRBL returns a completing read of a cell on the victim's bit line.
func CRBL(data int) Op {
	return Op{Kind: OpRead, Data: mustBit(data), Target: TargetBitLine, Completing: true}
}

func mustBit(b int) int {
	if b != 0 && b != 1 {
		panic(fmt.Sprintf("fp: data value %d out of range", b))
	}
	return b
}

// String renders the bare operation token without subscripts, e.g. "w1".
func (o Op) String() string {
	k := "w"
	if o.Kind == OpRead {
		k = "r"
	}
	return fmt.Sprintf("%s%d", k, o.Data)
}

// withSubscript renders the operation with its target subscript in the
// paper's style ("w0BL", "r1v").
func (o Op) withSubscript() string {
	switch o.Target {
	case TargetBitLine:
		return o.String() + "BL"
	default:
		return o.String() + "v"
	}
}

// Complement returns the operation with its data value flipped, used to
// derive the faulty behaviour of complementary defects [Al-Ars00].
func (o Op) Complement() Op {
	o.Data = 1 - o.Data
	return o
}
