package circuit

import "fmt"

// PathKind classifies how a branch between two nets conducts, for static
// (pre-simulation) analysis. The kinds mirror the MNA stamping behaviour
// of the elements: what provides a DC path, what forces a voltage, and
// what only couples charge.
type PathKind int

// Branch path kinds.
const (
	// PathConductive is an unconditional resistive path (resistor). Its
	// Ohms field carries the resistance so analyzers can treat an open
	// above a cutoff as disconnected.
	PathConductive PathKind = iota
	// PathCapacitive couples charge but provides no DC path (capacitor).
	PathCapacitive
	// PathSource forces the voltage difference between its terminals and
	// provides a DC path (voltage source).
	PathSource
	// PathCurrent injects current but provides no DC path and forces no
	// voltage (current source).
	PathCurrent
	// PathGated conducts only when its controlling net is at the active
	// level (MOSFET channel, voltage-controlled switch).
	PathGated
	// PathSense draws no current and provides no path: a high-impedance
	// control input (MOSFET gate, switch control terminal). Listed so
	// analyzers can see every net an element touches.
	PathSense
)

// String names the path kind.
func (k PathKind) String() string {
	switch k {
	case PathConductive:
		return "conductive"
	case PathCapacitive:
		return "capacitive"
	case PathSource:
		return "source"
	case PathCurrent:
		return "current"
	case PathGated:
		return "gated"
	case PathSense:
		return "sense"
	}
	return "unknown"
}

// Branch describes one conduction (or sensing) path of an element between
// two node indices, in the element's own terms — no simulation state.
type Branch struct {
	// A and B are the node indices the branch spans. For PathSense
	// branches A is the sensing net and B the reference it is compared
	// against (ground for most gates).
	A, B int
	// Kind classifies the branch.
	Kind PathKind
	// Ohms is the resistance of a PathConductive branch (0 otherwise).
	Ohms float64
	// Gate is the controlling node index of a PathGated branch.
	Gate int
	// GateActiveHigh reports whether the gated branch conducts when the
	// controlling net is high (NMOS, switch) rather than low (PMOS).
	GateActiveHigh bool
}

// Topological is implemented by elements that can describe their
// terminal connectivity statically. All elements in internal/device
// implement it; the static-analysis layer (internal/netlint) refuses to
// certify circuits containing elements that do not.
type Topological interface {
	Element
	// Branches returns the element's conduction and sensing paths.
	Branches() []Branch
}

// validateTopology rejects degenerate element wiring at build time:
// two-terminal elements shorted onto a single net (a self-loop stamps to
// a numerical no-op and always indicates a netlist construction bug) and
// terminals that do not name an existing node.
func (c *Circuit) validateTopology(e Topological) error {
	nodes := len(c.nodeName)
	branches := e.Branches()
	conducting := 0
	for _, br := range branches {
		for _, n := range []int{br.A, br.B} {
			if n < 0 || n >= nodes {
				return fmt.Errorf("circuit: element %q references node index %d outside [0,%d)", e.Name(), n, nodes)
			}
		}
		if br.Kind == PathGated && (br.Gate < 0 || br.Gate >= nodes) {
			return fmt.Errorf("circuit: element %q gate references node index %d outside [0,%d)", e.Name(), br.Gate, nodes)
		}
		if br.Kind != PathSense {
			conducting++
			if br.A == br.B {
				return fmt.Errorf("circuit: element %q is self-looped on net %q (both terminals on one net)", e.Name(), c.NodeName(br.A))
			}
		}
	}
	return nil
}
