// Package circuit provides the netlist representation and the
// modified-nodal-analysis (MNA) stamping contract used by the transient
// simulator in internal/spice.
//
// A Circuit is a collection of named nets and Elements. The simulator
// assembles, for every Newton iteration, a linear system A·x = b where
// x holds the node voltages followed by the branch currents of the
// voltage-source-like elements. Each Element contributes to A and b
// through its Stamp method; nonlinear elements linearize around the
// current iterate available in the StampContext.
package circuit

import (
	"fmt"
	"sort"

	"github.com/memtest/partialfaults/internal/numeric"
)

// Ground is the reserved name of the reference net, always at 0 V.
const Ground = "0"

// Element is a circuit component that can stamp itself into an MNA system.
type Element interface {
	// Name returns the unique designator of the element (e.g. "R1").
	Name() string
	// Stamp adds the element's linearized contribution to the system.
	Stamp(ctx *StampContext)
}

// BranchElement is implemented by elements that introduce an extra MNA
// unknown (a branch current), such as voltage sources. The circuit
// allocates one branch index per such element.
type BranchElement interface {
	Element
	// SetBranch tells the element its branch-current index in x.
	SetBranch(idx int)
}

// SplitStamper is implemented by linear elements whose system
// contribution separates into a matrix part that is constant across the
// Newton iterations of a timestep and a right-hand-side part. The engine
// exploits the split to cache stamps:
//
//   - StampStaticA writes only into ctx.A. Under backward Euler (or DC)
//     it may depend only on ctx.Dt and the element's own parameters, so
//     the engine caches it per dt regime; under trapezoidal integration
//     it may additionally depend on element state that changes only
//     between timesteps (the engine then rebuilds it each step).
//   - StampStepB writes only into ctx.B and may depend on ctx.Time,
//     ctx.XPrev and element state — everything fixed within one step.
//
// Stamp must remain the exact sum of the two parts: the engine falls
// back to it for elements that do not implement the split.
type SplitStamper interface {
	Element
	StampStaticA(ctx *StampContext)
	StampStepB(ctx *StampContext)
}

// GroundedSource is implemented by branch elements that force the
// voltage of a single non-ground node relative to ground. The engine
// eliminates both the node unknown and the branch-current unknown of
// such sources from the solve: the node voltage is known a priori, and
// its KCL row only serves to recover the (unused) source current. On the
// DRAM column this shrinks the MNA system by more than half — every
// control signal and supply rail is a grounded source.
type GroundedSource interface {
	Element
	// PinnedNode returns the forced node index, the element's
	// branch-unknown index in x, and whether the element qualifies
	// (i.e. it connects one non-ground node to ground).
	PinnedNode() (node, branch int, ok bool)
	// PinnedValue returns the forced node voltage at time t.
	PinnedValue(t float64) float64
}

// Committer is implemented by elements that carry integration state
// beyond the node voltages (e.g. capacitor branch currents under
// trapezoidal integration). Commit is called once per accepted timestep
// with the converged solution in ctx.X.
type Committer interface {
	Element
	// Commit updates the element's internal state after a step.
	Commit(ctx *StampContext)
}

// StampContext carries everything an element needs to stamp itself.
type StampContext struct {
	A *numeric.Matrix // MNA matrix to accumulate into
	B []float64       // right-hand side to accumulate into

	X     []float64 // current Newton iterate (voltages + branch currents)
	XPrev []float64 // converged solution of the previous timestep

	Dt   float64 // timestep in seconds; <= 0 means DC operating point
	Time float64 // absolute simulation time at the end of this step

	// Trapezoidal selects trapezoidal instead of backward-Euler
	// companion models for reactive elements.
	Trapezoidal bool

	// RowMap, when non-nil, redirects the stamp helpers into a reduced
	// system from which grounded-source unknowns have been eliminated:
	// RowMap[i] is the reduced index of global x index i, or negative
	// when that unknown was eliminated. A matrix entry landing in an
	// eliminated column is a coupling to a known voltage and moves to
	// the right-hand side using PinnedX, which holds the forced voltage
	// for every eliminated x slot (in global indexing). X stays in
	// global indexing either way, so V and VPrev are unaffected.
	RowMap  []int
	PinnedX []float64
}

// V returns the voltage of node n in the current Newton iterate.
// Node index 0 is ground.
func (ctx *StampContext) V(n int) float64 {
	if n == 0 {
		return 0
	}
	return ctx.X[n-1]
}

// VPrev returns the voltage of node n at the previous timestep.
func (ctx *StampContext) VPrev(n int) float64 {
	if n == 0 {
		return 0
	}
	return ctx.XPrev[n-1]
}

// addA accumulates into matrix entry (r, c) in global x indexing,
// honouring the reduced-system mapping when one is installed.
func (ctx *StampContext) addA(r, c int, v float64) {
	if ctx.RowMap == nil {
		ctx.A.Add(r, c, v)
		return
	}
	rr := ctx.RowMap[r]
	if rr < 0 {
		return // the row's equation was eliminated
	}
	if rc := ctx.RowMap[c]; rc >= 0 {
		ctx.A.Add(rr, rc, v)
	} else {
		// Coupling to a known voltage: A[r][c]·x[c] moves to the RHS.
		ctx.B[rr] -= v * ctx.PinnedX[c]
	}
}

// addB accumulates into right-hand-side entry r in global x indexing,
// honouring the reduced-system mapping when one is installed.
func (ctx *StampContext) addB(r int, v float64) {
	if ctx.RowMap == nil {
		ctx.B[r] += v
		return
	}
	if rr := ctx.RowMap[r]; rr >= 0 {
		ctx.B[rr] += v
	}
}

// StampConductance adds a conductance g between nodes a and b
// (either may be ground).
func (ctx *StampContext) StampConductance(a, b int, g float64) {
	if a != 0 {
		ctx.addA(a-1, a-1, g)
	}
	if b != 0 {
		ctx.addA(b-1, b-1, g)
	}
	if a != 0 && b != 0 {
		ctx.addA(a-1, b-1, -g)
		ctx.addA(b-1, a-1, -g)
	}
}

// StampCurrent adds an independent current i flowing from node a to
// node b (i.e. out of a, into b).
func (ctx *StampContext) StampCurrent(a, b int, i float64) {
	if a != 0 {
		ctx.addB(a-1, -i)
	}
	if b != 0 {
		ctx.addB(b-1, i)
	}
}

// StampTransconductance adds a current at (out+, out−) controlled by the
// voltage between (in+, in−) with gain gm: a VCCS stamp used by the
// linearized MOSFET model.
func (ctx *StampContext) StampTransconductance(outP, outN, inP, inN int, gm float64) {
	add := func(r, c int, v float64) {
		if r != 0 && c != 0 {
			ctx.addA(r-1, c-1, v)
		}
	}
	add(outP, inP, gm)
	add(outP, inN, -gm)
	add(outN, inP, -gm)
	add(outN, inN, gm)
}

// Circuit is a mutable netlist.
type Circuit struct {
	names    map[string]int // net name → node index (Ground → 0)
	nodeName []string       // node index → name
	elements []Element
	elemByID map[string]Element
	branches int
	frozen   bool
}

// New returns an empty circuit containing only the ground net.
func New() *Circuit {
	return &Circuit{
		names:    map[string]int{Ground: 0},
		nodeName: []string{Ground},
		elemByID: map[string]Element{},
	}
}

// Node returns the index for the named net, creating it if necessary.
// The name "0" is ground.
func (c *Circuit) Node(name string) int {
	if idx, ok := c.names[name]; ok {
		return idx
	}
	idx := len(c.nodeName)
	c.names[name] = idx
	c.nodeName = append(c.nodeName, name)
	return idx
}

// NodeIndex returns the index of an existing net and whether it exists.
func (c *Circuit) NodeIndex(name string) (int, bool) {
	idx, ok := c.names[name]
	return idx, ok
}

// NodeName returns the net name for a node index.
func (c *Circuit) NodeName(idx int) string {
	if idx < 0 || idx >= len(c.nodeName) {
		return fmt.Sprintf("node#%d", idx)
	}
	return c.nodeName[idx]
}

// NumNodes returns the number of non-ground nodes.
func (c *Circuit) NumNodes() int { return len(c.nodeName) - 1 }

// NumBranches returns the number of branch-current unknowns.
func (c *Circuit) NumBranches() int { return c.branches }

// Size returns the dimension of the MNA system.
func (c *Circuit) Size() int { return c.NumNodes() + c.branches }

// Add registers an element. Branch elements are assigned their branch
// index here. Add rejects duplicate element designators and (for elements
// that describe their topology) self-looped two-terminal elements —
// both always indicate a netlist construction bug, and letting them
// through would stamp a silently wrong or singular system.
func (c *Circuit) Add(e Element) error {
	if c.frozen {
		return fmt.Errorf("circuit: cannot add element %q after Freeze: branch indices are already final", e.Name())
	}
	if _, dup := c.elemByID[e.Name()]; dup {
		return fmt.Errorf("circuit: duplicate element name %q", e.Name())
	}
	if te, ok := e.(Topological); ok {
		if err := c.validateTopology(te); err != nil {
			return err
		}
	}
	if be, ok := e.(BranchElement); ok {
		be.SetBranch(c.NumNodes() + c.branches) // provisional; fixed up in Freeze
		c.branches++
	}
	c.elements = append(c.elements, e)
	c.elemByID[e.Name()] = e
	return nil
}

// MustAdd registers an element and panics on a construction error; for
// tests and examples where the netlist is known-good by construction.
func (c *Circuit) MustAdd(e Element) {
	if err := c.Add(e); err != nil {
		panic(err)
	}
}

// Element returns a registered element by name, or nil.
func (c *Circuit) Element(name string) Element { return c.elemByID[name] }

// Elements returns the registered elements in insertion order.
// The returned slice must not be modified.
func (c *Circuit) Elements() []Element { return c.elements }

// Freeze finalizes node numbering and reassigns branch indices so they
// follow all node unknowns. It must be called once all nets and elements
// are added and before simulation: until then branch indices are
// provisional (Add hands them out under a node count that later nets can
// invalidate), so consumers that stamp or solve must refuse an unfrozen
// circuit rather than index a stale slot. Freeze is idempotent; Add
// rejects further elements once the circuit is frozen.
func (c *Circuit) Freeze() {
	branch := c.NumNodes()
	for _, e := range c.elements {
		if be, ok := e.(BranchElement); ok {
			be.SetBranch(branch)
			branch++
		}
	}
	c.frozen = true
}

// Frozen reports whether Freeze has been called, i.e. whether branch
// indices are final and the circuit is safe to stamp.
func (c *Circuit) Frozen() bool { return c.frozen }

// MergeName returns the canonical display name for an electrical
// equivalence class of nets, as produced when a short or bridge defect
// merges previously distinct nets. Ground sorts first (a class containing
// ground IS ground), the rest alphabetically, joined with "=" so that
// "btC=vddn" reads as "btC identified with vddn". Duplicates are
// dropped; an empty class yields "".
func MergeName(names []string) string {
	seen := map[string]bool{}
	var rest []string
	ground := false
	for _, n := range names {
		if seen[n] {
			continue
		}
		seen[n] = true
		if n == Ground {
			ground = true
			continue
		}
		rest = append(rest, n)
	}
	sort.Strings(rest)
	if ground {
		rest = append([]string{Ground}, rest...)
	}
	out := ""
	for i, n := range rest {
		if i > 0 {
			out += "="
		}
		out += n
	}
	return out
}

// NodeNames returns all non-ground net names in sorted order.
func (c *Circuit) NodeNames() []string {
	out := make([]string, 0, c.NumNodes())
	for name, idx := range c.names {
		if idx != 0 {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}
