package circuit

import (
	"testing"

	"github.com/memtest/partialfaults/internal/numeric"
)

// stub is a minimal element for structural tests.
type stub struct{ name string }

func (s *stub) Name() string        { return s.name }
func (s *stub) Stamp(*StampContext) {}

// branchStub is a minimal branch element.
type branchStub struct {
	stub
	branch int
}

func (b *branchStub) SetBranch(idx int) { b.branch = idx }

func TestNodeInterning(t *testing.T) {
	c := New()
	a := c.Node("a")
	if a2 := c.Node("a"); a2 != a {
		t.Error("Node must be idempotent")
	}
	if g := c.Node(Ground); g != 0 {
		t.Errorf("ground index = %d, want 0", g)
	}
	if c.NumNodes() != 1 {
		t.Errorf("NumNodes = %d, want 1", c.NumNodes())
	}
	if name := c.NodeName(a); name != "a" {
		t.Errorf("NodeName = %q, want a", name)
	}
	if name := c.NodeName(99); name == "" {
		t.Error("out-of-range NodeName must not be empty")
	}
	if _, ok := c.NodeIndex("missing"); ok {
		t.Error("NodeIndex must report missing nets")
	}
}

// topoStub is a minimal topological element for construction checks.
type topoStub struct {
	stub
	branches []Branch
}

func (s *topoStub) Branches() []Branch { return s.branches }

func TestAddRejectsDuplicateElement(t *testing.T) {
	c := New()
	if err := c.Add(&stub{name: "R1"}); err != nil {
		t.Fatalf("first Add: %v", err)
	}
	if err := c.Add(&stub{name: "R1"}); err == nil {
		t.Error("duplicate element name must be rejected")
	}
}

func TestAddRejectsSelfLoop(t *testing.T) {
	c := New()
	a := c.Node("a")
	bad := &topoStub{stub: stub{name: "R1"},
		branches: []Branch{{A: a, B: a, Kind: PathConductive, Ohms: 1}}}
	if err := c.Add(bad); err == nil {
		t.Error("self-looped two-terminal element must be rejected")
	}
	// A sense branch may legitimately reference one net twice.
	ok := &topoStub{stub: stub{name: "M1"},
		branches: []Branch{{A: a, B: 0, Kind: PathGated, Gate: a}, {A: a, B: a, Kind: PathSense}}}
	if err := c.Add(ok); err != nil {
		t.Errorf("self-referencing sense branch must be accepted: %v", err)
	}
}

func TestAddRejectsUnknownNode(t *testing.T) {
	c := New()
	c.Node("a")
	bad := &topoStub{stub: stub{name: "R1"},
		branches: []Branch{{A: 1, B: 7, Kind: PathConductive, Ohms: 1}}}
	if err := c.Add(bad); err == nil {
		t.Error("out-of-range node index must be rejected")
	}
	gate := &topoStub{stub: stub{name: "M1"},
		branches: []Branch{{A: 1, B: 0, Kind: PathGated, Gate: 9}}}
	if err := c.Add(gate); err == nil {
		t.Error("out-of-range gate index must be rejected")
	}
}

func TestMustAddPanics(t *testing.T) {
	c := New()
	c.MustAdd(&stub{name: "R1"})
	defer func() {
		if recover() == nil {
			t.Error("MustAdd must panic on construction errors")
		}
	}()
	c.MustAdd(&stub{name: "R1"})
}

func TestBranchIndexAssignment(t *testing.T) {
	c := New()
	b1 := &branchStub{stub: stub{name: "V1"}}
	c.Add(b1) // added before any nodes exist
	c.Node("x")
	c.Node("y")
	b2 := &branchStub{stub: stub{name: "V2"}}
	c.Add(b2)
	c.Freeze()
	// After Freeze, branches follow the node unknowns: x→1, y→2 are
	// nodes (X indices 0,1), so branch X indices are 2 and 3.
	if b1.branch != 2 || b2.branch != 3 {
		t.Errorf("branches = %d,%d, want 2,3", b1.branch, b2.branch)
	}
	if c.Size() != 4 {
		t.Errorf("Size = %d, want 4", c.Size())
	}
	if c.NumBranches() != 2 {
		t.Errorf("NumBranches = %d, want 2", c.NumBranches())
	}
}

func TestElementLookup(t *testing.T) {
	c := New()
	e := &stub{name: "M1"}
	c.Add(e)
	if got := c.Element("M1"); got != e {
		t.Error("Element lookup failed")
	}
	if got := c.Element("nope"); got != nil {
		t.Error("missing element must be nil")
	}
	if len(c.Elements()) != 1 {
		t.Error("Elements must list registered elements")
	}
}

func TestNodeNamesSorted(t *testing.T) {
	c := New()
	c.Node("zeta")
	c.Node("alpha")
	names := c.NodeNames()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("NodeNames = %v, want [alpha zeta]", names)
	}
}

func TestStampHelpers(t *testing.T) {
	a := numeric.NewMatrix(3, 3)
	b := make([]float64, 3)
	ctx := &StampContext{A: a, B: b, X: []float64{1, 2, 3}, XPrev: []float64{0, 0, 0}}

	// Voltage accessors.
	if ctx.V(0) != 0 {
		t.Error("ground voltage must be 0")
	}
	if ctx.V(2) != 2 {
		t.Errorf("V(2) = %g, want 2", ctx.V(2))
	}
	if ctx.VPrev(1) != 0 {
		t.Errorf("VPrev(1) = %g, want 0", ctx.VPrev(1))
	}

	// Conductance stamp between nodes 1 and 2.
	ctx.StampConductance(1, 2, 0.5)
	if a.At(0, 0) != 0.5 || a.At(1, 1) != 0.5 || a.At(0, 1) != -0.5 || a.At(1, 0) != -0.5 {
		t.Error("conductance stamp pattern wrong")
	}
	// Grounded conductance only touches the diagonal.
	ctx.StampConductance(3, 0, 0.25)
	if a.At(2, 2) != 0.25 {
		t.Error("grounded conductance stamp wrong")
	}

	// Current stamp: i from node 1 to node 2.
	ctx.StampCurrent(1, 2, 1e-3)
	if b[0] != -1e-3 || b[1] != 1e-3 {
		t.Errorf("current stamp b = %v", b[:2])
	}
	// Current into ground only touches one row.
	ctx.StampCurrent(3, 0, 2e-3)
	if b[2] != -2e-3 {
		t.Errorf("grounded current stamp b[2] = %g", b[2])
	}

	// Transconductance stamp.
	a.Zero()
	ctx.StampTransconductance(1, 2, 3, 0, 1e-3)
	if a.At(0, 2) != 1e-3 || a.At(1, 2) != -1e-3 {
		t.Error("VCCS stamp pattern wrong")
	}
}

// TestFreezeFinalizesBranchIndices reproduces the stale-branch-index
// misuse: a branch element added before later nets receives a
// provisional index that Freeze must move past all node unknowns. Using
// the provisional index would alias a node slot in x — exactly the bug
// the Frozen guard exists to catch.
func TestFreezeFinalizesBranchIndices(t *testing.T) {
	c := New()
	c.Node("a")
	v := &branchStub{stub: stub{name: "V1"}}
	if err := c.Add(v); err != nil {
		t.Fatal(err)
	}
	provisional := v.branch // NumNodes()+0 == 1 at this point
	c.Node("b")
	c.Node("d")
	if c.Frozen() {
		t.Fatal("circuit must not report frozen before Freeze")
	}
	c.Freeze()
	if !c.Frozen() {
		t.Fatal("circuit must report frozen after Freeze")
	}
	if v.branch == provisional {
		t.Fatalf("branch index %d not reassigned after late nets; pre-Freeze index is stale", v.branch)
	}
	if want := c.NumNodes(); v.branch != want {
		t.Errorf("final branch index = %d, want %d (first slot after the node unknowns)", v.branch, want)
	}
}

func TestAddAfterFreezeRejected(t *testing.T) {
	c := New()
	c.Node("a")
	c.Freeze()
	if err := c.Add(&stub{name: "R9"}); err == nil {
		t.Error("Add after Freeze must return an error")
	}
	c.Freeze() // idempotent: a second Freeze must not panic or reassign
	if !c.Frozen() {
		t.Error("Freeze must be idempotent")
	}
}

func TestMergeName(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{nil, ""},
		{[]string{"btC"}, "btC"},
		{[]string{"vddn", "btC"}, "btC=vddn"},
		{[]string{"c0s", Ground}, "0=c0s"},
		{[]string{"b", "a", "b", Ground, "a"}, "0=a=b"},
	}
	for _, tc := range cases {
		if got := MergeName(tc.in); got != tc.want {
			t.Errorf("MergeName(%v) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
