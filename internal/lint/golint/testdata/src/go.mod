module example.com/fix

go 1.22
