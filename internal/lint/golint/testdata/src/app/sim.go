// Fixtures for the nodeindex-check, waveform-nil and branch-freeze
// rules, one bad construct per function.
package app

import (
	"errors"

	"example.com/fix/internal/sim"
)

var errNoNet = errors.New("no such net")

// BadNodeIndexDropped discards both NodeIndex results outright.
func BadNodeIndexDropped(c *sim.Circuit) {
	c.NodeIndex("bt") // want nodeindex-check
}

// BadNodeIndexBlank throws away the existence bit: an unknown net then
// reads as index 0 — ground.
func BadNodeIndexBlank(c *sim.Circuit) int {
	idx, _ := c.NodeIndex("bt") // want nodeindex-check
	return idx
}

// GoodNodeIndex checks the existence bit before trusting the index.
func GoodNodeIndex(c *sim.Circuit) (int, error) {
	idx, ok := c.NodeIndex("bt")
	if !ok {
		return 0, errNoNet
	}
	return idx, nil
}

// BadChainedTrace dereferences the Trace lookup in place.
func BadChainedTrace(r *sim.Recorder) float64 {
	return r.Trace("bt").Last() // want waveform-nil
}

// BadChainedTraceLen does the same through a different method.
func BadChainedTraceLen(r *sim.Recorder) int {
	return r.Trace("bc").Len() // want waveform-nil
}

// GoodGuardedTrace binds the lookup and nil-checks it first.
func GoodGuardedTrace(r *sim.Recorder) (float64, bool) {
	tr := r.Trace("bt")
	if tr == nil {
		return 0, false
	}
	return tr.Last(), true
}

// BadUnfrozenEngine builds the engine without ever freezing.
func BadUnfrozenEngine() *sim.Engine {
	c := sim.New()
	c.Node("vdd")
	return sim.NewEngine(c) // want branch-freeze
}

// BadFreezeAfterEngine freezes too late: the engine already stamped
// through provisional branch indices.
func BadFreezeAfterEngine() *sim.Engine {
	c := sim.New()
	e := sim.NewEngine(c) // want branch-freeze
	c.Freeze()
	return e
}

// GoodFrozenEngine follows the required order.
func GoodFrozenEngine() *sim.Engine {
	c := sim.New()
	c.Node("vdd")
	c.Freeze()
	return sim.NewEngine(c)
}

// GoodParameterCircuit receives the circuit already built; the caller
// is responsible for freezing, so no finding.
func GoodParameterCircuit(c *sim.Circuit) *sim.Engine {
	return sim.NewEngine(c)
}

// SuppressedUnfrozen documents a deliberate pre-Freeze build.
func SuppressedUnfrozen() *sim.Engine {
	c := sim.New()
	//lint:ignore branch-freeze fixture exercising the suppression path
	return sim.NewEngine(c)
}
