package app

import (
	"sync"
	"testing"
)

// Fatal from a spawned goroutine stops only that goroutine; the test
// keeps running as if nothing failed.
func TestBadGoroutineFatal(t *testing.T) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		t.Fatalf("bad: %d", 1) // bad
	}()
	wg.Wait()
}

// Error from a goroutine that may outlive the test panics.
func TestBadGoroutineError(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		t.Error("bad") // bad
	}()
	<-done
}

// A direct go statement on the testing method counts too.
func TestBadDirectGo(t *testing.T) {
	go t.Fatal("bad") // bad
	t.Log("spawned")
}

// A helper literal defined inside the goroutine still runs on it.
func TestBadNestedLiteral(t *testing.T) {
	go func() {
		helper := func() {
			t.Skip("bad") // bad
		}
		helper()
	}()
}

// A subtest closure rebinding t inside a goroutine still runs off the
// original test goroutine.
func TestBadSubtestInGoroutine(t *testing.T) {
	go func() {
		t.Run("sub", func(t *testing.T) {
			t.Fatal("bad") // bad
		})
	}()
}

// Collecting failures and reporting on the test goroutine is the fix.
func TestGoodCollectedErrors(t *testing.T) {
	var mu sync.Mutex
	var errs []string
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		mu.Lock()
		errs = append(errs, "worker result")
		mu.Unlock()
	}()
	wg.Wait()
	if len(errs) != 1 {
		t.Fatalf("errs: %v", errs) // good: on the test goroutine
	}
}

// A subtest closure without a goroutine runs on its own test goroutine.
func TestGoodSubtest(t *testing.T) {
	t.Run("sub", func(t *testing.T) {
		t.Fatal("fine") // good: the subtest's own goroutine
	})
}

func TestSuppressedGoroutineFatal(t *testing.T) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		//lint:ignore goroutine-t-fatal exercising the suppression path
		t.Error("suppressed")
	}()
	<-done
}
