// Package app exercises the ignored-error and stamp-ground-guard rules.
package app

import "example.com/fix/internal/circuit"

// BadDropped discards Build's error outright: one ignored-error finding.
func BadDropped() {
	circuit.Build() // want ignored-error
}

// BadBlank assigns the lone error to the blank identifier.
func BadBlank() {
	_ = circuit.Build() // want ignored-error
}

// BadTupleBlank discards the error half of a tuple result.
func BadTupleBlank() *circuit.Matrix {
	m, _ := circuit.New() // want ignored-error
	return m
}

// GoodHandled checks the error.
func GoodHandled() error {
	if err := circuit.Build(); err != nil {
		return err
	}
	m, err := circuit.New()
	if err != nil {
		return err
	}
	_ = m
	return nil
}

// Suppressed documents why dropping is fine here.
func Suppressed() {
	//lint:ignore ignored-error fixture exercising the suppression path
	circuit.Build()
}

// BadStamp indexes A and B with unguarded node-1 arithmetic: three
// stamp-ground-guard findings.
type BadStamp struct{ a, b int }

// Stamp is missing every ground guard.
func (d *BadStamp) Stamp(ctx *circuit.StampContext) {
	ctx.A.Add(d.a-1, d.a-1, 1) // want stamp-ground-guard ×2
	ctx.B[d.b-1] += 1          // want stamp-ground-guard
}

// GoodStamp guards each node index before subtracting.
type GoodStamp struct{ a, b int }

// Stamp follows the convention.
func (d *GoodStamp) Stamp(ctx *circuit.StampContext) {
	if d.a != 0 {
		ctx.A.Add(d.a-1, d.a-1, 1)
	}
	if d.a != 0 && d.b != 0 {
		ctx.A.Add(d.a-1, d.b-1, -1)
	}
	if d.b > 0 {
		ctx.B[d.b-1] += 1
	}
	br := 3
	ctx.B[br] += 1 // plain branch index: no subtraction, no guard needed
}

// HelperStamp guards inside a closure, like the real transconductance
// helper.
func HelperStamp(ctx *circuit.StampContext, outP, outN int) {
	add := func(r, c int, v float64) {
		if r != 0 && c != 0 {
			ctx.A.Add(r-1, c-1, v)
		}
	}
	add(outP, outN, 1)
}

// ElseIsNotGuarded subtracts in the branch where the node IS ground.
func ElseIsNotGuarded(ctx *circuit.StampContext, n int) {
	if n != 0 {
		ctx.B[n-1] += 1
	} else {
		ctx.B[n-1] += 1 // want stamp-ground-guard
	}
}
