package app

import "testing"

func expensiveSetup() int { return 42 }

// BenchmarkBad loops over b.N without timer or allocation hygiene: one
// bench-hygiene finding naming both missing calls.
func BenchmarkBad(b *testing.B) { // want bench-hygiene
	x := expensiveSetup()
	for i := 0; i < b.N; i++ {
		_ = x
	}
}

// BenchmarkHalf resets the timer but forgets ReportAllocs.
func BenchmarkHalf(b *testing.B) { // want bench-hygiene
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
	}
}

// BenchmarkGood does both.
func BenchmarkGood(b *testing.B) {
	x := expensiveSetup()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x
	}
}

// BenchmarkDispatch only fans out to sub-benchmarks; the hygiene calls
// belong in the closures.
func BenchmarkDispatch(b *testing.B) {
	b.Run("sub", func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
		}
	})
	b.Run("bad-sub", func(b *testing.B) { // want bench-hygiene
		for i := 0; i < b.N; i++ {
		}
	})
}

// BenchmarkSuppressed documents why the timer must keep running.
//
//lint:ignore bench-hygiene fixture exercising the suppression path
func BenchmarkSuppressed(b *testing.B) {
	for i := 0; i < b.N; i++ {
	}
}
