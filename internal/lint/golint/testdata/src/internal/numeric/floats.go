// Package numeric is a float-eq rule fixture.
package numeric

const eps = 1e-12

// BadEqual compares floats exactly: one float-eq finding.
func BadEqual(a, b float64) bool {
	return a == b // want float-eq
}

// BadNotEqual compares floats exactly via !=: one float-eq finding.
func BadNotEqual(a, b float32) bool {
	return a != b // want float-eq
}

// GoodZero compares against the literal zero: allowed.
func GoodZero(a float64) bool {
	return a == 0
}

// GoodConstZero compares against a constant that is exactly zero.
func GoodConstZero(a float64) bool {
	const zero = 0.0
	return a != zero
}

// GoodTolerance is the sanctioned idiom.
func GoodTolerance(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d < eps
}

// Suppressed documents a deliberate exact comparison.
func Suppressed(a, b float64) bool {
	//lint:ignore float-eq bit-exact comparison is the point of this fixture
	return a == b
}

// IntsAreFine never involves floats.
func IntsAreFine(a, b int) bool {
	return a == b
}
