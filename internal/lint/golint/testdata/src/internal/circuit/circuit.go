// Package circuit is a stand-in for the real netlist package so the
// ignored-error and stamp-ground-guard fixtures type-check standalone.
package circuit

import "errors"

// Matrix mimics the MNA matrix surface the guard rule matches on.
type Matrix struct{}

// Add accumulates into the matrix.
func (m *Matrix) Add(r, c int, v float64) {}

// StampContext mimics the real stamping context.
type StampContext struct {
	A *Matrix
	B []float64
}

// Build returns only an error.
func Build() error { return errors.New("boom") }

// New returns a value and an error.
func New() (*Matrix, error) { return nil, errors.New("boom") }
