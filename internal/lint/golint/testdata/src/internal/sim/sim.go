// Package sim is a stand-in for the real circuit/spice/wave surfaces so
// the nodeindex-check, waveform-nil and branch-freeze fixtures
// type-check standalone. Only the shapes the rules match on exist here.
package sim

// Circuit mimics the netlist builder: New → Add/Node → Freeze.
type Circuit struct{ frozen bool }

// New constructs an empty circuit.
func New() *Circuit { return &Circuit{} }

// Node interns a net name and returns its index.
func (c *Circuit) Node(name string) int { return 0 }

// NodeIndex looks a net up without creating it. The second result is
// the existence bit the rule insists on checking.
func (c *Circuit) NodeIndex(name string) (int, bool) { return 0, false }

// Freeze finalizes branch indices.
func (c *Circuit) Freeze() { c.frozen = true }

// Trace mimics a captured waveform.
type Trace struct{}

// Last returns the final sample.
func (t *Trace) Last() float64 { return 0 }

// Len returns the sample count.
func (t *Trace) Len() int { return 0 }

// Recorder mimics the waveform recorder; Trace returns nil for
// uncaptured nets.
type Recorder struct{}

// NewRecorder constructs a recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Trace returns the named trace, or nil if it was never captured.
func (r *Recorder) Trace(name string) *Trace { return nil }

// Engine mimics the MNA engine.
type Engine struct{}

// NewEngine builds an engine over a (supposedly frozen) circuit.
func NewEngine(c *Circuit) *Engine { return &Engine{} }

// Mem mimics the owning memory-simulator package: internal/sim is in
// the fixture run's CellOwnerPkgs, so its direct cells indexing is
// exempt from the cells-index rule.
type Mem struct{ cells []int }

// Cell reads the backing store directly — allowed in the owner package.
func (m *Mem) Cell(addr int) int { return m.cells[addr] }
