// Fixtures for the cells-index rule: this package is NOT a configured
// cell owner, so any direct .cells indexing here must be flagged.
package store

// Grid mimics the memory array's backing store as seen from a package
// that has no business poking it directly.
type Grid struct{ cells []int }

// BadCellsRead indexes the backing store directly.
func BadCellsRead(g *Grid, addr int) int {
	return g.cells[addr] // want cells-index
}

// BadCellsWrite pokes a cell behind the fault hooks' back.
func BadCellsWrite(g *Grid, addr, v int) {
	g.cells[addr] = v // want cells-index
}

// SuppressedCells carries an explicit justification.
func SuppressedCells(g *Grid, addr int) int {
	//lint:ignore cells-index fixture exercises suppression
	return g.cells[addr]
}

// GoodLen uses the field without indexing it.
func GoodLen(g *Grid) int { return len(g.cells) }
