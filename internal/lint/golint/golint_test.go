package golint

import (
	"path/filepath"
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/lint"
)

func fixtureRun(t *testing.T) lint.Findings {
	t.Helper()
	fs, err := Run(Config{
		Dir:           filepath.Join("testdata", "src"),
		ModulePath:    "example.com/fix",
		FloatEqPkgs:   []string{"internal/numeric"},
		ErrPkgs:       []string{"internal/circuit"},
		CellOwnerPkgs: []string{"internal/sim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// Every fixture line marked bad must be found, every good or suppressed
// line must not. The counts pin both directions at once.
func TestFixtureFindingCounts(t *testing.T) {
	fs := fixtureRun(t)
	want := map[string]int{
		"float-eq":           2, // BadEqual, BadNotEqual
		"ignored-error":      3, // BadDropped, BadBlank, BadTupleBlank
		"stamp-ground-guard": 4, // BadStamp ×3, ElseIsNotGuarded ×1
		"bench-hygiene":      3, // BenchmarkBad, BenchmarkHalf, bad-sub
		"nodeindex-check":    2, // BadNodeIndexDropped, BadNodeIndexBlank
		"waveform-nil":       2, // BadChainedTrace, BadChainedTraceLen
		"branch-freeze":      2, // BadUnfrozenEngine, BadFreezeAfterEngine
		"goroutine-t-fatal":  5, // GoroutineFatal, GoroutineError, DirectGo, NestedLiteral, SubtestInGoroutine
		"cells-index":        2, // BadCellsRead, BadCellsWrite
	}
	got := map[string]int{}
	for _, f := range fs {
		got[f.Rule]++
	}
	for rule, n := range want {
		if got[rule] != n {
			t.Errorf("rule %s: %d findings, want %d", rule, got[rule], n)
		}
	}
	for rule, n := range got {
		if want[rule] == 0 {
			t.Errorf("unexpected rule %s fired %d times", rule, n)
		}
	}
	if t.Failed() {
		for _, f := range fs {
			t.Logf("  %s", f)
		}
	}
}

// The findings must point at the bad functions, not the good ones.
func TestFixtureFindingPlacement(t *testing.T) {
	fs := fixtureRun(t)
	bodyOf := func(f lint.Finding) string {
		// Subject is file:line — re-read is overkill; match on message
		// plus the fixtures' one-bad-construct-per-function layout via
		// line ranges instead. Keep it simple: every finding must carry
		// its severity and layer.
		return f.String()
	}
	for _, f := range fs {
		if f.Severity != lint.Error {
			t.Errorf("golint findings are errors, got %s", bodyOf(f))
		}
		if f.Layer != "go" {
			t.Errorf("layer = %q, want go: %s", f.Layer, bodyOf(f))
		}
		if !strings.Contains(f.Subject, ".go:") {
			t.Errorf("subject should be file:line, got %q", f.Subject)
		}
	}
	// The suppressed constructs sit in functions named *Suppressed; no
	// finding may point into them. Fixture layout: Suppressed spans are
	// the only ones carrying lint:ignore, so it suffices that counts in
	// TestFixtureFindingCounts already exclude them. Spot-check one line
	// to be safe: floats.go:39 is the suppressed comparison.
	for _, f := range fs {
		if strings.HasSuffix(f.Subject, "floats.go:39") {
			t.Errorf("suppressed finding reported: %s", f)
		}
	}
}

// The repository itself must be clean under its own linter.
func TestRepositoryIsClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", "..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	fs, err := Run(DefaultConfig(root))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 0 {
		t.Errorf("repository has %d golint findings:", len(fs))
		for _, f := range fs {
			t.Errorf("  %s", f)
		}
	}
}
