// Package golint is the project-code static-analysis layer: a small,
// stdlib-only (go/parser, go/ast, go/types) linter enforcing the
// numerical and MNA-stamping conventions this codebase depends on:
//
//   - float-eq: no == or != between floating-point values in the
//     numerical packages; exact equality is only meaningful against the
//     literal zero (sparsity and pivot checks).
//   - bench-hygiene: benchmark functions that loop over b.N must call
//     b.ResetTimer (setup excluded from timing) and b.ReportAllocs
//     (allocation regressions visible).
//   - stamp-ground-guard: inside stamping code, any matrix or RHS access
//     through an "index minus one" expression must be dominated by a
//     guard proving the index is not ground (node 0 has no MNA row;
//     x-1 would underflow into another net's row or panic).
//   - ignored-error: error results from the netlist-construction
//     packages must not be discarded; a swallowed construction error
//     means simulating a circuit that was never built.
//   - nodeindex-check: the existence result of NodeIndex must be
//     consumed; dropping it turns "net does not exist" into "net is
//     ground" (index 0 is valid).
//   - waveform-nil: a Trace lookup must be bound and nil-checked before
//     use; Trace returns nil for uncaptured or MNA-eliminated nets.
//   - branch-freeze: a circuit constructed in a function must be frozen
//     before an engine is built on it; branch indices are provisional
//     until Freeze.
//   - goroutine-t-fatal: no t.Fatal/Fatalf/FailNow/Error/Skip on a
//     testing.T, B or F from inside a goroutine the test launched; the
//     Fatal family stops only the calling goroutine and Error races
//     test completion, so concurrent checks must collect failures and
//     report them on the test goroutine.
//   - cells-index: no direct `.cells[...]` indexing outside the memory
//     simulator package that owns the field; raw indexing bypasses the
//     fault hooks and the CheckAddr range validation, turning a bad
//     victim address into a panic instead of an error.
//
// Findings are suppressed by a `//lint:ignore <rule> <reason>` comment
// on the offending line or the line above it.
package golint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"github.com/memtest/partialfaults/internal/lint"
)

// Config selects what to analyze and where the convention-bearing
// packages live.
type Config struct {
	// Dir is the filesystem root of the module to analyze.
	Dir string
	// ModulePath is the module's import path (go.mod's module line);
	// discovered from Dir/go.mod when empty.
	ModulePath string
	// FloatEqPkgs are package-path suffixes subject to the float-eq rule.
	FloatEqPkgs []string
	// ErrPkgs are package-path suffixes whose error results must not be
	// discarded (the ignored-error rule).
	ErrPkgs []string
	// CellOwnerPkgs are package-path suffixes allowed to index a .cells
	// field directly (the cells-index rule exempts them).
	CellOwnerPkgs []string
}

// DefaultConfig returns the repository configuration: float equality is
// policed in the numerical core, ignored errors on the netlist
// construction paths.
func DefaultConfig(dir string) Config {
	return Config{
		Dir:           dir,
		FloatEqPkgs:   []string{"internal/numeric", "internal/spice", "internal/behav"},
		ErrPkgs:       []string{"internal/circuit", "internal/dram"},
		CellOwnerPkgs: []string{"internal/memsim"},
	}
}

// pkg is one loaded (and, for non-test files, type-checked) package.
type pkg struct {
	path      string // import path
	dir       string
	files     []*ast.File // non-test files, type-checked
	testFiles []*ast.File // _test.go files, syntax only
	tpkg      *types.Package
	info      *types.Info
}

// Run loads every package under the configured root and applies all
// rules. The returned findings are sorted; the error covers I/O,
// parse, and type-check failures (a package that does not type-check
// cannot be linted honestly).
func Run(cfg Config) (lint.Findings, error) {
	if cfg.ModulePath == "" {
		mp, err := modulePath(filepath.Join(cfg.Dir, "go.mod"))
		if err != nil {
			return nil, err
		}
		cfg.ModulePath = mp
	}
	fset := token.NewFileSet()
	pkgs, err := load(fset, cfg)
	if err != nil {
		return nil, err
	}
	var out lint.Findings
	for _, p := range pkgs {
		c := &checker{cfg: cfg, fset: fset, pkg: p, root: cfg.Dir}
		c.run()
		out = append(out, c.findings...)
	}
	out.Sort()
	return out, nil
}

// modulePath extracts the module line from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("golint: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("golint: %s has no module line", gomod)
}

// load parses every package directory under cfg.Dir (skipping testdata,
// vendor and hidden directories), topologically sorts the packages by
// their intra-module imports, and type-checks the non-test files with a
// delegating importer: module-internal imports resolve to the packages
// checked earlier, everything else to the source importer.
func load(fset *token.FileSet, cfg Config) ([]*pkg, error) {
	byPath := map[string]*pkg{}
	var order []string
	err := filepath.WalkDir(cfg.Dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != cfg.Dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		dir := filepath.Dir(path)
		rel, err := filepath.Rel(cfg.Dir, dir)
		if err != nil {
			return err
		}
		imp := cfg.ModulePath
		if rel != "." {
			imp = cfg.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p := byPath[imp]
		if p == nil {
			p = &pkg{path: imp, dir: dir}
			byPath[imp] = p
			order = append(order, imp)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("golint: %w", err)
		}
		if strings.HasSuffix(path, "_test.go") {
			p.testFiles = append(p.testFiles, f)
		} else {
			p.files = append(p.files, f)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	sorted, err := topoSort(byPath, order, cfg.ModulePath)
	if err != nil {
		return nil, err
	}

	imp := &delegatingImporter{
		mod: map[string]*types.Package{},
		std: importer.ForCompiler(fset, "source", nil),
	}
	for _, p := range sorted {
		if len(p.files) == 0 {
			continue
		}
		p.info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Uses:       map[*ast.Ident]types.Object{},
			Defs:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tc := types.Config{Importer: imp}
		tpkg, err := tc.Check(p.path, fset, p.files, p.info)
		if err != nil {
			return nil, fmt.Errorf("golint: type-checking %s: %w", p.path, err)
		}
		p.tpkg = tpkg
		imp.mod[p.path] = tpkg
	}
	return sorted, nil
}

// topoSort orders packages so every intra-module import precedes its
// importer.
func topoSort(byPath map[string]*pkg, order []string, modPath string) ([]*pkg, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[string]int{}
	var sorted []*pkg
	var visit func(string) error
	visit = func(path string) error {
		switch color[path] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("golint: import cycle through %s", path)
		}
		color[path] = gray
		p := byPath[path]
		for _, f := range p.files {
			for _, spec := range f.Imports {
				target, err := strconv.Unquote(spec.Path.Value)
				if err != nil {
					continue
				}
				if _, ok := byPath[target]; ok && strings.HasPrefix(target, modPath) {
					if err := visit(target); err != nil {
						return err
					}
				}
			}
		}
		color[path] = black
		sorted = append(sorted, p)
		return nil
	}
	sort.Strings(order)
	for _, path := range order {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return sorted, nil
}

// delegatingImporter resolves module-internal paths from the packages
// type-checked so far and everything else through the stdlib source
// importer.
type delegatingImporter struct {
	mod map[string]*types.Package
	std types.Importer
}

func (i *delegatingImporter) Import(path string) (*types.Package, error) {
	if p, ok := i.mod[path]; ok {
		return p, nil
	}
	return i.std.Import(path)
}

// pathMatches reports whether an import path ends with one of the
// configured suffixes (matched at a path-segment boundary).
func pathMatches(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}
