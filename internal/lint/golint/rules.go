package golint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"github.com/memtest/partialfaults/internal/lint"
)

// checker applies every rule to one package.
type checker struct {
	cfg      Config
	fset     *token.FileSet
	pkg      *pkg
	root     string
	findings lint.Findings

	supp map[int][]string // line → suppressed rules, current file
}

func (c *checker) run() {
	for _, f := range c.pkg.files {
		c.supp = suppressions(f, c.fset)
		if pathMatches(c.pkg.path, c.cfg.FloatEqPkgs) {
			c.floatEq(f)
		}
		c.ignoredError(f)
		c.stampGuard(f)
		c.benchHygiene(f)
		c.nodeIndexCheck(f)
		c.waveformNil(f)
		c.branchFreeze(f)
		c.goroutineTFatal(f)
		if !pathMatches(c.pkg.path, c.cfg.CellOwnerPkgs) {
			c.cellsIndex(f)
		}
	}
	for _, f := range c.pkg.testFiles {
		c.supp = suppressions(f, c.fset)
		// Test files are not type-checked; only the syntactic rules run.
		c.stampGuard(f)
		c.benchHygiene(f)
		c.nodeIndexCheck(f)
		c.waveformNil(f)
		c.branchFreeze(f)
		c.goroutineTFatal(f)
		if !pathMatches(c.pkg.path, c.cfg.CellOwnerPkgs) {
			c.cellsIndex(f)
		}
	}
}

// add records a finding unless a lint:ignore comment covers its line.
func (c *checker) add(pos token.Pos, rule, msg string) {
	p := c.fset.Position(pos)
	for _, r := range c.supp[p.Line] {
		if r == rule {
			return
		}
	}
	file := p.Filename
	if rel, err := filepath.Rel(c.root, file); err == nil {
		file = filepath.ToSlash(rel)
	}
	c.findings = append(c.findings, lint.Finding{
		Layer: "go", Rule: rule, Severity: lint.Error,
		Subject: fmt.Sprintf("%s:%d", file, p.Line),
		Message: msg,
	})
}

// suppressions maps source lines to the rules a `//lint:ignore <rule>
// <reason>` comment disables there. A comment covers its own line and
// the next one, so both trailing and preceding placement work.
func suppressions(f *ast.File, fset *token.FileSet) map[int][]string {
	out := map[int][]string{}
	for _, cg := range f.Comments {
		for _, cm := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(cm.Text, "//"))
			rest, ok := strings.CutPrefix(text, "lint:ignore ")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			line := fset.Position(cm.Pos()).Line
			out[line] = append(out[line], fields[0])
			out[line+1] = append(out[line+1], fields[0])
		}
	}
	return out
}

// ---- float-eq -------------------------------------------------------

// floatEq flags == and != between floating-point operands. Comparison
// against an exact constant zero is allowed: zero is the one float with
// a meaningful exact test (sparsity, pivot singularity).
func (c *checker) floatEq(f *ast.File) {
	info := c.pkg.info
	isFloat := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		if !ok || tv.Type == nil {
			return false
		}
		b, ok := tv.Type.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	isZero := func(e ast.Expr) bool {
		tv, ok := info.Types[e]
		return ok && tv.Value != nil && constant.Sign(tv.Value) == 0
	}
	ast.Inspect(f, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(be.X) && !isFloat(be.Y) {
			return true
		}
		if isZero(be.X) || isZero(be.Y) {
			return true
		}
		c.add(be.OpPos, "float-eq", fmt.Sprintf(
			"floating-point %s comparison; exact equality only holds by accident — compare against a tolerance (or the literal 0)", be.Op))
		return true
	})
}

// ---- ignored-error --------------------------------------------------

// ignoredError flags discarded error results from the configured
// construction packages: a dropped netlist-construction error means the
// rest of the program simulates a circuit that was never built.
func (c *checker) ignoredError(f *ast.File) {
	info := c.pkg.info
	errType := types.Universe.Lookup("error").Type()
	isErr := func(t types.Type) bool { return t != nil && types.Identical(t, errType) }

	calleeMatches := func(call *ast.CallExpr) (string, bool) {
		var obj types.Object
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			obj = info.Uses[fun]
		case *ast.SelectorExpr:
			obj = info.Uses[fun.Sel]
		}
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", false
		}
		if !pathMatches(fn.Pkg().Path(), c.cfg.ErrPkgs) {
			return "", false
		}
		return fn.Name(), true
	}
	// resultErrs returns which result positions of the call are errors.
	resultErrs := func(call *ast.CallExpr) []bool {
		tv, ok := info.Types[call]
		if !ok || tv.Type == nil {
			return nil
		}
		if tuple, ok := tv.Type.(*types.Tuple); ok {
			out := make([]bool, tuple.Len())
			for i := 0; i < tuple.Len(); i++ {
				out[i] = isErr(tuple.At(i).Type())
			}
			return out
		}
		return []bool{isErr(tv.Type)}
	}
	hasErr := func(errs []bool) bool {
		for _, e := range errs {
			if e {
				return true
			}
		}
		return false
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			call, ok := stmt.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := calleeMatches(call)
			if !ok || !hasErr(resultErrs(call)) {
				return true
			}
			c.add(call.Pos(), "ignored-error", fmt.Sprintf(
				"result of %s includes an error that is silently discarded; a swallowed construction error leaves the netlist in an unknown state", name))
		case *ast.AssignStmt:
			// Both n-to-n and 1-call-to-n assignments: flag blanks bound
			// to error results of matching callees.
			if len(stmt.Rhs) == 1 && len(stmt.Lhs) > 1 {
				call, ok := stmt.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := calleeMatches(call)
				if !ok {
					return true
				}
				errs := resultErrs(call)
				for i, lhs := range stmt.Lhs {
					if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" && i < len(errs) && errs[i] {
						c.add(id.Pos(), "ignored-error", fmt.Sprintf(
							"error result of %s assigned to the blank identifier", name))
					}
				}
				return true
			}
			for i, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || i >= len(stmt.Lhs) {
					continue
				}
				id, ok := stmt.Lhs[i].(*ast.Ident)
				if !ok || id.Name != "_" {
					continue
				}
				name, ok := calleeMatches(call)
				if !ok {
					continue
				}
				if errs := resultErrs(call); len(errs) == 1 && errs[0] {
					c.add(id.Pos(), "ignored-error", fmt.Sprintf(
						"error result of %s assigned to the blank identifier", name))
				}
			}
		}
		return true
	})
}

// ---- stamp-ground-guard ---------------------------------------------

// stampGuard checks MNA stamping code: any ctx.A.Add argument or ctx.B
// index of the form `x - 1` must appear under an if proving x is not
// the ground node (x != 0 or x > 0). Node 0 has no matrix row, so an
// unguarded x-1 either corrupts another net's row or indexes out of
// bounds.
func (c *checker) stampGuard(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		ctxName, ok := stampCtxName(fd)
		if !ok {
			continue
		}
		c.guardWalk(fd.Body, ctxName, map[string]bool{})
	}
}

// stampCtxName finds the receiver or parameter of type *StampContext
// (any package qualifier) and returns its name.
func stampCtxName(fd *ast.FuncDecl) (string, bool) {
	var lists []*ast.FieldList
	if fd.Recv != nil {
		lists = append(lists, fd.Recv)
	}
	lists = append(lists, fd.Type.Params)
	for _, fl := range lists {
		for _, field := range fl.List {
			star, ok := field.Type.(*ast.StarExpr)
			if !ok {
				continue
			}
			var typeName string
			switch t := star.X.(type) {
			case *ast.Ident:
				typeName = t.Name
			case *ast.SelectorExpr:
				typeName = t.Sel.Name
			}
			if typeName != "StampContext" || len(field.Names) == 0 {
				continue
			}
			return field.Names[0].Name, true
		}
	}
	return "", false
}

// guardWalk traverses a statement tree tracking which index expressions
// the enclosing ifs have proven non-ground.
func (c *checker) guardWalk(n ast.Node, ctxName string, guarded map[string]bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.IfStmt:
			g2 := map[string]bool{}
			for k := range guarded {
				g2[k] = true
			}
			collectGroundGuards(x.Cond, g2)
			if x.Init != nil {
				c.guardWalk(x.Init, ctxName, guarded)
			}
			c.guardWalk(x.Cond, ctxName, guarded)
			c.guardWalk(x.Body, ctxName, g2)
			if x.Else != nil {
				c.guardWalk(x.Else, ctxName, guarded)
			}
			return false
		case *ast.CallExpr:
			if isMatrixAdd(x.Fun, ctxName) {
				for _, arg := range x.Args {
					c.checkIndex(arg, guarded)
				}
			}
		case *ast.IndexExpr:
			if isCtxField(x.X, ctxName, "B") {
				c.checkIndex(x.Index, guarded)
			}
		}
		return true
	})
}

// checkIndex flags `expr - 1` indices whose base expression is not in
// the guarded set.
func (c *checker) checkIndex(e ast.Expr, guarded map[string]bool) {
	base, ok := minusOne(e)
	if !ok {
		return
	}
	key := types.ExprString(base)
	if guarded[key] {
		return
	}
	c.add(e.Pos(), "stamp-ground-guard", fmt.Sprintf(
		"%s-1 used as an MNA index without a dominating `if %s != 0` guard; ground (node 0) has no matrix row", key, key))
}

// collectGroundGuards extracts the expressions a condition proves
// non-zero: `x != 0`, `0 != x`, `x > 0`, combined with &&.
func collectGroundGuards(cond ast.Expr, into map[string]bool) {
	switch e := ast.Unparen(cond).(type) {
	case *ast.BinaryExpr:
		switch e.Op {
		case token.LAND:
			collectGroundGuards(e.X, into)
			collectGroundGuards(e.Y, into)
		case token.NEQ:
			if isZeroLit(e.Y) {
				into[types.ExprString(ast.Unparen(e.X))] = true
			} else if isZeroLit(e.X) {
				into[types.ExprString(ast.Unparen(e.Y))] = true
			}
		case token.GTR:
			if isZeroLit(e.Y) {
				into[types.ExprString(ast.Unparen(e.X))] = true
			}
		}
	}
}

// minusOne matches `base - 1` and returns base.
func minusOne(e ast.Expr) (ast.Expr, bool) {
	be, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || be.Op != token.SUB {
		return nil, false
	}
	lit, ok := be.Y.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT || lit.Value != "1" {
		return nil, false
	}
	return ast.Unparen(be.X), true
}

func isZeroLit(e ast.Expr) bool {
	lit, ok := ast.Unparen(e).(*ast.BasicLit)
	return ok && lit.Kind == token.INT && lit.Value == "0"
}

// isMatrixAdd matches `ctx.A.Add` for the given context variable name.
func isMatrixAdd(fun ast.Expr, ctxName string) bool {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Add" {
		return false
	}
	return isCtxField(sel.X, ctxName, "A")
}

// isCtxField matches `ctx.<field>`.
func isCtxField(e ast.Expr, ctxName, field string) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != field {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == ctxName
}

// ---- bench-hygiene --------------------------------------------------

// benchHygiene checks every function (declaration or literal) with a
// *testing.B parameter: if it loops over b.N it must call b.ResetTimer
// (so setup cost is excluded) and b.ReportAllocs (so allocation
// regressions show up in CI output).
func (c *checker) benchHygiene(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ftype, body = fn.Type, fn.Body
		case *ast.FuncLit:
			ftype, body = fn.Type, fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		bName, ok := testingBParam(ftype)
		if !ok {
			return true
		}
		usesN := false
		called := map[string]bool{}
		ast.Inspect(body, func(m ast.Node) bool {
			sel, ok := m.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Name != bName {
				return true
			}
			switch sel.Sel.Name {
			case "N":
				usesN = true
			case "ResetTimer", "ReportAllocs", "Run":
				called[sel.Sel.Name] = true
			}
			return true
		})
		if !usesN || called["Run"] {
			return true // helper or sub-benchmark dispatcher
		}
		var missing []string
		for _, want := range []string{"ResetTimer", "ReportAllocs"} {
			if !called[want] {
				missing = append(missing, bName+"."+want)
			}
		}
		if len(missing) > 0 {
			c.add(ftype.Pos(), "bench-hygiene", fmt.Sprintf(
				"benchmark loops over %s.N but never calls %s", bName, strings.Join(missing, " or ")))
		}
		return true
	})
}

// ---- nodeindex-check ------------------------------------------------

// nodeIndexCheck flags NodeIndex calls whose existence result is
// discarded: `idx, _ := ckt.NodeIndex(net)` or a bare call statement.
// NodeIndex returns (0, false) for unknown nets and 0 is a VALID index —
// ground — so a dropped second return silently turns "net does not
// exist" into "net is ground", the exact bug class that motivated the
// engine's explicit unknown-net panics. Syntactic on the method name, so
// it covers test files too.
func (c *checker) nodeIndexCheck(f *ast.File) {
	isNodeIndexCall := func(e ast.Expr) (*ast.CallExpr, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, false
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "NodeIndex" {
			return nil, false
		}
		return call, true
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call, ok := isNodeIndexCall(stmt.X); ok {
				c.add(call.Pos(), "nodeindex-check",
					"NodeIndex result discarded entirely; the call has no side effects, so this statement does nothing")
			}
		case *ast.AssignStmt:
			if len(stmt.Rhs) != 1 || len(stmt.Lhs) != 2 {
				return true
			}
			call, ok := isNodeIndexCall(stmt.Rhs[0])
			if !ok {
				return true
			}
			if id, ok := stmt.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
				c.add(call.Pos(), "nodeindex-check",
					"NodeIndex existence result assigned to the blank identifier; an unknown net then reads as index 0 — ground — instead of an error")
			}
		}
		return true
	})
}

// ---- waveform-nil ---------------------------------------------------

// waveformNil flags immediate dereference of a Trace lookup:
// `rec.Trace(name).Last()` and friends. Recorder.Trace returns nil for
// any net that was not captured — including nets the reduced MNA system
// eliminated (a grounded or source-pinned net) — so chaining without a
// nil check is a latent panic. Assign the result and test it first.
func (c *checker) waveformNil(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		call, ok := ast.Unparen(sel.X).(*ast.CallExpr)
		if !ok {
			return true
		}
		inner, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || inner.Sel.Name != "Trace" {
			return true
		}
		c.add(sel.Sel.Pos(), "waveform-nil", fmt.Sprintf(
			".%s chained directly onto a Trace lookup; Trace returns nil for uncaptured or MNA-eliminated nets — bind the result and nil-check it", sel.Sel.Name))
		return true
	})
}

// ---- branch-freeze --------------------------------------------------

// branchFreeze flags building a simulation engine on a circuit that was
// constructed in the same function but not frozen first: branch indices
// handed out by Add are provisional until Freeze, so NewEngine before
// Freeze stamps voltage sources into stale slots (NewEngine now also
// rejects this at run time; the rule catches it at lint time, including
// in code paths tests never execute). A circuit received as a parameter
// is assumed frozen by the caller.
func (c *checker) branchFreeze(f *ast.File) {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		c.branchFreezeFunc(fd.Body)
	}
}

func (c *checker) branchFreezeFunc(body *ast.BlockStmt) {
	// Idents assigned from a zero-argument New() / pkg.New() call — the
	// circuit constructor shape — mapped to their Freeze position.
	built := map[string]bool{}
	frozenAt := map[string]token.Pos{}
	var flagged []*ast.CallExpr

	isNewCall := func(e ast.Expr) bool {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok || len(call.Args) != 0 {
			return false
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			return fun.Name == "New"
		case *ast.SelectorExpr:
			return fun.Sel.Name == "New"
		}
		return false
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				if !isNewCall(rhs) || i >= len(x.Lhs) {
					continue
				}
				if id, ok := x.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					built[id.Name] = true
				}
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Freeze" && len(x.Args) == 0 {
				if id, ok := sel.X.(*ast.Ident); ok {
					if _, seen := frozenAt[id.Name]; !seen {
						frozenAt[id.Name] = x.Pos()
					}
				}
				return true
			}
			var callee string
			switch fun := x.Fun.(type) {
			case *ast.Ident:
				callee = fun.Name
			case *ast.SelectorExpr:
				callee = fun.Sel.Name
			}
			if (callee != "NewEngine" && callee != "MustNewEngine") || len(x.Args) == 0 {
				return true
			}
			if id, ok := ast.Unparen(x.Args[0]).(*ast.Ident); ok && built[id.Name] {
				flagged = append(flagged, x)
			}
		}
		return true
	})
	for _, call := range flagged {
		id := ast.Unparen(call.Args[0]).(*ast.Ident)
		if at, ok := frozenAt[id.Name]; ok && at < call.Pos() {
			continue
		}
		c.add(call.Pos(), "branch-freeze", fmt.Sprintf(
			"engine built on %s before %s.Freeze(); branch indices are provisional until Freeze, so stamps would land in stale slots", id.Name, id.Name))
	}
}

// ---- goroutine-t-fatal ----------------------------------------------

// goroutineUnsafe are the testing.T/B/F methods that must not be called
// from a goroutine the test launched: the Fatal/FailNow/Skip family
// stops only the calling goroutine (runtime.Goexit), so the test keeps
// running as if nothing failed, and Error races test completion (a
// goroutine that outlives its test panics on the first Error).
var goroutineUnsafe = map[string]bool{
	"Fatal": true, "Fatalf": true, "FailNow": true,
	"Error": true, "Errorf": true,
	"Skip": true, "Skipf": true, "SkipNow": true,
}

// goroutineTFatal flags failure or skip calls on a *testing.T, B or F
// made from inside a goroutine launched by test code — invalid per the
// testing docs (only the test goroutine may call them). Collect
// failures into a slice or channel and report them on the test
// goroutine after Wait. Syntactic, so it covers test files.
func (c *checker) goroutineTFatal(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		var ftype *ast.FuncType
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			ftype, body = fn.Type, fn.Body
		case *ast.FuncLit:
			ftype, body = fn.Type, fn.Body
		default:
			return true
		}
		if body == nil {
			return true
		}
		tName, ok := testingTParam(ftype)
		if !ok {
			return true
		}
		c.goroutineWalk(body, tName, false)
		return true
	})
}

// goroutineWalk traverses a function body tracking whether the current
// node runs on a goroutine the test launched. tName is the in-scope
// testing parameter; a nested function literal with its own testing
// parameter (a subtest closure) rebinds it, and launched inside a
// goroutine it still counts — the subtest body runs off the original
// test goroutine.
func (c *checker) goroutineWalk(n ast.Node, tName string, inGo bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.GoStmt:
			if fl, ok := x.Call.Fun.(*ast.FuncLit); ok {
				c.goroutineWalk(fl.Body, reboundT(fl.Type, tName), true)
			} else {
				// A direct `go t.Fatal(...)` statement.
				c.goroutineCheckCall(x.Call, tName)
			}
			for _, arg := range x.Call.Args {
				c.goroutineWalk(arg, tName, inGo)
			}
			return false
		case *ast.FuncLit:
			c.goroutineWalk(x.Body, reboundT(x.Type, tName), inGo)
			return false
		case *ast.CallExpr:
			if inGo {
				c.goroutineCheckCall(x, tName)
			}
		}
		return true
	})
}

// reboundT returns the function literal's own testing parameter name,
// or the enclosing one.
func reboundT(ftype *ast.FuncType, outer string) string {
	if name, ok := testingTParam(ftype); ok {
		return name
	}
	return outer
}

// goroutineCheckCall flags `t.<unsafe>(...)` for the in-scope testing
// parameter.
func (c *checker) goroutineCheckCall(call *ast.CallExpr, tName string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !goroutineUnsafe[sel.Sel.Name] {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Name != tName {
		return
	}
	c.add(call.Pos(), "goroutine-t-fatal", fmt.Sprintf(
		"%s.%s called from a goroutine launched by the test; Fatal/FailNow/Skip stop only the calling goroutine and Error races test completion — collect failures and report them on the test goroutine after Wait", tName, sel.Sel.Name))
}

// testingTParam finds a parameter of type *testing.T, *testing.B or
// *testing.F and returns its name.
func testingTParam(ftype *ast.FuncType) (string, bool) {
	for _, field := range ftype.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "T" && sel.Sel.Name != "B" && sel.Sel.Name != "F") {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "testing" || len(field.Names) == 0 {
			continue
		}
		return field.Names[0].Name, true
	}
	return "", false
}

// testingBParam finds a parameter of type *testing.B and returns its
// name.
func testingBParam(ftype *ast.FuncType) (string, bool) {
	for _, field := range ftype.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "B" {
			continue
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok || id.Name != "testing" || len(field.Names) == 0 {
			continue
		}
		return field.Names[0].Name, true
	}
	return "", false
}

// ---- cells-index ----------------------------------------------------

// cellsIndex flags direct indexing through a `.cells` selector outside
// the packages that own the field. The memory array's backing store is
// only safe behind its accessors: raw indexing bypasses the injected
// fault hooks and the CheckAddr range validation, so an out-of-range
// victim address panics instead of surfacing as an error. Purely
// syntactic, so it also covers test files.
func (c *checker) cellsIndex(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		sel, ok := ix.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "cells" {
			return true
		}
		c.add(ix.Pos(), "cells-index",
			"direct .cells[...] indexing outside the owning simulator package; go through Cell/Write/Read (and CheckAddr for address validation) so fault hooks and range checks apply")
		return true
	})
}
