// Package lint defines the shared finding model of the static-analysis
// layer: netlist lint (internal/netlint), march-test lint
// (internal/march), and the Go project linter (internal/lint/golint) all
// report their results as Findings, which cmd/pflint aggregates and
// internal/report formats.
package lint

import (
	"fmt"
	"sort"
	"strings"
)

// Severity grades a finding.
type Severity int

// Severities, in increasing gravity. Errors fail a lint run (nonzero
// exit); warnings are reported but do not fail; info findings are
// diagnostic context printed only on request.
const (
	Info Severity = iota
	Warning
	Error
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	default:
		return "info"
	}
}

// Finding is one static-analysis result.
type Finding struct {
	// Layer identifies the analysis layer ("netlist", "march", "go").
	Layer string
	// Rule is the stable rule identifier (e.g. "floating-net",
	// "contradictory-read", "float-eq").
	Rule string
	// Severity grades the finding.
	Severity Severity
	// Subject locates the finding: a net or element name, a march test
	// name, or a file:line position.
	Subject string
	// Message explains the finding. To suppress a golint finding, add a
	// `//lint:ignore <rule>` comment on the flagged line; netlist and
	// march findings have no suppression — fix the input instead.
	Message string
}

// String renders "layer/rule severity subject: message".
func (f Finding) String() string {
	return fmt.Sprintf("%s %s [%s/%s]: %s", f.Subject, f.Severity, f.Layer, f.Rule, f.Message)
}

// Findings is a sortable, filterable collection.
type Findings []Finding

// Sort orders findings by severity (errors first), then layer, rule and
// subject — a stable presentation order for reports and tests.
func (fs Findings) Sort() {
	sort.SliceStable(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Layer != b.Layer {
			return a.Layer < b.Layer
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Subject != b.Subject {
			return a.Subject < b.Subject
		}
		return a.Message < b.Message
	})
}

// Count returns how many findings have at least the given severity.
func (fs Findings) Count(min Severity) int {
	n := 0
	for _, f := range fs {
		if f.Severity >= min {
			n++
		}
	}
	return n
}

// AtLeast returns the findings with at least the given severity.
func (fs Findings) AtLeast(min Severity) Findings {
	var out Findings
	for _, f := range fs {
		if f.Severity >= min {
			out = append(out, f)
		}
	}
	return out
}

// ByRule returns the findings carrying the given rule identifier.
func (fs Findings) ByRule(rule string) Findings {
	var out Findings
	for _, f := range fs {
		if f.Rule == rule {
			out = append(out, f)
		}
	}
	return out
}

// Summary renders a one-line count, e.g. "2 errors, 1 warning".
func (fs Findings) Summary() string {
	errs, warns, infos := 0, 0, 0
	for _, f := range fs {
		switch f.Severity {
		case Error:
			errs++
		case Warning:
			warns++
		default:
			infos++
		}
	}
	parts := []string{plural(errs, "error"), plural(warns, "warning")}
	if infos > 0 {
		parts = append(parts, plural(infos, "info finding"))
	}
	return strings.Join(parts, ", ")
}

func plural(n int, noun string) string {
	if n == 1 {
		return fmt.Sprintf("1 %s", noun)
	}
	return fmt.Sprintf("%d %ss", n, noun)
}
