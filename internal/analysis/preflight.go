package analysis

import (
	"fmt"
	"sort"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
)

// Preflight runs every static check that can invalidate an analysis run
// before any transient simulation: the technology-parameter range lint,
// the netlist structural proofs (floating nets, MNA solvability) and
// phase-model verification, the per-open floating-line cross-check
// against the defect package's Table 1 inventory, the march-test lint,
// both completion pre-passes (single-cell and two-cell), whose
// informational findings tell a coverage run which (test, fault) pairs
// are statically proved undetectable and need no simulation, and the
// three-valued detection pre-pass, which brackets every library test
// against the fault catalogs with proved Detects/Misses verdicts and
// cross-checks that every cannot-complete claim lands in the prover's
// misses (an error-severity drift finding otherwise). A finding
// at error severity means the pipeline's inputs are inconsistent and
// its results would be untrustworthy.
func Preflight(tech dram.Technology) (lint.Findings, error) {
	techFindings := dram.LintTechnology(tech)
	if techFindings.Count(lint.Error) > 0 {
		// An unphysical technology may not even build a solvable
		// netlist; report the parameter findings alone.
		return techFindings, nil
	}
	col, err := dram.NewColumn(tech)
	if err != nil {
		return nil, fmt.Errorf("analysis: preflight netlist build: %w", err)
	}
	az := netlint.New(col.Circuit(), dram.LintModelFor(tech))
	out := techFindings
	out = append(out, az.Check()...)
	out = append(out, CrossCheckOpens(az)...)
	out = append(out, CrossCheckShortsBridges(az)...)
	out = append(out, CrossCheckMergeScenarios(az)...)
	out = append(out, march.LintAll(march.All())...)
	out = append(out, march.CompletionPrePass(march.All(), march.PaperFaultCatalog())...)
	out = append(out, march.TwoCellCompletionPrePass(march.All(), march.TwoCellCatalog())...)
	out = append(out, march.DetectionPrePass(march.All(), march.PaperFaultCatalog(), march.TwoCellCatalog())...)
	out.Sort()
	return out, nil
}

// CrossCheckOpens predicts, for each of the paper's nine opens, the
// floating-line set from the netlist graph alone and compares it with
// the defect package's declared float groups (the Table 1 inventory).
// The comparison is restricted to the universe of nets any open
// declares: the graph analysis also sees nets the paper's sweep
// protocol does not initialize (e.g. the unused cell 1 and the BC-side
// segments), and those carry no declared expectation to check against.
//
// Disagreement on the primary (directly starved) set is an error — the
// netlist and the inventory have drifted apart. Secondary floats (nets
// starved only because a floating control net stops reaching a gate,
// e.g. the cell behind Open 9's dead word line) are reported as
// informational findings: the paper models them through the mediating
// variable, not as separately initialized nets.
func CrossCheckOpens(az *netlint.Analyzer) lint.Findings {
	var out lint.Findings
	universe := map[string]bool{}
	for _, o := range defect.Opens() {
		for _, g := range o.Floats {
			for _, n := range g.Nets {
				universe[n] = true
			}
		}
	}
	inUniverse := func(nets []string) []string {
		var kept []string
		for _, n := range nets {
			if universe[n] {
				kept = append(kept, n)
			}
		}
		return kept
	}
	for _, o := range defect.Opens() {
		pred := az.PredictFloats([]string{dram.SiteElementName(o.Site)})
		var want []string
		for _, g := range o.Floats {
			want = append(want, g.Nets...)
		}
		sort.Strings(want)
		got := inUniverse(pred.Primary)
		if !equalStrings(got, want) {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "float-prediction-mismatch", Severity: lint.Error,
				Subject: o.Name(),
				Message: fmt.Sprintf("graph analysis predicts floating lines %v but the defect inventory declares %v; netlist and Table 1 expectations have drifted apart", got, want),
			})
		}
		if sec := inUniverse(pred.Secondary); len(sec) > 0 {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "float-secondary", Severity: lint.Info,
				Subject: o.Name(),
				Message: fmt.Sprintf("nets %v additionally lose drive because a floating control net starves their access gates; the sweep models this through the mediating variable", sec),
			})
		}
	}
	out.Sort()
	return out
}

// CrossCheckShortsBridges runs the static net-merge prover over every
// catalog short/bridge and verifies the netlist against the catalog's
// declarations: each defect must merge exactly the two nets the catalog
// says it does (merge-mismatch otherwise — the netlist and the Section 2
// inventory have drifted apart), and the prover's standing findings
// apply — no floating group may appear on the merged graph and no class
// may contain two supplies. The per-class verdicts ride along as
// informational merge-class findings so reports show what each defect
// does per phase.
func CrossCheckShortsBridges(az *netlint.Analyzer) lint.Findings {
	var out lint.Findings
	for _, sb := range defect.ShortsAndBridges() {
		pred, err := az.PredictMerges([]string{dram.SiteElementName(sb.Site)})
		if err != nil {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "merge-analysis", Severity: lint.Error,
				Subject: sb.Name(), Message: err.Error(),
			})
			continue
		}
		want := circuit.MergeName(sb.Merges[:])
		var got []string
		for _, mc := range pred.Classes {
			got = append(got, mc.Name)
		}
		if len(got) != 1 || got[0] != want {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "merge-mismatch", Severity: lint.Error,
				Subject: sb.Name(),
				Message: fmt.Sprintf("graph contraction yields classes %v but the defect catalog declares the merge %q; netlist and catalog have drifted apart", got, want),
			})
		}
		out = append(out, pred.Findings()...)
	}
	out.Sort()
	return out
}

// MergeSpecFor translates a catalog merge scenario into the static
// prover's input: each declared site's element with its resistance
// (0 = ideal short, contracted hard).
func MergeSpecFor(sc defect.MergeScenario) netlint.MergeSpec {
	var spec netlint.MergeSpec
	for _, s := range sc.Sites {
		spec.Elems = append(spec.Elems, netlint.MergeElem{
			Name: dram.SiteElementName(s.Site), Ohms: s.Ohms,
		})
	}
	return spec
}

// CrossCheckMergeScenarios runs the multi-defect prover over every
// merge scenario in the catalog and verifies the declarations against
// the prover's output: the hard-merged classes (names and per-phase
// verdicts) and the weak-merge divider verdicts must match exactly
// (merge-scenario-mismatch otherwise — the catalog and the netlist have
// drifted apart). The prover's standing findings ride along, so a
// scenario that transitively joins two rails or floats a net surfaces
// here too.
func CrossCheckMergeScenarios(az *netlint.Analyzer) lint.Findings {
	var out lint.Findings
	mismatch := func(name, format string, args ...any) {
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: "merge-scenario-mismatch", Severity: lint.Error,
			Subject: name, Message: fmt.Sprintf(format, args...),
		})
	}
	for _, sc := range defect.MergeScenarios() {
		pred, err := az.PredictMergeSet(MergeSpecFor(sc))
		if err != nil {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "merge-analysis", Severity: lint.Error,
				Subject: sc.Name, Message: err.Error(),
			})
			continue
		}

		gotClasses := map[string]netlint.MergedClass{}
		for _, mc := range pred.Classes {
			got := mc
			gotClasses[mc.Name] = got
		}
		if len(pred.Classes) != len(sc.Classes) {
			var names []string
			for _, mc := range pred.Classes {
				names = append(names, mc.Name)
			}
			mismatch(sc.Name, "graph contraction yields %d classes %v but the scenario declares %d", len(pred.Classes), names, len(sc.Classes))
		}
		for name, phases := range sc.Classes {
			mc, ok := gotClasses[name]
			if !ok {
				mismatch(sc.Name, "declared class %q not produced by the contraction", name)
				continue
			}
			for ph, wantStr := range phases {
				want, err := netlint.ParseVerdict(wantStr)
				if err != nil {
					mismatch(sc.Name, "class %q phase %q: %v", name, ph, err)
					continue
				}
				if got := mc.Verdicts[ph]; got != want {
					mismatch(sc.Name, "class %q phase %q: prover says %s, catalog declares %s", name, ph, got, want)
				}
			}
		}

		gotWeak := map[string]netlint.WeakMerge{}
		for _, wm := range pred.Weak {
			gotWeak[wm.Elem] = wm
		}
		if len(pred.Weak) != len(sc.Weak) {
			mismatch(sc.Name, "prover analyzed %d weak merges but the scenario declares %d", len(pred.Weak), len(sc.Weak))
		}
		for _, we := range sc.Weak {
			elem := dram.SiteElementName(we.Site)
			wm, ok := gotWeak[elem]
			if !ok {
				mismatch(sc.Name, "declared weak merge %q not analyzed (is its resistance above the hard threshold?)", elem)
				continue
			}
			for ph, wantStr := range we.Verdicts {
				want, err := netlint.ParseVerdict(wantStr)
				if err != nil {
					mismatch(sc.Name, "weak %q phase %q: %v", elem, ph, err)
					continue
				}
				if got := wm.Verdicts[ph]; got != want {
					mismatch(sc.Name, "weak %q phase %q: prover says %s, catalog declares %s", elem, ph, got, want)
				}
			}
		}
		pf := pred.Findings()
		for i := range pf {
			// A contested divider the catalog itself declares (enforced
			// above) is expected behaviour, not drift — demote the
			// standing warning so a clean preflight stays clean.
			if pf[i].Rule == "merge-weak-contested" {
				pf[i].Severity = lint.Info
			}
		}
		out = append(out, pf...)
	}
	out.Sort()
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
