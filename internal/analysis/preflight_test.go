package analysis

import (
	"reflect"
	"sort"
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/netlint"
)

// The repo's own netlist, phase model, defect inventory and march
// library must pre-flight clean: informational findings only.
func TestPreflightClean(t *testing.T) {
	fs, err := Preflight(dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	if bad := fs.AtLeast(lint.Warning); len(bad) != 0 {
		t.Errorf("preflight has %d findings at warning or above:", len(bad))
		for _, f := range bad {
			t.Errorf("  %s", f)
		}
	}
}

// Golden floating-line predictions for the paper's nine Figure-2 opens,
// restricted to the nets the defect inventory declares (the graph also
// sees paper-uninitialized nets like the BC-side segments). Open 9 is
// Table 1's "Not possible" row: only the word line floats directly; the
// cell is starved secondarily through its dead access gate.
func TestNineOpensGoldenPredictions(t *testing.T) {
	bt := func(from int) []string {
		all := []string{dram.NetBTPre, dram.NetBTCell, dram.NetBTRef, dram.NetBTSA, dram.NetBTIO}
		return all[from:]
	}
	golden := map[int]netlint.Prediction{
		1: {Primary: []string{dram.NetCell0Store}},
		2: {Primary: []string{dram.NetRefStore}},
		3: {Primary: bt(0)},
		4: {Primary: bt(1)},
		5: {Primary: append(bt(2), dram.NetCell0Store)},
		6: {Primary: append(bt(3), dram.NetCell0Store)},
		7: {Primary: []string{dram.NetRefStore, dram.NetOutBuf, dram.NetIO}},
		8: {Primary: append(bt(4), dram.NetOutBuf, dram.NetIO)},
		9: {Primary: []string{dram.NetWL0Gate}, Secondary: []string{dram.NetCell0Store}},
	}

	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	az := netlint.New(col.Circuit(), dram.LintModel())
	universe := map[string]bool{}
	for _, o := range defect.Opens() {
		for _, g := range o.Floats {
			for _, n := range g.Nets {
				universe[n] = true
			}
		}
	}
	restrict := func(nets []string) []string {
		var kept []string
		for _, n := range nets {
			if universe[n] {
				kept = append(kept, n)
			}
		}
		sort.Strings(kept)
		return kept
	}

	for _, o := range defect.Opens() {
		want, ok := golden[o.ID]
		if !ok {
			t.Fatalf("no golden entry for %s", o.Name())
		}
		sort.Strings(want.Primary)
		sort.Strings(want.Secondary)
		pred := az.PredictFloats([]string{dram.SiteElementName(o.Site)})
		if got := restrict(pred.Primary); !reflect.DeepEqual(got, want.Primary) {
			t.Errorf("%s primary floats = %v, want %v", o.Name(), got, want.Primary)
		}
		if got := restrict(pred.Secondary); !reflect.DeepEqual(got, want.Secondary) {
			t.Errorf("%s secondary floats = %v, want %v", o.Name(), got, want.Secondary)
		}
	}
}

// The cross-check must actually be able to fail: feed it an analyzer
// whose cutoff is disabled — the 1e12 Ω healthy short-site resistors
// then conduct and the predictions drift from the inventory.
func TestCrossCheckDetectsDrift(t *testing.T) {
	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	m := dram.LintModel()
	m.CutoffOhms = 0
	az := netlint.New(col.Circuit(), m)
	if fs := CrossCheckOpens(az).ByRule("float-prediction-mismatch"); len(fs) == 0 {
		t.Fatal("distorted analyzer produced no mismatch findings")
	}
}
