// Differential suite for the adaptive boundary-tracing sweep: traced
// planes must be bit-identical to dense planes across the whole defect
// catalog, on both factories, while issuing strictly fewer engine
// calls. Lives in the external test package so it can exercise behav
// (which imports analysis) alongside the electrical column.
package analysis_test

import (
	"reflect"
	"sync"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/numeric"
)

// countingFactory wraps a Factory and counts how many memories it
// built — with no memo and no replay cache in play, that is exactly
// the number of transient simulations a sweep issued.
type countingFactory struct {
	mu sync.Mutex
	n  int
}

func (c *countingFactory) wrap(f analysis.Factory) analysis.Factory {
	return func(o defect.Open, r float64) (analysis.Memory, error) {
		c.mu.Lock()
		c.n++
		c.mu.Unlock()
		return f(o, r)
	}
}

func (c *countingFactory) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// comparePlanes asserts traced and dense agree on every point's FFM
// classification (in fact on the full Point, which subsumes it) and on
// the derived FaultyFraction / MinRDefWithFFM / RowFFM readings.
func comparePlanes(t *testing.T, label string, traced, dense *analysis.Plane) {
	t.Helper()
	for i := range dense.Points {
		for j := range dense.Points[i] {
			dp, tp := dense.Points[i][j], traced.Points[i][j]
			if dp.Faulty != tp.Faulty || dp.FFM != tp.FFM {
				t.Errorf("%s: point (%.3g,%.3g): traced %v/%v, dense %v/%v",
					label, dense.RDefs[i], dense.Us[j], tp.Faulty, tp.FFM, dp.Faulty, dp.FFM)
			}
		}
	}
	if !reflect.DeepEqual(traced.Points, dense.Points) {
		t.Errorf("%s: traced plane is not bit-identical to dense plane", label)
	}
	if tf, df := traced.FaultyFraction(), dense.FaultyFraction(); tf != df {
		t.Errorf("%s: FaultyFraction traced %v != dense %v", label, tf, df)
	}
	ffms := append(dense.FFMs(), fp.FFMUnknown)
	for _, f := range ffms {
		for uIdx := range dense.Us {
			tr, tok := traced.MinRDefWithFFM(f, uIdx)
			dr, dok := dense.MinRDefWithFFM(f, uIdx)
			if tr != dr || tok != dok {
				t.Errorf("%s: MinRDefWithFFM(%v,%d) traced (%v,%v) != dense (%v,%v)",
					label, f, uIdx, tr, tok, dr, dok)
			}
		}
		for i := range dense.RDefs {
			tc, tt := traced.RowFFM(i, f)
			dc, dt := dense.RowFFM(i, f)
			if tc != dc || tt != dt {
				t.Errorf("%s: RowFFM(%d,%v) traced (%d,%d) != dense (%d,%d)",
					label, i, f, tc, tt, dc, dt)
			}
		}
	}
}

// diffOne sweeps one (open, SOS, grid) both ways with independent
// counting factories and returns the engine-call counts.
func diffOne(t *testing.T, factory analysis.Factory, open defect.Open, sos fp.SOS, rdefs, us []float64, label string) (tracedCalls, denseCalls int) {
	t.Helper()
	group := open.Floats[0]
	var cd, ct countingFactory
	dense, err := analysis.SweepPlane(analysis.SweepConfig{
		Factory: cd.wrap(factory), Open: open, Float: group, SOS: sos,
		RDefs: rdefs, Us: us, Parallelism: 4,
	})
	if err != nil {
		t.Fatalf("%s: dense: %v", label, err)
	}
	traced, stats, err := analysis.TracePlane(analysis.TraceConfig{SweepConfig: analysis.SweepConfig{
		Factory: ct.wrap(factory), Open: open, Float: group, SOS: sos,
		RDefs: rdefs, Us: us, Parallelism: 4,
	}})
	if err != nil {
		t.Fatalf("%s: traced: %v", label, err)
	}
	comparePlanes(t, label, traced, dense)
	if ct.count() != stats.Simulated() {
		t.Errorf("%s: factory built %d memories but stats claim %d simulations",
			label, ct.count(), stats.Simulated())
	}
	if stats.Points() != len(rdefs)*len(us) {
		t.Errorf("%s: stats cover %d points, grid has %d", label, stats.Points(), len(rdefs)*len(us))
	}
	return ct.count(), cd.count()
}

// seedGrid is the catalog's seed sweep resolution (13 log-spaced
// resistances × 12 linear voltages — the service defaults).
func seedGrid() ([]float64, []float64) {
	return numeric.Logspace(1e3, 1e7, 13), numeric.Linspace(0, 3.3, 12)
}

// TestTracePlaneMatchesDense is the tentpole differential suite: every
// simulated catalog open, the full static SOS set at seed resolution plus
// a finer grid, behav factory. Every traced plane must match its dense
// counterpart bit for bit with strictly fewer engine calls, and the
// aggregate reduction across the catalog must meet the ≥5× target.
func TestTracePlaneMatchesDense(t *testing.T) {
	factory := behav.NewFactory(behav.DefaultParams())
	rdefs, us := seedGrid()
	fineR := numeric.Logspace(1e3, 1e7, 25)
	fineU := numeric.Linspace(0, 3.3, 23)

	totTraced, totDense := 0, 0
	for _, open := range defect.SimulatedOpens() {
		openTraced, openDense := 0, 0
		for _, sos := range analysis.StaticSOSes() {
			label := open.Name() + "/" + sos.String()
			tc, dc := diffOne(t, factory, open, sos, rdefs, us, label)
			if tc >= dc {
				t.Errorf("%s: traced issued %d engine calls, dense %d — not strictly fewer", label, tc, dc)
			}
			openTraced += tc
			openDense += dc
		}
		t.Logf("open %d (%s): seed grid %d traced vs %d dense calls (%.1fx)",
			open.ID, open.Name(), openTraced, openDense, float64(openDense)/float64(openTraced))
		totTraced += openTraced
		totDense += openDense

		// Finer grid: one read and one write SOS per open keeps the
		// suite fast while still crossing every open's region layout.
		for _, sos := range []fp.SOS{fp.NewSOS(fp.Init1, fp.R(1)), fp.NewSOS(fp.Init0, fp.W(1))} {
			label := open.Name() + "/fine/" + sos.String()
			tc, dc := diffOne(t, factory, open, sos, fineR, fineU, label)
			if tc >= dc {
				t.Errorf("%s: traced issued %d engine calls, dense %d — not strictly fewer", label, tc, dc)
			}
		}
	}
	reduction := float64(totDense) / float64(totTraced)
	t.Logf("catalog aggregate at seed resolution: %d traced vs %d dense calls (%.2fx fewer)",
		totTraced, totDense, reduction)
	if reduction < 5 {
		t.Errorf("aggregate simulation reduction %.2fx at seed resolution, want >= 5x", reduction)
	}
}

// TestTracePlaneMatchesDenseSpice repeats the differential check on
// the electrical column for every simulated open at two (small) resolutions.
func TestTracePlaneMatchesDenseSpice(t *testing.T) {
	if testing.Short() {
		t.Skip("transient sweeps are slow; run without -short")
	}
	factory := analysis.NewPooledSpiceFactory(dram.Default())
	sos := fp.NewSOS(fp.Init1, fp.R(1))
	grids := [][2][]float64{
		{numeric.Logspace(1e3, 1e7, 7), numeric.Linspace(0, 3.3, 6)},
		{numeric.Logspace(1e4, 1e6, 5), numeric.Linspace(0, 3.3, 9)},
	}
	for _, open := range defect.SimulatedOpens() {
		for gi, g := range grids {
			label := open.Name() + "/spice/" + sos.String()
			tc, dc := diffOne(t, factory, open, sos, g[0], g[1], label)
			if tc >= dc {
				t.Errorf("%s grid %d: traced issued %d engine calls, dense %d — not strictly fewer",
					label, gi, tc, dc)
			}
		}
	}
}

// TestTraceInventoryMatchesDense closes the loop at the pipeline
// level: BuildInventory in traced mode must produce the identical
// Table 1 rows, with the trace counters accounting for every sweep.
func TestTraceInventoryMatchesDense(t *testing.T) {
	factory := behav.NewFactory(behav.DefaultParams())
	rdefs, us := seedGrid()
	base := analysis.InventoryConfig{
		Factory: factory,
		RDefs:   rdefs, Us: us,
		Parallelism: 4,
	}
	dense, err := analysis.BuildInventory(base)
	if err != nil {
		t.Fatalf("dense inventory: %v", err)
	}
	var counters analysis.TraceCounters
	cfgTraced := base
	cfgTraced.Sweep = analysis.SweepTraced
	cfgTraced.Trace = &counters
	traced, err := analysis.BuildInventory(cfgTraced)
	if err != nil {
		t.Fatalf("traced inventory: %v", err)
	}
	if !reflect.DeepEqual(dense, traced) {
		t.Errorf("traced inventory rows differ from dense rows")
	}
	stats, planes := counters.Snapshot()
	if planes == 0 || stats.Inferred == 0 {
		t.Fatalf("traced inventory recorded no trace work: %+v over %d planes", stats, planes)
	}
	t.Logf("inventory traced %d planes: %d simulated, %d inferred (%.2fx fewer pipeline evaluations)",
		planes, stats.Simulated(), stats.Inferred, stats.Reduction())
}
