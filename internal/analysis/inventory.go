package analysis

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// Row is one entry of the partial-fault inventory — the shape of the
// paper's Table 1: the simulated FFM, the FFM of the complementary
// defect, the open, the completed FP (or "Not possible"), and the
// floating voltage that mediates the fault.
type Row struct {
	// SimFFM is the partial fault observed in simulation.
	SimFFM fp.FFM
	// ComFFM is the behaviour of the complementary defect [Al-Ars00].
	ComFFM fp.FFM
	// Open is the injected defect.
	Open defect.Open
	// Float is the mediating floating voltage ("Initialized volt.").
	Float defect.FloatVar
	// Possible is false for the "Not possible" entries.
	Possible bool
	// Completed is the completed FP when Possible.
	Completed fp.FP
	// Partial is the underlying partial finding.
	Partial PartialFinding
}

// CompletedString renders the Completed column as the paper does.
func (r Row) CompletedString() string {
	if !r.Possible {
		return "Not possible"
	}
	return r.Completed.String()
}

// InventoryConfig parameterizes the full Table 1 pipeline.
type InventoryConfig struct {
	// Factory builds devices under analysis.
	Factory Factory
	// Opens to analyze; defaults to defect.SimulatedOpens().
	Opens []defect.Open
	// RDefs and Us are the sweep grid; probe subsets are derived.
	RDefs, Us []float64
	// BaseSOSes are the sensitizing sequences to sweep; defaults to the
	// eight static single-cell SOSes (covering all 12 static FPs).
	BaseSOSes []fp.SOS
	// MaxCompletingOps bounds the completion search (default 3).
	MaxCompletingOps int
	// MaxProbeRDefs caps how many partial R_def rows the completion
	// search re-simulates (default 4: smallest, largest, median, first-third).
	MaxProbeRDefs int
	// Parallelism bounds concurrent simulations per sweep.
	Parallelism int
	// Progress, when non-nil, receives one line per pipeline step.
	Progress func(string)
	// Sweep selects the plane-sweep strategy; the zero value is dense.
	// Traced sweeps produce identical planes (the differential suite
	// proves it on the catalog) with far fewer simulations.
	Sweep SweepMode
	// TraceStride overrides the traced sweep's seed stride (0 = default).
	TraceStride int
	// Trace, when non-nil, accumulates traced-sweep statistics across
	// all the pipeline's plane sweeps.
	Trace *TraceCounters

	// Model fingerprints the Factory for memo keying; required when Memo
	// is shared across factories or persisted.
	Model Fingerprint
	// Ctx, when non-nil, cancels the pipeline: in-flight units abort at
	// their next simulation and the context error is returned.
	Ctx context.Context
	// Memo, when non-nil, replaces the pipeline-private outcome memo —
	// the service shares one (fingerprint-keyed, optionally persistent)
	// memo across requests.
	Memo *Memo
	// Pool, when non-nil, replaces the pipeline-private worker pool so
	// concurrent pipelines share one concurrency bound.
	Pool *Pool
}

// StaticSOSes returns the eight single-cell SOSes with #O ≤ 1 — the
// sequences whose faulty outcomes are the 12 static FPs of [vdGoor00].
func StaticSOSes() []fp.SOS {
	return []fp.SOS{
		fp.NewSOS(fp.Init0),
		fp.NewSOS(fp.Init1),
		fp.NewSOS(fp.Init0, fp.W(0)),
		fp.NewSOS(fp.Init0, fp.W(1)),
		fp.NewSOS(fp.Init1, fp.W(0)),
		fp.NewSOS(fp.Init1, fp.W(1)),
		fp.NewSOS(fp.Init0, fp.R(0)),
		fp.NewSOS(fp.Init1, fp.R(1)),
	}
}

// BuildInventory runs the full paper pipeline: for every open and every
// floating-voltage group, sweep each base SOS over the (R_def, U) grid,
// apply the partial-fault rule, and search completing operations for
// every partial FFM found.
//
// The (open, group) units are independent and run concurrently, all
// sharing one bounded worker pool so total simulation concurrency stays
// at cfg.Parallelism regardless of unit count. Within a unit the SOSes
// run in order (the first-FFM-wins dedup depends on it), backed by a
// unit-scoped replay cache — which also serves the unit's completion
// searches and is released when the unit finishes — and a pipeline-wide
// outcome memo. Rows are assembled in deterministic unit order, so the
// result is identical to the sequential pipeline's.
func BuildInventory(cfg InventoryConfig) ([]Row, error) {
	opens := cfg.Opens
	if opens == nil {
		opens = defect.SimulatedOpens()
	}
	soses := cfg.BaseSOSes
	if soses == nil {
		soses = StaticSOSes()
	}
	maxProbe := cfg.MaxProbeRDefs
	if maxProbe <= 0 {
		maxProbe = 4
	}
	progress := cfg.Progress
	if progress == nil {
		progress = func(string) {}
	}
	var progressMu sync.Mutex
	report := func(s string) {
		progressMu.Lock()
		defer progressMu.Unlock()
		progress(s)
	}

	type unit struct {
		open  defect.Open
		group defect.FloatGroup
	}
	var units []unit
	for _, open := range opens {
		for _, group := range open.Floats {
			units = append(units, unit{open, group})
		}
	}

	pool := cfg.Pool
	if pool == nil {
		pool = NewPool(cfg.Parallelism)
	}
	memo := cfg.Memo
	if memo == nil {
		memo = NewMemo()
	}
	unitRows := make([][]Row, len(units))
	unitErrs := make([]error, len(units))
	var wg sync.WaitGroup
	for ui, un := range units {
		wg.Add(1)
		go func(ui int, open defect.Open, group defect.FloatGroup) {
			defer wg.Done()
			replay := NewReplayCache(cfg.Factory, open, group.Nets)
			defer replay.Close()
			seen := map[fp.FFM]bool{}
			for _, sos := range soses {
				plane, err := RunSweep(cfg.Sweep, cfg.TraceStride, cfg.Trace, SweepConfig{
					Factory: cfg.Factory, Open: open, Float: group, SOS: sos,
					RDefs: cfg.RDefs, Us: cfg.Us,
					Model: cfg.Model, Ctx: cfg.Ctx,
					Memo: memo, Replay: replay, Pool: pool,
				})
				if err != nil {
					unitErrs[ui] = fmt.Errorf("analysis: %s %s sweep %q: %w", open.Name(), group.Var, sos, err)
					return
				}
				for _, finding := range IdentifyPartialFaults(plane) {
					if seen[finding.FFM] {
						continue
					}
					seen[finding.FFM] = true
					report(fmt.Sprintf("%s / %s: partial %s via %q", open.Name(), group.Var, finding.FFM, sos))
					probes := probeRDefs(finding.RDefWithPartial, maxProbe)
					comp, err := SearchCompletion(CompletionConfig{
						Factory: cfg.Factory, Open: open, Float: group,
						Base:  finding.Example.Base(),
						RDefs: probes, Us: cfg.Us, MaxOps: cfg.MaxCompletingOps,
						Model: cfg.Model, Ctx: cfg.Ctx,
						Memo: memo, Replay: replay, Pool: pool,
					})
					if err != nil {
						unitErrs[ui] = fmt.Errorf("analysis: completing %s for %s: %w", finding.FFM, open.Name(), err)
						return
					}
					unitRows[ui] = append(unitRows[ui], Row{
						SimFFM:    finding.FFM,
						ComFFM:    finding.FFM.Complement(),
						Open:      open,
						Float:     group.Var,
						Possible:  comp.Possible,
						Completed: comp.Completed,
						Partial:   finding,
					})
				}
			}
		}(ui, un.open, un.group)
	}
	wg.Wait()
	for _, err := range unitErrs {
		if err != nil {
			return nil, err
		}
	}
	var rows []Row
	for _, ur := range unitRows {
		rows = append(rows, ur...)
	}
	sortRows(rows)
	return rows, nil
}

// probeRDefs picks up to n representative resistances (smallest,
// largest, median, first-third, then ascending fill) for the completion
// search; the search only needs one of them to admit a full-U
// completion. Indices are deduplicated so no resistance is ever probed
// twice.
func probeRDefs(rdefs []float64, n int) []float64 {
	if len(rdefs) <= n {
		return rdefs
	}
	taken := make(map[int]bool, n)
	out := make([]float64, 0, n)
	take := func(i int) {
		if len(out) < n && !taken[i] {
			taken[i] = true
			out = append(out, rdefs[i])
		}
	}
	take(0)
	take(len(rdefs) - 1)
	take(len(rdefs) / 2)
	take(len(rdefs) / 3)
	for i := 0; len(out) < n && i < len(rdefs); i++ {
		take(i)
	}
	return out
}

// sortRows orders like the paper's Table 1: grouped by FFM, then open.
func sortRows(rows []Row) {
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].SimFFM != rows[j].SimFFM {
			return rows[i].SimFFM < rows[j].SimFFM
		}
		return rows[i].Open.ID < rows[j].Open.ID
	})
}
