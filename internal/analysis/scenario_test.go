// Differential equivalence tests for the multi-defect and weak-merge
// catalog: every scenario's statically declared verdicts must hold
// bit-for-bit against both the prover and the pooled+memoized
// electrical pipeline. Three claims are checked per scenario:
//
//  1. The static prover reproduces the catalog's declared class and
//     weak-merge verdicts exactly, and predicts zero floating groups —
//     the Section 2 negative result survives defect co-occurrence.
//  2. The electrical sweep's outcome at every (R_def, SOS) point is
//     identical for every initialization voltage U, and no partial
//     fault emerges: merged nets (hard or weak) never float.
//  3. Where the catalog pins a divider voltage (WeakCheck), the
//     transient engine's settled net voltage matches the static
//     Thevenin-divider prediction within the declared tolerance.
package analysis_test

import (
	"math"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/netlint"
	"github.com/memtest/partialfaults/internal/numeric"
)

func TestMergeScenarioProverMatchesSweep(t *testing.T) {
	tech := dram.Default()
	col, err := dram.NewColumn(tech)
	if err != nil {
		t.Fatal(err)
	}
	az := netlint.New(col.Circuit(), dram.LintModelFor(tech))

	factory := analysis.NewPooledSpiceFactory(tech)
	memo := analysis.NewMemo()
	us := []float64{0, 1.65, 3.3}
	soses := []fp.SOS{
		fp.NewSOS(fp.Init0),
		fp.NewSOS(fp.Init1),
		fp.NewSOS(fp.Init1, fp.R(1)),
		fp.NewSOS(fp.Init0, fp.W(1)),
	}

	scenarios := defect.MergeScenarios()
	if len(scenarios) < 4 {
		t.Fatalf("scenario catalog has %d entries; the tentpole requires ≥2 multi-defect and ≥2 weak entries", len(scenarios))
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			pred, err := az.PredictMergeSet(analysis.MergeSpecFor(sc))
			if err != nil {
				t.Fatal(err)
			}

			// (1a) Zero floating groups on the merged graph.
			if len(pred.Floats.Primary)+len(pred.Floats.Secondary)+len(pred.Floats.Unknown) != 0 {
				t.Fatalf("static prover predicts floats %+v for %s", pred.Floats, sc.Name)
			}

			// (1b) Declared hard-class verdicts, bit for bit.
			classes := map[string]netlint.MergedClass{}
			for _, mc := range pred.Classes {
				classes[mc.Name] = mc
			}
			if len(pred.Classes) != len(sc.Classes) {
				t.Errorf("prover yields %d classes, catalog declares %d", len(pred.Classes), len(sc.Classes))
			}
			for name, phases := range sc.Classes {
				mc, ok := classes[name]
				if !ok {
					t.Errorf("declared class %q not produced", name)
					continue
				}
				for ph, wantStr := range phases {
					want, err := netlint.ParseVerdict(wantStr)
					if err != nil {
						t.Fatal(err)
					}
					if got := mc.Verdicts[ph]; got != want {
						t.Errorf("class %q phase %q: prover %s, catalog %s", name, ph, got, want)
					}
				}
			}

			// (1c) Declared weak-merge verdicts, bit for bit.
			weak := map[string]netlint.WeakMerge{}
			for _, wm := range pred.Weak {
				weak[wm.Elem] = wm
			}
			if len(pred.Weak) != len(sc.Weak) {
				t.Errorf("prover yields %d weak merges, catalog declares %d", len(pred.Weak), len(sc.Weak))
			}
			for _, we := range sc.Weak {
				elem := dram.SiteElementName(we.Site)
				wm, ok := weak[elem]
				if !ok {
					t.Errorf("declared weak merge %q not analyzed", elem)
					continue
				}
				for ph, wantStr := range we.Verdicts {
					want, err := netlint.ParseVerdict(wantStr)
					if err != nil {
						t.Fatal(err)
					}
					if got := wm.Verdicts[ph]; got != want {
						t.Errorf("weak %q phase %q: prover %s, catalog %s", elem, ph, got, want)
					}
				}
			}

			// (2) Electrical sweep: U-independence bit for bit, no
			// partial faults. Hard scenarios sweep R_def (all sites with
			// Ohms 0 follow it); weak scenarios run at their declared
			// fixed resistance.
			o := sc.AsOpenDescriptor()
			rdefs := numeric.Logspace(1e2, 1e6, 3)
			if sc.Sites[0].Ohms != 0 {
				rdefs = []float64{sc.Sites[0].Ohms}
			}
			for _, sos := range soses {
				plane, err := analysis.SweepPlane(analysis.SweepConfig{
					Factory: factory, Open: o, Float: sc.Probe, SOS: sos,
					RDefs: rdefs, Us: us, Memo: memo,
				})
				if err != nil {
					t.Fatalf("%s / %q: %v", sc.Name, sos, err)
				}
				for i := range plane.RDefs {
					ref := plane.Points[i][0]
					for j := 1; j < len(plane.Us); j++ {
						pt := plane.Points[i][j]
						if pt.Faulty != ref.Faulty || pt.FP.F != ref.FP.F || pt.FP.R != ref.FP.R || pt.FFM != ref.FFM {
							t.Errorf("%s / %q at R_def=%.3g: U=%.3g gives (faulty=%v fp=%v) but U=%.3g gives (faulty=%v fp=%v); a merge outcome must not depend on U",
								sc.Name, sos, plane.RDefs[i], plane.Us[j], pt.Faulty, pt.FP, plane.Us[0], ref.Faulty, ref.FP)
						}
					}
				}
				if findings := analysis.IdentifyPartialFaults(plane); len(findings) != 0 {
					t.Errorf("%s / %q: partial findings %v; Section 2 excludes merges from partial faults", sc.Name, sos, findings)
				}
			}

			// (2b) Hard stuck-to-ground classes must behave as stuck-at-0
			// at the hardest short, exactly as in the single-defect test.
			stuckToGround := false
			for _, mc := range pred.Classes {
				if len(mc.Supplies) == 1 && mc.Supplies[0] == "0" {
					for _, v := range mc.Verdicts {
						if v == netlint.VerdictStuck {
							stuckToGround = true
						}
					}
				}
			}
			if stuckToGround {
				for _, init := range []fp.Init{fp.Init1, fp.Init0} {
					out, err := analysis.RunSOS(factory, o, rdefs[0], sc.Probe.Nets, 0, fp.NewSOS(init))
					if err != nil {
						t.Fatal(err)
					}
					if out.F != 0 {
						t.Errorf("prover says stuck to ground, but hard short holds %d after init %v", out.F, init)
					}
				}
			}

			// (3) Weak divider voltage: settle the engine in the checked
			// phase and compare against the static Thevenin prediction.
			for _, we := range sc.Weak {
				if we.Check == nil {
					continue
				}
				ck := we.Check
				wm, ok := weak[dram.SiteElementName(we.Site)]
				if !ok {
					continue // already reported above
				}
				var predicted float64
				switch ck.Net {
				case wm.A.Net:
					predicted = wm.Volts[ck.Phase][0]
				case wm.B.Net:
					predicted = wm.Volts[ck.Phase][1]
				default:
					t.Errorf("weak check net %q is neither endpoint (%s, %s)", ck.Net, wm.A.Net, wm.B.Net)
					continue
				}
				if math.IsNaN(predicted) {
					t.Errorf("weak check for %s phase %s: static prediction is NaN, nothing to pin", we.Site, ck.Phase)
					continue
				}
				mem, err := factory(o, rdefs[0])
				if err != nil {
					t.Fatal(err)
				}
				mem.ForceVictim(ck.InitBit)
				for i := 0; i < ck.SettleIdles; i++ {
					if err := mem.Idle(); err != nil {
						t.Fatal(err)
					}
				}
				prober, ok := mem.(analysis.VoltageProber)
				if !ok {
					t.Fatal("spice memory does not implement VoltageProber")
				}
				got := prober.NetVoltage(ck.Net)
				if r, ok := mem.(analysis.Releaser); ok {
					r.Release()
				}
				if math.Abs(got-predicted) > ck.TolVolts {
					t.Errorf("weak %s: settled %s = %.3f V in %s, static divider predicts %.3f V (tol %.2f)",
						we.Site, ck.Net, got, ck.Phase, predicted, ck.TolVolts)
				}
			}
		})
	}
}
