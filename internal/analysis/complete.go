package analysis

import (
	"context"
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// CompletionConfig parameterizes the completing-operation search for one
// partial fault.
type CompletionConfig struct {
	// Factory builds the device under analysis.
	Factory Factory
	// Open and Float identify the defect and the swept floating group.
	Open  defect.Open
	Float defect.FloatGroup
	// Base is the partial FP to complete (e.g. <1r1/0/0>).
	Base fp.FP
	// RDefs are probe resistances at which the partial fault was seen.
	// A completion is accepted when it sensitizes the fault for every U
	// at at least one of them: the paper's own completions hold only in
	// an R_def window (Figure 4(b): "can now be sensitized with
	// R_def = 150 kΩ for any initial cell voltage").
	RDefs []float64
	// Us are probe voltages spanning the floating range; the completed
	// FP must be sensitized at every one of them.
	Us []float64
	// MaxOps bounds the completing-prefix length (default 3).
	MaxOps int

	// Model fingerprints the Factory for memo keying; see
	// SweepConfig.Model.
	Model Fingerprint
	// Ctx, when non-nil, cancels the search between probe simulations.
	Ctx context.Context

	// Memo, when non-nil, reuses outcomes already simulated (e.g. by the
	// sweep that found the partial fault). Must be Factory-consistent —
	// or keyed by Model when shared wider.
	Memo *Memo
	// Replay, when non-nil, shares simulation prefixes between the
	// candidate sequences — the search's candidates differ only in their
	// tails, so nearly all re-simulation collapses into tree walks. Must
	// have been built for this search's Factory, Open and Float.Nets.
	Replay *ReplayCache
	// Pool, when non-nil, gates each probe simulation on the shared
	// pipeline pool so completion searches running alongside sweeps keep
	// total concurrency bounded.
	Pool *Pool
}

// Completion is the search result.
type Completion struct {
	// Possible is false when no completing sequence exists within the
	// search bounds — Table 1's "Not possible" entries.
	Possible bool
	// Completed is the completed fault primitive when Possible.
	Completed fp.FP
	// Tried counts candidate prefixes that were simulated.
	Tried int
}

// completingAlphabet is the candidate completing operations: writes to a
// bit-line neighbour or to the victim itself. The paper's completions use
// exactly these (reads are never needed: every read embeds a precharge,
// and its line-driving effect is subsumed by writes).
func completingAlphabet() []fp.Op {
	return []fp.Op{fp.CWBL(0), fp.CWBL(1), fp.CW(0), fp.CW(1)}
}

// SearchCompletion enumerates completing prefixes in order of increasing
// length and returns the first one that sensitizes the base fault for
// every probe (R_def, U) point. A prefix containing victim writes is only
// admissible if its last victim write re-establishes the base FP's
// initial state; the explicit initialization is then dropped, as the
// paper does for <[w1 w1 w0] r0/1/1>.
func SearchCompletion(cfg CompletionConfig) (Completion, error) {
	maxOps := cfg.MaxOps
	if maxOps <= 0 {
		maxOps = 3
	}
	if len(cfg.RDefs) == 0 || len(cfg.Us) == 0 {
		return Completion{}, fmt.Errorf("analysis: completion search needs probe points")
	}
	base := cfg.Base
	initBit, haveInit := initBitOf(base.S.Init)
	result := Completion{}
	for n := 1; n <= maxOps; n++ {
		for _, prefix := range prefixesOfLength(n) {
			lastVictim, hasVictim := lastVictimWrite(prefix)
			if hasVictim && haveInit && lastVictim != initBit {
				continue // would change the expected pre-state
			}
			cand := fp.SOS{Init: base.S.Init, Ops: append(append([]fp.Op(nil), prefix...), base.S.SensitizingOps()...)}
			if hasVictim {
				cand.Init = fp.InitNone
			}
			ok, err := completedEverywhere(cfg, cand, base)
			result.Tried++
			if err != nil {
				return Completion{}, err
			}
			if ok {
				result.Possible = true
				result.Completed = fp.FP{S: cand, F: base.F, R: base.R}
				return result, nil
			}
		}
	}
	return result, nil
}

// completedEverywhere checks the paper's completion criterion: at one of
// the probe resistances (all of which showed the bare fault only for
// part of the U axis), the candidate SOS must reproduce the base fault's
// exact (F, R) at *every* floating voltage. Exactness matters: at
// mixed-class rows where the F component degrades (RDF0 → IRF0 at
// extreme resistance) a lax "any deviation" rule would accept trivial
// prefixes that don't complete anything.
func completedEverywhere(cfg CompletionConfig, cand fp.SOS, base fp.FP) (bool, error) {
	for _, rdef := range cfg.RDefs {
		allUs := true
		for _, u := range cfg.Us {
			var out Outcome
			var err error
			run := func() {
				out, err = evalSOS(cfg.Model, cfg.Factory, cfg.Open, rdef, cfg.Float.Nets, u, cand, cfg.Memo, cfg.Replay)
			}
			if cfg.Pool != nil {
				if perr := cfg.Pool.DoContext(cfg.Ctx, run); perr != nil {
					return false, perr
				}
			} else {
				if cfg.Ctx != nil {
					if cerr := cfg.Ctx.Err(); cerr != nil {
						return false, cerr
					}
				}
				run()
			}
			if err != nil {
				return false, err
			}
			if out.F != base.F || out.R != base.R {
				allUs = false
				break
			}
		}
		if allUs {
			return true, nil
		}
	}
	return false, nil
}

// prefixesOfLength enumerates all completing prefixes of length n over
// the alphabet, in deterministic order.
func prefixesOfLength(n int) [][]fp.Op {
	alpha := completingAlphabet()
	if n == 1 {
		out := make([][]fp.Op, 0, len(alpha))
		for _, o := range alpha {
			out = append(out, []fp.Op{o})
		}
		return out
	}
	var out [][]fp.Op
	for _, shorter := range prefixesOfLength(n - 1) {
		for _, o := range alpha {
			seq := make([]fp.Op, 0, n)
			seq = append(seq, shorter...)
			seq = append(seq, o)
			out = append(out, seq)
		}
	}
	return out
}

// lastVictimWrite returns the data of the last victim-targeted write in
// the prefix and whether one exists.
func lastVictimWrite(ops []fp.Op) (int, bool) {
	data, found := 0, false
	for _, o := range ops {
		if o.Target == fp.TargetVictim && o.Kind == fp.OpWrite {
			data, found = o.Data, true
		}
	}
	return data, found
}

func initBitOf(i fp.Init) (int, bool) {
	switch i {
	case fp.Init0:
		return 0, true
	case fp.Init1:
		return 1, true
	}
	return 0, false
}
