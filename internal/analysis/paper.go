package analysis

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// PaperRow is one row of the paper's Table 1, encoded literally.
type PaperRow struct {
	// SimFFM and ComFFM are the table's first two columns.
	SimFFM, ComFFM fp.FFM
	// OpenIDs lists the opens of the row (the paper groups several).
	OpenIDs []int
	// Completed is the published completed FP, or empty for
	// "Not possible".
	Completed string
	// Float is the "Initialized volt." column.
	Float defect.FloatVar
}

// Possible reports whether the row has a completion.
func (r PaperRow) Possible() bool { return r.Completed != "" }

// PaperTable1 returns the paper's Table 1, row by row.
func PaperTable1() []PaperRow {
	return []PaperRow{
		{SimFFM: fp.RDF0, ComFFM: fp.RDF1, OpenIDs: []int{1}, Completed: "<[w1 w1 w0] r0/1/1>", Float: defect.FloatMemoryCell},
		{SimFFM: fp.RDF0, ComFFM: fp.RDF1, OpenIDs: []int{5}, Completed: "<0v [w1BL] r0v/1/1>", Float: defect.FloatBitLine},
		{SimFFM: fp.RDF0, ComFFM: fp.RDF1, OpenIDs: []int{8}, Completed: "<0v [w1BL] r0v/1/1>", Float: defect.FloatOutBuffer},
		{SimFFM: fp.RDF1, ComFFM: fp.RDF0, OpenIDs: []int{3, 4, 5}, Completed: "<1v [w0BL] r1v/0/0>", Float: defect.FloatBitLine},
		{SimFFM: fp.RDF1, ComFFM: fp.RDF0, OpenIDs: []int{8}, Completed: "<1v [w0BL] r1v/0/0>", Float: defect.FloatOutBuffer},
		{SimFFM: fp.RDF1, ComFFM: fp.RDF0, OpenIDs: []int{7}, Completed: "<1v [w0BL] r1v/0/0>", Float: defect.FloatRefCell},
		{SimFFM: fp.DRDF1, ComFFM: fp.DRDF0, OpenIDs: []int{4}, Completed: "<1v [w1BL] r1v/0/1>", Float: defect.FloatBitLine},
		{SimFFM: fp.IRF0, ComFFM: fp.IRF1, OpenIDs: []int{8}, Completed: "<0v [w1BL] r0v/0/1>", Float: defect.FloatOutBuffer},
		{SimFFM: fp.IRF0, ComFFM: fp.IRF1, OpenIDs: []int{9}, Float: defect.FloatWordLine},
		{SimFFM: fp.IRF1, ComFFM: fp.IRF0, OpenIDs: []int{5}, Completed: "<1v [w0BL] r1v/1/0>", Float: defect.FloatBitLine},
		{SimFFM: fp.WDF1, ComFFM: fp.WDF0, OpenIDs: []int{4}, Completed: "<1v [w0BL] w1v/0/->", Float: defect.FloatBitLine},
		{SimFFM: fp.TFUp, ComFFM: fp.TFDown, OpenIDs: []int{1}, Float: defect.FloatMemoryCell},
		{SimFFM: fp.TFDown, ComFFM: fp.TFUp, OpenIDs: []int{5}, Completed: "<1v [w1BL] w0v/1/->", Float: defect.FloatBitLine},
		{SimFFM: fp.TFDown, ComFFM: fp.TFUp, OpenIDs: []int{9}, Float: defect.FloatWordLine},
		{SimFFM: fp.SF0, ComFFM: fp.SF1, OpenIDs: []int{9}, Float: defect.FloatWordLine},
	}
}

// RowMatch describes how one paper row compares with our inventory.
type RowMatch struct {
	Paper PaperRow
	// Exact means an inventory row matched FFM, an open of the row, the
	// mediating voltage, and the completed FP (or Not possible) exactly.
	Exact bool
	// FFMFound means the (FFM, some open) pair appears in the inventory
	// even if completion or mediation differs.
	FFMFound bool
	// Note explains partial matches.
	Note string
}

// CompareWithPaper matches our inventory against the paper's Table 1
// and returns one RowMatch per paper row plus summary counts.
func CompareWithPaper(rows []Row) (matches []RowMatch, exact, ffmOnly int) {
	for _, pr := range PaperTable1() {
		m := RowMatch{Paper: pr}
		for _, r := range rows {
			if r.SimFFM != pr.SimFFM {
				continue
			}
			inOpenSet := false
			for _, id := range pr.OpenIDs {
				if r.Open.ID == id {
					inOpenSet = true
				}
			}
			if !inOpenSet {
				continue
			}
			m.FFMFound = true
			if r.Float != pr.Float {
				continue
			}
			if pr.Possible() == r.Possible &&
				(!pr.Possible() || r.Completed.String() == pr.Completed) {
				m.Exact = true
				break
			}
		}
		switch {
		case m.Exact:
			exact++
		case m.FFMFound:
			ffmOnly++
			m.Note = "FFM observed for the row's open; completion or mediation differs"
		default:
			m.Note = "not observed (design-dependent; see EXPERIMENTS.md)"
		}
		matches = append(matches, m)
	}
	return matches, exact, ffmOnly
}

// SummarizeComparison renders the comparison for reports.
func SummarizeComparison(matches []RowMatch) string {
	out := ""
	for _, m := range matches {
		status := "✗"
		if m.Exact {
			status = "✓"
		} else if m.FFMFound {
			status = "≈"
		}
		opens := ""
		for i, id := range m.Paper.OpenIDs {
			if i > 0 {
				opens += ","
			}
			opens += fmt.Sprintf("%d", id)
		}
		completed := m.Paper.Completed
		if completed == "" {
			completed = "Not possible"
		}
		out += fmt.Sprintf("%s %-6s Open %-6s %-22s %s\n",
			status, m.Paper.SimFFM, opens, completed, m.Note)
	}
	return out
}
