package analysis

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// ReplayCache accelerates repeated SOS applications against one
// (open, floating-group) pair by sharing simulation prefixes. The
// completion search evaluates dozens of candidate sequences per probe
// point that differ only in their tails; a fresh-build run re-simulates
// power-up, initialization and the shared operations every time. The
// cache instead keeps, per probe resistance, one live Snapshotter memory
// and a prefix tree whose edges are protocol steps —
//
//	setup(init, u) → op(kind, cell, data)* [→ idle]
//
// — and whose nodes hold the memory state snapshot plus the observed
// victim bit and read value after that step. An SOS evaluation walks the
// tree, restores the deepest cached state, and simulates only the unseen
// suffix. Because Restore reproduces the dynamic state exactly (see
// Snapshotter), the outcome is bit-for-bit the fresh-build outcome — the
// equivalence tests assert this for both memory models.
//
// When the factory's memories do not implement Snapshotter, Run degrades
// to plain fresh-build execution.
type ReplayCache struct {
	factory Factory
	open    defect.Open
	nets    []string

	mu          sync.Mutex
	roots       map[float64]*replayRoot
	unsupported bool // factory memories are not Snapshotters

	simulated atomic.Uint64 // protocol steps actually simulated
	replayed  atomic.Uint64 // protocol steps served from the tree
}

// replayEdge is one protocol step. kind is 's' (setup), 'w' (write),
// 'r' (read) or 'i' (idle); u and init are only set on setup edges,
// cell and data only on operation edges.
type replayEdge struct {
	kind byte
	cell int
	data int
	u    float64
	init fp.Init
}

// replayNode is the memory state after applying the edge path from the
// root, plus the observations made on arrival.
type replayNode struct {
	snap     any
	f        int // VictimBit at this node
	readVal  int // output of the read edge that created this node
	children map[replayEdge]*replayNode
}

// replayRoot is the per-resistance tree: a live memory, its
// post-power-up base state, and the node the memory currently sits at
// (nil when unknown, forcing a restore before the next simulation).
type replayRoot struct {
	mu   sync.Mutex
	mem  Snapshotter
	base *replayNode
	cur  *replayNode
}

// NewReplayCache creates a cache for one open and floating group.
func NewReplayCache(factory Factory, open defect.Open, nets []string) *ReplayCache {
	return &ReplayCache{
		factory: factory,
		open:    open,
		nets:    nets,
		roots:   map[float64]*replayRoot{},
	}
}

// Run evaluates the SOS at (rdef, u) through the prefix tree. It is safe
// for concurrent use; evaluations at different resistances proceed in
// parallel, evaluations at the same resistance serialize on its root.
func (rc *ReplayCache) Run(rdef float64, u float64, sos fp.SOS) (Outcome, error) {
	root, err := rc.root(rdef)
	if err != nil {
		return Outcome{}, err
	}
	if root == nil {
		// Factory memories cannot snapshot; run plainly.
		return RunSOS(rc.factory, rc.open, rdef, rc.nets, u, sos)
	}
	root.mu.Lock()
	defer root.mu.Unlock()

	cur, err := rc.walk(root, root.base, replayEdge{kind: 's', u: u, init: sos.Init})
	if err != nil {
		return Outcome{}, err
	}
	endsWithVictimRead := false
	for i, op := range sos.Ops {
		e := replayEdge{kind: 'w', data: op.Data}
		if op.Kind == fp.OpRead {
			e.kind = 'r'
		}
		if op.Target == fp.TargetBitLine {
			e.cell = 1
		}
		cur, err = rc.walk(root, cur, e)
		if err != nil {
			return Outcome{}, fmt.Errorf("analysis: op %d (%s): %w", i, op, err)
		}
		if e.kind == 'r' && e.cell == 0 {
			endsWithVictimRead = i == len(sos.Ops)-1
		}
	}
	if len(sos.Ops) == 0 {
		cur, err = rc.walk(root, cur, replayEdge{kind: 'i'})
		if err != nil {
			return Outcome{}, fmt.Errorf("analysis: idle: %w", err)
		}
	}
	out := Outcome{F: cur.f}
	if endsWithVictimRead {
		out.R = fp.ReadResultOf(cur.readVal)
	}
	return out, nil
}

// walk follows (or creates) the edge from node n. The root's lock must
// be held.
func (rc *ReplayCache) walk(root *replayRoot, n *replayNode, e replayEdge) (*replayNode, error) {
	if next, ok := n.children[e]; ok {
		rc.replayed.Add(1)
		return next, nil
	}
	mem := root.mem
	if root.cur != n {
		mem.Restore(n.snap)
		root.cur = n
	}
	readVal := 0
	switch e.kind {
	case 's':
		switch e.init {
		case fp.Init0:
			mem.ForceVictim(0)
		case fp.Init1:
			mem.ForceVictim(1)
		}
		mem.SetFloat(rc.nets, e.u)
	case 'w':
		if err := mem.Write(e.cell, e.data); err != nil {
			root.cur = nil // memory state is no longer a tree node
			return nil, err
		}
	case 'r':
		got, err := mem.Read(e.cell)
		if err != nil {
			root.cur = nil
			return nil, err
		}
		readVal = got
	case 'i':
		if err := mem.Idle(); err != nil {
			root.cur = nil
			return nil, err
		}
	}
	next := &replayNode{snap: mem.Snapshot(), f: mem.VictimBit(), readVal: readVal}
	if n.children == nil {
		n.children = map[replayEdge]*replayNode{}
	}
	n.children[e] = next
	root.cur = next
	rc.simulated.Add(1)
	return next, nil
}

// root returns the per-resistance tree root, building the backing memory
// on first use. A nil root (with nil error) signals that the factory's
// memories cannot snapshot.
func (rc *ReplayCache) root(rdef float64) (*replayRoot, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.unsupported {
		return nil, nil
	}
	if r, ok := rc.roots[rdef]; ok {
		return r, nil
	}
	mem, err := rc.factory(rc.open, rdef)
	if err != nil {
		return nil, err
	}
	snap, ok := mem.(Snapshotter)
	if !ok {
		rc.unsupported = true
		if rel, isRel := mem.(Releaser); isRel {
			rel.Release()
		}
		return nil, nil
	}
	r := &replayRoot{mem: snap}
	r.base = &replayNode{snap: snap.Snapshot(), f: snap.VictimBit()}
	r.cur = r.base
	rc.roots[rdef] = r
	return r, nil
}

// Stats reports how many protocol steps were simulated versus replayed
// from the tree.
func (rc *ReplayCache) Stats() (simulated, replayed uint64) {
	return rc.simulated.Load(), rc.replayed.Load()
}

// Close releases the live memories back to their pool (when pooled) and
// drops the trees. The cache must not be used afterwards.
func (rc *ReplayCache) Close() {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	for _, r := range rc.roots {
		if rel, ok := r.mem.(Releaser); ok {
			rel.Release()
		}
	}
	rc.roots = nil
}
