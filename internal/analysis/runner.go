// Package analysis implements the paper's fault-analysis methodology:
// defect injection, (R_def, U) plane sweeps with floating-voltage
// initialization, FP-region classification (Figures 3 and 4), the
// partial-fault identification rule of Section 3, the completing-
// operation search, and the Table 1 inventory pipeline.
package analysis

import (
	"fmt"
	"sync"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
)

// Memory is the device under analysis: a defective memory column whose
// internal floating voltages can be forced, matching the paper's
// simulation protocol. Cell 0 is the victim; cell 1 is a cell on the
// victim's bit line.
type Memory interface {
	// Write performs a write operation of bit to the cell.
	Write(cell, bit int) error
	// Read performs a read operation and returns the output value.
	Read(cell int) (int, error)
	// Idle lets one operation-length period pass without an access (the
	// memory still precharges); used to sensitize state faults.
	Idle() error
	// ForceVictim sets the victim's stored state directly, implementing
	// the SOS initialization (the leading 0/1 of the notation is a
	// state, not an operation).
	ForceVictim(bit int)
	// SetFloat overwrites the named floating nets with voltage u.
	SetFloat(nets []string, u float64)
	// VictimBit reads the victim's stored state non-invasively.
	VictimBit() int
}

// Snapshotter is the optional Memory extension enabling the replay
// cache: Snapshot captures the memory's full dynamic state as an opaque
// value and Restore reinstates it exactly, so that simulation resumed
// from a restored state is bit-for-bit the continuation of the original
// run. Both the electrical and the analytical memories implement it.
type Snapshotter interface {
	Memory
	// Snapshot returns an immutable opaque state handle.
	Snapshot() any
	// Restore reinstates a state previously returned by Snapshot on the
	// same memory (or an identically configured one).
	Restore(state any)
}

// Releaser is the optional Memory extension for pooled memories. RunSOS
// releases the memory when it is done with it, returning the underlying
// simulator to its factory's reuse pool.
type Releaser interface {
	Memory
	// Release returns the memory to its pool. The memory must not be
	// used afterwards.
	Release()
}

// VoltageProber is the optional Memory extension exposing settled net
// voltages, used by the weak-merge differential checks to compare the
// transient engine's divider midpoint against the static prediction.
type VoltageProber interface {
	Memory
	// NetVoltage returns the present voltage of the named net.
	NetVoltage(net string) float64
}

// Factory builds a Memory with the given open injected at resistance
// rdef. Implementations exist for the electrical column (NewSpiceFactory)
// and the fast analytical model (behav.NewFactory).
type Factory func(open defect.Open, rdef float64) (Memory, error)

// injectSites applies the descriptor's full defect-site set to a
// column-like target: the primary site at the swept rdef, every Extra
// site at its declared resistance (or rdef when it declares none) — the
// multi-defect scenarios of the merge catalog.
func injectSites(set func(site string, ohms float64), open defect.Open, rdef float64) {
	set(open.Site, rdef)
	for _, x := range open.Extra {
		ohms := x.Ohms
		if ohms == 0 {
			ohms = rdef
		}
		set(x.Site, ohms)
	}
}

// NewSpiceFactory returns a Factory backed by the transient-simulated
// DRAM column. Every call builds a fresh column; prefer
// NewPooledSpiceFactory for sweeps, which recycles columns and their
// engines across points.
func NewSpiceFactory(tech dram.Technology) Factory {
	return func(open defect.Open, rdef float64) (Memory, error) {
		col, err := dram.NewColumn(tech)
		if err != nil {
			return nil, err
		}
		injectSites(col.SetSiteResistance, open, rdef)
		if err := col.PowerUp(); err != nil {
			return nil, fmt.Errorf("analysis: power-up with %s at %.3g Ω: %w", open.Name(), rdef, err)
		}
		return &spiceMemory{col: col}, nil
	}
}

// columnPool recycles dram.Column instances: netlist construction and
// engine allocation are amortized across sweep points, and only the
// cheap Reset + defect injection + PowerUp run per point.
type columnPool struct {
	mu   sync.Mutex
	free []*dram.Column
}

func (p *columnPool) get(tech dram.Technology) (*dram.Column, error) {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		col := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		col.Reset()
		return col, nil
	}
	p.mu.Unlock()
	return dram.NewColumn(tech)
}

func (p *columnPool) put(col *dram.Column) {
	p.mu.Lock()
	p.free = append(p.free, col)
	p.mu.Unlock()
}

// NewPooledSpiceFactory returns a Factory backed by the electrical
// column that recycles columns through a pool. The returned memories
// implement Releaser (RunSOS returns them automatically) and
// Snapshotter (enabling the replay cache). A recycled column is Reset to
// its as-constructed state before reuse, so results are identical to a
// freshly built column's — the equivalence tests prove this bit for bit.
func NewPooledSpiceFactory(tech dram.Technology) Factory {
	pool := &columnPool{}
	return func(open defect.Open, rdef float64) (Memory, error) {
		col, err := pool.get(tech)
		if err != nil {
			return nil, err
		}
		injectSites(col.SetSiteResistance, open, rdef)
		if err := col.PowerUp(); err != nil {
			pool.put(col)
			return nil, fmt.Errorf("analysis: power-up with %s at %.3g Ω: %w", open.Name(), rdef, err)
		}
		return &spiceMemory{col: col, pool: pool}, nil
	}
}

// spiceMemory adapts dram.Column to the Memory interface.
type spiceMemory struct {
	col  *dram.Column
	pool *columnPool // nil for unpooled memories
}

func (m *spiceMemory) Write(cell, bit int) error  { return m.col.Write(cell, bit) }
func (m *spiceMemory) Read(cell int) (int, error) { return m.col.Read(cell) }
func (m *spiceMemory) Idle() error                { return m.col.Precharge() }

func (m *spiceMemory) ForceVictim(bit int) {
	v := 0.0
	if bit == 1 {
		v = m.col.Tech.VDD
	}
	m.col.SetNodeVoltages(v, dram.NetCell0Store)
}

func (m *spiceMemory) SetFloat(nets []string, u float64) {
	m.col.SetNodeVoltages(u, nets...)
}

func (m *spiceMemory) VictimBit() int { return m.col.CellBit(0) }

// NetVoltage implements VoltageProber.
func (m *spiceMemory) NetVoltage(net string) float64 { return m.col.Voltage(net) }

// Snapshot implements Snapshotter via the column's backward-Euler state
// capture (node voltages, clock, control waveforms and levels).
func (m *spiceMemory) Snapshot() any { return m.col.Snapshot() }

// Restore implements Snapshotter.
func (m *spiceMemory) Restore(state any) { m.col.Restore(state.(*dram.State)) }

// Release implements Releaser for pooled memories; for unpooled ones it
// is a no-op.
func (m *spiceMemory) Release() {
	if m.pool != nil {
		m.pool.put(m.col)
		m.col = nil
	}
}

// Outcome is the observed behaviour of one SOS application.
type Outcome struct {
	// F is the victim state after the SOS.
	F int
	// R is the final victim read's output, if the SOS ends with one.
	R fp.ReadResult
}

// RunSOS applies the SOS to a freshly built defective memory following
// the paper's protocol: establish the initial state, overwrite the
// floating nets with u, apply the operations, observe (F, R). Memories
// implementing Releaser are returned to their pool before RunSOS
// returns.
func RunSOS(factory Factory, open defect.Open, rdef float64, floatNets []string, u float64, sos fp.SOS) (Outcome, error) {
	mem, err := factory(open, rdef)
	if err != nil {
		return Outcome{}, err
	}
	if r, ok := mem.(Releaser); ok {
		defer r.Release()
	}
	return runSOSOn(mem, floatNets, u, sos)
}

// runSOSOn applies the SOS protocol to an already built memory.
func runSOSOn(mem Memory, floatNets []string, u float64, sos fp.SOS) (Outcome, error) {
	switch sos.Init {
	case fp.Init0:
		mem.ForceVictim(0)
	case fp.Init1:
		mem.ForceVictim(1)
	}
	mem.SetFloat(floatNets, u)

	lastVictimRead := fp.RNone
	endsWithVictimRead := false
	for i, op := range sos.Ops {
		cell := 0
		if op.Target == fp.TargetBitLine {
			cell = 1
		}
		switch op.Kind {
		case fp.OpWrite:
			if err := mem.Write(cell, op.Data); err != nil {
				return Outcome{}, fmt.Errorf("analysis: op %d (%s): %w", i, op, err)
			}
		case fp.OpRead:
			got, err := mem.Read(cell)
			if err != nil {
				return Outcome{}, fmt.Errorf("analysis: op %d (%s): %w", i, op, err)
			}
			if cell == 0 {
				lastVictimRead = fp.ReadResultOf(got)
				endsWithVictimRead = i == len(sos.Ops)-1
			}
		}
	}
	if len(sos.Ops) == 0 {
		// A state-fault SOS: let an operation period pass.
		if err := mem.Idle(); err != nil {
			return Outcome{}, fmt.Errorf("analysis: idle: %w", err)
		}
	}
	out := Outcome{F: mem.VictimBit()}
	if endsWithVictimRead {
		out.R = lastVictimRead
	}
	return out, nil
}

// evalSOS is the cache-aware entry point used by the sweep and
// completion phases: memo lookup first, then the replay cache, then a
// plain fresh-build run; the result is stored back into the memo. The
// model fingerprint scopes the memo key to the factory's identity.
func evalSOS(model Fingerprint, factory Factory, open defect.Open, rdef float64, nets []string, u float64, sos fp.SOS, memo *Memo, replay *ReplayCache) (Outcome, error) {
	var key OutcomeKey
	if memo != nil {
		key = NewOutcomeKey(model, open, rdef, nets, u, sos)
		if out, ok := memo.Lookup(key); ok {
			return out, nil
		}
	}
	var out Outcome
	var err error
	if replay != nil {
		out, err = replay.Run(rdef, u, sos)
	} else {
		out, err = RunSOS(factory, open, rdef, nets, u, sos)
	}
	if err != nil {
		return Outcome{}, err
	}
	if memo != nil {
		memo.Store(key, out)
	}
	return out, nil
}

// ClassifyOutcome compares an observed outcome against the SOS's
// fault-free expectation and returns the observed fault primitive, or
// (zero, false) when the behaviour is fault-free.
func ClassifyOutcome(sos fp.SOS, out Outcome) (fp.FP, bool) {
	expF, known := sos.ExpectedFinalState()
	if !known {
		return fp.FP{}, false
	}
	expR := fp.RNone
	if last, ok := sos.FinalOp(); ok && last.Kind == fp.OpRead && last.Target == fp.TargetVictim {
		expR = fp.ReadResultOf(last.Data)
	}
	if out.F == expF && out.R == expR {
		return fp.FP{}, false
	}
	return fp.FP{S: sos, F: out.F, R: out.R}, true
}
