// Package analysis implements the paper's fault-analysis methodology:
// defect injection, (R_def, U) plane sweeps with floating-voltage
// initialization, FP-region classification (Figures 3 and 4), the
// partial-fault identification rule of Section 3, the completing-
// operation search, and the Table 1 inventory pipeline.
package analysis

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
)

// Memory is the device under analysis: a defective memory column whose
// internal floating voltages can be forced, matching the paper's
// simulation protocol. Cell 0 is the victim; cell 1 is a cell on the
// victim's bit line.
type Memory interface {
	// Write performs a write operation of bit to the cell.
	Write(cell, bit int) error
	// Read performs a read operation and returns the output value.
	Read(cell int) (int, error)
	// Idle lets one operation-length period pass without an access (the
	// memory still precharges); used to sensitize state faults.
	Idle() error
	// ForceVictim sets the victim's stored state directly, implementing
	// the SOS initialization (the leading 0/1 of the notation is a
	// state, not an operation).
	ForceVictim(bit int)
	// SetFloat overwrites the named floating nets with voltage u.
	SetFloat(nets []string, u float64)
	// VictimBit reads the victim's stored state non-invasively.
	VictimBit() int
}

// Factory builds a Memory with the given open injected at resistance
// rdef. Implementations exist for the electrical column (NewSpiceFactory)
// and the fast analytical model (behav.NewFactory).
type Factory func(open defect.Open, rdef float64) (Memory, error)

// NewSpiceFactory returns a Factory backed by the transient-simulated
// DRAM column.
func NewSpiceFactory(tech dram.Technology) Factory {
	return func(open defect.Open, rdef float64) (Memory, error) {
		col, err := dram.NewColumn(tech)
		if err != nil {
			return nil, err
		}
		col.SetSiteResistance(open.Site, rdef)
		if err := col.PowerUp(); err != nil {
			return nil, fmt.Errorf("analysis: power-up with %s at %.3g Ω: %w", open.Name(), rdef, err)
		}
		return &spiceMemory{col: col}, nil
	}
}

// spiceMemory adapts dram.Column to the Memory interface.
type spiceMemory struct {
	col *dram.Column
}

func (m *spiceMemory) Write(cell, bit int) error  { return m.col.Write(cell, bit) }
func (m *spiceMemory) Read(cell int) (int, error) { return m.col.Read(cell) }
func (m *spiceMemory) Idle() error                { return m.col.Precharge() }

func (m *spiceMemory) ForceVictim(bit int) {
	v := 0.0
	if bit == 1 {
		v = m.col.Tech.VDD
	}
	m.col.SetNodeVoltages(v, dram.NetCell0Store)
}

func (m *spiceMemory) SetFloat(nets []string, u float64) {
	m.col.SetNodeVoltages(u, nets...)
}

func (m *spiceMemory) VictimBit() int { return m.col.CellBit(0) }

// Outcome is the observed behaviour of one SOS application.
type Outcome struct {
	// F is the victim state after the SOS.
	F int
	// R is the final victim read's output, if the SOS ends with one.
	R fp.ReadResult
}

// RunSOS applies the SOS to a freshly built defective memory following
// the paper's protocol: establish the initial state, overwrite the
// floating nets with u, apply the operations, observe (F, R).
func RunSOS(factory Factory, open defect.Open, rdef float64, floatNets []string, u float64, sos fp.SOS) (Outcome, error) {
	mem, err := factory(open, rdef)
	if err != nil {
		return Outcome{}, err
	}
	switch sos.Init {
	case fp.Init0:
		mem.ForceVictim(0)
	case fp.Init1:
		mem.ForceVictim(1)
	}
	mem.SetFloat(floatNets, u)

	lastVictimRead := fp.RNone
	endsWithVictimRead := false
	for i, op := range sos.Ops {
		cell := 0
		if op.Target == fp.TargetBitLine {
			cell = 1
		}
		switch op.Kind {
		case fp.OpWrite:
			if err := mem.Write(cell, op.Data); err != nil {
				return Outcome{}, fmt.Errorf("analysis: op %d (%s): %w", i, op, err)
			}
		case fp.OpRead:
			got, err := mem.Read(cell)
			if err != nil {
				return Outcome{}, fmt.Errorf("analysis: op %d (%s): %w", i, op, err)
			}
			if cell == 0 {
				lastVictimRead = fp.ReadResultOf(got)
				endsWithVictimRead = i == len(sos.Ops)-1
			}
		}
	}
	if len(sos.Ops) == 0 {
		// A state-fault SOS: let an operation period pass.
		if err := mem.Idle(); err != nil {
			return Outcome{}, fmt.Errorf("analysis: idle: %w", err)
		}
	}
	out := Outcome{F: mem.VictimBit()}
	if endsWithVictimRead {
		out.R = lastVictimRead
	}
	return out, nil
}

// ClassifyOutcome compares an observed outcome against the SOS's
// fault-free expectation and returns the observed fault primitive, or
// (zero, false) when the behaviour is fault-free.
func ClassifyOutcome(sos fp.SOS, out Outcome) (fp.FP, bool) {
	expF, known := sos.ExpectedFinalState()
	if !known {
		return fp.FP{}, false
	}
	expR := fp.RNone
	if last, ok := sos.FinalOp(); ok && last.Kind == fp.OpRead && last.Target == fp.TargetVictim {
		expR = fp.ReadResultOf(last.Data)
	}
	if out.F == expF && out.R == expR {
		return fp.FP{}, false
	}
	return fp.FP{S: sos, F: out.F, R: out.R}, true
}
