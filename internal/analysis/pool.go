package analysis

import "runtime"

// Pool is a counting semaphore bounding concurrent simulations across
// the whole analysis pipeline. BuildInventory shares one pool between
// its sweeps and completion searches so total concurrency stays bounded
// regardless of how many units run at once; only leaf simulation tasks
// acquire a slot, never coordinating goroutines, which rules out
// nested-hold deadlocks by construction.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool admitting n concurrent tasks; n <= 0 means
// GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Do runs f while holding a pool slot, blocking until one is free.
func (p *Pool) Do(f func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	f()
}
