package analysis

import (
	"context"
	"runtime"
	"sync"
)

// Pool is a counting semaphore bounding concurrent simulations across
// the whole analysis pipeline. BuildInventory shares one pool between
// its sweeps and completion searches so total concurrency stays bounded
// regardless of how many units run at once; only leaf simulation tasks
// acquire a slot, never coordinating goroutines, which rules out
// nested-hold deadlocks by construction.
type Pool struct {
	sem chan struct{}
}

// NewPool creates a pool admitting n concurrent tasks; n <= 0 means
// GOMAXPROCS.
func NewPool(n int) *Pool {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	return &Pool{sem: make(chan struct{}, n)}
}

// Do runs f while holding a pool slot, blocking until one is free.
func (p *Pool) Do(f func()) {
	p.sem <- struct{}{}
	defer func() { <-p.sem }()
	f()
}

// DoContext runs f while holding a pool slot, giving up with ctx.Err()
// if the context is cancelled before a slot frees up (or by the time
// one does). A nil context degrades to Do. Once f starts it runs to
// completion — leaf simulations are short; cancellation cuts the queue,
// not a simulation mid-flight.
func (p *Pool) DoContext(ctx context.Context, f func()) error {
	if ctx == nil {
		p.Do(f)
		return nil
	}
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		return ctx.Err()
	}
	defer func() { <-p.sem }()
	if err := ctx.Err(); err != nil {
		return err
	}
	f()
	return nil
}

// ForEach runs f(0)…f(n-1) concurrently, each under a pool slot, waits
// for all of them, and returns the lowest-index error — a deterministic
// choice no matter which task failed first in wall-clock time. A
// context cancellation abandons not-yet-started tasks (their slot error
// parks in the same per-index slot), never a running one.
func (p *Pool) ForEach(ctx context.Context, n int, f func(int) error) error {
	errs := make([]error, n)
	var wg sync.WaitGroup
	for k := 0; k < n; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			if err := p.DoContext(ctx, func() { errs[k] = f(k) }); err != nil {
				errs[k] = err
			}
		}(k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
