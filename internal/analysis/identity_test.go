package analysis_test

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

func identityOpen(t *testing.T) (defect.Open, defect.FloatGroup) {
	t.Helper()
	for _, open := range defect.SimulatedOpens() {
		if len(open.Floats) > 0 {
			return open, open.Floats[0]
		}
	}
	t.Fatal("no simulated open with a floating group")
	return defect.Open{}, defect.FloatGroup{}
}

// TestOutcomeKeyEmbedsModelIdentity is the direct regression test for
// the cache-identity bug: before the Model field, the keys of two
// different factories (electrical vs analytical, or the same model
// under different technologies) for the same (open, R_def, nets, U,
// SOS) were equal, so a shared memo served one model's outcome to the
// other. With the fingerprint in the key they must differ.
func TestOutcomeKeyEmbedsModelIdentity(t *testing.T) {
	open, group := identityOpen(t)
	sos := fp.NewSOS(fp.Init1, fp.R(1))

	params := behav.DefaultParams()
	changed := params
	changed.Tech.VDD *= 1.1

	base := analysis.NewOutcomeKey(behav.Fingerprint(params), open, 1e5, group.Nets, 1.0, sos)
	retuned := analysis.NewOutcomeKey(behav.Fingerprint(changed), open, 1e5, group.Nets, 1.0, sos)
	if base == retuned {
		t.Fatal("technology change did not change the outcome key")
	}

	spiceFP, err := analysis.SpiceFingerprint(params.Tech)
	if err != nil {
		t.Fatal(err)
	}
	electrical := analysis.NewOutcomeKey(spiceFP, open, 1e5, group.Nets, 1.0, sos)
	if electrical == base {
		t.Fatal("electrical and analytical models share an outcome key")
	}
	if spiceFP.Kind() != "spice" || behav.Fingerprint(params).Kind() != "behav" {
		t.Fatalf("model kinds not explicit: %q vs %q", spiceFP.Kind(), behav.Fingerprint(params).Kind())
	}

	// Same inputs, same model: keys must still collide (that's the hit).
	again := analysis.NewOutcomeKey(behav.Fingerprint(params), open, 1e5, group.Nets, 1.0, sos)
	if base != again {
		t.Fatal("identical inputs no longer share a key")
	}
}

// TestSharedMemoAcrossFactories runs the poisoning scenario end to end:
// two differently-tuned analytical factories share one memo. The second
// sweep must be bit-identical to a fresh memo-free run — i.e. it must
// not consume any of the first factory's cached outcomes.
func TestSharedMemoAcrossFactories(t *testing.T) {
	open, group := identityOpen(t)
	sos := fp.NewSOS(fp.Init1, fp.R(1))
	rdefs := []float64{3e4, 1e5, 1e6, 1e7}
	us := []float64{0, 1.0, 2.0, 2.3}

	params := behav.DefaultParams()
	retuned := params
	retuned.Tech.VDD *= 1.15 // shifts sense thresholds → different outcomes

	shared := analysis.NewMemo()
	sweep := func(p behav.Params, memo *analysis.Memo) *analysis.Plane {
		t.Helper()
		plane, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: behav.NewFactory(p),
			Open:    open, Float: group, SOS: sos,
			RDefs: rdefs, Us: us,
			Model: behav.Fingerprint(p),
			Memo:  memo,
		})
		if err != nil {
			t.Fatal(err)
		}
		return plane
	}

	sweep(params, shared) // fills the shared memo with model-A outcomes
	preB := shared.Snapshot()
	viaShared := sweep(retuned, shared)
	if d := shared.Snapshot().Delta(preB); d.Hits != 0 {
		t.Fatalf("retuned factory hit %d of the other model's cached outcomes", d.Hits)
	}
	fresh := sweep(retuned, analysis.NewMemo())
	for i := range fresh.Points {
		for j := range fresh.Points[i] {
			a, b := fresh.Points[i][j], viaShared.Points[i][j]
			if a.Faulty != b.Faulty || a.FFM != b.FFM || a.FP.String() != b.FP.String() {
				t.Fatalf("shared-memo point (%d,%d) = %+v, fresh = %+v", i, j, b, a)
			}
		}
	}

	// And the same model re-swept must be served entirely from cache.
	preRepeat := shared.Snapshot()
	sweep(params, shared)
	if d := shared.Snapshot().Delta(preRepeat); d.Misses != 0 {
		t.Fatalf("identical re-sweep missed %d times", d.Misses)
	}
}

func TestMemoSnapshotDelta(t *testing.T) {
	memo := analysis.NewMemo()
	open, group := identityOpen(t)
	k1 := analysis.NewOutcomeKey("m:1", open, 1e5, group.Nets, 0, fp.NewSOS(fp.Init0))
	k2 := analysis.NewOutcomeKey("m:1", open, 1e5, group.Nets, 1, fp.NewSOS(fp.Init0))

	memo.Lookup(k1) // miss
	memo.Store(k1, analysis.Outcome{F: 0})
	memo.Lookup(k1) // hit
	phase1 := memo.Snapshot()
	if phase1.Hits != 1 || phase1.Misses != 1 {
		t.Fatalf("phase1 = %+v", phase1)
	}

	memo.Lookup(k1) // hit
	memo.Lookup(k2) // miss
	memo.Lookup(k2) // miss
	d := memo.Snapshot().Delta(phase1)
	if d.Hits != 1 || d.Misses != 2 {
		t.Fatalf("phase2 delta = %+v, want 1 hit / 2 misses", d)
	}
	if d.Total() != 3 {
		t.Fatalf("delta total = %d", d.Total())
	}
	if got := d.HitRate(); got < 0.33 || got > 0.34 {
		t.Fatalf("delta hit rate = %g", got)
	}
	if (analysis.MemoStats{}).HitRate() != 0 {
		t.Fatal("empty reading hit rate not 0")
	}

	// The cumulative counters keep the old double-counting shape for
	// callers that want totals; the delta is what per-phase reporting
	// must use.
	if cum := memo.Snapshot(); cum.Hits != 2 || cum.Misses != 3 {
		t.Fatalf("cumulative = %+v", cum)
	}
}

func TestMemoPreloadAndJournal(t *testing.T) {
	memo := analysis.NewMemo()
	open, group := identityOpen(t)
	k1 := analysis.NewOutcomeKey("m:1", open, 1e5, group.Nets, 0, fp.NewSOS(fp.Init0))
	k2 := analysis.NewOutcomeKey("m:1", open, 1e5, group.Nets, 1, fp.NewSOS(fp.Init0))

	var journaled []analysis.OutcomeKey
	memo.Journal(func(k analysis.OutcomeKey, _ analysis.Outcome) {
		journaled = append(journaled, k)
	})
	memo.Preload(k1, analysis.Outcome{F: 1})
	if len(journaled) != 0 {
		t.Fatal("Preload journaled")
	}
	if st := memo.Snapshot(); st.Total() != 0 {
		t.Fatal("Preload moved the lookup counters")
	}
	if out, ok := memo.Lookup(k1); !ok || out.F != 1 {
		t.Fatalf("preloaded entry not served: ok=%v out=%+v", ok, out)
	}
	memo.Store(k2, analysis.Outcome{F: 0})
	memo.Store(k2, analysis.Outcome{F: 0}) // idempotent re-store: no re-journal
	memo.Store(k1, analysis.Outcome{F: 1}) // already preloaded: no journal
	if len(journaled) != 1 || journaled[0] != k2 {
		t.Fatalf("journal saw %v, want exactly [k2]", journaled)
	}
}

func TestPoolDoContext(t *testing.T) {
	pool := analysis.NewPool(1)

	// Nil context degrades to Do.
	ran := false
	if err := pool.DoContext(nil, func() { ran = true }); err != nil || !ran {
		t.Fatalf("nil ctx: ran=%v err=%v", ran, err)
	}

	// Pre-cancelled context: f must not run.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran = false
	if err := pool.DoContext(ctx, func() { ran = true }); err == nil || ran {
		t.Fatalf("cancelled ctx: ran=%v err=%v", ran, err)
	}

	// Cancellation while blocked on a full pool must unblock with the
	// context error and leave the slot usable afterwards.
	hold := make(chan struct{})
	holding := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		pool.Do(func() { close(holding); <-hold })
	}()
	<-holding
	ctx2, cancel2 := context.WithCancel(context.Background())
	blocked := make(chan error, 1)
	var ranCancelled atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		blocked <- pool.DoContext(ctx2, func() { ranCancelled.Store(true) })
	}()
	cancel2()
	if err := <-blocked; err != context.Canceled {
		t.Fatalf("blocked acquire returned %v", err)
	}
	close(hold)
	wg.Wait()
	if ranCancelled.Load() {
		t.Fatal("f ran despite cancellation")
	}
	if err := pool.DoContext(context.Background(), func() {}); err != nil {
		t.Fatalf("pool unusable after cancellation: %v", err)
	}
}

// TestSweepPlaneCancellation: a cancelled context aborts the sweep with
// the context error instead of simulating the remaining points.
func TestSweepPlaneCancellation(t *testing.T) {
	open, group := identityOpen(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := analysis.SweepPlane(analysis.SweepConfig{
		Factory: behav.NewFactory(behav.DefaultParams()),
		Open:    open, Float: group,
		SOS:   fp.NewSOS(fp.Init1, fp.R(1)),
		RDefs: []float64{1e5, 1e6}, Us: []float64{0, 1},
		Ctx: ctx,
	})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled sweep returned %v", err)
	}
}

// TestBuildInventoryCancellation covers the full pipeline path,
// including the completion search.
func TestBuildInventoryCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := analysis.BuildInventory(analysis.InventoryConfig{
		Factory: behav.NewFactory(behav.DefaultParams()),
		RDefs:   []float64{1e5, 1e6},
		Us:      []float64{0, 1, 2},
		Ctx:     ctx,
	})
	if err == nil || !strings.Contains(err.Error(), context.Canceled.Error()) {
		t.Fatalf("cancelled inventory returned %v", err)
	}
}

// TestBuildInventoryInjectedMemoPool: the service-style configuration —
// shared memo, shared pool, model fingerprint — must produce the same
// inventory as the self-contained pipeline.
func TestBuildInventoryInjectedMemoPool(t *testing.T) {
	params := behav.DefaultParams()
	opens := defect.SimulatedOpens()[:2]
	grid := analysis.InventoryConfig{
		Factory: behav.NewFactory(params),
		Opens:   opens,
		RDefs:   []float64{3e4, 1e5, 1e6, 1e7},
		Us:      []float64{0, 1.0, 2.0, 2.3},
	}
	plain, err := analysis.BuildInventory(grid)
	if err != nil {
		t.Fatal(err)
	}

	memo := analysis.NewMemo()
	injected := grid
	injected.Model = behav.Fingerprint(params)
	injected.Memo = memo
	injected.Pool = analysis.NewPool(2)
	injected.Ctx = context.Background()
	got, err := analysis.BuildInventory(injected)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(plain) {
		t.Fatalf("injected pipeline found %d rows, plain %d", len(got), len(plain))
	}
	for i := range got {
		a, b := plain[i], got[i]
		if a.SimFFM != b.SimFFM || a.Open.ID != b.Open.ID || a.Possible != b.Possible ||
			a.CompletedString() != b.CompletedString() {
			t.Fatalf("row %d differs: %+v vs %+v", i, a, b)
		}
	}
	if memo.Len() == 0 {
		t.Fatal("injected memo unused")
	}

	// Re-running against the warmed shared memo must be all hits.
	pre := memo.Snapshot()
	if _, err := analysis.BuildInventory(injected); err != nil {
		t.Fatal(err)
	}
	if d := memo.Snapshot().Delta(pre); d.Misses != 0 {
		t.Fatalf("warm re-run missed %d times", d.Misses)
	}
}
