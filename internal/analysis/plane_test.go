package analysis

import (
	"testing"

	"github.com/memtest/partialfaults/internal/fp"
)

// handPlane builds a Plane directly from an FFM layout so the readings
// can be checked against hand-computed answers. A nil entry is a
// fault-free point; everything else is faulty with that FFM.
func handPlane(rdefs, us []float64, ffms [][]*fp.FFM) *Plane {
	p := &Plane{RDefs: rdefs, Us: us, Points: make([][]Point, len(rdefs))}
	for i := range rdefs {
		p.Points[i] = make([]Point, len(us))
		for j := range us {
			pt := Point{RDef: rdefs[i], U: us[j]}
			if f := ffms[i][j]; f != nil {
				pt.Faulty = true
				pt.FFM = *f
			}
			p.Points[i][j] = pt
		}
	}
	return p
}

func ffmp(f fp.FFM) *fp.FFM { return &f }

func TestMinRDefWithFFM(t *testing.T) {
	rdefs := []float64{1e3, 1e4, 1e5}
	us := []float64{0, 1.65, 3.3}
	sf0, rdf1, unk := ffmp(fp.SF0), ffmp(fp.RDF1), ffmp(fp.FFMUnknown)
	p := handPlane(rdefs, us, [][]*fp.FFM{
		// u:    0     1.65  3.3
		{sf0, nil, rdf1},  // R_def 1e3
		{sf0, nil, nil},   // R_def 1e4
		{rdf1, unk, rdf1}, // R_def 1e5
	})

	cases := []struct {
		name string
		f    fp.FFM
		uIdx int
		want float64
		ok   bool
	}{
		{"first row, first U", fp.SF0, 0, 1e3, true},
		{"last row only, first U", fp.RDF1, 0, 1e5, true},
		{"first row, last U", fp.RDF1, 2, 1e3, true},
		{"absent FFM", fp.TFUp, 0, 0, false},
		{"FFM present elsewhere but not this column", fp.SF0, 1, 0, false},
		{"FFM present elsewhere but not this column, last U", fp.SF0, 2, 0, false},
		{"faulty-but-unnamed point is found via FFMUnknown", fp.FFMUnknown, 1, 1e5, true},
		// The latent gap this guards: fault-free points carry the
		// FFMUnknown zero value, so without the Faulty guard a query
		// for FFMUnknown would wrongly match row 0's clean middle.
		{"fault-free points never match FFMUnknown", fp.FFMUnknown, 0, 0, false},
		{"fault-free points never match FFMUnknown, last U", fp.FFMUnknown, 2, 0, false},
	}
	for _, c := range cases {
		r, ok := p.MinRDefWithFFM(c.f, c.uIdx)
		if r != c.want || ok != c.ok {
			t.Errorf("%s: MinRDefWithFFM(%v, %d) = (%v, %v), want (%v, %v)",
				c.name, c.f, c.uIdx, r, ok, c.want, c.ok)
		}
	}
}

func TestMinRDefWithFFMEmptyRegion(t *testing.T) {
	// A plane with no faults anywhere: every query must miss, for
	// named FFMs and for FFMUnknown alike.
	rdefs := []float64{1e3, 1e7}
	us := []float64{0, 3.3}
	p := handPlane(rdefs, us, [][]*fp.FFM{{nil, nil}, {nil, nil}})
	for _, f := range []fp.FFM{fp.FFMUnknown, fp.SF0, fp.IRF1} {
		for uIdx := range us {
			if r, ok := p.MinRDefWithFFM(f, uIdx); ok || r != 0 {
				t.Errorf("clean plane: MinRDefWithFFM(%v, %d) = (%v, %v), want (0, false)", f, uIdx, r, ok)
			}
		}
	}
}

func TestRowFFM(t *testing.T) {
	rdefs := []float64{1e3, 1e4, 1e5, 1e6}
	us := []float64{0, 1.1, 2.2, 3.3}
	sf0, tfu, unk := ffmp(fp.SF0), ffmp(fp.TFUp), ffmp(fp.FFMUnknown)
	p := handPlane(rdefs, us, [][]*fp.FFM{
		{sf0, sf0, sf0, sf0}, // all faulty, one FFM
		{nil, nil, nil, nil}, // fault-free row
		{sf0, tfu, nil, sf0}, // mixed row
		{unk, nil, nil, unk}, // unnamed faults at both boundary columns
	})

	cases := []struct {
		name  string
		i     int
		f     fp.FFM
		count int
	}{
		{"uniform row counts every column", 0, fp.SF0, 4},
		{"uniform row, absent FFM", 0, fp.TFUp, 0},
		{"fault-free row, named FFM", 1, fp.SF0, 0},
		// Fault-free points are FFMUnknown-valued but not Faulty; the
		// empty row must still count zero for FFMUnknown.
		{"fault-free row, FFMUnknown", 1, fp.FFMUnknown, 0},
		{"mixed row counts only the queried FFM", 2, fp.SF0, 2},
		{"mixed row, minority FFM", 2, fp.TFUp, 1},
		{"boundary columns with unnamed faults", 3, fp.FFMUnknown, 2},
		{"last row, absent named FFM", 3, fp.SF0, 0},
	}
	for _, c := range cases {
		count, total := p.RowFFM(c.i, c.f)
		if count != c.count || total != len(us) {
			t.Errorf("%s: RowFFM(%d, %v) = (%d, %d), want (%d, %d)",
				c.name, c.i, c.f, count, total, c.count, len(us))
		}
	}
}

func TestRowFFMSinglePointPlane(t *testing.T) {
	// Degenerate 1×1 planes: boundary indices are the only indices.
	faulty := handPlane([]float64{1e5}, []float64{1.65}, [][]*fp.FFM{{ffmp(fp.WDF1)}})
	if count, total := faulty.RowFFM(0, fp.WDF1); count != 1 || total != 1 {
		t.Errorf("1x1 faulty: RowFFM = (%d, %d), want (1, 1)", count, total)
	}
	if r, ok := faulty.MinRDefWithFFM(fp.WDF1, 0); !ok || r != 1e5 {
		t.Errorf("1x1 faulty: MinRDefWithFFM = (%v, %v), want (1e5, true)", r, ok)
	}
	clean := handPlane([]float64{1e5}, []float64{1.65}, [][]*fp.FFM{{nil}})
	if count, total := clean.RowFFM(0, fp.WDF1); count != 0 || total != 1 {
		t.Errorf("1x1 clean: RowFFM = (%d, %d), want (0, 1)", count, total)
	}
	if _, ok := clean.MinRDefWithFFM(fp.FFMUnknown, 0); ok {
		t.Error("1x1 clean: MinRDefWithFFM(FFMUnknown) found a fault in a clean plane")
	}
}
