// Equivalence tests for the net-merge prover: the paper's Section 2
// negative result proven two ways. The static prover shows no floating
// group appears under any catalog short/bridge; the electrical sweep
// shows the simulated outcome of every (R_def, SOS) point is identical
// for every initialization voltage U — bit for bit. These are the same
// claim at two levels: faulty behavior under a merge defect cannot
// depend on an initialized floating voltage, because nothing floats.
package analysis_test

import (
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/netlint"
	"github.com/memtest/partialfaults/internal/numeric"
)

func TestMergeProverMatchesSimulatedSweep(t *testing.T) {
	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	az := netlint.New(col.Circuit(), dram.LintModel())

	// One pooled factory and memo across all defects and SOSes: the
	// sweep is the expensive half of this test, and the PR 2 machinery
	// exists precisely to make cross-checks like this cheap.
	factory := analysis.NewPooledSpiceFactory(dram.Default())
	memo := analysis.NewMemo()
	rdefs := numeric.Logspace(1e2, 1e6, 3) // low resistance = severe short
	us := []float64{0, 1.65, 3.3}
	soses := []fp.SOS{
		fp.NewSOS(fp.Init0),
		fp.NewSOS(fp.Init1),
		fp.NewSOS(fp.Init1, fp.R(1)),
		fp.NewSOS(fp.Init0, fp.W(1)),
	}

	for _, sb := range defect.ShortsAndBridges() {
		sb := sb
		t.Run(sb.Site, func(t *testing.T) {
			pred, err := az.PredictMerges([]string{dram.SiteElementName(sb.Site)})
			if err != nil {
				t.Fatal(err)
			}
			// Static half: zero floating groups.
			if len(pred.Floats.Primary)+len(pred.Floats.Secondary)+len(pred.Floats.Unknown) != 0 {
				t.Fatalf("static prover predicts floats %+v for %s", pred.Floats, sb.Site)
			}

			// Simulated half: every U column of every (R_def, SOS) row
			// must agree bit for bit, and no partial fault may emerge.
			o := sb.AsOpenDescriptor()
			for _, sos := range soses {
				plane, err := analysis.SweepPlane(analysis.SweepConfig{
					Factory: factory, Open: o, Float: sb.Probe, SOS: sos,
					RDefs: rdefs, Us: us, Memo: memo,
				})
				if err != nil {
					t.Fatalf("%s / %q: %v", sb.Name(), sos, err)
				}
				for i := range plane.RDefs {
					ref := plane.Points[i][0]
					for j := 1; j < len(plane.Us); j++ {
						pt := plane.Points[i][j]
						// The SOS inside FP is the plane's own; the observed
						// faulty state and read output are the per-point bits.
						if pt.Faulty != ref.Faulty || pt.FP.F != ref.FP.F || pt.FP.R != ref.FP.R || pt.FFM != ref.FFM {
							t.Errorf("%s / %q at R_def=%.3g: U=%.3g gives (faulty=%v fp=%v) but U=%.3g gives (faulty=%v fp=%v); a short/bridge outcome must not depend on U",
								sb.Name(), sos, plane.RDefs[i], plane.Us[j], pt.Faulty, pt.FP, plane.Us[0], ref.Faulty, ref.FP)
						}
					}
				}
				if findings := analysis.IdentifyPartialFaults(plane); len(findings) != 0 {
					t.Errorf("%s / %q: partial findings %v; Section 2 excludes shorts/bridges from partial faults", sb.Name(), sos, findings)
				}
			}

			// Verdict-to-behavior cross-check: a class the prover calls
			// stuck with ground as its only supply must behave as a
			// stuck-at-0 in the electrical model — writing 1 fails,
			// writing 0 is clean, at the hardest short.
			stuckToGround := false
			for _, mc := range pred.Classes {
				if len(mc.Supplies) == 1 && mc.Supplies[0] == "0" {
					for _, v := range mc.Verdicts {
						if v == netlint.VerdictStuck {
							stuckToGround = true
						}
					}
				}
			}
			if stuckToGround {
				out1, err := analysis.RunSOS(factory, o, rdefs[0], sb.Probe.Nets, 0, fp.NewSOS(fp.Init1))
				if err != nil {
					t.Fatal(err)
				}
				if out1.F != 0 {
					t.Errorf("prover says stuck to ground, but hard short holds %d after writing 1", out1.F)
				}
				out0, err := analysis.RunSOS(factory, o, rdefs[0], sb.Probe.Nets, 0, fp.NewSOS(fp.Init0))
				if err != nil {
					t.Fatal(err)
				}
				if out0.F != 0 {
					t.Errorf("stuck-to-ground short holds %d after writing 0, want 0", out0.F)
				}
			}
		})
	}
}
