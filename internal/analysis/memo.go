package analysis

import (
	"fmt"
	"strings"
	"sync"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// OutcomeKey identifies one RunSOS invocation up to simulation-relevant
// inputs: the model fingerprint of the Factory that runs it plus the
// defect, grid point and sensitizing sequence. Two runs with equal keys
// produce identical Outcomes, so the key is safe to memoize on — the
// Model field is what makes that hold across factories: the electrical
// and analytical models (and the same model under different
// technologies) produce different outcomes for otherwise identical
// inputs, and their keys differ in Model.
// The SOS is canonicalized to its simulated content — Init plus the
// (kind, target, data) of every operation — deliberately ignoring the
// Completing presentation flag, which RunSOS never reads.
type OutcomeKey struct {
	Model  Fingerprint
	OpenID int
	Site   string
	RDef   float64
	Nets   string
	U      float64
	SOS    string
}

// NewOutcomeKey builds the memo key for one SOS application under the
// given model. An empty model is allowed for single-factory pipelines
// (all keys then share it), but any cache that outlives one factory —
// the shared service memo, the persistent outcome store — must be fed
// keys with real fingerprints.
func NewOutcomeKey(model Fingerprint, open defect.Open, rdef float64, nets []string, u float64, sos fp.SOS) OutcomeKey {
	return OutcomeKey{
		Model:  model,
		OpenID: open.ID,
		Site:   siteKey(open),
		RDef:   rdef,
		Nets:   strings.Join(nets, ","),
		U:      u,
		SOS:    canonicalSOS(sos),
	}
}

// siteKey encodes the full injected-site set — multi-defect scenarios
// with the same primary site but different Extra lists must not share
// memo entries.
func siteKey(open defect.Open) string {
	if len(open.Extra) == 0 {
		return open.Site
	}
	var b strings.Builder
	b.WriteString(open.Site)
	for _, x := range open.Extra {
		fmt.Fprintf(&b, "+%s@%g", x.Site, x.Ohms)
	}
	return b.String()
}

// canonicalSOS encodes exactly the fields RunSOS acts on.
func canonicalSOS(sos fp.SOS) string {
	var b strings.Builder
	b.Grow(1 + 3*len(sos.Ops))
	switch sos.Init {
	case fp.Init0:
		b.WriteByte('0')
	case fp.Init1:
		b.WriteByte('1')
	default:
		b.WriteByte('-')
	}
	for _, op := range sos.Ops {
		if op.Kind == fp.OpRead {
			b.WriteByte('r')
		} else {
			b.WriteByte('w')
		}
		if op.Target == fp.TargetBitLine {
			b.WriteByte('B')
		} else {
			b.WriteByte('v')
		}
		b.WriteByte('0' + byte(op.Data))
	}
	return b.String()
}

// Memo is a concurrency-safe outcome cache shared between the sweep,
// completion-search and inventory phases — and, in the service, across
// requests. Sharing across factories is safe when every caller keys with
// its factory's Fingerprint (see NewOutcomeKey): keys of different
// models never collide. A memo fed empty-Model keys must still only be
// shared between calls using the same Factory.
type Memo struct {
	mu           sync.Mutex
	m            map[OutcomeKey]Outcome
	hits, misses uint64

	// journal, when non-nil, receives every newly stored entry — the
	// write-through hook of the persistent outcome log.
	journal func(OutcomeKey, Outcome)
}

// NewMemo returns an empty outcome cache.
func NewMemo() *Memo {
	return &Memo{m: map[OutcomeKey]Outcome{}}
}

// Journal installs a write-through hook invoked (under the memo lock,
// in store order) for every entry Store newly records. Seed entries
// loaded with Preload do not re-journal.
func (mm *Memo) Journal(fn func(OutcomeKey, Outcome)) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.journal = fn
}

// Preload inserts an entry without notifying the journal and without
// touching the hit/miss counters — used to warm the memo from a
// persistent log.
func (mm *Memo) Preload(k OutcomeKey, out Outcome) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.m[k] = out
}

// Lookup returns the cached outcome for the key, if present.
func (mm *Memo) Lookup(k OutcomeKey) (Outcome, bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out, ok := mm.m[k]
	if ok {
		mm.hits++
	} else {
		mm.misses++
	}
	return out, ok
}

// Store records an outcome. Later stores of the same key are idempotent
// by construction (deterministic simulation), so no precedence rule is
// needed; the journal only fires for keys not already present.
func (mm *Memo) Store(k OutcomeKey, out Outcome) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	_, existed := mm.m[k]
	mm.m[k] = out
	if mm.journal != nil && !existed {
		mm.journal(k, out)
	}
}

// Stats reports cumulative lookup hits and misses since construction.
// For per-phase reporting use Snapshot and MemoStats.Delta: reading the
// cumulative counters at each phase boundary double-counts every phase
// before it.
func (mm *Memo) Stats() (hits, misses uint64) {
	s := mm.Snapshot()
	return s.Hits, s.Misses
}

// MemoStats is a point-in-time reading of the memo's lookup counters.
type MemoStats struct {
	Hits, Misses uint64
}

// Total returns the number of lookups covered by the reading.
func (s MemoStats) Total() uint64 { return s.Hits + s.Misses }

// HitRate returns Hits/Total, or 0 for an empty reading.
func (s MemoStats) HitRate() float64 {
	if t := s.Total(); t > 0 {
		return float64(s.Hits) / float64(t)
	}
	return 0
}

// Delta returns the counter movement since an earlier snapshot — the
// per-phase accessor: snapshot at the phase boundary, subtract.
func (s MemoStats) Delta(since MemoStats) MemoStats {
	return MemoStats{Hits: s.Hits - since.Hits, Misses: s.Misses - since.Misses}
}

// Snapshot atomically reads the cumulative counters.
func (mm *Memo) Snapshot() MemoStats {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return MemoStats{Hits: mm.hits, Misses: mm.misses}
}

// Len returns the number of cached outcomes.
func (mm *Memo) Len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.m)
}
