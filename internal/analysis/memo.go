package analysis

import (
	"fmt"
	"strings"
	"sync"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// OutcomeKey identifies one RunSOS invocation up to simulation-relevant
// inputs. Two runs with equal keys through the same (deterministic)
// Factory produce identical Outcomes, so the key is safe to memoize on.
// The SOS is canonicalized to its simulated content — Init plus the
// (kind, target, data) of every operation — deliberately ignoring the
// Completing presentation flag, which RunSOS never reads.
type OutcomeKey struct {
	OpenID int
	Site   string
	RDef   float64
	Nets   string
	U      float64
	SOS    string
}

// NewOutcomeKey builds the memo key for one SOS application.
func NewOutcomeKey(open defect.Open, rdef float64, nets []string, u float64, sos fp.SOS) OutcomeKey {
	return OutcomeKey{
		OpenID: open.ID,
		Site:   siteKey(open),
		RDef:   rdef,
		Nets:   strings.Join(nets, ","),
		U:      u,
		SOS:    canonicalSOS(sos),
	}
}

// siteKey encodes the full injected-site set — multi-defect scenarios
// with the same primary site but different Extra lists must not share
// memo entries.
func siteKey(open defect.Open) string {
	if len(open.Extra) == 0 {
		return open.Site
	}
	var b strings.Builder
	b.WriteString(open.Site)
	for _, x := range open.Extra {
		fmt.Fprintf(&b, "+%s@%g", x.Site, x.Ohms)
	}
	return b.String()
}

// canonicalSOS encodes exactly the fields RunSOS acts on.
func canonicalSOS(sos fp.SOS) string {
	var b strings.Builder
	b.Grow(1 + 3*len(sos.Ops))
	switch sos.Init {
	case fp.Init0:
		b.WriteByte('0')
	case fp.Init1:
		b.WriteByte('1')
	default:
		b.WriteByte('-')
	}
	for _, op := range sos.Ops {
		if op.Kind == fp.OpRead {
			b.WriteByte('r')
		} else {
			b.WriteByte('w')
		}
		if op.Target == fp.TargetBitLine {
			b.WriteByte('B')
		} else {
			b.WriteByte('v')
		}
		b.WriteByte('0' + byte(op.Data))
	}
	return b.String()
}

// Memo is a concurrency-safe outcome cache shared between the sweep,
// completion-search and inventory phases. It must only be shared between
// calls that use the same Factory: the key does not (and cannot) identify
// the factory closure, and outcomes of the electrical and analytical
// models differ.
type Memo struct {
	mu           sync.Mutex
	m            map[OutcomeKey]Outcome
	hits, misses uint64
}

// NewMemo returns an empty outcome cache.
func NewMemo() *Memo {
	return &Memo{m: map[OutcomeKey]Outcome{}}
}

// Lookup returns the cached outcome for the key, if present.
func (mm *Memo) Lookup(k OutcomeKey) (Outcome, bool) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	out, ok := mm.m[k]
	if ok {
		mm.hits++
	} else {
		mm.misses++
	}
	return out, ok
}

// Store records an outcome. Later stores of the same key are idempotent
// by construction (deterministic simulation), so no precedence rule is
// needed.
func (mm *Memo) Store(k OutcomeKey, out Outcome) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	mm.m[k] = out
}

// Stats reports lookup hits and misses.
func (mm *Memo) Stats() (hits, misses uint64) {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return mm.hits, mm.misses
}

// Len returns the number of cached outcomes.
func (mm *Memo) Len() int {
	mm.mu.Lock()
	defer mm.mu.Unlock()
	return len(mm.m)
}
