package analysis

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/dram"
)

// Fingerprint identifies a simulation model up to everything that can
// change its outcomes: the model kind (electrical "spice" versus
// analytical "behav"), the netlist topology, and every technology or
// tuning parameter. Two Factories with equal fingerprints produce
// identical Outcomes for identical OutcomeKeys; two Factories with
// different fingerprints must never share memo entries — the key embeds
// the fingerprint, so they cannot.
//
// The rendered form is "kind:digest" so diagnostics show the
// electrical-vs-analytical distinction at a glance.
type Fingerprint string

// Kind returns the model-kind prefix of the fingerprint ("spice",
// "behav", ...), or the whole fingerprint if it has no prefix.
func (f Fingerprint) Kind() string {
	for i := 0; i < len(f); i++ {
		if f[i] == ':' {
			return string(f[:i])
		}
	}
	return string(f)
}

// NewFingerprint digests the parts (length-prefixed, so part boundaries
// cannot alias) under the model kind.
func NewFingerprint(kind string, parts ...string) Fingerprint {
	h := sha256.New()
	hashPart(h, kind)
	for _, p := range parts {
		hashPart(h, p)
	}
	return Fingerprint(kind + ":" + hex.EncodeToString(h.Sum(nil))[:16])
}

func hashPart(h hash.Hash, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

// NetlistFingerprint canonically encodes a circuit's topology: node
// names in index order and element designators with their dynamic
// types, in insertion order. Element parameter values are not visible
// through the Element interface; they are covered by the technology
// encoding that accompanies this digest in SpiceFingerprint.
func NetlistFingerprint(c *circuit.Circuit) string {
	h := sha256.New()
	for _, n := range c.NodeNames() {
		hashPart(h, n)
	}
	for _, e := range c.Elements() {
		hashPart(h, e.Name())
		hashPart(h, fmt.Sprintf("%T", e))
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// TechnologyFingerprint encodes every Technology field. %#v renders the
// fields in declaration order, so any parameter change — supply rail,
// capacitance, timing, SA imbalance — changes the digest.
func TechnologyFingerprint(t dram.Technology) string {
	return fmt.Sprintf("%#v", t)
}

// SpiceFingerprint fingerprints the electrical model for a technology:
// the as-built column netlist plus the full technology encoding. Use it
// as the Model of sweeps driven by NewSpiceFactory or
// NewPooledSpiceFactory over the same technology.
func SpiceFingerprint(tech dram.Technology) (Fingerprint, error) {
	col, err := dram.NewColumn(tech)
	if err != nil {
		return "", fmt.Errorf("analysis: fingerprint netlist: %w", err)
	}
	return NewFingerprint("spice", NetlistFingerprint(col.Circuit()), TechnologyFingerprint(tech)), nil
}
