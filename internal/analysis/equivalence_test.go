// Equivalence and regression tests for the performance layer. They live
// in an external test package so they can exercise both factories —
// behav imports analysis, so the in-package tests cannot import behav.
package analysis_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/numeric"
)

func mustOpen(t *testing.T, id int) defect.Open {
	t.Helper()
	o, ok := defect.ByID(id)
	if !ok {
		t.Fatalf("Open %d missing", id)
	}
	return o
}

// TestSweepPlaneFailingFactoryReturnsError is the regression test for
// the error-path deadlock: the old worker-pool sweep had workers return
// on error while the producer kept blocking on an unbuffered job
// channel. Every point failing — more points than pool slots — must
// still terminate and surface an error.
func TestSweepPlaneFailingFactoryReturnsError(t *testing.T) {
	boom := errors.New("boom")
	failing := analysis.Factory(func(defect.Open, float64) (analysis.Memory, error) {
		return nil, boom
	})
	done := make(chan error, 1)
	go func() {
		_, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: failing,
			Open:    mustOpen(t, 4),
			Float:   mustOpen(t, 4).Floats[0],
			SOS:     fp.NewSOS(fp.Init1, fp.R(1)),
			RDefs:   numeric.Logspace(1e3, 1e7, 6),
			Us:      numeric.Linspace(0, 3.3, 6),
			// Fewer slots than failing points: the old code deadlocked here.
			Parallelism: 2,
		})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("want the factory error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("SweepPlane deadlocked on an always-failing factory")
	}
}

// sweepBoth runs the same sweep twice — once naively (fresh build per
// point, no caches) and once through the full performance layer (pool,
// memo, replay or pooled factory) — and requires bit-for-bit identical
// planes. Outcomes feed golden tables, so "close" is not enough.
func sweepBoth(t *testing.T, naive, fast analysis.Factory, open defect.Open, soses []fp.SOS, rdefs, us []float64) {
	t.Helper()
	group := open.Floats[0]
	memo := analysis.NewMemo()
	pool := analysis.NewPool(4)
	replay := analysis.NewReplayCache(fast, open, group.Nets)
	defer replay.Close()
	for _, sos := range soses {
		plain, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: naive, Open: open, Float: group, SOS: sos,
			RDefs: rdefs, Us: us,
		})
		if err != nil {
			t.Fatalf("naive sweep %q: %v", sos, err)
		}
		cached, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: fast, Open: open, Float: group, SOS: sos,
			RDefs: rdefs, Us: us,
			Memo: memo, Replay: replay, Pool: pool,
		})
		if err != nil {
			t.Fatalf("cached sweep %q: %v", sos, err)
		}
		if !reflect.DeepEqual(plain.Points, cached.Points) {
			t.Fatalf("sweep %q: pooled/memoized plane differs from fresh-build plane\nnaive:  %+v\ncached: %+v", sos, plain.Points, cached.Points)
		}
		// A second cached pass must be served from the memo and stay
		// identical.
		again, err := analysis.SweepPlane(analysis.SweepConfig{
			Factory: fast, Open: open, Float: group, SOS: sos,
			RDefs: rdefs, Us: us,
			Memo: memo, Replay: replay, Pool: pool,
		})
		if err != nil {
			t.Fatalf("memoized sweep %q: %v", sos, err)
		}
		if !reflect.DeepEqual(plain.Points, again.Points) {
			t.Fatalf("sweep %q: memoized re-sweep differs from fresh-build plane", sos)
		}
	}
	if hits, _ := memo.Stats(); hits == 0 {
		t.Fatal("memo recorded no hits; the re-sweep did not exercise the cache")
	}
	if _, replayed := replay.Stats(); replayed == 0 {
		t.Fatal("replay cache served no steps; the sweeps did not exercise the prefix tree")
	}
}

// TestSweepEquivalenceBehav proves the caches change nothing for the
// analytical model: realistic Figure 3 grid, read and write SOSes.
func TestSweepEquivalenceBehav(t *testing.T) {
	factory := behav.NewFactory(behav.DefaultParams())
	sweepBoth(t, factory, factory, mustOpen(t, 4),
		[]fp.SOS{
			fp.NewSOS(fp.Init1, fp.R(1)),
			fp.NewSOS(fp.Init0, fp.W(1)),
			fp.NewSOS(fp.Init1),
		},
		numeric.Logspace(1e4, 1e8, 6),
		numeric.Linspace(0, 4.6, 5),
	)
}

// TestSweepEquivalenceSpice proves the same for the electrical column,
// additionally crossing factories: the naive side builds every column
// from scratch while the fast side recycles pooled columns through
// Reset and serves prefixes from the replay tree.
func TestSweepEquivalenceSpice(t *testing.T) {
	if testing.Short() {
		t.Skip("transient sweeps are slow; run without -short")
	}
	tech := dram.Default()
	sweepBoth(t, analysis.NewSpiceFactory(tech), analysis.NewPooledSpiceFactory(tech), mustOpen(t, 4),
		// The state-fault SOS shares its setup prefix with 1r1, so the
		// second sweep exercises the replay tree.
		[]fp.SOS{fp.NewSOS(fp.Init1, fp.R(1)), fp.NewSOS(fp.Init1)},
		numeric.Logspace(1e4, 1e7, 3),
		numeric.Linspace(0, 3.3, 3),
	)
}
