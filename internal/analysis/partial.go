package analysis

import "github.com/memtest/partialfaults/internal/fp"

// PartialFinding reports that an FFM behaves as a *partial fault* in a
// plane: it is observed for some initialized floating voltages but not
// others at the same defect resistance — the paper's Section 3 rule:
//
//	"If FP1 is only observed for a limited range of Vf values, then
//	 completing operations should be added to FP1 to ensure it is
//	 sensitized."
type PartialFinding struct {
	// FFM is the partially sensitized fault model.
	FFM fp.FFM
	// Example is a representative observed FP.
	Example fp.FP
	// RDefWithPartial lists the R_def values at which the FFM appears
	// for only part of the U axis.
	RDefWithPartial []float64
	// RDefWithFFM lists every R_def at which the FFM appears at all
	// (partial or full rows). The completion search probes these: the
	// paper's completions hold at defect strengths inside the fault
	// region, not necessarily at its partial fringes.
	RDefWithFFM []float64
	// ULow and UHigh bound the U values at which the FFM was observed
	// (over the partial rows).
	ULow, UHigh float64
}

// IdentifyPartialFaults applies the rule to a plane and returns one
// finding per FFM that is partial somewhere. An FFM that, at every R_def
// where it appears at all, covers the entire U axis is *not* partial
// (it is already fully sensitized by the SOS).
func IdentifyPartialFaults(p *Plane) []PartialFinding {
	perFFM := map[fp.FFM]*PartialFinding{}
	var order []fp.FFM
	for i := range p.RDefs {
		counts := map[fp.FFM]int{}
		examples := map[fp.FFM]fp.FP{}
		for _, pt := range p.Points[i] {
			if pt.Faulty && pt.FFM != fp.FFMUnknown {
				counts[pt.FFM]++
				examples[pt.FFM] = pt.FP
			}
		}
		for f, n := range counts {
			if n == len(p.Us) {
				continue // full row: sensitized for every U at this R_def
			}
			pf := perFFM[f]
			if pf == nil {
				pf = &PartialFinding{FFM: f, Example: examples[f], ULow: 1e18, UHigh: -1e18}
				perFFM[f] = pf
				order = append(order, f)
			}
			pf.RDefWithPartial = append(pf.RDefWithPartial, p.RDefs[i])
			for j, pt := range p.Points[i] {
				if pt.Faulty && pt.FFM == f {
					if u := p.Us[j]; u < pf.ULow {
						pf.ULow = u
					}
					if u := p.Us[j]; u > pf.UHigh {
						pf.UHigh = u
					}
				}
			}
		}
	}
	// Record, for every partial FFM, all rows where it appears at all.
	for i := range p.RDefs {
		rowFFMs := map[fp.FFM]bool{}
		for _, pt := range p.Points[i] {
			if pt.Faulty {
				rowFFMs[pt.FFM] = true
			}
		}
		for f, pf := range perFFM {
			if rowFFMs[f] {
				pf.RDefWithFFM = append(pf.RDefWithFFM, p.RDefs[i])
			}
		}
	}
	out := make([]PartialFinding, 0, len(order))
	for _, f := range order {
		out = append(out, *perFFM[f])
	}
	return out
}

// IsCompletedIn reports whether the FFM is fully sensitized in the plane:
// it appears somewhere, and at every R_def where it appears it covers the
// whole U axis — the paper's Figure 3(b)/4(b) criterion ("the resulting
// faulty behaviour does not depend anymore on the floating voltage").
func IsCompletedIn(p *Plane, f fp.FFM) bool {
	appears := false
	for i := range p.RDefs {
		n, total := p.RowFFM(i, f)
		if n == 0 {
			continue
		}
		appears = true
		if n != total {
			return false
		}
	}
	return appears
}
