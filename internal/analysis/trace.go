package analysis

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultTraceStride is the coarse seeding stride of TracePlane: one
// grid point in DefaultTraceStride per axis is simulated up front, and
// everything else is only simulated where the seeds (or later probes)
// reveal a verdict change. 6 is tuned on the defect catalog at seed
// resolution (13×12): it clears the 5× aggregate simulation-reduction
// target while every region spanning at least (stride+1) points per
// axis still necessarily contains a seed (DESIGN.md §14).
const DefaultTraceStride = 6

// TraceConfig parameterizes an adaptive boundary-tracing plane sweep.
// The embedded SweepConfig means every TracePlane call site can also
// run SweepPlane on the identical inputs — the differential tests do.
type TraceConfig struct {
	SweepConfig
	// Stride is the coarse seed stride in grid indices; 0 means
	// DefaultTraceStride. Stride 1 degenerates to a dense sweep through
	// the tracing code path (every point is a seed).
	Stride int
}

// TraceStats counts how each grid point of a traced plane was obtained.
// "Simulated" points went through the evaluation pipeline (the memo or
// replay cache may still have served them without an engine run);
// "inferred" points were filled by unanimous-perimeter flood inference
// and never touched the pipeline at all.
type TraceStats struct {
	// Seeded counts coarse-lattice points classified up front.
	Seeded int
	// Bisected counts midpoints classified while bisecting segments
	// whose sampled endpoints disagreed.
	Bisected int
	// Refined counts points classified while subdividing ambiguous
	// cells (a sampled perimeter with more than one verdict) down to
	// single-cell resolution — the local dense fallback around every
	// detected region boundary.
	Refined int
	// Inferred counts points filled by flood inference from a
	// unanimous sampled perimeter, without simulation.
	Inferred int
}

// Simulated returns the number of points classified through the
// evaluation pipeline.
func (s TraceStats) Simulated() int { return s.Seeded + s.Bisected + s.Refined }

// Points returns the number of grid points the trace accounted for.
func (s TraceStats) Points() int { return s.Simulated() + s.Inferred }

// Reduction returns Points/Simulated — how many times fewer
// simulations the trace issued than a dense sweep of the same grid
// (1.0 when nothing was inferred).
func (s TraceStats) Reduction() float64 {
	if sim := s.Simulated(); sim > 0 {
		return float64(s.Points()) / float64(sim)
	}
	return 1
}

func (s *TraceStats) add(o TraceStats) {
	s.Seeded += o.Seeded
	s.Bisected += o.Bisected
	s.Refined += o.Refined
	s.Inferred += o.Inferred
}

// TraceCounters aggregates TraceStats across concurrent sweeps — the
// inventory pipeline's units and the service's requests share one.
type TraceCounters struct {
	mu     sync.Mutex
	stats  TraceStats
	planes int
}

// Add folds one traced plane's stats into the counters.
func (c *TraceCounters) Add(s TraceStats) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.add(s)
	c.planes++
}

// Snapshot returns the accumulated stats and the number of traced
// planes they cover.
func (c *TraceCounters) Snapshot() (TraceStats, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats, c.planes
}

// SweepMode selects the plane-sweep strategy.
type SweepMode string

const (
	// SweepDense simulates every grid point (SweepPlane).
	SweepDense SweepMode = "dense"
	// SweepTraced traces region boundaries adaptively (TracePlane).
	SweepTraced SweepMode = "traced"
)

// ParseSweepMode parses a -sweep / API "sweep" value; the empty string
// means dense.
func ParseSweepMode(s string) (SweepMode, error) {
	switch SweepMode(s) {
	case "", SweepDense:
		return SweepDense, nil
	case SweepTraced:
		return SweepTraced, nil
	}
	return "", fmt.Errorf("analysis: unknown sweep mode %q (want %q or %q)", s, SweepDense, SweepTraced)
}

// RunSweep dispatches one plane sweep to the selected strategy. Traced
// stats are folded into counters when given; stride 0 means
// DefaultTraceStride. Both strategies produce identical planes for the
// defect catalog (the differential suite proves it), which is what
// lets callers treat the mode as a pure performance knob.
func RunSweep(mode SweepMode, stride int, counters *TraceCounters, cfg SweepConfig) (*Plane, error) {
	if mode != SweepTraced {
		return SweepPlane(cfg)
	}
	p, stats, err := TracePlane(TraceConfig{SweepConfig: cfg, Stride: stride})
	if err != nil {
		return nil, err
	}
	if counters != nil {
		counters.Add(stats)
	}
	return p, nil
}

// TracePlane sweeps the (R_def, U) grid by tracing region boundaries
// instead of simulating every point. It seeds a coarse lattice,
// recursively bisects every lattice segment whose endpoints disagree,
// subdivides every cell whose sampled perimeter carries more than one
// verdict until the disagreement is resolved at single-cell
// resolution, and finally fills each remaining cell from its unanimous
// sampled perimeter. The resulting *Plane carries exactly the Points a
// SweepPlane of the same SweepConfig would produce whenever every
// fault region of the dense plane contains at least one traced sample
// — which the differential suite proves for the whole defect catalog.
// No point is ever guessed between candidate verdicts: a cell is
// inferred only when every sampled point on its perimeter agrees, and
// any disagreement forces subdivision until the contested points are
// individually simulated (see DESIGN.md §14 for the soundness
// argument and the precise guarantee).
func TracePlane(cfg TraceConfig) (*Plane, TraceStats, error) {
	if len(cfg.RDefs) == 0 || len(cfg.Us) == 0 {
		return nil, TraceStats{}, fmt.Errorf("analysis: empty sweep grid")
	}
	stride := cfg.Stride
	if stride <= 0 {
		stride = DefaultTraceStride
	}
	t := &tracer{
		cfg: cfg.SweepConfig,
		nR:  len(cfg.RDefs),
		nU:  len(cfg.Us),
	}
	if t.pool = cfg.Pool; t.pool == nil {
		t.pool = NewPool(cfg.Parallelism)
	}
	t.out = make([][]Outcome, t.nR)
	t.known = make([][]bool, t.nR)
	for i := range t.out {
		t.out[i] = make([]Outcome, t.nU)
		t.known[i] = make([]bool, t.nU)
	}

	seedsR := seedIndices(t.nR, stride)
	seedsU := seedIndices(t.nU, stride)

	// Phase 1: classify the coarse seed lattice.
	var batch []gridPt
	for _, i := range seedsR {
		for _, j := range seedsU {
			batch = append(batch, gridPt{i, j})
		}
	}
	if err := t.classify(batch, &t.stats.Seeded); err != nil {
		return nil, TraceStats{}, err
	}

	// Initial cells span consecutive seed pairs; their edges are the
	// initial bisection segments.
	var cells []traceCell
	for a := 0; a < len(seedsR)-1 || (len(seedsR) == 1 && a == 0); a++ {
		i0, i1 := seedsR[a], seedsR[min(a+1, len(seedsR)-1)]
		for b := 0; b < len(seedsU)-1 || (len(seedsU) == 1 && b == 0); b++ {
			j0, j1 := seedsU[b], seedsU[min(b+1, len(seedsU)-1)]
			cells = append(cells, traceCell{i0, i1, j0, j1})
		}
	}
	var segs []traceSeg
	for _, c := range cells {
		segs = append(segs, c.edges()...)
	}

	// Phase 2+3 fixpoint: bisect all conflicted segments, then split
	// every cell whose sampled perimeter is ambiguous; splits sample
	// new points and create new segments, so loop until both settle.
	// Knowledge only grows and every rule is monotone, so the fixpoint
	// is unique — the traced plane does not depend on scheduling.
	for {
		if err := t.bisect(segs); err != nil {
			return nil, TraceStats{}, err
		}
		segs = segs[:0]
		split := false
		// next must not alias cells: a split appends two children while
		// the range over cells is still reading ahead.
		next := make([]traceCell, 0, len(cells))
		var refine []gridPt
		for _, c := range cells {
			if uniform, _ := t.perimeter(c); uniform || !c.splittable() {
				next = append(next, c)
				continue
			}
			split = true
			children, pts, es := c.split()
			next = append(next, children...)
			refine = append(refine, pts...)
			segs = append(segs, es...)
		}
		cells = next
		if !split {
			break
		}
		if err := t.classify(refine, &t.stats.Refined); err != nil {
			return nil, TraceStats{}, err
		}
	}

	// Phase 4: flood inference. At the fixpoint every cell with an
	// unknown point has a unanimous sampled perimeter (ambiguous cells
	// were subdivided until all their points were simulated), so the
	// fill never chooses between verdicts.
	for _, c := range cells {
		uniform, v := t.perimeter(c)
		if !uniform {
			continue // minimal cell: every point already simulated
		}
		for i := c.i0; i <= c.i1; i++ {
			for j := c.j0; j <= c.j1; j++ {
				if !t.known[i][j] {
					t.out[i][j] = v
					t.known[i][j] = true
					t.stats.Inferred++
				}
			}
		}
	}

	p := &Plane{
		Open:  cfg.Open,
		Float: cfg.Float,
		SOS:   cfg.SOS,
		RDefs: cfg.RDefs,
		Us:    cfg.Us,
	}
	p.Points = make([][]Point, t.nR)
	for i := range p.Points {
		p.Points[i] = make([]Point, t.nU)
		for j := range p.Points[i] {
			if !t.known[i][j] {
				return nil, TraceStats{}, fmt.Errorf("analysis: trace left point (%d,%d) unresolved", i, j)
			}
			p.Points[i][j] = pointAt(cfg.SOS, cfg.RDefs[i], cfg.Us[j], t.out[i][j])
		}
	}
	return p, t.stats, nil
}

// seedIndices returns 0, stride, 2·stride, … plus the last index.
func seedIndices(n, stride int) []int {
	var out []int
	for i := 0; i < n; i += stride {
		out = append(out, i)
	}
	if out[len(out)-1] != n-1 {
		out = append(out, n-1)
	}
	return out
}

// gridPt is one (R_def index, U index) grid position.
type gridPt struct{ i, j int }

// traceSeg is an axis-aligned segment between two sampled points:
// along the U axis at fixed R_def row when horizontal, along the R_def
// axis at fixed U column otherwise. a < b are the varying-axis bounds.
type traceSeg struct {
	horizontal bool
	line       int
	a, b       int
}

func (s traceSeg) pt(x int) gridPt {
	if s.horizontal {
		return gridPt{s.line, x}
	}
	return gridPt{x, s.line}
}

// traceCell is a closed grid rectangle whose corners are sampled.
type traceCell struct{ i0, i1, j0, j1 int }

func (c traceCell) splittable() bool { return c.i1-c.i0 >= 2 || c.j1-c.j0 >= 2 }

func (c traceCell) edges() []traceSeg {
	var out []traceSeg
	if c.j1 > c.j0 {
		out = append(out,
			traceSeg{horizontal: true, line: c.i0, a: c.j0, b: c.j1},
			traceSeg{horizontal: true, line: c.i1, a: c.j0, b: c.j1})
	}
	if c.i1 > c.i0 {
		out = append(out,
			traceSeg{horizontal: false, line: c.j0, a: c.i0, b: c.i1},
			traceSeg{horizontal: false, line: c.j1, a: c.i0, b: c.i1})
	}
	return out
}

// split bisects the cell along its larger axis and returns the two
// children, the midline's newly sampled endpoints, and the segments
// the split creates: the midline itself plus the halves of the
// perpendicular parent edges, whose new interior sample can reveal
// crossings the coarser endpoints hid.
func (c traceCell) split() (children []traceCell, pts []gridPt, segs []traceSeg) {
	if c.i1-c.i0 >= c.j1-c.j0 {
		im := (c.i0 + c.i1) / 2
		children = []traceCell{{c.i0, im, c.j0, c.j1}, {im, c.i1, c.j0, c.j1}}
		pts = []gridPt{{im, c.j0}, {im, c.j1}}
		segs = append(segs, traceSeg{horizontal: true, line: im, a: c.j0, b: c.j1})
		segs = append(segs,
			traceSeg{horizontal: false, line: c.j0, a: c.i0, b: im},
			traceSeg{horizontal: false, line: c.j0, a: im, b: c.i1},
			traceSeg{horizontal: false, line: c.j1, a: c.i0, b: im},
			traceSeg{horizontal: false, line: c.j1, a: im, b: c.i1})
		return children, pts, segs
	}
	jm := (c.j0 + c.j1) / 2
	children = []traceCell{{c.i0, c.i1, c.j0, jm}, {c.i0, c.i1, jm, c.j1}}
	pts = []gridPt{{c.i0, jm}, {c.i1, jm}}
	segs = append(segs, traceSeg{horizontal: false, line: jm, a: c.i0, b: c.i1})
	segs = append(segs,
		traceSeg{horizontal: true, line: c.i0, a: c.j0, b: jm},
		traceSeg{horizontal: true, line: c.i0, a: jm, b: c.j1},
		traceSeg{horizontal: true, line: c.i1, a: c.j0, b: jm},
		traceSeg{horizontal: true, line: c.i1, a: jm, b: c.j1})
	return children, pts, segs
}

// tracer carries the mutable state of one TracePlane call.
type tracer struct {
	cfg    SweepConfig
	pool   *Pool
	nR, nU int
	out    [][]Outcome
	known  [][]bool
	stats  TraceStats
}

// classify simulates every not-yet-known point of the batch in
// parallel through the shared evaluation pipeline (memo, replay,
// pool), crediting the given counter. The batch is deduplicated and
// sorted so batch membership, stats and the error returned on failure
// (first in grid order) are all independent of goroutine scheduling.
func (t *tracer) classify(batch []gridPt, counter *int) error {
	seen := make(map[gridPt]bool, len(batch))
	work := batch[:0]
	for _, p := range batch {
		if !seen[p] && !t.known[p.i][p.j] {
			seen[p] = true
			work = append(work, p)
		}
	}
	if len(work) == 0 {
		return nil
	}
	sort.Slice(work, func(a, b int) bool {
		if work[a].i != work[b].i {
			return work[a].i < work[b].i
		}
		return work[a].j < work[b].j
	})
	*counter += len(work)
	err := t.pool.ForEach(t.cfg.Ctx, len(work), func(k int) error {
		p := work[k]
		rdef, u := t.cfg.RDefs[p.i], t.cfg.Us[p.j]
		out, err := evalSOS(t.cfg.Model, t.cfg.Factory, t.cfg.Open, rdef, t.cfg.Float.Nets, u, t.cfg.SOS, t.cfg.Memo, t.cfg.Replay)
		if err != nil {
			return fmt.Errorf("analysis: point (%.3g Ω, %.3g V): %w", rdef, u, err)
		}
		t.out[p.i][p.j] = out
		t.known[p.i][p.j] = true
		return nil
	})
	return err
}

// bisect drives the segment worklist to its fixpoint: every segment
// whose sampled endpoints disagree is split at its midpoint until the
// crossing is pinned between two adjacent grid points. Midpoints are
// classified in deterministic batches, one per bisection depth.
func (t *tracer) bisect(segs []traceSeg) error {
	pending := segs
	for len(pending) > 0 {
		var next []traceSeg
		var batch []gridPt
		for _, s := range pending {
			pa, pb := s.pt(s.a), s.pt(s.b)
			if t.out[pa.i][pa.j] == t.out[pb.i][pb.j] {
				continue // no crossing detectable between these samples
			}
			if s.b-s.a <= 1 {
				continue // crossing resolved at single-cell resolution
			}
			m := (s.a + s.b) / 2
			batch = append(batch, s.pt(m))
			next = append(next,
				traceSeg{horizontal: s.horizontal, line: s.line, a: s.a, b: m},
				traceSeg{horizontal: s.horizontal, line: s.line, a: m, b: s.b})
		}
		if err := t.classify(batch, &t.stats.Bisected); err != nil {
			return err
		}
		pending = next
	}
	return nil
}

// perimeter scans the sampled points on the cell's boundary and
// reports whether they are unanimous, returning the shared outcome
// when they are. Cell corners are always sampled, so a unanimous
// verdict always exists for a uniform cell.
func (t *tracer) perimeter(c traceCell) (bool, Outcome) {
	var v Outcome
	first := true
	check := func(i, j int) bool {
		if !t.known[i][j] {
			return true
		}
		if first {
			v = t.out[i][j]
			first = false
			return true
		}
		return t.out[i][j] == v
	}
	for j := c.j0; j <= c.j1; j++ {
		if !check(c.i0, j) || !check(c.i1, j) {
			return false, Outcome{}
		}
	}
	for i := c.i0; i <= c.i1; i++ {
		if !check(i, c.j0) || !check(i, c.j1) {
			return false, Outcome{}
		}
	}
	return true, v
}
