package analysis_test

// Deterministic concurrency hammer for the two shared caches of the
// performance layer: the outcome Memo and the snapshot ReplayCache.
// Eight goroutines drive the full (R_def, U, SOS) cross product through
// both caches simultaneously, each in a different rotation of the same
// work list, so every key is contended by every worker. Correctness is
// checked against a serial cache-free reference bit for bit; run under
// -race (CI does) this also proves the locking discipline.

import (
	"sync"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

func TestMemoReplayConcurrentHammer(t *testing.T) {
	open, ok := defect.ByID(4)
	if !ok {
		t.Fatal("open 4 missing")
	}
	nets := open.Floats[0].Nets
	factory := behav.NewFactory(behav.DefaultParams())

	soses := []fp.SOS{
		fp.NewSOS(fp.Init0),
		fp.NewSOS(fp.Init1),
		fp.NewSOS(fp.Init1, fp.R(1)),
		fp.NewSOS(fp.Init0, fp.W(1)),
		fp.NewSOS(fp.Init1, fp.W(0), fp.R(0)),
	}
	rdefs := []float64{1e3, 1e5, 1e7}
	us := []float64{0, 1.65, 3.3}

	type job struct {
		rdef, u float64
		sos     fp.SOS
	}
	var jobs []job
	for _, r := range rdefs {
		for _, u := range us {
			for _, s := range soses {
				jobs = append(jobs, job{r, u, s})
			}
		}
	}

	// Serial, cache-free reference.
	want := make([]analysis.Outcome, len(jobs))
	for i, j := range jobs {
		out, err := analysis.RunSOS(factory, open, j.rdef, nets, j.u, j.sos)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = out
	}

	memo := analysis.NewMemo()
	rc := analysis.NewReplayCache(factory, open, nets)
	defer rc.Close()

	const workers = 8
	const rounds = 3
	got := make([][]analysis.Outcome, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		got[w] = make([]analysis.Outcome, len(jobs))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for round := 0; round < rounds; round++ {
				for k := range jobs {
					// Rotate the order per worker so goroutines contend
					// on different keys at any instant but all keys overall.
					i := (k + w*len(jobs)/workers) % len(jobs)
					j := jobs[i]
					key := analysis.NewOutcomeKey(behav.Fingerprint(behav.DefaultParams()), open, j.rdef, nets, j.u, j.sos)
					out, hit := memo.Lookup(key)
					if !hit {
						var err error
						out, err = rc.Run(j.rdef, j.u, j.sos)
						if err != nil {
							errs[w] = err
							return
						}
						memo.Store(key, out)
					}
					got[w][i] = out
				}
			}
		}()
	}
	wg.Wait()

	for w := 0; w < workers; w++ {
		if errs[w] != nil {
			t.Fatalf("worker %d: %v", w, errs[w])
		}
		for i := range jobs {
			if got[w][i] != want[i] {
				t.Errorf("worker %d job %d (rdef=%.3g u=%.3g %q): got %+v, want %+v",
					w, i, jobs[i].rdef, jobs[i].u, jobs[i].sos, got[w][i], want[i])
			}
		}
	}

	// The memo holds exactly the distinct keys — concurrent stores of
	// the same key are idempotent, never duplicated or lost.
	if memo.Len() != len(jobs) {
		t.Errorf("memo holds %d outcomes, want %d distinct keys", memo.Len(), len(jobs))
	}
	hits, misses := memo.Stats()
	if total := hits + misses; total != uint64(workers*rounds*len(jobs)) {
		t.Errorf("memo saw %d lookups, want %d", total, workers*rounds*len(jobs))
	}
	if hits == 0 {
		t.Error("no memo hits across 8 workers × 3 rounds; the cache never shared anything")
	}
	// How much the replay tree served vs simulated depends on the race
	// interleaving, but something must have been simulated to seed it.
	if sim, _ := rc.Stats(); sim == 0 {
		t.Error("replay cache simulated nothing")
	}
}
