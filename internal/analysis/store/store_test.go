package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

func TestKeyDigestSensitivity(t *testing.T) {
	base := Key{Model: "behav:abc", Catalog: "cat:def", Kind: "inventory", Spec: "grid=5x4"}
	variants := []Key{
		{Model: "spice:abc", Catalog: "cat:def", Kind: "inventory", Spec: "grid=5x4"},
		{Model: "behav:abc", Catalog: "cat:OTHER", Kind: "inventory", Spec: "grid=5x4"},
		{Model: "behav:abc", Catalog: "cat:def", Kind: "coverage", Spec: "grid=5x4"},
		{Model: "behav:abc", Catalog: "cat:def", Kind: "inventory", Spec: "grid=5x5"},
	}
	seen := map[string]Key{base.Digest(): base}
	for _, v := range variants {
		d := v.Digest()
		if prev, dup := seen[d]; dup {
			t.Fatalf("digest collision between %+v and %+v", prev, v)
		}
		seen[d] = v
	}
	if base.Digest() != base.Digest() {
		t.Fatal("digest is not deterministic")
	}
}

func TestKeyDigestNoFieldAliasing(t *testing.T) {
	// Length-prefixed hashing: moving a boundary between adjacent
	// fields must change the digest.
	a := Key{Model: "ab", Catalog: "c", Kind: "k", Spec: "s"}
	b := Key{Model: "a", Catalog: "bc", Kind: "k", Spec: "s"}
	if a.Digest() == b.Digest() {
		t.Fatal("adjacent fields alias in the digest")
	}
}

func TestStoreRoundTrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Model: "behav:abc", Catalog: "cat:def", Kind: "inventory", Spec: "grid"}
	if _, ok, err := s.Get(k); err != nil || ok {
		t.Fatalf("empty store: ok=%v err=%v", ok, err)
	}
	type payload struct {
		Rows []string `json:"rows"`
		N    int      `json:"n"`
	}
	want := payload{Rows: []string{"CFds", "TF0"}, N: 2}
	if err := s.PutValue(k, want); err != nil {
		t.Fatal(err)
	}
	var got payload
	ok, err := s.GetInto(k, &got)
	if err != nil || !ok {
		t.Fatalf("get after put: ok=%v err=%v", ok, err)
	}
	if got.N != want.N || len(got.Rows) != 2 || got.Rows[0] != "CFds" {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1/1/1", st)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("len = %d, %v", n, err)
	}
}

// TestStoreInvalidation is the store-level half of the acceptance
// criterion: changing any model input — netlist/technology (model
// fingerprint), defect catalog, or sweep spec — must miss, never serve
// the old entry.
func TestStoreInvalidation(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Model: "spice:netlistA", Catalog: "cat:v1", Kind: "inventory", Spec: "grid=5x4"}
	if err := s.Put(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	for name, changed := range map[string]Key{
		"technology/netlist": {Model: "spice:netlistB", Catalog: k.Catalog, Kind: k.Kind, Spec: k.Spec},
		"model kind":         {Model: "behav:netlistA", Catalog: k.Catalog, Kind: k.Kind, Spec: k.Spec},
		"catalog":            {Model: k.Model, Catalog: "cat:v2", Kind: k.Kind, Spec: k.Spec},
		"spec":               {Model: k.Model, Catalog: k.Catalog, Kind: k.Kind, Spec: "grid=9x9"},
	} {
		if _, ok, err := s.Get(changed); err != nil {
			t.Fatalf("%s: %v", name, err)
		} else if ok {
			t.Fatalf("%s change still served the stale entry", name)
		}
	}
	if _, ok, err := s.Get(k); err != nil || !ok {
		t.Fatalf("original key no longer hits: ok=%v err=%v", ok, err)
	}
}

func TestStoreDetectsTamperedEntry(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Model: "m", Catalog: "c", Kind: "k", Spec: "s"}
	if err := s.Put(k, []byte(`{"v":1}`)); err != nil {
		t.Fatal(err)
	}
	// Overwrite the entry with an envelope claiming a different key —
	// simulating corruption or a digest collision.
	other := Key{Model: "m2", Catalog: "c", Kind: "k", Spec: "s"}
	env := fmt.Sprintf(`{"key":{"model":%q,"catalog":"c","kind":"k","spec":"s"},"payload":{"v":2}}`, other.Model)
	if err := os.WriteFile(filepath.Join(dir, k.Digest()+".json"), []byte(env), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(k); err == nil {
		t.Fatal("mismatched embedded key was not detected")
	}
	// Truly corrupt bytes are an error too, not a silent miss.
	if err := os.WriteFile(filepath.Join(dir, k.Digest()+".json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Get(k); err == nil {
		t.Fatal("corrupt entry was not detected")
	}
}

func TestStoreRejectsInvalidJSONPayload(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(Key{Kind: "k"}, []byte("not json")); err == nil {
		t.Fatal("invalid payload accepted")
	}
}

// TestStoreConcurrent hammers one store with mixed readers and writers
// across overlapping keys; run with -race this doubles as the data-race
// check, and the atomic-rename write path guarantees no reader ever
// sees a torn entry.
func TestStoreConcurrent(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const workers, keys, rounds = 8, 5, 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := Key{Model: "m", Kind: "k", Spec: fmt.Sprintf("spec-%d", (w+r)%keys)}
				if w%2 == 0 {
					if err := s.Put(k, []byte(fmt.Sprintf(`{"w":%d,"r":%d}`, w, r))); err != nil {
						errs <- err
						return
					}
				}
				if buf, ok, err := s.Get(k); err != nil {
					errs <- err
					return
				} else if ok && len(buf) == 0 {
					errs <- fmt.Errorf("empty payload for present key")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n, err := s.Len(); err != nil || n != keys {
		t.Fatalf("len = %d, %v; want %d", n, err, keys)
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Model: "m", Kind: "k", Spec: "s"}
	if err := s1.Put(k, []byte(`{"v":42}`)); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	buf, ok, err := s2.Get(k)
	if err != nil || !ok {
		t.Fatalf("reopened store: ok=%v err=%v", ok, err)
	}
	if string(buf) != `{"v":42}` {
		t.Fatalf("payload = %s", buf)
	}
}

func firstOpenWithFloat(t *testing.T) (defect.Open, defect.FloatGroup) {
	t.Helper()
	for _, open := range defect.SimulatedOpens() {
		if len(open.Floats) > 0 {
			return open, open.Floats[0]
		}
	}
	t.Fatal("no simulated open with a floating group")
	return defect.Open{}, defect.FloatGroup{}
}

// TestOutcomeLogRoundTrip proves restart persistence at the outcome
// level: run a real (tiny) sweep journaling into the log, reopen the
// log into a fresh memo, and require the second sweep to be served
// entirely from replayed entries — zero misses — with a bit-identical
// plane.
func TestOutcomeLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jsonl")
	params := behav.DefaultParams()
	factory := behav.NewFactory(params)
	model := behav.Fingerprint(params)
	open, group := firstOpenWithFloat(t)
	cfg := analysis.SweepConfig{
		Factory: factory,
		Open:    open,
		Float:   group,
		SOS:     fp.NewSOS(fp.Init1, fp.R(1)),
		RDefs:   []float64{1e5, 1e7},
		Us:      []float64{0, 2.0},
		Model:   model,
	}

	memo1 := analysis.NewMemo()
	log1, err := OpenOutcomeLog(path, memo1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Memo = memo1
	fresh, err := analysis.SweepPlane(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := log1.Close(); err != nil {
		t.Fatal(err)
	}

	memo2 := analysis.NewMemo()
	log2, err := OpenOutcomeLog(path, memo2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	if replayed, skipped := log2.Replayed(); replayed != memo1.Len() || skipped != 0 {
		t.Fatalf("replayed %d (skipped %d), want %d", replayed, skipped, memo1.Len())
	}
	cfg.Memo = memo2
	replayedPlane, err := analysis.SweepPlane(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st := memo2.Snapshot(); st.Misses != 0 {
		t.Fatalf("replayed sweep missed the warmed memo %d times", st.Misses)
	}
	for i := range fresh.Points {
		for j := range fresh.Points[i] {
			a, b := fresh.Points[i][j], replayedPlane.Points[i][j]
			if a.Faulty != b.Faulty || a.FFM != b.FFM || a.FP.String() != b.FP.String() {
				t.Fatalf("point (%d,%d) differs after replay: %+v vs %+v", i, j, a, b)
			}
		}
	}
}

// TestOutcomeLogModelInvalidation: a log written under one model
// fingerprint must not serve a differently-fingerprinted sweep — the
// OutcomeKey regression scenario, at the persistence layer.
func TestOutcomeLogModelInvalidation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jsonl")
	params := behav.DefaultParams()
	open, group := firstOpenWithFloat(t)
	cfg := analysis.SweepConfig{
		Factory: behav.NewFactory(params),
		Open:    open,
		Float:   group,
		SOS:     fp.NewSOS(fp.Init1, fp.R(1)),
		RDefs:   []float64{1e5, 1e7},
		Us:      []float64{0, 2.0},
		Model:   behav.Fingerprint(params),
	}
	memo1 := analysis.NewMemo()
	log1, err := OpenOutcomeLog(path, memo1)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Memo = memo1
	if _, err := analysis.SweepPlane(cfg); err != nil {
		t.Fatal(err)
	}
	log1.Close()

	// Same grid, but the technology changed: new fingerprint.
	changed := params
	changed.Tech.VDD *= 1.1
	memo2 := analysis.NewMemo()
	log2, err := OpenOutcomeLog(path, memo2)
	if err != nil {
		t.Fatal(err)
	}
	defer log2.Close()
	cfg.Factory = behav.NewFactory(changed)
	cfg.Model = behav.Fingerprint(changed)
	cfg.Memo = memo2
	if _, err := analysis.SweepPlane(cfg); err != nil {
		t.Fatal(err)
	}
	if st := memo2.Snapshot(); st.Hits != 0 {
		t.Fatalf("changed-technology sweep hit %d stale replayed outcomes", st.Hits)
	}
}

// TestOutcomeLogTornTail: a crash mid-append leaves a torn last line;
// reopening must skip it and keep every complete record.
func TestOutcomeLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "outcomes.jsonl")
	memo := analysis.NewMemo()
	l, err := OpenOutcomeLog(path, memo)
	if err != nil {
		t.Fatal(err)
	}
	open, _ := firstOpenWithFloat(t)
	k := analysis.NewOutcomeKey("behav:x", open, 1e5, []string{"BT"}, 1.0, fp.NewSOS(fp.Init1, fp.R(1)))
	memo.Store(k, analysis.Outcome{F: 1, R: fp.ReadResultOf(1)})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":{"Model":"behav:x","OpenID":`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	memo2 := analysis.NewMemo()
	l2, err := OpenOutcomeLog(path, memo2)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	replayed, skipped := l2.Replayed()
	if replayed != 1 || skipped != 1 {
		t.Fatalf("replayed=%d skipped=%d, want 1/1", replayed, skipped)
	}
	if out, ok := memo2.Lookup(k); !ok || out.F != 1 {
		t.Fatalf("complete record lost: ok=%v out=%+v", ok, out)
	}
}
