package store

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"github.com/memtest/partialfaults/internal/analysis"
)

// OutcomeLog persists Memo entries as an append-only JSONL file, making
// the point-level outcome cache survive restarts. Every record embeds
// the full OutcomeKey — including the model fingerprint — so a log
// written under one netlist/technology can never seed outcomes for
// another: on replay the entries land under their original keys, and a
// changed model simply never looks those keys up.
type OutcomeLog struct {
	mu   sync.Mutex
	f    *os.File
	enc  *json.Encoder
	memo *analysis.Memo

	replayed, skipped int
}

// logRecord is the JSONL line schema.
type logRecord struct {
	Key     analysis.OutcomeKey `json:"key"`
	Outcome analysis.Outcome    `json:"outcome"`
}

// OpenOutcomeLog replays the log at path into the memo (via Preload, so
// seeding neither journals nor skews hit counters) and then attaches
// itself as the memo's write-through journal: every outcome the memo
// newly records is appended to the log. A torn final line — a crash
// mid-append — is skipped, not fatal; fully corrupt interior lines are
// skipped and counted too.
func OpenOutcomeLog(path string, memo *analysis.Memo) (*OutcomeLog, error) {
	l := &OutcomeLog{memo: memo}
	if existing, err := os.Open(path); err == nil {
		sc := bufio.NewScanner(existing)
		sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
		for sc.Scan() {
			line := sc.Bytes()
			if len(line) == 0 {
				continue
			}
			var rec logRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				l.skipped++
				continue
			}
			memo.Preload(rec.Key, rec.Outcome)
			l.replayed++
		}
		scanErr := sc.Err()
		existing.Close()
		if scanErr != nil {
			return nil, fmt.Errorf("store: replay outcome log %s: %w", path, scanErr)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: open outcome log: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open outcome log: %w", err)
	}
	l.f = f
	l.enc = json.NewEncoder(f)
	memo.Journal(l.append)
	return l, nil
}

// append is the Memo journal hook. It runs under the memo lock, so the
// log's line order is the memo's store order; the write itself is one
// buffered encode + O_APPEND write, cheap next to a simulation.
func (l *OutcomeLog) append(k analysis.OutcomeKey, out analysis.Outcome) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return
	}
	// An append error must not fail the simulation that produced the
	// outcome — the memo entry is already live; the log just loses
	// persistence for this record.
	_ = l.enc.Encode(logRecord{Key: k, Outcome: out})
}

// Replayed reports how many records seeded the memo at open, and how
// many corrupt lines were skipped.
func (l *OutcomeLog) Replayed() (replayed, skipped int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.replayed, l.skipped
}

// Close detaches the journal hook and closes the file. The memo keeps
// working; new outcomes simply stop persisting.
func (l *OutcomeLog) Close() error {
	l.memo.Journal(nil)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
