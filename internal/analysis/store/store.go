// Package store is the disk-persistent, content-addressed result store
// behind the analysis service: request results survive restarts and
// invalidate automatically because the address of every entry is a
// digest of all model inputs — netlist fingerprint, defect-catalog
// fingerprint, technology, and the canonical sweep/request spec. A
// changed input changes the address, so a stale result can never be
// served; it is simply never found.
package store

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Key addresses one stored result. All fields participate in the
// digest; an entry is retrievable only under the exact key that stored
// it.
type Key struct {
	// Model is the simulation-model fingerprint — engine kind, netlist
	// and technology (analysis.Fingerprint rendered) — or a fingerprint
	// of the static prover inputs for simulation-free results.
	Model string `json:"model"`
	// Catalog fingerprints the fault/defect catalogs the result ranges
	// over (opens, march tests, FP catalogs).
	Catalog string `json:"catalog"`
	// Kind names the result family ("inventory", "coverage", ...); it
	// keeps specs of different request types from aliasing.
	Kind string `json:"kind"`
	// Spec is the canonical encoding of the request parameters (grids,
	// geometry, test selection, offsets, ...).
	Spec string `json:"spec"`
}

// Digest returns the content address: a sha256 over the length-prefixed
// fields, rendered as hex.
func (k Key) Digest() string {
	h := sha256.New()
	for _, part := range []string{k.Model, k.Catalog, k.Kind, k.Spec} {
		var n [8]byte
		binary.LittleEndian.PutUint64(n[:], uint64(len(part)))
		h.Write(n[:])
		h.Write([]byte(part))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// envelope is the on-disk schema: the full key rides along with the
// payload so Get can verify the entry it addressed is the entry it
// wanted — a digest collision or a corrupted file surfaces as an error,
// never as a silently wrong result.
type envelope struct {
	Key     Key             `json:"key"`
	Payload json.RawMessage `json:"payload"`
}

// Stats counts store traffic since the Store was opened.
type Stats struct {
	Hits, Misses, Puts uint64
}

// Store is a directory of content-addressed results. It is safe for
// concurrent use; writes are atomic (temp file + rename), so a reader
// never observes a partial entry and concurrent writers of the same key
// are idempotent.
type Store struct {
	dir string

	mu    sync.Mutex
	stats Stats
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, k.Digest()+".json")
}

// Get returns the payload stored under the key, if present. A present
// entry whose embedded key differs from the requested one is an error
// (corruption or digest collision), not a hit.
func (s *Store) Get(k Key) ([]byte, bool, error) {
	buf, err := os.ReadFile(s.path(k))
	if os.IsNotExist(err) {
		s.count(func(st *Stats) { st.Misses++ })
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("store: %w", err)
	}
	var env envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		return nil, false, fmt.Errorf("store: corrupt entry %s: %w", k.Digest(), err)
	}
	if env.Key != k {
		return nil, false, fmt.Errorf("store: entry %s addressed by %+v but contains %+v", k.Digest(), k, env.Key)
	}
	s.count(func(st *Stats) { st.Hits++ })
	return env.Payload, true, nil
}

// Put stores the payload (which must be valid JSON) under the key,
// atomically.
func (s *Store) Put(k Key, payload []byte) error {
	if !json.Valid(payload) {
		return fmt.Errorf("store: payload for %s is not valid JSON", k.Digest())
	}
	env, err := json.Marshal(envelope{Key: k, Payload: json.RawMessage(payload)})
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := writeAtomic(s.path(k), append(env, '\n')); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	s.count(func(st *Stats) { st.Puts++ })
	return nil
}

// GetInto unmarshals the stored payload into v; ok reports presence.
func (s *Store) GetInto(k Key, v any) (bool, error) {
	buf, ok, err := s.Get(k)
	if err != nil || !ok {
		return false, err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return false, fmt.Errorf("store: decode %s: %w", k.Digest(), err)
	}
	return true, nil
}

// PutValue marshals v and stores it under the key.
func (s *Store) PutValue(k Key, v any) error {
	buf, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("store: encode %s: %w", k.Digest(), err)
	}
	return s.Put(k, buf)
}

// Len counts stored result entries.
func (s *Store) Len() (int, error) {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return 0, fmt.Errorf("store: %w", err)
	}
	n := 0
	for _, m := range matches {
		if !bytes.HasPrefix([]byte(filepath.Base(m)), []byte("outcomes-")) {
			n++
		}
	}
	return n, nil
}

// Stats returns traffic counters since Open.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

func (s *Store) count(f func(*Stats)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f(&s.stats)
}

// writeAtomic writes via a temp file in the same directory plus rename,
// so concurrent writers race benignly and readers never see partial
// content.
func writeAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}
