package analysis

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// The synthetic-field harness drives the tracer with a fake Factory
// over a [][]uint8 verdict field instead of a circuit simulator: row =
// int(rdef), column = int(u), and the stored value v ∈ {0,1,2,3} maps
// to Outcome{F: v&1, R: ReadResultOf(v>>1)} under fieldSOS (1r1), so
// all four values are pairwise-distinct region labels and v=3 is the
// fault-free one. This isolates the tracing geometry — seeding,
// bisection, cell refinement, flood inference — from the electrical
// model, and lets tests plant adversarial region shapes directly.

func fieldSOS() fp.SOS { return fp.NewSOS(fp.Init1, fp.R(1)) }

// fieldRecorder logs which grid points a fieldFactory simulated.
type fieldRecorder struct {
	mu    sync.Mutex
	calls int
	seen  map[[2]int]bool
}

func newFieldRecorder() *fieldRecorder {
	return &fieldRecorder{seen: map[[2]int]bool{}}
}

func (r *fieldRecorder) record(row, col int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.calls++
	r.seen[[2]int{row, col}] = true
}

// stats returns total simulations and the set of distinct points hit.
func (r *fieldRecorder) stats() (calls int, seen map[[2]int]bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seen = make(map[[2]int]bool, len(r.seen))
	for k, v := range r.seen {
		seen[k] = v
	}
	return r.calls, seen
}

type fieldMemory struct {
	field [][]uint8
	rec   *fieldRecorder
	row   int
	col   int
}

func (m *fieldMemory) value() uint8 { return m.field[m.row][m.col] }

func (m *fieldMemory) Write(cell, bit int) error { return nil }
func (m *fieldMemory) Read(cell int) (int, error) {
	return int(m.value()>>1) & 1, nil
}
func (m *fieldMemory) Idle() error         { return nil }
func (m *fieldMemory) ForceVictim(bit int) {}
func (m *fieldMemory) SetFloat(nets []string, u float64) {
	m.col = int(u + 0.5)
	if m.rec != nil {
		m.rec.record(m.row, m.col)
	}
}
func (m *fieldMemory) VictimBit() int { return int(m.value()) & 1 }

// fieldFactory returns a Factory reading verdicts straight from field.
func fieldFactory(field [][]uint8, rec *fieldRecorder) Factory {
	return func(open defect.Open, rdef float64) (Memory, error) {
		return &fieldMemory{field: field, rec: rec, row: int(rdef + 0.5)}, nil
	}
}

func fieldAxes(field [][]uint8) (rdefs, us []float64) {
	rdefs = make([]float64, len(field))
	for i := range rdefs {
		rdefs[i] = float64(i)
	}
	us = make([]float64, len(field[0]))
	for j := range us {
		us[j] = float64(j)
	}
	return rdefs, us
}

func fieldSweepConfig(field [][]uint8, rec *fieldRecorder) SweepConfig {
	rdefs, us := fieldAxes(field)
	return SweepConfig{
		Factory:     fieldFactory(field, rec),
		SOS:         fieldSOS(),
		RDefs:       rdefs,
		Us:          us,
		Parallelism: 4,
	}
}

// traceField runs TracePlane over the synthetic field.
func traceField(t testing.TB, field [][]uint8, stride int, rec *fieldRecorder) (*Plane, TraceStats) {
	t.Helper()
	p, stats, err := TracePlane(TraceConfig{SweepConfig: fieldSweepConfig(field, rec), Stride: stride})
	if err != nil {
		t.Fatalf("TracePlane: %v", err)
	}
	return p, stats
}

// denseField runs SweepPlane over the synthetic field.
func denseField(t testing.TB, field [][]uint8) *Plane {
	t.Helper()
	p, err := SweepPlane(fieldSweepConfig(field, nil))
	if err != nil {
		t.Fatalf("SweepPlane: %v", err)
	}
	return p
}

func uniformField(nR, nU int, v uint8) [][]uint8 {
	f := make([][]uint8, nR)
	for i := range f {
		f[i] = make([]uint8, nU)
		for j := range f[i] {
			f[i][j] = v
		}
	}
	return f
}

// mismatches returns the grid positions where the planes disagree.
func mismatches(a, b *Plane) [][2]int {
	var out [][2]int
	for i := range a.Points {
		for j := range a.Points[i] {
			if !reflect.DeepEqual(a.Points[i][j], b.Points[i][j]) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// component returns the 4-connected same-value component of (i,j).
func component(field [][]uint8, i, j int) map[[2]int]bool {
	v := field[i][j]
	comp := map[[2]int]bool{{i, j}: true}
	stack := [][2]int{{i, j}}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, d := range [][2]int{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			q := [2]int{p[0] + d[0], p[1] + d[1]}
			if q[0] < 0 || q[0] >= len(field) || q[1] < 0 || q[1] >= len(field[0]) {
				continue
			}
			if !comp[q] && field[q[0]][q[1]] == v {
				comp[q] = true
				stack = append(stack, q)
			}
		}
	}
	return comp
}

// checkTraceInvariants asserts the tracer's exact guarantee against the
// dense oracle: (1) the trace resolves every point and its stats add
// up to the recorder's observations; (2) any point where traced and
// dense disagree belongs to a dense-plane region (4-connected
// same-outcome component) that the trace never sampled — the one
// documented blind spot. Everything else must be bit-identical.
func checkTraceInvariants(t *testing.T, field [][]uint8, stride int) (*Plane, *Plane, TraceStats) {
	t.Helper()
	rec := newFieldRecorder()
	traced, stats := traceField(t, field, stride, rec)
	dense := denseField(t, field)

	nR, nU := len(field), len(field[0])
	if got, want := stats.Points(), nR*nU; got != want {
		t.Errorf("stats.Points() = %d, want %d (grid %dx%d)", got, want, nR, nU)
	}
	calls, seen := rec.stats()
	if calls != len(seen) {
		t.Errorf("simulated %d times for %d distinct points: tracer re-simulated a known point", calls, len(seen))
	}
	if calls != stats.Simulated() {
		t.Errorf("recorder saw %d simulations, stats claim %d", calls, stats.Simulated())
	}

	for _, m := range mismatches(traced, dense) {
		comp := component(field, m[0], m[1])
		for p := range comp {
			if seen[p] {
				t.Errorf("traced[%d][%d] = %+v != dense %+v, but its region was sampled at (%d,%d): unsound inference",
					m[0], m[1], traced.Points[m[0]][m[1]], dense.Points[m[0]][m[1]], p[0], p[1])
				break
			}
		}
	}
	return traced, dense, stats
}

// requireExact asserts bit-identical traced-vs-dense reconstruction.
func requireExact(t *testing.T, field [][]uint8, stride int) TraceStats {
	t.Helper()
	traced, dense, stats := checkTraceInvariants(t, field, stride)
	if !reflect.DeepEqual(traced.Points, dense.Points) {
		t.Errorf("traced plane differs from dense (stride %d): %d mismatched points",
			stride, len(mismatches(traced, dense)))
	}
	return stats
}

func TestTraceFieldUniform(t *testing.T) {
	for _, v := range []uint8{0, 3} {
		field := uniformField(13, 12, v)
		stats := requireExact(t, field, 4)
		// A uniform field needs exactly the seed lattice: ceil(13/4)+0
		// rows {0,4,8,12} × cols {0,4,8,11}.
		if want := 4 * 4; stats.Simulated() != want {
			t.Errorf("uniform field: simulated %d points, want the %d seeds", stats.Simulated(), want)
		}
		if stats.Bisected != 0 || stats.Refined != 0 {
			t.Errorf("uniform field: unexpected bisection/refinement: %+v", stats)
		}
	}
}

func TestTraceFieldHalfPlanes(t *testing.T) {
	// Vertical, horizontal and rectangular splits at every cut
	// position, including cuts inside a coarse cell.
	for cut := 1; cut < 12; cut++ {
		field := uniformField(13, 12, 3)
		for i := range field {
			for j := cut; j < 12; j++ {
				field[i][j] = 1
			}
		}
		requireExact(t, field, 4)

		field = uniformField(13, 12, 3)
		for i := cut; i < 13; i++ {
			for j := range field[i] {
				field[i][j] = 2
			}
		}
		requireExact(t, field, 4)
	}
}

func TestTraceFieldRectangles(t *testing.T) {
	// Axis-aligned rectangles spanning at least (stride+1) points per
	// axis always contain a seed, so reconstruction must be exact.
	const stride = 4
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nR, nU := 10+rng.Intn(10), 10+rng.Intn(10)
		field := uniformField(nR, nU, 3)
		h := stride + 1 + rng.Intn(nR-stride-1)
		w := stride + 1 + rng.Intn(nU-stride-1)
		i0, j0 := rng.Intn(nR-h+1), rng.Intn(nU-w+1)
		for i := i0; i < i0+h; i++ {
			for j := j0; j < j0+w; j++ {
				field[i][j] = uint8(trial % 3)
			}
		}
		requireExact(t, field, stride)
	}
}

func TestTraceFieldMonotone(t *testing.T) {
	// Monotone threshold fields (each row faulty from a column
	// threshold on, thresholds non-decreasing) model the paper's
	// region maps: both the faulty and fault-free regions are
	// connected and touch opposite grid corners, which are always
	// seeded, so reconstruction must be exact at any stride.
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		nR, nU := 5+rng.Intn(20), 5+rng.Intn(20)
		field := uniformField(nR, nU, 3)
		thresh := rng.Intn(nU + 1)
		for i := 0; i < nR; i++ {
			if up := rng.Intn(3); thresh+up <= nU {
				thresh += up
			}
			for j := thresh; j < nU; j++ {
				field[i][j] = 1
			}
		}
		for _, stride := range []int{2, 4, 7} {
			requireExact(t, field, stride)
		}
	}
}

func TestTraceFieldConnectedDiagonalStrip(t *testing.T) {
	// A two-point-wide diagonal staircase is 4-connected and touches
	// the (0,0) seed, so even though it is everywhere thinner than the
	// stride the refinement fallback must chase it across the whole
	// grid and reconstruct it exactly.
	n := 17
	field := uniformField(n, n, 3)
	for i := 0; i < n; i++ {
		field[i][i] = 1
		if i+1 < n {
			field[i][i+1] = 1
		}
	}
	stats := requireExact(t, field, 4)
	if stats.Refined == 0 {
		t.Errorf("diagonal strip: expected cell refinement, got %+v", stats)
	}
}

func TestTraceFieldIslandBlindSpotAndFallback(t *testing.T) {
	// A single-point island strictly inside a coarse cell is the
	// documented blind spot: no sample can see it, so the trace fills
	// over it — but never in a way that violates the region-sampling
	// invariant — and Stride=1 (the dense fallback) must find it.
	field := uniformField(13, 12, 3)
	field[2][2] = 0

	traced, dense, _ := checkTraceInvariants(t, field, 4)
	if len(mismatches(traced, dense)) != 1 {
		t.Errorf("off-lattice island: want exactly the island point missed, got %d mismatches",
			len(mismatches(traced, dense)))
	}
	requireExact(t, field, 1) // Stride=1 degenerates to dense: island found

	// The same island sitting on a lattice point is always found.
	field = uniformField(13, 12, 3)
	field[4][8] = 0
	requireExact(t, field, 4)

	// A sub-stride strip whose component touches a seed is found
	// through the refinement cascade: the seed (0,4) disagrees with
	// its lattice neighbors, and the fixpoint keeps subdividing the
	// surrounding cells until the whole strip is individually
	// simulated.
	field = uniformField(13, 12, 3)
	for i := 0; i <= 2; i++ {
		field[i][4] = 1
	}
	requireExact(t, field, 4)

	// The same strip one column over touches no sample (its row-0
	// neighbors (0,0)/(0,4) agree, so no bisection ever lands on it):
	// a documented blind spot, recovered by Stride=1.
	field = uniformField(13, 12, 3)
	for i := 0; i <= 2; i++ {
		field[i][2] = 1
	}
	traced, dense, _ = checkTraceInvariants(t, field, 4)
	if len(mismatches(traced, dense)) != 3 {
		t.Errorf("off-sample strip: want 3 missed points, got %d", len(mismatches(traced, dense)))
	}
	requireExact(t, field, 1)
}

func TestTraceFieldSubStrideRegions(t *testing.T) {
	// Regions smaller than the seed stride in both extents: found
	// exactly when any sample lands in them, filled over (blind spot)
	// when none does — checkTraceInvariants encodes precisely that
	// dichotomy, so sweeping many placements exercises both paths.
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 80; trial++ {
		nR, nU := 9+rng.Intn(8), 9+rng.Intn(8)
		field := uniformField(nR, nU, 3)
		h, w := 1+rng.Intn(3), 1+rng.Intn(3)
		i0, j0 := rng.Intn(nR-h+1), rng.Intn(nU-w+1)
		for i := i0; i < i0+h; i++ {
			for j := j0; j < j0+w; j++ {
				field[i][j] = uint8(rng.Intn(3))
			}
		}
		checkTraceInvariants(t, field, 4)
	}
}

func TestTraceFieldStrideOneIsDense(t *testing.T) {
	// Stride=1 must simulate every point (nothing inferable) and match
	// the dense sweep on arbitrary fields.
	rng := rand.New(rand.NewSource(4))
	field := uniformField(7, 9, 0)
	for i := range field {
		for j := range field[i] {
			field[i][j] = uint8(rng.Intn(4))
		}
	}
	stats := requireExact(t, field, 1)
	if stats.Inferred != 0 {
		t.Errorf("stride 1: inferred %d points, want 0", stats.Inferred)
	}
	if stats.Simulated() != 7*9 {
		t.Errorf("stride 1: simulated %d points, want all %d", stats.Simulated(), 7*9)
	}
}

func TestTraceFieldSingleRowAndColumn(t *testing.T) {
	// Degenerate 1×n and n×1 grids exercise the degenerate-cell path.
	field := [][]uint8{{3, 3, 1, 1, 1, 3, 3, 3, 3, 3, 2}}
	requireExact(t, field, 4)

	tall := make([][]uint8, 11)
	for i := range tall {
		tall[i] = []uint8{field[0][i]}
	}
	requireExact(t, tall, 4)

	requireExact(t, [][]uint8{{2}}, 4)
}

// TestTraceFieldDeterminism races 8 concurrent traced sweeps of the
// same adversarial field and requires byte-identical planes and stats:
// batch-synchronous classification with sorted batches makes the trace
// independent of goroutine scheduling. Run with -race in CI.
func TestTraceFieldDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	field := uniformField(19, 17, 3)
	for i := range field {
		for j := range field[i] {
			if rng.Intn(3) == 0 {
				field[i][j] = uint8(rng.Intn(4))
			}
		}
	}
	type result struct {
		plane *Plane
		stats TraceStats
		err   error
	}
	results := make([]result, 8)
	var wg sync.WaitGroup
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cfg := fieldSweepConfig(field, nil)
			cfg.Parallelism = 8
			p, s, err := TracePlane(TraceConfig{SweepConfig: cfg, Stride: 4})
			results[g] = result{p, s, err}
		}(g)
	}
	wg.Wait()
	for g, r := range results {
		if r.err != nil {
			t.Fatalf("goroutine %d: %v", g, r.err)
		}
		if !reflect.DeepEqual(r.plane.Points, results[0].plane.Points) {
			t.Errorf("goroutine %d produced a different plane than goroutine 0", g)
		}
		if r.stats != results[0].stats {
			t.Errorf("goroutine %d stats %+v differ from goroutine 0 %+v", g, r.stats, results[0].stats)
		}
	}
}

func TestTracePlaneEmptyGrid(t *testing.T) {
	_, _, err := TracePlane(TraceConfig{})
	if err == nil {
		t.Fatal("TracePlane on an empty grid: want error")
	}
}

func TestTracePlaneErrorIsFirstInGridOrder(t *testing.T) {
	// Every factory call fails; the reported point must be the first
	// seed in grid order regardless of scheduling.
	cfg := fieldSweepConfig(uniformField(9, 9, 3), nil)
	cfg.Factory = func(open defect.Open, rdef float64) (Memory, error) {
		return nil, fmt.Errorf("boom at %g", rdef)
	}
	for trial := 0; trial < 4; trial++ {
		_, _, err := TracePlane(TraceConfig{SweepConfig: cfg, Stride: 4})
		if err == nil {
			t.Fatal("want error")
		}
		want := "analysis: point (0 Ω, 0 V): boom at 0"
		if err.Error() != want {
			t.Errorf("error = %q, want %q", err, want)
		}
	}
}

// FuzzTracePlane fuzzes random field shapes and strides, checking the
// tracer's invariants (stats accounting, no double simulation, and
// mismatch-only-in-unsampled-regions soundness) against the dense
// oracle on every input. CI runs a 30s smoke of this target.
func FuzzTracePlane(f *testing.F) {
	f.Add(uint8(13), uint8(12), uint8(4), []byte{0, 1, 2, 3})
	f.Add(uint8(5), uint8(30), uint8(3), []byte{3, 3, 3, 1})
	f.Add(uint8(1), uint8(9), uint8(4), []byte{0})
	f.Add(uint8(20), uint8(20), uint8(1), []byte{2, 0, 2})
	f.Add(uint8(16), uint8(16), uint8(7), []byte{3, 3, 0, 3, 3, 3, 3, 1})
	f.Fuzz(func(t *testing.T, nr, nu, stride uint8, vals []byte) {
		nR, nU := int(nr)%24+1, int(nu)%24+1
		s := int(stride)%8 + 1
		field := make([][]uint8, nR)
		k := 0
		for i := range field {
			field[i] = make([]uint8, nU)
			for j := range field[i] {
				if len(vals) > 0 {
					field[i][j] = vals[k%len(vals)] % 4
					k++
				}
			}
		}
		checkTraceInvariants(t, field, s)
	})
}
