package analysis

import (
	"context"
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// Point is one simulated point of an (R_def, U) plane.
type Point struct {
	// RDef is the injected open resistance in ohms.
	RDef float64
	// U is the initialized floating voltage in volts.
	U float64
	// Faulty reports whether a deviation was observed.
	Faulty bool
	// FP is the observed fault primitive when Faulty.
	FP fp.FP
	// FFM is the classification of FP (FFMUnknown for unnamed shapes).
	FFM fp.FFM
}

// Plane is the result of sweeping one SOS over the (R_def, U) grid for a
// given open and floating-voltage group — the data behind Figures 3
// and 4.
type Plane struct {
	// Open is the analyzed defect.
	Open defect.Open
	// Float is the initialized floating-voltage group.
	Float defect.FloatGroup
	// SOS is the applied sensitizing sequence.
	SOS fp.SOS
	// RDefs and Us are the grid axes (RDefs ascending, Us ascending).
	RDefs, Us []float64
	// Points is indexed [iRDef][iU].
	Points [][]Point
}

// SweepConfig parameterizes a plane sweep.
type SweepConfig struct {
	// Factory builds the device under analysis.
	Factory Factory
	// Open is the defect to inject.
	Open defect.Open
	// Float selects the floating-voltage group to initialize.
	Float defect.FloatGroup
	// SOS is the sequence under analysis.
	SOS fp.SOS
	// RDefs and Us are the grid axes.
	RDefs, Us []float64
	// Parallelism bounds concurrent simulations; 0 means GOMAXPROCS.
	// Ignored when Pool is set.
	Parallelism int

	// Model fingerprints the Factory for memo keying. Required whenever
	// Memo outlives this sweep's Factory (shared or persistent caches);
	// may stay empty for a sweep-local or single-factory memo.
	Model Fingerprint
	// Ctx, when non-nil, cancels the sweep: points not yet started are
	// abandoned and the context error is returned.
	Ctx context.Context

	// Memo, when non-nil, caches (and reuses) point outcomes across
	// sweeps sharing the same Factory — or, when Model is set, across
	// factories without collision.
	Memo *Memo
	// Replay, when non-nil, shares simulation prefixes between points;
	// it must have been built for this sweep's Factory, Open and
	// Float.Nets.
	Replay *ReplayCache
	// Pool, when non-nil, bounds concurrency together with the other
	// pipeline phases instead of a sweep-local limit.
	Pool *Pool
}

// pointAt materializes the Point for one grid position from its raw
// simulation outcome. The Outcome fully determines the classification,
// so dense sweeps and traced sweeps that agree on outcomes produce
// byte-identical Points through this single code path.
func pointAt(sos fp.SOS, rdef, u float64, out Outcome) Point {
	pt := Point{RDef: rdef, U: u}
	if obs, faulty := ClassifyOutcome(sos, out); faulty {
		pt.Faulty = true
		pt.FP = obs
		pt.FFM = obs.Classify()
	}
	return pt
}

// SweepPlane simulates every grid point, in parallel. Points are fully
// independent (each builds — or checks caches for — its own defective
// memory state), so the sweep spawns one goroutine per point gated by a
// semaphore. Failures park in per-point slots and the first one in grid
// order is returned after all workers finish: a failing point can never
// stall the sweep, no matter how many points fail.
func SweepPlane(cfg SweepConfig) (*Plane, error) {
	if len(cfg.RDefs) == 0 || len(cfg.Us) == 0 {
		return nil, fmt.Errorf("analysis: empty sweep grid")
	}
	p := &Plane{
		Open:  cfg.Open,
		Float: cfg.Float,
		SOS:   cfg.SOS,
		RDefs: cfg.RDefs,
		Us:    cfg.Us,
	}
	p.Points = make([][]Point, len(cfg.RDefs))
	for i := range p.Points {
		p.Points[i] = make([]Point, len(cfg.Us))
	}
	pool := cfg.Pool
	if pool == nil {
		pool = NewPool(cfg.Parallelism)
	}
	nU := len(cfg.Us)
	err := pool.ForEach(cfg.Ctx, len(cfg.RDefs)*nU, func(k int) error {
		i, j := k/nU, k%nU
		rdef, u := cfg.RDefs[i], cfg.Us[j]
		out, err := evalSOS(cfg.Model, cfg.Factory, cfg.Open, rdef, cfg.Float.Nets, u, cfg.SOS, cfg.Memo, cfg.Replay)
		if err != nil {
			return fmt.Errorf("analysis: point (%.3g Ω, %.3g V): %w", rdef, u, err)
		}
		p.Points[i][j] = pointAt(cfg.SOS, rdef, u, out)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return p, nil
}

// FFMs returns the set of named FFMs observed anywhere in the plane.
func (p *Plane) FFMs() []fp.FFM {
	seen := map[fp.FFM]bool{}
	var out []fp.FFM
	for _, row := range p.Points {
		for _, pt := range row {
			if pt.Faulty && pt.FFM != fp.FFMUnknown && !seen[pt.FFM] {
				seen[pt.FFM] = true
				out = append(out, pt.FFM)
			}
		}
	}
	return out
}

// FaultyFraction returns the fraction of grid points showing any fault.
func (p *Plane) FaultyFraction() float64 {
	total, faulty := 0, 0
	for _, row := range p.Points {
		for _, pt := range row {
			total++
			if pt.Faulty {
				faulty++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(faulty) / float64(total)
}

// RowFFM reports, for the R_def row i, how many U points exhibit the
// given FFM and how many U points the row has.
func (p *Plane) RowFFM(i int, f fp.FFM) (count, total int) {
	row := p.Points[i]
	for _, pt := range row {
		if pt.Faulty && pt.FFM == f {
			count++
		}
	}
	return count, len(row)
}

// MinRDefWithFFM returns the smallest R_def at which the FFM appears for
// the given U index, or (0, false).
func (p *Plane) MinRDefWithFFM(f fp.FFM, uIdx int) (float64, bool) {
	for i := range p.RDefs {
		pt := p.Points[i][uIdx]
		if pt.Faulty && pt.FFM == f {
			return p.RDefs[i], true
		}
	}
	return 0, false
}
