package analysis

import (
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

func TestPaperTable1Encoding(t *testing.T) {
	rows := PaperTable1()
	if len(rows) != 15 {
		t.Fatalf("paper table has %d rows, want 15", len(rows))
	}
	for _, r := range rows {
		if r.ComFFM != r.SimFFM.Complement() {
			t.Errorf("row %s: Com. FFM %s is not the complement", r.SimFFM, r.ComFFM)
		}
		if r.Possible() {
			p := fp.MustParse(r.Completed)
			if got := p.Classify(); got != r.SimFFM {
				t.Errorf("row %s: completed FP %s classifies as %s", r.SimFFM, r.Completed, got)
			}
		} else if r.Float != defect.FloatWordLine && r.Float != defect.FloatMemoryCell {
			t.Errorf("row %s: Not possible with unexpected mediation %s", r.SimFFM, r.Float)
		}
		if len(r.OpenIDs) == 0 {
			t.Errorf("row %s has no opens", r.SimFFM)
		}
	}
}

func TestCompareWithPaperEmptyInventory(t *testing.T) {
	matches, exact, ffmOnly := CompareWithPaper(nil)
	if exact != 0 || ffmOnly != 0 || len(matches) != 15 {
		t.Errorf("empty inventory: %d exact, %d ffm-only, %d matches", exact, ffmOnly, len(matches))
	}
	s := SummarizeComparison(matches)
	if !strings.Contains(s, "✗") || !strings.Contains(s, "Not possible") {
		t.Errorf("summary missing expected markers:\n%s", s)
	}
}

func TestCompareWithPaperExactRow(t *testing.T) {
	o, _ := defect.ByID(1)
	rows := []Row{{
		SimFFM: fp.RDF0, ComFFM: fp.RDF1, Open: o,
		Float: defect.FloatMemoryCell, Possible: true,
		Completed: fp.MustParse("<[w1 w1 w0] r0/1/1>"),
	}}
	matches, exact, _ := CompareWithPaper(rows)
	if exact != 1 {
		t.Fatalf("exact = %d, want 1", exact)
	}
	if !matches[0].Exact {
		t.Error("the Open 1 RDF0 row must match exactly")
	}
}
