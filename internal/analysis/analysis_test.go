package analysis

import (
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
)

// testFactory returns the electrically simulated column factory.
func testFactory() Factory { return NewSpiceFactory(dram.Default()) }

func open4(t *testing.T) defect.Open {
	t.Helper()
	o, ok := defect.ByID(4)
	if !ok {
		t.Fatal("Open 4 missing")
	}
	return o
}

func open1(t *testing.T) defect.Open {
	t.Helper()
	o, ok := defect.ByID(1)
	if !ok {
		t.Fatal("Open 1 missing")
	}
	return o
}

// TestFigure3aPartialRDF1 reproduces the paper's Figure 3(a) on a coarse
// grid: a bit-line open (Open 4) with SOS 1r1 shows RDF1 only for low
// floating bit-line voltages — a partial fault.
func TestFigure3aPartialRDF1(t *testing.T) {
	o := open4(t)
	grp, _ := o.Float(defect.FloatBitLine)
	plane, err := SweepPlane(SweepConfig{
		Factory: testFactory(), Open: o, Float: grp,
		SOS:   fp.NewSOS(fp.Init1, fp.R(1)),
		RDefs: []float64{1e3, 1e5, 1e7},
		Us:    []float64{0, 0.8, 3.3},
	})
	if err != nil {
		t.Fatalf("SweepPlane: %v", err)
	}
	// Low R_def: healthy behaviour everywhere.
	for j := range plane.Us {
		if plane.Points[0][j].Faulty {
			t.Errorf("R_def=1kΩ U=%.1f unexpectedly faulty", plane.Us[j])
		}
	}
	// High R_def: RDF1 at low U, no fault at high U.
	for _, i := range []int{1, 2} {
		if got := plane.Points[i][0].FFM; got != fp.RDF1 {
			t.Errorf("R_def=%.0e U=0: FFM = %s, want RDF1", plane.RDefs[i], got)
		}
		if plane.Points[i][2].Faulty {
			t.Errorf("R_def=%.0e U=3.3: unexpectedly faulty", plane.RDefs[i])
		}
	}
	// The rule must flag RDF1 as partial.
	findings := IdentifyPartialFaults(plane)
	var found bool
	for _, f := range findings {
		if f.FFM == fp.RDF1 {
			found = true
			if f.UHigh >= 3.3 {
				t.Error("RDF1 should not extend to U=3.3V")
			}
		}
	}
	if !found {
		t.Fatal("partial-fault rule did not flag RDF1")
	}
	if IsCompletedIn(plane, fp.RDF1) {
		t.Error("bare 1r1 must NOT be complete for Open 4")
	}
}

// TestFigure3bCompletedSOS reproduces Figure 3(b): with the completing
// operation w0 to a bit-line neighbour, the fault no longer depends on
// the floating voltage.
func TestFigure3bCompletedSOS(t *testing.T) {
	o := open4(t)
	grp, _ := o.Float(defect.FloatBitLine)
	completed := fp.MustParse("<1v [w0BL] r1v/0/0>")
	plane, err := SweepPlane(SweepConfig{
		Factory: testFactory(), Open: o, Float: grp,
		SOS:   completed.S,
		RDefs: []float64{1e5, 1e7},
		Us:    []float64{0, 1.65, 3.3},
	})
	if err != nil {
		t.Fatalf("SweepPlane: %v", err)
	}
	if !IsCompletedIn(plane, fp.RDF1) {
		t.Fatal("1v [w0BL] r1v must sensitize RDF1 for every floating BL voltage")
	}
	if len(IdentifyPartialFaults(plane)) != 0 {
		t.Error("completed SOS must have no partial findings")
	}
}

// TestSearchCompletionFindsW0BL checks the automatic completing-operation
// search discovers the paper's [w0BL] completion for Open 4's RDF1.
func TestSearchCompletionFindsW0BL(t *testing.T) {
	o := open4(t)
	grp, _ := o.Float(defect.FloatBitLine)
	comp, err := SearchCompletion(CompletionConfig{
		Factory: testFactory(), Open: o, Float: grp,
		Base:  fp.MustParse("<1r1/0/0>"),
		RDefs: []float64{1e6},
		Us:    []float64{0, 1.65, 3.3},
	})
	if err != nil {
		t.Fatalf("SearchCompletion: %v", err)
	}
	if !comp.Possible {
		t.Fatal("completion must exist for Open 4 RDF1")
	}
	want := "<1v [w0BL] r1v/0/0>"
	if got := comp.Completed.String(); got != want {
		t.Errorf("completed FP = %s, want %s", got, want)
	}
}

// TestFigure4aCellOpenWedge reproduces the qualitative Figure 4(a) shape:
// for a cell open the RDF0 onset R_def is much lower at a high floating
// cell voltage than at U = 0.
func TestFigure4aCellOpenWedge(t *testing.T) {
	o := open1(t)
	grp, _ := o.Float(defect.FloatMemoryCell)
	plane, err := SweepPlane(SweepConfig{
		Factory: testFactory(), Open: o, Float: grp,
		SOS:   fp.NewSOS(fp.Init0, fp.R(0)),
		RDefs: []float64{1e4, 1e5, 3e6},
		Us:    []float64{0, 1.6},
	})
	if err != nil {
		t.Fatalf("SweepPlane: %v", err)
	}
	uIdxHigh := 1
	uIdxLow := 0
	onsetHigh, okHigh := plane.MinRDefWithFFM(fp.RDF0, uIdxHigh)
	if !okHigh {
		t.Fatal("RDF0 never appears at U=1.6V")
	}
	onsetLow, okLow := plane.MinRDefWithFFM(fp.RDF0, uIdxLow)
	if okLow && onsetLow <= onsetHigh {
		t.Errorf("RDF0 onset at U=0 (%.0e) should exceed onset at U=1.6 (%.0e)", onsetLow, onsetHigh)
	}
	if got := plane.Points[1][uIdxHigh].FFM; got != fp.RDF0 {
		t.Errorf("R_def=100kΩ U=1.6: FFM = %s, want RDF0", got)
	}
	if plane.Points[0][uIdxLow].Faulty {
		t.Error("R_def=10kΩ U=0 must be fault-free")
	}
}

func TestClassifyOutcomeFaultFree(t *testing.T) {
	sos := fp.NewSOS(fp.Init1, fp.R(1))
	if _, faulty := ClassifyOutcome(sos, Outcome{F: 1, R: fp.R1}); faulty {
		t.Error("correct read classified as faulty")
	}
	obs, faulty := ClassifyOutcome(sos, Outcome{F: 0, R: fp.R0})
	if !faulty || obs.Classify() != fp.RDF1 {
		t.Errorf("RDF1 outcome misclassified: %v %v", obs, faulty)
	}
}

func TestRunSOSHealthyColumn(t *testing.T) {
	// With a healthy (wire-resistance) open, every static SOS behaves
	// fault-free regardless of the float initialization, because the
	// precharge normalizes it.
	o := open4(t)
	grp, _ := o.Float(defect.FloatBitLine)
	for _, sos := range StaticSOSes() {
		for _, u := range []float64{0, 3.3} {
			out, err := RunSOS(testFactory(), o, dram.Default().RWire, grp.Nets, u, sos)
			if err != nil {
				t.Fatalf("RunSOS(%q, U=%g): %v", sos, u, err)
			}
			if _, faulty := ClassifyOutcome(sos, out); faulty {
				t.Errorf("healthy column faulty for SOS %q at U=%g: %+v", sos, u, out)
			}
		}
	}
}

func TestSweepPlaneValidation(t *testing.T) {
	if _, err := SweepPlane(SweepConfig{}); err == nil {
		t.Error("empty grid must error")
	}
}

func TestProbeRDefs(t *testing.T) {
	in := []float64{1, 2, 3, 4, 5}
	out := probeRDefs(in, 2)
	if len(out) != 2 || out[0] != 1 || out[1] != 5 {
		t.Errorf("probeRDefs = %v, want [1 5]", out)
	}
	if got := probeRDefs([]float64{7}, 3); len(got) != 1 || got[0] != 7 {
		t.Errorf("probeRDefs short input = %v", got)
	}
}
