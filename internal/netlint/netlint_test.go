package netlint

import (
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/device"
	"github.com/memtest/partialfaults/internal/lint"
)

func analyze(t *testing.T, build func(ckt *circuit.Circuit)) lint.Findings {
	t.Helper()
	ckt := circuit.New()
	build(ckt)
	ckt.Freeze()
	return New(ckt, Model{CutoffOhms: 1e9}).Check()
}

func rules(fs lint.Findings) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func wantRule(t *testing.T, fs lint.Findings, rule string, sev lint.Severity) lint.Finding {
	t.Helper()
	hits := fs.ByRule(rule)
	if len(hits) == 0 {
		t.Fatalf("no %s finding; got %v", rule, rules(fs))
	}
	if hits[0].Severity != sev {
		t.Fatalf("%s severity = %s, want %s", rule, hits[0].Severity, sev)
	}
	return hits[0]
}

// A net reachable only through a capacitor has no DC path in any
// switching state: a construction bug the prover must catch.
func TestFloatingNet(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		vdd := ckt.Node("vdd")
		lost := ckt.Node("lost")
		ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(1.8)))
		ckt.MustAdd(device.NewCapacitor("C1", lost, 0, 1e-15))
	})
	f := wantRule(t, fs, "floating-net", lint.Error)
	if f.Subject != "lost" {
		t.Errorf("subject = %q, want lost", f.Subject)
	}
}

// A gated channel counts as a potential drive path: a storage node
// behind an access transistor is not floating (merely gmin-dependent).
func TestGatedPathIsNotFloating(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		bl := ckt.Node("bl")
		cell := ckt.Node("cell")
		wl := ckt.Node("wl")
		ckt.MustAdd(device.NewVSource("Vbl", bl, 0, device.DC(0.9)))
		ckt.MustAdd(device.NewVSource("Vwl", wl, 0, device.DC(1.8)))
		ckt.MustAdd(device.NewSwitch("S1", bl, cell, wl, 0, 0.9, 1e3, 1e12))
	})
	if hits := fs.ByRule("floating-net"); len(hits) != 0 {
		t.Fatalf("gated storage node flagged floating: %v", hits)
	}
	// ...but it must show up as gmin-dependent, which is informational.
	f := wantRule(t, fs, "gmin-dependent", lint.Info)
	if !strings.Contains(f.Message, "cell") {
		t.Errorf("gmin finding should list the storage node: %s", f.Message)
	}
}

// A resistor at or above the cutoff is statically an open: the net
// behind it floats.
func TestCutoffTurnsResistorIntoOpen(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		a := ckt.Node("a")
		b := ckt.Node("b")
		ckt.MustAdd(device.NewVSource("V1", a, 0, device.DC(1)))
		ckt.MustAdd(device.NewResistor("Ropen", a, b, 1e12))
	})
	f := wantRule(t, fs, "floating-net", lint.Error)
	if f.Subject != "b" {
		t.Errorf("subject = %q, want b", f.Subject)
	}
}

// Two voltage sources between the same pair of nets close a
// source-only loop: the MNA system is singular.
func TestVSourceLoop(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		n := ckt.Node("n")
		ckt.MustAdd(device.NewVSource("V1", n, 0, device.DC(1.8)))
		ckt.MustAdd(device.NewVSource("V2", n, 0, device.DC(1.8)))
	})
	f := wantRule(t, fs, "vsource-loop", lint.Error)
	if f.Subject != "V2" {
		t.Errorf("subject = %q, want the loop-closing V2", f.Subject)
	}
}

// A chain of sources through intermediate nets is also a loop.
func TestVSourceLoopThroughChain(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		a := ckt.Node("a")
		b := ckt.Node("b")
		ckt.MustAdd(device.NewVSource("V1", a, 0, device.DC(1)))
		ckt.MustAdd(device.NewVSource("V2", b, a, device.DC(1)))
		ckt.MustAdd(device.NewVSource("V3", b, 0, device.DC(2)))
	})
	wantRule(t, fs, "vsource-loop", lint.Error)
}

// A net declared but touched by no element is dangling.
func TestDanglingNet(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		vdd := ckt.Node("vdd")
		ckt.Node("orphan")
		ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(1.8)))
	})
	f := wantRule(t, fs, "dangling-net", lint.Error)
	if f.Subject != "orphan" {
		t.Errorf("subject = %q, want orphan", f.Subject)
	}
}

// A current source pushing into a net with no unconditional DC return
// path relies on gmin to balance its KCL row.
func TestISourceFloat(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		n := ckt.Node("n")
		g := ckt.Node("g")
		ckt.MustAdd(device.NewVSource("Vg", g, 0, device.DC(0)))
		ckt.MustAdd(device.NewISource("I1", n, 0, device.DC(1e-6)))
		ckt.MustAdd(device.NewSwitch("S1", n, 0, g, 0, 0.9, 1e3, 1e12))
	})
	wantRule(t, fs, "isource-float", lint.Warning)
}

// An element without topology information makes the floating-net proof
// impossible; the analyzer must say so rather than silently pass it.
type opaqueElem struct{ name string }

func (o opaqueElem) Name() string                    { return o.name }
func (o opaqueElem) Stamp(ctx *circuit.StampContext) {}

func TestOpaqueElement(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		vdd := ckt.Node("vdd")
		ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(1.8)))
		ckt.MustAdd(opaqueElem{name: "X1"})
	})
	f := wantRule(t, fs, "opaque-element", lint.Error)
	if f.Subject != "X1" {
		t.Errorf("subject = %q, want X1", f.Subject)
	}
}

// A well-formed divider plus source produces no findings at all.
func TestCleanCircuit(t *testing.T) {
	fs := analyze(t, func(ckt *circuit.Circuit) {
		vdd := ckt.Node("vdd")
		mid := ckt.Node("mid")
		ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(1.8)))
		ckt.MustAdd(device.NewResistor("R1", vdd, mid, 1e3))
		ckt.MustAdd(device.NewResistor("R2", mid, 0, 1e3))
	})
	if len(fs) != 0 {
		t.Fatalf("clean circuit produced findings: %v", fs)
	}
}
