package netlint

import (
	"fmt"
	"sort"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/lint"
)

// This file implements the phase-aware floating-line prediction: given a
// set of cut elements (the resistive opens of the paper's Figure 2), it
// computes which nets lose every drive path in all of their responsible
// phases — the static counterpart of the paper's Section 2 floating-line
// analysis, checkable against the Table 1 inventory without simulating.

// Prediction is the floating-line set predicted for one defect.
type Prediction struct {
	// Primary nets lose all drive paths even with every control (gate)
	// net at its healthy level: the open breaks the drive path itself.
	Primary []string
	// Secondary nets lose drive only because a control net floats first
	// (e.g. the paper's Open 9: the word line floats, so the access
	// transistor never opens and the cell is cut off indirectly).
	Secondary []string
	// Unknown lists role nets the model names but the circuit does not
	// have. VerifyModel reports them as errors; they are surfaced here
	// too so a caller that skips verification cannot mistake "net not
	// found" for "net not floating".
	Unknown []string
}

// levelsFor resolves the phase's control-net levels onto node indices and
// propagates them through firm (below-cutoff, uncut) resistive paths, so
// a level asserted on a driver net reaches the gate it controls. Unknown
// stays unknown; gated channels with unknown gates do not conduct.
func (a *Analyzer) levelsFor(p Phase, cut map[string]bool) map[int]bool {
	known := map[int]bool{}
	var seeds []int
	for net, high := range p.Levels {
		idx, ok := a.ckt.NodeIndex(net)
		if !ok {
			continue // reported by VerifyModel
		}
		known[idx] = high
		seeds = append(seeds, idx)
	}
	adj := make(map[int][]int)
	for _, e := range a.edges {
		if e.kind == circuit.PathConductive && !a.cutOff(e) && !cut[e.elem] {
			adj[e.a] = append(adj[e.a], e.b)
			adj[e.b] = append(adj[e.b], e.a)
		}
	}
	for len(seeds) > 0 {
		n := seeds[0]
		seeds = seeds[1:]
		for _, m := range adj[n] {
			if _, ok := known[m]; !ok {
				known[m] = known[n]
				seeds = append(seeds, m)
			}
		}
	}
	return known
}

// driven computes the set of nodes with a DC drive path to ground during
// phase p, with the given elements cut. Gate levels are resolved on the
// graph selected by gateCut (pass nil to resolve with healthy wiring,
// i.e. ask "what would conduct if control reached every gate"; pass cut
// to model gates starved by the defect itself). Latches join the
// conducting graph iff their rail requirements hold, iterated to a
// fixpoint because one latch turning on can connect another's rails.
func (a *Analyzer) driven(p Phase, cut, gateCut map[string]bool) []bool {
	seen, _ := a.drivenWith(p, cut, gateCut, nil)
	return seen
}

// drivenWith is driven with an additional merge set: elements whose
// conduction branches are treated as hard shorts regardless of gate
// state or resistance — the graph form of a short/bridge defect. It
// also returns the latch-enablement fixpoint, which the merge analysis
// needs to tell regenerating drivers from passive wires.
func (a *Analyzer) drivenWith(p Phase, cut, gateCut, merge map[string]bool) ([]bool, map[string]bool) {
	levels := a.levelsFor(p, gateCut)
	latchOn := map[string]bool{}
	conducts := func(e edge) bool {
		if merge[e.elem] {
			return e.kind != circuit.PathSense
		}
		if cut[e.elem] {
			return false
		}
		switch e.kind {
		case circuit.PathConductive:
			return !a.cutOff(e)
		case circuit.PathSource:
			return true
		case circuit.PathGated:
			if latchOn[e.elem] {
				return true
			}
			lvl, ok := levels[e.gate]
			return ok && lvl == e.activeHigh
		}
		return false
	}
	for {
		seen := a.reach([]int{0}, conducts)
		changed := false
		for _, l := range a.model.Latches {
			if !l.activeIn(p.Name) || a.latchEnabled(l, latchOn) {
				continue
			}
			ok := true
			for _, pair := range l.Requires {
				x, okx := a.ckt.NodeIndex(pair[0])
				y, oky := a.ckt.NodeIndex(pair[1])
				if !okx || !oky || !a.connected(x, y, conducts) {
					ok = false
					break
				}
			}
			if ok {
				for _, name := range l.Elements {
					latchOn[name] = true
				}
				changed = true
			}
		}
		if !changed {
			return seen, latchOn
		}
	}
}

// activeIn reports whether the latch may regenerate in the named phase.
func (l Latch) activeIn(phase string) bool {
	if len(l.ActiveIn) == 0 {
		return true
	}
	for _, name := range l.ActiveIn {
		if name == phase {
			return true
		}
	}
	return false
}

// latchEnabled reports whether every channel of the latch is already on.
func (a *Analyzer) latchEnabled(l Latch, on map[string]bool) bool {
	for _, name := range l.Elements {
		if !on[name] {
			return false
		}
	}
	return true
}

// connected reports whether nodes x and y are in one component of the
// graph admitted by keep.
func (a *Analyzer) connected(x, y int, keep func(edge) bool) bool {
	if x == y {
		return true
	}
	return a.reach([]int{x}, keep)[y]
}

// PredictFloats predicts which role-bearing nets float when the named
// elements are cut (opened). A net floats primarily when, in every phase
// responsible for it, the cut removes all drive paths even with healthy
// control levels; it floats secondarily when drive survives under healthy
// control but is lost once control levels themselves propagate through
// the cut wiring (control starved by the defect).
func (a *Analyzer) PredictFloats(cutElems []string) Prediction {
	cut := map[string]bool{}
	for _, name := range cutElems {
		cut[name] = true
	}
	return a.predictFloats(cut, nil)
}

// predictFloats is the shared core of the open (cut) and short/bridge
// (merge) predictions: the same role-aware drive analysis, run on a
// graph with the cut elements removed and the merge elements hard-
// conducting.
func (a *Analyzer) predictFloats(cut, merge map[string]bool) Prediction {
	phases := map[string]Phase{}
	for _, p := range a.model.Phases {
		phases[p.Name] = p
	}

	drivenIn := map[string][]bool{} // phase → healthy-gate driven set under cut
	drivenActual := map[string][]bool{}
	for name, p := range phases {
		drivenIn[name], _ = a.drivenWith(p, cut, nil, merge)
		drivenActual[name], _ = a.drivenWith(p, cut, cut, merge)
	}

	var pred Prediction
	for net, roles := range a.model.Roles {
		idx, ok := a.ckt.NodeIndex(net)
		if !ok {
			// Also reported as a model-unknown-net error by VerifyModel;
			// named here so skipping verification cannot silently turn a
			// missing net into a "does not float" verdict.
			pred.Unknown = append(pred.Unknown, net)
			continue
		}
		lostPrimary, lostActual := true, true
		for _, phase := range roles {
			if d, ok := drivenIn[phase]; ok && d[idx] {
				lostPrimary = false
			}
			if d, ok := drivenActual[phase]; ok && d[idx] {
				lostActual = false
			}
		}
		switch {
		case lostPrimary:
			pred.Primary = append(pred.Primary, net)
		case lostActual:
			pred.Secondary = append(pred.Secondary, net)
		}
	}
	sort.Strings(pred.Primary)
	sort.Strings(pred.Secondary)
	sort.Strings(pred.Unknown)
	return pred
}

// VerifyModel cross-checks the phase model against the netlist: every
// net and control net the model names must exist, every latch element
// must be a gated element of the circuit, every role must reference a
// declared phase, and — the substantive check — every role-bearing net
// must actually be driven in each of its responsible phases on the
// healthy circuit. A violation means the model has drifted from the
// netlist and any prediction from it would be fiction.
func (a *Analyzer) VerifyModel() lint.Findings {
	var out lint.Findings
	add := func(rule, subject, msg string) {
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: rule, Severity: lint.Error,
			Subject: subject, Message: msg,
		})
	}
	phaseNames := map[string]bool{}
	for _, p := range a.model.Phases {
		phaseNames[p.Name] = true
		for net := range p.Levels {
			if _, ok := a.ckt.NodeIndex(net); !ok {
				add("model-unknown-net", net, fmt.Sprintf("phase %q asserts a level on a net the circuit does not have", p.Name))
			}
		}
	}
	gated := map[string]bool{}
	for _, e := range a.edges {
		if e.kind == circuit.PathGated {
			gated[e.elem] = true
		}
	}
	for _, l := range a.model.Latches {
		for _, name := range l.Elements {
			if !gated[name] {
				add("model-unknown-element", name, "latch element is not a gated element of the circuit")
			}
		}
		for _, pair := range l.Requires {
			for _, net := range pair[:] {
				if _, ok := a.ckt.NodeIndex(net); !ok {
					add("model-unknown-net", net, "latch requirement references a net the circuit does not have")
				}
			}
		}
	}

	healthy := map[string][]bool{}
	for _, p := range a.model.Phases {
		healthy[p.Name] = a.driven(p, nil, nil)
	}
	for net, roles := range a.model.Roles {
		idx, ok := a.ckt.NodeIndex(net)
		if !ok {
			add("model-unknown-net", net, "role references a net the circuit does not have")
			continue
		}
		for _, phase := range roles {
			if !phaseNames[phase] {
				add("model-unknown-phase", net, fmt.Sprintf("role references undeclared phase %q", phase))
				continue
			}
			if !healthy[phase][idx] {
				add("model-undriven-role", net, fmt.Sprintf("net is not driven during its responsible phase %q on the healthy circuit; the role (or the phase's levels) is wrong", phase))
			}
		}
	}
	out.Sort()
	return out
}
