package netlint_test

// Multi-defect and weak-merge prover tests: transitive contraction
// across simultaneous defects, rail-pair detection, the weak divider
// verdicts on circuits small enough to solve by hand, and the MergeSpec
// validation surface.

import (
	"math"
	"testing"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/device"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/netlint"
)

// dividerCircuit is the shared synthetic fixture: a 3.3 V rail feeding
// a symmetric 1 kΩ / 1 kΩ divider at "out" (own drive 2 mS, open-circuit
// 1.65 V), plus a bridge element of the given resistance from out to the
// rail and a pair of capacitor-only nets x–y joined by R_iso.
func dividerCircuit(t *testing.T, bridgeOhms float64) *netlint.Analyzer {
	t.Helper()
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	out := ckt.Node("out")
	x := ckt.Node("x")
	y := ckt.Node("y")
	ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(3.3)))
	ckt.MustAdd(device.NewResistor("R_a", vdd, out, 1e3))
	ckt.MustAdd(device.NewResistor("R_b", out, 0, 1e3))
	ckt.MustAdd(device.NewResistor("R_weak", out, vdd, bridgeOhms))
	ckt.MustAdd(device.NewCapacitor("C_x", x, 0, 1e-15))
	ckt.MustAdd(device.NewCapacitor("C_y", y, 0, 1e-15))
	ckt.MustAdd(device.NewResistor("R_iso", x, y, 5e4))
	ckt.Freeze()
	return netlint.New(ckt, netlint.Model{
		Phases:     []netlint.Phase{{Name: "on"}},
		Roles:      map[string][]string{"out": {"on"}},
		CutoffOhms: 1e9,
		NetVolts:   map[string]float64{"vdd": 3.3},
	})
}

// TestPredictMergeSetTransitiveRailPair proves the core multi-defect
// property: two shorts, each individually benign (vdd–mid and mid–gnd),
// transitively contract both rails into one class that no single-defect
// analysis can see, and CheckMergeSet reports the supply pair at error
// severity.
func TestPredictMergeSetTransitiveRailPair(t *testing.T) {
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	mid := ckt.Node("mid")
	out := ckt.Node("out")
	ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(3.3)))
	ckt.MustAdd(device.NewResistor("R_load", vdd, out, 1e3))
	ckt.MustAdd(device.NewResistor("R_gnd", out, 0, 1e3))
	ckt.MustAdd(device.NewResistor("R_s1", vdd, mid, 10))
	ckt.MustAdd(device.NewResistor("R_s2", mid, 0, 10))
	ckt.Freeze()
	az := netlint.New(ckt, netlint.Model{
		Phases: []netlint.Phase{{Name: "on"}},
		Roles:  map[string][]string{"out": {"on"}, "mid": {"on"}},
	})

	spec := netlint.MergeSpec{Elems: []netlint.MergeElem{{Name: "R_s1"}, {Name: "R_s2"}}}
	pred, err := az.PredictMergeSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Classes) != 1 {
		t.Fatalf("got %d classes, want 1 transitive class: %+v", len(pred.Classes), pred.Classes)
	}
	mc := pred.Classes[0]
	if mc.Name != "0=mid=vdd" {
		t.Errorf("class = %q, want 0=mid=vdd", mc.Name)
	}
	if len(mc.Supplies) != 2 {
		t.Errorf("supplies = %v, want both rails", mc.Supplies)
	}

	fs := az.CheckMergeSet(spec)
	if n := len(fs.ByRule("merge-supply-pair")); n != 1 {
		t.Fatalf("merge-supply-pair findings = %d, want 1: %v", n, fs)
	}
	if fs.Count(lint.Error) == 0 {
		t.Error("a transitively merged rail pair must be an error-severity finding")
	}

	// Each short alone must NOT produce the rail pair — the property is
	// genuinely transitive.
	for _, elem := range []string{"R_s1", "R_s2"} {
		single, err := az.PredictMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{{Name: elem}}})
		if err != nil {
			t.Fatal(err)
		}
		for _, mc := range single.Classes {
			if len(mc.Supplies) > 1 {
				t.Errorf("%s alone already merges supplies %v; the pair test is vacuous", elem, mc.Supplies)
			}
		}
	}
}

// TestPredictMergeSetColumnDouble pins the double-defect contraction on
// the real column: the cell-ground short and the cell-cell bridge
// together pull both storage nodes and ground into one transitive
// class.
func TestPredictMergeSetColumnDouble(t *testing.T) {
	az := columnAnalyzer(t)
	pred, err := az.PredictMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{
		{Name: dram.SiteElementName(dram.SiteShortCellGnd)},
		{Name: dram.SiteElementName(dram.SiteBridgeCells)},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pred.Classes) != 1 || pred.Classes[0].Name != "0=c0s=c1s" {
		t.Fatalf("classes = %+v, want the single transitive class 0=c0s=c1s", pred.Classes)
	}
	if s := pred.Classes[0].Supplies; len(s) != 1 || s[0] != "0" {
		t.Errorf("supplies = %v, want [0]", s)
	}
	if got := pred.Classes[0].Verdicts["precharge"]; got != netlint.VerdictStuck {
		t.Errorf("precharge verdict = %s, want stuck", got)
	}
	if len(pred.Floats.Primary)+len(pred.Floats.Secondary)+len(pred.Floats.Unknown) != 0 {
		t.Errorf("double defect predicts floats %+v; merges must not create floating voltages", pred.Floats)
	}
}

// TestWeakDividerVerdicts checks the weak-merge analysis against
// hand-solved circuits: the 1.5 kΩ bridge is within the weak ratio of
// the divider's own 2 mS drive (contested, loaded voltage exactly
// 2.0625 V), the 20 kΩ bridge is dominated (driven, 1.690 V), and a
// bridge between two capacitor-only nets is isolated.
func TestWeakDividerVerdicts(t *testing.T) {
	cases := []struct {
		name       string
		bridgeOhms float64
		verdict    netlint.ClassVerdict
		voltA      float64 // loaded voltage at "out"; NaN = unchecked
	}{
		{"contested", 1.5e3, netlint.VerdictWeakContested, 2.0625},
		{"driven", 2e4, netlint.VerdictWeakDriven, 3.465e-3 / 2.05e-3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			az := dividerCircuit(t, tc.bridgeOhms)
			pred, err := az.PredictMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{
				{Name: "R_weak", Ohms: tc.bridgeOhms},
			}})
			if err != nil {
				t.Fatal(err)
			}
			if len(pred.Weak) != 1 || len(pred.Classes) != 0 {
				t.Fatalf("weak=%d classes=%d, want exactly one weak merge and no hard class", len(pred.Weak), len(pred.Classes))
			}
			wm := pred.Weak[0]
			if got := wm.Verdicts["on"]; got != tc.verdict {
				t.Errorf("verdict = %s, want %s (A: G=%.3g V=%.3g, B: G=%.3g V=%.3g)",
					got, tc.verdict,
					wm.A.Conductance["on"], wm.A.Volts["on"],
					wm.B.Conductance["on"], wm.B.Volts["on"])
			}
			outIdx := 0
			if wm.A.Net != "out" {
				outIdx = 1
			}
			if got := wm.Volts["on"][outIdx]; math.Abs(got-tc.voltA) > 1e-9 {
				t.Errorf("loaded V(out) = %.6f, want %.6f (exact nodal solution)", got, tc.voltA)
			}
		})
	}

	// The capacitor-only pair: neither side reaches an anchor, so the
	// bridge resolves nothing — isolated, with NaN voltages.
	az := dividerCircuit(t, 1.5e3)
	pred, err := az.PredictMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{
		{Name: "R_iso", Ohms: 5e4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	wm := pred.Weak[0]
	if got := wm.Verdicts["on"]; got != netlint.VerdictIsolated {
		t.Errorf("capacitor-only bridge verdict = %s, want isolated", got)
	}
	if v := wm.Volts["on"]; !math.IsNaN(v[0]) || !math.IsNaN(v[1]) {
		t.Errorf("isolated bridge voltages = %v, want NaN pair", v)
	}
}

// TestWeakContestedFinding checks the findings surface: a contested
// divider yields the merge-weak info line plus the merge-weak-contested
// warning, and a dominated one yields only the info line.
func TestWeakContestedFinding(t *testing.T) {
	az := dividerCircuit(t, 1.5e3)
	fs := az.CheckMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{{Name: "R_weak", Ohms: 1.5e3}}})
	if len(fs.ByRule("merge-weak")) != 1 {
		t.Errorf("want one merge-weak info finding: %v", fs)
	}
	if len(fs.ByRule("merge-weak-contested")) != 1 {
		t.Errorf("want one merge-weak-contested warning: %v", fs)
	}

	az = dividerCircuit(t, 2e4)
	fs = az.CheckMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{{Name: "R_weak", Ohms: 2e4}}})
	if len(fs.ByRule("merge-weak")) != 1 {
		t.Errorf("want one merge-weak info finding: %v", fs)
	}
	if len(fs.ByRule("merge-weak-contested")) != 0 {
		t.Errorf("dominated divider must not warn: %v", fs)
	}
}

// TestMergeSpecValidation covers the spec-level error surface.
func TestMergeSpecValidation(t *testing.T) {
	az := columnAnalyzer(t)
	short := dram.SiteElementName(dram.SiteShortCellGnd)

	if _, err := az.PredictMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{
		{Name: short}, {Name: short},
	}}); err == nil {
		t.Error("duplicate elements must be an error")
	}
	if _, err := az.PredictMergeSet(netlint.MergeSpec{Elems: []netlint.MergeElem{
		{Name: short, Ohms: 1e12},
	}}); err == nil {
		t.Error("a bridge at or above the conductive cutoff is an open, not a merge; must be an error")
	}
	if _, err := az.PredictMergeSet(netlint.MergeSpec{}); err == nil {
		t.Error("an empty element set must be an error")
	}
}

// TestParseVerdictRoundTrip: ParseVerdict must invert String for every
// verdict — the catalog declares verdicts as strings, and the
// differential tests depend on the bijection.
func TestParseVerdictRoundTrip(t *testing.T) {
	all := []netlint.ClassVerdict{
		netlint.VerdictIsolated, netlint.VerdictDriven, netlint.VerdictStuck,
		netlint.VerdictContested, netlint.VerdictWeakDriven, netlint.VerdictWeakContested,
	}
	for _, v := range all {
		got, err := netlint.ParseVerdict(v.String())
		if err != nil {
			t.Errorf("ParseVerdict(%q): %v", v.String(), err)
			continue
		}
		if got != v {
			t.Errorf("ParseVerdict(%q) = %v, want %v", v.String(), got, v)
		}
	}
	if _, err := netlint.ParseVerdict("no-such-verdict"); err == nil {
		t.Error("unknown verdict string must be an error")
	}
}

// TestMergeScenarioCatalogShape sanity-checks the catalog the
// differential harness sweeps: at least two multi-defect entries, at
// least two weak entries, and every entry convertible to a MergeSpec
// the prover accepts.
func TestMergeScenarioCatalogShape(t *testing.T) {
	az := columnAnalyzer(t)
	multi, weakN := 0, 0
	for _, sc := range defect.MergeScenarios() {
		if len(sc.Sites) > 1 {
			multi++
		}
		if len(sc.Weak) > 0 {
			weakN++
		}
		var spec netlint.MergeSpec
		for _, s := range sc.Sites {
			spec.Elems = append(spec.Elems, netlint.MergeElem{Name: dram.SiteElementName(s.Site), Ohms: s.Ohms})
		}
		if _, err := az.PredictMergeSet(spec); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
	}
	if multi < 2 {
		t.Errorf("catalog has %d multi-defect scenarios, want ≥2", multi)
	}
	if weakN < 2 {
		t.Errorf("catalog has %d weak scenarios, want ≥2", weakN)
	}
}
