package netlint

import (
	"fmt"
	"sort"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/lint"
)

// This file implements the net-merge analysis: the static prediction of
// what one or more short/bridge defects do to the circuit. An open cuts
// a conduction path; a short or bridge is the dual transform — it adds
// one, identifying two previously distinct nets into one electrical
// node. The analysis contracts the circuit graph with a union-find over
// ALL the defect-site edges at once and re-runs the phase-aware drive
// classification on the contracted graph, yielding per scenario and per
// phase:
//
//   - which nets become electrically identified (the merged classes),
//     including classes that only arise transitively — two shorts that
//     individually touch different rails can join vdd and gnd into one
//     rail-pair class,
//   - whether each class is supply-stuck (the short itself enforces a
//     rail value and nothing fights it) or contested (two independent
//     drivers meet in one class — a voltage-divider fight whose outcome
//     depends on drive strengths, not a float),
//   - that no floating group appears — the static form of the paper's
//     Section 2 negative result: "shorts and bridges do not restrict
//     current flow and do not result in floating voltages".
//
// The stuck/contested distinction rests on per-member anchor sets. An
// anchor is a place where an ideal voltage is imposed on the graph:
// ground, any net held by a voltage source, and — crucially — each
// output of an enabled sense-amplifier latch, which acts as an
// independent driver distinct from the rails that power it. For every
// member of a merged class the analysis collects the anchors reachable
// from that member through the phase's conducting graph WITHOUT the
// defect edges (each member's "own" drive), never traversing through a
// source or a latch channel: a source edge is where voltage is imposed,
// not a wire, and an enabled latch is a regenerating driver, not a
// passive path. Two members with different non-empty anchor sets are
// two independent drivers shorted together — contested.
//
// Defect elements whose resistance exceeds the hard threshold but stays
// below the model's CutoffOhms are WEAK merges: too resistive to
// contract outright, too conductive to ignore. They are analyzed as
// voltage dividers instead — see weak.go for the Thevenin-equivalent
// machinery behind VerdictWeakDriven / VerdictWeakContested.

// ClassVerdict classifies one merged net class (or one weak-merge
// divider) in one phase.
type ClassVerdict int

const (
	// VerdictIsolated: no member of the class reaches any anchor — the
	// class holds state capacitively this phase (e.g. two bridged
	// storage cells with both word lines low). Benign per phase; the
	// role-aware float check proves it is driven in its home phases.
	VerdictIsolated ClassVerdict = iota
	// VerdictDriven: the class is driven by a single consistent set of
	// anchors — members that are driven at all agree on where the
	// voltage comes from. Healthy-equivalent behavior.
	VerdictDriven
	// VerdictStuck: every anchor the class reaches is a supply inside
	// the class itself — the short enforces the rail value and nothing
	// fights it. The paper's hard stuck-at behavior.
	VerdictStuck
	// VerdictContested: two members reach different non-empty anchor
	// sets — independent drivers merged into a voltage-divider fight.
	// The resolved voltage depends on relative drive strength.
	VerdictContested
	// VerdictWeakDriven: a sub-cutoff resistive bridge whose divider is
	// dominated by one side — either only one side is anchored at all,
	// both sides agree on their drive, or one side's conductance
	// outweighs the drive arriving through the bridge by more than the
	// configured WeakRatio. The dominated endpoint settles near the
	// dominant side's voltage.
	VerdictWeakDriven
	// VerdictWeakContested: both sides of a weak merge are anchored at
	// different targets and, at some endpoint, the drive arriving
	// through the bridge is within WeakRatio of the endpoint's own
	// drive — the divider midpoint sits between the targets and the
	// outcome depends on the actual resistances, the analog regime the
	// paper's hard stuck-at model cannot express.
	VerdictWeakContested
)

// String returns the verdict name used in findings and reports.
func (v ClassVerdict) String() string {
	switch v {
	case VerdictIsolated:
		return "isolated"
	case VerdictDriven:
		return "driven"
	case VerdictStuck:
		return "stuck"
	case VerdictContested:
		return "contested"
	case VerdictWeakDriven:
		return "weak-driven"
	case VerdictWeakContested:
		return "weak-contested"
	}
	return fmt.Sprintf("ClassVerdict(%d)", int(v))
}

// ParseVerdict maps a verdict name back to its value — the inverse of
// String, used by catalogs that declare expected verdicts as text.
func ParseVerdict(s string) (ClassVerdict, error) {
	for _, v := range []ClassVerdict{VerdictIsolated, VerdictDriven, VerdictStuck, VerdictContested, VerdictWeakDriven, VerdictWeakContested} {
		if v.String() == s {
			return v, nil
		}
	}
	return 0, fmt.Errorf("netlint: unknown verdict %q", s)
}

// MergeElem names one defect element of a merge scenario together with
// its bridging resistance. Ohms at or below the spec's hard threshold
// (zero means an ideal short) contracts the element's branch outright; a
// larger sub-cutoff value makes it a weak merge analyzed as a divider.
type MergeElem struct {
	Name string
	Ohms float64
}

// MergeSpec describes a set of simultaneous short/bridge defects to
// analyze as one scenario.
type MergeSpec struct {
	// Elems are the defect elements, hard and weak mixed freely.
	Elems []MergeElem
	// HardOhms is the resistance at or below which a defect element is
	// contracted as an ideal short. Zero means DefaultHardOhms.
	HardOhms float64
	// WeakRatio is the conductance ratio within which a weak merge's two
	// sides count as comparable drivers (weak-contested). Zero means
	// DefaultWeakRatio.
	WeakRatio float64
}

const (
	// DefaultHardOhms is the hard-contraction threshold when MergeSpec
	// leaves HardOhms zero: a bridge at or below 1 kΩ is comparable to a
	// channel on-resistance and behaves as the paper's ideal short.
	DefaultHardOhms = 1e3
	// DefaultWeakRatio is the contested-band conductance ratio when
	// MergeSpec leaves WeakRatio zero.
	DefaultWeakRatio = 4.0
)

// MergedClass is one equivalence class of nets identified by the merge.
type MergedClass struct {
	// Nets are the member net names, ground first then sorted.
	Nets []string
	// Name is the canonical display name (circuit.MergeName(Nets)).
	Name string
	// Supplies are the members that impose an ideal voltage themselves:
	// ground or nets held by a voltage source. Two supplies in one
	// class is a rail-to-rail short — contested in every phase.
	Supplies []string
	// Verdicts maps phase name to the class verdict in that phase.
	Verdicts map[string]ClassVerdict
	// Anchors maps phase name to the sorted union of anchor identifiers
	// the class reaches in that phase (diagnostic detail behind the
	// verdict; latch outputs appear as "latch:<net>").
	Anchors map[string][]string

	members []int // node indices, for the per-phase classification
}

// MergePrediction is the full static prediction for one merge scenario.
type MergePrediction struct {
	// Elems are the analyzed defect elements in spec order.
	Elems []string
	// Classes are the hard-merged net classes, sorted by Name.
	Classes []MergedClass
	// Weak are the weak-merge divider analyses, sorted by element name.
	Weak []WeakMerge
	// Phases are the model's phase names in declaration order.
	Phases []string
	// Floats is the role-aware floating prediction on the merged graph.
	// The paper's Section 2 negative result is exactly: all fields
	// empty — merging nets adds conduction paths and can never cut one.
	Floats Prediction
}

// PredictMerges contracts the graph over the named elements' conduction
// branches (treating them all as hard shorts regardless of their present
// resistance) and classifies every resulting merged class per phase —
// the single-threshold entry point kept for callers that predate
// MergeSpec.
func (a *Analyzer) PredictMerges(mergeElems []string) (MergePrediction, error) {
	spec := MergeSpec{}
	for _, name := range mergeElems {
		spec.Elems = append(spec.Elems, MergeElem{Name: name})
	}
	return a.PredictMergeSet(spec)
}

// PredictMergeSet analyzes a set of simultaneous short/bridge defects:
// hard elements (Ohms ≤ HardOhms) are contracted together under one
// union-find, so transitive classes — including rail pairs joined by two
// distinct shorts — are found; weak elements (HardOhms < Ohms <
// CutoffOhms) get the divider analysis on the contracted graph. It
// errors on unknown or duplicate elements, resistances at or above the
// cutoff (that is an open, not a merge), elements with no conduction
// branch to merge over, and models without phases — all analysis-setup
// bugs, not defect properties.
func (a *Analyzer) PredictMergeSet(spec MergeSpec) (MergePrediction, error) {
	if len(a.model.Phases) == 0 {
		return MergePrediction{}, fmt.Errorf("netlint: merge analysis needs a phase model")
	}
	hardOhms := spec.HardOhms
	if hardOhms == 0 {
		hardOhms = DefaultHardOhms
	}
	weakRatio := spec.WeakRatio
	if weakRatio == 0 {
		weakRatio = DefaultWeakRatio
	}
	defectElems := map[string]bool{}
	hard := map[string]bool{}
	var hardNames []string
	var weakElems []MergeElem
	var names []string
	for _, el := range spec.Elems {
		if a.ckt.Element(el.Name) == nil {
			return MergePrediction{}, fmt.Errorf("netlint: merge element %q is not in the circuit", el.Name)
		}
		if defectElems[el.Name] {
			return MergePrediction{}, fmt.Errorf("netlint: merge element %q listed twice in one scenario", el.Name)
		}
		defectElems[el.Name] = true
		names = append(names, el.Name)
		if a.model.CutoffOhms > 0 && el.Ohms >= a.model.CutoffOhms {
			return MergePrediction{}, fmt.Errorf("netlint: merge element %q at %.3g Ω is at or above the %.3g Ω cutoff — that is an open, not a merge", el.Name, el.Ohms, a.model.CutoffOhms)
		}
		if el.Ohms <= hardOhms {
			hard[el.Name] = true
			hardNames = append(hardNames, el.Name)
		} else {
			weakElems = append(weakElems, el)
		}
	}

	// Union-find contraction over ALL hard elements' non-sense branches
	// at once, so classes joined only transitively still coalesce.
	parent := make([]int, a.nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	merged := 0
	for _, e := range a.edges {
		if !hard[e.elem] || e.kind == circuit.PathSense {
			continue
		}
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			merged++
		}
	}
	if merged == 0 && len(weakElems) == 0 {
		return MergePrediction{}, fmt.Errorf("netlint: elements %v have no conduction branch to merge over", hardNames)
	}
	classNodes := map[int][]int{}
	for n := 0; n < a.nodes; n++ {
		classNodes[find(n)] = append(classNodes[find(n)], n)
	}

	pred := MergePrediction{Elems: names}
	for _, p := range a.model.Phases {
		pred.Phases = append(pred.Phases, p.Name)
	}
	supply := a.supplyNodes()
	for _, members := range classNodes {
		if len(members) < 2 {
			continue
		}
		mc := MergedClass{
			Verdicts: map[string]ClassVerdict{},
			Anchors:  map[string][]string{},
			members:  members,
		}
		for _, n := range members {
			mc.Nets = append(mc.Nets, a.ckt.NodeName(n))
			if supply[n] {
				mc.Supplies = append(mc.Supplies, a.ckt.NodeName(n))
			}
		}
		mc.Name = circuit.MergeName(mc.Nets)
		mc.Nets = splitMergeName(mc.Name)
		sort.Strings(mc.Supplies)
		pred.Classes = append(pred.Classes, mc)
	}
	sort.Slice(pred.Classes, func(i, j int) bool { return pred.Classes[i].Name < pred.Classes[j].Name })

	weak, err := a.newWeakMerges(weakElems, find)
	if err != nil {
		return MergePrediction{}, err
	}
	pred.Weak = weak

	// One phase context per phase, shared by the hard-class verdicts and
	// the weak-merge dividers, so both see the identical conducting graph.
	for _, p := range a.model.Phases {
		pc := a.phaseContext(p, defectElems)
		for i := range pred.Classes {
			mc := &pred.Classes[i]
			verdict, anchors := a.classVerdict(pc, mc.members, supply)
			mc.Verdicts[p.Name] = verdict
			mc.Anchors[p.Name] = anchors
		}
		if len(pred.Weak) > 0 {
			fg := a.firmGraph(pc, find)
			for i := range pred.Weak {
				a.weakPhase(fg, &pred.Weak[i], p.Name, weakRatio)
			}
		}
	}

	// The no-float proof: re-run the role-aware floating prediction with
	// every defect edge conducting (weak ones included — a resistive
	// bridge still conducts DC). Merging only ever adds paths, so any
	// non-empty result means the model itself is inconsistent.
	pred.Floats = a.predictFloats(nil, defectElems)
	return pred, nil
}

// supplyNodes marks every node that imposes an ideal voltage on the
// graph: ground plus each node incident to a voltage-source branch.
func (a *Analyzer) supplyNodes() []bool {
	supply := make([]bool, a.nodes)
	supply[0] = true
	for _, e := range a.edges {
		if e.kind != circuit.PathSource {
			continue
		}
		supply[e.a] = true
		supply[e.b] = true
	}
	return supply
}

// classVerdict classifies one merged class in one phase from the
// members' individual anchor sets, computed on the graph WITHOUT the
// defect edges so each member's own drive is visible. Latch enablement
// is resolved on the merged graph (the defect is present; a short can
// even help a latch's rails connect), but latch channels are never
// traversed — an enabled latch contributes its outputs as distinct
// anchors instead, because a regenerating pair is a driver, not a wire.
func (a *Analyzer) classVerdict(pc *phaseCtx, members []int, supply []bool) (ClassVerdict, []string) {
	sets := make([]map[string]bool, len(members))
	for i, m := range members {
		set := map[string]bool{}
		reached := a.reach([]int{m}, pc.keep)
		for n := 0; n < a.nodes; n++ {
			if reached[n] {
				for _, id := range pc.anchors[n] {
					set[id] = true
				}
			}
		}
		sets[i] = set
	}

	union := map[string]bool{}
	for _, s := range sets {
		for id := range s {
			union[id] = true
		}
	}
	var all []string
	for id := range union {
		all = append(all, id)
	}
	sort.Strings(all)

	verdict := VerdictIsolated
	switch {
	case len(union) == 0:
		verdict = VerdictIsolated
	case contestedSets(sets):
		verdict = VerdictContested
	case subsetOfClassSupplies(all, members, supply, a):
		verdict = VerdictStuck
	default:
		verdict = VerdictDriven
	}
	return verdict, all
}

// contestedSets reports whether two members carry different non-empty
// anchor sets — two independent drivers merged together.
func contestedSets(sets []map[string]bool) bool {
	var ref map[string]bool
	for _, s := range sets {
		if len(s) == 0 {
			continue
		}
		if ref == nil {
			ref = s
			continue
		}
		if !equalSets(ref, s) {
			return true
		}
	}
	return false
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// subsetOfClassSupplies reports whether every anchor id belongs to a
// supply net that is itself a member of the class — i.e. the only drive
// the class sees is the rail the short connected it to.
func subsetOfClassSupplies(anchorIDs []string, members []int, supply []bool, a *Analyzer) bool {
	inClass := map[string]bool{}
	for _, n := range members {
		if supply[n] {
			inClass[a.ckt.NodeName(n)] = true
		}
	}
	for _, id := range anchorIDs {
		if !inClass[id] {
			return false
		}
	}
	return true
}

// splitMergeName recovers the member list from a canonical class name.
func splitMergeName(name string) []string {
	if name == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '=' {
			out = append(out, name[start:i])
			start = i + 1
		}
	}
	return out
}

// CheckMerges runs the merge analysis for one defect's elements (all
// hard) and renders the outcome as findings; see CheckMergeSet.
func (a *Analyzer) CheckMerges(mergeElems []string) lint.Findings {
	spec := MergeSpec{}
	for _, name := range mergeElems {
		spec.Elems = append(spec.Elems, MergeElem{Name: name})
	}
	return a.CheckMergeSet(spec)
}

// CheckMergeSet runs the multi-defect merge analysis and renders the
// outcome as findings:
//
//   - merge-supply-pair (error): a class contains two supply nets — a
//     rail-to-rail short fighting in every phase, including rail pairs
//     joined only transitively by two defects. Unconditionally a
//     netlist/defect-catalog red flag.
//   - merge-float (error): the merged graph shows a floating group.
//     Impossible for a pure merge; means the model is inconsistent.
//   - merge-class (info): one finding per class summarizing the
//     per-phase verdicts, so reports show what the defect does.
//   - merge-weak (info): one finding per weak merge with its per-phase
//     divider verdicts.
//   - merge-weak-contested (warning): a weak merge has at least one
//     weak-contested phase — an analog fight the stuck-at model cannot
//     express; worth a human look.
//
// Analysis-setup failures (unknown element, no phases) are reported as
// merge-analysis errors rather than returned, so the check composes
// with lint drivers that aggregate findings.
func (a *Analyzer) CheckMergeSet(spec MergeSpec) lint.Findings {
	pred, err := a.PredictMergeSet(spec)
	if err != nil {
		var names []string
		for _, el := range spec.Elems {
			names = append(names, el.Name)
		}
		return lint.Findings{{
			Layer: "netlist", Rule: "merge-analysis", Severity: lint.Error,
			Subject: fmt.Sprintf("%v", names), Message: err.Error(),
		}}
	}
	return pred.Findings()
}

// Findings renders the prediction as lint findings (the body of
// CheckMergeSet, exposed so callers that already hold a prediction —
// e.g. the analysis layer's catalog cross-check — need not re-run it).
func (p MergePrediction) Findings() lint.Findings {
	var out lint.Findings
	for _, mc := range p.Classes {
		if len(mc.Supplies) >= 2 {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "merge-supply-pair", Severity: lint.Error,
				Subject: mc.Name,
				Message: fmt.Sprintf("defect merges supply nets %v into one class: a rail-to-rail short contested in every phase", mc.Supplies),
			})
		}
		var perPhase []string
		for _, phase := range p.Phases {
			perPhase = append(perPhase, fmt.Sprintf("%s:%s", phase, mc.Verdicts[phase]))
		}
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: "merge-class", Severity: lint.Info,
			Subject: mc.Name,
			Message: fmt.Sprintf("nets %v become one electrical node; per-phase: %v", mc.Nets, perPhase),
		})
	}
	for _, wm := range p.Weak {
		var perPhase, contested []string
		for _, phase := range p.Phases {
			perPhase = append(perPhase, fmt.Sprintf("%s:%s", phase, wm.Verdicts[phase]))
			if wm.Verdicts[phase] == VerdictWeakContested {
				contested = append(contested, phase)
			}
		}
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: "merge-weak", Severity: lint.Info,
			Subject: wm.Elem,
			Message: fmt.Sprintf("%.3g Ω bridge %s–%s below cutoff forms a divider; per-phase: %v", wm.Ohms, wm.A.Net, wm.B.Net, perPhase),
		})
		if len(contested) > 0 {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "merge-weak-contested", Severity: lint.Warning,
				Subject: wm.Elem,
				Message: fmt.Sprintf("weak bridge %s–%s is contested in phases %v: comparable drive on both sides, the resolved voltage depends on the actual resistances", wm.A.Net, wm.B.Net, contested),
			})
		}
	}
	if len(p.Floats.Primary) > 0 || len(p.Floats.Secondary) > 0 {
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: "merge-float", Severity: lint.Error,
			Subject: fmt.Sprintf("%v", p.Elems),
			Message: fmt.Sprintf("merged graph predicts floating nets (primary %v, secondary %v); a merge can only add conduction paths, so the phase model is inconsistent", p.Floats.Primary, p.Floats.Secondary),
		})
	}
	out.Sort()
	return out
}
