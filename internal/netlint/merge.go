package netlint

import (
	"fmt"
	"sort"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/lint"
)

// This file implements the net-merge analysis: the static prediction of
// what a short or bridge defect does to the circuit. An open cuts a
// conduction path; a short or bridge is the dual transform — it adds
// one, identifying two previously distinct nets into one electrical
// node. The analysis contracts the circuit graph with a union-find over
// the defect-site edges and re-runs the phase-aware drive classification
// on the contracted graph, yielding per defect and per phase:
//
//   - which nets become electrically identified (the merged classes),
//   - whether each class is supply-stuck (the short itself enforces a
//     rail value and nothing fights it) or contested (two independent
//     drivers meet in one class — a voltage-divider fight whose outcome
//     depends on drive strengths, not a float),
//   - that no floating group appears — the static form of the paper's
//     Section 2 negative result: "shorts and bridges do not restrict
//     current flow and do not result in floating voltages".
//
// The stuck/contested distinction rests on per-member anchor sets. An
// anchor is a place where an ideal voltage is imposed on the graph:
// ground, any net held by a voltage source, and — crucially — each
// output of an enabled sense-amplifier latch, which acts as an
// independent driver distinct from the rails that power it. For every
// member of a merged class the analysis collects the anchors reachable
// from that member through the phase's conducting graph WITHOUT the
// merge edges (each member's "own" drive), never traversing through a
// source or a latch channel: a source edge is where voltage is imposed,
// not a wire, and an enabled latch is a regenerating driver, not a
// passive path. Two members with different non-empty anchor sets are
// two independent drivers shorted together — contested.

// ClassVerdict classifies one merged net class in one phase.
type ClassVerdict int

const (
	// VerdictIsolated: no member of the class reaches any anchor — the
	// class holds state capacitively this phase (e.g. two bridged
	// storage cells with both word lines low). Benign per phase; the
	// role-aware float check proves it is driven in its home phases.
	VerdictIsolated ClassVerdict = iota
	// VerdictDriven: the class is driven by a single consistent set of
	// anchors — members that are driven at all agree on where the
	// voltage comes from. Healthy-equivalent behavior.
	VerdictDriven
	// VerdictStuck: every anchor the class reaches is a supply inside
	// the class itself — the short enforces the rail value and nothing
	// fights it. The paper's hard stuck-at behavior.
	VerdictStuck
	// VerdictContested: two members reach different non-empty anchor
	// sets — independent drivers merged into a voltage-divider fight.
	// The resolved voltage depends on relative drive strength.
	VerdictContested
)

// String returns the verdict name used in findings and reports.
func (v ClassVerdict) String() string {
	switch v {
	case VerdictIsolated:
		return "isolated"
	case VerdictDriven:
		return "driven"
	case VerdictStuck:
		return "stuck"
	case VerdictContested:
		return "contested"
	}
	return fmt.Sprintf("ClassVerdict(%d)", int(v))
}

// MergedClass is one equivalence class of nets identified by the merge.
type MergedClass struct {
	// Nets are the member net names, ground first then sorted.
	Nets []string
	// Name is the canonical display name (circuit.MergeName(Nets)).
	Name string
	// Supplies are the members that impose an ideal voltage themselves:
	// ground or nets held by a voltage source. Two supplies in one
	// class is a rail-to-rail short — contested in every phase.
	Supplies []string
	// Verdicts maps phase name to the class verdict in that phase.
	Verdicts map[string]ClassVerdict
	// Anchors maps phase name to the sorted union of anchor identifiers
	// the class reaches in that phase (diagnostic detail behind the
	// verdict; latch outputs appear as "latch:<net>").
	Anchors map[string][]string
}

// MergePrediction is the full static prediction for one short/bridge.
type MergePrediction struct {
	// Elems are the analyzed merge elements (the defect-site resistors).
	Elems []string
	// Classes are the merged net classes, sorted by Name.
	Classes []MergedClass
	// Phases are the model's phase names in declaration order.
	Phases []string
	// Floats is the role-aware floating prediction on the merged graph.
	// The paper's Section 2 negative result is exactly: all fields
	// empty — merging nets adds conduction paths and can never cut one.
	Floats Prediction
}

// PredictMerges contracts the graph over the named elements' conduction
// branches (treating them as hard shorts regardless of their present
// resistance) and classifies every resulting merged class per phase. It
// errors on unknown elements, elements with no conduction branch to
// merge over, and models without phases — all analysis-setup bugs, not
// defect properties.
func (a *Analyzer) PredictMerges(mergeElems []string) (MergePrediction, error) {
	if len(a.model.Phases) == 0 {
		return MergePrediction{}, fmt.Errorf("netlint: merge analysis needs a phase model")
	}
	merge := map[string]bool{}
	for _, name := range mergeElems {
		merge[name] = true
		if a.ckt.Element(name) == nil {
			return MergePrediction{}, fmt.Errorf("netlint: merge element %q is not in the circuit", name)
		}
	}

	// Union-find contraction over the merge elements' non-sense branches.
	parent := make([]int, a.nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	merged := 0
	for _, e := range a.edges {
		if !merge[e.elem] || e.kind == circuit.PathSense {
			continue
		}
		ra, rb := find(e.a), find(e.b)
		if ra != rb {
			parent[ra] = rb
			merged++
		}
	}
	if merged == 0 {
		return MergePrediction{}, fmt.Errorf("netlint: elements %v have no conduction branch to merge over", mergeElems)
	}
	classNodes := map[int][]int{}
	for n := 0; n < a.nodes; n++ {
		classNodes[find(n)] = append(classNodes[find(n)], n)
	}

	pred := MergePrediction{Elems: append([]string(nil), mergeElems...)}
	for _, p := range a.model.Phases {
		pred.Phases = append(pred.Phases, p.Name)
	}
	supply := a.supplyNodes()
	for _, members := range classNodes {
		if len(members) < 2 {
			continue
		}
		mc := MergedClass{
			Verdicts: map[string]ClassVerdict{},
			Anchors:  map[string][]string{},
		}
		for _, n := range members {
			mc.Nets = append(mc.Nets, a.ckt.NodeName(n))
			if supply[n] {
				mc.Supplies = append(mc.Supplies, a.ckt.NodeName(n))
			}
		}
		mc.Name = circuit.MergeName(mc.Nets)
		mc.Nets = splitMergeName(mc.Name)
		sort.Strings(mc.Supplies)
		for _, p := range a.model.Phases {
			verdict, anchors := a.classVerdict(p, members, merge, supply)
			mc.Verdicts[p.Name] = verdict
			mc.Anchors[p.Name] = anchors
		}
		pred.Classes = append(pred.Classes, mc)
	}
	sort.Slice(pred.Classes, func(i, j int) bool { return pred.Classes[i].Name < pred.Classes[j].Name })

	// The no-float proof: re-run the role-aware floating prediction with
	// the merge edges conducting. Merging only ever adds paths, so any
	// non-empty result means the model itself is inconsistent.
	pred.Floats = a.predictFloats(nil, merge)
	return pred, nil
}

// supplyNodes marks every node that imposes an ideal voltage on the
// graph: ground plus each node incident to a voltage-source branch.
func (a *Analyzer) supplyNodes() []bool {
	supply := make([]bool, a.nodes)
	supply[0] = true
	for _, e := range a.edges {
		if e.kind != circuit.PathSource {
			continue
		}
		supply[e.a] = true
		supply[e.b] = true
	}
	return supply
}

// classVerdict classifies one merged class in one phase from the
// members' individual anchor sets, computed on the graph WITHOUT the
// merge edges so each member's own drive is visible. Latch enablement is
// resolved on the merged graph (the defect is present; a short can even
// help a latch's rails connect), but latch channels are never traversed
// — an enabled latch contributes its outputs as distinct anchors
// instead, because a regenerating pair is a driver, not a wire.
func (a *Analyzer) classVerdict(p Phase, members []int, merge map[string]bool, supply []bool) (ClassVerdict, []string) {
	levels := a.levelsFor(p, nil)
	_, latchOn := a.drivenWith(p, nil, nil, merge)

	latchElem := map[string]bool{}
	for _, l := range a.model.Latches {
		for _, name := range l.Elements {
			latchElem[name] = true
		}
	}

	// Anchor identifiers per node: ground, source-held nets (their own
	// name), and enabled-latch outputs ("latch:<net>").
	anchors := make(map[int][]string)
	anchors[0] = []string{circuit.Ground}
	for _, e := range a.edges {
		if e.kind != circuit.PathSource {
			continue
		}
		for _, n := range []int{e.a, e.b} {
			if n != 0 {
				anchors[n] = append(anchors[n], a.ckt.NodeName(n))
			}
		}
	}
	for _, l := range a.model.Latches {
		if !l.activeIn(p.Name) || !a.latchEnabled(l, latchOn) {
			continue
		}
		rail := map[int]bool{}
		for _, pair := range l.Requires {
			for _, net := range pair[:] {
				if idx, ok := a.ckt.NodeIndex(net); ok {
					rail[idx] = true
				}
			}
		}
		elems := map[string]bool{}
		for _, name := range l.Elements {
			elems[name] = true
		}
		for _, e := range a.edges {
			if !elems[e.elem] || e.kind != circuit.PathGated {
				continue
			}
			for _, n := range []int{e.a, e.b} {
				if n != 0 && !rail[n] {
					anchors[n] = append(anchors[n], "latch:"+a.ckt.NodeName(n))
				}
			}
		}
	}

	// The per-member traversal graph: passive conduction only. No merge
	// edges (each member on its own), no source edges (voltage is
	// imposed there, not conducted through), no latch channels (drivers,
	// represented by their anchors).
	keep := func(e edge) bool {
		if merge[e.elem] || latchElem[e.elem] {
			return false
		}
		switch e.kind {
		case circuit.PathConductive:
			return !a.cutOff(e)
		case circuit.PathGated:
			if latchOn[e.elem] {
				return true
			}
			lvl, ok := levels[e.gate]
			return ok && lvl == e.activeHigh
		}
		return false
	}

	sets := make([]map[string]bool, len(members))
	for i, m := range members {
		set := map[string]bool{}
		reached := a.reach([]int{m}, keep)
		for n := 0; n < a.nodes; n++ {
			if reached[n] {
				for _, id := range anchors[n] {
					set[id] = true
				}
			}
		}
		sets[i] = set
	}

	union := map[string]bool{}
	for _, s := range sets {
		for id := range s {
			union[id] = true
		}
	}
	var all []string
	for id := range union {
		all = append(all, id)
	}
	sort.Strings(all)

	verdict := VerdictIsolated
	switch {
	case len(union) == 0:
		verdict = VerdictIsolated
	case contestedSets(sets):
		verdict = VerdictContested
	case subsetOfClassSupplies(all, members, supply, a):
		verdict = VerdictStuck
	default:
		verdict = VerdictDriven
	}
	return verdict, all
}

// contestedSets reports whether two members carry different non-empty
// anchor sets — two independent drivers merged together.
func contestedSets(sets []map[string]bool) bool {
	var ref map[string]bool
	for _, s := range sets {
		if len(s) == 0 {
			continue
		}
		if ref == nil {
			ref = s
			continue
		}
		if !equalSets(ref, s) {
			return true
		}
	}
	return false
}

func equalSets(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// subsetOfClassSupplies reports whether every anchor id belongs to a
// supply net that is itself a member of the class — i.e. the only drive
// the class sees is the rail the short connected it to.
func subsetOfClassSupplies(anchorIDs []string, members []int, supply []bool, a *Analyzer) bool {
	inClass := map[string]bool{}
	for _, n := range members {
		if supply[n] {
			inClass[a.ckt.NodeName(n)] = true
		}
	}
	for _, id := range anchorIDs {
		if !inClass[id] {
			return false
		}
	}
	return true
}

// splitMergeName recovers the member list from a canonical class name.
func splitMergeName(name string) []string {
	if name == "" {
		return nil
	}
	var out []string
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '=' {
			out = append(out, name[start:i])
			start = i + 1
		}
	}
	return out
}

// CheckMerges runs the merge analysis for one defect's elements and
// renders the outcome as findings:
//
//   - merge-supply-pair (error): a class contains two supply nets — a
//     rail-to-rail short fighting in every phase. Unconditionally a
//     netlist/defect-catalog red flag.
//   - merge-float (error): the merged graph shows a floating group.
//     Impossible for a pure merge; means the model is inconsistent.
//   - merge-class (info): one finding per class summarizing the
//     per-phase verdicts, so reports show what the defect does.
//
// Analysis-setup failures (unknown element, no phases) are reported as
// merge-analysis errors rather than returned, so CheckMerges composes
// with lint drivers that aggregate findings.
func (a *Analyzer) CheckMerges(mergeElems []string) lint.Findings {
	pred, err := a.PredictMerges(mergeElems)
	if err != nil {
		return lint.Findings{{
			Layer: "netlist", Rule: "merge-analysis", Severity: lint.Error,
			Subject: fmt.Sprintf("%v", mergeElems), Message: err.Error(),
		}}
	}
	return pred.Findings()
}

// Findings renders the prediction as lint findings (the body of
// CheckMerges, exposed so callers that already hold a prediction — e.g.
// the analysis layer's catalog cross-check — need not re-run it).
func (p MergePrediction) Findings() lint.Findings {
	var out lint.Findings
	for _, mc := range p.Classes {
		if len(mc.Supplies) >= 2 {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "merge-supply-pair", Severity: lint.Error,
				Subject: mc.Name,
				Message: fmt.Sprintf("defect merges supply nets %v into one class: a rail-to-rail short contested in every phase", mc.Supplies),
			})
		}
		var perPhase []string
		for _, phase := range p.Phases {
			perPhase = append(perPhase, fmt.Sprintf("%s:%s", phase, mc.Verdicts[phase]))
		}
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: "merge-class", Severity: lint.Info,
			Subject: mc.Name,
			Message: fmt.Sprintf("nets %v become one electrical node; per-phase: %v", mc.Nets, perPhase),
		})
	}
	if len(p.Floats.Primary) > 0 || len(p.Floats.Secondary) > 0 {
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: "merge-float", Severity: lint.Error,
			Subject: fmt.Sprintf("%v", p.Elems),
			Message: fmt.Sprintf("merged graph predicts floating nets (primary %v, secondary %v); a merge can only add conduction paths, so the phase model is inconsistent", p.Floats.Primary, p.Floats.Secondary),
		})
	}
	out.Sort()
	return out
}
