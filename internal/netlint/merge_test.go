package netlint_test

// External test package: these tests exercise the merge prover against
// the real DRAM column, and dram itself imports netlint for its phase
// model, so an internal test file would create an import cycle.

import (
	"testing"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/device"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/netlint"
)

func columnAnalyzer(t *testing.T) *netlint.Analyzer {
	t.Helper()
	col, err := dram.NewColumn(dram.Default())
	if err != nil {
		t.Fatal(err)
	}
	return netlint.New(col.Circuit(), dram.LintModel())
}

// TestPredictMergesCatalog pins the full per-phase verdict table for the
// four catalog shorts/bridges, derived from the column's operation: the
// cell-to-ground short is hard-stuck whenever the victim cell is not
// accessed and contested (short vs. sense amplifier) when it is; the
// bit-line-to-VDD short is contested in every phase because the bit line
// always has a driver of its own; the bit-line bridge is benign only in
// precharge (both lines share the equalize level anyway) and contested
// once the latch drives the lines apart; and the cell-to-cell bridge is
// never contested — at most one of the two word lines is up per phase,
// so the pair acts as one cell with doubled capacitance. In all four
// cases the prover must find zero floating groups: the static form of
// the paper's Section 2 exclusion of shorts and bridges from
// partial-fault analysis.
func TestPredictMergesCatalog(t *testing.T) {
	az := columnAnalyzer(t)
	want := map[string]struct {
		class    string
		supplies []string
		verdicts map[string]netlint.ClassVerdict
	}{
		dram.SiteShortCellGnd: {
			class:    "0=c0s",
			supplies: []string{"0"},
			verdicts: map[string]netlint.ClassVerdict{
				"precharge": netlint.VerdictStuck,
				"sense0":    netlint.VerdictContested,
				"sense1":    netlint.VerdictStuck,
				"write0":    netlint.VerdictContested,
				"write1":    netlint.VerdictStuck,
				"readout":   netlint.VerdictContested,
			},
		},
		dram.SiteShortBLVdd: {
			class:    "btC=vddn",
			supplies: []string{"vddn"},
			verdicts: map[string]netlint.ClassVerdict{
				"precharge": netlint.VerdictContested,
				"sense0":    netlint.VerdictContested,
				"sense1":    netlint.VerdictContested,
				"write0":    netlint.VerdictContested,
				"write1":    netlint.VerdictContested,
				"readout":   netlint.VerdictContested,
			},
		},
		dram.SiteBridgeBLBL: {
			class:    "bcC=btC",
			supplies: nil,
			verdicts: map[string]netlint.ClassVerdict{
				"precharge": netlint.VerdictDriven,
				"sense0":    netlint.VerdictContested,
				"sense1":    netlint.VerdictContested,
				"write0":    netlint.VerdictContested,
				"write1":    netlint.VerdictContested,
				"readout":   netlint.VerdictContested,
			},
		},
		dram.SiteBridgeCells: {
			class:    "c0s=c1s",
			supplies: nil,
			verdicts: map[string]netlint.ClassVerdict{
				"precharge": netlint.VerdictIsolated,
				"sense0":    netlint.VerdictDriven,
				"sense1":    netlint.VerdictDriven,
				"write0":    netlint.VerdictDriven,
				"write1":    netlint.VerdictDriven,
				"readout":   netlint.VerdictDriven,
			},
		},
	}
	for _, sb := range defect.ShortsAndBridges() {
		sb := sb
		t.Run(sb.Site, func(t *testing.T) {
			exp, ok := want[sb.Site]
			if !ok {
				t.Fatalf("catalog entry %q has no pinned expectation; extend this test", sb.Site)
			}
			pred, err := az.PredictMerges([]string{dram.SiteElementName(sb.Site)})
			if err != nil {
				t.Fatal(err)
			}
			if len(pred.Classes) != 1 {
				t.Fatalf("got %d merged classes, want exactly 1: %+v", len(pred.Classes), pred.Classes)
			}
			mc := pred.Classes[0]
			if mc.Name != exp.class {
				t.Errorf("class = %q, want %q", mc.Name, exp.class)
			}
			if wantName := circuit.MergeName(sb.Merges[:]); mc.Name != wantName {
				t.Errorf("class %q does not match the catalog's declared merge %v", mc.Name, sb.Merges)
			}
			if len(mc.Supplies) != len(exp.supplies) {
				t.Errorf("supplies = %v, want %v", mc.Supplies, exp.supplies)
			} else {
				for i := range exp.supplies {
					if mc.Supplies[i] != exp.supplies[i] {
						t.Errorf("supplies = %v, want %v", mc.Supplies, exp.supplies)
						break
					}
				}
			}
			if len(pred.Phases) != len(exp.verdicts) {
				t.Fatalf("phases = %v, want %d phases", pred.Phases, len(exp.verdicts))
			}
			for _, phase := range pred.Phases {
				if got := mc.Verdicts[phase]; got != exp.verdicts[phase] {
					t.Errorf("%s: verdict = %s, want %s (anchors %v)", phase, got, exp.verdicts[phase], mc.Anchors[phase])
				}
			}
			// The negative result, proven statically: no floating group.
			if len(pred.Floats.Primary)+len(pred.Floats.Secondary)+len(pred.Floats.Unknown) != 0 {
				t.Errorf("merged graph predicts floats %+v; shorts/bridges must not create floating voltages", pred.Floats)
			}
		})
	}
}

// A bridged cell pair must never be contested: the two cells are never
// simultaneously selected, so both word lines up would be the only way
// to get two drivers. This is the property that makes the cell bridge a
// coupling fault rather than a drive fight.
func TestBridgedCellsNeverContested(t *testing.T) {
	az := columnAnalyzer(t)
	pred, err := az.PredictMerges([]string{dram.SiteElementName(dram.SiteBridgeCells)})
	if err != nil {
		t.Fatal(err)
	}
	for phase, v := range pred.Classes[0].Verdicts {
		if v == netlint.VerdictContested || v == netlint.VerdictStuck {
			t.Errorf("%s: bridged cells %s; want only isolated/driven", phase, v)
		}
	}
}

func TestPredictMergesErrors(t *testing.T) {
	az := columnAnalyzer(t)
	if _, err := az.PredictMerges([]string{"R_no_such_element"}); err == nil {
		t.Error("unknown merge element must be an error")
	}

	ckt := circuit.New()
	a := ckt.Node("a")
	b := ckt.Node("b")
	ckt.MustAdd(device.NewVSource("V1", a, 0, device.DC(1)))
	ckt.MustAdd(device.NewResistor("R1", a, b, 1e3))
	ckt.Freeze()
	bare := netlint.New(ckt, netlint.Model{})
	if _, err := bare.PredictMerges([]string{"R1"}); err == nil {
		t.Error("merge analysis without a phase model must be an error")
	}
}

// A defect that merges two supply rails is contested in every phase and
// must raise the merge-supply-pair error — the seeded case pflint's
// selftest exercises.
func TestCheckMergesSupplyPair(t *testing.T) {
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	vpp := ckt.Node("vpp")
	out := ckt.Node("out")
	ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(1.8)))
	ckt.MustAdd(device.NewVSource("V2", vpp, 0, device.DC(3.3)))
	ckt.MustAdd(device.NewResistor("R_load", vdd, out, 1e3))
	ckt.MustAdd(device.NewResistor("R_gnd", out, 0, 1e3))
	ckt.MustAdd(device.NewResistor("R_short", vdd, vpp, 10))
	ckt.Freeze()
	az := netlint.New(ckt, netlint.Model{
		Phases: []netlint.Phase{{Name: "on"}},
		Roles:  map[string][]string{"out": {"on"}},
	})
	fs := az.CheckMerges([]string{"R_short"})
	if n := len(fs.ByRule("merge-supply-pair")); n != 1 {
		t.Fatalf("merge-supply-pair findings = %d, want 1: %v", n, fs)
	}
	if fs.Count(lint.Error) == 0 {
		t.Error("supply-pair merge must be an error-severity finding")
	}
	pred, err := az.PredictMerges([]string{"R_short"})
	if err != nil {
		t.Fatal(err)
	}
	if v := pred.Classes[0].Verdicts["on"]; v != netlint.VerdictContested {
		t.Errorf("rail-to-rail short verdict = %s, want contested", v)
	}
}

// CheckMerges on the real catalog must stay clean of errors: both repo
// shorts have exactly one supply in the class (stuck or divider against
// a driver, reported as info), and the bridges have none.
func TestCheckMergesCatalogClean(t *testing.T) {
	az := columnAnalyzer(t)
	for _, sb := range defect.ShortsAndBridges() {
		fs := az.CheckMerges([]string{dram.SiteElementName(sb.Site)})
		if n := fs.Count(lint.Error); n != 0 {
			t.Errorf("%s: %d error findings: %v", sb.Site, n, fs)
		}
		if len(fs.ByRule("merge-class")) == 0 {
			t.Errorf("%s: no merge-class info finding", sb.Site)
		}
	}
}
