// Package netlint is the netlist static-analysis layer: a graph analyzer
// over circuit.Circuit that — without any transient simulation — finds
// floating nets, proves MNA solvability properties (voltage-source
// loops, nets solvable only through gmin, dangling nets, duplicate
// designators), and predicts the floating-line set a resistive open
// produces, the paper's Section 2 analysis performed symbolically.
//
// The analyzer sees elements through circuit.Topological: resistors are
// unconditional conduction paths (treated as disconnected above a cutoff
// resistance, the static equivalent of an injected open), MOSFET and
// switch channels are gated paths, capacitors couple charge but conduct
// no DC, and voltage sources anchor their nets. Phase models
// (netlint.Model, supplied by the netlist owner, e.g. dram.LintModel)
// describe which control nets are high in each operating phase so the
// per-phase drive analysis can mirror the memory's operation schedule.
package netlint

import (
	"fmt"
	"sort"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/lint"
)

// Phase describes one operating phase of the circuit: the logic level of
// every control net that matters during the phase. Control nets absent
// from Levels have unknown level, so the channels they gate are treated
// as non-conducting — the conservative choice for proving drive paths.
type Phase struct {
	// Name identifies the phase (e.g. "precharge", "sense0").
	Name string
	// Levels maps control net names to their logic level in this phase.
	Levels map[string]bool
}

// Latch describes a cross-coupled regenerating structure (a sense
// amplifier): its channel elements conduct as a group, but only when the
// latch can actually regenerate — when each Requires pair of nets is
// connected through the phase's conducting graph (both supply rails of
// the latch must be reachable). This captures the electrical fact that
// an enabled cross-coupled pair drives both of its outputs, while a
// latch with a broken enable path (the paper's Open 7) drives nothing.
type Latch struct {
	// Elements names the cross-coupled channel elements.
	Elements []string
	// Requires lists net pairs that must be mutually connected for the
	// latch to regenerate, e.g. {{"san", "0"}, {"sap", "vddn"}}.
	Requires [][2]string
	// ActiveIn names the phases whose schedule enables the latch; in
	// other phases it never conducts regardless of connectivity (a sense
	// amplifier is off during precharge even though its rails are then
	// reachable through the precharge devices). Empty means every phase.
	ActiveIn []string
}

// Model is the phase-aware description of a circuit's operation used by
// the floating-line prediction.
type Model struct {
	// Phases are the operating phases of the circuit.
	Phases []Phase
	// Latches are the regenerating structures active in any phase whose
	// conducting graph satisfies their requirements.
	Latches []Latch
	// Roles maps a net name to the phases responsible for establishing
	// its state (the net's "home" phases: precharge for bit lines, write
	// and sense for storage cells). A net floats under a defect exactly
	// when every responsible phase loses its drive path to the net.
	Roles map[string][]string
	// CutoffOhms is the resistance above which a conductive branch is
	// treated as disconnected. Zero means no branch is ever cut off.
	CutoffOhms float64
	// OnOhms is the nominal on-resistance assumed for a conducting gated
	// channel when the weak-merge analysis stamps the firm conduction
	// graph (a logic-level abstraction cannot know channel operating
	// points, so one representative value stands in for all of them).
	// Zero means a 1 kΩ default.
	OnOhms float64
	// NetVolts maps source-held net names to the DC voltage their source
	// imposes, so weak-merge divider voltages can be predicted
	// numerically. Nets absent here have unknown (NaN) anchor voltage;
	// weak verdicts are still computed from conductances alone.
	NetVolts map[string]float64
}

// Analyzer performs static analyses over one circuit.
type Analyzer struct {
	ckt   *circuit.Circuit
	model Model

	nodes  int // node count including ground
	edges  []edge
	opaque []string // elements without topology information
}

// edge is one element branch in analyzer form.
type edge struct {
	elem       string
	kind       circuit.PathKind
	a, b       int
	gate       int
	activeHigh bool
	ohms       float64
}

// New builds an analyzer for a circuit. The model may be the zero Model
// when only structural checks (Floating, Solvability) are wanted.
func New(ckt *circuit.Circuit, model Model) *Analyzer {
	a := &Analyzer{ckt: ckt, model: model, nodes: ckt.NumNodes() + 1}
	for _, e := range ckt.Elements() {
		te, ok := e.(circuit.Topological)
		if !ok {
			a.opaque = append(a.opaque, e.Name())
			continue
		}
		for _, br := range te.Branches() {
			a.edges = append(a.edges, edge{
				elem: e.Name(), kind: br.Kind, a: br.A, b: br.B,
				gate: br.Gate, activeHigh: br.GateActiveHigh, ohms: br.Ohms,
			})
		}
	}
	return a
}

// cutOff reports whether a conductive branch counts as disconnected.
func (a *Analyzer) cutOff(e edge) bool {
	return a.model.CutoffOhms > 0 && e.kind == circuit.PathConductive && e.ohms >= a.model.CutoffOhms
}

// reach runs a BFS over the edges admitted by keep, starting from the
// given seed nodes, and returns the reached-node mask.
func (a *Analyzer) reach(seeds []int, keep func(edge) bool) []bool {
	adj := make([][]int, a.nodes)
	for _, e := range a.edges {
		if e.kind == circuit.PathSense || !keep(e) {
			continue
		}
		adj[e.a] = append(adj[e.a], e.b)
		adj[e.b] = append(adj[e.b], e.a)
	}
	seen := make([]bool, a.nodes)
	var queue []int
	for _, s := range seeds {
		if s >= 0 && s < a.nodes && !seen[s] {
			seen[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, m := range adj[n] {
			if !seen[m] {
				seen[m] = true
				queue = append(queue, m)
			}
		}
	}
	return seen
}

// Floating proves which nets have no DC path to ground through
// non-capacitive elements, with every gated channel optimistically
// conducting: a net unreached even then can never be driven and is a
// netlist construction bug.
func (a *Analyzer) Floating() lint.Findings {
	var out lint.Findings
	for _, name := range a.opaque {
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: "opaque-element", Severity: lint.Error,
			Subject: name,
			Message: "element does not describe its topology (circuit.Topological); floating-net analysis cannot be proven",
		})
	}
	seen := a.reach([]int{0}, func(e edge) bool {
		switch e.kind {
		case circuit.PathConductive:
			return !a.cutOff(e)
		case circuit.PathSource, circuit.PathGated:
			return true
		}
		return false
	})
	for n := 1; n < a.nodes; n++ {
		if !seen[n] {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "floating-net", Severity: lint.Error,
				Subject: a.ckt.NodeName(n),
				Message: "no DC path to ground through non-capacitive elements in any switching state",
			})
		}
	}
	return out
}

// Solvability proves MNA assembly properties before any simulation:
// voltage-source loops (a singular system no gmin can fix), duplicate
// element designators, nets touched by no element at all, and — as
// informational findings — net groups whose DC state exists only through
// the solver's gmin when every channel is off (the floating-line physics
// the paper studies; expected for bit lines, worth knowing about).
func (a *Analyzer) Solvability() lint.Findings {
	var out lint.Findings

	// Duplicate designators (also rejected at Circuit.Add; re-proven here
	// for circuits assembled by other means).
	seenName := map[string]bool{}
	for _, e := range a.ckt.Elements() {
		if seenName[e.Name()] {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "duplicate-element", Severity: lint.Error,
				Subject: e.Name(), Message: "duplicate element designator",
			})
		}
		seenName[e.Name()] = true
	}

	// Voltage-source loops via union-find over source branches only.
	parent := make([]int, a.nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range a.edges {
		if e.kind != circuit.PathSource {
			continue
		}
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "vsource-loop", Severity: lint.Error,
				Subject: e.elem,
				Message: fmt.Sprintf("voltage source closes a source-only loop between %q and %q: the MNA system is singular", a.ckt.NodeName(e.a), a.ckt.NodeName(e.b)),
			})
			continue
		}
		parent[ra] = rb
	}

	// Nets touched by no element at all.
	touched := make([]bool, a.nodes)
	touched[0] = true
	for _, e := range a.edges {
		touched[e.a], touched[e.b] = true, true
		if e.kind == circuit.PathGated {
			touched[e.gate] = true
		}
	}
	for n := 1; n < a.nodes; n++ {
		if !touched[n] {
			out = append(out, lint.Finding{
				Layer: "netlist", Rule: "dangling-net", Severity: lint.Error,
				Subject: a.ckt.NodeName(n), Message: "net is connected to no element",
			})
		}
	}

	// Current sources must see a DC return path in every switching state;
	// otherwise only gmin balances their KCL row.
	allOff := a.reach([]int{0}, func(e edge) bool {
		return (e.kind == circuit.PathConductive && !a.cutOff(e)) || e.kind == circuit.PathSource
	})
	for _, e := range a.edges {
		if e.kind != circuit.PathCurrent {
			continue
		}
		for _, n := range []int{e.a, e.b} {
			if n != 0 && !allOff[n] {
				out = append(out, lint.Finding{
					Layer: "netlist", Rule: "isource-float", Severity: lint.Warning,
					Subject: e.elem,
					Message: fmt.Sprintf("current source terminal %q has no unconditional DC return path; its KCL balances only through gmin", a.ckt.NodeName(n)),
				})
			}
		}
	}

	// gmin-dependent groups: nets with no unconditional DC path to
	// ground. Expected for storage nodes and isolatable bit lines —
	// informational.
	var gminNets []string
	for n := 1; n < a.nodes; n++ {
		if touched[n] && !allOff[n] {
			gminNets = append(gminNets, a.ckt.NodeName(n))
		}
	}
	if len(gminNets) > 0 {
		sort.Strings(gminNets)
		out = append(out, lint.Finding{
			Layer: "netlist", Rule: "gmin-dependent", Severity: lint.Info,
			Subject: fmt.Sprintf("%d nets", len(gminNets)),
			Message: fmt.Sprintf("DC state defined only by gmin when all channels are off (floating-line candidates): %v", gminNets),
		})
	}
	return out
}

// Check runs every structural analysis plus, when a model with phases is
// configured, the model-consistency verification.
func (a *Analyzer) Check() lint.Findings {
	out := append(a.Floating(), a.Solvability()...)
	if len(a.model.Phases) > 0 {
		out = append(out, a.VerifyModel()...)
	}
	out.Sort()
	return out
}
