package netlint_test

// Property tests for the merge prover: its output is a function of the
// circuit graph and the defect SET, so it must be invariant under
// permutation of the defect-element order and under relabeling of the
// netlist — both the order elements are Added to the circuit (which
// permutes internal node indices) and the net names themselves (which
// only affect display strings, consistently).

import (
	"math"
	"testing"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/device"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/netlint"
)

// samePrediction deep-compares two merge predictions, treating NaN
// voltages as equal to each other.
func samePrediction(t *testing.T, label string, a, b netlint.MergePrediction) {
	t.Helper()
	eqF := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) {
			return math.IsNaN(x) && math.IsNaN(y)
		}
		return math.Abs(x-y) <= 1e-12
	}
	if len(a.Classes) != len(b.Classes) {
		t.Fatalf("%s: class count %d vs %d", label, len(a.Classes), len(b.Classes))
	}
	for i := range a.Classes {
		ca, cb := a.Classes[i], b.Classes[i]
		if ca.Name != cb.Name {
			t.Errorf("%s: class[%d] name %q vs %q", label, i, ca.Name, cb.Name)
			continue
		}
		if !equalStrings(ca.Supplies, cb.Supplies) {
			t.Errorf("%s: class %s supplies %v vs %v", label, ca.Name, ca.Supplies, cb.Supplies)
		}
		for _, ph := range a.Phases {
			if ca.Verdicts[ph] != cb.Verdicts[ph] {
				t.Errorf("%s: class %s phase %s verdict %s vs %s", label, ca.Name, ph, ca.Verdicts[ph], cb.Verdicts[ph])
			}
			if !equalStrings(ca.Anchors[ph], cb.Anchors[ph]) {
				t.Errorf("%s: class %s phase %s anchors %v vs %v", label, ca.Name, ph, ca.Anchors[ph], cb.Anchors[ph])
			}
		}
	}
	if len(a.Weak) != len(b.Weak) {
		t.Fatalf("%s: weak count %d vs %d", label, len(a.Weak), len(b.Weak))
	}
	for i := range a.Weak {
		wa, wb := a.Weak[i], b.Weak[i]
		if wa.Elem != wb.Elem || wa.A.Net != wb.A.Net || wa.B.Net != wb.B.Net {
			t.Errorf("%s: weak[%d] identity (%s %s–%s) vs (%s %s–%s)",
				label, i, wa.Elem, wa.A.Net, wa.B.Net, wb.Elem, wb.A.Net, wb.B.Net)
			continue
		}
		for _, ph := range a.Phases {
			if wa.Verdicts[ph] != wb.Verdicts[ph] {
				t.Errorf("%s: weak %s phase %s verdict %s vs %s", label, wa.Elem, ph, wa.Verdicts[ph], wb.Verdicts[ph])
			}
			va, vb := wa.Volts[ph], wb.Volts[ph]
			if !eqF(va[0], vb[0]) || !eqF(va[1], vb[1]) {
				t.Errorf("%s: weak %s phase %s volts %v vs %v", label, wa.Elem, ph, va, vb)
			}
		}
	}
	if !equalStrings(a.Floats.Primary, b.Floats.Primary) ||
		!equalStrings(a.Floats.Secondary, b.Floats.Secondary) ||
		!equalStrings(a.Floats.Unknown, b.Floats.Unknown) {
		t.Errorf("%s: floats %+v vs %+v", label, a.Floats, b.Floats)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// reverseSpec returns the spec with its element order reversed.
func reverseSpec(spec netlint.MergeSpec) netlint.MergeSpec {
	out := spec
	out.Elems = make([]netlint.MergeElem, len(spec.Elems))
	for i, el := range spec.Elems {
		out.Elems[len(spec.Elems)-1-i] = el
	}
	return out
}

// TestPredictMergeSetPermutationInvariant sweeps the full scenario
// catalog: reversing the defect-element order must not change a single
// verdict, anchor set, or divider voltage.
func TestPredictMergeSetPermutationInvariant(t *testing.T) {
	az := columnAnalyzer(t)
	for _, sc := range defect.MergeScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			var spec netlint.MergeSpec
			for _, s := range sc.Sites {
				spec.Elems = append(spec.Elems, netlint.MergeElem{Name: dram.SiteElementName(s.Site), Ohms: s.Ohms})
			}
			fwd, err := az.PredictMergeSet(spec)
			if err != nil {
				t.Fatal(err)
			}
			rev, err := az.PredictMergeSet(reverseSpec(spec))
			if err != nil {
				t.Fatal(err)
			}
			samePrediction(t, "reversed element order", fwd, rev)
		})
	}
}

// railPairModel is the transitive rail-pair fixture, parameterized over
// net names and circuit Add order so the relabeling properties can
// build structurally identical graphs with different internals.
func railPairModel(rename func(string) string, shuffled bool) *netlint.Analyzer {
	r := rename
	ckt := circuit.New()
	node := func(n string) int { return ckt.Node(r(n)) }
	steps := []func(){
		func() { ckt.MustAdd(device.NewVSource("V1", node("vdd"), 0, device.DC(3.3))) },
		func() { ckt.MustAdd(device.NewResistor("R_load", node("vdd"), node("out"), 1e3)) },
		func() { ckt.MustAdd(device.NewResistor("R_gnd", node("out"), 0, 1e3)) },
		func() { ckt.MustAdd(device.NewResistor("R_s1", node("vdd"), node("mid"), 10)) },
		func() { ckt.MustAdd(device.NewResistor("R_s2", node("mid"), 0, 10)) },
		func() { ckt.MustAdd(device.NewResistor("R_weak", node("out"), node("vdd"), 1.5e3)) },
	}
	if shuffled {
		// A fixed permutation: element addition order is unconstrained,
		// so any order is legal.
		for _, i := range []int{5, 2, 4, 0, 3, 1} {
			steps[i]()
		}
	} else {
		for _, s := range steps {
			s()
		}
	}
	ckt.Freeze()
	return netlint.New(ckt, netlint.Model{
		Phases:     []netlint.Phase{{Name: "on"}},
		Roles:      map[string][]string{r("out"): {"on"}, r("mid"): {"on"}},
		CutoffOhms: 1e9,
		NetVolts:   map[string]float64{r("vdd"): 3.3},
	})
}

// TestPredictMergeSetAddOrderInvariant builds the same circuit twice
// with different element Add orders (which permutes node indices) and
// requires byte-identical predictions.
func TestPredictMergeSetAddOrderInvariant(t *testing.T) {
	id := func(s string) string { return s }
	spec := netlint.MergeSpec{Elems: []netlint.MergeElem{
		{Name: "R_s1"}, {Name: "R_s2"}, {Name: "R_weak", Ohms: 1.5e3},
	}}
	a, err := railPairModel(id, false).PredictMergeSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := railPairModel(id, true).PredictMergeSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	samePrediction(t, "shuffled Add order", a, b)
}

// TestPredictMergeSetRenameInvariant renames every non-ground net with
// an order-reversing prefix and requires the same verdict structure:
// net names are labels, not semantics. (Class and anchor strings change
// with the renaming, so the comparison maps them through it.)
func TestPredictMergeSetRenameInvariant(t *testing.T) {
	rename := func(s string) string { return "z_" + s }
	spec := netlint.MergeSpec{Elems: []netlint.MergeElem{
		{Name: "R_s1"}, {Name: "R_s2"}, {Name: "R_weak", Ohms: 1.5e3},
	}}
	plain, err := railPairModel(func(s string) string { return s }, false).PredictMergeSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	renamed, err := railPairModel(rename, false).PredictMergeSet(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Classes) != len(renamed.Classes) || len(plain.Weak) != len(renamed.Weak) {
		t.Fatalf("shape differs under renaming: %d/%d classes, %d/%d weak",
			len(plain.Classes), len(renamed.Classes), len(plain.Weak), len(renamed.Weak))
	}
	for i := range plain.Classes {
		ca, cb := plain.Classes[i], renamed.Classes[i]
		for _, ph := range plain.Phases {
			if ca.Verdicts[ph] != cb.Verdicts[ph] {
				t.Errorf("class %s vs %s phase %s: verdict %s vs %s", ca.Name, cb.Name, ph, ca.Verdicts[ph], cb.Verdicts[ph])
			}
		}
		for j, n := range ca.Nets {
			want := n
			if n != "0" {
				want = rename(n)
			}
			if cb.Nets[j] != want {
				t.Errorf("class member %q renames to %q, want %q", n, cb.Nets[j], want)
			}
		}
	}
	for i := range plain.Weak {
		wa, wb := plain.Weak[i], renamed.Weak[i]
		if rename(wa.A.Net) != wb.A.Net && wa.A.Net != wb.A.Net {
			t.Errorf("weak endpoint %q vs %q under renaming", wa.A.Net, wb.A.Net)
		}
		for _, ph := range plain.Phases {
			if wa.Verdicts[ph] != wb.Verdicts[ph] {
				t.Errorf("weak %s phase %s: verdict %s vs %s under renaming", wa.Elem, ph, wa.Verdicts[ph], wb.Verdicts[ph])
			}
			va, vb := wa.Volts[ph], wb.Volts[ph]
			for k := range va {
				if !(math.IsNaN(va[k]) && math.IsNaN(vb[k])) && math.Abs(va[k]-vb[k]) > 1e-12 {
					t.Errorf("weak %s phase %s volts %v vs %v under renaming", wa.Elem, ph, va, vb)
				}
			}
		}
	}
}
