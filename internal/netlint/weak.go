package netlint

import (
	"fmt"
	"math"
	"sort"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/numeric"
)

// This file implements the weak-merge divider analysis. A resistive
// bridge below the conductive cutoff but above the hard-short threshold
// is neither an open (it conducts DC) nor an ideal short (it cannot be
// contracted): the merged pair is a voltage divider. For each endpoint
// the analysis computes a Thevenin equivalent — which anchors it
// reaches through the phase's firm conduction graph with the defect
// edges removed, at what open-circuit voltage, and through how much
// conductance — by solving the weighted graph Laplacian with the
// anchors as Dirichlet boundary nodes. Combining the far side's
// equivalent in series with the bridge conductance is exact for the
// resulting three-conductance star, so the loaded endpoint voltages
// follow in closed form, and the verdict reduces to a conductance
// comparison: if the drive arriving through the bridge is within
// WeakRatio of an endpoint's own drive, the divider is a genuine analog
// fight (weak-contested); otherwise the dominant side wins
// (weak-driven).

// defaultOnOhms stands in for Model.OnOhms when the model leaves it
// zero: a generic 1 kΩ channel on-resistance.
const defaultOnOhms = 1e3

// WeakSide is one endpoint of a weak merge: its own drive per phase,
// with the bridge itself (and every other defect element of the
// scenario) excluded from passive traversal.
type WeakSide struct {
	// Net is the endpoint net name.
	Net string
	// Anchors maps phase name to the sorted anchor identifiers the
	// endpoint reaches through the phase's firm conduction graph.
	Anchors map[string][]string
	// Conductance maps phase name to the endpoint's Thevenin drive
	// conductance toward its anchors [S]: +Inf when the endpoint is
	// itself an anchor, 0 when it reaches none (capacitively held).
	Conductance map[string]float64
	// Volts maps phase name to the endpoint's open-circuit Thevenin
	// voltage [V]; NaN when an involved anchor has no declared voltage
	// (e.g. a latch output, whose value is data-dependent).
	Volts map[string]float64

	node int // contracted endpoint node index
}

// WeakMerge is the divider analysis of one sub-cutoff resistive bridge.
type WeakMerge struct {
	// Elem is the defect element; Ohms its bridging resistance.
	Elem string
	Ohms float64
	// A and B are the bridge's two endpoint analyses.
	A, B WeakSide
	// Verdicts maps phase name to the divider verdict: isolated
	// (neither side anchored), weak-driven, or weak-contested.
	Verdicts map[string]ClassVerdict
	// Volts maps phase name to the predicted loaded endpoint voltages
	// {V_A, V_B} with the bridge in place; NaN entries mean an involved
	// anchor voltage is unknown.
	Volts map[string][2]float64
}

// newWeakMerges resolves the weak elements' bridge endpoints (mapped
// through the hard contraction, so a weak bridge landing on a
// hard-merged class sees the whole class) into analysis skeletons.
func (a *Analyzer) newWeakMerges(weakElems []MergeElem, find func(int) int) ([]WeakMerge, error) {
	var out []WeakMerge
	for _, el := range weakElems {
		na, nb, ok := a.mergeEndpoints(el.Name)
		if !ok {
			return nil, fmt.Errorf("netlint: elements [%s] have no conduction branch to merge over", el.Name)
		}
		side := func(n int) WeakSide {
			return WeakSide{
				Net:         a.ckt.NodeName(n),
				Anchors:     map[string][]string{},
				Conductance: map[string]float64{},
				Volts:       map[string]float64{},
				node:        find(n),
			}
		}
		out = append(out, WeakMerge{
			Elem: el.Name, Ohms: el.Ohms,
			A: side(na), B: side(nb),
			Verdicts: map[string]ClassVerdict{},
			Volts:    map[string][2]float64{},
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Elem < out[j].Elem })
	return out, nil
}

// mergeEndpoints returns the node pair of the element's first non-sense
// branch — the two nets a weak merge bridges.
func (a *Analyzer) mergeEndpoints(elem string) (int, int, bool) {
	for _, e := range a.edges {
		if e.elem == elem && e.kind != circuit.PathSense {
			return e.a, e.b, true
		}
	}
	return 0, 0, false
}

// phaseCtx bundles the per-phase machinery shared by the hard-class
// verdicts and the weak-merge dividers: resolved gate levels, the
// latch-enablement fixpoint on the defective graph, per-node anchor
// identifiers, and the passive-conduction edge filter (no defect
// elements, no source edges, no latch channels).
type phaseCtx struct {
	phase   Phase
	anchors map[int][]string
	keep    func(edge) bool
}

// phaseContext builds the context for one phase with the given defect
// elements present. Latch enablement is resolved WITH the defect edges
// conducting (the defect is physically there; a bridge can even help a
// latch's rails connect), while the keep filter excludes them so each
// node's own drive stays visible.
func (a *Analyzer) phaseContext(p Phase, defect map[string]bool) *phaseCtx {
	levels := a.levelsFor(p, nil)
	_, latchOn := a.drivenWith(p, nil, nil, defect)

	latchElem := map[string]bool{}
	for _, l := range a.model.Latches {
		for _, name := range l.Elements {
			latchElem[name] = true
		}
	}

	// Anchor identifiers per node: ground, source-held nets (their own
	// name), and enabled-latch outputs ("latch:<net>").
	anchors := make(map[int][]string)
	anchors[0] = []string{circuit.Ground}
	for _, e := range a.edges {
		if e.kind != circuit.PathSource {
			continue
		}
		for _, n := range []int{e.a, e.b} {
			if n != 0 {
				anchors[n] = append(anchors[n], a.ckt.NodeName(n))
			}
		}
	}
	for _, l := range a.model.Latches {
		if !l.activeIn(p.Name) || !a.latchEnabled(l, latchOn) {
			continue
		}
		rail := map[int]bool{}
		for _, pair := range l.Requires {
			for _, net := range pair[:] {
				if idx, ok := a.ckt.NodeIndex(net); ok {
					rail[idx] = true
				}
			}
		}
		elems := map[string]bool{}
		for _, name := range l.Elements {
			elems[name] = true
		}
		for _, e := range a.edges {
			if !elems[e.elem] || e.kind != circuit.PathGated {
				continue
			}
			for _, n := range []int{e.a, e.b} {
				if n != 0 && !rail[n] {
					anchors[n] = append(anchors[n], "latch:"+a.ckt.NodeName(n))
				}
			}
		}
	}

	keep := func(e edge) bool {
		if defect[e.elem] || latchElem[e.elem] {
			return false
		}
		switch e.kind {
		case circuit.PathConductive:
			return !a.cutOff(e)
		case circuit.PathGated:
			if latchOn[e.elem] {
				return true
			}
			lvl, ok := levels[e.gate]
			return ok && lvl == e.activeHigh
		}
		return false
	}
	return &phaseCtx{phase: p, anchors: anchors, keep: keep}
}

// firmGraph is the phase's passive conduction graph in weighted,
// hard-contracted form — the static stamp the Thevenin analysis solves
// over. Anchored nodes are Dirichlet boundaries.
type firmGraph struct {
	adj  map[int][]firmEdge
	ids  map[int][]string // sorted anchor identifiers per contracted node
	volt map[int]float64  // anchor voltage; NaN when unknown
}

type firmEdge struct {
	to int
	g  float64
}

// firmGraph stamps the phase's firm conduction edges (below-cutoff
// resistors at 1/ohms, conducting channels at 1/OnOhms) onto the
// hard-contracted node set and resolves each anchored node's imposed
// voltage from the model's NetVolts table.
func (a *Analyzer) firmGraph(pc *phaseCtx, find func(int) int) *firmGraph {
	onOhms := a.model.OnOhms
	if onOhms <= 0 {
		onOhms = defaultOnOhms
	}
	fg := &firmGraph{adj: map[int][]firmEdge{}, ids: map[int][]string{}, volt: map[int]float64{}}
	for _, e := range a.edges {
		if e.kind == circuit.PathSense || !pc.keep(e) {
			continue
		}
		var g float64
		switch e.kind {
		case circuit.PathConductive:
			if e.ohms > 0 {
				g = 1 / e.ohms
			} else {
				// Ideal wires appear as zero-ohm resistors; stamp them
				// as 1 mΩ so the Laplacian stays finite.
				g = 1e3
			}
		case circuit.PathGated:
			g = 1 / onOhms
		default:
			continue
		}
		ra, rb := find(e.a), find(e.b)
		if ra == rb {
			continue
		}
		fg.adj[ra] = append(fg.adj[ra], firmEdge{to: rb, g: g})
		fg.adj[rb] = append(fg.adj[rb], firmEdge{to: ra, g: g})
	}
	for n, ids := range pc.anchors {
		r := find(n)
		fg.ids[r] = append(fg.ids[r], ids...)
	}
	for r, ids := range fg.ids {
		sort.Strings(ids)
		fg.ids[r] = dedupeSorted(ids)
		fg.volt[r] = a.anchorVolt(fg.ids[r])
	}
	return fg
}

// anchorVolt resolves an anchored node's imposed voltage from its
// anchor identifiers: ground is 0 V, source-held nets read from
// Model.NetVolts, latch outputs are data-dependent (NaN). Conflicting
// or unknown values yield NaN — the verdict then rests on conductances.
func (a *Analyzer) anchorVolt(ids []string) float64 {
	v := math.NaN()
	for _, id := range ids {
		var this float64
		switch {
		case id == circuit.Ground:
			this = 0
		default:
			declared, ok := a.model.NetVolts[id]
			if !ok {
				return math.NaN() // latch output or undeclared source net
			}
			this = declared
		}
		if math.IsNaN(v) {
			v = this
		} else if math.Abs(v-this) > 1e-9 {
			return math.NaN() // two different rails in one contracted node
		}
	}
	return v
}

func dedupeSorted(ids []string) []string {
	out := ids[:0]
	for i, id := range ids {
		if i == 0 || ids[i-1] != id {
			out = append(out, id)
		}
	}
	return out
}

// weakPhase fills one phase of a weak merge: both sides' Thevenin
// equivalents, the loaded divider voltages, and the verdict.
func (a *Analyzer) weakPhase(fg *firmGraph, wm *WeakMerge, phase string, weakRatio float64) {
	idsA, gA, vA := a.sideEquivalent(fg, wm.A.node)
	idsB, gB, vB := a.sideEquivalent(fg, wm.B.node)
	wm.A.Anchors[phase], wm.A.Conductance[phase], wm.A.Volts[phase] = idsA, gA, vA
	wm.B.Anchors[phase], wm.B.Conductance[phase], wm.B.Volts[phase] = idsB, gB, vB

	g := math.Inf(1)
	if wm.Ohms > 0 {
		g = 1 / wm.Ohms
	}
	verdict, loadedA, loadedB := dividerVerdict(gA, vA, gB, vB, g, weakRatio, stringSlicesEqual(idsA, idsB))
	wm.Verdicts[phase] = verdict
	wm.Volts[phase] = [2]float64{loadedA, loadedB}
}

// sideEquivalent computes the Thevenin equivalent seen looking into one
// endpoint with the bridge absent: the sorted anchor identifiers its
// firm component reaches, the drive conductance toward them, and the
// open-circuit voltage. Anchored endpoints are ideal (+Inf, own
// voltage); components with no anchors hold charge only (0, NaN).
func (a *Analyzer) sideEquivalent(fg *firmGraph, node int) ([]string, float64, float64) {
	if len(fg.ids[node]) > 0 {
		return fg.ids[node], math.Inf(1), fg.volt[node]
	}
	comp := []int{node}
	seen := map[int]bool{node: true}
	for i := 0; i < len(comp); i++ {
		for _, fe := range fg.adj[comp[i]] {
			if !seen[fe.to] {
				seen[fe.to] = true
				comp = append(comp, fe.to)
			}
		}
	}
	var anchorIDs []string
	unknownIdx := map[int]int{}
	nUnknown := 0
	for _, n := range comp {
		if len(fg.ids[n]) > 0 {
			anchorIDs = append(anchorIDs, fg.ids[n]...)
		} else {
			unknownIdx[n] = nUnknown
			nUnknown++
		}
	}
	sort.Strings(anchorIDs)
	anchorIDs = dedupeSorted(anchorIDs)
	if len(anchorIDs) == 0 {
		return nil, 0, math.NaN()
	}

	// Graph Laplacian over the unanchored nodes; edges into anchored
	// neighbors contribute to the diagonal and, when the anchor voltage
	// is known, to the open-circuit RHS (Dirichlet condition).
	L := numeric.NewMatrix(nUnknown, nUnknown)
	bv := make([]float64, nUnknown)
	voltKnown := true
	for n, i := range unknownIdx {
		for _, fe := range fg.adj[n] {
			L.Add(i, i, fe.g)
			if j, ok := unknownIdx[fe.to]; ok {
				L.Add(i, j, -fe.g)
			} else {
				av := fg.volt[fe.to]
				if math.IsNaN(av) {
					voltKnown = false
				} else {
					bv[i] += fe.g * av
				}
			}
		}
	}
	lu, err := numeric.Factorize(L)
	if err != nil {
		// A singular firm stamp cannot happen for a connected component
		// with at least one Dirichlet node; report "no usable drive"
		// rather than guessing.
		return anchorIDs, 0, math.NaN()
	}
	self := unknownIdx[node]
	voc := math.NaN()
	if voltKnown {
		voc = lu.Solve(bv)[self]
	}
	// Thevenin resistance: inject a unit current at the endpoint with
	// all anchors grounded; the resulting self-voltage is R_th.
	bi := make([]float64, nUnknown)
	bi[self] = 1
	rth := lu.Solve(bi)[self]
	if !(rth > 0) {
		return anchorIDs, 0, voc
	}
	return anchorIDs, 1 / rth, voc
}

// dividerVerdict resolves the DC operating point of a weak merge in one
// phase from the two sides' Thevenin equivalents (gA, vA), (gB, vB) and
// the bridge conductance g. The far side in series with the bridge is
// exact for the three-conductance star, so
//
//	V_A = (gA·vA + s(g,gB)·vB) / (gA + s(g,gB)),  s(g,x) = g·x/(g+x)
//
// and symmetrically for V_B. The verdict compares each endpoint's own
// drive with the drive arriving through the bridge: within weakRatio on
// either side means a genuine divider fight.
func dividerVerdict(gA, vA, gB, vB, g, weakRatio float64, sameAnchors bool) (ClassVerdict, float64, float64) {
	switch {
	case gA == 0 && gB == 0:
		return VerdictIsolated, math.NaN(), math.NaN()
	case gA == 0:
		// A has no drive of its own: it follows B through the bridge.
		return VerdictWeakDriven, vB, vB
	case gB == 0:
		return VerdictWeakDriven, vA, vA
	}
	throughA := series(g, gB) // drive reaching A from B's anchors
	throughB := series(g, gA)
	loadedA, loadedB := vA, vB
	if !math.IsInf(gA, 1) {
		loadedA = (gA*vA + throughA*vB) / (gA + throughA)
	}
	if !math.IsInf(gB, 1) {
		loadedB = (gB*vB + throughB*vA) / (gB + throughB)
	}
	if sameAnchors || (!math.IsNaN(vA) && !math.IsNaN(vB) && math.Abs(vA-vB) <= 1e-9) {
		// Both sides pull toward the same place: no fight to resolve.
		return VerdictWeakDriven, loadedA, loadedB
	}
	if sideRatio(gA, throughA) <= weakRatio || sideRatio(gB, throughB) <= weakRatio {
		return VerdictWeakContested, loadedA, loadedB
	}
	return VerdictWeakDriven, loadedA, loadedB
}

// series combines the bridge conductance with a side conductance.
func series(g, x float64) float64 {
	switch {
	case math.IsInf(x, 1):
		return g
	case math.IsInf(g, 1):
		return x
	case x <= 0 || g <= 0:
		return 0
	}
	return g * x / (g + x)
}

// sideRatio is the own-drive vs through-bridge-drive imbalance at one
// endpoint, always ≥ 1; +Inf when the endpoint is ideally anchored.
func sideRatio(own, through float64) float64 {
	if math.IsInf(own, 1) || own <= 0 || through <= 0 {
		return math.Inf(1)
	}
	if own > through {
		return own / through
	}
	return through / own
}

func stringSlicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
