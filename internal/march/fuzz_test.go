package march

import "testing"

// FuzzParseMarch drives the notation parser with arbitrary input. Two
// properties must hold: Parse never panics (rejected inputs return an
// error), and any accepted input round-trips — rendering the parsed
// test with String and parsing it again yields a semantically equal
// test, with String as a fixpoint (the canonical arrow form).
func FuzzParseMarch(f *testing.F) {
	// Seed corpus: the full library in canonical form, the paper's ASCII
	// form, and a few edge shapes.
	for _, t := range All() {
		f.Add(t.String())
	}
	f.Add("{m(w0); u(r0,w1); d(r1,w0)}")
	f.Add("m(w0)")
	f.Add("{⇕(w0)}")
	f.Add("{⇑(r1,w0,r0); ⇓(r0)}")
	f.Add("")
	f.Add("{u(); d(r1)}")
	f.Add("{x(w0)}")
	f.Add("{⇑(w2)}")

	f.Fuzz(func(t *testing.T, s string) {
		parsed, err := Parse("fuzz", s)
		if err != nil {
			return // rejection is fine; the property is no panic
		}
		canonical := parsed.String()
		again, err := Parse("fuzz", canonical)
		if err != nil {
			t.Fatalf("accepted %q but rejected its own rendering %q: %v", s, canonical, err)
		}
		if len(again.Elements) != len(parsed.Elements) {
			t.Fatalf("round trip of %q changed element count %d → %d", s, len(parsed.Elements), len(again.Elements))
		}
		for i := range parsed.Elements {
			a, b := parsed.Elements[i], again.Elements[i]
			if a.Order != b.Order || len(a.Ops) != len(b.Ops) {
				t.Fatalf("round trip of %q changed element %d: %v → %v", s, i, a, b)
			}
			for j := range a.Ops {
				if a.Ops[j] != b.Ops[j] {
					t.Fatalf("round trip of %q changed op %d.%d: %v → %v", s, i, j, a.Ops[j], b.Ops[j])
				}
			}
		}
		if fix := again.String(); fix != canonical {
			t.Fatalf("String is not a fixpoint: %q → %q", canonical, fix)
		}
	})
}
