package march

import (
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

// CatalogEntry is one injectable fault family for coverage evaluation.
type CatalogEntry struct {
	// Name labels the family (FFM plus mediation).
	Name string
	// FP is the injected fault primitive (completed form for partial
	// faults, plain form for classical ones).
	FP fp.FP
	// Float is the mediating floating voltage for partial faults.
	Float defect.FloatVar
	// Uncompletable marks Table 1's "Not possible" rows.
	Uncompletable bool
	// Partial distinguishes partial faults from classical always-armed
	// FPs.
	Partial bool
}

// Make builds the fault for a victim address.
func (e CatalogEntry) Make(victim int) memsim.Fault {
	return memsim.Fault{Victim: victim, FP: e.FP, Float: e.Float, Uncompletable: e.Uncompletable}
}

// ClassicalFaultCatalog returns the twelve static single-cell FPs in
// their plain (always sensitized) form.
func ClassicalFaultCatalog() []CatalogEntry {
	var out []CatalogEntry
	for _, f := range fp.AllFFMs() {
		p, _ := f.CanonicalFP()
		out = append(out, CatalogEntry{Name: f.String(), FP: p})
	}
	return out
}

// PaperFaultCatalog returns the completed partial FPs of the paper's
// Table 1 (simulated and complementary), as injectable functional
// models. The "Not possible" rows are included as uncompletable faults —
// under guarantee semantics no march test can detect them, which is
// exactly the paper's point about them.
func PaperFaultCatalog() []CatalogEntry {
	mk := func(name, s string, v defect.FloatVar) CatalogEntry {
		return CatalogEntry{Name: name, FP: fp.MustParse(s), Float: v, Partial: true}
	}
	bl := defect.FloatBitLine
	ob := defect.FloatOutBuffer
	out := []CatalogEntry{
		// RDF0 via Open 1 (cell-internal) and its complement — the
		// flagship pair of Figure 4.
		mk("RDF0 partial (cell, Open 1)", "<[w1 w1 w0] r0/1/1>", defect.FloatMemoryCell),
		mk("RDF1 partial (cell, com. Open 1)", "<[w0 w0 w1] r1/0/0>", defect.FloatMemoryCell),
		// RDF via bit line (Opens 3–5) and output buffer (Open 8).
		mk("RDF0 partial (bit line, Open 5)", "<0v [w1BL] r0v/1/1>", bl),
		mk("RDF1 partial (bit line, Opens 3-5)", "<1v [w0BL] r1v/0/0>", bl),
		mk("RDF0 partial (output buffer, Open 8)", "<0v [w1BL] r0v/1/1>", ob),
		mk("RDF1 partial (output buffer, Open 8)", "<1v [w0BL] r1v/0/0>", ob),
		// Deceptive and incorrect read faults.
		mk("DRDF1 partial (bit line, Open 4)", "<1v [w1BL] r1v/0/1>", bl),
		mk("IRF0 partial (output buffer, Open 8)", "<0v [w1BL] r0v/0/1>", ob),
		mk("IRF1 partial (bit line, Open 5)", "<1v [w0BL] r1v/1/0>", bl),
		// Write destructive and transition faults.
		mk("WDF1 partial (bit line, Open 4)", "<1v [w0BL] w1v/0/->", bl),
		mk("TF↓ partial (bit line, Open 5)", "<1v [w1BL] w0v/1/->", bl),
		mk("TF↑ partial (bit line, com. Open 5)", "<0v [w0BL] w1v/0/->", bl),
	}
	// The uncompletable (word-line mediated) rows: SF0/SF1, IRF0, TF↓.
	for _, u := range []struct{ name, s string }{
		{"SF0 partial (word line, Open 9) — Not possible", "<0/1/->"},
		{"SF1 partial (word line, com. Open 9) — Not possible", "<1/0/->"},
		{"IRF0 partial (word line, Open 9) — Not possible", "<0r0/0/1>"},
		{"TF↓ partial (word line, Open 9) — Not possible", "<1w0/1/->"},
	} {
		out = append(out, CatalogEntry{
			Name: u.name, FP: fp.MustParse(u.s),
			Float: defect.FloatWordLine, Uncompletable: true, Partial: true,
		})
	}
	return out
}

// CoverageResult is one (test, fault) evaluation.
type CoverageResult struct {
	Test      string
	Fault     string
	Partial   bool
	Detected  bool
	Caught    int
	Scenarios int
	// Engine names the backend that evaluated the row — normally the
	// requested one, but the scalar oracle when the requested backend
	// reported the entry unsupported and the harness fell back.
	Engine string
}

// CoverageMatrix evaluates every test against every catalog entry on a
// rows×cols array with guarantee semantics, using the scalar reference
// backend. CoverageMatrixWith selects an alternative engine.
func CoverageMatrix(tests []Test, catalog []CatalogEntry, rows, cols int) ([]CoverageResult, error) {
	return CoverageMatrixWith(ScalarEngine{}, tests, catalog, rows, cols)
}
