package march

import (
	"testing"

	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

// detectsAF evaluates guarantee detection of a decoder fault over all
// valid (x, y) pairs and order assignments.
func detectsAF(t *testing.T, tst Test, kind memsim.AFKind) (bool, int, int) {
	t.Helper()
	rows, cols := 2, 2
	n := rows * cols
	caught, total := 0, 0
	for x := 0; x < n; x++ {
		for y := 0; y < n; y++ {
			if x == y {
				if kind != memsim.AFNoCell {
					continue
				}
			} else if kind == memsim.AFNoCell && y != 0 {
				continue // AF1 only needs x
			}
			for _, orders := range tst.OrderAssignments() {
				arr := memsim.NewArray(rows, cols)
				if err := arr.InjectAddressFault(kind, x, y); err != nil {
					t.Fatalf("inject %v(%d,%d): %v", kind, x, y, err)
				}
				total++
				ms, err := tst.Run(arr, orders)
				if err != nil {
					t.Fatal(err)
				}
				if len(ms) > 0 {
					caught++
				}
			}
		}
	}
	return caught == total && total > 0, caught, total
}

// TestMATSPlusDetectsAddressFaults validates the published property that
// MATS+ (5N) detects the deterministic address-decoder fault types: AF2
// (wrong cell), AF3 (extra cell) and AF4 (shared cell).
func TestMATSPlusDetectsAddressFaults(t *testing.T) {
	for _, kind := range []memsim.AFKind{
		memsim.AFWrongCell, memsim.AFExtraCell, memsim.AFSharedCell,
	} {
		det, caught, total := detectsAF(t, MATSPlus(), kind)
		if !det {
			t.Errorf("MATS+ misses %v (%d/%d)", kind, caught, total)
		}
	}
}

// TestAF1UndetectableUnderGuaranteeSemantics: an address that accesses
// no cell reads X, which adversarially matches any expectation — so no
// march test *guarantees* detection at the logic level (real AF1
// screening relies on analog read behaviour).
func TestAF1UndetectableUnderGuaranteeSemantics(t *testing.T) {
	for _, tst := range []Test{MATSPlus(), MarchSS(), MarchPF()} {
		det, caught, _ := detectsAF(t, tst, memsim.AFNoCell)
		if det || caught != 0 {
			t.Errorf("%s claims AF1 detection (%d caught); X-reads must be adversarial", tst.Name, caught)
		}
	}
}

func TestAddressFaultMechanics(t *testing.T) {
	// AF4: addresses 1 and 2 share cell 1.
	a := memsim.NewArray(2, 2)
	if err := a.InjectAddressFault(memsim.AFSharedCell, 1, 2); err != nil {
		t.Fatal(err)
	}
	a.Write(1, 0)
	a.Write(2, 1) // lands in cell 1
	if got := a.Read(1); got != 1 {
		t.Errorf("AF4: Read(1) = %d, want 1 (aliased write)", got)
	}

	// AF2: address 0 accesses cell 3.
	b := memsim.NewArray(2, 2)
	if err := b.InjectAddressFault(memsim.AFWrongCell, 0, 3); err != nil {
		t.Fatal(err)
	}
	b.Write(3, 0)
	b.Write(0, 1) // lands in cell 3
	if got := b.Read(3); got != 1 {
		t.Errorf("AF2: Read(3) = %d, want 1", got)
	}

	// AF3: address 0 accesses cells 0 and 2; disagreement reads X.
	c := memsim.NewArray(2, 2)
	if err := c.InjectAddressFault(memsim.AFExtraCell, 0, 2); err != nil {
		t.Fatal(err)
	}
	c.Write(0, 1) // writes cells 0 and 2
	if got := c.Read(2); got != 1 {
		t.Errorf("AF3: Read(2) = %d, want 1", got)
	}
	c.Write(2, 0) // now cells disagree
	if got := c.Read(0); got != memsim.X {
		t.Errorf("AF3 disagreement: Read(0) = %d, want X", got)
	}
}

func TestAddressFaultValidation(t *testing.T) {
	a := memsim.NewArray(2, 2)
	if err := a.InjectAddressFault(memsim.AFWrongCell, 1, 1); err == nil {
		t.Error("x == y must be rejected")
	}
	if err := a.InjectAddressFault(memsim.AFWrongCell, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := a.InjectAddressFault(memsim.AFNoCell, 2, 0); err == nil {
		t.Error("second address fault must be rejected")
	}
	b := memsim.NewArray(2, 2)
	b.MustInject(memsim.Fault{Victim: 0, FP: fp.MustParse("<1r1/0/0>")})
	if err := b.InjectAddressFault(memsim.AFNoCell, 0, 0); err == nil {
		t.Error("address fault combined with cell fault must be rejected")
	}
}

func TestAFKindStrings(t *testing.T) {
	kinds := []memsim.AFKind{
		memsim.AFNone, memsim.AFNoCell, memsim.AFWrongCell,
		memsim.AFExtraCell, memsim.AFSharedCell,
	}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "?" || seen[s] {
			t.Errorf("bad or duplicate AF name %q", s)
		}
		seen[s] = true
	}
}
