package march

import (
	"errors"
	"fmt"
)

// ErrEngineUnsupported marks a (backend, fault entry) combination the
// backend deliberately does not model. Engines wrap it so harnesses can
// distinguish "this backend cannot evaluate this entry" (fall back to
// the scalar oracle) from a real failure (abort). The bit-plane
// engine's line-mediated CFst entries are the canonical case.
var ErrEngineUnsupported = errors.New("march: engine does not support this fault entry")

// Detection is one (test, fault family, geometry) detection result
// under guarantee semantics: Detected means every (victim,
// order-assignment) scenario — and every (victim, aggressor) pair for
// coupling faults — produced at least one mismatch; Caught/Scenarios is
// the partial count. (The prover's three-valued Verdict is a different,
// static notion.)
type Detection struct {
	Detected          bool
	Caught, Scenarios int
}

// Engine evaluates march-test fault detection on a geometry. The scalar
// memsim-backed engine is the semantic oracle; alternative backends
// (the bit-plane engine in internal/bitsim) must produce identical
// verdicts on every shared geometry, which the differential equivalence
// suite enforces. Abstracting the runner here lets the coverage matrix,
// the differential tests and the fuzz targets swap backends without
// duplicating the march walk.
type Engine interface {
	// Name identifies the backend in reports and diagnostics.
	Name() string
	// Detects evaluates a single-cell catalog entry over all victims and
	// ⇕-order assignments.
	Detects(t Test, rows, cols int, e CatalogEntry) (Detection, error)
	// DetectsTwoCell evaluates a two-cell catalog entry over all ordered
	// (victim, aggressor) pairs and ⇕-order assignments.
	DetectsTwoCell(t Test, rows, cols int, e TwoCellCatalogEntry) (Detection, error)
}

// ScalarEngine is the cell-at-a-time reference backend: every scenario
// runs the full march walk on a fresh memsim array with the fault
// injected. Exact but O(N²·len) per fault family — the differential
// oracle, not the production path.
type ScalarEngine struct{}

// Name identifies the backend.
func (ScalarEngine) Name() string { return "memsim" }

// Detects evaluates a single-cell entry with the scalar simulator.
func (ScalarEngine) Detects(t Test, rows, cols int, e CatalogEntry) (Detection, error) {
	det, caught, total, err := Detects(t, rows, cols, e.Make)
	return Detection{Detected: det, Caught: caught, Scenarios: total}, err
}

// DetectsTwoCell evaluates a two-cell entry with the scalar simulator.
func (ScalarEngine) DetectsTwoCell(t Test, rows, cols int, e TwoCellCatalogEntry) (Detection, error) {
	det, caught, total, err := DetectsTwoCellEntry(t, rows, cols, e)
	return Detection{Detected: det, Caught: caught, Scenarios: total}, err
}

// DetectsTwoCellOffsets evaluates a two-cell entry restricted to the
// given aggressor offsets with the scalar simulator; it implements
// TwoCellOffsetEngine.
func (ScalarEngine) DetectsTwoCellOffsets(t Test, rows, cols int, e TwoCellCatalogEntry, offsets []int) (Detection, error) {
	det, caught, total, err := DetectsTwoCellEntryOffsets(t, rows, cols, e, offsets)
	return Detection{Detected: det, Caught: caught, Scenarios: total}, err
}

// TwoCellOffsetEngine is the optional engine extension for
// neighborhood-restricted two-cell evaluation (aggressor = victim + δ
// for δ in a caller-chosen set — ±1 and ±cols cover physical
// neighbors). Both the scalar and the bit-plane engines implement it.
type TwoCellOffsetEngine interface {
	Engine
	DetectsTwoCellOffsets(t Test, rows, cols int, e TwoCellCatalogEntry, offsets []int) (Detection, error)
}

// CoverageMatrixWith evaluates every test against every catalog entry
// on a rows×cols array using the given backend. An entry the backend
// reports as ErrEngineUnsupported is re-evaluated with the scalar
// oracle instead of aborting the whole matrix; the row's Engine field
// records which backend produced it.
func CoverageMatrixWith(eng Engine, tests []Test, catalog []CatalogEntry, rows, cols int) ([]CoverageResult, error) {
	var out []CoverageResult
	for _, t := range tests {
		for _, e := range catalog {
			engine := eng.Name()
			v, err := eng.Detects(t, rows, cols, e)
			if errors.Is(err, ErrEngineUnsupported) {
				engine = ScalarEngine{}.Name()
				v, err = ScalarEngine{}.Detects(t, rows, cols, e)
			}
			if err != nil {
				return nil, fmt.Errorf("%s: %s × %s: %w", engine, t.Name, e.Name, err)
			}
			out = append(out, CoverageResult{
				Test: t.Name, Fault: e.Name, Partial: e.Partial,
				Detected: v.Detected, Caught: v.Caught, Scenarios: v.Scenarios,
				Engine: engine,
			})
		}
	}
	return out, nil
}

// TwoCellCertificateWith builds the two-cell certificate for one test
// and geometry using the given backend for the exhaustive simulation
// half (the static pre-pass half is backend-independent). Entries the
// backend does not support (ErrEngineUnsupported — e.g. line-mediated
// CFst under the bit-plane engine) fall back to the scalar oracle
// per-entry, so one such entry no longer aborts the whole certificate;
// each row's Engine field records the backend that evaluated it.
func TwoCellCertificateWith(eng Engine, t Test, catalog []TwoCellCatalogEntry, rows, cols int) (TwoCellCertificate, error) {
	return twoCellCertificate(eng, t, catalog, rows, cols, nil)
}

// TwoCellCertificateOffsetsWith is TwoCellCertificateWith restricted to
// the given aggressor offsets (aggressor = victim + δ). The engine must
// implement TwoCellOffsetEngine — both ScalarEngine and the bit-plane
// engine do — unless every entry falls back. A nil/empty offsets slice
// means the full pair space.
func TwoCellCertificateOffsetsWith(eng Engine, t Test, catalog []TwoCellCatalogEntry, rows, cols int, offsets []int) (TwoCellCertificate, error) {
	return twoCellCertificate(eng, t, catalog, rows, cols, offsets)
}

func twoCellCertificate(eng Engine, t Test, catalog []TwoCellCatalogEntry, rows, cols int, offsets []int) (TwoCellCertificate, error) {
	cert := TwoCellCertificate{Test: t.Name, Rows: rows, Cols: cols, Offsets: offsets}
	detect := func(eng Engine, e TwoCellCatalogEntry) (Detection, error) {
		if len(offsets) == 0 {
			return eng.DetectsTwoCell(t, rows, cols, e)
		}
		oe, ok := eng.(TwoCellOffsetEngine)
		if !ok {
			return Detection{}, fmt.Errorf("march: engine %s cannot restrict aggressor offsets: %w", eng.Name(), ErrEngineUnsupported)
		}
		return oe.DetectsTwoCellOffsets(t, rows, cols, e, offsets)
	}
	for _, e := range catalog {
		cannot, why := CannotCompleteTwoCell(t, e)
		engine := eng.Name()
		v, err := detect(eng, e)
		if errors.Is(err, ErrEngineUnsupported) {
			engine = ScalarEngine{}.Name()
			v, err = detect(ScalarEngine{}, e)
		}
		if err != nil {
			return cert, fmt.Errorf("%s: %s × %s: %w", engine, t.Name, e.Name, err)
		}
		cert.Entries = append(cert.Entries, TwoCellCertRow{
			Entry: e.Name, Class: e.FP.Classify(), Partial: e.Partial,
			ProvedMiss: cannot, Reason: why,
			Detected: v.Detected, Caught: v.Caught, Scenarios: v.Scenarios,
			Engine: engine,
		})
	}
	return cert, nil
}
