package march

import "fmt"

// Detection is one (test, fault family, geometry) detection result
// under guarantee semantics: Detected means every (victim,
// order-assignment) scenario — and every (victim, aggressor) pair for
// coupling faults — produced at least one mismatch; Caught/Scenarios is
// the partial count. (The prover's three-valued Verdict is a different,
// static notion.)
type Detection struct {
	Detected          bool
	Caught, Scenarios int
}

// Engine evaluates march-test fault detection on a geometry. The scalar
// memsim-backed engine is the semantic oracle; alternative backends
// (the bit-plane engine in internal/bitsim) must produce identical
// verdicts on every shared geometry, which the differential equivalence
// suite enforces. Abstracting the runner here lets the coverage matrix,
// the differential tests and the fuzz targets swap backends without
// duplicating the march walk.
type Engine interface {
	// Name identifies the backend in reports and diagnostics.
	Name() string
	// Detects evaluates a single-cell catalog entry over all victims and
	// ⇕-order assignments.
	Detects(t Test, rows, cols int, e CatalogEntry) (Detection, error)
	// DetectsTwoCell evaluates a two-cell catalog entry over all ordered
	// (victim, aggressor) pairs and ⇕-order assignments.
	DetectsTwoCell(t Test, rows, cols int, e TwoCellCatalogEntry) (Detection, error)
}

// ScalarEngine is the cell-at-a-time reference backend: every scenario
// runs the full march walk on a fresh memsim array with the fault
// injected. Exact but O(N²·len) per fault family — the differential
// oracle, not the production path.
type ScalarEngine struct{}

// Name identifies the backend.
func (ScalarEngine) Name() string { return "memsim" }

// Detects evaluates a single-cell entry with the scalar simulator.
func (ScalarEngine) Detects(t Test, rows, cols int, e CatalogEntry) (Detection, error) {
	det, caught, total, err := Detects(t, rows, cols, e.Make)
	return Detection{Detected: det, Caught: caught, Scenarios: total}, err
}

// DetectsTwoCell evaluates a two-cell entry with the scalar simulator.
func (ScalarEngine) DetectsTwoCell(t Test, rows, cols int, e TwoCellCatalogEntry) (Detection, error) {
	det, caught, total, err := DetectsTwoCellEntry(t, rows, cols, e)
	return Detection{Detected: det, Caught: caught, Scenarios: total}, err
}

// CoverageMatrixWith evaluates every test against every catalog entry
// on a rows×cols array using the given backend.
func CoverageMatrixWith(eng Engine, tests []Test, catalog []CatalogEntry, rows, cols int) ([]CoverageResult, error) {
	var out []CoverageResult
	for _, t := range tests {
		for _, e := range catalog {
			v, err := eng.Detects(t, rows, cols, e)
			if err != nil {
				return nil, fmt.Errorf("%s: %s × %s: %w", eng.Name(), t.Name, e.Name, err)
			}
			out = append(out, CoverageResult{
				Test: t.Name, Fault: e.Name, Partial: e.Partial,
				Detected: v.Detected, Caught: v.Caught, Scenarios: v.Scenarios,
			})
		}
	}
	return out, nil
}

// TwoCellCertificateWith builds the two-cell certificate for one test
// and geometry using the given backend for the exhaustive simulation
// half (the static pre-pass half is backend-independent).
func TwoCellCertificateWith(eng Engine, t Test, catalog []TwoCellCatalogEntry, rows, cols int) (TwoCellCertificate, error) {
	cert := TwoCellCertificate{Test: t.Name, Rows: rows, Cols: cols}
	for _, e := range catalog {
		cannot, why := CannotCompleteTwoCell(t, e)
		v, err := eng.DetectsTwoCell(t, rows, cols, e)
		if err != nil {
			return cert, fmt.Errorf("%s: %s × %s: %w", eng.Name(), t.Name, e.Name, err)
		}
		cert.Entries = append(cert.Entries, TwoCellCertRow{
			Entry: e.Name, Class: e.FP.Classify(), Partial: e.Partial,
			ProvedMiss: cannot, Reason: why,
			Detected: v.Detected, Caught: v.Caught, Scenarios: v.Scenarios,
		})
	}
	return cert, nil
}
