package march

import (
	"testing"

	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

// TestMarchSSDetectsAllTwoCellStaticFaults validates the functional
// simulator against March SS's published property: it detects all 36
// static two-cell FPs (the full simple-static coupling space).
func TestMarchSSDetectsAllTwoCellStaticFaults(t *testing.T) {
	cov, err := EvaluateTwoCellCoverage(MarchSS(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cov.DetectedAll != 36 {
		t.Errorf("March SS detects %d/36 two-cell FPs, want 36", cov.DetectedAll)
	}
}

// TestMarchCMinusTwoCellCoverage pins March C-'s known coupling
// coverage: all CFst/CFtr/CFrd/CFir, the transition-write and read CFds,
// but no CFwd/CFdr (they need same-address write-read / read-read pairs)
// and no non-transition-write CFds.
func TestMarchCMinusTwoCellCoverage(t *testing.T) {
	cov, err := EvaluateTwoCellCoverage(MarchCMinus(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := map[fp.CFKind]int{
		fp.CFst: 4, fp.CFds: 8, fp.CFtr: 4, fp.CFwd: 0,
		fp.CFrd: 4, fp.CFdr: 0, fp.CFir: 4,
	}
	for k, n := range want {
		if cov.Detected[k] != n {
			t.Errorf("March C- detects %d/%d %s, want %d", cov.Detected[k], cov.Total[k], k, n)
		}
	}
	if cov.DetectedAll != 24 {
		t.Errorf("March C- total = %d/36, want 24", cov.DetectedAll)
	}
}

func TestCFdsMechanics(t *testing.T) {
	// <0w1_a; 1_v/0/->: an up-transition write on the aggressor flips a
	// victim holding 1.
	w1 := fp.W(1)
	p := fp.TwoCellFP{AggState: 0, AggOp: &w1, VictimState: 1, F: 0}
	a := memsim.NewArray(2, 2)
	a.MustInjectTwoCell(memsim.TwoCellFault{Victim: 3, Aggressor: 0, FP: p})
	a.Write(3, 1)
	a.Write(0, 0)
	a.Write(0, 1) // 0w1 on the aggressor → victim flips
	if got := a.Read(3); got != 0 {
		t.Errorf("victim reads %d after aggressor up-transition, want 0", got)
	}
	// Non-matching transition does not fire.
	b := memsim.NewArray(2, 2)
	b.MustInjectTwoCell(memsim.TwoCellFault{Victim: 3, Aggressor: 0, FP: p})
	b.Write(3, 1)
	b.Write(0, 1)
	b.Write(0, 0) // 1w0: wrong transition
	if got := b.Read(3); got != 1 {
		t.Errorf("victim reads %d after non-matching transition, want 1", got)
	}
}

func TestCFstMechanics(t *testing.T) {
	// <1; 0/1/->: victim cannot hold 0 while the aggressor holds 1.
	p := fp.TwoCellFP{AggState: 1, VictimState: 0, F: 1}
	a := memsim.NewArray(2, 2)
	a.MustInjectTwoCell(memsim.TwoCellFault{Victim: 1, Aggressor: 2, FP: p})
	a.Write(2, 1)
	a.Write(1, 0) // immediately flips back to 1 (state coupling)
	if got := a.Read(1); got != 1 {
		t.Errorf("victim reads %d with aggressor at 1, want 1", got)
	}
	a.Write(2, 0) // release the aggressor
	a.Write(1, 0)
	if got := a.Read(1); got != 0 {
		t.Errorf("victim reads %d with aggressor at 0, want 0", got)
	}
}

func TestCFtrMechanics(t *testing.T) {
	// <1; 0w1/0/->: the victim's up-transition fails when the aggressor
	// holds 1.
	w1 := fp.W(1)
	p := fp.TwoCellFP{AggState: 1, VictimState: 0, VictimOp: &w1, F: 0}
	if p.Classify() != fp.CFtr {
		t.Fatalf("classified %s, want CFtr", p.Classify())
	}
	a := memsim.NewArray(2, 2)
	a.MustInjectTwoCell(memsim.TwoCellFault{Victim: 0, Aggressor: 3, FP: p})
	a.Write(3, 1)
	a.Write(0, 0)
	a.Write(0, 1) // fails
	if got := a.Read(0); got != 0 {
		t.Errorf("victim reads %d after failed transition, want 0", got)
	}
}

func TestInjectTwoCellValidation(t *testing.T) {
	a := memsim.NewArray(2, 2)
	if err := a.InjectTwoCell(memsim.TwoCellFault{Victim: 1, Aggressor: 1}); err == nil {
		t.Error("victim == aggressor must be rejected")
	}
	if err := a.InjectTwoCell(memsim.TwoCellFault{Victim: 0, Aggressor: 1}); err == nil {
		t.Error("unclassifiable FP must be rejected")
	}
}

func TestDetectsTwoCellCounts(t *testing.T) {
	// A 2×2 array has 4·3 = 12 ordered pairs; MATS+ has 2 order
	// assignments → 24 scenarios.
	p := fp.TwoCellFP{AggState: 1, VictimState: 0, F: 1}
	_, _, total, err := DetectsTwoCell(MATSPlus(), 2, 2, p)
	if err != nil {
		t.Fatal(err)
	}
	if total != 24 {
		t.Errorf("scenarios = %d, want 24", total)
	}
}
