package march

// el is a construction shorthand.
func el(o Order, ops ...Op) Element { return Element{Order: o, Ops: ops} }

// MATSPlus is MATS+ (5N): {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}.
func MATSPlus() Test {
	return Test{Name: "MATS+", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(1)),
		el(Down, R(1), W(0)),
	}}
}

// MATSPlusPlus is MATS++ (6N): {⇕(w0); ⇑(r0,w1); ⇓(r1,w0,r0)}.
func MATSPlusPlus() Test {
	return Test{Name: "MATS++", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(1)),
		el(Down, R(1), W(0), R(0)),
	}}
}

// MarchX is March X (6N): {⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)}.
func MarchX() Test {
	return Test{Name: "March X", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(1)),
		el(Down, R(1), W(0)),
		el(Any, R(0)),
	}}
}

// MarchY is March Y (8N): {⇕(w0); ⇑(r0,w1,r1); ⇓(r1,w0,r0); ⇕(r0)}.
func MarchY() Test {
	return Test{Name: "March Y", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(1), R(1)),
		el(Down, R(1), W(0), R(0)),
		el(Any, R(0)),
	}}
}

// MarchCMinus is March C- (10N):
// {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}.
func MarchCMinus() Test {
	return Test{Name: "March C-", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(1)),
		el(Up, R(1), W(0)),
		el(Down, R(0), W(1)),
		el(Down, R(1), W(0)),
		el(Any, R(0)),
	}}
}

// MarchA is March A (15N):
// {⇕(w0); ⇑(r0,w1,w0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}.
func MarchA() Test {
	return Test{Name: "March A", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(1), W(0), W(1)),
		el(Up, R(1), W(0), W(1)),
		el(Down, R(1), W(0), W(1), W(0)),
		el(Down, R(0), W(1), W(0)),
	}}
}

// MarchB is March B (17N):
// {⇕(w0); ⇑(r0,w1,r1,w0,r0,w1); ⇑(r1,w0,w1); ⇓(r1,w0,w1,w0); ⇓(r0,w1,w0)}.
func MarchB() Test {
	return Test{Name: "March B", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(1), R(1), W(0), R(0), W(1)),
		el(Up, R(1), W(0), W(1)),
		el(Down, R(1), W(0), W(1), W(0)),
		el(Down, R(0), W(1), W(0)),
	}}
}

// MarchSS is March SS (22N), the static simple-fault test:
// {⇕(w0); ⇑(r0,r0,w0,r0,w1); ⇑(r1,r1,w1,r1,w0);
//
//	⇓(r0,r0,w0,r0,w1); ⇓(r1,r1,w1,r1,w0); ⇕(r0)}.
func MarchSS() Test {
	return Test{Name: "March SS", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), R(0), W(0), R(0), W(1)),
		el(Up, R(1), R(1), W(1), R(1), W(0)),
		el(Down, R(0), R(0), W(0), R(0), W(1)),
		el(Down, R(1), R(1), W(1), R(1), W(0)),
		el(Any, R(0)),
	}}
}

// MarchLR is March LR (14N), the linked-fault test:
// {⇕(w0); ⇓(r0,w1); ⇑(r1,w0,r0,w1); ⇑(r1,w0); ⇑(r0,w1,r1,w0); ⇕(r0)}.
func MarchLR() Test {
	return Test{Name: "March LR", Elements: []Element{
		el(Any, W(0)),
		el(Down, R(0), W(1)),
		el(Up, R(1), W(0), R(0), W(1)),
		el(Up, R(1), W(0)),
		el(Up, R(0), W(1), R(1), W(0)),
		el(Any, R(0)),
	}}
}

// MarchRAW is March RAW (26N), targeting read-after-write and
// read-after-read faults (it covers WDF and DRDF, which March SS's
// predecessors miss):
// {⇕(w0); ⇑(r0,w0,r0,r0,w1,r1); ⇑(r1,w1,r1,r1,w0,r0);
//
//	⇓(r0,w0,r0,r0,w1,r1); ⇓(r1,w1,r1,r1,w0,r0); ⇕(r0)}.
func MarchRAW() Test {
	return Test{Name: "March RAW", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(0), R(0), R(0), W(1), R(1)),
		el(Up, R(1), W(1), R(1), R(1), W(0), R(0)),
		el(Down, R(0), W(0), R(0), R(0), W(1), R(1)),
		el(Down, R(1), W(1), R(1), R(1), W(0), R(0)),
		el(Any, R(0)),
	}}
}

// MarchPF is the paper's test for partial faults (16N):
//
//	{⇕(w0,w1); ⇕(r1,w1,w0,w0,w1,r1); ⇕(w1,w0); ⇕(r0,w0,w1,w1,w0,r0)}
//
// It detects all simulated and complementary partial FPs of Table 1 that
// can be completed [Al-Ars01b].
func MarchPF() Test {
	return Test{Name: "March PF", Elements: []Element{
		el(Any, W(0), W(1)),
		el(Any, R(1), W(1), W(0), W(0), W(1), R(1)),
		el(Any, W(1), W(0)),
		el(Any, R(0), W(0), W(1), W(1), W(0), R(0)),
	}}
}

// Classical returns the pre-existing tests the paper implicitly compares
// against (they miss partial faults).
func Classical() []Test {
	return []Test{
		MATSPlus(), MATSPlusPlus(), MarchX(), MarchY(),
		MarchCMinus(), MarchA(), MarchB(), MarchLR(),
		MarchSS(), MarchRAW(),
	}
}

// All returns every test in the library, March PF last.
func All() []Test { return append(Classical(), MarchPF()) }
