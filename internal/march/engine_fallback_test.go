package march

import (
	"errors"
	"fmt"
	"testing"
)

// refusingEngine wraps the scalar oracle but refuses one catalog entry
// by name — a controllable stand-in for the bit-plane engine's
// line-mediated CFst refusal.
type refusingEngine struct {
	ScalarEngine
	refuse string
}

func (r refusingEngine) Name() string { return "refuser" }

func (r refusingEngine) Detects(t Test, rows, cols int, e CatalogEntry) (Detection, error) {
	if e.Name == r.refuse {
		return Detection{}, fmt.Errorf("refuser: %s: %w", e.Name, ErrEngineUnsupported)
	}
	return r.ScalarEngine.Detects(t, rows, cols, e)
}

func (r refusingEngine) DetectsTwoCell(t Test, rows, cols int, e TwoCellCatalogEntry) (Detection, error) {
	if e.Name == r.refuse {
		return Detection{}, fmt.Errorf("refuser: %s: %w", e.Name, ErrEngineUnsupported)
	}
	return r.ScalarEngine.DetectsTwoCell(t, rows, cols, e)
}

// brokenEngine fails an entry with a non-sentinel error: real failures
// must still abort, not fall back.
type brokenEngine struct {
	ScalarEngine
	breakName string
}

func (b brokenEngine) Name() string { return "broken" }

func (b brokenEngine) DetectsTwoCell(t Test, rows, cols int, e TwoCellCatalogEntry) (Detection, error) {
	if e.Name == b.breakName {
		return Detection{}, fmt.Errorf("broken: internal failure on %s", e.Name)
	}
	return b.ScalarEngine.DetectsTwoCell(t, rows, cols, e)
}

func TestCoverageMatrixFallsBackPerEntry(t *testing.T) {
	tests := []Test{MATSPlus()}
	catalog := ClassicalFaultCatalog()[:3]
	want, err := CoverageMatrixWith(ScalarEngine{}, tests, catalog, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CoverageMatrixWith(refusingEngine{refuse: catalog[1].Name}, tests, catalog, 2, 2)
	if err != nil {
		t.Fatalf("refused entry aborted the matrix: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("row count %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Detected != want[i].Detected || got[i].Caught != want[i].Caught || got[i].Scenarios != want[i].Scenarios {
			t.Fatalf("row %d verdict differs from oracle: %+v vs %+v", i, got[i], want[i])
		}
		wantEngine := "refuser"
		if i == 1 {
			wantEngine = ScalarEngine{}.Name()
		}
		if got[i].Engine != wantEngine {
			t.Fatalf("row %d engine = %q, want %q", i, got[i].Engine, wantEngine)
		}
	}
}

func TestTwoCellCertificateFallsBackPerEntry(t *testing.T) {
	test := MATSPlus()
	catalog := TwoCellCatalog()[:4]
	want, err := TwoCellCertificateWith(ScalarEngine{}, test, catalog, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TwoCellCertificateWith(refusingEngine{refuse: catalog[2].Name}, test, catalog, 2, 2)
	if err != nil {
		t.Fatalf("refused entry aborted the certificate: %v", err)
	}
	for i, row := range got.Entries {
		w := want.Entries[i]
		if row.Detected != w.Detected || row.Caught != w.Caught || row.Scenarios != w.Scenarios {
			t.Fatalf("row %d verdict differs from oracle: %+v vs %+v", i, row, w)
		}
		wantEngine := "refuser"
		if i == 2 {
			wantEngine = ScalarEngine{}.Name()
		}
		if row.Engine != wantEngine {
			t.Fatalf("row %d engine = %q, want %q", i, row.Engine, wantEngine)
		}
	}
}

func TestTwoCellCertificateRealErrorStillAborts(t *testing.T) {
	catalog := TwoCellCatalog()[:2]
	_, err := TwoCellCertificateWith(brokenEngine{breakName: catalog[0].Name}, MATSPlus(), catalog, 2, 2)
	if err == nil || errors.Is(err, ErrEngineUnsupported) {
		t.Fatalf("non-sentinel engine failure did not abort: %v", err)
	}
}

func TestDetectsTwoCellEntryOffsetsMatchesFullWalk(t *testing.T) {
	test := MATSPlus()
	rows, cols := 2, 3
	n := rows * cols
	all := make([]int, 0, 2*(n-1))
	for d := -(n - 1); d <= n-1; d++ {
		if d != 0 {
			all = append(all, d)
		}
	}
	for _, e := range []TwoCellCatalogEntry{TwoCellCatalog()[0], TwoCellCatalog()[37]} {
		fdet, fc, ft, err := DetectsTwoCellEntry(test, rows, cols, e)
		if err != nil {
			t.Fatal(err)
		}
		odet, oc, ot, err := DetectsTwoCellEntryOffsets(test, rows, cols, e, all)
		if err != nil {
			t.Fatal(err)
		}
		if odet != fdet || oc != fc || ot != ft {
			t.Fatalf("%s: all-offsets walk (%v %d/%d) differs from pair walk (%v %d/%d)",
				e.Name, odet, oc, ot, fdet, fc, ft)
		}
	}
}

func TestDetectsTwoCellEntryOffsetsScenarioCount(t *testing.T) {
	test := MATSPlus()
	rows, cols := 3, 3
	n := rows * cols
	offsets := []int{1, -1, cols, -cols}
	e := TwoCellCatalog()[0]
	_, _, total, err := DetectsTwoCellEntryOffsets(test, rows, cols, e, offsets)
	if err != nil {
		t.Fatal(err)
	}
	wantPairs := 0
	for _, d := range offsets {
		abs := d
		if abs < 0 {
			abs = -abs
		}
		wantPairs += n - abs
	}
	want := wantPairs * len(test.OrderAssignments())
	if total != want {
		t.Fatalf("scenario count %d, want Σ_δ(n−|δ|)×assignments = %d", total, want)
	}
}

func TestDetectsTwoCellEntryOffsetsValidation(t *testing.T) {
	e := TwoCellCatalog()[0]
	for name, offsets := range map[string][]int{
		"zero offset": {1, 0},
		"duplicate":   {1, -1, 1},
		"empty":       {},
	} {
		if _, _, _, err := DetectsTwoCellEntryOffsets(MATSPlus(), 2, 2, e, offsets); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// offsetlessEngine implements Engine but not TwoCellOffsetEngine (no
// embedding — ScalarEngine would leak its offsets method); an
// offsets-restricted certificate must fall back to the scalar oracle
// for every entry.
type offsetlessEngine struct{}

func (offsetlessEngine) Name() string { return "offsetless" }

func (offsetlessEngine) Detects(t Test, rows, cols int, e CatalogEntry) (Detection, error) {
	return ScalarEngine{}.Detects(t, rows, cols, e)
}

func (offsetlessEngine) DetectsTwoCell(t Test, rows, cols int, e TwoCellCatalogEntry) (Detection, error) {
	return ScalarEngine{}.DetectsTwoCell(t, rows, cols, e)
}

func TestTwoCellCertificateOffsets(t *testing.T) {
	test := MATSPlus()
	catalog := TwoCellCatalog()[:3]
	offsets := []int{1, -1, 2}
	cert, err := TwoCellCertificateOffsetsWith(ScalarEngine{}, test, catalog, 2, 2, offsets)
	if err != nil {
		t.Fatal(err)
	}
	if len(cert.Offsets) != 3 || cert.Offsets[2] != 2 {
		t.Fatalf("certificate offsets = %v", cert.Offsets)
	}
	for i, row := range cert.Entries {
		det, caught, total, err := DetectsTwoCellEntryOffsets(test, 2, 2, catalog[i], offsets)
		if err != nil {
			t.Fatal(err)
		}
		if row.Detected != det || row.Caught != caught || row.Scenarios != total {
			t.Fatalf("row %d (%s): cert %+v vs direct (%v %d/%d)", i, row.Entry, row, det, caught, total)
		}
	}

	// The interface-less engine must not abort — every row falls back.
	viaFallback, err := TwoCellCertificateOffsetsWith(offsetlessEngine{}, test, catalog, 2, 2, offsets)
	if err != nil {
		t.Fatalf("offset-incapable engine aborted: %v", err)
	}
	for i, row := range viaFallback.Entries {
		if row.Engine != (ScalarEngine{}).Name() {
			t.Fatalf("row %d engine = %q, want scalar fallback", i, row.Engine)
		}
		w := cert.Entries[i]
		if row.Detected != w.Detected || row.Caught != w.Caught || row.Scenarios != w.Scenarios {
			t.Fatalf("fallback row %d differs: %+v vs %+v", i, row, w)
		}
	}

	// Nil offsets degrade to the full-pair certificate.
	full, err := TwoCellCertificateOffsetsWith(ScalarEngine{}, test, catalog, 2, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := TwoCellCertificateWith(ScalarEngine{}, test, catalog, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range full.Entries {
		if full.Entries[i] != direct.Entries[i] {
			t.Fatalf("nil-offsets row %d differs from full certificate", i)
		}
	}

	// FP-only sanity: an offset-restricted scenario space is a subset,
	// so Caught can never exceed the full walk's.
	for i := range cert.Entries {
		if cert.Entries[i].Caught > direct.Entries[i].Caught {
			t.Fatalf("restricted walk caught more than the full walk for %s", cert.Entries[i].Entry)
		}
	}
}
