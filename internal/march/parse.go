package march

import (
	"fmt"
	"strings"
)

// Parse reads a march test from its notation. Both the arrow form
// "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}" and the paper's ASCII form
// "{m(w0); u(r0,w1); d(r1,w0)}" are accepted.
func Parse(name, s string) (Test, error) {
	t := Test{Name: name}
	body := strings.TrimSpace(s)
	if strings.HasPrefix(body, "{") && strings.HasSuffix(body, "}") {
		body = body[1 : len(body)-1]
	}
	for _, raw := range strings.Split(body, ";") {
		chunk := strings.TrimSpace(raw)
		if chunk == "" {
			continue
		}
		e, err := parseElement(chunk)
		if err != nil {
			return Test{}, fmt.Errorf("march: %q: %w", chunk, err)
		}
		t.Elements = append(t.Elements, e)
	}
	if err := t.Validate(); err != nil {
		return Test{}, err
	}
	return t, nil
}

// MustParse parses and panics on error.
func MustParse(name, s string) Test {
	t, err := Parse(name, s)
	if err != nil {
		panic(err)
	}
	return t
}

func parseElement(s string) (Element, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return Element{}, fmt.Errorf("missing parentheses")
	}
	orderTok := strings.TrimSpace(s[:open])
	var order Order
	switch orderTok {
	case "⇕", "m", "M", "b", "any":
		order = Any
	case "⇑", "u", "U", "up":
		order = Up
	case "⇓", "d", "D", "down":
		order = Down
	default:
		return Element{}, fmt.Errorf("unknown order token %q", orderTok)
	}
	e := Element{Order: order}
	for _, tok := range strings.Split(s[open+1:len(s)-1], ",") {
		tok = strings.TrimSpace(tok)
		if len(tok) != 2 || (tok[0] != 'r' && tok[0] != 'w') || (tok[1] != '0' && tok[1] != '1') {
			return Element{}, fmt.Errorf("invalid operation %q", tok)
		}
		op := Op{Read: tok[0] == 'r', Data: int(tok[1] - '0')}
		e.Ops = append(e.Ops, op)
	}
	if len(e.Ops) == 0 {
		return Element{}, fmt.Errorf("empty element")
	}
	return e, nil
}
