package march

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/memsim"
)

// This file is the two-cell analogue of the completion pre-pass in
// lint.go: a static prover that a march test can never fire a given
// coupling fault — classical or partial — on any array geometry,
// address-order assignment, or (aggressor, victim) address pair, so a
// dynamic DetectsTwoCell sweep need not run.
//
// The proof rests on the uniform-state invariant of march semantics:
// every address receives the whole op list of an element before the
// next element starts, so at any operation of element e the *other*
// cell of the pair holds either e's entry state (its block not yet run)
// or e's exit state (already run) — and both cases are realizable under
// some address order and geometry, for either address relation a<v or
// a>v. Firing conditions mirror memsim's cfault semantics exactly;
// unknown (X) state never satisfies a condition. If the fault can never
// fire, the memory behaves healthily throughout, and a test that passes
// on a healthy memory reports zero mismatches — hence "cannot fire"
// implies "cannot detect". That last step forces one guard: a test that
// *fails* on a fault-free memory (a contradictory read) "detects"
// every fault, so the prover claims nothing for such tests.

// TwoCellCatalogEntry is one injectable two-cell (coupling) fault for
// coverage evaluation and the static pre-pass: a classical always-armed
// FP, or a *partial* coupling FP in completed form whose firing is
// additionally mediated by a floating line.
type TwoCellCatalogEntry struct {
	// Name identifies the entry in findings and certificates.
	Name string
	// FP is the underlying static two-cell fault primitive.
	FP fp.TwoCellFP
	// Comp is the completing operation of a partial entry: the mediating
	// floating line must hold its driven value at the sensitizing moment.
	// Nil for classical entries and uncompletable ones.
	Comp *fp.Op
	// Float is the mediating floating voltage for partial entries.
	Float defect.FloatVar
	// Uncompletable marks word-line-mediated partial coupling faults:
	// the two-cell analogue of Table 1's "Not possible" rows.
	Uncompletable bool
	// Partial distinguishes partial entries from classical ones.
	Partial bool
}

// Make builds the memsim injection descriptor for a concrete address
// pair.
func (e TwoCellCatalogEntry) Make(victim, aggressor int) memsim.TwoCellFault {
	f := memsim.TwoCellFault{
		Victim: victim, Aggressor: aggressor, FP: e.FP,
		Uncompletable: e.Uncompletable,
	}
	if e.Comp != nil {
		f.Float = e.Float
		f.Comp = e.Comp.Data
	}
	return f
}

// TwoCellCatalog returns the full evaluation catalog: the 36 classical
// static two-cell FPs of [vdGoor00], plus partial coupling faults in
// completed form. The partial entries model the paper's mediation
// mechanisms applied to a coupled pair: a floating bit line in the
// victim's column pre-set against (or with) the victim deviation, a
// floating output buffer biasing a victim read, and floating word lines
// — which have no completing operation and are therefore uncompletable,
// the two-cell analogue of Table 1's "Not possible" rows. Bit-line
// mediated CFst is deliberately absent: state coupling is evaluated
// after every operation has driven the lines, so a pre-set line value
// cannot gate it the way it gates operation-sensitized classes.
func TwoCellCatalog() []TwoCellCatalogEntry {
	var out []TwoCellCatalogEntry
	for _, p := range fp.EnumerateTwoCellStaticFPs() {
		out = append(out, TwoCellCatalogEntry{
			Name: fmt.Sprintf("%s %s", p.Classify(), p),
			FP:   p,
		})
	}
	partial := func(label, where string, p fp.TwoCellFP, comp fp.Op, v defect.FloatVar) TwoCellCatalogEntry {
		c := comp
		return TwoCellCatalogEntry{
			Name:    fmt.Sprintf("%s partial (%s) %s", label, where, fp.CompletedTwoCellString(p, c)),
			FP:      p,
			Comp:    &c,
			Float:   v,
			Partial: true,
		}
	}
	uncompletable := func(label string, p fp.TwoCellFP) TwoCellCatalogEntry {
		return TwoCellCatalogEntry{
			Name:          fmt.Sprintf("%s partial (word line) %s — Not possible", label, p),
			FP:            p,
			Float:         defect.FloatWordLine,
			Uncompletable: true,
			Partial:       true,
		}
	}
	w0, w1 := fp.W(0), fp.W(1)
	r0, r1 := fp.R(0), fp.R(1)
	aw1, aw0 := fp.W(1), fp.W(0)
	out = append(out,
		// A victim up-transition write fails while the aggressor holds 1
		// and the victim's bit line floats at 0, fighting the transition.
		partial("CFtr↑", "bit line",
			fp.TwoCellFP{AggState: 1, VictimState: 0, VictimOp: &w1, F: 0},
			fp.CWBL(0), defect.FloatBitLine),
		// The mirror image for the down transition.
		partial("CFtr↓", "bit line",
			fp.TwoCellFP{AggState: 0, VictimState: 1, VictimOp: &w0, F: 1},
			fp.CWBL(1), defect.FloatBitLine),
		// A non-transition w0 flips the victim when the bit line floats
		// high under an aggressor at 1.
		partial("CFwd0", "bit line",
			fp.TwoCellFP{AggState: 1, VictimState: 0, VictimOp: &w0, F: 1},
			fp.CWBL(1), defect.FloatBitLine),
		// A victim r1 reads (and writes back) 0 when the floating output
		// buffer still holds a 0 and the aggressor sits at 0.
		partial("CFrd1", "output buffer",
			fp.TwoCellFP{AggState: 0, VictimState: 1, VictimOp: &r1, F: 0, R: fp.ReadResultOf(0)},
			fp.CWBL(0), defect.FloatOutBuffer),
		// A deceptive read: r0 returns the right value but leaves the
		// victim flipped when its bit line floated high.
		partial("CFdr0", "bit line",
			fp.TwoCellFP{AggState: 1, VictimState: 0, VictimOp: &r0, F: 1, R: fp.ReadResultOf(0)},
			fp.CWBL(1), defect.FloatBitLine),
		// An aggressor up-transition write disturbs a victim at 1 only
		// when the victim's bit line floats at 0.
		partial("CFds↑", "bit line",
			fp.TwoCellFP{AggState: 0, AggOp: &aw1, VictimState: 1, F: 0},
			fp.CWBL(0), defect.FloatBitLine),
		// Word-line-mediated partials have no completing operation.
		uncompletable("CFds↓",
			fp.TwoCellFP{AggState: 1, AggOp: &aw0, VictimState: 0, F: 1}),
		uncompletable("CFst",
			fp.TwoCellFP{AggState: 1, VictimState: 0, F: 1}),
	)
	return out
}

// elemTrace is the healthy state trace of one march element: the
// uniform state entering it, the per-op pre- and post-states of its
// block, and the state leaving it.
type elemTrace struct {
	in, out     int
	pres, posts []int
}

// traceTest flattens a test into per-element healthy traces and reports
// whether the test passes on a fault-free memory: no read ever expects
// a value the tracked healthy state contradicts (reads of unknown state
// match adversarially, exactly as in Test.Run).
func traceTest(t Test) ([]elemTrace, bool) {
	state := unknown
	healthy := true
	trs := make([]elemTrace, 0, len(t.Elements))
	for _, e := range t.Elements {
		et := elemTrace{in: state, pres: make([]int, 0, len(e.Ops)), posts: make([]int, 0, len(e.Ops))}
		for _, op := range e.Ops {
			et.pres = append(et.pres, state)
			if op.Read {
				if state != unknown && state != op.Data {
					healthy = false
				}
			} else {
				state = op.Data
			}
			et.posts = append(et.posts, state)
		}
		et.out = state
		trs = append(trs, et)
	}
	return trs, healthy
}

// passesHealthy reports whether the test passes on a fault-free memory.
func passesHealthy(t Test) bool {
	_, healthy := traceTest(t)
	return healthy
}

// CannotCompleteTwoCell statically proves, when it returns true, that
// the march test can never fire the catalog entry's coupling fault —
// for any geometry, any ⇑/⇓/⇕ order assignment, any (aggressor, victim)
// pair and either address relation — so DetectsTwoCellEntry is
// guaranteed to report "not detected". A false return claims nothing.
//
// The proof enumerates, per element, the realizable (aggressor state,
// victim state) combinations at each operation: the cell executing the
// current block walks its per-op healthy states, while the other cell
// of the pair holds the element's entry or exit state (its own block
// runs entirely before or entirely after the current address's). For
// partial entries the mediating line value is additionally constrained
// to the set of values a realizable immediately-preceding operation can
// have driven — the same-cell predecessor's value mid-block, or the
// current/previous element's exit state at block boundaries.
func CannotCompleteTwoCell(t Test, e TwoCellCatalogEntry) (bool, string) {
	if err := t.Validate(); err != nil {
		return false, "" // no static claim about structurally invalid tests
	}
	trs, healthy := traceTest(t)
	if !healthy {
		// A test that fails on a fault-free memory "detects" every fault,
		// so "cannot fire" would not imply "cannot detect": claim nothing.
		return false, ""
	}
	if e.Uncompletable || (e.Partial && e.Float == defect.FloatWordLine) {
		return true, "the mediating floating voltage (word line) has no completing operation; the two-cell analogue of Table 1's \"Not possible\""
	}
	p := e.FP
	kind := p.Classify()
	if kind == fp.CFUnknown {
		return false, ""
	}
	// The line refinement only applies to operation-sensitized classes:
	// memsim evaluates their triggers against the line state *before* the
	// operation, which the predecessor analysis models. CFst is evaluated
	// after every operation; a partial CFst entry falls back to the
	// classical state-pair proof, which remains sound (the line condition
	// only further restricts firing).
	lineRefine := e.Comp != nil && kind != fp.CFst
	want := 0
	if lineRefine {
		want = e.Comp.Data
	}

	switch kind {
	case fp.CFst:
		// The fault fires when the pair simultaneously holds (AggState,
		// VictimState). While one cell walks a block, its states are the
		// block's entry state plus every post-op state; the other cell
		// holds the element's entry or exit state.
		for _, et := range trs {
			aggMid, vicMid := et.in == p.AggState, et.in == p.VictimState
			for _, s := range et.posts {
				if s == p.AggState {
					aggMid = true
				}
				if s == p.VictimState {
					vicMid = true
				}
			}
			aggBound := et.in == p.AggState || et.out == p.AggState
			vicBound := et.in == p.VictimState || et.out == p.VictimState
			if (aggMid && vicBound) || (aggBound && vicMid) {
				return false, ""
			}
		}
		return true, fmt.Sprintf("no reachable healthy state pair puts the aggressor at %d while the victim holds %d", p.AggState, p.VictimState)

	case fp.CFds:
		for ei, et := range trs {
			for oi, op := range t.Elements[ei].Ops {
				if !aggOpMatches(op, et.pres[oi], p) {
					continue
				}
				// The victim's block runs entirely before or after the
				// aggressor's in this element; both relations realizable.
				if et.in != p.VictimState && et.out != p.VictimState {
					continue
				}
				// A bit-line-mediated aggressor op may sit in or out of the
				// victim's column, so both predecessor kinds are reachable.
				if lineRefine && !lineCanHold(trs, ei, oi, et.pres[oi], want, e.Float == defect.FloatBitLine) {
					continue
				}
				return false, ""
			}
		}
		if lineRefine {
			return true, fmt.Sprintf("no aggressor %d%s coincides with a victim at %d while the %s can float at the completing %d", p.AggState, p.AggOp, p.VictimState, floatName(e.Float), want)
		}
		return true, fmt.Sprintf("no operation realizable beside a victim holding %d performs the aggressor %d%s", p.VictimState, p.AggState, p.AggOp)

	default: // victim-operation sensitized: CFtr, CFwd, CFrd, CFdr, CFir
		for ei, et := range trs {
			for oi, op := range t.Elements[ei].Ops {
				if !victimOpMatches(op, et.pres[oi], p) {
					continue
				}
				if et.in != p.AggState && et.out != p.AggState {
					continue
				}
				// The victim op sits in its own column, so mid-block the
				// line holds exactly the same-cell predecessor's value.
				if lineRefine && !lineCanHold(trs, ei, oi, et.pres[oi], want, false) {
					continue
				}
				return false, ""
			}
		}
		if lineRefine {
			return true, fmt.Sprintf("no sensitizing victim %d%s happens beside an aggressor at %d while the %s can float at the completing %d", p.VictimState, p.VictimOp, p.AggState, floatName(e.Float), want)
		}
		return true, fmt.Sprintf("no sensitizing victim %d%s happens while the aggressor can hold %d", p.VictimState, p.VictimOp, p.AggState)
	}
}

// aggOpMatches mirrors memsim's fireAggressorOp precondition on the
// healthy stream: the op must match the FP's aggressor operation with
// the aggressor pre-state equal to AggState (reads additionally require
// the stored value to equal the read's data). Unknown never matches.
func aggOpMatches(op Op, pre int, p fp.TwoCellFP) bool {
	ao := p.AggOp
	if ao == nil || op.Read != (ao.Kind == fp.OpRead) || pre != p.AggState {
		return false
	}
	if ao.Kind == fp.OpWrite {
		return op.Data == ao.Data
	}
	return pre == ao.Data
}

// victimOpMatches mirrors memsim's fireVictimWrite/fireVictimRead
// preconditions on the healthy stream.
func victimOpMatches(op Op, pre int, p fp.TwoCellFP) bool {
	vo := p.VictimOp
	if vo == nil || op.Read != (vo.Kind == fp.OpRead) {
		return false
	}
	if vo.Kind == fp.OpWrite {
		return op.Data == vo.Data && pre == p.VictimState
	}
	return pre == vo.Data && pre == p.VictimState
}

// lineCanHold reports whether the mediating floating line can hold
// `want` just before operation (ei, oi) under some geometry, order and
// address choice. Mid-block (oi > 0) the last driving operation on the
// line is the same cell's predecessor, whose driven value equals the
// current pre-state; when the sensitized cell may sit outside the
// line's column (offColumn), the last column operation is instead the
// tail of an earlier full block — the current element's exit state —
// or the previous element's. Block starts see only those two boundary
// values. Unknown exit states drive nothing and never match.
func lineCanHold(trs []elemTrace, ei, oi, pre, want int, offColumn bool) bool {
	if oi > 0 {
		if pre == want {
			return true
		}
		if !offColumn {
			return false
		}
	}
	if trs[ei].out == want {
		return true
	}
	if ei > 0 && trs[ei-1].out == want {
		return true
	}
	return false
}

// floatName renders the mediating line for reason strings.
func floatName(v defect.FloatVar) string {
	switch v {
	case defect.FloatOutBuffer:
		return "output buffer"
	case defect.FloatWordLine:
		return "word line"
	default:
		return "bit line"
	}
}

// TwoCellCompletionPrePass evaluates every (test, catalog entry) pair
// and reports, as informational findings, the coupling faults a dynamic
// DetectsTwoCell sweep need not simulate because the static proof
// already rules them out.
func TwoCellCompletionPrePass(tests []Test, catalog []TwoCellCatalogEntry) lint.Findings {
	var out lint.Findings
	for _, t := range tests {
		for _, e := range catalog {
			if cannot, why := CannotCompleteTwoCell(t, e); cannot {
				out = append(out, lint.Finding{
					Layer: "march", Rule: "cannot-complete-twocell", Severity: lint.Info,
					Subject: t.Name,
					Message: fmt.Sprintf("cannot detect %q: %s", e.Name, why),
				})
			}
		}
	}
	out.Sort()
	return out
}
