package march

import "testing"

// FuzzProveDetects drives the detection prover with parser-accepted
// march tests and checks its claims against the brute-force simulator:
// a proved Detects must detect on 2×2 and a proved Misses must catch
// zero scenarios there, for every paper-catalog fault and a partial
// two-cell sample. Unknown makes no claim and needs no check; the
// prover must also never panic on any accepted test.
func FuzzProveDetects(f *testing.F) {
	for _, t := range All() {
		f.Add(t.String())
	}
	f.Add("{m(w0); u(r0,w1); d(r1,w0)}")
	f.Add("{⇕(w0)}")
	f.Add("{⇑(r1,w0,r0); ⇓(r0)}")
	f.Add("{m(w1); m(r1,w0); m(r0)}")
	f.Add("{u(w0); u(r0,r0,w1); d(w0,r0)}")

	twos := TwoCellCatalog()[:8]

	f.Fuzz(func(t *testing.T, s string) {
		tst, err := Parse("fuzz", s)
		if err != nil {
			return
		}
		// Bound the scenario space: long tests and many ⇕ elements blow
		// up both the prover's order enumeration and the dynamic sweep.
		if tst.Length() > 12 || len(tst.AnyElements()) > 3 {
			return
		}
		for _, e := range PaperFaultCatalog() {
			p := ProveDetects(tst, e)
			switch p.Verdict {
			case VerdictDetects:
				det, caught, total, err := Detects(tst, 2, 2, e.Make)
				if err != nil {
					t.Fatalf("%q vs %s: %v", s, e.Name, err)
				}
				if !det {
					t.Fatalf("FALSE CLAIM: %q proved to detect %s but caught %d/%d on 2x2", s, e.Name, caught, total)
				}
			case VerdictMisses:
				_, caught, total, err := Detects(tst, 2, 2, e.Make)
				if err != nil {
					t.Fatalf("%q vs %s: %v", s, e.Name, err)
				}
				if caught != 0 {
					t.Fatalf("FALSE CLAIM: %q proved to miss %s but caught %d/%d on 2x2", s, e.Name, caught, total)
				}
			}
		}
		for _, e := range twos {
			p := ProveDetectsTwoCell(tst, e)
			switch p.Verdict {
			case VerdictDetects:
				det, caught, total, err := DetectsTwoCellEntry(tst, 2, 2, e)
				if err != nil {
					t.Fatalf("%q vs twocell %s: %v", s, e.Name, err)
				}
				if !det {
					t.Fatalf("FALSE CLAIM: %q proved to detect twocell %s but caught %d/%d on 2x2", s, e.Name, caught, total)
				}
			case VerdictMisses:
				_, caught, total, err := DetectsTwoCellEntry(tst, 2, 2, e)
				if err != nil {
					t.Fatalf("%q vs twocell %s: %v", s, e.Name, err)
				}
				if caught != 0 {
					t.Fatalf("FALSE CLAIM: %q proved to miss twocell %s but caught %d/%d on 2x2", s, e.Name, caught, total)
				}
			}
		}
	})
}
