package march

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/memsim"
)

// fullSingleCatalog is the classical + paper single-cell evaluation set.
func fullSingleCatalog() []CatalogEntry {
	return append(ClassicalFaultCatalog(), PaperFaultCatalog()...)
}

// TestProveDetectsMarchPFPaperColumn pins the prover's March PF column
// for the paper catalog — the positive control. March PF provably
// detects exactly the four completable partial FPs its construction
// targets on the functional model (the cell-internal RDF pair and the
// bit-line TF pair) and provably misses the remaining twelve entries,
// with no Unknown: the abstract domain is exhaustive for this column.
func TestProveDetectsMarchPFPaperColumn(t *testing.T) {
	wantDetect := map[string]bool{
		"RDF0 partial (cell, Open 1)":         true,
		"RDF1 partial (cell, com. Open 1)":    true,
		"TF↓ partial (bit line, Open 5)":      true,
		"TF↑ partial (bit line, com. Open 5)": true,
	}
	pf := MarchPF()
	for _, e := range PaperFaultCatalog() {
		p := ProveDetects(pf, e)
		want := VerdictMisses
		if wantDetect[e.Name] {
			want = VerdictDetects
		}
		if p.Verdict != want {
			t.Errorf("March PF vs %s: verdict %s, want %s (%s)", e.Name, p.Verdict, want, p.Witness)
			continue
		}
		switch p.Verdict {
		case VerdictDetects:
			if p.Trace == nil {
				t.Errorf("March PF vs %s: proved Detects without a trace", e.Name)
			}
			if p.Detecting != p.Scenarios || p.Scenarios == 0 {
				t.Errorf("March PF vs %s: Detects with %d/%d scenarios", e.Name, p.Detecting, p.Scenarios)
			}
		case VerdictMisses:
			if p.Witness == "" {
				t.Errorf("March PF vs %s: proved Misses without a witness", e.Name)
			}
		}
	}
}

// TestProveDetectsClassicalPositiveControls: the classical library
// results are well known — March C- provably detects every classical
// single-cell FP except the deceptive/dynamic-style ones it was never
// designed for; at minimum, all SF/TF/RDF/IRF entries must be proved
// detected, with traces.
func TestProveDetectsClassicalPositiveControls(t *testing.T) {
	mc := MarchCMinus()
	for _, e := range ClassicalFaultCatalog() {
		mustDetect := false
		for _, prefix := range []string{"SF", "TF", "RDF", "IRF"} {
			if strings.HasPrefix(e.Name, prefix) {
				mustDetect = true
			}
		}
		if !mustDetect {
			continue
		}
		p := ProveDetects(mc, e)
		if p.Verdict != VerdictDetects {
			t.Errorf("March C- vs %s: verdict %s, want Detects (%s)", e.Name, p.Verdict, p.Witness)
		} else if p.Trace == nil {
			t.Errorf("March C- vs %s: no proof trace", e.Name)
		}
	}
}

// TestProveDetectsOrderSplitMonotonicity: a proved verdict quantifies
// over every ⇕ resolution, so fixing one ⇕ element to ⇑ or ⇓ — a subset
// of the quantified scenarios — must never flip a proved verdict to its
// opposite: Detects cannot become Misses and Misses cannot become
// Detects, for either prover.
func TestProveDetectsOrderSplitMonotonicity(t *testing.T) {
	for _, tst := range All() {
		for _, e := range fullSingleCatalog() {
			parent := ProveDetects(tst, e).Verdict
			if parent == VerdictUnknown {
				continue
			}
			for i, el := range tst.Elements {
				if el.Order != Any {
					continue
				}
				for _, o := range []Order{Up, Down} {
					split := ProveDetects(withElementOrder(tst, i, o), e).Verdict
					if parent == VerdictDetects && split == VerdictMisses {
						t.Errorf("%s vs %s: Detects flipped to Misses when element %d fixed to %v", tst.Name, e.Name, i, o)
					}
					if parent == VerdictMisses && split == VerdictDetects {
						t.Errorf("%s vs %s: Misses flipped to Detects when element %d fixed to %v", tst.Name, e.Name, i, o)
					}
				}
			}
		}
		for _, e := range TwoCellCatalog() {
			parent := ProveDetectsTwoCell(tst, e).Verdict
			if parent == VerdictUnknown {
				continue
			}
			for i, el := range tst.Elements {
				if el.Order != Any {
					continue
				}
				for _, o := range []Order{Up, Down} {
					split := ProveDetectsTwoCell(withElementOrder(tst, i, o), e).Verdict
					if parent == VerdictDetects && split == VerdictMisses {
						t.Errorf("%s vs twocell %s: Detects flipped to Misses when element %d fixed to %v", tst.Name, e.Name, i, o)
					}
					if parent == VerdictMisses && split == VerdictDetects {
						t.Errorf("%s vs twocell %s: Misses flipped to Detects when element %d fixed to %v", tst.Name, e.Name, i, o)
					}
				}
			}
		}
	}
}

// TestProverSubsumesCannotComplete: every completion-pre-pass claim
// must land in the prover's Misses — "the fault can never fire" implies
// "the test never mismatches" — across the full single- and two-cell
// catalogs, for the library and for random structurally consistent
// tests.
func TestProverSubsumesCannotComplete(t *testing.T) {
	check := func(tst Test) {
		for _, e := range fullSingleCatalog() {
			if cannot, why := CannotComplete(tst, e); cannot {
				if p := ProveDetects(tst, e); p.Verdict != VerdictMisses {
					t.Errorf("%s vs %s: pre-pass proves cannot fire (%s) but prover verdict is %s", tst.Name, e.Name, why, p.Verdict)
				}
			}
		}
		for _, e := range TwoCellCatalog() {
			if cannot, why := CannotCompleteTwoCell(tst, e); cannot {
				if p := ProveDetectsTwoCell(tst, e); p.Verdict != VerdictMisses {
					t.Errorf("%s vs twocell %s: pre-pass proves cannot fire (%s) but prover verdict is %s", tst.Name, e.Name, why, p.Verdict)
				}
			}
		}
	}
	for _, tst := range All() {
		check(tst)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 10; i++ {
		check(randomConsistentTest(rng))
	}
}

// TestDetectionMatrixDifferentialSoundness is the central certificate of
// this layer: every non-Unknown verdict the prover emits for the
// library against the full catalogs is checked against the brute-force
// simulator on 2×2, 2×4 and 4×4 — a proved Detects must detect on every
// geometry and a proved Misses must catch zero scenarios on every
// geometry. Both directions, zero tolerance, and the suite must verify
// a substantial claim count (≥ 100) so the certificate cannot silently
// degrade into vacuity.
func TestDetectionMatrixDifferentialSoundness(t *testing.T) {
	geos := [][2]int{{2, 2}, {2, 4}, {4, 4}}
	m := BuildDetectionMatrix(All(), fullSingleCatalog(), TwoCellCatalog())
	singlesByName := map[string]CatalogEntry{}
	for _, e := range fullSingleCatalog() {
		singlesByName[e.Name] = e
	}
	twosByName := map[string]TwoCellCatalogEntry{}
	for _, e := range TwoCellCatalog() {
		twosByName[e.Name] = e
	}
	testsByName := map[string]Test{}
	for _, tst := range All() {
		testsByName[tst.Name] = tst
	}

	claims := 0
	for _, row := range m.Rows {
		if row.Proof.Verdict == VerdictUnknown {
			continue
		}
		claims++
		tst := testsByName[row.Test]
		for _, g := range geos {
			var det bool
			var caught, total int
			var err error
			if row.TwoCell {
				det, caught, total, err = DetectsTwoCellEntry(tst, g[0], g[1], twosByName[row.Fault])
			} else {
				det, caught, total, err = Detects(tst, g[0], g[1], singlesByName[row.Fault].Make)
			}
			if err != nil {
				t.Fatalf("%s vs %s on %dx%d: %v", row.Test, row.Fault, g[0], g[1], err)
			}
			switch row.Proof.Verdict {
			case VerdictDetects:
				if !det {
					t.Errorf("FALSE STATIC CLAIM: %s proved to detect %s but missed on %dx%d (caught %d/%d)",
						row.Test, row.Fault, g[0], g[1], caught, total)
				}
			case VerdictMisses:
				if caught != 0 {
					t.Errorf("FALSE STATIC CLAIM: %s proved to miss %s but caught %d/%d scenarios on %dx%d",
						row.Test, row.Fault, caught, total, g[0], g[1])
				}
			}
		}
	}
	if claims < 100 {
		t.Errorf("differential suite verified only %d non-Unknown claims; want ≥ 100 — the prover has degraded into Unknown", claims)
	}
	if drift := m.Drift(); len(drift) != 0 {
		t.Errorf("%d cannot-complete claims not subsumed by prover Misses", len(drift))
	}
}

// TestProveDetectsContradictoryTest: a test failing on fault-free
// memory detects everything — on every geometry some healthy cell's
// contradictory read mismatches — and the prover proves it rather than
// going Unknown.
func TestProveDetectsContradictoryTest(t *testing.T) {
	bad := Test{Name: "contradictory", Elements: []Element{
		{Order: Any, Ops: []Op{W(0)}},
		{Order: Up, Ops: []Op{R(1)}},
	}}
	for _, e := range fullSingleCatalog()[:3] {
		if p := ProveDetects(bad, e); p.Verdict != VerdictDetects {
			t.Errorf("contradictory test vs %s: %s, want Detects", e.Name, p.Verdict)
		}
	}
	if p := ProveDetectsTwoCell(bad, TwoCellCatalog()[0]); p.Verdict != VerdictDetects {
		t.Errorf("contradictory test vs twocell: %s, want Detects", p.Verdict)
	}
}

// TestProveDetectsUnsupportedShapesAreUnknown: shapes outside the
// abstract domain must return Unknown with a reason, never a claim.
func TestProveDetectsUnsupportedShapesAreUnknown(t *testing.T) {
	for _, dyn := range memsim.DynamicFaultCatalog() {
		e := CatalogEntry{Name: dyn.String(), FP: dyn}
		p := ProveDetects(MarchRAW(), e)
		if p.Verdict != VerdictUnknown {
			t.Errorf("dynamic %s: verdict %s, want Unknown", e.Name, p.Verdict)
		}
		if p.Witness == "" {
			t.Errorf("dynamic %s: Unknown without a reason", e.Name)
		}
	}
}

// TestDetectionPrePassFindings: the pre-pass emits the per-test matrix
// summary, proved-miss findings beyond the completion pre-pass, and no
// drift errors on the real library.
func TestDetectionPrePassFindings(t *testing.T) {
	fs := DetectionPrePass(All(), PaperFaultCatalog(), TwoCellCatalog())
	rules := map[string]int{}
	for _, f := range fs {
		rules[f.Rule]++
	}
	if rules["detection-matrix"] != len(All()) {
		t.Errorf("detection-matrix findings = %d, want one per test (%d)", rules["detection-matrix"], len(All()))
	}
	if rules["proved-miss"] == 0 {
		t.Error("no proved-miss findings; the prover should add misses beyond the completion pre-pass")
	}
	if rules["prover-prepass-drift"] != 0 {
		t.Errorf("%d drift errors on the real library", rules["prover-prepass-drift"])
	}
}
