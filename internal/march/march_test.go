package march

import (
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

func TestNotationRoundTrip(t *testing.T) {
	for _, tst := range All() {
		s := tst.String()
		parsed, err := Parse(tst.Name, s)
		if err != nil {
			t.Errorf("Parse(%q): %v", s, err)
			continue
		}
		if parsed.String() != s {
			t.Errorf("round trip %q → %q", s, parsed.String())
		}
	}
}

func TestParseASCIIForm(t *testing.T) {
	// The paper's ASCII notation with m/u/d order tokens.
	tst := MustParse("March PF", "{m(w0,w1); m(r1,w1,w0,w0,w1,r1); m(w1,w0); m(r0,w0,w1,w1,w0,r0)}")
	if tst.String() != MarchPF().String() {
		t.Errorf("ASCII parse = %s, want %s", tst, MarchPF())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"{x(w0)}",
		"{⇑ w0}",
		"{⇑(w2)}",
		"{⇑()}",
		"{⇑(q0)}",
	}
	for _, s := range bad {
		if _, err := Parse("bad", s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestLibraryLengths(t *testing.T) {
	// The classical complexity figures (operations per cell).
	want := map[string]int{
		"MATS+": 5, "MATS++": 6, "March X": 6, "March Y": 8,
		"March C-": 10, "March A": 15, "March B": 17, "March LR": 14,
		"March SS": 22, "March RAW": 26, "March PF": 16,
	}
	for _, tst := range All() {
		if got := tst.Length(); got != want[tst.Name] {
			t.Errorf("%s length = %dN, want %dN", tst.Name, got, want[tst.Name])
		}
		if err := tst.Validate(); err != nil {
			t.Errorf("%s invalid: %v", tst.Name, err)
		}
	}
}

func TestMarchPFMatchesPaper(t *testing.T) {
	want := "{⇕(w0,w1); ⇕(r1,w1,w0,w0,w1,r1); ⇕(w1,w0); ⇕(r0,w0,w1,w1,w0,r0)}"
	if got := MarchPF().String(); got != want {
		t.Errorf("March PF = %s, want %s", got, want)
	}
}

func TestRunFaultFree(t *testing.T) {
	for _, tst := range All() {
		arr := memsim.NewArray(4, 4)
		ms, err := tst.Run(arr, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(ms) != 0 {
			t.Errorf("%s on fault-free memory reported %v", tst.Name, ms)
		}
	}
}

func TestOrderAssignments(t *testing.T) {
	pf := MarchPF() // four ⇕ elements → 16 assignments
	if got := len(pf.OrderAssignments()); got != 16 {
		t.Errorf("March PF assignments = %d, want 16", got)
	}
	up := MATSPlus() // one ⇕ element → 2 assignments
	if got := len(up.OrderAssignments()); got != 2 {
		t.Errorf("MATS+ assignments = %d, want 2", got)
	}
}

// TestMarchSSDetectsAllStaticFaults validates the functional simulator
// against the published property of March SS (and March RAW): they
// detect all twelve static single-cell FPs.
func TestMarchSSDetectsAllStaticFaults(t *testing.T) {
	for _, tst := range []Test{MarchSS(), MarchRAW()} {
		for _, e := range ClassicalFaultCatalog() {
			det, caught, total, err := Detects(tst, 4, 2, e.Make)
			if err != nil {
				t.Fatalf("%s: %v", e.Name, err)
			}
			if !det {
				t.Errorf("%s misses %s (%d/%d)", tst.Name, e.Name, caught, total)
			}
		}
	}
}

// TestMarchRAWDetectsDRDFViaDoubleReads: the back-to-back reads are what
// DRDF needs — the corrupted cell is re-read before any write hides it.
func TestMarchRAWDetectsDRDFViaDoubleReads(t *testing.T) {
	for _, name := range []string{"<0r0/1/0>", "<1r1/0/1>"} {
		e := CatalogEntry{Name: name, FP: fp.MustParse(name)}
		det, _, _, err := Detects(MarchRAW(), 4, 2, e.Make)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("March RAW misses %s", name)
		}
		// MATS+ (no double reads) must miss it.
		det, _, _, err = Detects(MATSPlus(), 4, 2, e.Make)
		if err != nil {
			t.Fatal(err)
		}
		if det {
			t.Errorf("MATS+ unexpectedly detects %s", name)
		}
	}
}

// TestMarchCMinusKnownGaps: March C- famously misses WDF and DRDF (they
// need a write-then-read resp. read-after-read at the same address).
func TestMarchCMinusKnownGaps(t *testing.T) {
	for _, e := range ClassicalFaultCatalog() {
		det, _, _, err := Detects(MarchCMinus(), 4, 2, e.Make)
		if err != nil {
			t.Fatal(err)
		}
		missExpected := strings.HasPrefix(e.Name, "WDF") || strings.HasPrefix(e.Name, "DRDF")
		if det == missExpected {
			t.Errorf("March C- vs %s: detected=%v, want %v", e.Name, det, !missExpected)
		}
	}
}

// TestPaperSection1Example reproduces the paper's motivating example:
// the march test {⇕(w1,r1)} detects the plain RDF1 but NOT the partial
// RDF1 <1v [w0BL] r1v/0/0>, because its own w1 preconditions the
// floating bit line high.
func TestPaperSection1Example(t *testing.T) {
	w1r1 := Test{Name: "{m(w1,r1)}", Elements: []Element{el(Any, W(1), R(1))}}
	plain := CatalogEntry{Name: "RDF1", FP: fp.MustParse("<1r1/0/0>")}
	partial := CatalogEntry{
		Name: "RDF1 partial", FP: fp.MustParse("<1v [w0BL] r1v/0/0>"),
		Float: defect.FloatBitLine,
	}
	det, _, _, err := Detects(w1r1, 4, 1, plain.Make)
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("{m(w1,r1)} must detect the plain RDF1")
	}
	det, caught, _, err := Detects(w1r1, 4, 1, partial.Make)
	if err != nil {
		t.Fatal(err)
	}
	if det || caught != 0 {
		t.Errorf("{m(w1,r1)} must never detect the partial RDF1 (caught %d)", caught)
	}
}

// TestMarchPFDetectsCellInternalCompletions: the paper's March PF embeds
// the Open 1 completing sequences [w1 w1 w0]r0 / [w0 w0 w1]r1 in its
// elements 4 and 2 and must detect both completed FPs — which MATS+,
// March X and March Y all miss.
func TestMarchPFDetectsCellInternalCompletions(t *testing.T) {
	faults := []CatalogEntry{
		{Name: "RDF0 cell", FP: fp.MustParse("<[w1 w1 w0] r0/1/1>"), Float: defect.FloatMemoryCell},
		{Name: "RDF1 cell", FP: fp.MustParse("<[w0 w0 w1] r1/0/0>"), Float: defect.FloatMemoryCell},
	}
	for _, e := range faults {
		det, caught, total, err := Detects(MarchPF(), 3, 3, e.Make)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("March PF misses %s (%d/%d)", e.Name, caught, total)
		}
	}
	// MATS+ — which detects the plain RDF0 — must miss the completed
	// RDF0: its element structure never performs the [w1 w1 w0]
	// completion before an r0. (Richer classical tests can stumble into
	// the sequence via read restores; MATS+ cannot.)
	plainRDF0 := CatalogEntry{Name: "RDF0", FP: fp.MustParse("<0r0/1/1>")}
	det, _, _, err := Detects(MATSPlus(), 3, 3, plainRDF0.Make)
	if err != nil {
		t.Fatal(err)
	}
	if !det {
		t.Error("MATS+ must detect the plain RDF0")
	}
	det, _, _, err = Detects(MATSPlus(), 3, 3, faults[0].Make)
	if err != nil {
		t.Fatal(err)
	}
	if det {
		t.Errorf("MATS+ unexpectedly detects %s; the paper's point is that the partial form escapes", faults[0].Name)
	}
}

// TestMarchPFDetectsPartialTransitionFaults: the bit-line mediated TF
// pair of Table 1.
func TestMarchPFDetectsPartialTransitionFaults(t *testing.T) {
	faults := []CatalogEntry{
		{Name: "TF↓ partial", FP: fp.MustParse("<1v [w1BL] w0v/1/->"), Float: defect.FloatBitLine},
		{Name: "TF↑ partial", FP: fp.MustParse("<0v [w0BL] w1v/0/->"), Float: defect.FloatBitLine},
	}
	for _, e := range faults {
		det, caught, total, err := Detects(MarchPF(), 4, 2, e.Make)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("March PF misses %s (%d/%d)", e.Name, caught, total)
		}
	}
}

// TestNotPossibleFaultsEvadeEverything: the word-line mediated partial
// faults of Table 1 have no completing operations, so no march test can
// guarantee their detection — they must evade the entire library.
func TestNotPossibleFaultsEvadeEverything(t *testing.T) {
	var uncompletable []CatalogEntry
	for _, e := range PaperFaultCatalog() {
		if e.Uncompletable {
			uncompletable = append(uncompletable, e)
		}
	}
	if len(uncompletable) != 4 {
		t.Fatalf("catalog has %d uncompletable entries, want 4", len(uncompletable))
	}
	for _, tst := range All() {
		for _, e := range uncompletable {
			det, caught, _, err := Detects(tst, 4, 2, e.Make)
			if err != nil {
				t.Fatal(err)
			}
			if det || caught != 0 {
				t.Errorf("%s claims to detect %s, which the paper proves impossible", tst.Name, e.Name)
			}
		}
	}
}

// TestPartialFaultsEscapeClassicalTests quantifies the paper's message:
// MATS+ (which handles plain RDF/IRF) must miss the majority of the
// completable partial-fault catalog.
func TestPartialFaultsEscapeClassicalTests(t *testing.T) {
	catalog := PaperFaultCatalog()
	missed := 0
	completable := 0
	for _, e := range catalog {
		if e.Uncompletable {
			continue
		}
		completable++
		det, _, _, err := Detects(MATSPlus(), 4, 1, e.Make)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			missed++
		}
	}
	if missed*2 < completable {
		t.Errorf("MATS+ misses only %d of %d completable partial faults; expected the majority", missed, completable)
	}
}

// TestCoverageMatrixShape sanity-checks the matrix generator.
func TestCoverageMatrixShape(t *testing.T) {
	tests := []Test{MATSPlus(), MarchPF()}
	catalog := ClassicalFaultCatalog()
	res, err := CoverageMatrix(tests, catalog, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(tests)*len(catalog) {
		t.Fatalf("matrix has %d entries, want %d", len(res), len(tests)*len(catalog))
	}
	for _, r := range res {
		if r.Scenarios == 0 {
			t.Errorf("%s vs %s evaluated zero scenarios", r.Test, r.Fault)
		}
		if r.Detected && r.Caught != r.Scenarios {
			t.Errorf("%s vs %s: detected but %d/%d", r.Test, r.Fault, r.Caught, r.Scenarios)
		}
	}
}

func TestOpValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("W(3) should panic")
		}
	}()
	W(3)
}
