package march

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

func TestTwoCellCatalogShape(t *testing.T) {
	cat := TwoCellCatalog()
	classical, partial, uncompletable := 0, 0, 0
	for _, e := range cat {
		if err := e.FP.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
		switch {
		case e.Uncompletable:
			uncompletable++
			partial++
		case e.Partial:
			partial++
			if e.Comp == nil {
				t.Errorf("%s: partial entry without a completing op", e.Name)
			}
			if !strings.Contains(e.Name, "[") {
				t.Errorf("%s: partial entry name lacks the completed form", e.Name)
			}
		default:
			classical++
		}
		// Every entry must inject cleanly.
		arr := memsim.NewArray(2, 2)
		if err := arr.InjectTwoCell(e.Make(0, 3)); err != nil {
			t.Errorf("%s: inject: %v", e.Name, err)
		}
	}
	if classical != fp.CountTwoCellStaticFPs() {
		t.Errorf("classical entries = %d, want %d", classical, fp.CountTwoCellStaticFPs())
	}
	if partial < 6 || uncompletable != 2 {
		t.Errorf("partial = %d (uncompletable %d), want ≥6 with exactly 2 uncompletable", partial, uncompletable)
	}
}

// TestCannotCompleteTwoCellSoundAgainstDetects is the differential
// soundness harness: across the whole library × the whole catalog
// (including all 36 classical static two-cell FPs) × three geometries,
// every static "cannot complete" claim must be confirmed by the
// exhaustive simulator — not one scenario caught. The reverse direction
// is not required (the prover is allowed to stay silent), but the run
// must not be vacuous.
func TestCannotCompleteTwoCellSoundAgainstDetects(t *testing.T) {
	if testing.Short() {
		t.Skip("differential sweep is not short")
	}
	geoms := [][2]int{{2, 2}, {2, 4}, {4, 4}}
	catalog := TwoCellCatalog()
	claims := 0
	for _, tst := range All() {
		for _, e := range catalog {
			cannot, why := CannotCompleteTwoCell(tst, e)
			if !cannot {
				continue
			}
			claims++
			if why == "" {
				t.Errorf("%s / %s: claim without a reason", tst.Name, e.Name)
			}
			for _, g := range geoms {
				det, caught, total, err := DetectsTwoCellEntry(tst, g[0], g[1], e)
				if err != nil {
					t.Fatalf("%s / %s on %dx%d: %v", tst.Name, e.Name, g[0], g[1], err)
				}
				if det || caught > 0 {
					t.Errorf("FALSE CLAIM: %s claims it cannot complete %s, but on %dx%d the simulator caught %d/%d scenarios",
						tst.Name, e.Name, g[0], g[1], caught, total)
				}
			}
		}
	}
	if claims == 0 {
		t.Fatal("the pre-pass claimed nothing across the whole library; the differential harness is vacuous")
	}
	t.Logf("verified %d static claims against the simulator on %d geometries", claims, len(geoms))
}

// TestCannotCompleteTwoCellPositiveControls pins known-detecting cases:
// a claim on any of them would be a false claim even without running
// the simulator.
func TestCannotCompleteTwoCellPositiveControls(t *testing.T) {
	catalog := TwoCellCatalog()
	// March SS detects the full static two-cell space, so no classical
	// entry may ever be claimed against it.
	for _, e := range catalog {
		if e.Partial {
			continue
		}
		if cannot, why := CannotCompleteTwoCell(MarchSS(), e); cannot {
			t.Errorf("March SS claimed for %s (%s) although it detects all 36 static FPs", e.Name, why)
		}
	}
	// March C- detects 24 of the 36; none of those may be claimed either
	// (checked dynamically on the cheapest geometry).
	for _, e := range catalog {
		if e.Partial {
			continue
		}
		det, _, _, err := DetectsTwoCell(MarchCMinus(), 2, 2, e.FP)
		if err != nil {
			t.Fatal(err)
		}
		cannot, _ := CannotCompleteTwoCell(MarchCMinus(), e)
		if det && cannot {
			t.Errorf("March C- detects %s on 2x2 yet the pre-pass claims it cannot", e.Name)
		}
	}
	// And the expected claims do land: March C- has no non-transition
	// write anywhere, so all four CFwd entries and the four
	// non-transition-write CFds entries are provable misses.
	wantClaims := 0
	for _, e := range catalog {
		if e.Partial {
			continue
		}
		k := e.FP.Classify()
		nonTransDs := k == fp.CFds && e.FP.AggOp.Kind == fp.OpWrite && e.FP.AggOp.Data == e.FP.AggState
		if k == fp.CFwd || nonTransDs {
			wantClaims++
			if cannot, _ := CannotCompleteTwoCell(MarchCMinus(), e); !cannot {
				t.Errorf("expected March C- claim for %s (no non-transition write exists), got none", e.Name)
			}
		}
	}
	if wantClaims != 8 {
		t.Fatalf("control set has %d entries, want 8 (4 CFwd + 4 non-transition CFds)", wantClaims)
	}
}

// TestCannotCompleteTwoCellUncompletable: word-line-mediated entries
// are claimed for every healthy library test, and never fire in memsim.
func TestCannotCompleteTwoCellUncompletable(t *testing.T) {
	for _, e := range TwoCellCatalog() {
		if !e.Uncompletable {
			continue
		}
		for _, tst := range All() {
			cannot, why := CannotCompleteTwoCell(tst, e)
			if !cannot {
				t.Errorf("%s: uncompletable %s not claimed", tst.Name, e.Name)
			}
			if !strings.Contains(why, "Not possible") {
				t.Errorf("%s: reason %q does not cite the Not-possible rule", e.Name, why)
			}
		}
		det, caught, _, err := DetectsTwoCellEntry(MarchSS(), 2, 2, e)
		if err != nil {
			t.Fatal(err)
		}
		if det || caught > 0 {
			t.Errorf("%s: never-triggering fault caught %d scenarios", e.Name, caught)
		}
	}
}

// TestCannotCompleteTwoCellContradictoryGuard: a test that fails on
// fault-free memory "detects" everything, so the prover must claim
// nothing for it — including uncompletable entries. The same guard now
// protects the single-cell prover.
func TestCannotCompleteTwoCellContradictoryGuard(t *testing.T) {
	bad := MustParse("bad", "{m(w0); u(r1)}")
	for _, e := range TwoCellCatalog() {
		if cannot, _ := CannotCompleteTwoCell(bad, e); cannot {
			t.Errorf("claimed %s for a test that fails on fault-free memory", e.Name)
		}
	}
	for _, e := range PaperFaultCatalog() {
		if cannot, _ := CannotComplete(bad, e); cannot {
			t.Errorf("single-cell prover claimed %s for a test that fails on fault-free memory", e.Name)
		}
	}
}

// withElementOrder returns a copy of the test with element i forced to
// the given order; the element slice is copied so the input is shared
// safely.
func withElementOrder(t Test, i int, o Order) Test {
	els := make([]Element, len(t.Elements))
	copy(els, t.Elements)
	els[i] = Element{Order: o, Ops: els[i].Ops}
	return Test{Name: t.Name, Elements: els}
}

// TestCannotCompleteTwoCellOrderSplitInvariance: splitting a ⇕ element
// into either fixed order must not weaken a "cannot complete" claim —
// the claim quantifies over all order assignments, and a fixed order is
// a subset of them.
func TestCannotCompleteTwoCellOrderSplitInvariance(t *testing.T) {
	catalog := TwoCellCatalog()
	check := func(tst Test) {
		for _, e := range catalog {
			cannot, _ := CannotCompleteTwoCell(tst, e)
			if !cannot {
				continue
			}
			for i, el := range tst.Elements {
				if el.Order != Any {
					continue
				}
				for _, o := range []Order{Up, Down} {
					split := withElementOrder(tst, i, o)
					if c2, _ := CannotCompleteTwoCell(split, e); !c2 {
						t.Errorf("%s: claim for %s lost when element %d is split to %v", tst.Name, e.Name, i, o)
					}
				}
			}
		}
	}
	for _, tst := range All() {
		check(tst)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		check(randomConsistentTest(rng))
	}
}

// TestTwoCellCompletionPrePassFindings: the pre-pass emits Info
// findings with the dedicated rule, and March X provably misses a CFds
// (it has no non-transition write), which is the seed pflint -selftest
// relies on.
func TestTwoCellCompletionPrePassFindings(t *testing.T) {
	fs := TwoCellCompletionPrePass([]Test{MarchX()}, TwoCellCatalog())
	if len(fs) == 0 {
		t.Fatal("no findings for March X")
	}
	sawCFds := false
	for _, f := range fs {
		if f.Rule != "cannot-complete-twocell" {
			t.Errorf("unexpected rule %q", f.Rule)
		}
		if strings.Contains(f.Message, "CFds") {
			sawCFds = true
		}
	}
	if !sawCFds {
		t.Error("March X pre-pass does not flag any CFds miss")
	}
}

// TestTwoCellCertificate: the certificate confirms every static claim
// dynamically (no violations) and carries both detected and
// proved-miss rows for March C-.
func TestTwoCellCertificate(t *testing.T) {
	cert, err := TwoCellCertificateFor(MarchCMinus(), TwoCellCatalog(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if v := cert.Violations(); len(v) != 0 {
		t.Fatalf("certificate violated: %+v", v)
	}
	detected, proved := 0, 0
	for _, r := range cert.Entries {
		if r.Detected {
			detected++
		}
		if r.ProvedMiss {
			proved++
		}
		if r.Detected && r.Caught != r.Scenarios {
			t.Errorf("%s: detected but caught %d/%d", r.Entry, r.Caught, r.Scenarios)
		}
	}
	if detected == 0 || proved == 0 {
		t.Fatalf("degenerate certificate: %d detected, %d proved misses", detected, proved)
	}
}

// TestPartialTwoCellMemsimMechanics exercises the partial coupling
// trigger directly: the bit-line-mediated CFds↑ entry fires only while
// the victim's bit line floats at the completing value.
func TestPartialTwoCellMemsimMechanics(t *testing.T) {
	var entry TwoCellCatalogEntry
	for _, e := range TwoCellCatalog() {
		if e.Partial && !e.Uncompletable && e.FP.AggOp != nil {
			entry = e // CFds↑ partial (bit line) <0w1; [w0BL] 1/0/->
			break
		}
	}
	if entry.Comp == nil {
		t.Fatal("no partial CFds entry in the catalog")
	}
	// 2×2 array: victim 0 (column 0), aggressor 1 (column 1); cell 2
	// shares the victim's column and sets its floating bit line.
	armedRun := func(blValue int) int {
		arr := memsim.NewArray(2, 2)
		arr.MustInjectTwoCell(entry.Make(0, 1))
		arr.Write(0, 1)       // victim ← 1 (the FP's victim state)
		arr.Write(2, blValue) // drive the victim-column bit line
		arr.Write(1, 0)       // aggressor ← 0 (the FP's aggressor state)
		arr.Write(1, 1)       // aggressor 0w1: the sensitizing op
		return arr.Read(0)
	}
	if got := armedRun(entry.Comp.Data); got != entry.FP.F {
		t.Errorf("armed run: victim reads %d, want the faulty %d", got, entry.FP.F)
	}
	if got := armedRun(1 - entry.Comp.Data); got != 1 {
		t.Errorf("disarmed run: victim reads %d, want the healthy 1", got)
	}

	// Unsupported mediating lines are rejected at injection.
	arr := memsim.NewArray(2, 2)
	f := entry.Make(0, 1)
	f.Float = defect.FloatMemoryCell
	if err := arr.InjectTwoCell(f); err == nil {
		t.Error("InjectTwoCell accepted a memory-cell-mediated coupling fault")
	}
	f = entry.Make(0, 1)
	f.Comp = 7
	if err := arr.InjectTwoCell(f); err == nil {
		t.Error("InjectTwoCell accepted a non-bit completing value")
	}
}
