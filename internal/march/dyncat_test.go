package march

import "github.com/memtest/partialfaults/internal/memsim"

// dynCatalogEntries adapts the dynamic fault catalog for coverage runs.
func dynCatalogEntries() []CatalogEntry {
	var out []CatalogEntry
	for _, p := range memsim.DynamicFaultCatalog() {
		out = append(out, CatalogEntry{Name: p.String(), FP: p})
	}
	return out
}
