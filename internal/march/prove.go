package march

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/memsim"
)

// This file is the positive half of the march static-analysis layer: a
// detection *prover* that complements the completion pre-pass
// (CannotComplete). Where the pre-pass only proves the negative
// direction — "this fault can never fire, so the test cannot detect it"
// — the prover returns a three-valued verdict:
//
//   - VerdictDetects: on EVERY array geometry (rows ≥ 2, cols ≥ 2),
//     victim position and ⇕-order assignment, the test run yields at
//     least one mismatch — `Detects` is guaranteed true, with a proof
//     trace naming the sensitizing operation and the observing read.
//   - VerdictMisses: on every such scenario the run yields ZERO
//     mismatches — `Detects` is guaranteed false and the fault escapes
//     completely, with a witness scenario.
//   - VerdictUnknown: neither is proven. This is not a weakness of the
//     implementation alone: detection can genuinely depend on geometry
//     (partial detection), so a sound prover must have a third value.
//
// The engine is an abstract interpretation over victim *position
// classes* instead of concrete addresses. March semantics make every
// non-victim cell behave identically (the healthy per-element trace),
// so a scenario's outcome depends on the victim's position only through
// a finite abstraction: whether a same-column cell precedes/follows the
// victim in traversal order (who drives the victim's floating bit line
// at block boundaries) and whether any cell at all precedes/follows it
// (who drives the shared IO/output-buffer state). Five classes cover
// every victim position on every rows ≥ 2, cols ≥ 2 geometry:
//
//	(column top,  globally first)   address 0
//	(column top,  globally middle)  addresses 1..cols-1
//	(column mid,  globally middle)  rows ≥ 3 interior cells
//	(column bot,  globally middle)  addresses n-cols..n-2
//	(column bot,  globally last)    address n-1
//
// For each class × order assignment the interpreter replays the
// simulator's exact fault machine (the exported memsim.CompiledFault
// spec — no re-derived semantics) over the victim's operation stream,
// with the bit-line/IO state threaded through the non-victim phases via
// the healthy element traces. Each abstract run is *exact* for every
// concrete scenario in its class, so the prover is sound in both
// directions — and complete over the supported fault shapes, because
// all five classes are realizable within the quantified domain.
//
// Unsupported shapes (dynamic two-operation pairs, line-mediated state
// faults) return VerdictUnknown rather than guessing.

// Verdict is the three-valued outcome of the static detection prover.
type Verdict int

// Prover verdicts. The zero value is VerdictUnknown, so an absent or
// failed proof never silently claims anything.
const (
	VerdictUnknown Verdict = iota
	VerdictDetects
	VerdictMisses
)

// String renders the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictDetects:
		return "Detects"
	case VerdictMisses:
		return "Misses"
	default:
		return "Unknown"
	}
}

// Symbol is the one-character matrix cell for certificates: D, M or ?.
func (v Verdict) Symbol() string {
	switch v {
	case VerdictDetects:
		return "D"
	case VerdictMisses:
		return "M"
	default:
		return "?"
	}
}

// ProofTrace locates the canonical sensitization and observation of a
// proved detection: the fault fires at op SensOp of element SensElem
// (SensOp = -1 when a state fault flips during other cells' operations
// of that element) and the first failing read is op ObsOp of element
// ObsElem.
type ProofTrace struct {
	SensElem, SensOp int
	ObsElem, ObsOp   int
}

// String renders "sensitized at element 2 op 1, observed at element 3 op 0".
func (p ProofTrace) String() string {
	sens := fmt.Sprintf("element %d op %d", p.SensElem, p.SensOp)
	if p.SensOp < 0 {
		sens = fmt.Sprintf("element %d (between blocks)", p.SensElem)
	}
	return fmt.Sprintf("sensitized at %s, observed at element %d op %d", sens, p.ObsElem, p.ObsOp)
}

// Proof is the prover's result: the verdict plus its evidence.
type Proof struct {
	Verdict Verdict
	// Trace carries the canonical sensitizing/observing pair of a
	// VerdictDetects (nil otherwise).
	Trace *ProofTrace
	// Witness describes a representative undetected scenario for
	// VerdictMisses, or the reason for VerdictUnknown.
	Witness string
	// Scenarios counts the abstract scenario classes examined and
	// Detecting how many of them yield at least one mismatch.
	Scenarios, Detecting int
}

// cellClass abstracts the victim's position: colPos / globalPos are
// 0 (top of column / globally first), 1 (middle), 2 (bottom / last).
type cellClass struct{ colPos, globalPos int }

// victimClasses are the five position classes realizable on rows ≥ 2,
// cols ≥ 2 arrays (globally-first forces column-top, last forces bottom).
var victimClasses = []cellClass{
	{0, 0}, {0, 1}, {1, 1}, {2, 1}, {2, 2},
}

// describe renders a class for witnesses.
func (c cellClass) describe() string {
	col := [3]string{"top of its column", "mid-column", "bottom of its column"}
	glob := [3]string{"globally first", "globally interior", "globally last"}
	return fmt.Sprintf("victim %s, %s", col[c.colPos], glob[c.globalPos])
}

// resolveOrders maps an OrderAssignments entry to one concrete order per
// element.
func resolveOrders(t Test, anyOrders []Order) []Order {
	out := make([]Order, len(t.Elements))
	anyIdx := 0
	for i, e := range t.Elements {
		o := e.Order
		if o == Any {
			o = Up
			if anyIdx < len(anyOrders) && anyOrders[anyIdx] == Down {
				o = Down
			}
			anyIdx++
		}
		out[i] = o
	}
	return out
}

// describeOrders renders a resolved assignment for witnesses.
func describeOrders(orders []Order) string {
	s := ""
	for _, o := range orders {
		s += o.String()
	}
	return s
}

// firstContradiction locates the first read that fails on a fault-free
// memory.
func firstContradiction(t Test) (int, int) {
	state := unknown
	for ei, e := range t.Elements {
		for oi, op := range e.Ops {
			if op.Read {
				if state != unknown && state != op.Data {
					return ei, oi
				}
			} else {
				state = op.Data
			}
		}
	}
	return 0, 0
}

func unknownProof(reason string) Proof {
	return Proof{Verdict: VerdictUnknown, Witness: reason}
}

// contradictoryDetects is the shared shortcut for tests that fail on a
// fault-free memory: every array of the domain has at least one healthy
// non-victim cell (rows·cols ≥ 4), whose contradictory read mismatches
// in every scenario regardless of the injected fault.
func contradictoryDetects(t Test, scenarios int) Proof {
	ei, oi := firstContradiction(t)
	return Proof{
		Verdict:   VerdictDetects,
		Trace:     &ProofTrace{SensElem: ei, SensOp: oi, ObsElem: ei, ObsOp: oi},
		Witness:   "the test fails on a fault-free memory, so every device mismatches regardless of the fault",
		Scenarios: scenarios, Detecting: scenarios,
	}
}

// runOutcome is one abstract run's result.
type runOutcome struct {
	fired, mismatched bool
	sensElem, sensOp  int
	obsElem, obsOp    int
}

func (r *runOutcome) noteFire(elem, op int) {
	if !r.fired {
		r.fired, r.sensElem, r.sensOp = true, elem, op
	}
}

func (r *runOutcome) noteMismatch(elem, op int) {
	if !r.mismatched {
		r.mismatched, r.obsElem, r.obsOp = true, elem, op
	}
}

// ProveDetects statically proves the test's detection verdict for a
// single-cell catalog entry, quantified over every rows ≥ 2, cols ≥ 2
// geometry, every victim address and every ⇕-order assignment.
func ProveDetects(t Test, e CatalogEntry) Proof {
	if err := t.Validate(); err != nil {
		return unknownProof(fmt.Sprintf("structurally invalid test: %v", err))
	}
	trs, healthy := traceTest(t)
	scenarios := len(victimClasses) * len(t.OrderAssignments())
	if !healthy {
		return contradictoryDetects(t, scenarios)
	}
	cf, err := memsim.CompileFault(e.Make(0))
	if err != nil {
		return unknownProof(fmt.Sprintf("fault does not compile: %v", err))
	}
	if cf.Dynamic {
		return unknownProof("dynamic (two-operation) FPs are outside the prover's abstract domain")
	}
	if cf.OpFree && (cf.Kind == memsim.TrigBitLine || cf.Kind == memsim.TrigIO) {
		return unknownProof("line-mediated state faults are outside the prover's abstract domain")
	}

	var trace *ProofTrace
	var missWitness string
	anyFire := false
	detecting := 0
	total := 0
	for _, any := range t.OrderAssignments() {
		orders := resolveOrders(t, any)
		for _, cl := range victimClasses {
			r := runSingleAbstract(t, trs, cf, orders, cl)
			total++
			if r.fired {
				anyFire = true
			}
			if r.mismatched {
				detecting++
				if trace == nil {
					trace = &ProofTrace{SensElem: r.sensElem, SensOp: r.sensOp, ObsElem: r.obsElem, ObsOp: r.obsOp}
					if !r.fired {
						// Should not happen on a healthy test; keep the
						// observation as its own sensitization.
						trace.SensElem, trace.SensOp = r.obsElem, r.obsOp
					}
				}
			} else if missWitness == "" {
				missWitness = fmt.Sprintf("%s, orders %s", cl.describe(), describeOrders(orders))
			}
		}
	}
	switch {
	case detecting == total:
		return Proof{Verdict: VerdictDetects, Trace: trace, Scenarios: total, Detecting: total}
	case detecting == 0:
		why := "the fault never fires in any scenario class"
		if anyFire {
			why = "the fault fires but no subsequent read ever observes the deviation"
		}
		return Proof{
			Verdict:   VerdictMisses,
			Witness:   fmt.Sprintf("%s (e.g. %s)", why, missWitness),
			Scenarios: total,
		}
	default:
		return Proof{
			Verdict:   VerdictUnknown,
			Witness:   fmt.Sprintf("detection is scenario-dependent: %d of %d scenario classes mismatch (undetected e.g. %s)", detecting, total, missWitness),
			Scenarios: total, Detecting: detecting,
		}
	}
}

// runSingleAbstract replays the compiled fault machine over one scenario
// class: the victim's own operations exactly, the non-victim phases via
// the healthy element traces. It mirrors memsim's Array.Read/Write hook
// order: operation-sensitized faults see the line state the *previous*
// operation left, lines update after the operation, and state faults act
// after every operation period.
func runSingleAbstract(t Test, trs []elemTrace, cf memsim.CompiledFault, orders []Order, cl cellClass) runOutcome {
	v, bl, io := unknown, unknown, unknown
	var hist []int
	var r runOutcome

	histPush := func(val int) {
		if cf.Kind != memsim.TrigVictimSeq {
			return
		}
		hist = append(hist, val)
		if len(hist) > len(cf.Seq) {
			hist = hist[len(hist)-len(cf.Seq):]
		}
	}
	armed := func() bool {
		switch cf.Kind {
		case memsim.TrigAlways:
			return true
		case memsim.TrigNever:
			return false
		case memsim.TrigBitLine:
			return bl == cf.Seq[len(cf.Seq)-1]
		case memsim.TrigIO:
			return io == cf.Seq[len(cf.Seq)-1]
		case memsim.TrigVictimSeq:
			if len(hist) < len(cf.Seq) {
				return false
			}
			for i, want := range cf.Seq {
				if hist[len(hist)-len(cf.Seq)+i] != want {
					return false
				}
			}
			return true
		}
		return false
	}
	initOK := func() bool { return cf.Init == unknown || v == cf.Init }
	// fireState applies an armed operation-free (state) fault; the flip
	// is idempotent, so applying it once per non-victim phase is exact.
	fireState := func(elem, op int) {
		if cf.OpFree && cf.Init != unknown && v == cf.Init && armed() {
			v = cf.FaultyF
			r.noteFire(elem, op)
		}
	}

	for ei := range t.Elements {
		up := orders[ei] == Up
		colPred := cl.colPos != 0
		colSucc := cl.colPos != 2
		globPred := cl.globalPos != 0
		globSucc := cl.globalPos != 2
		if !up {
			colPred, colSucc = colSucc, colPred
			globPred, globSucc = globSucc, globPred
		}

		// Phase A: every cell traversed before the victim runs its whole
		// block. The last driven value of a healthy block equals the
		// element's exit state (X drives nothing).
		if globPred {
			if out := trs[ei].out; out != unknown {
				io = out
				if colPred {
					bl = out
				}
			}
			fireState(ei, -1)
		}

		// Phase B: the victim's own block, replayed exactly.
		for oi, op := range t.Elements[ei].Ops {
			if op.Read {
				stored := v
				out := stored
				if !cf.OpFree && cf.FinalRead && stored == cf.FinalData && initOK() && armed() {
					out = cf.FaultyR
					v = cf.FaultyF
					r.noteFire(ei, oi)
				}
				if out != unknown && out != op.Data {
					r.noteMismatch(ei, oi)
				}
				histPush(v) // reads record the restored cell value
				if v != unknown {
					bl = v
				}
				if out != unknown {
					io = out
				}
			} else {
				result := op.Data
				if !cf.OpFree && !cf.FinalRead && op.Data == cf.FinalData && initOK() && armed() {
					result = cf.FaultyF
					r.noteFire(ei, oi)
				}
				histPush(op.Data) // writes record the written value
				v = result
				// The write driver forces both lines to the written value
				// even when the fault diverts the stored state.
				bl = op.Data
				io = op.Data
			}
			fireState(ei, oi)
		}

		// Phase C: cells traversed after the victim. When no same-column
		// cell follows, the bit line keeps the victim's own tail value —
		// the carryover the next element's block start sees.
		if globSucc {
			if out := trs[ei].out; out != unknown {
				io = out
				if colSucc {
					bl = out
				}
			}
			fireState(ei, len(t.Elements[ei].Ops)-1)
		}
	}
	return r
}
