package march

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

// Two-cell (coupling) half of the detection prover. The abstraction
// quantifies over the *layout class* of an (aggressor, victim) pair
// instead of concrete addresses: march semantics run each address's
// whole block before the next address starts, so the pair's addresses
// split the remaining cells into three zones — below both, strictly
// between, above both — and a scenario's outcome depends on the layout
// only through a finite signature:
//
//   - which pair member is traversed first (aggressor below victim?),
//   - whether the pair shares a column (aggressor ops then drive the
//     victim's bit line),
//   - per zone, whether it is non-empty (its blocks drive the IO state)
//     and whether it contains a victim-column mate (its blocks drive the
//     victim's bit line).
//
// Layout constraints keep the class set honest: a column mate in a zone
// implies the zone is non-empty; a same-column pair has |a−v| ≥ cols ≥ 2,
// so the between zone is non-empty; a different-column pair leaves the
// victim's ≥ 1 column mates (rows ≥ 2) in some zone. The enumerated set
// *over-approximates* the realizable layouts — which is sound in both
// verdict directions, since every concrete scenario maps to an
// enumerated class and each class's abstract run is exact for its
// concretes (unrealizable classes can only push a verdict to Unknown).

// pairClass is the layout signature of an (aggressor, victim) pair.
type pairClass struct {
	// aggFirst says the aggressor's address is the smaller one.
	aggFirst bool
	// sameCol says the pair shares a column (bit line).
	sameCol bool
	// zone[k] says zone k (0 below the pair, 1 between, 2 above) holds at
	// least one other cell; mate[k] that it holds a victim-column mate.
	zone, mate [3]bool
}

func (c pairClass) describe() string {
	rel := "aggressor above victim"
	if c.aggFirst {
		rel = "aggressor below victim"
	}
	col := "different columns"
	if c.sameCol {
		col = "same column"
	}
	zones := ""
	for k := 0; k < 3; k++ {
		switch {
		case c.mate[k]:
			zones += "m"
		case c.zone[k]:
			zones += "o"
		default:
			zones += "-"
		}
	}
	return fmt.Sprintf("%s, %s, zones %s", rel, col, zones)
}

// pairClasses enumerates every layout signature satisfying the
// constraints above (74 classes).
func pairClasses() []pairClass {
	var out []pairClass
	for _, aggFirst := range []bool{false, true} {
		for _, sameCol := range []bool{false, true} {
			for bits := 0; bits < 64; bits++ {
				var c pairClass
				c.aggFirst, c.sameCol = aggFirst, sameCol
				ok := true
				anyMate := false
				for k := 0; k < 3; k++ {
					c.zone[k] = bits&(1<<k) != 0
					c.mate[k] = bits&(1<<(3+k)) != 0
					if c.mate[k] {
						anyMate = true
						if !c.zone[k] {
							ok = false
						}
					}
				}
				if sameCol && !c.zone[1] {
					ok = false
				}
				if !sameCol && !anyMate {
					ok = false
				}
				if ok {
					out = append(out, c)
				}
			}
		}
	}
	return out
}

// ProveDetectsTwoCell statically proves the test's detection verdict for
// a two-cell catalog entry, quantified over every rows ≥ 2, cols ≥ 2
// geometry, every distinct (aggressor, victim) address pair and every
// ⇕-order assignment — the same space DetectsTwoCellEntry sweeps
// dynamically on one geometry.
func ProveDetectsTwoCell(t Test, e TwoCellCatalogEntry) Proof {
	if err := t.Validate(); err != nil {
		return unknownProof(fmt.Sprintf("structurally invalid test: %v", err))
	}
	trs, healthy := traceTest(t)
	classes := pairClasses()
	scenarios := len(classes) * len(t.OrderAssignments())
	if !healthy {
		return contradictoryDetects(t, scenarios)
	}
	cf, err := memsim.CompileTwoCellFault(e.Make(0, 1))
	if err != nil {
		return unknownProof(fmt.Sprintf("fault does not compile: %v", err))
	}
	if cf.Kind == fp.CFUnknown {
		return unknownProof("unclassified coupling FP is outside the prover's abstract domain")
	}
	if cf.Kind == fp.CFst && (cf.Trig == memsim.TrigBitLine || cf.Trig == memsim.TrigIO) {
		return unknownProof("line-mediated state coupling is outside the prover's abstract domain")
	}

	var trace *ProofTrace
	var missWitness string
	anyFire := false
	detecting, total := 0, 0
	for _, any := range t.OrderAssignments() {
		orders := resolveOrders(t, any)
		for _, cl := range classes {
			r := runTwoCellAbstract(t, trs, cf, e.FP, orders, cl)
			total++
			if r.fired {
				anyFire = true
			}
			if r.mismatched {
				detecting++
				if trace == nil {
					trace = &ProofTrace{SensElem: r.sensElem, SensOp: r.sensOp, ObsElem: r.obsElem, ObsOp: r.obsOp}
				}
			} else if missWitness == "" {
				missWitness = fmt.Sprintf("%s, orders %s", cl.describe(), describeOrders(orders))
			}
		}
	}
	switch {
	case detecting == total:
		return Proof{Verdict: VerdictDetects, Trace: trace, Scenarios: total, Detecting: total}
	case detecting == 0:
		why := "the coupling fault never fires in any scenario class"
		if anyFire {
			why = "the coupling fault fires but no subsequent victim read ever observes the deviation"
		}
		return Proof{
			Verdict:   VerdictMisses,
			Witness:   fmt.Sprintf("%s (e.g. %s)", why, missWitness),
			Scenarios: total,
		}
	default:
		return Proof{
			Verdict:   VerdictUnknown,
			Witness:   fmt.Sprintf("detection is scenario-dependent: %d of %d scenario classes mismatch (undetected e.g. %s)", detecting, total, missWitness),
			Scenarios: total, Detecting: detecting,
		}
	}
}

// runTwoCellAbstract replays the coupling-fault machine over one layout
// class: aggressor and zone cells via the healthy element traces, the
// victim's operations exactly. It mirrors memsim's hook order —
// operation-sensitized triggers see the pre-operation line state, lines
// update after the operation, CFst acts after every operation period.
func runTwoCellAbstract(t Test, trs []elemTrace, cf memsim.CompiledTwoCell, p fp.TwoCellFP, orders []Order, cl pairClass) runOutcome {
	v, av, bl, io := unknown, unknown, unknown, unknown
	var r runOutcome

	armed := func() bool {
		switch cf.Trig {
		case memsim.TrigNever:
			return false
		case memsim.TrigBitLine:
			return bl == cf.Comp
		case memsim.TrigIO:
			return io == cf.Comp
		}
		return true
	}
	// applyCFst mirrors applyStateFaults: the flip is idempotent while
	// the pair's states are stable, so once per zone segment is exact.
	applyCFst := func(elem, op int) {
		if cf.Kind == fp.CFst && cf.Trig == memsim.TrigAlways &&
			av == p.AggState && v == p.VictimState {
			v = p.F
			r.noteFire(elem, op)
		}
	}

	zoneSeg := func(ei, k int) {
		if !cl.zone[k] {
			return
		}
		if out := trs[ei].out; out != unknown {
			io = out
			if cl.mate[k] {
				bl = out
			}
		}
		applyCFst(ei, -1)
	}

	aggBlock := func(ei int) {
		for oi, op := range t.Elements[ei].Ops {
			pre, post := trs[ei].pres[oi], trs[ei].posts[oi]
			if cf.Kind == fp.CFds && p.AggOp != nil && (p.AggOp.Kind == fp.OpWrite) != op.Read {
				match := pre == p.AggState
				if p.AggOp.Kind == fp.OpWrite {
					match = match && op.Data == p.AggOp.Data
				} else {
					match = match && pre == p.AggOp.Data
				}
				if match && armed() && v == p.VictimState {
					v = p.F
					r.noteFire(ei, oi)
				}
			}
			if post != unknown {
				io = post
				if cl.sameCol {
					bl = post
				}
			}
			av = post
			applyCFst(ei, oi)
		}
	}

	victimBlock := func(ei int) {
		for oi, op := range t.Elements[ei].Ops {
			if op.Read {
				out := v
				if victimReadKind(cf.Kind) && p.VictimOp != nil &&
					v == p.VictimOp.Data && v == p.VictimState && av == p.AggState && armed() {
					rd, _ := p.R.Bit()
					out = rd
					v = p.F
					r.noteFire(ei, oi)
				}
				if out != unknown && out != op.Data {
					r.noteMismatch(ei, oi)
				}
				if v != unknown {
					bl = v
				}
				if out != unknown {
					io = out
				}
			} else {
				result := op.Data
				if (cf.Kind == fp.CFtr || cf.Kind == fp.CFwd) && p.VictimOp != nil &&
					p.VictimOp.Data == op.Data && v == p.VictimState && av == p.AggState && armed() {
					result = p.F
					r.noteFire(ei, oi)
				}
				v = result
				bl = op.Data
				io = op.Data
			}
			applyCFst(ei, oi)
		}
	}

	for ei := range t.Elements {
		up := orders[ei] == Up
		// Traversal order of the five segments: lower zone, lower pair
		// member, between zone, upper pair member, upper zone — reversed
		// under a ⇓ element.
		type seg struct {
			zone int // -1 for a pair member
			agg  bool
		}
		segs := [5]seg{{zone: 0}, {zone: -1, agg: cl.aggFirst}, {zone: 1}, {zone: -1, agg: !cl.aggFirst}, {zone: 2}}
		for i := 0; i < 5; i++ {
			s := segs[i]
			if !up {
				s = segs[4-i]
			}
			switch {
			case s.zone >= 0:
				zoneSeg(ei, s.zone)
			case s.agg:
				aggBlock(ei)
			default:
				victimBlock(ei)
			}
		}
	}
	return r
}

// victimReadKind says the class fires on a victim read (mirrors the
// fireVictimRead dispatch).
func victimReadKind(k fp.CFKind) bool {
	return k == fp.CFrd || k == fp.CFdr || k == fp.CFir
}
