// Package march implements march memory tests: the standard notation
// ({⇕(w0); ⇑(r0,w1); …}), a library of classical tests, the paper's
// March PF, a simulator over memsim arrays, and fault-coverage
// evaluation with guarantee semantics (all victim positions, all
// address-order choices for ⇕ elements).
package march

import (
	"fmt"
	"strings"
)

// Order is a march element's addressing order.
type Order int

// Address orders: Up (⇑) ascending, Down (⇓) descending, Any (⇕) either.
const (
	Any Order = iota
	Up
	Down
)

// String renders the order arrow.
func (o Order) String() string {
	switch o {
	case Up:
		return "⇑"
	case Down:
		return "⇓"
	default:
		return "⇕"
	}
}

// Op is one march operation: a read with expected value or a write.
type Op struct {
	// Read distinguishes rX from wX.
	Read bool
	// Data is the written or expected value.
	Data int
}

// String renders "w0", "r1", etc.
func (o Op) String() string {
	k := "w"
	if o.Read {
		k = "r"
	}
	return fmt.Sprintf("%s%d", k, o.Data)
}

// W and R build march operations.
func W(data int) Op { return Op{Data: mustBit(data)} }

// R builds a read operation expecting the given value.
func R(data int) Op { return Op{Read: true, Data: mustBit(data)} }

func mustBit(b int) int {
	if b != 0 && b != 1 {
		panic(fmt.Sprintf("march: data value %d out of range", b))
	}
	return b
}

// Element is one march element: an address order and operations applied
// at each address before advancing.
type Element struct {
	Order Order
	Ops   []Op
}

// String renders "⇑(r0,w1)".
func (e Element) String() string {
	toks := make([]string, len(e.Ops))
	for i, o := range e.Ops {
		toks[i] = o.String()
	}
	return e.Order.String() + "(" + strings.Join(toks, ",") + ")"
}

// Test is a complete march test.
type Test struct {
	// Name is the test's conventional name.
	Name string
	// Elements run in sequence.
	Elements []Element
}

// String renders "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0)}".
func (t Test) String() string {
	parts := make([]string, len(t.Elements))
	for i, e := range t.Elements {
		parts[i] = e.String()
	}
	return "{" + strings.Join(parts, "; ") + "}"
}

// Length returns the test's operation count per cell — the complexity
// figure march tests are quoted with (e.g. March C- is 10N).
func (t Test) Length() int {
	n := 0
	for _, e := range t.Elements {
		n += len(e.Ops)
	}
	return n
}

// Validate checks structural sanity: non-empty elements, bit data.
func (t Test) Validate() error {
	if len(t.Elements) == 0 {
		return fmt.Errorf("march: test %q has no elements", t.Name)
	}
	for i, e := range t.Elements {
		if len(e.Ops) == 0 {
			return fmt.Errorf("march: test %q element %d is empty", t.Name, i)
		}
	}
	return nil
}

// AnyElements returns the indexes of ⇕ elements (whose order a guarantee
// analysis must vary).
func (t Test) AnyElements() []int {
	var out []int
	for i, e := range t.Elements {
		if e.Order == Any {
			out = append(out, i)
		}
	}
	return out
}
