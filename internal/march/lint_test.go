package march

import (
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/lint"
)

// The entire library must lint clean: no errors, no warnings (info
// findings like final-writes-unverified are expected and fine).
func TestLibraryLintsClean(t *testing.T) {
	fs := LintAll(All())
	if n := fs.Count(lint.Warning); n != 0 {
		t.Errorf("library has %d lint findings at warning or above:", n)
		for _, f := range fs.AtLeast(lint.Warning) {
			t.Errorf("  %s", f)
		}
	}
}

func TestLintContradictoryRead(t *testing.T) {
	bad := Test{Name: "bad-read", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(1), W(0)), // healthy state is 0 here
	}}
	fs := Lint(bad).ByRule("contradictory-read")
	if len(fs) != 1 || fs[0].Severity != lint.Error {
		t.Fatalf("want one contradictory-read error, got %v", fs)
	}
	if !strings.Contains(fs[0].Message, "r1") {
		t.Errorf("message should name the offending read: %s", fs[0].Message)
	}
}

func TestLintLeadingRead(t *testing.T) {
	bad := Test{Name: "leading", Elements: []Element{
		el(Up, R(0), W(0)),
	}}
	if fs := Lint(bad).ByRule("leading-read"); len(fs) != 1 || fs[0].Severity != lint.Warning {
		t.Fatalf("want one leading-read warning, got %v", fs)
	}
	// After a write the same read is fine.
	good := Test{Name: "ok", Elements: []Element{
		el(Any, W(0)),
		el(Up, R(0), W(1)),
	}}
	if fs := Lint(good).AtLeast(lint.Warning); len(fs) != 0 {
		t.Fatalf("clean test flagged: %v", fs)
	}
}

func TestLintRedundantElement(t *testing.T) {
	bad := Test{Name: "dead", Elements: []Element{
		el(Any, W(0)),
		el(Any, W(0)), // rewrites the established 0
		el(Up, R(0), W(1)),
	}}
	if fs := Lint(bad).ByRule("redundant-element"); len(fs) != 1 {
		t.Fatalf("want one redundant-element warning, got %v", fs)
	}
	// A write-only element that changes state is not redundant.
	good := Test{Name: "alive", Elements: []Element{
		el(Any, W(0)),
		el(Any, W(1), W(0)),
		el(Up, R(0)),
	}}
	if fs := Lint(good).ByRule("redundant-element"); len(fs) != 0 {
		t.Fatalf("state-changing element flagged: %v", fs)
	}
}

func TestLintOrderIrrelevant(t *testing.T) {
	bad := Test{Name: "fixed-order", Elements: []Element{
		el(Any, W(0)),
		el(Down, W(1), W(1)), // single repeated write value: order cannot matter
		el(Up, R(1)),
	}}
	if fs := Lint(bad).ByRule("order-irrelevant"); len(fs) != 1 {
		t.Fatalf("want one order-irrelevant warning, got %v", fs)
	}
	// Mixed read/write directional elements keep their order meaningfully.
	if fs := Lint(MATSPlus()).ByRule("order-irrelevant"); len(fs) != 0 {
		t.Fatalf("MATS+ flagged: %v", fs)
	}
}

func TestLintFinalWritesUnverified(t *testing.T) {
	fs := Lint(MATSPlus()).ByRule("final-writes-unverified")
	if len(fs) != 1 || fs[0].Severity != lint.Info {
		t.Fatalf("MATS+ ends with an unread w0; want one info finding, got %v", fs)
	}
	if fs := Lint(MarchY()).ByRule("final-writes-unverified"); len(fs) != 0 {
		t.Fatalf("March Y ends with a read; got %v", fs)
	}
}

func TestLintInvalidTest(t *testing.T) {
	if fs := Lint(Test{Name: "empty"}).ByRule("invalid-test"); len(fs) != 1 || fs[0].Severity != lint.Error {
		t.Fatalf("want one invalid-test error, got %v", fs)
	}
}

// The completion pre-pass must claim every uncompletable (word-line
// mediated) entry against every test — Table 1's "Not possible" rows.
func TestCannotCompleteUncompletable(t *testing.T) {
	for _, e := range PaperFaultCatalog() {
		if !e.Uncompletable {
			continue
		}
		for _, tst := range All() {
			if cannot, _ := CannotComplete(tst, e); !cannot {
				t.Errorf("%s vs %q: uncompletable entry not claimed", tst.Name, e.Name)
			}
		}
	}
}

// Soundness: whenever the static pre-pass claims a test cannot complete
// an FP, the dynamic guarantee run must agree it is not detected — for
// every geometry tried (including single-column arrays, the geometry
// most generous to bit-line adjacencies).
func TestCannotCompleteSoundAgainstDetects(t *testing.T) {
	if testing.Short() {
		t.Skip("dynamic cross-check is slow")
	}
	geoms := [][2]int{{4, 2}, {4, 1}, {2, 2}}
	for _, tst := range All() {
		for _, e := range PaperFaultCatalog() {
			cannot, _ := CannotComplete(tst, e)
			if !cannot {
				continue
			}
			for _, g := range geoms {
				det, caught, _, err := Detects(tst, g[0], g[1], e.Make)
				if err != nil {
					t.Fatalf("%s vs %q: %v", tst.Name, e.Name, err)
				}
				if det || caught > 0 {
					t.Errorf("%s vs %q at %dx%d: static claims cannot complete but dynamic caught %d scenarios",
						tst.Name, e.Name, g[0], g[1], caught)
				}
			}
		}
	}
}

// Positive control: the pre-pass must not claim pairs that can fire.
func TestCannotCompletePositiveControls(t *testing.T) {
	byName := map[string]CatalogEntry{}
	for _, e := range PaperFaultCatalog() {
		byName[e.Name] = e
	}
	cases := []struct {
		test  Test
		entry string
	}{
		// MATS+ ⇓(r1,w0): the block-to-block w0→r1 adjacency completes it.
		{MATSPlus(), "RDF1 partial (bit line, Opens 3-5)"},
		// March PF's doubled writes complete the cell-internal RDF pair.
		{MarchPF(), "RDF0 partial (cell, Open 1)"},
		{MarchPF(), "RDF1 partial (cell, com. Open 1)"},
		// March PF detects both transition-fault partials.
		{MarchPF(), "TF↓ partial (bit line, Open 5)"},
		{MarchPF(), "TF↑ partial (bit line, com. Open 5)"},
	}
	for _, c := range cases {
		e, ok := byName[c.entry]
		if !ok {
			t.Fatalf("catalog entry %q missing", c.entry)
		}
		if cannot, why := CannotComplete(c.test, e); cannot {
			t.Errorf("%s vs %q: wrongly claimed cannot complete (%s)", c.test.Name, c.entry, why)
		}
	}
}

func TestCompletionPrePassSeverity(t *testing.T) {
	fs := CompletionPrePass(All(), PaperFaultCatalog())
	if len(fs) == 0 {
		t.Fatal("pre-pass should report the provably undetectable pairs")
	}
	for _, f := range fs {
		if f.Severity != lint.Info {
			t.Errorf("pre-pass findings are informational, got %s for %s", f.Severity, f)
		}
	}
}
