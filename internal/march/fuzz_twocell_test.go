package march

import "testing"

// FuzzCannotCompleteTwoCell drives the two-cell completion prover with
// arbitrary march notation. Two properties must hold for any accepted
// test: the prover never panics, and it stays *sound* against the
// brute-force simulator — whenever it claims a catalog entry cannot be
// completed, an exhaustive DetectsTwoCellEntry sweep on a 2×2 array
// catches zero scenarios. Inputs the parser rejects, and parsed tests
// large enough to make the exhaustive sweep slow, only exercise the
// no-panic property.
func FuzzCannotCompleteTwoCell(f *testing.F) {
	// Seed corpus: the FuzzParseMarch seeds — the library in canonical
	// form plus edge shapes, including healthy-inconsistent tests that
	// must trip the fault-free guard.
	for _, t := range All() {
		f.Add(t.String())
	}
	f.Add("{m(w0); u(r0,w1); d(r1,w0)}")
	f.Add("m(w0)")
	f.Add("{⇕(w0)}")
	f.Add("{⇑(r1,w0,r0); ⇓(r0)}")
	f.Add("")
	f.Add("{u(); d(r1)}")
	f.Add("{x(w0)}")
	f.Add("{⇑(w2)}")
	f.Add("{m(w0); u(r1)}")
	f.Add("{m(w1); d(r1,w0,r0)}")

	catalog := TwoCellCatalog()
	f.Fuzz(func(t *testing.T, s string) {
		tst, err := Parse("fuzz", s)
		if err != nil {
			return
		}
		verify := tst.Length() <= 12 && len(tst.AnyElements()) <= 3
		for _, e := range catalog {
			cannot, why := CannotCompleteTwoCell(tst, e)
			if !cannot {
				continue
			}
			if why == "" {
				t.Fatalf("%q: claim for %s without a reason", s, e.Name)
			}
			if !verify {
				continue
			}
			det, caught, total, err := DetectsTwoCellEntry(tst, 2, 2, e)
			if err != nil {
				t.Fatalf("%q: claimed %s but simulation errored: %v", s, e.Name, err)
			}
			if det || caught > 0 {
				t.Fatalf("UNSOUND: %q claims it cannot complete %s, but the 2x2 sweep caught %d/%d scenarios",
					s, e.Name, caught, total)
			}
		}
	})
}
