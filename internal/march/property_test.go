package march

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/memtest/partialfaults/internal/memsim"
)

// randomConsistentTest generates a structurally valid march test whose
// read expectations are consistent on fault-free memory: each element
// tracks the cell state left by the previous one.
func randomConsistentTest(rng *rand.Rand) Test {
	t := Test{Name: "random"}
	state := rng.Intn(2)
	// Initialization element.
	t.Elements = append(t.Elements, Element{Order: Any, Ops: []Op{W(state)}})
	nElems := 1 + rng.Intn(4)
	for i := 0; i < nElems; i++ {
		e := Element{Order: Order(rng.Intn(3))}
		nOps := 1 + rng.Intn(4)
		for j := 0; j < nOps; j++ {
			if rng.Intn(2) == 0 {
				e.Ops = append(e.Ops, R(state))
			} else {
				state = rng.Intn(2)
				e.Ops = append(e.Ops, W(state))
			}
		}
		t.Elements = append(t.Elements, e)
	}
	return t
}

// TestRandomMarchTestsFaultFreeProperty: any consistent march test runs
// clean on a fault-free array, for every order assignment.
func TestRandomMarchTestsFaultFreeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tst := randomConsistentTest(rng)
		if err := tst.Validate(); err != nil {
			return false
		}
		for _, orders := range tst.OrderAssignments() {
			arr := memsim.NewArray(3, 3)
			ms, err := tst.Run(arr, orders)
			if err != nil || len(ms) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestRandomTestsNotationRoundTripProperty: printing and reparsing any
// generated test is the identity.
func TestRandomTestsNotationRoundTripProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tst := randomConsistentTest(rng)
		parsed, err := Parse(tst.Name, tst.String())
		if err != nil {
			return false
		}
		return parsed.String() == tst.String()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// TestStuckAtAlwaysCaughtProperty: every test in the library whose first
// element initializes and later reads both data values catches a plain
// SF (stuck-at-like) fault at any position; here we check the library
// against SF0/SF1 at random victims.
func TestStuckAtAlwaysCaughtProperty(t *testing.T) {
	catalog := ClassicalFaultCatalog()
	sf := catalog[:2] // SF0, SF1
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tst := All()[rng.Intn(len(All()))]
		e := sf[rng.Intn(2)]
		victim := rng.Intn(9)
		arr := memsim.NewArray(3, 3)
		if err := arr.Inject(e.Make(victim)); err != nil {
			return false
		}
		ms, err := tst.Run(arr, nil)
		return err == nil && len(ms) > 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
