package march

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/memsim"
)

// Mismatch is one failing read observed while running a test.
type Mismatch struct {
	// Element and OpIndex locate the failing operation in the test.
	Element, OpIndex int
	// Addr is the failing address.
	Addr int
	// Expected and Got are the read values.
	Expected, Got int
}

// String renders a compact diagnostic.
func (m Mismatch) String() string {
	return fmt.Sprintf("element %d op %d @%d: expected %d, got %d", m.Element, m.OpIndex, m.Addr, m.Expected, m.Got)
}

// Run executes the test on the array. anyOrders fixes the concrete order
// of each ⇕ element (indexed by occurrence; missing entries default to
// Up). It returns every read mismatch. Addresses are validated against
// the array before each operation, so a malformed geometry surfaces as
// an error from the walk rather than a panic out of the simulator.
func (t Test) Run(arr *memsim.Array, anyOrders []Order) ([]Mismatch, error) {
	var out []Mismatch
	anyIdx := 0
	for ei, e := range t.Elements {
		order := e.Order
		if order == Any {
			order = Up
			if anyIdx < len(anyOrders) && anyOrders[anyIdx] == Down {
				order = Down
			}
			anyIdx++
		}
		n := arr.Size()
		for k := 0; k < n; k++ {
			addr := k
			if order == Down {
				addr = n - 1 - k
			}
			if err := arr.CheckAddr(addr); err != nil {
				return out, fmt.Errorf("march: element %d: %w", ei, err)
			}
			for oi, op := range e.Ops {
				if !op.Read {
					arr.Write(addr, op.Data)
					continue
				}
				got := arr.Read(addr)
				// Unknown reads are adversarially assumed to match: a
				// test only *guarantees* detection via known values.
				if got != memsim.X && got != op.Data {
					out = append(out, Mismatch{Element: ei, OpIndex: oi, Addr: addr, Expected: op.Data, Got: got})
				}
			}
		}
	}
	return out, nil
}

// OrderAssignments enumerates all 2^k concrete order choices for the
// test's ⇕ elements.
func (t Test) OrderAssignments() [][]Order {
	k := len(t.AnyElements())
	total := 1 << k
	out := make([][]Order, 0, total)
	for mask := 0; mask < total; mask++ {
		orders := make([]Order, k)
		for b := 0; b < k; b++ {
			if mask&(1<<b) != 0 {
				orders[b] = Down
			} else {
				orders[b] = Up
			}
		}
		out = append(out, orders)
	}
	return out
}

// Detects reports whether the test *guarantees* detection of the fault
// family produced by mk: for every victim address in a rows×cols array
// and every ⇕-order assignment, running the test on a fresh array with
// mk(victim) injected yields at least one mismatch.
//
// The first return is the guarantee; the second counts (victim, order)
// scenarios in which the fault was caught, out of the third (total
// scenarios) — a partial-detection measure.
func Detects(t Test, rows, cols int, mk func(victim int) memsim.Fault) (bool, int, int, error) {
	if err := t.Validate(); err != nil {
		return false, 0, 0, err
	}
	if rows <= 0 || cols <= 0 {
		return false, 0, 0, fmt.Errorf("march: invalid geometry %dx%d", rows, cols)
	}
	assignments := t.OrderAssignments()
	caught, total := 0, 0
	for victim := 0; victim < rows*cols; victim++ {
		for _, orders := range assignments {
			arr := memsim.NewArray(rows, cols)
			if err := arr.Inject(mk(victim)); err != nil {
				return false, 0, 0, err
			}
			total++
			mm, err := t.Run(arr, orders)
			if err != nil {
				return false, 0, 0, err
			}
			if len(mm) > 0 {
				caught++
			}
		}
	}
	return caught == total && total > 0, caught, total, nil
}
