package march

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
)

// This file is the march static-analysis layer: structural lint over
// march programs (contradictory or premature reads, dead elements,
// pointless order annotations) and a completion pre-pass that proves —
// before memsim ever runs — that a march test cannot fire a given
// partial fault primitive because no operation adjacency realizable
// under any array geometry drives the completing value at the
// sensitizing moment.

// unknown mirrors memsim's X for the healthy-state tracker.
const unknown = -1

// elemState tracks the healthy cell state through one march test. March
// semantics make the state uniform across addresses at element
// boundaries: every address receives the whole op list of an element
// before the next element starts.
type tracker struct {
	state int // uniform healthy cell value entering the next element
}

// apply advances the tracker through one element and returns the
// pre-state of every op in its block.
func (tr *tracker) apply(e Element) []int {
	pres := make([]int, len(e.Ops))
	s := tr.state
	for i, op := range e.Ops {
		pres[i] = s
		if !op.Read {
			s = op.Data
		}
	}
	tr.state = s
	return pres
}

// Lint statically checks one march test and reports findings:
//
//   - invalid-test (error): structural problems from Validate.
//   - contradictory-read (error): a read expecting a value the test
//     itself guarantees is not stored on a healthy memory — the test
//     fails on every fault-free device.
//   - leading-read (warning): a read before the test has ever written;
//     the expected value is an assumption about power-up state.
//   - redundant-element (warning): a non-initial element consisting only
//     of writes none of which changes the established state — it cannot
//     sensitize, observe, or re-drive anything new.
//   - order-irrelevant (warning): an element declaring a fixed address
//     order (⇑/⇓) although its operations are order-insensitive (writes
//     of a single repeated value) — declare ⇕ and keep the freedom.
//   - final-writes-unverified (info): writes after the test's last read;
//     their effect is never read back by this test.
func Lint(t Test) lint.Findings {
	var out lint.Findings
	add := func(sev lint.Severity, rule, msg string) {
		out = append(out, lint.Finding{
			Layer: "march", Rule: rule, Severity: sev,
			Subject: t.Name, Message: msg,
		})
	}
	if err := t.Validate(); err != nil {
		add(lint.Error, "invalid-test", err.Error())
		return out
	}

	tr := tracker{state: unknown}
	wrote := false // has any write happened before the op at hand
	for ei, e := range t.Elements {
		in := tr.state
		pres := tr.apply(e)
		writesOnly, changed := true, false
		singleValue := true
		for oi, op := range e.Ops {
			if op.Read {
				writesOnly = false
				switch pres[oi] {
				case unknown:
					if !wrote {
						add(lint.Warning, "leading-read", fmt.Sprintf(
							"element %d (%s) op %d reads before the test ever writes; the expected %d assumes power-up state", ei, e, oi, op.Data))
					}
				case op.Data:
					// Consistent.
				default:
					add(lint.Error, "contradictory-read", fmt.Sprintf(
						"element %d (%s) op %d expects r%d but the healthy state here is provably %d; the test fails on a fault-free memory", ei, e, oi, op.Data, pres[oi]))
				}
			} else {
				wrote = true
				if pres[oi] != op.Data {
					changed = true
				}
				if op.Data != e.Ops[0].Data {
					singleValue = false
				}
			}
		}
		if ei > 0 && writesOnly && !changed && in != unknown {
			add(lint.Warning, "redundant-element", fmt.Sprintf(
				"element %d (%s) only rewrites the already-established state %d; it is dead weight", ei, e, in))
		}
		if e.Order != Any && writesOnly && singleValue {
			add(lint.Warning, "order-irrelevant", fmt.Sprintf(
				"element %d (%s) declares a fixed address order but writes a single value everywhere; the order cannot matter — declare ⇕", ei, e))
		}
	}

	// Trailing writes that no read of this test can ever verify.
	trailing := 0
	for i := len(t.Elements) - 1; i >= 0 && trailing >= 0; i-- {
		sawRead := false
		for j := len(t.Elements[i].Ops) - 1; j >= 0; j-- {
			if t.Elements[i].Ops[j].Read {
				sawRead = true
				break
			}
			trailing++
		}
		if sawRead {
			break
		}
	}
	if trailing > 0 {
		add(lint.Info, "final-writes-unverified", fmt.Sprintf(
			"the final %d write(s) are never read back by this test", trailing))
	}
	out.Sort()
	return out
}

// LintAll lints every test in a set.
func LintAll(tests []Test) lint.Findings {
	var out lint.Findings
	for _, t := range tests {
		out = append(out, Lint(t)...)
	}
	out.Sort()
	return out
}

// CannotComplete statically proves, when it returns true, that the march
// test can never fire the catalog entry's fault primitive on any array
// geometry and address-order choice — so a dynamic Detects run is
// guaranteed to report "not detected". The proof mirrors memsim's
// adversarial trigger semantics exactly:
//
//   - a partial fault fires at a sensitizing victim operation only if the
//     hidden line state holds the completing value at that moment;
//   - the bit-line state is the last value driven in the victim's column,
//     the IO state the last value driven anywhere — and before the first
//     firing the memory behaves healthily, so every driven value is the
//     test's own tracked healthy value;
//   - the only operations that can immediately precede a victim operation
//     in its column (under some geometry) are the previous op of the same
//     block, or — at block starts — the final op of the current or
//     previous element, whose driven value equals that element's final
//     state;
//   - unknown (X) line or cell state never satisfies a trigger.
//
// A false return claims nothing: the test may or may not detect the
// fault dynamically.
func CannotComplete(t Test, e CatalogEntry) (bool, string) {
	if err := t.Validate(); err != nil {
		return false, "" // no static claim about structurally invalid tests
	}
	if !passesHealthy(t) {
		// A test that fails on a fault-free memory "detects" every fault
		// (Detects counts any mismatch), so "cannot fire" would not imply
		// "cannot detect": claim nothing, for uncompletable entries too.
		return false, ""
	}
	if e.Uncompletable {
		return true, "the mediating floating voltage (word line) has no completing operation; Table 1's \"Not possible\""
	}
	p := e.FP
	comp := p.S.CompletingOps()
	if len(comp) == 0 {
		return false, "" // plain FP: always armed, nothing to complete
	}
	sens := p.S.SensitizingOps()
	if len(sens) != 1 || sens[0].Target != fp.TargetVictim {
		return false, "" // dynamic or exotic shapes: make no static claim
	}
	final := sens[0]
	victimComp := comp[0].Target == fp.TargetVictim

	// Required victim pre-state at the sensitizing op: reads need the
	// stored value to equal their data; writes need the FP's initial state.
	needPre := unknown
	if final.Kind == fp.OpRead {
		needPre = final.Data
	} else {
		switch p.S.Init {
		case fp.Init0:
			needPre = 0
		case fp.Init1:
			needPre = 1
		}
	}

	// Flatten the test into the victim's healthy operation stream with
	// driven values (write → data; read → restored healthy state).
	var stream []sop
	tr := tracker{state: unknown}
	prevAfter := unknown
	for ei, el := range t.Elements {
		pres := tr.apply(el)
		for oi, op := range el.Ops {
			driven := op.Data
			if op.Read {
				driven = pres[oi] // the restored value is the healthy state
			}
			stream = append(stream, sop{
				read: op.Read, data: op.Data, pre: pres[oi], driven: driven,
				elem: ei, idx: oi, elemAfter: tr.state, prevAfter: prevAfter,
				firstBlock: ei == 0,
			})
		}
		prevAfter = tr.state
	}

	want := comp[len(comp)-1].Data
	for j, op := range stream {
		if op.read != (final.Kind == fp.OpRead) || op.data != final.Data {
			continue
		}
		if op.pre != needPre && needPre != unknown {
			continue
		}
		if op.read && op.pre == unknown {
			continue // stored X never equals the expected data
		}
		if victimComp {
			// Cell-internal trigger: the victim's own recent operation
			// values must end with the completing sequence.
			if victimHistoryEndsWith(stream, j, comp) {
				return false, ""
			}
			continue
		}
		// Line trigger: some realizable immediate predecessor in the
		// victim's column (bit line) or anywhere (IO) must drive `want`.
		if op.idx > 0 {
			if stream[j-1].driven == want {
				return false, ""
			}
			continue
		}
		if op.elemAfter == want { // an earlier block of the same element
			return false, ""
		}
		if !op.firstBlock && op.prevAfter == want { // previous element's tail
			return false, ""
		}
	}
	what := "bit line"
	if !victimComp && isIOTrigger(e) {
		what = "output buffer"
	}
	if victimComp {
		what = "cell"
	}
	return true, fmt.Sprintf("no operation adjacency realizable under any geometry drives the completing value onto the %s at a sensitizing %s", what, final)
}

// sop is one operation of the victim's healthy stream, annotated with
// the tracked states the completion proof needs.
type sop struct {
	read      bool
	data      int
	pre       int // healthy cell state before the op (unknown allowed)
	driven    int // value the op drives onto the lines
	elem, idx int
	// elemAfter is the containing element's final healthy state (what an
	// earlier block of the same element drives at its boundary);
	// prevAfter the previous element's (unknown for the first element).
	elemAfter  int
	prevAfter  int
	firstBlock bool
}

// victimHistoryEndsWith checks whether the victim stream values at
// positions j-len(comp)..j-1 equal the completing sequence.
func victimHistoryEndsWith(stream []sop, j int, comp []fp.Op) bool {
	if j < len(comp) {
		return false
	}
	for i, c := range comp {
		s := stream[j-len(comp)+i]
		// memsim records writes by written value and reads by restored
		// value; unknown never matches.
		v := s.data
		if s.read {
			v = s.pre
		}
		if v == unknown || v != c.Data {
			return false
		}
	}
	return true
}

// isIOTrigger mirrors memsim's completion classification.
func isIOTrigger(e CatalogEntry) bool {
	return e.Float == defect.FloatOutBuffer
}

// CompletionPrePass evaluates every (test, catalog entry) pair and
// reports, as informational findings, the pairs a dynamic coverage run
// need not simulate because the static proof already rules them out.
func CompletionPrePass(tests []Test, catalog []CatalogEntry) lint.Findings {
	var out lint.Findings
	for _, t := range tests {
		for _, e := range catalog {
			if cannot, why := CannotComplete(t, e); cannot {
				out = append(out, lint.Finding{
					Layer: "march", Rule: "cannot-complete", Severity: lint.Info,
					Subject: t.Name,
					Message: fmt.Sprintf("cannot detect %q: %s", e.Name, why),
				})
			}
		}
	}
	out.Sort()
	return out
}
