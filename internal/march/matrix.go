package march

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/lint"
)

// DetectionRow is one (test, fault) cell of the three-valued detection
// matrix: the prover's verdict side by side with the completion
// pre-pass claim it must subsume.
type DetectionRow struct {
	// Test and Fault name the pair.
	Test, Fault string
	// TwoCell says the fault is a coupling entry; Partial and
	// Uncompletable carry the catalog flags.
	TwoCell, Partial, Uncompletable bool
	// Proof is the prover's verdict with its evidence.
	Proof Proof
	// CannotComplete is the completion pre-pass claim (with its reason):
	// a true claim must land in the prover's Misses.
	CannotComplete bool
	Reason         string
}

// DetectionMatrix is the full static bracketing of a test library
// against fault catalogs: every test × every entry, each with a sound
// three-valued verdict. It subsumes the completion pre-passes — every
// cannot-complete claim appears as a proved miss — and Drift reports
// any row where that containment fails.
type DetectionMatrix struct {
	// Tests are the evaluated test names, in order.
	Tests []string
	// Rows hold one entry per (test, fault) pair, tests outermost.
	Rows []DetectionRow
}

// BuildDetectionMatrix proves every test against every single-cell and
// two-cell catalog entry.
func BuildDetectionMatrix(tests []Test, singles []CatalogEntry, twos []TwoCellCatalogEntry) DetectionMatrix {
	var m DetectionMatrix
	for _, t := range tests {
		m.Tests = append(m.Tests, t.Name)
		for _, e := range singles {
			cannot, why := CannotComplete(t, e)
			m.Rows = append(m.Rows, DetectionRow{
				Test: t.Name, Fault: e.Name,
				Partial: e.Partial, Uncompletable: e.Uncompletable,
				Proof:          ProveDetects(t, e),
				CannotComplete: cannot, Reason: why,
			})
		}
		for _, e := range twos {
			cannot, why := CannotCompleteTwoCell(t, e)
			m.Rows = append(m.Rows, DetectionRow{
				Test: t.Name, Fault: e.Name, TwoCell: true,
				Partial: e.Partial, Uncompletable: e.Uncompletable,
				Proof:          ProveDetectsTwoCell(t, e),
				CannotComplete: cannot, Reason: why,
			})
		}
	}
	return m
}

// Counts tallies the matrix verdicts: proved detections, proved misses
// and unknowns.
func (m DetectionMatrix) Counts() (detects, misses, unknowns int) {
	for _, r := range m.Rows {
		switch r.Proof.Verdict {
		case VerdictDetects:
			detects++
		case VerdictMisses:
			misses++
		default:
			unknowns++
		}
	}
	return
}

// Drift returns the rows where a completion pre-pass cannot-complete
// claim is NOT subsumed by a prover Misses verdict. A sound pair of
// analyses yields none: "the fault can never fire" implies "the test
// never mismatches", which the prover must confirm.
func (m DetectionMatrix) Drift() []DetectionRow {
	var out []DetectionRow
	for _, r := range m.Rows {
		if r.CannotComplete && r.Proof.Verdict != VerdictMisses {
			out = append(out, r)
		}
	}
	return out
}

// rowsFor returns the matrix rows of one test, in catalog order.
func (m DetectionMatrix) rowsFor(test string) []DetectionRow {
	var out []DetectionRow
	for _, r := range m.Rows {
		if r.Test == test {
			out = append(out, r)
		}
	}
	return out
}

// DetectionPrePass runs the prover over every (test, catalog entry)
// pair and reports the results as findings:
//
//   - one Info summary per test ("detection-matrix") with its verdict
//     tally,
//   - an Info per proved miss the completion pre-passes did NOT already
//     claim ("proved-miss") — the prover's added value over the
//     cannot-complete analyses,
//   - an Error per drift row ("prover-prepass-drift"), i.e. a
//     cannot-complete claim the prover failed to confirm as a miss; a
//     sound build emits none.
func DetectionPrePass(tests []Test, singles []CatalogEntry, twos []TwoCellCatalogEntry) lint.Findings {
	m := BuildDetectionMatrix(tests, singles, twos)
	var out lint.Findings
	for _, name := range m.Tests {
		rows := m.rowsFor(name)
		d, miss, u := 0, 0, 0
		for _, r := range rows {
			switch r.Proof.Verdict {
			case VerdictDetects:
				d++
			case VerdictMisses:
				miss++
			default:
				u++
			}
		}
		out = append(out, lint.Finding{
			Layer: "march", Rule: "detection-matrix", Severity: lint.Info,
			Subject: name,
			Message: fmt.Sprintf("static detection verdicts over %d catalog entries: %d proved detected, %d proved missed, %d unknown", len(rows), d, miss, u),
		})
		for _, r := range rows {
			if r.Proof.Verdict == VerdictMisses && !r.CannotComplete {
				out = append(out, lint.Finding{
					Layer: "march", Rule: "proved-miss", Severity: lint.Info,
					Subject: name,
					Message: fmt.Sprintf("provably never detects %q: %s", r.Fault, r.Proof.Witness),
				})
			}
		}
	}
	for _, r := range m.Drift() {
		out = append(out, lint.Finding{
			Layer: "march", Rule: "prover-prepass-drift", Severity: lint.Error,
			Subject: r.Test,
			Message: fmt.Sprintf("completion pre-pass claims %q can never fire, but the prover verdict is %s — the static analyses disagree", r.Fault, r.Proof.Verdict),
		})
	}
	out.Sort()
	return out
}
