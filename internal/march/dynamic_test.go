package march

import (
	"testing"

	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

// TestDynamicCatalogShape: the write-read dynamic space has 12 FPs, all
// members of the generic #O=2 enumeration.
func TestDynamicCatalogShape(t *testing.T) {
	cat := memsim.DynamicFaultCatalog()
	if len(cat) != 12 {
		t.Fatalf("dynamic catalog has %d FPs, want 12", len(cat))
	}
	all := map[string]bool{}
	for _, p := range fp.EnumerateSingleCellFPs(2) {
		all[p.String()] = true
	}
	for _, p := range cat {
		if err := p.Validate(); err != nil {
			t.Errorf("invalid dynamic FP %s: %v", p, err)
		}
		if !all[p.String()] {
			t.Errorf("dynamic FP %s is not in the #O=2 enumeration", p)
		}
	}
}

// TestDynamicFaultMechanics: <0w0r0/1/1> fires only for the adjacent,
// state-matched pair.
func TestDynamicFaultMechanics(t *testing.T) {
	mk := func() *memsim.Array {
		a := memsim.NewArray(2, 2)
		a.MustInject(memsim.Fault{Victim: 0, FP: fp.MustParse("<0w0r0/1/1>")})
		return a
	}
	// The sensitizing pair: w0 on a 0-cell, then r0 immediately.
	a := mk()
	a.Write(0, 0) // initializes (X→0 pre-state does not match init 0... first make the state known)
	a.Write(0, 0) // 0w0
	if got := a.Read(0); got != 1 {
		t.Errorf("adjacent 0w0,r0 read = %d, want 1 (fault fired)", got)
	}
	if a.Cell(0) != 1 {
		t.Error("dynamic RDF must flip the cell")
	}
	// A transition write first (1w0) does not match <0w0r0...>.
	b := mk()
	b.Write(0, 1)
	b.Write(0, 0) // 1w0
	if got := b.Read(0); got != 0 {
		t.Errorf("1w0,r0 read = %d, want 0 (wrong pre-state)", got)
	}
	// An intervening operation breaks the adjacency.
	c := mk()
	c.Write(0, 0)
	c.Write(0, 0) // 0w0
	c.Write(1, 1) // intervening access elsewhere
	if got := c.Read(0); got != 0 {
		t.Errorf("interrupted pair read = %d, want 0", got)
	}
}

// TestMarchRAWCoversDynamicFaults validates the published claim that
// March RAW detects the write-read dynamic faults while the classical
// static tests miss all of them.
func TestMarchRAWCoversDynamicFaults(t *testing.T) {
	cat := dynCatalogEntries()
	for _, e := range cat {
		det, caught, total, err := Detects(MarchRAW(), 4, 2, e.Make)
		if err != nil {
			t.Fatal(err)
		}
		if !det {
			t.Errorf("March RAW misses %s (%d/%d)", e.Name, caught, total)
		}
	}
	for _, weak := range []Test{MATSPlus(), MarchCMinus()} {
		for _, e := range cat {
			det, _, _, err := Detects(weak, 4, 2, e.Make)
			if err != nil {
				t.Fatal(err)
			}
			if det {
				t.Errorf("%s unexpectedly detects dynamic %s", weak.Name, e.Name)
			}
		}
	}
}
