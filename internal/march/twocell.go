package march

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

// DetectsTwoCell reports whether the test guarantees detection of a
// coupling fault family: for every distinct (victim, aggressor) pair in
// a rows×cols array and every ⇕-order assignment, the test run yields at
// least one mismatch.
func DetectsTwoCell(t Test, rows, cols int, p fp.TwoCellFP) (bool, int, int, error) {
	return detectsTwoCell(t, rows, cols, func(victim, aggressor int) memsim.TwoCellFault {
		return memsim.TwoCellFault{Victim: victim, Aggressor: aggressor, FP: p}
	})
}

// DetectsTwoCellEntry is DetectsTwoCell for a full catalog entry,
// injecting partial coupling faults with their mediating floating line.
func DetectsTwoCellEntry(t Test, rows, cols int, e TwoCellCatalogEntry) (bool, int, int, error) {
	return detectsTwoCell(t, rows, cols, e.Make)
}

// DetectsTwoCellEntryOffsets is DetectsTwoCellEntry restricted to the
// aggressor offsets: only pairs with aggressor = victim + δ for some
// listed δ are simulated, so a neighbor set like ±1, ±cols turns the
// O(N²) pair walk into O(N·|δ|). Scenario counting matches the
// bit-plane engine's: Σ_δ (N − |δ|) in-array pairs per order
// assignment.
func DetectsTwoCellEntryOffsets(t Test, rows, cols int, e TwoCellCatalogEntry, offsets []int) (bool, int, int, error) {
	seen := map[int]bool{}
	for _, d := range offsets {
		if d == 0 {
			return false, 0, 0, fmt.Errorf("march: aggressor offset must be non-zero")
		}
		if seen[d] {
			return false, 0, 0, fmt.Errorf("march: duplicate aggressor offset %d", d)
		}
		seen[d] = true
	}
	if len(offsets) == 0 {
		return false, 0, 0, fmt.Errorf("march: empty aggressor offset set")
	}
	return detectsTwoCellPairs(t, rows, cols, e.Make, func(n int) [][2]int {
		var pairs [][2]int
		for _, d := range offsets {
			for victim := 0; victim < n; victim++ {
				if a := victim + d; a >= 0 && a < n {
					pairs = append(pairs, [2]int{victim, a})
				}
			}
		}
		return pairs
	})
}

func detectsTwoCell(t Test, rows, cols int, build func(victim, aggressor int) memsim.TwoCellFault) (bool, int, int, error) {
	return detectsTwoCellPairs(t, rows, cols, build, func(n int) [][2]int {
		pairs := make([][2]int, 0, n*(n-1))
		for victim := 0; victim < n; victim++ {
			for aggressor := 0; aggressor < n; aggressor++ {
				if victim != aggressor {
					pairs = append(pairs, [2]int{victim, aggressor})
				}
			}
		}
		return pairs
	})
}

func detectsTwoCellPairs(t Test, rows, cols int, build func(victim, aggressor int) memsim.TwoCellFault, enumerate func(n int) [][2]int) (bool, int, int, error) {
	if err := t.Validate(); err != nil {
		return false, 0, 0, err
	}
	if rows <= 0 || cols <= 0 {
		return false, 0, 0, fmt.Errorf("march: invalid geometry %dx%d", rows, cols)
	}
	assignments := t.OrderAssignments()
	caught, total := 0, 0
	for _, pair := range enumerate(rows * cols) {
		victim, aggressor := pair[0], pair[1]
		for _, orders := range assignments {
			arr := memsim.NewArray(rows, cols)
			if err := arr.InjectTwoCell(build(victim, aggressor)); err != nil {
				return false, 0, 0, err
			}
			total++
			mm, err := t.Run(arr, orders)
			if err != nil {
				return false, 0, 0, err
			}
			if len(mm) > 0 {
				caught++
			}
		}
	}
	return caught == total && total > 0, caught, total, nil
}

// TwoCellCoverage summarizes a test's guaranteed coverage of the full
// static two-cell FP space, grouped by coupling-fault class.
type TwoCellCoverage struct {
	// Detected and Total count FPs per class.
	Detected, Total map[fp.CFKind]int
	// DetectedAll is the number of FPs detected out of the 36.
	DetectedAll int
}

// TwoCellCertRow records one catalog entry's verdict in a coverage
// certificate: the static pre-pass claim (with its reason) side by side
// with the brute-force simulation result.
type TwoCellCertRow struct {
	// Entry is the catalog entry name; Class its coupling-fault class.
	Entry string
	Class fp.CFKind
	// Partial marks a floating-line-mediated entry.
	Partial bool
	// ProvedMiss and Reason carry the CannotCompleteTwoCell verdict.
	ProvedMiss bool
	Reason     string
	// Detected, Caught and Scenarios carry the DetectsTwoCellEntry
	// result: guaranteed detection, and scenarios caught out of all
	// (pair × order-assignment) scenarios.
	Detected          bool
	Caught, Scenarios int
	// Engine names the backend that evaluated the row; it differs from
	// the certificate's requested backend when the entry fell back to
	// the scalar oracle (ErrEngineUnsupported).
	Engine string
}

// TwoCellCertificate is a test's two-cell coverage certificate on one
// geometry: every catalog entry's static claim checked against the
// exhaustive simulation. A sound pre-pass yields no row where a proved
// miss was nevertheless caught.
type TwoCellCertificate struct {
	Test       string
	Rows, Cols int
	// Offsets, when non-empty, restricts the pair space to aggressor =
	// victim + δ for the listed δ; empty means all ordered pairs.
	Offsets []int
	Entries []TwoCellCertRow
}

// Violations returns the rows contradicting soundness: statically
// proved misses that the simulator nevertheless caught at least once.
func (c TwoCellCertificate) Violations() []TwoCellCertRow {
	var out []TwoCellCertRow
	for _, r := range c.Entries {
		if r.ProvedMiss && r.Caught > 0 {
			out = append(out, r)
		}
	}
	return out
}

// TwoCellCertificateFor builds the certificate for one test and
// geometry over a catalog with the scalar reference backend.
func TwoCellCertificateFor(t Test, catalog []TwoCellCatalogEntry, rows, cols int) (TwoCellCertificate, error) {
	return TwoCellCertificateWith(ScalarEngine{}, t, catalog, rows, cols)
}

// EvaluateTwoCellCoverage runs a test against all 36 static two-cell FPs.
func EvaluateTwoCellCoverage(t Test, rows, cols int) (TwoCellCoverage, error) {
	cov := TwoCellCoverage{
		Detected: map[fp.CFKind]int{},
		Total:    map[fp.CFKind]int{},
	}
	for _, p := range fp.EnumerateTwoCellStaticFPs() {
		kind := p.Classify()
		cov.Total[kind]++
		det, _, _, err := DetectsTwoCell(t, rows, cols, p)
		if err != nil {
			return cov, err
		}
		if det {
			cov.Detected[kind]++
			cov.DetectedAll++
		}
	}
	return cov, nil
}
