package march

import (
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/memsim"
)

// DetectsTwoCell reports whether the test guarantees detection of a
// coupling fault family: for every distinct (victim, aggressor) pair in
// a rows×cols array and every ⇕-order assignment, the test run yields at
// least one mismatch.
func DetectsTwoCell(t Test, rows, cols int, p fp.TwoCellFP) (bool, int, int, error) {
	if err := t.Validate(); err != nil {
		return false, 0, 0, err
	}
	assignments := t.OrderAssignments()
	caught, total := 0, 0
	n := rows * cols
	for victim := 0; victim < n; victim++ {
		for aggressor := 0; aggressor < n; aggressor++ {
			if victim == aggressor {
				continue
			}
			for _, orders := range assignments {
				arr := memsim.NewArray(rows, cols)
				if err := arr.InjectTwoCell(memsim.TwoCellFault{
					Victim: victim, Aggressor: aggressor, FP: p,
				}); err != nil {
					return false, 0, 0, err
				}
				total++
				if len(t.Run(arr, orders)) > 0 {
					caught++
				}
			}
		}
	}
	return caught == total && total > 0, caught, total, nil
}

// TwoCellCoverage summarizes a test's guaranteed coverage of the full
// static two-cell FP space, grouped by coupling-fault class.
type TwoCellCoverage struct {
	// Detected and Total count FPs per class.
	Detected, Total map[fp.CFKind]int
	// DetectedAll is the number of FPs detected out of the 36.
	DetectedAll int
}

// EvaluateTwoCellCoverage runs a test against all 36 static two-cell FPs.
func EvaluateTwoCellCoverage(t Test, rows, cols int) (TwoCellCoverage, error) {
	cov := TwoCellCoverage{
		Detected: map[fp.CFKind]int{},
		Total:    map[fp.CFKind]int{},
	}
	for _, p := range fp.EnumerateTwoCellStaticFPs() {
		kind := p.Classify()
		cov.Total[kind]++
		det, _, _, err := DetectsTwoCell(t, rows, cols, p)
		if err != nil {
			return cov, err
		}
		if det {
			cov.Detected[kind]++
			cov.DetectedAll++
		}
	}
	return cov, nil
}
