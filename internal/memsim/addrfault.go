package memsim

import "fmt"

// Address-decoder faults (AFs). The classical taxonomy [vdGoor98] has
// four types:
//
//	AF1: an address accesses no cell
//	AF2: an address accesses a different cell than intended
//	AF3: an address accesses multiple cells
//	AF4: multiple addresses access the same cell
//
// They are modeled here as a remapping layer from addresses to cell
// sets. Writes drive every mapped cell; reads return the common value of
// the mapped cells, or X (adversarial) when they disagree or the set is
// empty. Under guarantee semantics AF1 is therefore undetectable (its
// reads can always "happen" to return the expected value), matching the
// fact that real AF1 detection relies on analog read behaviour, not
// logic values.

// AFKind enumerates the decoder-fault types.
type AFKind int

// The decoder-fault types.
const (
	// AFNone is the healthy identity mapping.
	AFNone AFKind = iota
	// AFNoCell: address X accesses no cell (AF1).
	AFNoCell
	// AFWrongCell: address X accesses cell Y instead of cell X (AF2).
	AFWrongCell
	// AFExtraCell: address X accesses both cell X and cell Y (AF3).
	AFExtraCell
	// AFSharedCell: addresses X and Y both access cell X only (AF4).
	AFSharedCell
)

// String names the kind.
func (k AFKind) String() string {
	switch k {
	case AFNone:
		return "none"
	case AFNoCell:
		return "AF1 (no cell)"
	case AFWrongCell:
		return "AF2 (wrong cell)"
	case AFExtraCell:
		return "AF3 (extra cell)"
	case AFSharedCell:
		return "AF4 (shared cell)"
	}
	return "?"
}

// InjectAddressFault installs a decoder fault involving addresses x and
// (for the kinds that need one) y. Only one address fault may be
// installed per array, and address faults may not be combined with cell
// faults (the classical decomposition analyzes them separately).
func (a *Array) InjectAddressFault(kind AFKind, x, y int) error {
	a.check(x)
	if a.remap != nil {
		return fmt.Errorf("memsim: an address fault is already installed")
	}
	if len(a.faults) > 0 || len(a.cfaults) > 0 {
		return fmt.Errorf("memsim: address faults cannot be combined with cell faults")
	}
	needY := kind == AFWrongCell || kind == AFExtraCell || kind == AFSharedCell
	if needY {
		a.check(y)
		if x == y {
			return fmt.Errorf("memsim: address fault requires distinct x and y")
		}
	}
	a.remap = map[int][]int{}
	switch kind {
	case AFNoCell:
		a.remap[x] = []int{}
	case AFWrongCell:
		a.remap[x] = []int{y}
	case AFExtraCell:
		a.remap[x] = []int{x, y}
	case AFSharedCell:
		a.remap[x] = []int{x}
		a.remap[y] = []int{x}
	default:
		return fmt.Errorf("memsim: invalid address-fault kind %v", kind)
	}
	return nil
}

// remappedWrite handles a write under an installed decoder fault and
// reports whether it applied (false = identity mapping for this addr).
func (a *Array) remappedWrite(addr, bit int) bool {
	if a.remap == nil {
		return false
	}
	t, ok := a.remap[addr]
	if !ok {
		return false
	}
	for _, c := range t {
		a.cells[c] = bit
	}
	// The bit line / IO state of the addressed column is still driven.
	a.blState[a.Column(addr)] = bit
	a.ioState = bit
	return true
}

// remappedRead handles a read under an installed decoder fault; the
// second result reports whether it applied.
func (a *Array) remappedRead(addr int) (int, bool) {
	if a.remap == nil {
		return 0, false
	}
	t, ok := a.remap[addr]
	if !ok {
		return 0, false
	}
	if len(t) == 0 {
		return X, true // no cell: adversarially unknown
	}
	v := a.cells[t[0]]
	for _, c := range t[1:] {
		if a.cells[c] != v {
			return X, true // disagreeing cells: unknown
		}
	}
	return v, true
}
