package memsim

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// triggerKind says which hidden state arms a partial fault.
type triggerKind int

const (
	// trigAlways: a plain (non-partial) fault primitive, always armed.
	trigAlways triggerKind = iota
	// trigBitLine: armed when the victim's floating bit line holds the
	// completing value (set by the last operation in the column).
	trigBitLine
	// trigIO: armed when the output-buffer/IO state holds the completing
	// value (set by the last operation anywhere).
	trigIO
	// trigVictimSeq: armed when the victim's own recent operation values
	// end with the completing sequence (cell-internal analog state, the
	// paper's Open 1 mechanism).
	trigVictimSeq
	// trigNever: an uncompletable partial fault (floating word line):
	// no operation can guarantee sensitization, so under adversarial
	// semantics it never fires — Table 1's "Not possible" rows.
	trigNever
)

// opRecord is one operation as seen by a fault's history tracker.
type opRecord struct {
	write bool
	data  int
}

// fault is the compiled, injectable form of a fault primitive.
type fault struct {
	victim int
	// init is the victim state the SOS requires (X when unconstrained).
	init int
	// Final sensitizing operation; opFree marks state faults.
	opFree    bool
	finalRead bool
	finalData int
	// Faulty outcome.
	faultyF int
	faultyR int // X when the FP has R = '-'
	// Trigger condition.
	kind   triggerKind
	seq    []int // completing values (last one for line triggers)
	histor []int // victim operation-value history (trigVictimSeq)
	// dyn, when non-nil, makes the FP dynamic: the final operation only
	// fires immediately after this first operation of the pair.
	dyn *dynFirst
}

// Fault is the public injection descriptor.
type Fault struct {
	// Victim is the cell address exhibiting the fault.
	Victim int
	// FP is the (possibly completed) fault primitive.
	FP fp.FP
	// Float identifies the mediating floating voltage for partial
	// faults; ignored when the FP has no completing operations.
	Float defect.FloatVar
	// Uncompletable marks a partial fault with no completing sequence
	// (Table 1's "Not possible"): injected as never-triggering under the
	// adversarial test-guarantee semantics.
	Uncompletable bool
}

// Inject compiles and adds a fault to the array.
func (a *Array) Inject(f Fault) error {
	c, err := compile(f, a)
	if err != nil {
		return err
	}
	a.faults = append(a.faults, c)
	return nil
}

// MustInject injects and panics on error.
func (a *Array) MustInject(f Fault) {
	if err := a.Inject(f); err != nil {
		panic(err)
	}
}

func compile(f Fault, a *Array) (*fault, error) {
	a.check(f.Victim)
	p := f.FP
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("memsim: %w", err)
	}
	c := &fault{victim: f.Victim, init: X, faultyF: p.F, faultyR: X}
	switch p.S.Init {
	case fp.Init0:
		c.init = 0
	case fp.Init1:
		c.init = 1
	}
	sens := p.S.SensitizingOps()
	switch len(sens) {
	case 0:
		c.opFree = true
	case 1, 2:
		if len(sens) == 2 {
			// Dynamic pair: the first operation arms the second.
			first := sens[0]
			if first.Target != fp.TargetVictim {
				return nil, fmt.Errorf("memsim: dynamic FP %s must pair victim operations", p)
			}
			c.dyn = &dynFirst{write: first.Kind == fp.OpWrite, data: first.Data, pre: c.init}
			// The state before the final op is the first op's result.
			c.init = X
		}
		op := sens[len(sens)-1]
		if op.Target != fp.TargetVictim {
			return nil, fmt.Errorf("memsim: final operation of %s must target the victim", p)
		}
		c.finalRead = op.Kind == fp.OpRead
		c.finalData = op.Data
		if c.finalRead {
			if r, ok := p.R.Bit(); ok {
				c.faultyR = r
			}
			if c.dyn == nil {
				// A read's required pre-state is its expected value.
				c.init = op.Data
			}
		}
	default:
		return nil, fmt.Errorf("memsim: %s has %d sensitizing operations; at most two are injectable", p, len(sens))
	}

	comp := p.S.CompletingOps()
	switch {
	case f.Uncompletable:
		c.kind = trigNever
	case len(comp) == 0:
		c.kind = trigAlways
	default:
		victimOps, blOps := 0, 0
		for _, o := range comp {
			if o.Target == fp.TargetVictim {
				victimOps++
			} else {
				blOps++
			}
			c.seq = append(c.seq, o.Data)
		}
		if victimOps > 0 && blOps > 0 {
			return nil, fmt.Errorf("memsim: %s mixes victim and bit-line completing operations", p)
		}
		switch {
		case victimOps > 0:
			c.kind = trigVictimSeq
		case f.Float == defect.FloatOutBuffer:
			c.kind = trigIO
		case f.Float == defect.FloatWordLine:
			c.kind = trigNever
		default:
			c.kind = trigBitLine
		}
		if c.kind == trigVictimSeq && p.S.Init != fp.InitNone && !c.finalRead {
			// The completed form normally drops the init; keep whichever
			// constraint the FP states.
			_ = c.init
		}
	}
	return c, nil
}

// armed evaluates the trigger condition against the hidden state.
func (c *fault) armed(a *Array) bool {
	switch c.kind {
	case trigAlways:
		return true
	case trigNever:
		return false
	case trigBitLine:
		want := c.seq[len(c.seq)-1]
		return a.blState[a.Column(c.victim)] == want
	case trigIO:
		want := c.seq[len(c.seq)-1]
		return a.ioState == want
	case trigVictimSeq:
		if len(c.histor) < len(c.seq) {
			return false
		}
		off := len(c.histor) - len(c.seq)
		for i, v := range c.seq {
			if c.histor[off+i] != v {
				return false
			}
		}
		return true
	}
	return false
}

// initSatisfied checks the victim-state precondition.
func (c *fault) initSatisfied(a *Array) bool {
	if c.init == X {
		return true
	}
	return a.cells[c.victim] == c.init
}

// fireRead evaluates a read of addr: returns the corrupted (F, R) and
// true when the fault fires.
func (c *fault) fireRead(a *Array, addr, stored int) (newF, newR int, hit bool) {
	if c.opFree || !c.finalRead || addr != c.victim {
		return 0, 0, false
	}
	if c.dyn != nil && !c.dyn.matches(a.prevOp, c.victim) {
		return 0, 0, false
	}
	if stored != c.finalData || !c.initSatisfied(a) || !c.armed(a) {
		return 0, 0, false
	}
	return c.faultyF, c.faultyR, true
}

// fireWrite evaluates a write of bit to addr: returns the state the cell
// actually assumes and true when the fault fires.
func (c *fault) fireWrite(a *Array, addr, bit int) (newF int, hit bool) {
	if c.opFree || c.finalRead || addr != c.victim {
		return 0, false
	}
	if c.dyn != nil && !c.dyn.matches(a.prevOp, c.victim) {
		return 0, false
	}
	if bit != c.finalData || !c.initSatisfied(a) || !c.armed(a) {
		return 0, false
	}
	return c.faultyF, true
}

// fireState lets a state fault flip its armed victim.
func (c *fault) fireState(a *Array) {
	if !c.opFree {
		return
	}
	if c.initSatisfied(a) && c.init != X && c.armed(a) {
		a.cells[c.victim] = c.faultyF
	}
}

// observeOp records operation history for sequence triggers.
func (c *fault) observeOp(a *Array, addr int, rec opRecord) {
	if c.kind != trigVictimSeq || addr != c.victim {
		return
	}
	c.histor = append(c.histor, rec.data)
	if len(c.histor) > 8 {
		c.histor = c.histor[len(c.histor)-8:]
	}
}
