package memsim

import (
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// opRecord is one operation as seen by a fault's history tracker.
type opRecord struct {
	write bool
	data  int
}

// fault is the compiled, injectable form of a fault primitive: the
// exported spec plus the victim binding and the run-time trigger state.
type fault struct {
	CompiledFault
	victim int
	// histor is the victim operation-value history (TrigVictimSeq).
	histor []int
	// dyn, when non-nil, makes the FP dynamic: the final operation only
	// fires immediately after this first operation of the pair.
	dyn *dynFirst
}

// Fault is the public injection descriptor.
type Fault struct {
	// Victim is the cell address exhibiting the fault.
	Victim int
	// FP is the (possibly completed) fault primitive.
	FP fp.FP
	// Float identifies the mediating floating voltage for partial
	// faults; ignored when the FP has no completing operations.
	Float defect.FloatVar
	// Uncompletable marks a partial fault with no completing sequence
	// (Table 1's "Not possible"): injected as never-triggering under the
	// adversarial test-guarantee semantics.
	Uncompletable bool
}

// Inject compiles and adds a fault to the array.
func (a *Array) Inject(f Fault) error {
	a.check(f.Victim)
	spec, err := CompileFault(f)
	if err != nil {
		return err
	}
	c := &fault{CompiledFault: spec, victim: f.Victim}
	if spec.Dynamic {
		c.dyn = &dynFirst{write: spec.DynWrite, data: spec.DynData, pre: spec.DynPre}
	}
	a.faults = append(a.faults, c)
	return nil
}

// MustInject injects and panics on error.
func (a *Array) MustInject(f Fault) {
	if err := a.Inject(f); err != nil {
		panic(err)
	}
}

// armed evaluates the trigger condition against the hidden state.
func (c *fault) armed(a *Array) bool {
	switch c.Kind {
	case TrigAlways:
		return true
	case TrigNever:
		return false
	case TrigBitLine:
		want := c.Seq[len(c.Seq)-1]
		return a.blState[a.Column(c.victim)] == want
	case TrigIO:
		want := c.Seq[len(c.Seq)-1]
		return a.ioState == want
	case TrigVictimSeq:
		if len(c.histor) < len(c.Seq) {
			return false
		}
		off := len(c.histor) - len(c.Seq)
		for i, v := range c.Seq {
			if c.histor[off+i] != v {
				return false
			}
		}
		return true
	}
	return false
}

// initSatisfied checks the victim-state precondition.
func (c *fault) initSatisfied(a *Array) bool {
	if c.Init == X {
		return true
	}
	return a.cells[c.victim] == c.Init
}

// fireRead evaluates a read of addr: returns the corrupted (F, R) and
// true when the fault fires.
func (c *fault) fireRead(a *Array, addr, stored int) (newF, newR int, hit bool) {
	if c.OpFree || !c.FinalRead || addr != c.victim {
		return 0, 0, false
	}
	if c.dyn != nil && !c.dyn.matches(a.prevOp, c.victim) {
		return 0, 0, false
	}
	if stored != c.FinalData || !c.initSatisfied(a) || !c.armed(a) {
		return 0, 0, false
	}
	return c.FaultyF, c.FaultyR, true
}

// fireWrite evaluates a write of bit to addr: returns the state the cell
// actually assumes and true when the fault fires.
func (c *fault) fireWrite(a *Array, addr, bit int) (newF int, hit bool) {
	if c.OpFree || c.FinalRead || addr != c.victim {
		return 0, false
	}
	if c.dyn != nil && !c.dyn.matches(a.prevOp, c.victim) {
		return 0, false
	}
	if bit != c.FinalData || !c.initSatisfied(a) || !c.armed(a) {
		return 0, false
	}
	return c.FaultyF, true
}

// fireState lets a state fault flip its armed victim.
func (c *fault) fireState(a *Array) {
	if !c.OpFree {
		return
	}
	if c.initSatisfied(a) && c.Init != X && c.armed(a) {
		a.cells[c.victim] = c.FaultyF
	}
}

// observeOp records operation history for sequence triggers.
func (c *fault) observeOp(a *Array, addr int, rec opRecord) {
	if c.Kind != TrigVictimSeq || addr != c.victim {
		return
	}
	c.histor = append(c.histor, rec.data)
	if len(c.histor) > 8 {
		c.histor = c.histor[len(c.histor)-8:]
	}
}
