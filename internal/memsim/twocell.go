package memsim

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/fp"
)

// TwoCellFault injects a static coupling fault primitive between an
// aggressor and a victim cell.
type TwoCellFault struct {
	// Victim and Aggressor are distinct cell addresses.
	Victim, Aggressor int
	// FP is the two-cell fault primitive.
	FP fp.TwoCellFP
}

// cfault is the compiled coupling fault.
type cfault struct {
	victim, aggressor int
	p                 fp.TwoCellFP
	kind              fp.CFKind
}

// InjectTwoCell compiles and adds a coupling fault to the array.
func (a *Array) InjectTwoCell(f TwoCellFault) error {
	a.check(f.Victim)
	a.check(f.Aggressor)
	if f.Victim == f.Aggressor {
		return fmt.Errorf("memsim: victim and aggressor must differ")
	}
	kind := f.FP.Classify()
	if kind == fp.CFUnknown {
		return fmt.Errorf("memsim: %s is not a valid static two-cell FP", f.FP)
	}
	a.cfaults = append(a.cfaults, &cfault{
		victim: f.Victim, aggressor: f.Aggressor, p: f.FP, kind: kind,
	})
	return nil
}

// MustInjectTwoCell injects and panics on error.
func (a *Array) MustInjectTwoCell(f TwoCellFault) {
	if err := a.InjectTwoCell(f); err != nil {
		panic(err)
	}
}

// aggMatches checks the aggressor-state precondition.
func (c *cfault) aggMatches(a *Array) bool {
	return a.cells[c.aggressor] == c.p.AggState
}

// fireAggressorOp evaluates an operation on the aggressor (CFds).
func (c *cfault) fireAggressorOp(a *Array, addr int, write bool, data, preState int) {
	if c.kind != fp.CFds || addr != c.aggressor || c.p.AggOp == nil {
		return
	}
	op := c.p.AggOp
	if (op.Kind == fp.OpWrite) != write {
		return
	}
	if preState != c.p.AggState {
		return
	}
	if op.Kind == fp.OpWrite && op.Data != data {
		return
	}
	if op.Kind == fp.OpRead && preState != op.Data {
		return
	}
	if a.cells[c.victim] == c.p.VictimState {
		a.cells[c.victim] = c.p.F
	}
}

// fireVictimWrite evaluates a write to the victim (CFtr / CFwd),
// returning the state the victim assumes and whether the fault fired.
func (c *cfault) fireVictimWrite(a *Array, addr, bit int) (int, bool) {
	if (c.kind != fp.CFtr && c.kind != fp.CFwd) || addr != c.victim || c.p.VictimOp == nil {
		return 0, false
	}
	if c.p.VictimOp.Data != bit || a.cells[c.victim] != c.p.VictimState || !c.aggMatches(a) {
		return 0, false
	}
	return c.p.F, true
}

// fireVictimRead evaluates a read of the victim (CFrd / CFdr / CFir).
func (c *cfault) fireVictimRead(a *Array, addr, stored int) (newF, newR int, hit bool) {
	switch c.kind {
	case fp.CFrd, fp.CFdr, fp.CFir:
	default:
		return 0, 0, false
	}
	if addr != c.victim || c.p.VictimOp == nil {
		return 0, 0, false
	}
	if stored != c.p.VictimOp.Data || stored != c.p.VictimState || !c.aggMatches(a) {
		return 0, 0, false
	}
	r, _ := c.p.R.Bit()
	return c.p.F, r, true
}

// fireState applies CFst after any operation period.
func (c *cfault) fireState(a *Array) {
	if c.kind != fp.CFst {
		return
	}
	if c.aggMatches(a) && a.cells[c.victim] == c.p.VictimState {
		a.cells[c.victim] = c.p.F
	}
}
