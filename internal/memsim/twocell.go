package memsim

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// TwoCellFault injects a static coupling fault primitive between an
// aggressor and a victim cell. The zero Float injects the classical,
// always-armed coupling fault; a non-zero Float makes the fault
// *partial*: besides the aggressor/victim conditions, the mediating
// floating line must hold the completing value Comp at the sensitizing
// moment — the victim's bit line (FloatBitLine, last value driven in
// the victim's column) or the output buffer (FloatOutBuffer, last
// value driven anywhere). FloatWordLine, or Uncompletable, injects the
// fault as never-triggering: a floating word line has no completing
// operation, so under the adversarial test-guarantee semantics it never
// fires — the two-cell analogue of Table 1's "Not possible" rows.
type TwoCellFault struct {
	// Victim and Aggressor are distinct cell addresses.
	Victim, Aggressor int
	// FP is the two-cell fault primitive.
	FP fp.TwoCellFP
	// Float identifies the mediating floating voltage of a partial
	// coupling fault; zero for a classical one.
	Float defect.FloatVar
	// Comp is the completing value the mediating line must hold.
	Comp int
	// Uncompletable marks a partial coupling fault with no completing
	// operation.
	Uncompletable bool
}

// cfault is the compiled coupling fault: the exported spec plus the
// address-pair binding.
type cfault struct {
	CompiledTwoCell
	victim, aggressor int
	p                 fp.TwoCellFP
}

// InjectTwoCell compiles and adds a coupling fault to the array.
func (a *Array) InjectTwoCell(f TwoCellFault) error {
	a.check(f.Victim)
	a.check(f.Aggressor)
	if f.Victim == f.Aggressor {
		return fmt.Errorf("memsim: victim and aggressor must differ")
	}
	spec, err := CompileTwoCellFault(f)
	if err != nil {
		return err
	}
	a.cfaults = append(a.cfaults, &cfault{
		CompiledTwoCell: spec, victim: f.Victim, aggressor: f.Aggressor, p: f.FP,
	})
	return nil
}

// MustInjectTwoCell injects and panics on error.
func (a *Array) MustInjectTwoCell(f TwoCellFault) {
	if err := a.InjectTwoCell(f); err != nil {
		panic(err)
	}
}

// aggMatches checks the aggressor-state precondition.
func (c *cfault) aggMatches(a *Array) bool {
	return a.cells[c.aggressor] == c.p.AggState
}

// armed evaluates a partial coupling fault's line trigger. The
// operation-sensitized fire* hooks run before the current operation
// drives the lines, so the trigger sees the line value left floating by
// the *previous* operation; the CFst hook (fireState) runs after, so a
// line-mediated CFst would see the post-operation value — which is why
// the catalog only models word-line (uncompletable) partial CFst.
func (c *cfault) armed(a *Array) bool {
	switch c.Trig {
	case TrigNever:
		return false
	case TrigBitLine:
		return a.blState[a.Column(c.victim)] == c.Comp
	case TrigIO:
		return a.ioState == c.Comp
	}
	return true
}

// fireAggressorOp evaluates an operation on the aggressor (CFds).
func (c *cfault) fireAggressorOp(a *Array, addr int, write bool, data, preState int) {
	if c.Kind != fp.CFds || addr != c.aggressor || c.p.AggOp == nil || !c.armed(a) {
		return
	}
	op := c.p.AggOp
	if (op.Kind == fp.OpWrite) != write {
		return
	}
	if preState != c.p.AggState {
		return
	}
	if op.Kind == fp.OpWrite && op.Data != data {
		return
	}
	if op.Kind == fp.OpRead && preState != op.Data {
		return
	}
	if a.cells[c.victim] == c.p.VictimState {
		a.cells[c.victim] = c.p.F
	}
}

// fireVictimWrite evaluates a write to the victim (CFtr / CFwd),
// returning the state the victim assumes and whether the fault fired.
func (c *cfault) fireVictimWrite(a *Array, addr, bit int) (int, bool) {
	if (c.Kind != fp.CFtr && c.Kind != fp.CFwd) || addr != c.victim || c.p.VictimOp == nil || !c.armed(a) {
		return 0, false
	}
	if c.p.VictimOp.Data != bit || a.cells[c.victim] != c.p.VictimState || !c.aggMatches(a) {
		return 0, false
	}
	return c.p.F, true
}

// fireVictimRead evaluates a read of the victim (CFrd / CFdr / CFir).
func (c *cfault) fireVictimRead(a *Array, addr, stored int) (newF, newR int, hit bool) {
	switch c.Kind {
	case fp.CFrd, fp.CFdr, fp.CFir:
	default:
		return 0, 0, false
	}
	if addr != c.victim || c.p.VictimOp == nil || !c.armed(a) {
		return 0, 0, false
	}
	if stored != c.p.VictimOp.Data || stored != c.p.VictimState || !c.aggMatches(a) {
		return 0, 0, false
	}
	r, _ := c.p.R.Bit()
	return c.p.F, r, true
}

// fireState applies CFst after any operation period.
func (c *cfault) fireState(a *Array) {
	if c.Kind != fp.CFst || !c.armed(a) {
		return
	}
	if c.aggMatches(a) && a.cells[c.victim] == c.p.VictimState {
		a.cells[c.victim] = c.p.F
	}
}
