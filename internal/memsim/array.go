// Package memsim is the functional (logic-level) memory-array simulator
// used for march-test evaluation. It models an N-cell array with bit-line
// topology (cells in the same column share a bit line) and supports
// injecting fault primitives — including the paper's *partial* faults,
// whose sensitization is mediated by hidden line state (floating bit
// line, output buffer, reference cell, word line) that persists between
// operations because the defect prevents precharge normalization.
//
// Semantics are adversarial for test-guarantee analysis: a fault triggers
// only when its sensitizing condition is *guaranteed* by the operation
// history. Hidden state starts unknown, and unknown never triggers — so
// "detects" means "detects on every device exhibiting the fault", which
// is the property a production march test must have.
package memsim

import "fmt"

// X is the unknown logic value (adversarial: behaves as expected and
// never triggers faults).
const X = -1

// Array is a functional memory array of rows×cols one-bit cells.
// Address a maps to row a/cols, column a%cols; cells in the same column
// share a bit line.
type Array struct {
	rows, cols int
	cells      []int // 0, 1 or X
	faults     []*fault
	cfaults    []*cfault
	remap      map[int][]int // address-decoder fault mapping (nil = identity)
	prevOp     lastOp        // most recent operation (dynamic-fault adjacency)

	// blState is the hidden per-column floating bit-line proxy: the last
	// value driven onto the bit line by any operation in the column
	// (writes drive the written value, reads the restored value).
	blState []int
	// ioState is the hidden output-buffer/IO proxy: the last value
	// driven through the IO path by any operation.
	ioState int
	// ops counts operations performed (diagnostics).
	ops int
}

// NewArray builds an array with all cells and hidden state unknown.
func NewArray(rows, cols int) *Array {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("memsim: invalid array %dx%d", rows, cols))
	}
	a := &Array{
		rows:    rows,
		cols:    cols,
		cells:   make([]int, rows*cols),
		blState: make([]int, cols),
		ioState: X,
	}
	for i := range a.cells {
		a.cells[i] = X
	}
	for i := range a.blState {
		a.blState[i] = X
	}
	return a
}

// Size returns the number of cells.
func (a *Array) Size() int { return a.rows * a.cols }

// Rows and Cols return the array geometry.
func (a *Array) Rows() int { return a.rows }

// Cols returns the number of columns (bit lines).
func (a *Array) Cols() int { return a.cols }

// Column returns the column (bit line) of an address.
func (a *Array) Column(addr int) int { return addr % a.cols }

// SameBitLine reports whether two addresses share a bit line.
func (a *Array) SameBitLine(x, y int) bool { return a.Column(x) == a.Column(y) }

// Cell returns the stored value of an address (X if unknown), bypassing
// fault effects — the "physical" state used to seed expectations.
func (a *Array) Cell(addr int) int {
	a.check(addr)
	return a.cells[addr]
}

// OpCount returns the number of operations performed so far.
func (a *Array) OpCount() int { return a.ops }

// CheckAddr reports whether an address is inside the array, as an error
// suitable for callers that drive the array from computed address
// streams (the march runner). The internal accessors keep panicking on
// violations — an out-of-range address inside the simulator is a bug,
// not an input condition — but external walks should validate with
// CheckAddr and propagate instead of relying on that panic.
func (a *Array) CheckAddr(addr int) error {
	if addr < 0 || addr >= len(a.cells) {
		return fmt.Errorf("memsim: address %d out of range [0,%d)", addr, len(a.cells))
	}
	return nil
}

func (a *Array) check(addr int) {
	if err := a.CheckAddr(addr); err != nil {
		panic(err.Error())
	}
}

// Write performs a write operation.
func (a *Array) Write(addr, bit int) {
	a.check(addr)
	if bit != 0 && bit != 1 {
		panic(fmt.Sprintf("memsim: write data %d out of range", bit))
	}
	a.ops++
	if a.remappedWrite(addr, bit) {
		a.applyStateFaults()
		return
	}
	pre := a.cells[addr]
	// Write-sensitized faults (TF, WDF, coupling …) may divert the
	// stored value; their trigger state is evaluated before this
	// operation is recorded.
	result := bit
	for _, f := range a.faults {
		if nf, hit := f.fireWrite(a, addr, bit); hit {
			result = nf
		}
	}
	for _, c := range a.cfaults {
		if nf, hit := c.fireVictimWrite(a, addr, bit); hit {
			result = nf
		}
	}
	for _, f := range a.faults {
		f.observeOp(a, addr, opRecord{write: true, data: bit})
	}
	a.cells[addr] = result
	// Aggressor-operation coupling faults (CFds) act on their victim.
	for _, c := range a.cfaults {
		c.fireAggressorOp(a, addr, true, bit, pre)
	}
	a.prevOp = lastOp{valid: true, addr: addr, write: true, data: bit, preState: pre}
	// The write driver forces the bit line and IO path to the written
	// value regardless of what the cell actually stored.
	a.blState[a.Column(addr)] = bit
	a.ioState = bit
	a.applyStateFaults()
}

// Read performs a read operation and returns the value the output buffer
// delivers (fault effects included).
func (a *Array) Read(addr int) int {
	a.check(addr)
	a.ops++
	if v, ok := a.remappedRead(addr); ok {
		if v != X {
			a.blState[a.Column(addr)] = v
			a.ioState = v
		}
		return v
	}
	stored := a.cells[addr]
	pre := stored
	out := stored
	// Evaluate read-sensitized faults: they may corrupt the cell and/or
	// the output.
	for _, f := range a.faults {
		if newF, newR, hit := f.fireRead(a, addr, stored); hit {
			a.cells[addr] = newF
			out = newR
			stored = newF
		}
	}
	for _, c := range a.cfaults {
		if newF, newR, hit := c.fireVictimRead(a, addr, stored); hit {
			a.cells[addr] = newF
			out = newR
			stored = newF
		}
	}
	// A read of the aggressor may disturb the victim (CFds via rx).
	for _, c := range a.cfaults {
		c.fireAggressorOp(a, addr, false, out, pre)
	}
	for _, f := range a.faults {
		// Reads record the restored cell value (the sense amplifier
		// writes back what it resolved, not what reached the output).
		f.observeOp(a, addr, opRecord{write: false, data: a.cells[addr]})
	}
	// The (restored) cell value drives the bit line; the output drives
	// the IO path. After a destructive read both equal the final state.
	if restored := a.cells[addr]; restored != X {
		a.blState[a.Column(addr)] = restored
	}
	if out != X {
		a.ioState = out
	}
	a.prevOp = lastOp{valid: true, addr: addr, write: false, data: a.cells[addr], preState: pre}
	a.applyStateFaults()
	return out
}

// applyStateFaults lets operation-free (state) faults act: after any
// operation period, an armed state fault flips its victim.
func (a *Array) applyStateFaults() {
	for _, f := range a.faults {
		f.fireState(a)
	}
	for _, c := range a.cfaults {
		c.fireState(a)
	}
}
