package memsim

import "github.com/memtest/partialfaults/internal/fp"

// Dynamic (two-operation) single-cell faults: FPs whose SOS performs two
// back-to-back operations on the victim, e.g. <0w0r0/1/1> — the read
// fails only when performed immediately after the write. These are the
// #O = 2 FPs of the paper's Section 4 space; march tests need same-
// address operation pairs (like March RAW's) to sensitize them.
//
// Adjacency semantics: the pair must be uninterrupted — the sensitizing
// final operation fires only if the immediately preceding operation on
// the whole memory was the first operation of the pair, applied to the
// victim. Any intervening access (even to another cell) resets the
// internal state, which is how the defect physics behaves: the pair
// exploits a not-yet-settled internal node, and an intervening operation
// cycle (with its precharge) settles it.

// lastOp records the most recent operation for adjacency checks.
type lastOp struct {
	valid bool
	addr  int
	write bool
	data  int
	// preState is the addressed cell's value before the operation, which
	// distinguishes transition from non-transition first operations.
	preState int
}

// dynFirst describes the first operation of a dynamic pair.
type dynFirst struct {
	write bool
	data  int
	// pre is the victim state the SOS requires before the first
	// operation (X when unconstrained).
	pre int
}

// matches checks the recorded previous operation against the spec.
func (d *dynFirst) matches(prev lastOp, victim int) bool {
	if !prev.valid || prev.addr != victim || prev.write != d.write || prev.data != d.data {
		return false
	}
	return d.pre == X || prev.preState == d.pre
}

// DynamicFaultCatalog returns the twelve write-read dynamic FPs
// (<x wy ry / F / R> for all x, y and faulty outcomes) as injectable
// catalog descriptors, labeled by their notation.
func DynamicFaultCatalog() []fp.FP {
	var out []fp.FP
	for _, init := range []fp.Init{fp.Init0, fp.Init1} {
		for _, w := range []int{0, 1} {
			sos := fp.NewSOS(init, fp.W(w), fp.R(w))
			for _, f := range []int{0, 1} {
				for _, r := range []int{0, 1} {
					if f == w && r == w {
						continue // fault-free
					}
					out = append(out, fp.FP{S: sos, F: f, R: fp.ReadResultOf(r)})
				}
			}
		}
	}
	return out
}
