package memsim

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

// This file is the compiled *specification* view of injectable faults,
// exported so static analyses (the march detection prover) interpret
// exactly the trigger semantics the simulator executes. The engine's
// private fault machines are built from these specs; there is no second
// derivation that could drift.

// TriggerKind says which hidden state arms a (partial) fault.
type TriggerKind int

const (
	// TrigAlways: a plain (non-partial) fault primitive, always armed.
	TrigAlways TriggerKind = iota
	// TrigBitLine: armed when the victim's floating bit line holds the
	// completing value (set by the last operation in the column).
	TrigBitLine
	// TrigIO: armed when the output-buffer/IO state holds the completing
	// value (set by the last operation anywhere).
	TrigIO
	// TrigVictimSeq: armed when the victim's own recent operation values
	// end with the completing sequence (cell-internal analog state, the
	// paper's Open 1 mechanism).
	TrigVictimSeq
	// TrigNever: an uncompletable partial fault (floating word line):
	// no operation can guarantee sensitization, so under adversarial
	// semantics it never fires — Table 1's "Not possible" rows.
	TrigNever
)

// String renders the trigger kind.
func (k TriggerKind) String() string {
	switch k {
	case TrigAlways:
		return "always"
	case TrigBitLine:
		return "bit line"
	case TrigIO:
		return "output buffer"
	case TrigVictimSeq:
		return "victim sequence"
	case TrigNever:
		return "never"
	}
	return fmt.Sprintf("TriggerKind(%d)", int(k))
}

// CompiledFault is the compiled form of a single-cell Fault: the exact
// machine the simulator runs, minus the victim address. X marks
// unconstrained values throughout.
type CompiledFault struct {
	// Init is the victim pre-state the sensitizing operation requires
	// (X when unconstrained). For read-sensitized FPs this equals the
	// read's expected value.
	Init int
	// OpFree marks a state fault: it fires after any operation period
	// instead of at a sensitizing operation.
	OpFree bool
	// FinalRead says whether the sensitizing operation is a read;
	// FinalData is its data value.
	FinalRead bool
	FinalData int
	// FaultyF is the cell state after firing; FaultyR the delivered read
	// value (X when the FP has R = '-').
	FaultyF int
	FaultyR int
	// Kind and Seq describe the trigger: Seq holds the completing values
	// (the whole victim-operation sequence for TrigVictimSeq, whose last
	// value alone matters for the line triggers).
	Kind TriggerKind
	Seq  []int
	// Dynamic marks a two-operation dynamic pair: the final operation
	// fires only immediately after the pair's first operation, described
	// by DynWrite/DynData/DynPre.
	Dynamic  bool
	DynWrite bool
	DynData  int
	DynPre   int
}

// CompileFault compiles an injection descriptor to its spec. The victim
// address is ignored (range-checked at injection time).
func CompileFault(f Fault) (CompiledFault, error) {
	p := f.FP
	if err := p.Validate(); err != nil {
		return CompiledFault{}, fmt.Errorf("memsim: %w", err)
	}
	c := CompiledFault{Init: X, FaultyF: p.F, FaultyR: X}
	switch p.S.Init {
	case fp.Init0:
		c.Init = 0
	case fp.Init1:
		c.Init = 1
	}
	sens := p.S.SensitizingOps()
	switch len(sens) {
	case 0:
		c.OpFree = true
	case 1, 2:
		if len(sens) == 2 {
			// Dynamic pair: the first operation arms the second.
			first := sens[0]
			if first.Target != fp.TargetVictim {
				return CompiledFault{}, fmt.Errorf("memsim: dynamic FP %s must pair victim operations", p)
			}
			c.Dynamic = true
			c.DynWrite = first.Kind == fp.OpWrite
			c.DynData = first.Data
			c.DynPre = c.Init
			// The state before the final op is the first op's result.
			c.Init = X
		}
		op := sens[len(sens)-1]
		if op.Target != fp.TargetVictim {
			return CompiledFault{}, fmt.Errorf("memsim: final operation of %s must target the victim", p)
		}
		c.FinalRead = op.Kind == fp.OpRead
		c.FinalData = op.Data
		if c.FinalRead {
			if r, ok := p.R.Bit(); ok {
				c.FaultyR = r
			}
			if !c.Dynamic {
				// A read's required pre-state is its expected value.
				c.Init = op.Data
			}
		}
	default:
		return CompiledFault{}, fmt.Errorf("memsim: %s has %d sensitizing operations; at most two are injectable", p, len(sens))
	}

	comp := p.S.CompletingOps()
	switch {
	case f.Uncompletable:
		c.Kind = TrigNever
	case len(comp) == 0:
		c.Kind = TrigAlways
	default:
		target, uniform := p.S.CompletingTarget()
		if !uniform {
			return CompiledFault{}, fmt.Errorf("memsim: %s mixes victim and bit-line completing operations", p)
		}
		for _, o := range comp {
			c.Seq = append(c.Seq, o.Data)
		}
		switch {
		case target == fp.TargetVictim:
			c.Kind = TrigVictimSeq
		case f.Float == defect.FloatOutBuffer:
			c.Kind = TrigIO
		case f.Float == defect.FloatWordLine:
			c.Kind = TrigNever
		default:
			c.Kind = TrigBitLine
		}
	}
	return c, nil
}

// CompiledTwoCell is the compiled form of a TwoCellFault: the coupling
// class plus the mediating-line trigger, minus the address pair.
type CompiledTwoCell struct {
	// Kind is the coupling-fault class of the FP.
	Kind fp.CFKind
	// Trig and Comp describe the mediating-line trigger: TrigAlways for
	// classical entries, TrigNever for uncompletable ones, TrigBitLine /
	// TrigIO with the completing value Comp for partial ones.
	Trig TriggerKind
	Comp int
}

// CompileTwoCellFault compiles a coupling-fault descriptor to its spec.
// The address pair is ignored (checked at injection time).
func CompileTwoCellFault(f TwoCellFault) (CompiledTwoCell, error) {
	if err := f.FP.Validate(); err != nil {
		return CompiledTwoCell{}, fmt.Errorf("memsim: %w", err)
	}
	c := CompiledTwoCell{Kind: f.FP.Classify(), Trig: TrigAlways}
	switch {
	case f.Uncompletable || f.Float == defect.FloatWordLine:
		c.Trig = TrigNever
	case f.Float == defect.FloatBitLine:
		c.Trig, c.Comp = TrigBitLine, f.Comp
	case f.Float == defect.FloatOutBuffer:
		c.Trig, c.Comp = TrigIO, f.Comp
	case f.Float == "":
		// Classical coupling fault, always armed.
	default:
		return CompiledTwoCell{}, fmt.Errorf("memsim: %q cannot mediate a partial coupling fault", f.Float)
	}
	if (c.Trig == TrigBitLine || c.Trig == TrigIO) && f.Comp != 0 && f.Comp != 1 {
		return CompiledTwoCell{}, fmt.Errorf("memsim: partial coupling fault needs a bit-valued completing value, got %d", f.Comp)
	}
	return c, nil
}
