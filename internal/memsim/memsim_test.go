package memsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
)

func TestFaultFreeRoundTrip(t *testing.T) {
	a := NewArray(4, 4)
	for addr := 0; addr < a.Size(); addr++ {
		a.Write(addr, addr%2)
	}
	for addr := 0; addr < a.Size(); addr++ {
		if got := a.Read(addr); got != addr%2 {
			t.Errorf("addr %d: read %d, want %d", addr, got, addr%2)
		}
	}
}

func TestUnknownCellsReadX(t *testing.T) {
	a := NewArray(2, 2)
	if got := a.Read(0); got != X {
		t.Errorf("unwritten cell read %d, want X", got)
	}
}

// TestFaultFreeRandomProperty: without faults the array is a perfect
// memory under arbitrary operation sequences.
func TestFaultFreeRandomProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := NewArray(3, 3)
		ref := make([]int, a.Size())
		for i := range ref {
			ref[i] = X
		}
		for i := 0; i < 200; i++ {
			addr := rng.Intn(a.Size())
			if rng.Intn(2) == 0 {
				b := rng.Intn(2)
				a.Write(addr, b)
				ref[addr] = b
			} else if got := a.Read(addr); got != ref[addr] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTopology(t *testing.T) {
	a := NewArray(4, 4)
	if !a.SameBitLine(1, 5) || a.SameBitLine(0, 1) {
		t.Error("bit-line topology wrong: column = addr mod cols")
	}
	if a.Column(7) != 3 {
		t.Errorf("Column(7) = %d, want 3", a.Column(7))
	}
}

func TestPlainRDF1Fires(t *testing.T) {
	a := NewArray(2, 2)
	a.MustInject(Fault{Victim: 1, FP: fp.MustParse("<1r1/0/0>")})
	a.Write(1, 1)
	if got := a.Read(1); got != 0 {
		t.Errorf("RDF1 read = %d, want 0", got)
	}
	if a.Cell(1) != 0 {
		t.Error("RDF1 must destroy the cell")
	}
	// Re-reading the now-0 cell is healthy.
	if got := a.Read(1); got != 0 {
		t.Errorf("second read = %d, want 0", got)
	}
}

func TestPlainWDF0AndTF(t *testing.T) {
	a := NewArray(2, 2)
	a.MustInject(Fault{Victim: 0, FP: fp.MustParse("<0w0/1/->")})
	a.Write(0, 1)
	a.Write(0, 0) // 1w0 — not the WDF0 context (needs state 0)
	if a.Cell(0) != 0 {
		t.Error("1w0 must not trigger WDF0")
	}
	a.Write(0, 0) // 0w0 — fires
	if a.Cell(0) != 1 {
		t.Error("0w0 must trigger WDF0 (cell flips to 1)")
	}

	b := NewArray(2, 2)
	b.MustInject(Fault{Victim: 0, FP: fp.MustParse("<0w1/0/->")})
	b.Write(0, 0)
	b.Write(0, 1) // up-transition fails
	if b.Cell(0) != 0 {
		t.Error("TF↑ must keep the cell at 0")
	}
}

func TestPlainIRFKeepsCell(t *testing.T) {
	a := NewArray(2, 2)
	a.MustInject(Fault{Victim: 0, FP: fp.MustParse("<0r0/0/1>")})
	a.Write(0, 0)
	if got := a.Read(0); got != 1 {
		t.Errorf("IRF0 read = %d, want 1", got)
	}
	if a.Cell(0) != 0 {
		t.Error("IRF0 must not change the cell")
	}
}

func TestPlainSFFlipsAfterOperation(t *testing.T) {
	a := NewArray(2, 2)
	a.MustInject(Fault{Victim: 0, FP: fp.MustParse("<1/0/->")})
	a.Write(0, 1) // initializes; the SF acts after the operation
	if a.Cell(0) != 0 {
		t.Error("SF1 must decay the stored 1")
	}
	if got := a.Read(0); got != 0 {
		t.Errorf("read after SF1 = %d, want 0", got)
	}
}

func TestPartialRDF1BitLineMediation(t *testing.T) {
	// <1v [w0BL] r1v/0/0>: fires only when the last operation on the
	// victim's bit line drove 0.
	mkArr := func() *Array {
		a := NewArray(4, 1) // single column: everything shares the BL
		a.MustInject(Fault{Victim: 2, FP: fp.MustParse("<1v [w0BL] r1v/0/0>"), Float: defect.FloatBitLine})
		return a
	}

	// The paper's Section 1 point: {m(w1,r1)} does NOT detect it — the
	// w1 preconditions the bit line high.
	a := mkArr()
	a.Write(2, 1)
	if got := a.Read(2); got != 1 {
		t.Errorf("w1,r1 read = %d; the partial fault must NOT fire (BL preconditioned high)", got)
	}

	// With the completing w0 to another cell on the BL, it fires.
	b := mkArr()
	b.Write(2, 1)
	b.Write(0, 0) // completing operation on the same bit line
	if got := b.Read(2); got != 0 {
		t.Errorf("completed read = %d, want 0 (fault fired)", got)
	}
	if b.Cell(2) != 0 {
		t.Error("fired RDF1 must destroy the victim")
	}

	// An intervening 1-driving operation on the bit line disarms it.
	c := mkArr()
	c.Write(2, 1)
	c.Write(0, 0)
	c.Write(1, 1) // drives the BL back high
	if got := c.Read(2); got != 1 {
		t.Errorf("disarmed read = %d, want 1", got)
	}

	// Operations in a different column do not arm the fault.
	d := NewArray(4, 2)
	d.MustInject(Fault{Victim: 2, FP: fp.MustParse("<1v [w0BL] r1v/0/0>"), Float: defect.FloatBitLine})
	d.Write(2, 1)
	d.Write(1, 0) // column 1; victim 2 is in column 0
	if got := d.Read(2); got != 1 {
		t.Errorf("cross-column read = %d, want 1 (different bit line)", got)
	}
}

func TestPartialReadArmsViaRestore(t *testing.T) {
	// A read restores its value onto the bit line, so r0 of a neighbour
	// also arms a [w0BL]-mediated fault.
	a := NewArray(4, 1)
	a.MustInject(Fault{Victim: 2, FP: fp.MustParse("<1v [w0BL] r1v/0/0>"), Float: defect.FloatBitLine})
	a.Write(0, 0)
	a.Write(2, 1)
	if a.Read(0) != 0 { // restores 0 onto the BL
		t.Fatal("setup read failed")
	}
	if got := a.Read(2); got != 0 {
		t.Errorf("read after neighbour r0 = %d, want 0 (armed by restore)", got)
	}
}

func TestPartialVictimSequenceMediation(t *testing.T) {
	// <[w1 w1 w0] r0/1/1> (Open 1): fires only when the victim's own
	// recent operations were exactly w1,w1,w0.
	mk := func() *Array {
		a := NewArray(2, 2)
		a.MustInject(Fault{Victim: 0, FP: fp.MustParse("<[w1 w1 w0] r0/1/1>"), Float: defect.FloatMemoryCell})
		return a
	}
	a := mk()
	a.Write(0, 0)
	if got := a.Read(0); got != 0 {
		t.Errorf("plain w0,r0 = %d; must not fire without the sequence", got)
	}
	b := mk()
	b.Write(0, 1)
	b.Write(0, 1)
	b.Write(0, 0)
	if got := b.Read(0); got != 1 {
		t.Errorf("after w1,w1,w0: read = %d, want 1 (fired)", got)
	}
	if b.Cell(0) != 1 {
		t.Error("fired RDF0 must flip the victim to 1")
	}
	// A single w1 is not enough.
	c := mk()
	c.Write(0, 1)
	c.Write(0, 0)
	if got := c.Read(0); got != 0 {
		t.Errorf("after w1,w0: read = %d, want 0 (not armed)", got)
	}
}

func TestOutputBufferMediation(t *testing.T) {
	// <0v [w1BL] r0v/0/1> via output buffer: armed by ANY operation that
	// drove 1 through the IO path, even in another column.
	a := NewArray(4, 2)
	a.MustInject(Fault{Victim: 0, FP: fp.MustParse("<0v [w1BL] r0v/0/1>"), Float: defect.FloatOutBuffer})
	a.Write(0, 0)
	a.Write(3, 1) // different column, but drives the shared IO path
	if got := a.Read(0); got != 1 {
		t.Errorf("read = %d, want 1 (stale output buffer)", got)
	}
	if a.Cell(0) != 0 {
		t.Error("IRF must keep the cell intact")
	}
}

func TestUncompletableNeverFires(t *testing.T) {
	a := NewArray(4, 1)
	a.MustInject(Fault{Victim: 1, FP: fp.MustParse("<0/1/->"), Float: defect.FloatWordLine, Uncompletable: true})
	a.Write(1, 0)
	for i := 0; i < 5; i++ {
		a.Write(0, i%2)
		if got := a.Read(1); got != 0 {
			t.Fatalf("uncompletable SF fired (read %d); adversarial semantics must never trigger it", got)
		}
	}
}

func TestInjectValidation(t *testing.T) {
	a := NewArray(2, 2)
	// FPs with more than two sensitizing operations are not injectable.
	bad := fp.FP{S: fp.NewSOS(fp.Init0, fp.W(1), fp.W(0), fp.R(0)), F: 1, R: fp.R1}
	if err := a.Inject(Fault{Victim: 0, FP: bad}); err == nil {
		t.Error("three-op FP injection must fail")
	}
	// Mixed completing targets are rejected.
	mixed := fp.FP{S: fp.NewSOS(fp.Init1, fp.CWBL(0), fp.CW(1), fp.R(1)), F: 0, R: fp.R0}
	if err := a.Inject(Fault{Victim: 0, FP: mixed}); err == nil {
		t.Error("mixed completing targets must fail")
	}
}

func TestArrayPanics(t *testing.T) {
	a := NewArray(2, 2)
	for name, fn := range map[string]func(){
		"addr":    func() { a.Read(99) },
		"data":    func() { a.Write(0, 7) },
		"badgeom": func() { NewArray(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
