// Package service exposes the partial-fault analysis pipeline as a
// long-running JSON HTTP API: Table 1 inventories, march coverage
// matrices, two-cell certificates, the static detection matrix and the
// net-merge prover, with request batching, singleflight de-duplication
// of concurrent identical requests, and a disk-persistent
// content-addressed result store shared across restarts.
//
// Every cacheable result is addressed by a store.Key built from the
// model fingerprint (engine kind + netlist + technology), the
// fault/defect catalog fingerprint, the request kind and the canonical
// request spec — so changing the netlist, the technology or a catalog
// silently invalidates everything it affects, and nothing else.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/analysis/store"
	"github.com/memtest/partialfaults/internal/behav"
	"github.com/memtest/partialfaults/internal/bitsim"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
	"github.com/memtest/partialfaults/internal/numeric"
	"github.com/memtest/partialfaults/internal/report"
	"github.com/memtest/partialfaults/internal/stress"
)

// Config parameterizes a Server.
type Config struct {
	// StoreDir, when non-empty, persists results (content-addressed
	// blobs) and point outcomes (append-only log) under this directory.
	// Empty means in-memory caching only.
	StoreDir string
	// Parallelism bounds concurrent simulations across ALL requests;
	// 0 means GOMAXPROCS.
	Parallelism int
	// Params tunes the analytical model; nil means behav.DefaultParams.
	Params *behav.Params
	// Tech selects the electrical technology; nil means dram.Default.
	Tech *dram.Technology
}

// Server is the analysis service. It is an http.Handler; all state is
// safe for concurrent use.
type Server struct {
	mux  *http.ServeMux
	pool *analysis.Pool
	memo *analysis.Memo

	params behav.Params
	tech   dram.Technology

	behavModel analysis.Fingerprint
	spiceModel analysis.Fingerprint
	catalogFP  string

	store  *store.Store // nil when StoreDir is empty
	outLog *store.OutcomeLog

	flights *flightGroup
	trace   *analysis.TraceCounters

	mu       sync.Mutex
	requests map[string]uint64
	// stressMatrices and stressCorners count stress matrices actually
	// computed (store hits and collapsed flights excluded) and the
	// corner pipelines they swept.
	stressMatrices uint64
	stressCorners  uint64

	bootMemo analysis.MemoStats
}

// New builds a Server, opening (or creating) the persistent store when
// configured.
func New(cfg Config) (*Server, error) {
	s := &Server{
		mux:      http.NewServeMux(),
		pool:     analysis.NewPool(cfg.Parallelism),
		memo:     analysis.NewMemo(),
		params:   behav.DefaultParams(),
		tech:     dram.Default(),
		flights:  newFlightGroup(),
		trace:    &analysis.TraceCounters{},
		requests: map[string]uint64{},
	}
	if cfg.Params != nil {
		s.params = *cfg.Params
	}
	if cfg.Tech != nil {
		s.tech = *cfg.Tech
		s.params.Tech = *cfg.Tech
	}
	s.behavModel = behav.Fingerprint(s.params)
	spiceFP, err := analysis.SpiceFingerprint(s.tech)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	s.spiceModel = spiceFP
	s.catalogFP = catalogFingerprint()

	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.store = st
		log, err := store.OpenOutcomeLog(filepath.Join(cfg.StoreDir, "outcomes.jsonl"), s.memo)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		s.outLog = log
	}
	s.bootMemo = s.memo.Snapshot()

	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("POST /v1/inventory", s.handleInventory)
	s.mux.HandleFunc("POST /v1/coverage", s.handleCoverage)
	s.mux.HandleFunc("POST /v1/twocell", s.handleTwoCell)
	s.mux.HandleFunc("POST /v1/matrix", s.handleMatrix)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/stress", s.handleStress)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	return s, nil
}

// ServeHTTP dispatches to the API routes.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close detaches the persistent outcome log. In-flight requests keep
// their memo; new outcomes just stop persisting.
func (s *Server) Close() error {
	if s.outLog != nil {
		return s.outLog.Close()
	}
	return nil
}

// catalogFingerprint digests every fault/defect catalog the service
// ranges over: the simulated opens, the short/bridge catalog, the march
// test library, and the single- and two-cell fault catalogs. Any
// catalog change invalidates every stored result that could depend on
// it.
func catalogFingerprint() string {
	var parts []string
	for _, o := range defect.SimulatedOpens() {
		parts = append(parts, fmt.Sprintf("open:%d:%s:%v", o.ID, o.Site, o.Floats))
	}
	for _, sb := range defect.ShortsAndBridges() {
		parts = append(parts, "sb:"+sb.Site)
	}
	for _, t := range march.All() {
		parts = append(parts, "test:"+t.Name+":"+t.String())
	}
	for _, e := range march.ClassicalFaultCatalog() {
		parts = append(parts, "single:"+e.Name)
	}
	for _, e := range march.PaperFaultCatalog() {
		parts = append(parts, "paper:"+e.Name)
	}
	for _, e := range march.TwoCellCatalog() {
		parts = append(parts, "two:"+e.Name)
	}
	return string(analysis.NewFingerprint("catalog", parts...))
}

// --- request plumbing ---

type apiError struct {
	status int
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return &apiError{status: http.StatusBadRequest, msg: fmt.Sprintf(format, args...)}
}

func (s *Server) countRequest(kind string) {
	s.mu.Lock()
	s.requests[kind]++
	s.mu.Unlock()
}

// cached serves one cacheable request: store lookup, then singleflight
// on the key digest, then compute + store write-through. The returned
// flags report whether the payload came from the persistent store and
// whether this caller joined another's in-flight computation.
func (s *Server) cached(key store.Key, compute func() (any, error)) (payload []byte, fromStore, collapsed bool, err error) {
	if s.store != nil {
		if buf, ok, err := s.store.Get(key); err != nil {
			return nil, false, false, err
		} else if ok {
			return buf, true, false, nil
		}
	}
	payload, collapsed, err = s.flights.Do(key.Digest(), func() ([]byte, error) {
		// Re-check under the flight: a concurrent leader may have
		// persisted the result between our miss and our takeoff.
		if s.store != nil {
			if buf, ok, err := s.store.Get(key); err != nil {
				return nil, err
			} else if ok {
				return buf, nil
			}
		}
		v, err := compute()
		if err != nil {
			return nil, err
		}
		buf, err := json.Marshal(v)
		if err != nil {
			return nil, err
		}
		if s.store != nil {
			if err := s.store.Put(key, buf); err != nil {
				return nil, err
			}
		}
		return buf, nil
	})
	return payload, false, collapsed, err
}

// envelopeJSON wraps every cacheable response: the result payload plus
// serving metadata (never part of the stored blob).
func writeResult(w http.ResponseWriter, payload []byte, fromStore, collapsed bool) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"cached":%v,"collapsed":%v,"result":`, fromStore, collapsed)
	w.Write(payload)
	io.WriteString(w, "}\n")
}

func writeError(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	var ae *apiError
	if errors.As(err, &ae) {
		status = ae.status
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		status = http.StatusGatewayTimeout
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

func decodeBody(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return badRequest("bad request body: %v", err)
	}
	return nil
}

// canonicalSpec renders a normalized request as the store-key spec.
// json.Marshal of a struct is deterministic (fields in declaration
// order), so equal requests produce equal specs.
func canonicalSpec(v any) (string, error) {
	buf, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return string(buf), nil
}

// --- health and metrics ---

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, `{"ok":true}`+"\n")
}

// MetricsResponse is the /v1/metrics payload.
type MetricsResponse struct {
	Requests map[string]uint64 `json:"requests"`
	// SingleflightCollapsed counts requests that joined another
	// caller's in-flight computation instead of starting their own.
	SingleflightCollapsed uint64 `json:"singleflight_collapsed"`
	// Memo is the outcome-cache counter movement since boot — a
	// Snapshot/Delta reading, not the raw cumulative counters (which
	// include entries replayed from the persistent log and would
	// double-count across phases).
	Memo struct {
		Hits    uint64  `json:"hits"`
		Misses  uint64  `json:"misses"`
		HitRate float64 `json:"hit_rate"`
		Entries int     `json:"entries"`
	} `json:"memo"`
	Store *struct {
		Hits   uint64 `json:"hits"`
		Misses uint64 `json:"misses"`
		Puts   uint64 `json:"puts"`
		Len    int    `json:"len"`
	} `json:"store,omitempty"`
	// Trace reports traced-sweep work since boot: how many planes ran
	// in traced mode, how many grid points were simulated vs inferred
	// without simulation, and the resulting reduction factor.
	Trace struct {
		Planes    int     `json:"planes"`
		Simulated int     `json:"simulated"`
		Inferred  int     `json:"inferred"`
		Reduction float64 `json:"reduction"`
	} `json:"trace"`
	// Stress counts stress matrices actually computed (store hits and
	// collapsed singleflights excluded) and the corner pipelines swept.
	Stress struct {
		Matrices uint64 `json:"matrices"`
		Corners  uint64 `json:"corners"`
	} `json:"stress"`
	Models struct {
		Behav string `json:"behav"`
		Spice string `json:"spice"`
	} `json:"models"`
	Catalog string `json:"catalog"`
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var resp MetricsResponse
	resp.Requests = map[string]uint64{}
	s.mu.Lock()
	for k, v := range s.requests {
		resp.Requests[k] = v
	}
	resp.Stress.Matrices = s.stressMatrices
	resp.Stress.Corners = s.stressCorners
	s.mu.Unlock()
	resp.SingleflightCollapsed = s.flights.Collapsed()
	d := s.memo.Snapshot().Delta(s.bootMemo)
	resp.Memo.Hits, resp.Memo.Misses, resp.Memo.HitRate = d.Hits, d.Misses, d.HitRate()
	resp.Memo.Entries = s.memo.Len()
	if s.store != nil {
		st := s.store.Stats()
		n, _ := s.store.Len()
		resp.Store = &struct {
			Hits   uint64 `json:"hits"`
			Misses uint64 `json:"misses"`
			Puts   uint64 `json:"puts"`
			Len    int    `json:"len"`
		}{Hits: st.Hits, Misses: st.Misses, Puts: st.Puts, Len: n}
	}
	ts, planes := s.trace.Snapshot()
	resp.Trace.Planes = planes
	resp.Trace.Simulated = ts.Simulated()
	resp.Trace.Inferred = ts.Inferred
	resp.Trace.Reduction = ts.Reduction()
	resp.Models.Behav = string(s.behavModel)
	resp.Models.Spice = string(s.spiceModel)
	resp.Catalog = s.catalogFP
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// --- inventory ---

// InventoryRequest asks for the Table 1 pipeline over a grid.
type InventoryRequest struct {
	// Engine is "behav" (default) or "spice".
	Engine string `json:"engine,omitempty"`
	// Opens restricts the analyzed opens by ID; empty means all
	// simulated opens.
	Opens []int `json:"opens,omitempty"`
	// RDefs/Us are explicit grid axes; when empty the Min/Max/Steps
	// triples apply (log-spaced resistances, linear voltages).
	RDefs     []float64 `json:"rdefs,omitempty"`
	Us        []float64 `json:"us,omitempty"`
	RDefMin   float64   `json:"rdef_min,omitempty"`
	RDefMax   float64   `json:"rdef_max,omitempty"`
	RDefSteps int       `json:"rdef_steps,omitempty"`
	UMin      float64   `json:"u_min,omitempty"`
	UMax      float64   `json:"u_max,omitempty"`
	USteps    int       `json:"u_steps,omitempty"`
	// Sweep is "dense" (default) or "traced" — a pure performance
	// knob: traced sweeps produce byte-identical planes (proven by the
	// differential suite), so it is stripped from the store key and
	// both modes share cached results.
	Sweep string `json:"sweep,omitempty"`
}

// normalize validates the request and derives explicit grid axes. It
// returns the sweep mode separately and zeroes the Sweep field along
// with the consumed Min/Max/Steps triples, so canonicalSpec — and
// therefore the store key — is identical for traced and dense requests
// asking for the same result.
func (q *InventoryRequest) normalize() (analysis.SweepMode, error) {
	mode, err := analysis.ParseSweepMode(q.Sweep)
	if err != nil {
		return "", badRequest("%v", err)
	}
	q.Sweep = ""
	if q.Engine == "" {
		q.Engine = "behav"
	}
	if q.Engine != "behav" && q.Engine != "spice" {
		return "", badRequest("unknown engine %q (want behav or spice)", q.Engine)
	}
	if len(q.RDefs) == 0 {
		if q.RDefMin == 0 {
			q.RDefMin = 1e3
		}
		if q.RDefMax == 0 {
			q.RDefMax = 1e7
		}
		if q.RDefSteps == 0 {
			q.RDefSteps = 13
		}
		q.RDefs = numeric.Logspace(q.RDefMin, q.RDefMax, q.RDefSteps)
	}
	if len(q.Us) == 0 {
		if q.UMax == 0 {
			q.UMax = 3.3
		}
		if q.USteps == 0 {
			q.USteps = 12
		}
		q.Us = numeric.Linspace(q.UMin, q.UMax, q.USteps)
	}
	q.RDefMin, q.RDefMax, q.RDefSteps = 0, 0, 0
	q.UMin, q.UMax, q.USteps = 0, 0, 0
	sort.Ints(q.Opens)
	return mode, nil
}

func (s *Server) model(engine string) analysis.Fingerprint {
	if engine == "spice" {
		return s.spiceModel
	}
	return s.behavModel
}

func (s *Server) factory(engine string) analysis.Factory {
	if engine == "spice" {
		return analysis.NewSpiceFactory(s.tech)
	}
	return behav.NewFactory(s.params)
}

func (s *Server) handleInventory(w http.ResponseWriter, r *http.Request) {
	s.countRequest("inventory")
	var q InventoryRequest
	if err := decodeBody(r.Body, &q); err != nil {
		writeError(w, err)
		return
	}
	mode, err := q.normalize()
	if err != nil {
		writeError(w, err)
		return
	}
	var opens []defect.Open
	if len(q.Opens) > 0 {
		for _, id := range q.Opens {
			o, ok := defect.ByID(id)
			if !ok {
				writeError(w, badRequest("unknown open %d", id))
				return
			}
			opens = append(opens, o)
		}
	}
	spec, err := canonicalSpec(&q)
	if err != nil {
		writeError(w, err)
		return
	}
	key := store.Key{Model: string(s.model(q.Engine)), Catalog: s.catalogFP, Kind: "inventory", Spec: spec}
	payload, fromStore, collapsed, err := s.cached(key, func() (any, error) {
		rows, err := analysis.BuildInventory(analysis.InventoryConfig{
			Factory: s.factory(q.Engine),
			Opens:   opens,
			RDefs:   q.RDefs, Us: q.Us,
			Model: s.model(q.Engine),
			Ctx:   r.Context(),
			Memo:  s.memo, Pool: s.pool,
			Sweep: mode, Trace: s.trace,
		})
		if err != nil {
			return nil, err
		}
		return report.ToInventoryJSON(rows), nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, payload, fromStore, collapsed)
}

// --- march coverage ---

// CoverageRequest asks for a coverage matrix.
type CoverageRequest struct {
	// Tests are march test names; empty means the whole library.
	Tests []string `json:"tests,omitempty"`
	// Catalog is "classical" (default) or "paper".
	Catalog string `json:"catalog,omitempty"`
	// Engine is "memsim" (default, scalar oracle) or "bitsim".
	Engine string `json:"engine,omitempty"`
	Rows   int    `json:"rows,omitempty"`
	Cols   int    `json:"cols,omitempty"`
}

func marchEngine(name string) (march.Engine, error) {
	switch name {
	case "", "memsim":
		return march.ScalarEngine{}, nil
	case "bitsim":
		return bitsim.New(), nil
	}
	return nil, badRequest("unknown march engine %q (want memsim or bitsim)", name)
}

func testsByName(names []string) ([]march.Test, error) {
	if len(names) == 0 {
		return march.All(), nil
	}
	byName := map[string]march.Test{}
	for _, t := range march.All() {
		byName[t.Name] = t
	}
	var out []march.Test
	for _, n := range names {
		t, ok := byName[n]
		if !ok {
			return nil, badRequest("unknown march test %q", n)
		}
		out = append(out, t)
	}
	return out, nil
}

func (s *Server) handleCoverage(w http.ResponseWriter, r *http.Request) {
	s.countRequest("coverage")
	var q CoverageRequest
	if err := decodeBody(r.Body, &q); err != nil {
		writeError(w, err)
		return
	}
	if q.Engine == "" {
		q.Engine = "memsim"
	}
	if q.Catalog == "" {
		q.Catalog = "classical"
	}
	if q.Rows == 0 {
		q.Rows = 4
	}
	if q.Cols == 0 {
		q.Cols = 2
	}
	eng, err := marchEngine(q.Engine)
	if err != nil {
		writeError(w, err)
		return
	}
	tests, err := testsByName(q.Tests)
	if err != nil {
		writeError(w, err)
		return
	}
	var catalog []march.CatalogEntry
	switch q.Catalog {
	case "classical":
		catalog = march.ClassicalFaultCatalog()
	case "paper":
		catalog = march.PaperFaultCatalog()
	default:
		writeError(w, badRequest("unknown catalog %q (want classical or paper)", q.Catalog))
		return
	}
	spec, err := canonicalSpec(&q)
	if err != nil {
		writeError(w, err)
		return
	}
	// March-walk results depend on the discrete fault model only, not
	// the electrical technology; key them under the engine name.
	key := store.Key{Model: "march:" + q.Engine, Catalog: s.catalogFP, Kind: "coverage", Spec: spec}
	payload, fromStore, collapsed, err := s.cached(key, func() (any, error) {
		var results []march.CoverageResult
		var werr error
		if err := s.pool.DoContext(r.Context(), func() {
			results, werr = march.CoverageMatrixWith(eng, tests, catalog, q.Rows, q.Cols)
		}); err != nil {
			return nil, err
		}
		if werr != nil {
			return nil, werr
		}
		return report.ToCoverageJSON(results), nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, payload, fromStore, collapsed)
}

// --- two-cell certificate ---

// TwoCellRequest asks for a two-cell coverage certificate.
type TwoCellRequest struct {
	Test   string `json:"test"`
	Engine string `json:"engine,omitempty"`
	Rows   int    `json:"rows,omitempty"`
	Cols   int    `json:"cols,omitempty"`
	// Offsets restricts the aggressor set (aggressor = victim + δ);
	// empty means all ordered pairs.
	Offsets []int `json:"offsets,omitempty"`
}

func (s *Server) handleTwoCell(w http.ResponseWriter, r *http.Request) {
	s.countRequest("twocell")
	var q TwoCellRequest
	if err := decodeBody(r.Body, &q); err != nil {
		writeError(w, err)
		return
	}
	if q.Test == "" {
		writeError(w, badRequest("missing march test name"))
		return
	}
	if q.Engine == "" {
		q.Engine = "memsim"
	}
	if q.Rows == 0 {
		q.Rows = 4
	}
	if q.Cols == 0 {
		q.Cols = 2
	}
	seen := map[int]bool{}
	for _, d := range q.Offsets {
		if d == 0 {
			writeError(w, badRequest("offset 0 is not a neighbour"))
			return
		}
		if seen[d] {
			writeError(w, badRequest("duplicate offset %d", d))
			return
		}
		seen[d] = true
	}
	eng, err := marchEngine(q.Engine)
	if err != nil {
		writeError(w, err)
		return
	}
	tests, err := testsByName([]string{q.Test})
	if err != nil {
		writeError(w, err)
		return
	}
	spec, err := canonicalSpec(&q)
	if err != nil {
		writeError(w, err)
		return
	}
	key := store.Key{Model: "march:" + q.Engine, Catalog: s.catalogFP, Kind: "twocell", Spec: spec}
	payload, fromStore, collapsed, err := s.cached(key, func() (any, error) {
		var cert march.TwoCellCertificate
		var werr error
		if err := s.pool.DoContext(r.Context(), func() {
			cert, werr = march.TwoCellCertificateOffsetsWith(eng, tests[0], march.TwoCellCatalog(), q.Rows, q.Cols, q.Offsets)
		}); err != nil {
			return nil, err
		}
		if werr != nil {
			return nil, werr
		}
		return report.ToTwoCellCertificateJSON(cert), nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, payload, fromStore, collapsed)
}

// --- static detection matrix ---

// MatrixRequest asks for the three-valued static detection matrix.
type MatrixRequest struct {
	Tests []string `json:"tests,omitempty"`
}

func (s *Server) handleMatrix(w http.ResponseWriter, r *http.Request) {
	s.countRequest("matrix")
	var q MatrixRequest
	if err := decodeBody(r.Body, &q); err != nil {
		writeError(w, err)
		return
	}
	tests, err := testsByName(q.Tests)
	if err != nil {
		writeError(w, err)
		return
	}
	spec, err := canonicalSpec(&q)
	if err != nil {
		writeError(w, err)
		return
	}
	// The prover is purely symbolic: no model, no geometry.
	key := store.Key{Model: "prover", Catalog: s.catalogFP, Kind: "matrix", Spec: spec}
	payload, fromStore, collapsed, err := s.cached(key, func() (any, error) {
		var m march.DetectionMatrix
		if err := s.pool.DoContext(r.Context(), func() {
			m = march.BuildDetectionMatrix(tests, march.PaperFaultCatalog(), march.TwoCellCatalog())
		}); err != nil {
			return nil, err
		}
		return report.ToDetectionMatrixJSON(m), nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, payload, fromStore, collapsed)
}

// --- merge / float prediction ---

// PredictRequest asks the static net prover for a verdict: either the
// floating-net prediction of an open, or the merge analysis of one or
// more short/bridge defects.
type PredictRequest struct {
	// Open is an open ID (1-9) for a float prediction.
	Open int `json:"open,omitempty"`
	// Defects are short/bridge sites for a merge prediction, each
	// optionally resistive.
	Defects []PredictDefect `json:"defects,omitempty"`
}

// PredictDefect is one short/bridge site, optionally resistive.
type PredictDefect struct {
	Site string  `json:"site"`
	Ohms float64 `json:"ohms,omitempty"`
}

// FloatPredictionJSON is the open-defect float prediction payload.
type FloatPredictionJSON struct {
	Open      int      `json:"open"`
	Element   string   `json:"element"`
	Primary   []string `json:"primary,omitempty"`
	Secondary []string `json:"secondary,omitempty"`
	Unknown   []string `json:"unknown,omitempty"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	s.countRequest("predict")
	var q PredictRequest
	if err := decodeBody(r.Body, &q); err != nil {
		writeError(w, err)
		return
	}
	if (q.Open == 0) == (len(q.Defects) == 0) {
		writeError(w, badRequest("want exactly one of open or defects"))
		return
	}
	spec, err := canonicalSpec(&q)
	if err != nil {
		writeError(w, err)
		return
	}
	// Predictions depend on the netlist graph and phase model — the
	// electrical model fingerprint covers both.
	key := store.Key{Model: string(s.spiceModel), Catalog: s.catalogFP, Kind: "predict", Spec: spec}
	payload, fromStore, collapsed, err := s.cached(key, func() (any, error) {
		col, err := dram.NewColumn(s.tech)
		if err != nil {
			return nil, err
		}
		az := netlint.New(col.Circuit(), dram.LintModel())
		if q.Open != 0 {
			open, ok := defect.ByID(q.Open)
			if !ok {
				return nil, badRequest("unknown open %d", q.Open)
			}
			elem := dram.SiteElementName(open.Site)
			pred := az.PredictFloats([]string{elem})
			return FloatPredictionJSON{
				Open: open.ID, Element: elem,
				Primary: pred.Primary, Secondary: pred.Secondary, Unknown: pred.Unknown,
			}, nil
		}
		catalog := map[string]defect.ShortOrBridge{}
		for _, sb := range defect.ShortsAndBridges() {
			catalog[sb.Site] = sb
		}
		var ms netlint.MergeSpec
		for _, d := range q.Defects {
			if _, ok := catalog[d.Site]; !ok {
				return nil, badRequest("unknown defect site %q", d.Site)
			}
			ms.Elems = append(ms.Elems, netlint.MergeElem{Name: dram.SiteElementName(d.Site), Ohms: d.Ohms})
		}
		pred, err := az.PredictMergeSet(ms)
		if err != nil {
			return nil, err
		}
		return report.ToMergePredictionJSON(pred), nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, payload, fromStore, collapsed)
}

// --- stress matrix ---

// StressRequest asks for the stress-condition scenario matrix: the
// defect catalog swept at every operating corner, with per-corner
// inventories and coverage, deltas against nominal, and the
// worst-corner coverage certificate.
type StressRequest struct {
	// Engine is "behav" (default) or "spice".
	Engine string `json:"engine,omitempty"`
	// MarchEngine is "memsim" (default) or "bitsim".
	MarchEngine string `json:"march_engine,omitempty"`
	// Corners is a semicolon-separated corner list (built-in names or
	// name:key=val,... derivations); empty means the built-in default
	// corners. A nominal corner is always ensured.
	Corners string `json:"corners,omitempty"`
	// Tests restricts the certified march tests; empty means the whole
	// library.
	Tests []string `json:"tests,omitempty"`
	// Opens restricts the analyzed opens by ID.
	Opens []int `json:"opens,omitempty"`
	// Grid axes, exactly as in InventoryRequest.
	RDefs     []float64 `json:"rdefs,omitempty"`
	Us        []float64 `json:"us,omitempty"`
	RDefMin   float64   `json:"rdef_min,omitempty"`
	RDefMax   float64   `json:"rdef_max,omitempty"`
	RDefSteps int       `json:"rdef_steps,omitempty"`
	UMin      float64   `json:"u_min,omitempty"`
	UMax      float64   `json:"u_max,omitempty"`
	USteps    int       `json:"u_steps,omitempty"`
	// Rows and Cols set the coverage-simulation geometry (default 4×2).
	Rows int `json:"rows,omitempty"`
	Cols int `json:"cols,omitempty"`
	// Sweep is the performance knob of InventoryRequest — stripped from
	// the store key, since both modes produce byte-identical planes.
	Sweep string `json:"sweep,omitempty"`
}

// normalize validates the request, derives grid axes, and rewrites
// Corners into its canonical form (parsed, nominal ensured, re-rendered
// via Spec.String) so equivalent corner lists share one store key.
func (q *StressRequest) normalize() ([]stress.Spec, analysis.SweepMode, error) {
	mode, err := analysis.ParseSweepMode(q.Sweep)
	if err != nil {
		return nil, "", badRequest("%v", err)
	}
	q.Sweep = ""
	if q.Engine == "" {
		q.Engine = "behav"
	}
	if q.Engine != "behav" && q.Engine != "spice" {
		return nil, "", badRequest("unknown engine %q (want behav or spice)", q.Engine)
	}
	if q.MarchEngine == "" {
		q.MarchEngine = "memsim"
	}
	corners := stress.DefaultCorners()
	if q.Corners != "" {
		corners, err = stress.ParseSpecs(q.Corners)
		if err != nil {
			return nil, "", badRequest("%v", err)
		}
	}
	corners = stress.EnsureNominal(corners)
	rendered := make([]string, len(corners))
	for i, c := range corners {
		rendered[i] = c.String()
	}
	q.Corners = strings.Join(rendered, ";")
	if len(q.RDefs) == 0 {
		if q.RDefMin == 0 {
			q.RDefMin = 1e3
		}
		if q.RDefMax == 0 {
			q.RDefMax = 1e7
		}
		if q.RDefSteps == 0 {
			q.RDefSteps = 13
		}
		q.RDefs = numeric.Logspace(q.RDefMin, q.RDefMax, q.RDefSteps)
	}
	if len(q.Us) == 0 {
		if q.UMax == 0 {
			q.UMax = 3.3
		}
		if q.USteps == 0 {
			q.USteps = 12
		}
		q.Us = numeric.Linspace(q.UMin, q.UMax, q.USteps)
	}
	q.RDefMin, q.RDefMax, q.RDefSteps = 0, 0, 0
	q.UMin, q.UMax, q.USteps = 0, 0, 0
	if q.Rows == 0 {
		q.Rows = 4
	}
	if q.Cols == 0 {
		q.Cols = 2
	}
	sort.Ints(q.Opens)
	return corners, mode, nil
}

func (s *Server) handleStress(w http.ResponseWriter, r *http.Request) {
	s.countRequest("stress")
	var q StressRequest
	if err := decodeBody(r.Body, &q); err != nil {
		writeError(w, err)
		return
	}
	corners, mode, err := q.normalize()
	if err != nil {
		writeError(w, err)
		return
	}
	var opens []defect.Open
	if len(q.Opens) > 0 {
		for _, id := range q.Opens {
			o, ok := defect.ByID(id)
			if !ok {
				writeError(w, badRequest("unknown open %d", id))
				return
			}
			opens = append(opens, o)
		}
	}
	marchEng, err := marchEngine(q.MarchEngine)
	if err != nil {
		writeError(w, err)
		return
	}
	tests, err := testsByName(q.Tests)
	if err != nil {
		writeError(w, err)
		return
	}
	// Reject invalid corners before keying: a corner that cannot derive
	// a lint-clean technology is a client error, not a cacheable result.
	for _, c := range corners {
		if _, derr := c.Derive(s.tech); derr != nil {
			writeError(w, badRequest("%v", derr))
			return
		}
	}
	spec, err := canonicalSpec(&q)
	if err != nil {
		writeError(w, err)
		return
	}
	// The stress matrix spans derived models, but every derivation is a
	// pure function of the base model and the corner list (in the spec) —
	// the base fingerprint therefore still addresses the result
	// correctly, and a base technology change invalidates every corner.
	key := store.Key{Model: string(s.model(q.Engine)), Catalog: s.catalogFP, Kind: "stress", Spec: spec}
	payload, fromStore, collapsed, err := s.cached(key, func() (any, error) {
		res, err := stress.Analyze(stress.Config{
			Corners: corners,
			Engine:  q.Engine,
			Params:  s.params, Tech: s.tech,
			MarchEngine: marchEng,
			Opens:       opens,
			RDefs:       q.RDefs, Us: q.Us,
			Tests: tests,
			Rows:  q.Rows, Cols: q.Cols,
			Pool: s.pool, Memo: s.memo,
			Ctx:   r.Context(),
			Sweep: mode, Trace: s.trace,
		})
		if err != nil {
			return nil, err
		}
		s.mu.Lock()
		s.stressMatrices++
		s.stressCorners += uint64(len(res.Corners))
		s.mu.Unlock()
		return report.ToStressJSON(res), nil
	})
	if err != nil {
		writeError(w, err)
		return
	}
	writeResult(w, payload, fromStore, collapsed)
}

// --- batch ---

// BatchItem is one sub-request of a batch: an endpoint kind plus its
// body.
type BatchItem struct {
	Kind string          `json:"kind"`
	Body json.RawMessage `json:"body"`
}

// BatchItemResult is one sub-response: the endpoint's full response
// body (envelope included) or its error.
type BatchItemResult struct {
	Kind   string          `json:"kind"`
	Status int             `json:"status"`
	Body   json.RawMessage `json:"body,omitempty"`
	Error  string          `json:"error,omitempty"`
}

// handleBatch runs sub-requests concurrently through the shared pool
// and singleflight layer — identical items inside one batch collapse
// exactly like identical concurrent requests do.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.countRequest("batch")
	var q struct {
		Requests []BatchItem `json:"requests"`
	}
	if err := decodeBody(r.Body, &q); err != nil {
		writeError(w, err)
		return
	}
	if len(q.Requests) == 0 {
		writeError(w, badRequest("empty batch"))
		return
	}
	handlers := map[string]http.HandlerFunc{
		"inventory": s.handleInventory,
		"coverage":  s.handleCoverage,
		"twocell":   s.handleTwoCell,
		"matrix":    s.handleMatrix,
		"predict":   s.handlePredict,
		"stress":    s.handleStress,
	}
	results := make([]BatchItemResult, len(q.Requests))
	var wg sync.WaitGroup
	for i, item := range q.Requests {
		h, ok := handlers[item.Kind]
		if !ok {
			results[i] = BatchItemResult{Kind: item.Kind, Status: http.StatusBadRequest,
				Error: fmt.Sprintf("unknown batch kind %q", item.Kind)}
			continue
		}
		wg.Add(1)
		go func(i int, item BatchItem, h http.HandlerFunc) {
			defer wg.Done()
			rec := newRecorder()
			sub, err := http.NewRequestWithContext(r.Context(), http.MethodPost, "/v1/"+item.Kind, bytesReader(item.Body))
			if err != nil {
				results[i] = BatchItemResult{Kind: item.Kind, Status: http.StatusInternalServerError, Error: err.Error()}
				return
			}
			h(rec, sub)
			res := BatchItemResult{Kind: item.Kind, Status: rec.status}
			if rec.status == http.StatusOK {
				res.Body = json.RawMessage(rec.buf)
			} else {
				var e struct {
					Error string `json:"error"`
				}
				if json.Unmarshal(rec.buf, &e) == nil && e.Error != "" {
					res.Error = e.Error
				} else {
					res.Error = string(rec.buf)
				}
			}
			results[i] = res
		}(i, item, h)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"responses": results})
}
