package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/dram"
)

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

type envelope struct {
	Cached    bool            `json:"cached"`
	Collapsed bool            `json:"collapsed"`
	Result    json.RawMessage `json:"result"`
}

func post(t *testing.T, s *Server, path, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, path, bytes.NewReader([]byte(body)))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func postEnvelope(t *testing.T, s *Server, path, body string) envelope {
	t.Helper()
	code, buf := post(t, s, path, body)
	if code != http.StatusOK {
		t.Fatalf("%s: status %d: %s", path, code, buf)
	}
	var env envelope
	if err := json.Unmarshal(buf, &env); err != nil {
		t.Fatalf("%s: bad envelope: %v\n%s", path, err, buf)
	}
	return env
}

func TestHealthz(t *testing.T) {
	s := newTestServer(t, Config{})
	req := httptest.NewRequest(http.MethodGet, "/v1/healthz", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || !bytes.Contains(rec.Body.Bytes(), []byte(`"ok":true`)) {
		t.Fatalf("healthz: %d %s", rec.Code, rec.Body.String())
	}
}

const smallInventory = `{"opens":[1,2],"rdefs":[1e4,1e6],"us":[0,1.5,3.3]}`

// TestStoreEquivalence is the tentpole acceptance test: a result served
// from the persistent store must be byte-identical to the freshly
// computed one — across server restarts on the same directory.
func TestStoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{StoreDir: dir, Parallelism: 2})
	fresh := postEnvelope(t, s1, "/v1/inventory", smallInventory)
	if fresh.Cached {
		t.Fatal("first request claims to be cached")
	}
	again := postEnvelope(t, s1, "/v1/inventory", smallInventory)
	if !again.Cached {
		t.Fatal("second request missed the store")
	}
	if !bytes.Equal(fresh.Result, again.Result) {
		t.Fatal("stored result differs from fresh result")
	}
	s1.Close()

	// A fresh process over the same store directory serves the same
	// bytes without recomputing.
	s2 := newTestServer(t, Config{StoreDir: dir, Parallelism: 2})
	reborn := postEnvelope(t, s2, "/v1/inventory", smallInventory)
	if !reborn.Cached {
		t.Fatal("restarted server missed the store")
	}
	if !bytes.Equal(fresh.Result, reborn.Result) {
		t.Fatal("result changed across restart")
	}

	// And a store-less server computing from scratch agrees bit for bit.
	s3 := newTestServer(t, Config{Parallelism: 2})
	scratch := postEnvelope(t, s3, "/v1/inventory", smallInventory)
	if scratch.Cached {
		t.Fatal("store-less server claims a cache hit")
	}
	if !bytes.Equal(fresh.Result, scratch.Result) {
		t.Fatal("stored result differs from an independent fresh computation")
	}
}

// TestTracedSweepSharesStoreKey pins the traced/dense cache-identity
// contract: a traced request computes the byte-identical payload, so
// it shares the dense request's store entry (and vice versa), and the
// traced computation reports its work in /v1/metrics.
func TestTracedSweepSharesStoreKey(t *testing.T) {
	grid := `"rdefs":[1e3,3e3,1e4,3e4,1e5,3e5,1e6,3e6,1e7],"us":[0,0.3,0.6,0.9,1.2,1.5,1.8,2.1,2.4,2.7,3.0,3.3]`
	dense := `{"opens":[1],` + grid + `}`
	traced := `{"opens":[1],"sweep":"traced",` + grid + `}`

	dir := t.TempDir()
	s1 := newTestServer(t, Config{StoreDir: dir, Parallelism: 2})
	freshTraced := postEnvelope(t, s1, "/v1/inventory", traced)
	if freshTraced.Cached {
		t.Fatal("first (traced) request claims to be cached")
	}
	hitDense := postEnvelope(t, s1, "/v1/inventory", dense)
	if !hitDense.Cached {
		t.Fatal("dense request missed the traced request's store entry")
	}
	if !bytes.Equal(freshTraced.Result, hitDense.Result) {
		t.Fatal("dense-from-store differs from traced-fresh")
	}

	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	s1.ServeHTTP(rec, req)
	var m MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Trace.Planes == 0 || m.Trace.Inferred == 0 {
		t.Fatalf("traced computation left no trace metrics: %+v", m.Trace)
	}
	if m.Trace.Reduction <= 1 {
		t.Fatalf("traced reduction = %v, want > 1", m.Trace.Reduction)
	}

	// The reverse direction on an independent server: dense first,
	// traced joins its entry and the payloads agree bit for bit.
	s2 := newTestServer(t, Config{StoreDir: t.TempDir(), Parallelism: 2})
	freshDense := postEnvelope(t, s2, "/v1/inventory", dense)
	hitTraced := postEnvelope(t, s2, "/v1/inventory", traced)
	if !hitTraced.Cached {
		t.Fatal("traced request missed the dense request's store entry")
	}
	if !bytes.Equal(freshDense.Result, freshTraced.Result) {
		t.Fatal("dense and traced fresh computations disagree")
	}

	if code, buf := post(t, s2, "/v1/inventory", `{"sweep":"nope"}`); code != http.StatusBadRequest {
		t.Fatalf("bad sweep mode: status %d: %s", code, buf)
	}
}

// TestStoreInvalidationOnTechnology pins the cache-identity bugfix at
// the service layer: the same request against a different technology
// must not hit entries written by the default one.
func TestStoreInvalidationOnTechnology(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{StoreDir: dir, Parallelism: 2})
	if env := postEnvelope(t, s1, "/v1/inventory", smallInventory); env.Cached {
		t.Fatal("first request cached")
	}
	s1.Close()

	tech := dram.Default()
	tech.VDD *= 1.1
	s2 := newTestServer(t, Config{StoreDir: dir, Parallelism: 2, Tech: &tech})
	if env := postEnvelope(t, s2, "/v1/inventory", smallInventory); env.Cached {
		t.Fatal("changed technology still hit the default-technology store entry")
	}
}

// TestSingleflightCollapse fires N identical concurrent requests at a
// store-less server and requires that all but one joined the leader's
// flight, with identical payloads.
func TestSingleflightCollapse(t *testing.T) {
	s := newTestServer(t, Config{Parallelism: 2})
	const n = 8
	envs := make([]envelope, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			envs[i] = postEnvelope(t, s, "/v1/inventory", smallInventory)
		}(i)
	}
	wg.Wait()
	collapsed := 0
	for i := 1; i < n; i++ {
		if !bytes.Equal(envs[0].Result, envs[i].Result) {
			t.Fatalf("request %d returned different bytes", i)
		}
		if envs[i].Collapsed {
			collapsed++
		}
	}
	if envs[0].Collapsed {
		collapsed++
	}
	if collapsed == 0 {
		t.Fatal("no request collapsed into the leader's flight")
	}
	if got := s.flights.Collapsed(); got == 0 {
		t.Fatal("flight group counted no collapses")
	}
}

func TestCoverageEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	env := postEnvelope(t, s, "/v1/coverage",
		`{"tests":["MATS+"],"catalog":"classical","rows":3,"cols":3}`)
	var rows []struct {
		Test     string `json:"test"`
		Fault    string `json:"fault"`
		Detected bool   `json:"detected"`
	}
	if err := json.Unmarshal(env.Result, &rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 || rows[0].Test != "MATS+" {
		t.Fatalf("coverage rows: %s", env.Result)
	}
}

func TestTwoCellEndpointWithOffsets(t *testing.T) {
	s := newTestServer(t, Config{})
	env := postEnvelope(t, s, "/v1/twocell",
		`{"test":"MATS+","rows":3,"cols":3,"offsets":[1,-1]}`)
	var cert struct {
		Test    string `json:"test"`
		Offsets []int  `json:"offsets"`
		Entries []struct {
			Entry  string `json:"entry"`
			Engine string `json:"engine"`
		} `json:"entries"`
	}
	if err := json.Unmarshal(env.Result, &cert); err != nil {
		t.Fatal(err)
	}
	if cert.Test != "MATS+" || len(cert.Offsets) != 2 || len(cert.Entries) == 0 {
		t.Fatalf("certificate: %s", env.Result)
	}
}

func TestMatrixEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	env := postEnvelope(t, s, "/v1/matrix", `{"tests":["MATS+","March C-"]}`)
	var m struct {
		Tests    []string `json:"tests"`
		Detects  int      `json:"detects"`
		Misses   int      `json:"misses"`
		Unknowns int      `json:"unknowns"`
		Rows     []any    `json:"rows"`
	}
	if err := json.Unmarshal(env.Result, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Tests) != 2 || m.Detects+m.Misses+m.Unknowns != len(m.Rows) {
		t.Fatalf("matrix: tests %v, %d+%d+%d vs %d rows",
			m.Tests, m.Detects, m.Misses, m.Unknowns, len(m.Rows))
	}
}

func TestPredictEndpoints(t *testing.T) {
	s := newTestServer(t, Config{})
	env := postEnvelope(t, s, "/v1/predict", `{"open":3}`)
	var fl FloatPredictionJSON
	if err := json.Unmarshal(env.Result, &fl); err != nil {
		t.Fatal(err)
	}
	if fl.Open != 3 || fl.Element == "" {
		t.Fatalf("float prediction: %s", env.Result)
	}

	env = postEnvelope(t, s, "/v1/predict", `{"defects":[{"site":"bridge.bl.bl","ohms":2e6}]}`)
	var mp struct {
		Elems []string `json:"elems"`
	}
	if err := json.Unmarshal(env.Result, &mp); err != nil {
		t.Fatal(err)
	}
	if len(mp.Elems) != 1 {
		t.Fatalf("merge prediction: %s", env.Result)
	}
}

func TestPredictRejectsAmbiguousRequest(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, body := range []string{`{}`, `{"open":1,"defects":[{"site":"bridge.bl.bl"}]}`} {
		if code, _ := post(t, s, "/v1/predict", body); code != http.StatusBadRequest {
			t.Fatalf("body %s: status %d, want 400", body, code)
		}
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct{ path, body string }{
		{"/v1/inventory", `{"engine":"verilog"}`},
		{"/v1/inventory", `{"opens":[99]}`},
		{"/v1/inventory", `{"bogus_field":1}`},
		{"/v1/coverage", `{"catalog":"imaginary"}`},
		{"/v1/coverage", `{"engine":"quantum"}`},
		{"/v1/coverage", `{"tests":["March ZZ"]}`},
		{"/v1/twocell", `{}`},
		{"/v1/twocell", `{"test":"MATS+","offsets":[0]}`},
		{"/v1/predict", `{"defects":[{"site":"nowhere"}]}`},
		{"/v1/batch", `{"requests":[]}`},
	}
	for _, c := range cases {
		code, buf := post(t, s, c.path, c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s %s: status %d (%s), want 400", c.path, c.body, code, buf)
		}
	}
}

// TestBatch runs a mixed batch with an intra-batch duplicate and an
// invalid item: the duplicates must agree byte-for-byte, and the bad
// item must fail without poisoning the rest.
func TestBatch(t *testing.T) {
	s := newTestServer(t, Config{Parallelism: 2})
	body := fmt.Sprintf(`{"requests":[
		{"kind":"matrix","body":{"tests":["MATS+"]}},
		{"kind":"inventory","body":%s},
		{"kind":"inventory","body":%s},
		{"kind":"espresso","body":{}},
		{"kind":"predict","body":{"open":1}}
	]}`, smallInventory, smallInventory)
	code, buf := post(t, s, "/v1/batch", body)
	if code != http.StatusOK {
		t.Fatalf("batch status %d: %s", code, buf)
	}
	var got struct {
		Responses []BatchItemResult `json:"responses"`
	}
	if err := json.Unmarshal(buf, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Responses) != 5 {
		t.Fatalf("%d responses", len(got.Responses))
	}
	for i, want := range []int{200, 200, 200, 400, 200} {
		if got.Responses[i].Status != want {
			t.Errorf("item %d: status %d (%s), want %d",
				i, got.Responses[i].Status, got.Responses[i].Error, want)
		}
	}
	var a, b envelope
	if err := json.Unmarshal(got.Responses[1].Body, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(got.Responses[2].Body, &b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Result, b.Result) {
		t.Fatal("duplicate batch items returned different bytes")
	}
}

func TestMetrics(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{StoreDir: dir, Parallelism: 2})
	postEnvelope(t, s, "/v1/inventory", smallInventory)
	postEnvelope(t, s, "/v1/inventory", smallInventory)
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("metrics status %d", rec.Code)
	}
	var m MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["inventory"] != 2 {
		t.Fatalf("request counter = %d", m.Requests["inventory"])
	}
	if m.Store == nil || m.Store.Puts != 1 || m.Store.Hits != 1 {
		t.Fatalf("store stats = %+v", m.Store)
	}
	if m.Memo.Misses == 0 {
		t.Fatal("memo delta recorded no misses for the fresh sweep")
	}
	if m.Models.Behav == "" || m.Models.Spice == "" || m.Catalog == "" {
		t.Fatalf("fingerprints missing: %+v", m)
	}
}

// TestGridDefaultsAreCanonical checks that spelling the same grid via
// min/max/steps or via explicit axes produces the same store key, so
// equivalent requests share cache entries.
func TestGridDefaultsAreCanonical(t *testing.T) {
	a := InventoryRequest{RDefMin: 1e3, RDefMax: 1e7, RDefSteps: 3, UMin: 0, UMax: 3.3, USteps: 3}
	if _, err := a.normalize(); err != nil {
		t.Fatal(err)
	}
	// A traced request spelling the same grid must also share the key:
	// the sweep mode is a performance knob, not part of the result
	// identity (traced and dense planes are byte-identical).
	b := InventoryRequest{RDefs: a.RDefs, Us: a.Us, Sweep: "traced"}
	if mode, err := b.normalize(); err != nil || mode != analysis.SweepTraced {
		t.Fatalf("normalize: mode=%v err=%v", mode, err)
	}
	sa, err := canonicalSpec(&a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := canonicalSpec(&b)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("specs differ:\n%s\n%s", sa, sb)
	}
}

// smallStress keeps the stress matrix fast: two corners (nominal is
// ensured), two opens, a 2×3 grid and one march test on a 2×2 array.
const smallStress = `{"corners":"low-vdd","tests":["March PF"],"opens":[1,5],"rdefs":[1e4,1e6],"us":[0,1.5,3.3],"rows":2,"cols":2}`

// TestStressStoreEquivalence extends the store suite to /v1/stress: the
// stored payload, the restart payload, and an independent store-less
// computation must all be byte-identical to the fresh one.
func TestStressStoreEquivalence(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, Config{StoreDir: dir, Parallelism: 2})
	fresh := postEnvelope(t, s1, "/v1/stress", smallStress)
	if fresh.Cached {
		t.Fatal("first stress request claims to be cached")
	}
	again := postEnvelope(t, s1, "/v1/stress", smallStress)
	if !again.Cached {
		t.Fatal("second stress request missed the store")
	}
	if !bytes.Equal(fresh.Result, again.Result) {
		t.Fatal("stored stress result differs from fresh result")
	}
	s1.Close()

	s2 := newTestServer(t, Config{StoreDir: dir, Parallelism: 2})
	reborn := postEnvelope(t, s2, "/v1/stress", smallStress)
	if !reborn.Cached {
		t.Fatal("restarted server missed the stress store entry")
	}
	if !bytes.Equal(fresh.Result, reborn.Result) {
		t.Fatal("stress result changed across restart")
	}

	s3 := newTestServer(t, Config{Parallelism: 2})
	scratch := postEnvelope(t, s3, "/v1/stress", smallStress)
	if scratch.Cached {
		t.Fatal("store-less server claims a stress cache hit")
	}
	if !bytes.Equal(fresh.Result, scratch.Result) {
		t.Fatal("stored stress result differs from an independent fresh computation")
	}
}

// TestStressNominalMatchesInventory pins the identity the whole stress
// axis hangs on, through the service path: the nominal corner's
// inventory inside a /v1/stress response is byte-identical to the
// /v1/inventory result for the same grid.
func TestStressNominalMatchesInventory(t *testing.T) {
	s := newTestServer(t, Config{Parallelism: 2})
	grid := `"opens":[1,5],"rdefs":[1e4,1e6],"us":[0,1.5,3.3]`
	stressEnv := postEnvelope(t, s, "/v1/stress", `{"corners":"low-vdd","tests":["March PF"],`+grid+`,"rows":2,"cols":2}`)
	invEnv := postEnvelope(t, s, "/v1/inventory", `{`+grid+`}`)
	var res struct {
		NominalIndex int `json:"nominal_index"`
		Corners      []struct {
			Name      string          `json:"name"`
			Model     string          `json:"model"`
			Inventory json.RawMessage `json:"inventory"`
		} `json:"corners"`
	}
	if err := json.Unmarshal(stressEnv.Result, &res); err != nil {
		t.Fatal(err)
	}
	nom := res.Corners[res.NominalIndex]
	if nom.Name != "nominal" {
		t.Fatalf("nominal corner is %q", nom.Name)
	}
	if !bytes.Equal(bytes.TrimSpace(nom.Inventory), bytes.TrimSpace(invEnv.Result)) {
		t.Fatalf("nominal stress inventory differs from /v1/inventory:\n%s\n%s", nom.Inventory, invEnv.Result)
	}
}

// TestStressCanonicalCorners checks that equivalent corner spellings
// share one store key: the built-in name and its explicit key=val
// derivation normalize to the same canonical corner list.
func TestStressCanonicalCorners(t *testing.T) {
	a := StressRequest{Corners: "low-vdd"}
	if _, _, err := a.normalize(); err != nil {
		t.Fatal(err)
	}
	b := StressRequest{Corners: "nominal;low-vdd:vdd=0.9,vpp=0.9,temp=27", Sweep: "traced"}
	if _, mode, err := b.normalize(); err != nil || mode != analysis.SweepTraced {
		t.Fatalf("normalize: mode=%v err=%v", mode, err)
	}
	sa, err := canonicalSpec(&a)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := canonicalSpec(&b)
	if err != nil {
		t.Fatal(err)
	}
	if sa != sb {
		t.Fatalf("stress specs differ:\n%s\n%s", sa, sb)
	}
}

// TestStressBadRequests drives the invalid-corner error paths.
func TestStressBadRequests(t *testing.T) {
	s := newTestServer(t, Config{})
	cases := []struct{ body string }{
		{`{"corners":"volcanic"}`},                     // unknown built-in
		{`{"corners":"hot:temp=400"}`},                 // out of lint range
		{`{"corners":"hot:vdd=-1"}`},                   // non-physical scale
		{`{"corners":"hot:temp=nan"}`},                 // non-finite parameter
		{`{"corners":"a:vdd=1.1;a:vdd=0.9"}`},          // duplicate names
		{`{"corners":"hot:speed=9"}`},                  // unknown key
		{`{"engine":"verilog"}`},                       // unknown engine
		{`{"march_engine":"quantum"}`},                 // unknown march engine
		{`{"tests":["March ZZ"]}`},                     // unknown test
		{`{"opens":[99]}`},                             // unknown open
		{`{"corners":"lights-out:vdd=0.05"}`},          // derives an invalid technology
	}
	for _, c := range cases {
		code, buf := post(t, s, "/v1/stress", c.body)
		if code != http.StatusBadRequest {
			t.Errorf("/v1/stress %s: status %d (%s), want 400", c.body, code, buf)
		}
	}
}

// TestStressMetrics checks the stress counters: computed matrices and
// corners are counted once; the store hit adds nothing.
func TestStressMetrics(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, Config{StoreDir: dir, Parallelism: 2})
	postEnvelope(t, s, "/v1/stress", smallStress)
	postEnvelope(t, s, "/v1/stress", smallStress)
	req := httptest.NewRequest(http.MethodGet, "/v1/metrics", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	var m MetricsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatal(err)
	}
	if m.Requests["stress"] != 2 {
		t.Fatalf("stress request counter = %d", m.Requests["stress"])
	}
	if m.Stress.Matrices != 1 || m.Stress.Corners != 2 {
		t.Fatalf("stress compute counters = %+v, want 1 matrix over 2 corners", m.Stress)
	}
}
