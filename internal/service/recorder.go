package service

import (
	"bytes"
	"io"
	"net/http"
)

// recorder is a minimal in-process ResponseWriter used by the batch
// handler to re-dispatch sub-requests through the ordinary endpoint
// handlers without a network round trip.
type recorder struct {
	status int
	header http.Header
	buf    []byte
}

func newRecorder() *recorder {
	return &recorder{status: http.StatusOK, header: http.Header{}}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(status int) { r.status = status }

func (r *recorder) Write(p []byte) (int, error) {
	r.buf = append(r.buf, p...)
	return len(p), nil
}

func bytesReader(p []byte) io.Reader { return bytes.NewReader(p) }
