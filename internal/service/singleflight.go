package service

import "sync"

// flightGroup collapses concurrent duplicate work: while one caller
// computes the value for a key, later callers with the same key block
// and share the first caller's result instead of recomputing. This is
// the de-duplication layer in front of the expensive sweep pipeline —
// N identical concurrent requests cost one simulation. (Hand-rolled:
// the repo carries no external dependencies.)
type flightGroup struct {
	mu        sync.Mutex
	calls     map[string]*flightCall
	collapsed uint64
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: map[string]*flightCall{}}
}

// Do runs fn once per key at a time. The boolean reports whether this
// caller shared another caller's in-flight result (true) or computed it
// (false). Results are not cached beyond the flight: once the leader
// returns, the key is free again — persistent reuse is the store's job.
func (g *flightGroup) Do(key string, fn func() ([]byte, error)) ([]byte, bool, error) {
	g.mu.Lock()
	if c, inFlight := g.calls[key]; inFlight {
		g.collapsed++
		g.mu.Unlock()
		<-c.done
		return c.val, true, c.err
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, false, c.err
}

// Collapsed reports how many calls joined another caller's flight.
func (g *flightGroup) Collapsed() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.collapsed
}
