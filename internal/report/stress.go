package report

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"github.com/memtest/partialfaults/internal/stress"
)

// StressCornerJSON is one corner's slice of the stress matrix.
type StressCornerJSON struct {
	Name string `json:"name"`
	// Spec is the canonical parseable rendering of the corner
	// (stress.ParseSpec round-trips it).
	Spec  string `json:"spec"`
	Model string `json:"model"`
	// Inventory is the corner's Table-1-style inventory.
	Inventory []InventoryRowJSON `json:"inventory"`
	// Coverage is the corner's march coverage matrix over the injectable
	// catalog entries.
	Coverage []CoverageRowJSON `json:"coverage"`
	// Uninjectable maps catalog entries the functional engine cannot
	// inject to the engine's reason (maps marshal with sorted keys, so
	// the rendering is deterministic).
	Uninjectable map[string]string `json:"uninjectable,omitempty"`
}

// StressMatrixJSON is the full stress matrix in JSON form: per-corner
// inventories and coverage, deltas against nominal, and the
// worst-corner certificate.
type StressMatrixJSON struct {
	Engine       string              `json:"engine"`
	MarchEngine  string              `json:"march_engine"`
	Rows         int                 `json:"rows"`
	Cols         int                 `json:"cols"`
	NominalIndex int                 `json:"nominal_index"`
	Corners      []StressCornerJSON  `json:"corners"`
	Deltas       []stress.CornerDelta `json:"deltas"`
	Certificate  stress.Certificate  `json:"certificate"`
	Claimed      int                 `json:"claimed"`
}

// ToStressJSON converts a stress matrix result to its JSON view.
func ToStressJSON(res *stress.Result) StressMatrixJSON {
	out := StressMatrixJSON{
		Engine: res.Engine, MarchEngine: res.MarchEngineName,
		Rows: res.Rows, Cols: res.Cols,
		NominalIndex: res.NominalIndex,
		Deltas:       res.Deltas,
		Certificate:  res.Certificate,
		Claimed:      res.Certificate.Claimed(),
	}
	for _, run := range res.Corners {
		out.Corners = append(out.Corners, StressCornerJSON{
			Name: run.Spec.Name, Spec: run.Spec.String(),
			Model:     string(run.Model),
			Inventory: ToInventoryJSON(run.Rows),
			Coverage:  ToCoverageJSON(run.Coverage),
			Uninjectable: run.Uninjectable,
		})
	}
	return out
}

// WriteStressJSON emits the stress matrix as one JSON object.
func WriteStressJSON(w io.Writer, res *stress.Result) error {
	return json.NewEncoder(w).Encode(ToStressJSON(res))
}

// WriteStressMatrix renders the stress matrix for humans: one
// Table-1-style inventory per corner, the delta report against the
// nominal corner, and the worst-corner certificate summary.
func WriteStressMatrix(w io.Writer, res *stress.Result) error {
	if _, err := fmt.Fprintf(w, "# Stress matrix — engine %s, march engine %s, coverage geometry %dx%d\n",
		res.Engine, res.MarchEngineName, res.Rows, res.Cols); err != nil {
		return err
	}
	for _, run := range res.Corners {
		if _, err := fmt.Fprintf(w, "\n## Corner %s (%s)\nmodel: %s\n\n", run.Spec.Name, run.Spec.String(), run.Model); err != nil {
			return err
		}
		if err := WriteInventory(w, run.Rows); err != nil {
			return err
		}
		if len(run.Uninjectable) > 0 {
			names := make([]string, 0, len(run.Uninjectable))
			for name := range run.Uninjectable {
				names = append(names, name)
			}
			sort.Strings(names)
			if _, err := fmt.Fprintf(w, "\nnot injectable by the functional engine (excluded from coverage):\n"); err != nil {
				return err
			}
			for _, name := range names {
				if _, err := fmt.Fprintf(w, "  %s — %s\n", name, run.Uninjectable[name]); err != nil {
					return err
				}
			}
		}
	}

	if _, err := fmt.Fprintf(w, "\n## Corner deltas vs %s\n", res.Nominal().Spec.Name); err != nil {
		return err
	}
	for _, d := range res.Deltas {
		if _, err := fmt.Fprintf(w, "\n### %s\n", d.Corner); err != nil {
			return err
		}
		if d.Unchanged() {
			if _, err := fmt.Fprintln(w, "identical to nominal"); err != nil {
				return err
			}
			continue
		}
		if len(d.Appeared) > 0 {
			if _, err := fmt.Fprintf(w, "appeared: %s\n", strings.Join(d.Appeared, "; ")); err != nil {
				return err
			}
		}
		if len(d.Disappeared) > 0 {
			if _, err := fmt.Fprintf(w, "disappeared: %s\n", strings.Join(d.Disappeared, "; ")); err != nil {
				return err
			}
		}
		for _, c := range d.Changed {
			arrow := "="
			switch {
			case c.Grew > 0:
				arrow = "grew"
			case c.Grew < 0:
				arrow = "shrank"
			default:
				arrow = "moved"
			}
			if _, err := fmt.Fprintf(w, "%s (%s)\n  nominal: %s\n  corner:  %s\n", c.Family, arrow, c.From, c.To); err != nil {
				return err
			}
		}
	}

	cert := res.Certificate
	if _, err := fmt.Fprintf(w, "\n## Worst-corner certificate — %d of %d (test, family) claims hold at every corner\n\n",
		cert.Claimed(), len(cert.Claims)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "| Test | Family | Claimed | Reason |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|"); err != nil {
		return err
	}
	for _, cl := range cert.Claims {
		mark := "✓"
		if !cl.Claimed {
			mark = "✗"
		}
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | %s |\n", cl.Test, cl.Family, mark, cl.Reason); err != nil {
			return err
		}
	}
	return nil
}
