package report

import (
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/march"
)

// TestWriteDetectionMatrixSingleTest: single-test mode prints the grid
// plus per-verdict evidence and the soundness certificate for the real
// March PF paper column.
func TestWriteDetectionMatrixSingleTest(t *testing.T) {
	m := march.BuildDetectionMatrix([]march.Test{march.MarchPF()}, march.PaperFaultCatalog(), nil)
	var sb strings.Builder
	if err := WriteDetectionMatrix(&sb, m); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"static detection matrix — 1 tests × 16 faults",
		"| fault | March PF |",
		"| RDF0 partial (cell, Open 1) | D |",
		"| WDF1 partial (bit line, Open 4) | M |",
		"  D RDF0 partial (cell, Open 1): sensitized at element",
		"  M WDF1 partial (bit line, Open 4):",
		"certificate: sound (every cannot-complete claim is a proved miss)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "DRIFT") {
		t.Errorf("unexpected drift on the real catalog:\n%s", out)
	}
}

// TestWriteDetectionMatrixMultiTest: multi-test mode prints one verdict
// column per test and no evidence lines.
func TestWriteDetectionMatrixMultiTest(t *testing.T) {
	tests := []march.Test{march.MarchCMinus(), march.MarchPF()}
	m := march.BuildDetectionMatrix(tests, march.PaperFaultCatalog()[:4], nil)
	var sb strings.Builder
	if err := WriteDetectionMatrix(&sb, m); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| fault | March C- | March PF |") {
		t.Errorf("missing two-column header:\n%s", out)
	}
	if strings.Contains(out, "  D ") || strings.Contains(out, "  M ") {
		t.Errorf("evidence lines must only appear in single-test mode:\n%s", out)
	}
}

// TestWriteDetectionMatrixDrift: a fabricated drift row must be
// reported and flip the certificate to UNSOUND.
func TestWriteDetectionMatrixDrift(t *testing.T) {
	m := march.DetectionMatrix{
		Tests: []string{"T"},
		Rows: []march.DetectionRow{{
			Test: "T", Fault: "F",
			Proof:          march.Proof{Verdict: march.VerdictDetects},
			CannotComplete: true,
		}},
	}
	var sb strings.Builder
	if err := WriteDetectionMatrix(&sb, m); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "DRIFT: T vs F") || !strings.Contains(out, "certificate: UNSOUND") {
		t.Errorf("drift not reported:\n%s", out)
	}
}
