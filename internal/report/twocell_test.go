package report

import (
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/march"
)

func TestWriteTwoCellCoverage(t *testing.T) {
	cert, err := march.TwoCellCertificateFor(march.MarchCMinus(), march.TwoCellCatalog(), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteTwoCellCoverage(&b, cert); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"two-cell coverage certificate — March C- on 2x2",
		"| class | detected | proved miss |",
		"| CFst |",
		"statically proved misses:",
		"certificate: sound",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("certificate output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "VIOLATION") {
		t.Errorf("sound certificate reports a violation:\n%s", out)
	}

	// A hand-built violated certificate renders as unsound.
	bad := march.TwoCellCertificate{
		Test: "bogus", Rows: 2, Cols: 2,
		Entries: []march.TwoCellCertRow{{
			Entry: "CFst <0; 1/0/->", ProvedMiss: true, Reason: "r", Caught: 3, Scenarios: 12,
		}},
	}
	b.Reset()
	if err := WriteTwoCellCoverage(&b, bad); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "UNSOUND") || !strings.Contains(b.String(), "VIOLATION") {
		t.Errorf("violated certificate not flagged:\n%s", b.String())
	}
}
