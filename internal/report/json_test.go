package report

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
)

func TestWriteInventoryJSON(t *testing.T) {
	opens := defect.SimulatedOpens()
	rows := []analysis.Row{
		{
			SimFFM: fp.RDF1, ComFFM: fp.RDF0, Open: opens[0],
			Float: defect.FloatBitLine, Possible: true,
			Completed: fp.MustNew(fp.NewSOS(fp.Init1, fp.CWBL(0), fp.R(1)), 0, fp.ReadResultOf(0)),
		},
		{SimFFM: fp.TFUp, ComFFM: fp.TFDown, Open: opens[1], Float: defect.FloatWordLine},
	}
	var buf bytes.Buffer
	if err := WriteInventoryJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var got []InventoryRowJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d rows", len(got))
	}
	if got[0].SimFFM != "RDF1" || !got[0].Possible || got[0].Open != opens[0].Name() {
		t.Fatalf("row 0 = %+v", got[0])
	}
	if got[1].Completed != "Not possible" || got[1].Possible {
		t.Fatalf("row 1 = %+v", got[1])
	}
}

func TestWriteCoverageJSON(t *testing.T) {
	var buf bytes.Buffer
	err := WriteCoverageJSON(&buf, []march.CoverageResult{
		{Test: "MATS+", Fault: "SF0", Detected: true, Caught: 8, Scenarios: 8, Engine: "bitsim"},
		{Test: "MATS+", Fault: "CFst x", Partial: true, Caught: 3, Scenarios: 8, Engine: "memsim"},
	})
	if err != nil {
		t.Fatal(err)
	}
	var got []CoverageRowJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got[0].Engine != "bitsim" || got[1].Engine != "memsim" || !got[1].Partial {
		t.Fatalf("engines/flags lost: %+v", got)
	}
}

func TestWriteTwoCellCertificateJSON(t *testing.T) {
	cert := march.TwoCellCertificate{
		Test: "MATS+", Rows: 4, Cols: 4, Offsets: []int{1, -1},
		Entries: []march.TwoCellCertRow{
			{Entry: "CFds a", Class: fp.CFds, Detected: true, Caught: 4, Scenarios: 4, Engine: "bitsim"},
			{Entry: "CFst b", Class: fp.CFst, ProvedMiss: true, Caught: 1, Scenarios: 4, Engine: "memsim"},
		},
	}
	var buf bytes.Buffer
	if err := WriteTwoCellCertificateJSON(&buf, cert); err != nil {
		t.Fatal(err)
	}
	var got TwoCellCertificateJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Rows != 4 || len(got.Offsets) != 2 || len(got.Entries) != 2 {
		t.Fatalf("shape lost: %+v", got)
	}
	// The proved-miss-yet-caught row is a soundness violation and must
	// surface in the precomputed list.
	if len(got.Violations) != 1 || got.Violations[0] != "CFst b" {
		t.Fatalf("violations = %v", got.Violations)
	}
	if got.Entries[1].Engine != "memsim" {
		t.Fatalf("engine lost: %+v", got.Entries[1])
	}
}

func TestWriteDetectionMatrixJSON(t *testing.T) {
	m := march.BuildDetectionMatrix(
		[]march.Test{march.MATSPlus()},
		march.ClassicalFaultCatalog()[:3],
		march.TwoCellCatalog()[:2],
	)
	var buf bytes.Buffer
	if err := WriteDetectionMatrixJSON(&buf, m); err != nil {
		t.Fatal(err)
	}
	var got DetectionMatrixJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 5 || got.Tests[0] != "MATS+" {
		t.Fatalf("shape lost: %d rows, tests %v", len(got.Rows), got.Tests)
	}
	if got.Detects+got.Misses+got.Unknowns != len(got.Rows) {
		t.Fatalf("tally %d+%d+%d does not cover %d rows", got.Detects, got.Misses, got.Unknowns, len(got.Rows))
	}
	if len(got.Drift) != 0 {
		t.Fatalf("unexpected drift: %v", got.Drift)
	}
	for _, r := range got.Rows {
		if r.Verdict != "Detects" && r.Verdict != "Misses" && r.Verdict != "Unknown" {
			t.Fatalf("verdict %q", r.Verdict)
		}
	}
}

// TestWriteMergePredictionJSON feeds the encoder NaN voltages and +Inf
// conductances — the values json.Marshal rejects — and requires a clean
// null/ideal encoding.
func TestWriteMergePredictionJSON(t *testing.T) {
	p := netlint.MergePrediction{
		Elems:  []string{"rbridge"},
		Phases: []string{"precharge", "sense0"},
		Weak: []netlint.WeakMerge{{
			Elem: "rbridge", Ohms: 2e6,
			A: netlint.WeakSide{
				Net:         "BT",
				Conductance: map[string]float64{"precharge": math.Inf(1), "sense0": 1e-5},
				Volts:       map[string]float64{"precharge": 2.3, "sense0": math.NaN()},
				Anchors:     map[string][]string{"precharge": {"vblp"}},
			},
			B: netlint.WeakSide{
				Net:         "cell0_store",
				Conductance: map[string]float64{"precharge": 0, "sense0": 0},
				Volts:       map[string]float64{"precharge": math.NaN(), "sense0": math.NaN()},
			},
			Verdicts: map[string]netlint.ClassVerdict{},
			Volts: map[string][2]float64{
				"precharge": {2.3, math.NaN()},
				"sense0":    {math.NaN(), math.NaN()},
			},
		}},
	}
	var buf bytes.Buffer
	if err := WriteMergePredictionJSON(&buf, p); err != nil {
		t.Fatalf("NaN/Inf broke the encoder: %v", err)
	}
	var got MergePredictionJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	w := got.Weak[0]
	if !w.A.Drive["precharge"].Ideal || w.A.Drive["sense0"].Siemens != 1e-5 {
		t.Fatalf("drive encoding: %+v", w.A.Drive)
	}
	if w.A.Volts["sense0"] != nil || w.A.Volts["precharge"] == nil || *w.A.Volts["precharge"] != 2.3 {
		t.Fatalf("volt encoding: %+v", w.A.Volts)
	}
	if v := w.Volts["precharge"]; v[0] == nil || v[1] != nil {
		t.Fatalf("pair volt encoding: %+v", v)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN leaked into the JSON")
	}
}

func TestWriteFindingsJSON(t *testing.T) {
	fs := lint.Findings{
		{Layer: "netlist", Rule: "floating-net", Severity: lint.Error, Subject: "BT", Message: "floats in sense0"},
		{Layer: "march", Rule: "redundant-op", Severity: lint.Info, Subject: "MATS+", Message: "detail"},
	}
	var buf bytes.Buffer
	if err := WriteFindingsJSON(&buf, fs, lint.Warning); err != nil {
		t.Fatal(err)
	}
	var got []FindingJSON
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Severity != "error" || got[0].Rule != "floating-net" {
		t.Fatalf("filtered findings = %+v", got)
	}
	buf.Reset()
	if err := WriteFindingsJSON(&buf, fs, lint.Info); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("unfiltered findings = %+v", got)
	}
}
