package report

import (
	"encoding/json"
	"io"
	"math"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
)

// This file holds the machine-readable counterparts of the markdown and
// ASCII writers: typed JSON views of every pipeline result, shared by
// the analysis service (responses and store payloads) and the CLIs.
// Each To*JSON builder returns a plain DTO — no maps keyed by
// non-strings, no NaN/Inf — so json.Marshal can never fail on it, and
// round-tripping through the persistent store is loss-free.

// InventoryRowJSON is one Table 1 row.
type InventoryRowJSON struct {
	SimFFM    string `json:"sim_ffm"`
	ComFFM    string `json:"com_ffm"`
	Open      string `json:"open"`
	OpenID    int    `json:"open_id"`
	Float     string `json:"float"`
	Possible  bool   `json:"possible"`
	Completed string `json:"completed"`
}

// ToInventoryJSON converts the inventory to its JSON view.
func ToInventoryJSON(rows []analysis.Row) []InventoryRowJSON {
	out := make([]InventoryRowJSON, 0, len(rows))
	for _, r := range rows {
		out = append(out, InventoryRowJSON{
			SimFFM: r.SimFFM.String(), ComFFM: r.ComFFM.String(),
			Open: r.Open.Name(), OpenID: r.Open.ID,
			Float: string(r.Float), Possible: r.Possible,
			Completed: r.CompletedString(),
		})
	}
	return out
}

// WriteInventoryJSON emits the inventory as a JSON array.
func WriteInventoryJSON(w io.Writer, rows []analysis.Row) error {
	return json.NewEncoder(w).Encode(ToInventoryJSON(rows))
}

// CoverageRowJSON is one (test, fault) coverage cell.
type CoverageRowJSON struct {
	Test      string `json:"test"`
	Fault     string `json:"fault"`
	Partial   bool   `json:"partial"`
	Detected  bool   `json:"detected"`
	Caught    int    `json:"caught"`
	Scenarios int    `json:"scenarios"`
	Engine    string `json:"engine,omitempty"`
}

// ToCoverageJSON converts a coverage matrix to its JSON view.
func ToCoverageJSON(results []march.CoverageResult) []CoverageRowJSON {
	out := make([]CoverageRowJSON, 0, len(results))
	for _, r := range results {
		out = append(out, CoverageRowJSON{
			Test: r.Test, Fault: r.Fault, Partial: r.Partial,
			Detected: r.Detected, Caught: r.Caught, Scenarios: r.Scenarios,
			Engine: r.Engine,
		})
	}
	return out
}

// WriteCoverageJSON emits a coverage matrix as a JSON array.
func WriteCoverageJSON(w io.Writer, results []march.CoverageResult) error {
	return json.NewEncoder(w).Encode(ToCoverageJSON(results))
}

// TwoCellCertRowJSON is one certificate row.
type TwoCellCertRowJSON struct {
	Entry      string `json:"entry"`
	Class      string `json:"class"`
	Partial    bool   `json:"partial"`
	ProvedMiss bool   `json:"proved_miss"`
	Reason     string `json:"reason,omitempty"`
	Detected   bool   `json:"detected"`
	Caught     int    `json:"caught"`
	Scenarios  int    `json:"scenarios"`
	Engine     string `json:"engine,omitempty"`
}

// TwoCellCertificateJSON is the certificate's JSON view, violations
// precomputed so API consumers need not re-derive the soundness check.
type TwoCellCertificateJSON struct {
	Test       string               `json:"test"`
	Rows       int                  `json:"rows"`
	Cols       int                  `json:"cols"`
	Offsets    []int                `json:"offsets,omitempty"`
	Entries    []TwoCellCertRowJSON `json:"entries"`
	Violations []string             `json:"violations,omitempty"`
}

// ToTwoCellCertificateJSON converts a certificate to its JSON view.
func ToTwoCellCertificateJSON(c march.TwoCellCertificate) TwoCellCertificateJSON {
	out := TwoCellCertificateJSON{Test: c.Test, Rows: c.Rows, Cols: c.Cols, Offsets: c.Offsets}
	for _, r := range c.Entries {
		out.Entries = append(out.Entries, TwoCellCertRowJSON{
			Entry: r.Entry, Class: r.Class.String(), Partial: r.Partial,
			ProvedMiss: r.ProvedMiss, Reason: r.Reason,
			Detected: r.Detected, Caught: r.Caught, Scenarios: r.Scenarios,
			Engine: r.Engine,
		})
	}
	for _, v := range c.Violations() {
		out.Violations = append(out.Violations, v.Entry)
	}
	return out
}

// WriteTwoCellCertificateJSON emits a certificate as one JSON object.
func WriteTwoCellCertificateJSON(w io.Writer, c march.TwoCellCertificate) error {
	return json.NewEncoder(w).Encode(ToTwoCellCertificateJSON(c))
}

// DetectionRowJSON is one (test, fault) cell of the static detection
// matrix.
type DetectionRowJSON struct {
	Test           string `json:"test"`
	Fault          string `json:"fault"`
	TwoCell        bool   `json:"two_cell"`
	Partial        bool   `json:"partial"`
	Uncompletable  bool   `json:"uncompletable"`
	Verdict        string `json:"verdict"`
	Trace          string `json:"trace,omitempty"`
	Witness        string `json:"witness,omitempty"`
	Scenarios      int    `json:"scenarios"`
	Detecting      int    `json:"detecting"`
	CannotComplete bool   `json:"cannot_complete"`
	Reason         string `json:"reason,omitempty"`
}

// DetectionMatrixJSON is the matrix's JSON view with the verdict tally
// and drift rows precomputed.
type DetectionMatrixJSON struct {
	Tests    []string           `json:"tests"`
	Rows     []DetectionRowJSON `json:"rows"`
	Detects  int                `json:"detects"`
	Misses   int                `json:"misses"`
	Unknowns int                `json:"unknowns"`
	Drift    []string           `json:"drift,omitempty"`
}

// ToDetectionMatrixJSON converts a detection matrix to its JSON view.
func ToDetectionMatrixJSON(m march.DetectionMatrix) DetectionMatrixJSON {
	out := DetectionMatrixJSON{Tests: m.Tests}
	out.Detects, out.Misses, out.Unknowns = m.Counts()
	for _, r := range m.Rows {
		row := DetectionRowJSON{
			Test: r.Test, Fault: r.Fault,
			TwoCell: r.TwoCell, Partial: r.Partial, Uncompletable: r.Uncompletable,
			Verdict: r.Proof.Verdict.String(), Witness: r.Proof.Witness,
			Scenarios: r.Proof.Scenarios, Detecting: r.Proof.Detecting,
			CannotComplete: r.CannotComplete, Reason: r.Reason,
		}
		if r.Proof.Trace != nil {
			row.Trace = r.Proof.Trace.String()
		}
		out.Rows = append(out.Rows, row)
	}
	for _, d := range m.Drift() {
		out.Drift = append(out.Drift, d.Test+" × "+d.Fault)
	}
	return out
}

// WriteDetectionMatrixJSON emits the matrix as one JSON object.
func WriteDetectionMatrixJSON(w io.Writer, m march.DetectionMatrix) error {
	return json.NewEncoder(w).Encode(ToDetectionMatrixJSON(m))
}

// jsonVolt converts a possibly-NaN voltage to a nullable JSON value
// (json.Marshal rejects NaN).
func jsonVolt(v float64) *float64 {
	if math.IsNaN(v) {
		return nil
	}
	return &v
}

// DriveJSON is a Thevenin drive conductance: Ideal for an anchored
// endpoint (+Inf), otherwise the finite value in siemens.
type DriveJSON struct {
	Ideal   bool    `json:"ideal,omitempty"`
	Siemens float64 `json:"siemens"`
}

func toDriveJSON(g float64) DriveJSON {
	if math.IsInf(g, 1) {
		return DriveJSON{Ideal: true}
	}
	return DriveJSON{Siemens: g}
}

// MergedClassJSON is one hard-merged net class, with per-phase verdicts
// flattened into parallel maps keyed by phase name.
type MergedClassJSON struct {
	Name     string              `json:"name"`
	Nets     []string            `json:"nets"`
	Supplies []string            `json:"supplies,omitempty"`
	Verdicts map[string]string   `json:"verdicts"`
	Anchors  map[string][]string `json:"anchors,omitempty"`
}

// WeakSideJSON is one endpoint of a weak bridge.
type WeakSideJSON struct {
	Net     string               `json:"net"`
	Anchors map[string][]string  `json:"anchors,omitempty"`
	Drive   map[string]DriveJSON `json:"drive"`
	Volts   map[string]*float64  `json:"volts"`
}

// WeakMergeJSON is one weak (sub-cutoff resistive) bridge analysis.
type WeakMergeJSON struct {
	Elem     string                `json:"elem"`
	Ohms     float64               `json:"ohms"`
	A        WeakSideJSON          `json:"a"`
	B        WeakSideJSON          `json:"b"`
	Verdicts map[string]string     `json:"verdicts"`
	Volts    map[string][]*float64 `json:"volts"`
}

// MergePredictionJSON is the net-merge prover verdict in JSON form.
type MergePredictionJSON struct {
	Elems           []string          `json:"elems"`
	Phases          []string          `json:"phases"`
	Classes         []MergedClassJSON `json:"classes,omitempty"`
	Weak            []WeakMergeJSON   `json:"weak,omitempty"`
	PrimaryFloats   []string          `json:"primary_floats,omitempty"`
	SecondaryFloats []string          `json:"secondary_floats,omitempty"`
	UnknownFloats   []string          `json:"unknown_floats,omitempty"`
}

func toWeakSideJSON(s netlint.WeakSide, phases []string) WeakSideJSON {
	out := WeakSideJSON{
		Net: s.Net, Anchors: s.Anchors,
		Drive: map[string]DriveJSON{}, Volts: map[string]*float64{},
	}
	for _, ph := range phases {
		out.Drive[ph] = toDriveJSON(s.Conductance[ph])
		out.Volts[ph] = jsonVolt(s.Volts[ph])
	}
	return out
}

// ToMergePredictionJSON converts a merge prediction to its JSON view,
// mapping NaN voltages to null and infinite conductances to the Ideal
// flag so the result always marshals.
func ToMergePredictionJSON(p netlint.MergePrediction) MergePredictionJSON {
	out := MergePredictionJSON{
		Elems: p.Elems, Phases: p.Phases,
		PrimaryFloats:   p.Floats.Primary,
		SecondaryFloats: p.Floats.Secondary,
		UnknownFloats:   p.Floats.Unknown,
	}
	for _, mc := range p.Classes {
		jc := MergedClassJSON{
			Name: mc.Name, Nets: mc.Nets, Supplies: mc.Supplies,
			Verdicts: map[string]string{}, Anchors: mc.Anchors,
		}
		for _, ph := range p.Phases {
			jc.Verdicts[ph] = mc.Verdicts[ph].String()
		}
		out.Classes = append(out.Classes, jc)
	}
	for _, wm := range p.Weak {
		jw := WeakMergeJSON{
			Elem: wm.Elem, Ohms: wm.Ohms,
			A: toWeakSideJSON(wm.A, p.Phases), B: toWeakSideJSON(wm.B, p.Phases),
			Verdicts: map[string]string{}, Volts: map[string][]*float64{},
		}
		for _, ph := range p.Phases {
			jw.Verdicts[ph] = wm.Verdicts[ph].String()
			v := wm.Volts[ph]
			jw.Volts[ph] = []*float64{jsonVolt(v[0]), jsonVolt(v[1])}
		}
		out.Weak = append(out.Weak, jw)
	}
	return out
}

// WriteMergePredictionJSON emits the prediction as one JSON object.
func WriteMergePredictionJSON(w io.Writer, p netlint.MergePrediction) error {
	return json.NewEncoder(w).Encode(ToMergePredictionJSON(p))
}

// FindingJSON is one static-analysis finding.
type FindingJSON struct {
	Layer    string `json:"layer"`
	Rule     string `json:"rule"`
	Severity string `json:"severity"`
	Subject  string `json:"subject"`
	Message  string `json:"message"`
}

// ToFindingsJSON converts findings at or above minSev to JSON form.
func ToFindingsJSON(fs lint.Findings, minSev lint.Severity) []FindingJSON {
	shown := fs.AtLeast(minSev)
	out := make([]FindingJSON, 0, len(shown))
	for _, f := range shown {
		out = append(out, FindingJSON{
			Layer: f.Layer, Rule: f.Rule, Severity: f.Severity.String(),
			Subject: f.Subject, Message: f.Message,
		})
	}
	return out
}

// WriteFindingsJSON emits findings as a JSON array.
func WriteFindingsJSON(w io.Writer, fs lint.Findings, minSev lint.Severity) error {
	return json.NewEncoder(w).Encode(ToFindingsJSON(fs, minSev))
}
