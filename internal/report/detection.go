package report

import (
	"fmt"
	"io"

	"github.com/memtest/partialfaults/internal/march"
)

// WriteDetectionMatrix renders the three-valued static detection
// matrix in the style of the paper's Table 1: one row per catalog
// fault, one column per test, each cell a proved verdict — D (the test
// is guaranteed to detect the fault on every geometry, victim/pair
// placement and ⇕-order assignment), M (guaranteed to miss it
// everywhere) or ? (neither proven; detection may be geometry- or
// placement-dependent). When the matrix covers a single test, each
// verdict's evidence is printed too: the proof trace of a D, the
// witness scenario of an M. A drift row — a completion-pre-pass
// cannot-complete claim the prover did not confirm as M — marks the
// certificate unsound.
func WriteDetectionMatrix(w io.Writer, m march.DetectionMatrix) error {
	det, miss, unk := m.Counts()
	if _, err := fmt.Fprintf(w, "static detection matrix — %d tests × %d faults: %d proved detected, %d proved missed, %d unknown\n",
		len(m.Tests), matrixFaultCount(m), det, miss, unk); err != nil {
		return err
	}

	// Group rows by fault, preserving catalog order, one verdict per test.
	type faultRow struct {
		name     string
		partial  bool
		verdicts map[string]march.Proof
	}
	var faults []*faultRow
	byName := map[string]*faultRow{}
	for _, r := range m.Rows {
		fr := byName[r.Fault]
		if fr == nil {
			fr = &faultRow{name: r.Fault, partial: r.Partial, verdicts: map[string]march.Proof{}}
			byName[r.Fault] = fr
			faults = append(faults, fr)
		}
		fr.verdicts[r.Test] = r.Proof
	}

	if _, err := fmt.Fprint(w, "| fault |"); err != nil {
		return err
	}
	for _, t := range m.Tests {
		if _, err := fmt.Fprintf(w, " %s |", t); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprint(w, "\n|---|"); err != nil {
		return err
	}
	for range m.Tests {
		if _, err := fmt.Fprint(w, "---|"); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for _, fr := range faults {
		if _, err := fmt.Fprintf(w, "| %s |", fr.name); err != nil {
			return err
		}
		for _, t := range m.Tests {
			if _, err := fmt.Fprintf(w, " %s |", fr.verdicts[t].Verdict.Symbol()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}

	// With a single test the matrix doubles as its certificate: print the
	// evidence behind every verdict.
	if len(m.Tests) == 1 {
		for _, r := range m.Rows {
			switch r.Proof.Verdict {
			case march.VerdictDetects:
				if r.Proof.Trace != nil {
					if _, err := fmt.Fprintf(w, "  D %s: %s\n", r.Fault, r.Proof.Trace); err != nil {
						return err
					}
				}
			case march.VerdictMisses:
				if _, err := fmt.Fprintf(w, "  M %s: %s\n", r.Fault, r.Proof.Witness); err != nil {
					return err
				}
			default:
				if _, err := fmt.Fprintf(w, "  ? %s: %s\n", r.Fault, r.Proof.Witness); err != nil {
					return err
				}
			}
		}
	}

	if drift := m.Drift(); len(drift) > 0 {
		for _, r := range drift {
			if _, err := fmt.Fprintf(w, "DRIFT: %s vs %s — completion pre-pass proves it cannot fire, prover verdict %s\n",
				r.Test, r.Fault, r.Proof.Verdict); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w, "certificate: UNSOUND — the completion pre-pass and the detection prover disagree")
		return err
	}
	_, err := fmt.Fprintln(w, "certificate: sound (every cannot-complete claim is a proved miss)")
	return err
}

// matrixFaultCount returns the number of distinct faults in the matrix.
func matrixFaultCount(m march.DetectionMatrix) int {
	if len(m.Tests) == 0 {
		return 0
	}
	return len(m.Rows) / len(m.Tests)
}
