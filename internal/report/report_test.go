package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
)

func testPlane() *analysis.Plane {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	p := &analysis.Plane{
		Open: o, Float: grp,
		SOS:   fp.NewSOS(fp.Init1, fp.R(1)),
		RDefs: []float64{1e3, 1e6},
		Us:    []float64{0, 3.3},
	}
	p.Points = [][]analysis.Point{
		{{RDef: 1e3, U: 0}, {RDef: 1e3, U: 3.3}},
		{
			{RDef: 1e6, U: 0, Faulty: true, FP: fp.MustParse("<1r1/0/0>"), FFM: fp.RDF1},
			{RDef: 1e6, U: 3.3},
		},
	}
	return p
}

func TestWritePlane(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlane(&buf, testPlane()); err != nil {
		t.Fatalf("WritePlane: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"Open 4", "r", ".", "legend", "RDF1"} {
		if !strings.Contains(out, want) {
			t.Errorf("plane output missing %q:\n%s", want, out)
		}
	}
}

func TestWritePlaneCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePlaneCSV(&buf, testPlane()); err != nil {
		t.Fatalf("WritePlaneCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 { // header + 4 points
		t.Fatalf("CSV has %d lines, want 5", len(lines))
	}
	if !strings.Contains(buf.String(), "RDF1") {
		t.Error("CSV missing FFM column value")
	}
}

func TestGlyphs(t *testing.T) {
	if g := Glyph(analysis.Point{}); g != '.' {
		t.Errorf("healthy glyph = %c, want .", g)
	}
	pt := analysis.Point{Faulty: true, FFM: fp.RDF0}
	if g := Glyph(pt); g != 'R' {
		t.Errorf("RDF0 glyph = %c, want R", g)
	}
	if g := Glyph(analysis.Point{Faulty: true}); g != '?' {
		t.Errorf("unknown glyph = %c, want ?", g)
	}
}

func TestWriteInventory(t *testing.T) {
	o, _ := defect.ByID(4)
	rows := []analysis.Row{
		{
			SimFFM: fp.RDF1, ComFFM: fp.RDF0, Open: o,
			Float: defect.FloatBitLine, Possible: true,
			Completed: fp.MustParse("<1v [w0BL] r1v/0/0>"),
		},
		{SimFFM: fp.SF0, ComFFM: fp.SF1, Open: o, Float: defect.FloatWordLine},
	}
	var buf bytes.Buffer
	if err := WriteInventory(&buf, rows); err != nil {
		t.Fatalf("WriteInventory: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"RDF1", "Not possible", "<1v [w0BL] r1v/0/0>", "Bit line"} {
		if !strings.Contains(out, want) {
			t.Errorf("inventory missing %q:\n%s", want, out)
		}
	}
}

func TestWriteCoverage(t *testing.T) {
	results := []march.CoverageResult{
		{Test: "MATS+", Fault: "RDF1", Detected: true, Caught: 8, Scenarios: 8},
		{Test: "March PF", Fault: "RDF1", Detected: true, Caught: 16, Scenarios: 16},
		{Test: "MATS+", Fault: "RDF1 partial", Caught: 0, Scenarios: 8},
		{Test: "March PF", Fault: "RDF1 partial", Caught: 8, Scenarios: 16},
	}
	var buf bytes.Buffer
	if err := WriteCoverage(&buf, results, []string{"MATS+", "March PF"}); err != nil {
		t.Fatalf("WriteCoverage: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"✓", "✗", "8/16"} {
		if !strings.Contains(out, want) {
			t.Errorf("coverage missing %q:\n%s", want, out)
		}
	}
}

func TestWriteFindings(t *testing.T) {
	fs := lint.Findings{
		{Layer: "netlist", Rule: "floating-net", Severity: lint.Error, Subject: "btX", Message: "no DC path"},
		{Layer: "march", Rule: "leading-read", Severity: lint.Warning, Subject: "Bad", Message: "reads first"},
		{Layer: "march", Rule: "cannot-complete", Severity: lint.Info, Subject: "MATS+", Message: "pre-pass"},
	}
	fs.Sort()

	var full strings.Builder
	if err := WriteFindings(&full, fs, lint.Info); err != nil {
		t.Fatal(err)
	}
	out := full.String()
	for _, want := range []string{"[netlist]", "[march]", "floating-net", "leading-read", "cannot-complete",
		"1 error, 1 warning, 1 info finding"} {
		if !strings.Contains(out, want) {
			t.Errorf("full output missing %q:\n%s", want, out)
		}
	}

	var filtered strings.Builder
	if err := WriteFindings(&filtered, fs, lint.Warning); err != nil {
		t.Fatal(err)
	}
	out = filtered.String()
	if strings.Contains(out, "cannot-complete") {
		t.Errorf("info finding printed above threshold:\n%s", out)
	}
	if !strings.Contains(out, "(1 below the reporting threshold)") {
		t.Errorf("filtered summary should count hidden findings:\n%s", out)
	}
}

// WriteMergePrediction must render all three sections: hard classes
// with per-phase verdicts, weak bridges with divider voltages (NaN as
// "?", ideal anchoring as "ideal"), and the float lines.
func TestWriteMergePrediction(t *testing.T) {
	pred := netlint.MergePrediction{
		Elems:  []string{"R_short", "R_weak"},
		Phases: []string{"on", "off"},
		Classes: []netlint.MergedClass{{
			Nets: []string{"0", "c0s"}, Name: "0=c0s", Supplies: []string{"0"},
			Verdicts: map[string]netlint.ClassVerdict{"on": netlint.VerdictContested, "off": netlint.VerdictStuck},
			Anchors:  map[string][]string{"on": {"0", "latch:btS"}, "off": {"0"}},
		}},
		Weak: []netlint.WeakMerge{{
			Elem: "R_weak", Ohms: 1.5e3,
			A: netlint.WeakSide{
				Net:         "out",
				Anchors:     map[string][]string{"on": {"0", "vdd"}, "off": nil},
				Conductance: map[string]float64{"on": 2e-3, "off": 0},
				Volts:       map[string]float64{"on": 1.65, "off": math.NaN()},
			},
			B: netlint.WeakSide{
				Net:         "vdd",
				Anchors:     map[string][]string{"on": {"vdd"}, "off": {"vdd"}},
				Conductance: map[string]float64{"on": math.Inf(1), "off": math.Inf(1)},
				Volts:       map[string]float64{"on": 3.3, "off": 3.3},
			},
			Verdicts: map[string]netlint.ClassVerdict{"on": netlint.VerdictWeakContested, "off": netlint.VerdictWeakDriven},
			Volts: map[string][2]float64{
				"on":  {2.0625, 3.3},
				"off": {3.3, 3.3},
			},
		}},
	}
	var buf bytes.Buffer
	if err := WriteMergePrediction(&buf, pred); err != nil {
		t.Fatalf("WriteMergePrediction: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"R_short, R_weak",
		"class 0=c0s (supplies: 0)",
		"contested", "stuck",
		"weak bridge R_weak (1.5e+03 Ω): out – vdd",
		"weak-contested", "weak-driven",
		"2.062 V", "ideal", "0.002",
		"anchors: 0, vdd | vdd",
		"primary floats:   (none)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("merge prediction missing %q:\n%s", want, out)
		}
	}
}
