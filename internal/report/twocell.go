package report

import (
	"fmt"
	"io"

	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/march"
)

// twoCellClassOrder fixes the rendering order of coupling-fault classes.
var twoCellClassOrder = []fp.CFKind{
	fp.CFst, fp.CFds, fp.CFtr, fp.CFwd, fp.CFrd, fp.CFdr, fp.CFir,
}

// WriteTwoCellCoverage renders a two-cell coverage certificate: the
// per-class tally of detected, statically-proved-missed, and
// missed-but-unproved catalog entries, the proved misses with their
// static reasons, and the certificate's soundness verdict — a proved
// miss the simulator nevertheless caught is a violation and means the
// pre-pass and the engine have drifted apart.
func WriteTwoCellCoverage(w io.Writer, c march.TwoCellCertificate) error {
	if _, err := fmt.Fprintf(w, "two-cell coverage certificate — %s on %dx%d (%d catalog entries)\n",
		c.Test, c.Rows, c.Cols, len(c.Entries)); err != nil {
		return err
	}
	type tally struct{ total, detected, proved, unproved int }
	tallies := map[fp.CFKind]*tally{}
	for _, k := range twoCellClassOrder {
		tallies[k] = &tally{}
	}
	for _, r := range c.Entries {
		tl := tallies[r.Class]
		if tl == nil {
			tl = &tally{}
			tallies[r.Class] = tl
		}
		tl.total++
		switch {
		case r.Detected:
			tl.detected++
		case r.ProvedMiss:
			tl.proved++
		default:
			tl.unproved++
		}
	}
	if _, err := fmt.Fprintf(w, "| class | detected | proved miss | missed (unproved) |\n|---|---|---|---|\n"); err != nil {
		return err
	}
	for _, k := range twoCellClassOrder {
		tl := tallies[k]
		if tl.total == 0 {
			continue
		}
		if _, err := fmt.Fprintf(w, "| %s | %d/%d | %d | %d |\n",
			k, tl.detected, tl.total, tl.proved, tl.unproved); err != nil {
			return err
		}
	}
	proved := 0
	for _, r := range c.Entries {
		if !r.ProvedMiss {
			continue
		}
		if proved == 0 {
			if _, err := fmt.Fprintln(w, "statically proved misses:"); err != nil {
				return err
			}
		}
		proved++
		if _, err := fmt.Fprintf(w, "  %s: %s\n", r.Entry, r.Reason); err != nil {
			return err
		}
	}
	if v := c.Violations(); len(v) > 0 {
		for _, r := range v {
			if _, err := fmt.Fprintf(w, "VIOLATION: %s proved missed but caught %d/%d scenarios\n",
				r.Entry, r.Caught, r.Scenarios); err != nil {
				return err
			}
		}
		_, err := fmt.Fprintln(w, "certificate: UNSOUND — the static pre-pass and the simulator disagree")
		return err
	}
	_, err := fmt.Fprintln(w, "certificate: sound (no statically proved miss was caught dynamically)")
	return err
}
