// Package report renders analysis results for humans and harnesses:
// ASCII (R_def, U) region maps in the style of the paper's Figures 3
// and 4, markdown renderings of the Table 1 inventory, march coverage
// matrices, and CSV export.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/lint"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/netlint"
)

// ffmGlyphs maps FFMs to single-character map glyphs.
var ffmGlyphs = map[fp.FFM]byte{
	fp.SF0: 'S', fp.SF1: 's',
	fp.TFUp: 'T', fp.TFDown: 't',
	fp.WDF0: 'W', fp.WDF1: 'w',
	fp.RDF0: 'R', fp.RDF1: 'r',
	fp.DRDF0: 'D', fp.DRDF1: 'd',
	fp.IRF0: 'I', fp.IRF1: 'i',
}

// Glyph returns the map character for a point: '.' healthy, a letter for
// each FFM, '?' for unclassified faulty behaviour.
func Glyph(pt analysis.Point) byte {
	if !pt.Faulty {
		return '.'
	}
	if g, ok := ffmGlyphs[pt.FFM]; ok {
		return g
	}
	return '?'
}

// WritePlane renders a plane as an ASCII region map: rows are R_def
// values (largest on top, like the paper's log axis), columns are U
// values, one glyph per point, with a legend of observed FFMs.
func WritePlane(w io.Writer, p *analysis.Plane) error {
	if _, err := fmt.Fprintf(w, "%s / %s — SOS %q\n", p.Open.Name(), p.Float.Var, p.SOS.String()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-12s U[V]:", "R_def[kΩ]"); err != nil {
		return err
	}
	for _, u := range p.Us {
		if _, err := fmt.Fprintf(w, " %4.1f", u); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	for i := len(p.RDefs) - 1; i >= 0; i-- {
		if _, err := fmt.Fprintf(w, "%-17.4g ", p.RDefs[i]/1e3); err != nil {
			return err
		}
		for j := range p.Us {
			if _, err := fmt.Fprintf(w, " %c   ", Glyph(p.Points[i][j])); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	if ffms := p.FFMs(); len(ffms) > 0 {
		var legend []string
		for _, f := range ffms {
			legend = append(legend, fmt.Sprintf("%c=%s", ffmGlyphs[f], f))
		}
		if _, err := fmt.Fprintf(w, "legend: %s ('.'=no fault)\n", strings.Join(legend, " ")); err != nil {
			return err
		}
	}
	return nil
}

// WritePlaneCSV emits the plane as CSV rows: rdef_ohm,u_volt,ffm.
func WritePlaneCSV(w io.Writer, p *analysis.Plane) error {
	if _, err := fmt.Fprintln(w, "rdef_ohm,u_volt,faulty,ffm,fp"); err != nil {
		return err
	}
	for i := range p.RDefs {
		for j := range p.Us {
			pt := p.Points[i][j]
			ffm, fpStr := "", ""
			if pt.Faulty {
				ffm = pt.FFM.String()
				fpStr = pt.FP.String()
			}
			if _, err := fmt.Fprintf(w, "%.6g,%.4g,%v,%s,%q\n", pt.RDef, pt.U, pt.Faulty, ffm, fpStr); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteInventory renders the partial-fault inventory as a markdown table
// in the paper's Table 1 layout.
func WriteInventory(w io.Writer, rows []analysis.Row) error {
	if _, err := fmt.Fprintln(w, "| Sim. FFM | Com. FFM | Open | Completed FP | Initialized volt. |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range rows {
		if _, err := fmt.Fprintf(w, "| %s | %s | %s | `%s` | %s |\n",
			r.SimFFM, r.ComFFM, r.Open.Name(), r.CompletedString(), r.Float); err != nil {
			return err
		}
	}
	return nil
}

// WriteCoverage renders a march coverage matrix as markdown: one row per
// fault, one column per test.
func WriteCoverage(w io.Writer, results []march.CoverageResult, tests []string) error {
	byFault := map[string]map[string]march.CoverageResult{}
	var faultOrder []string
	for _, r := range results {
		m, ok := byFault[r.Fault]
		if !ok {
			m = map[string]march.CoverageResult{}
			byFault[r.Fault] = m
			faultOrder = append(faultOrder, r.Fault)
		}
		m[r.Test] = r
	}
	if _, err := fmt.Fprintf(w, "| Fault | %s |\n", strings.Join(tests, " | ")); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "|---|%s\n", strings.Repeat("---|", len(tests))); err != nil {
		return err
	}
	for _, f := range faultOrder {
		cells := make([]string, 0, len(tests))
		for _, t := range tests {
			r, ok := byFault[f][t]
			switch {
			case !ok:
				cells = append(cells, "–")
			case r.Detected:
				cells = append(cells, "✓")
			case r.Caught > 0:
				cells = append(cells, fmt.Sprintf("%d/%d", r.Caught, r.Scenarios))
			default:
				cells = append(cells, "✗")
			}
		}
		if _, err := fmt.Fprintf(w, "| %s | %s |\n", f, strings.Join(cells, " | ")); err != nil {
			return err
		}
	}
	return nil
}

// WriteMergePrediction renders the net-merge prover's verdict table:
// one block per hard-merged class with its supplies and per-phase
// verdicts, one block per weak (sub-cutoff resistive) bridge with its
// divider voltages and side drives, then the floating prediction on the
// contracted graph. For shorts and bridges the float lines read
// "(none)" — the static form of the paper's Section 2 negative result.
func WriteMergePrediction(w io.Writer, p netlint.MergePrediction) error {
	if _, err := fmt.Fprintf(w, "merging element(s): %s\n", strings.Join(p.Elems, ", ")); err != nil {
		return err
	}
	for _, mc := range p.Classes {
		if _, err := fmt.Fprintf(w, "class %s (supplies: %s)\n", mc.Name, joinOrNone(mc.Supplies)); err != nil {
			return err
		}
		for _, ph := range p.Phases {
			if _, err := fmt.Fprintf(w, "  %-10s %-10s anchors: %s\n",
				ph, mc.Verdicts[ph], joinOrNone(mc.Anchors[ph])); err != nil {
				return err
			}
		}
	}
	for _, wm := range p.Weak {
		if _, err := fmt.Fprintf(w, "weak bridge %s (%.3g Ω): %s – %s\n",
			wm.Elem, wm.Ohms, wm.A.Net, wm.B.Net); err != nil {
			return err
		}
		for _, ph := range p.Phases {
			v := wm.Volts[ph]
			if _, err := fmt.Fprintf(w, "  %-10s %-15s V = %s / %s  drive: %s / %s S  anchors: %s | %s\n",
				ph, wm.Verdicts[ph],
				fmtVolt(v[0]), fmtVolt(v[1]),
				fmtCond(wm.A.Conductance[ph]), fmtCond(wm.B.Conductance[ph]),
				joinOrNone(wm.A.Anchors[ph]), joinOrNone(wm.B.Anchors[ph])); err != nil {
				return err
			}
		}
	}
	if _, err := fmt.Fprintf(w, "primary floats:   %s\n", joinOrNone(p.Floats.Primary)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "secondary floats: %s\n", joinOrNone(p.Floats.Secondary)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "unknown-role floats: %s\n", joinOrNone(p.Floats.Unknown))
	return err
}

func joinOrNone(ss []string) string {
	if len(ss) == 0 {
		return "(none)"
	}
	return strings.Join(ss, ", ")
}

// fmtVolt renders a divider voltage; NaN means an involved anchor's
// voltage is data-dependent (a latch output) or undeclared.
func fmtVolt(v float64) string {
	if math.IsNaN(v) {
		return "?"
	}
	return fmt.Sprintf("%.3f V", v)
}

// fmtCond renders a Thevenin drive conductance; +Inf marks an ideally
// anchored endpoint, 0 one that holds charge only.
func fmtCond(g float64) string {
	if math.IsInf(g, 1) {
		return "ideal"
	}
	return fmt.Sprintf("%.3g", g)
}

// WriteFindings renders static-analysis findings grouped by layer, one
// finding per line, followed by the summary count. minSev filters what
// is printed (pass lint.Info for everything); the summary always counts
// the full set so filtered output still reveals that info findings
// exist.
func WriteFindings(w io.Writer, fs lint.Findings, minSev lint.Severity) error {
	shown := fs.AtLeast(minSev)
	lastLayer := ""
	for _, f := range shown {
		if f.Layer != lastLayer {
			if _, err := fmt.Fprintf(w, "[%s]\n", f.Layer); err != nil {
				return err
			}
			lastLayer = f.Layer
		}
		if _, err := fmt.Fprintf(w, "  %s\n", f); err != nil {
			return err
		}
	}
	if len(shown) < len(fs) {
		if _, err := fmt.Fprintf(w, "%s (%d below the reporting threshold)\n",
			fs.Summary(), len(fs)-len(shown)); err != nil {
			return err
		}
		return nil
	}
	_, err := fmt.Fprintln(w, fs.Summary())
	return err
}
