package spice

import (
	"math"
	"testing"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/device"
)

// rcError runs the RC charging circuit with n steps per time constant and
// returns the relative error at t = τ.
func rcError(trapezoidal bool, steps int) float64 {
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	out := ckt.Node("out")
	r, c := 100e3, 100e-15
	ckt.Add(device.NewVSource("V1", vdd, 0, device.DC(1)))
	ckt.Add(device.NewResistor("R1", vdd, out, r))
	ckt.Add(device.NewCapacitor("C1", out, 0, c))
	ckt.Freeze()

	opts := DefaultOptions()
	opts.Trapezoidal = trapezoidal
	e := MustNewEngine(ckt, opts)
	tau := r * c
	if err := e.Run(tau, steps, nil); err != nil {
		panic(err)
	}
	want := 1 - math.Exp(-1)
	return math.Abs(e.Voltage("out")-want) / want
}

func TestTrapezoidalBeatsBackwardEuler(t *testing.T) {
	be := rcError(false, 50)
	trap := rcError(true, 50)
	if trap >= be {
		t.Errorf("trapezoidal error %.3g not better than BE %.3g", trap, be)
	}
	if trap > 1e-3 {
		t.Errorf("trapezoidal error %.3g too large at 50 steps/τ", trap)
	}
}

func TestTrapezoidalConvergenceOrder(t *testing.T) {
	// Halving dt should cut trapezoidal error ~4× (second order) and BE
	// error ~2× (first order).
	t50, t100 := rcError(true, 50), rcError(true, 100)
	if ratio := t50 / t100; ratio < 3 || ratio > 5 {
		t.Errorf("trapezoidal order ratio = %.2f, want ≈4", ratio)
	}
	b50, b100 := rcError(false, 50), rcError(false, 100)
	if ratio := b50 / b100; ratio < 1.6 || ratio > 2.6 {
		t.Errorf("BE order ratio = %.2f, want ≈2", ratio)
	}
}

func TestTrapezoidalFloatingNodeAfterForce(t *testing.T) {
	// SetNodeVoltage must reset capacitor branch-current state so the
	// forced voltage holds (no spurious current from stale state).
	ckt := circuit.New()
	fl := ckt.Node("float")
	ckt.Add(device.NewCapacitor("C1", fl, 0, 250e-15))
	ckt.Freeze()
	opts := DefaultOptions()
	opts.Trapezoidal = true
	e := MustNewEngine(ckt, opts)
	if err := e.Run(10e-9, 20, nil); err != nil {
		t.Fatal(err)
	}
	e.SetNodeVoltage("float", 2.2)
	if err := e.Run(10e-9, 20, nil); err != nil {
		t.Fatal(err)
	}
	if got := e.Voltage("float"); math.Abs(got-2.2) > 1e-3 {
		t.Errorf("forced floating node = %gV, want 2.2V", got)
	}
}

func TestISourceChargesCapacitorLinearly(t *testing.T) {
	// i = C dv/dt → a constant current charges linearly: v(t) = I·t/C.
	ckt := circuit.New()
	out := ckt.Node("out")
	ckt.Add(device.NewISource("I1", 0, out, device.DC(1e-6))) // 1 µA into out
	ckt.Add(device.NewCapacitor("C1", out, 0, 1e-12))
	ckt.Freeze()
	e := MustNewEngine(ckt, DefaultOptions())
	if err := e.Run(1e-6, 100, nil); err != nil {
		t.Fatal(err)
	}
	want := 1e-6 * 1e-6 / 1e-12 // = 1 V
	if got := e.Voltage("out"); math.Abs(got-want) > 0.01 {
		t.Errorf("cap charged to %gV, want %gV", got, want)
	}
}

func TestISourceIntoResistor(t *testing.T) {
	ckt := circuit.New()
	out := ckt.Node("out")
	ckt.Add(device.NewISource("I1", 0, out, device.DC(1e-3)))
	ckt.Add(device.NewResistor("R1", out, 0, 1e3))
	ckt.Freeze()
	e := MustNewEngine(ckt, DefaultOptions())
	if err := e.OperatingPoint(); err != nil {
		t.Fatal(err)
	}
	if got := e.Voltage("out"); math.Abs(got-1.0) > 1e-6 {
		t.Errorf("v = %gV, want 1V", got)
	}
}

func TestISourceRequiresWaveform(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewISource(nil) should panic")
		}
	}()
	device.NewISource("I", 1, 0, nil)
}

// TestDRAMColumnUnaffectedByDefaultMethod guards that the default
// options still use backward Euler (the calibrated configuration).
func TestDefaultOptionsUseBackwardEuler(t *testing.T) {
	if DefaultOptions().Trapezoidal {
		t.Error("default integration must be backward Euler")
	}
}
