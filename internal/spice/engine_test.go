package spice

import (
	"math"
	"testing"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/device"
)

func buildDivider() (*circuit.Circuit, string) {
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	mid := ckt.Node("mid")
	ckt.Add(device.NewVSource("V1", vdd, 0, device.DC(3.3)))
	ckt.Add(device.NewResistor("R1", vdd, mid, 1e3))
	ckt.Add(device.NewResistor("R2", mid, 0, 2e3))
	ckt.Freeze()
	return ckt, "mid"
}

func TestOperatingPointDivider(t *testing.T) {
	ckt, mid := buildDivider()
	e := MustNewEngine(ckt, DefaultOptions())
	if err := e.OperatingPoint(); err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	want := 3.3 * 2.0 / 3.0
	if got := e.Voltage(mid); math.Abs(got-want) > 1e-6 {
		t.Errorf("divider mid = %gV, want %gV", got, want)
	}
	if got := e.Voltage("vdd"); math.Abs(got-3.3) > 1e-9 {
		t.Errorf("vdd = %gV, want 3.3V", got)
	}
}

func TestTransientRCCharge(t *testing.T) {
	// Series RC charging from 0 to 3.3V: v(t) = V·(1 − exp(−t/RC)).
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	out := ckt.Node("out")
	r := 100e3
	c := 100e-15 // τ = 10 ns
	ckt.Add(device.NewVSource("V1", vdd, 0, device.DC(3.3)))
	ckt.Add(device.NewResistor("R1", vdd, out, r))
	ckt.Add(device.NewCapacitor("C1", out, 0, c))
	ckt.Freeze()

	e := MustNewEngine(ckt, DefaultOptions())
	// Start with the cap discharged (skip OP, which would charge it).
	tau := r * c
	if err := e.Run(tau, 400, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := 3.3 * (1 - math.Exp(-1))
	got := e.Voltage("out")
	// Backward Euler with 400 steps/τ is accurate to ~0.2%.
	if math.Abs(got-want)/want > 0.01 {
		t.Errorf("v(τ) = %gV, want %gV (±1%%)", got, want)
	}
}

func TestTransientRCDischargeFromSetVoltage(t *testing.T) {
	// A floating capacitor initialized via SetNodeVoltage and discharged
	// through a resistor to ground: v(t) = U·exp(−t/RC). This exercises
	// the exact mechanism the fault analysis uses to initialize floating
	// line voltages.
	ckt := circuit.New()
	out := ckt.Node("out")
	r := 50e3
	c := 200e-15 // τ = 10 ns
	ckt.Add(device.NewResistor("R1", out, 0, r))
	ckt.Add(device.NewCapacitor("C1", out, 0, c))
	ckt.Freeze()

	e := MustNewEngine(ckt, DefaultOptions())
	e.SetNodeVoltage("out", 2.0)
	tau := r * c
	if err := e.Run(2*tau, 800, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := 2.0 * math.Exp(-2)
	got := e.Voltage("out")
	if math.Abs(got-want)/want > 0.02 {
		t.Errorf("v(2τ) = %gV, want %gV (±2%%)", got, want)
	}
}

func TestFloatingNodeHoldsVoltage(t *testing.T) {
	// A capacitor with only gmin leakage must hold its voltage over a
	// nanosecond-scale simulation — the "floating line" premise of the
	// partial-fault model.
	ckt := circuit.New()
	fl := ckt.Node("float")
	ckt.Add(device.NewCapacitor("C1", fl, 0, 250e-15))
	ckt.Freeze()

	e := MustNewEngine(ckt, DefaultOptions())
	e.SetNodeVoltage("float", 1.7)
	if err := e.Run(100e-9, 100, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := e.Voltage("float"); math.Abs(got-1.7) > 1e-3 {
		t.Errorf("floating node drifted to %gV, want ≈1.7V", got)
	}
}

func TestPWLSourceTransient(t *testing.T) {
	ckt := circuit.New()
	in := ckt.Node("in")
	ramp := device.NewPWL([2]float64{0, 0}, [2]float64{10e-9, 3.3})
	ckt.Add(device.NewVSource("V1", in, 0, ramp))
	ckt.Add(device.NewResistor("Rload", in, 0, 1e6))
	ckt.Freeze()

	e := MustNewEngine(ckt, DefaultOptions())
	if err := e.Run(5e-9, 50, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := e.Voltage("in"); math.Abs(got-1.65) > 1e-6 {
		t.Errorf("PWL at 5ns = %gV, want 1.65V", got)
	}
}

func TestNMOSInverterTransfer(t *testing.T) {
	// NMOS with resistive pull-up: low input → output high;
	// high input → output pulled near ground.
	build := func(vin float64) *Engine {
		ckt := circuit.New()
		vdd := ckt.Node("vdd")
		in := ckt.Node("in")
		out := ckt.Node("out")
		ckt.Add(device.NewVSource("VDD", vdd, 0, device.DC(3.3)))
		ckt.Add(device.NewVSource("VIN", in, 0, device.DC(vin)))
		ckt.Add(device.NewResistor("RL", vdd, out, 10e3))
		p := device.DefaultNMOS()
		p.W = 10e-6
		ckt.Add(device.NewNMOS("M1", out, in, 0, p))
		ckt.Freeze()
		return MustNewEngine(ckt, DefaultOptions())
	}

	eLow := build(0)
	if err := eLow.OperatingPoint(); err != nil {
		t.Fatalf("OP(low): %v", err)
	}
	if got := eLow.Voltage("out"); got < 3.2 {
		t.Errorf("inverter out with Vin=0 = %gV, want ≈3.3V", got)
	}

	eHigh := build(3.3)
	if err := eHigh.OperatingPoint(); err != nil {
		t.Fatalf("OP(high): %v", err)
	}
	if got := eHigh.Voltage("out"); got > 0.3 {
		t.Errorf("inverter out with Vin=3.3 = %gV, want < 0.3V", got)
	}
}

func TestPMOSPullUp(t *testing.T) {
	// PMOS source at VDD, gate at 0 → conducts, pulls output to VDD.
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	gate := ckt.Node("g")
	out := ckt.Node("out")
	ckt.Add(device.NewVSource("VDD", vdd, 0, device.DC(3.3)))
	ckt.Add(device.NewVSource("VG", gate, 0, device.DC(0)))
	p := device.DefaultPMOS()
	p.W = 10e-6
	ckt.Add(device.NewPMOS("M1", out, gate, vdd, p))
	ckt.Add(device.NewResistor("RL", out, 0, 10e3))
	ckt.Freeze()

	e := MustNewEngine(ckt, DefaultOptions())
	if err := e.OperatingPoint(); err != nil {
		t.Fatalf("OP: %v", err)
	}
	if got := e.Voltage("out"); got < 3.0 {
		t.Errorf("PMOS pull-up out = %gV, want ≈3.3V", got)
	}
}

func TestMOSPassTransistorChargesCap(t *testing.T) {
	// The DRAM access-device pattern: NMOS pass gate between a driven
	// bit line and a cell capacitor. With the gate boosted above
	// VDD + Vt the cell must charge to the full bit-line voltage.
	ckt := circuit.New()
	bl := ckt.Node("bl")
	cell := ckt.Node("cell")
	wl := ckt.Node("wl")
	ckt.Add(device.NewVSource("VBL", bl, 0, device.DC(3.3)))
	ckt.Add(device.NewVSource("VWL", wl, 0, device.DC(4.5))) // boosted
	ckt.Add(device.NewNMOS("Mpass", bl, wl, cell, device.DefaultNMOS()))
	ckt.Add(device.NewCapacitor("Ccell", cell, 0, 30e-15))
	ckt.Freeze()

	e := MustNewEngine(ckt, DefaultOptions())
	if err := e.Run(10e-9, 200, nil); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if got := e.Voltage("cell"); got < 3.2 {
		t.Errorf("cell charged to %gV, want ≈3.3V", got)
	}
}

func TestSwitchConnectsAndIsolates(t *testing.T) {
	build := func(ctrl float64) *Engine {
		ckt := circuit.New()
		vdd := ckt.Node("vdd")
		out := ckt.Node("out")
		c := ckt.Node("ctl")
		ckt.Add(device.NewVSource("V1", vdd, 0, device.DC(3.3)))
		ckt.Add(device.NewVSource("VC", c, 0, device.DC(ctrl)))
		ckt.Add(device.NewSwitch("S1", vdd, out, c, 0, 1.65, 100, 1e12))
		ckt.Add(device.NewResistor("RL", out, 0, 10e3))
		ckt.Freeze()
		return MustNewEngine(ckt, DefaultOptions())
	}
	on := build(3.3)
	if err := on.OperatingPoint(); err != nil {
		t.Fatalf("OP(on): %v", err)
	}
	if got := on.Voltage("out"); got < 3.2 {
		t.Errorf("closed switch out = %gV, want ≈3.3V", got)
	}
	off := build(0)
	if err := off.OperatingPoint(); err != nil {
		t.Fatalf("OP(off): %v", err)
	}
	if got := off.Voltage("out"); got > 0.01 {
		t.Errorf("open switch out = %gV, want ≈0V", got)
	}
}

func TestEngineStepPanicsOnBadDt(t *testing.T) {
	ckt, _ := buildDivider()
	e := MustNewEngine(ckt, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Error("Step(0) should panic")
		}
	}()
	_ = e.Step(0)
}

func TestVoltageUnknownNetPanics(t *testing.T) {
	ckt, _ := buildDivider()
	e := MustNewEngine(ckt, DefaultOptions())
	defer func() {
		if recover() == nil {
			t.Error("Voltage(unknown) should panic")
		}
	}()
	e.Voltage("nope")
}

// TestNewEngineRejectsUnfrozenCircuit reproduces the stale-branch-index
// misuse the Frozen guard exists for: building an engine before
// circuit.Freeze would stamp voltage sources through provisional branch
// indices that alias node unknowns once more nets are added. The guard
// turns that silent corruption into a construction-order error.
func TestNewEngineRejectsUnfrozenCircuit(t *testing.T) {
	ckt := circuit.New()
	vdd := ckt.Node("vdd")
	ckt.MustAdd(device.NewVSource("V1", vdd, 0, device.DC(3.3)))
	ckt.Node("late") // added after V1: V1's provisional branch index is now stale
	//lint:ignore branch-freeze this test exists to exercise the run-time guard the rule mirrors
	if _, err := NewEngine(ckt, DefaultOptions()); err == nil {
		t.Fatal("NewEngine must reject an unfrozen circuit")
	}
	ckt.Freeze()
	e, err := NewEngine(ckt, DefaultOptions())
	if err != nil {
		t.Fatalf("NewEngine after Freeze: %v", err)
	}
	if err := e.OperatingPoint(); err != nil {
		t.Fatalf("OperatingPoint: %v", err)
	}
	if got := e.Voltage("vdd"); math.Abs(got-3.3) > 1e-9 {
		t.Errorf("vdd = %gV, want 3.3V", got)
	}
}

func TestNewEngineRejectsEmptyCircuit(t *testing.T) {
	ckt := circuit.New()
	ckt.Freeze()
	if _, err := NewEngine(ckt, DefaultOptions()); err == nil {
		t.Fatal("NewEngine must reject an empty circuit")
	}
}
