package spice

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/device"
)

// randomResistorLadder builds a ladder of n resistors from a source to
// ground and returns the engine plus the source value.
func randomResistorLadder(rng *rand.Rand, vsrc float64) (*Engine, int) {
	ckt := circuit.New()
	src := ckt.Node("src")
	ckt.Add(device.NewVSource("V", src, 0, device.DC(vsrc)))
	n := 2 + rng.Intn(5)
	prev := src
	for i := 0; i < n; i++ {
		next := ckt.Node(nodeName(i))
		ckt.Add(device.NewResistor(resName(i), prev, next, 100+rng.Float64()*10e3))
		prev = next
	}
	ckt.Add(device.NewResistor("Rload", prev, 0, 100+rng.Float64()*10e3))
	ckt.Freeze()
	return MustNewEngine(ckt, DefaultOptions()), n
}

func nodeName(i int) string { return string(rune('a' + i)) }
func resName(i int) string  { return "R" + string(rune('a'+i)) }

// TestLinearScalingProperty: in a purely resistive network, doubling the
// source voltage doubles every node voltage (linearity).
func TestLinearScalingProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := 0.5 + rng.Float64()*5
		e1, n := randomResistorLadder(rand.New(rand.NewSource(seed)), v)
		e2, _ := randomResistorLadder(rand.New(rand.NewSource(seed)), 2*v)
		if e1.OperatingPoint() != nil || e2.OperatingPoint() != nil {
			return false
		}
		for i := 0; i < n; i++ {
			v1 := e1.Voltage(nodeName(i))
			v2 := e2.Voltage(nodeName(i))
			if math.Abs(v2-2*v1) > 1e-6*(1+math.Abs(v1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestVoltageMonotoneAlongLadderProperty: node voltages along a ladder
// from a positive source to ground are non-increasing.
func TestVoltageMonotoneAlongLadderProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e, n := randomResistorLadder(rng, 3.3)
		if e.OperatingPoint() != nil {
			return false
		}
		prev := 3.3
		for i := 0; i < n; i++ {
			v := e.Voltage(nodeName(i))
			if v > prev+1e-9 || v < -1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestChargeConservationProperty: two capacitors connected by a resistor
// conserve total charge while equalizing.
func TestChargeConservationProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c1 := 10e-15 + rng.Float64()*200e-15
		c2 := 10e-15 + rng.Float64()*200e-15
		v1 := rng.Float64() * 3.3
		v2 := rng.Float64() * 3.3
		ckt := circuit.New()
		a := ckt.Node("a")
		b := ckt.Node("b")
		ckt.Add(device.NewCapacitor("C1", a, 0, c1))
		ckt.Add(device.NewCapacitor("C2", b, 0, c2))
		ckt.Add(device.NewResistor("R", a, b, 1e3+rng.Float64()*1e5))
		ckt.Freeze()
		e := MustNewEngine(ckt, DefaultOptions())
		e.SetNodeVoltage("a", v1)
		e.SetNodeVoltage("b", v2)
		q0 := c1*v1 + c2*v2
		if err := e.Run(50e-9, 200, nil); err != nil {
			return false
		}
		q1 := c1*e.Voltage("a") + c2*e.Voltage("b")
		return math.Abs(q1-q0) < 1e-3*q0+1e-20
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
