// Package spice implements the simulation engines that drive the
// netlists in internal/circuit: a Newton–Raphson DC operating-point
// solver and a fixed-step backward-Euler transient engine.
//
// The engine is deliberately small: dense MNA assembly, full Newton with
// a gmin conductance from every node to ground (which also gives
// genuinely floating nets — isolated bit lines behind a resistive open —
// a well-defined, slowly leaking voltage, exactly the "floating line"
// physics the partial-fault paper studies).
package spice

import (
	"errors"
	"fmt"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/numeric"
)

// Options configures the engines. The zero value is not usable; call
// DefaultOptions.
type Options struct {
	// Gmin is the conductance from every node to ground, providing a DC
	// path for floating nets. 1e-12 S leaks a 250 fF bit line with a
	// time constant of ~250 s, i.e. effectively floating at the
	// nanosecond timescale of memory operations.
	Gmin float64
	// MaxNewtonIter bounds the Newton iterations per solve.
	MaxNewtonIter int
	// VTol is the absolute voltage convergence tolerance.
	VTol float64
	// MaxStepVoltage limits the per-iteration voltage update to damp
	// Newton on strongly nonlinear steps (sense-amp regeneration).
	MaxStepVoltage float64
	// Trapezoidal selects trapezoidal integration for reactive elements
	// (second-order accurate) instead of backward Euler (first-order,
	// maximally damped). The DRAM analyses use BE — the stiff defect RC
	// networks favour damping — but the trapezoidal option is validated
	// against analytic responses in the engine tests.
	Trapezoidal bool
}

// DefaultOptions returns the options used throughout the repository.
func DefaultOptions() Options {
	return Options{
		Gmin:           1e-12,
		MaxNewtonIter:  100,
		VTol:           1e-6,
		MaxStepVoltage: 1.0,
	}
}

// ErrNoConvergence is returned when Newton iteration fails to converge.
var ErrNoConvergence = errors.New("spice: Newton iteration did not converge")

// Engine simulates a frozen circuit.
type Engine struct {
	ckt  *circuit.Circuit
	opts Options
	a    *numeric.Matrix
	b    []float64
	x    []float64 // current converged solution
	time float64

	ws    *numeric.Workspace
	xIter []float64
	xNew  []float64
	xPrev []float64
}

// NewEngine creates an engine for the circuit, which must already be
// frozen (circuit.Freeze).
func NewEngine(ckt *circuit.Circuit, opts Options) *Engine {
	n := ckt.Size()
	if n == 0 {
		panic("spice: empty circuit")
	}
	return &Engine{
		ckt:   ckt,
		opts:  opts,
		a:     numeric.NewMatrix(n, n),
		b:     make([]float64, n),
		x:     make([]float64, n),
		ws:    numeric.NewWorkspace(n),
		xIter: make([]float64, n),
		xNew:  make([]float64, n),
		xPrev: make([]float64, n),
	}
}

// Time returns the current simulation time.
func (e *Engine) Time() float64 { return e.time }

// SetTime resets the simulation clock (used when restarting a stimulus
// schedule on a reused engine).
func (e *Engine) SetTime(t float64) { e.time = t }

// Voltage returns the node voltage of the named net in the current
// solution. It panics if the net does not exist.
func (e *Engine) Voltage(net string) float64 {
	idx, ok := e.ckt.NodeIndex(net)
	if !ok {
		panic(fmt.Sprintf("spice: unknown net %q", net))
	}
	return e.voltageAt(idx)
}

func (e *Engine) voltageAt(idx int) float64 {
	if idx == 0 {
		return 0
	}
	return e.x[idx-1]
}

// VoltageFn returns an accessor closure over the current solution,
// suitable for device current queries.
func (e *Engine) VoltageFn() func(int) float64 { return e.voltageAt }

// SetNodeVoltage forcibly sets a node voltage in the engine state. This
// implements the paper's fault-analysis methodology of *initializing
// floating voltages* (Section 2): before applying an operation, the
// analysis overwrites the floating line (bit line, cell node, word line,
// reference cell) with the swept initial value U.
func (e *Engine) SetNodeVoltage(net string, v float64) {
	idx, ok := e.ckt.NodeIndex(net)
	if !ok {
		panic(fmt.Sprintf("spice: unknown net %q", net))
	}
	if idx == 0 {
		panic("spice: cannot set ground voltage")
	}
	e.x[idx-1] = v
	// A forced state change invalidates stored integration state.
	for _, el := range e.ckt.Elements() {
		if r, ok := el.(interface{ ResetState() }); ok {
			r.ResetState()
		}
	}
}

// assemble builds A and b for one Newton iterate.
func (e *Engine) assemble(xIter, xPrev []float64, dt float64) {
	e.a.Zero()
	for i := range e.b {
		e.b[i] = 0
	}
	ctx := &circuit.StampContext{
		A: e.a, B: e.b,
		X: xIter, XPrev: xPrev,
		Dt: dt, Time: e.time,
		Trapezoidal: e.opts.Trapezoidal,
	}
	for _, el := range e.ckt.Elements() {
		el.Stamp(ctx)
	}
	// gmin to ground on every node.
	for n := 0; n < e.ckt.NumNodes(); n++ {
		e.a.Add(n, n, e.opts.Gmin)
	}
}

// newtonSolve iterates to convergence starting from guess, with xPrev as
// the previous-timestep state for companion models. On success the
// engine's solution vector is updated.
func (e *Engine) newtonSolve(guess, xPrev []float64, dt float64) error {
	xIter := e.xIter
	copy(xIter, guess)
	xNew := e.xNew
	nNodes := e.ckt.NumNodes()
	for iter := 0; iter < e.opts.MaxNewtonIter; iter++ {
		e.assemble(xIter, xPrev, dt)
		if err := e.ws.Factorize(e.a); err != nil {
			return fmt.Errorf("spice: %w (iteration %d)", err, iter)
		}
		e.ws.Solve(e.b, xNew)
		// Damp node-voltage updates.
		for i := 0; i < nNodes; i++ {
			d := xNew[i] - xIter[i]
			if d > e.opts.MaxStepVoltage {
				xNew[i] = xIter[i] + e.opts.MaxStepVoltage
			} else if d < -e.opts.MaxStepVoltage {
				xNew[i] = xIter[i] - e.opts.MaxStepVoltage
			}
		}
		delta := numeric.MaxAbsDiff(xNew[:nNodes], xIter[:nNodes])
		copy(xIter, xNew)
		if delta < e.opts.VTol {
			copy(e.x, xIter)
			return nil
		}
	}
	return ErrNoConvergence
}

// OperatingPoint solves the DC operating point (capacitors open) and
// stores it as the current solution.
func (e *Engine) OperatingPoint() error {
	return e.newtonSolve(e.x, e.x, 0)
}

// Step advances the transient solution by dt seconds using backward
// Euler. The previous solution is both the integration state and the
// Newton starting guess.
func (e *Engine) Step(dt float64) error {
	if dt <= 0 {
		panic("spice: Step requires dt > 0")
	}
	xPrev := e.xPrev
	copy(xPrev, e.x)
	e.time += dt
	if err := e.newtonSolve(xPrev, xPrev, dt); err != nil {
		e.time -= dt
		return err
	}
	// Let stateful elements (trapezoidal capacitors) record the step.
	ctx := &circuit.StampContext{
		X: e.x, XPrev: xPrev,
		Dt: dt, Time: e.time,
		Trapezoidal: e.opts.Trapezoidal,
	}
	for _, el := range e.ckt.Elements() {
		if cm, ok := el.(circuit.Committer); ok {
			cm.Commit(ctx)
		}
	}
	return nil
}

// Run advances the transient by duration seconds in n equal steps,
// invoking observe (if non-nil) after every step with the engine.
func (e *Engine) Run(duration float64, n int, observe func(*Engine)) error {
	if n <= 0 {
		panic("spice: Run requires n > 0 steps")
	}
	dt := duration / float64(n)
	for i := 0; i < n; i++ {
		if err := e.Step(dt); err != nil {
			return fmt.Errorf("spice: step %d at t=%.3e: %w", i, e.time, err)
		}
		if observe != nil {
			observe(e)
		}
	}
	return nil
}

// Circuit returns the simulated circuit.
func (e *Engine) Circuit() *circuit.Circuit { return e.ckt }
