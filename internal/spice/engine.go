// Package spice implements the simulation engines that drive the
// netlists in internal/circuit: a Newton–Raphson DC operating-point
// solver and a fixed-step backward-Euler transient engine.
//
// The engine is deliberately small: dense MNA assembly, full Newton with
// a gmin conductance from every node to ground (which also gives
// genuinely floating nets — isolated bit lines behind a resistive open —
// a well-defined, slowly leaking voltage, exactly the "floating line"
// physics the partial-fault paper studies).
//
// Three stacked optimizations make repeated solves cheap without
// changing the physics (see DESIGN.md, "performance layer"):
//
//  1. Grounded-source elimination. Sources wired node-to-ground
//     (circuit.GroundedSource) force their node voltage a priori; the
//     engine removes both the node unknown and the branch-current
//     unknown from the factorized system, substituting the known
//     voltages into the right-hand side. The DRAM column drops from 57
//     to 25 unknowns, cutting the O(n³) factorization by an order of
//     magnitude.
//  2. Static stamp caching. Linear elements (circuit.SplitStamper)
//     stamp their matrix contribution once per dt regime into a cached
//     static matrix that each Newton iteration copies; only nonlinear
//     elements (MOSFETs, switches) restamp per iteration, and the
//     linear right-hand side is rebuilt once per step.
//  3. Newton bypass. The reduced matrix is compared bit-for-bit against
//     the last factorized one (numeric.Workspace.FactorizeCached); when
//     the Jacobian did not change between iterations the LU factors are
//     reused.
package spice

import (
	"errors"
	"fmt"
	"math"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/numeric"
)

// Options configures the engines. The zero value is not usable; call
// DefaultOptions.
type Options struct {
	// Gmin is the conductance from every node to ground, providing a DC
	// path for floating nets. 1e-12 S leaks a 250 fF bit line with a
	// time constant of ~250 s, i.e. effectively floating at the
	// nanosecond timescale of memory operations.
	Gmin float64
	// MaxNewtonIter bounds the Newton iterations per solve.
	MaxNewtonIter int
	// VTol is the absolute voltage convergence tolerance.
	VTol float64
	// MaxStepVoltage limits the per-iteration voltage update to damp
	// Newton on strongly nonlinear steps (sense-amp regeneration).
	MaxStepVoltage float64
	// Trapezoidal selects trapezoidal integration for reactive elements
	// (second-order accurate) instead of backward Euler (first-order,
	// maximally damped). The DRAM analyses use BE — the stiff defect RC
	// networks favour damping — but the trapezoidal option is validated
	// against analytic responses in the engine tests.
	Trapezoidal bool
}

// DefaultOptions returns the options used throughout the repository.
func DefaultOptions() Options {
	return Options{
		Gmin:           1e-12,
		MaxNewtonIter:  100,
		VTol:           1e-6,
		MaxStepVoltage: 1.0,
	}
}

// ErrNoConvergence is returned when Newton iteration fails to converge.
var ErrNoConvergence = errors.New("spice: Newton iteration did not converge")

// resetter is the optional element interface for clearing integration
// state after a forced state change.
type resetter interface{ ResetState() }

// pinnedNode is one eliminated grounded-source node.
type pinnedNode struct {
	node   int // 1-based circuit node index
	branch int // x index of the eliminated branch unknown
	src    circuit.GroundedSource
}

// Engine simulates a frozen circuit.
type Engine struct {
	ckt  *circuit.Circuit
	opts Options
	x    []float64 // current converged solution
	time float64

	ws    *numeric.Workspace
	xIter []float64
	xNew  []float64
	xPrev []float64

	// Element classification, computed once at construction.
	split      []circuit.SplitStamper // linear: cached A, per-step B
	dynamic    []circuit.Element      // nonlinear: restamped per iteration
	committers []circuit.Committer
	stateful   []resetter

	// Grounded-source elimination.
	pinned  []pinnedNode
	free    []int     // reduced position → x index
	rowMap  []int     // x index → reduced position, or -1 if eliminated
	pinnedV []float64 // forced voltages at the current step time
	pinnedX []float64 // same, scattered over global x indexing

	// Cached stamps.
	staticA  *numeric.Matrix // linear part of A (full size), plus gmin
	staticDt float64
	staticOK bool
	stepB    []float64 // linear part of b for the current step

	// Reduced system buffers. aRedS caches the reduced static matrix per
	// dt regime; cStat holds the static couplings of free rows to pinned
	// node columns (nFree × nPinned), folded into bRedBase each step so
	// Newton iterations never revisit the full-size system.
	aRedS    *numeric.Matrix
	cStat    *numeric.Matrix
	aRed     *numeric.Matrix
	bRedBase []float64
	bRed     []float64
	xRed     []float64

	// factorizations and bypasses count LU work for benchmarks.
	factorizations uint64
	bypasses       uint64
}

// NewEngine creates an engine for the circuit. The circuit must already
// be frozen (circuit.Freeze): before Freeze the branch-current indices
// handed out by Add are provisional, and stamping through them would
// silently alias node unknowns. An unfrozen or empty circuit is a
// construction-order bug in the caller, reported as an error.
func NewEngine(ckt *circuit.Circuit, opts Options) (*Engine, error) {
	if !ckt.Frozen() {
		return nil, fmt.Errorf("spice: circuit not frozen: branch indices are provisional until circuit.Freeze is called")
	}
	n := ckt.Size()
	if n == 0 {
		return nil, fmt.Errorf("spice: empty circuit")
	}
	e := &Engine{
		ckt:     ckt,
		opts:    opts,
		x:       make([]float64, n),
		xIter:   make([]float64, n),
		xNew:    make([]float64, n),
		xPrev:   make([]float64, n),
		staticA: numeric.NewMatrix(n, n),
		stepB:   make([]float64, n),
	}
	e.classify()
	if nf := len(e.free); nf > 0 {
		// A circuit can have no free unknowns at all (every node forced
		// by a grounded source); the solve then degenerates to waveform
		// evaluation and needs no factorization buffers.
		e.ws = numeric.NewWorkspace(nf)
		e.aRedS = numeric.NewMatrix(nf, nf)
		e.aRed = numeric.NewMatrix(nf, nf)
		e.bRedBase = make([]float64, nf)
		e.bRed = make([]float64, nf)
		e.xRed = make([]float64, nf)
		if len(e.pinned) > 0 {
			e.cStat = numeric.NewMatrix(nf, len(e.pinned))
		}
	}
	return e, nil
}

// MustNewEngine is NewEngine for circuits known frozen by construction;
// it panics on error. Intended for tests and examples.
func MustNewEngine(ckt *circuit.Circuit, opts Options) *Engine {
	e, err := NewEngine(ckt, opts)
	if err != nil {
		panic(err)
	}
	return e
}

// classify partitions the elements into linear (split-stampable) and
// nonlinear sets, collects committers and stateful elements, and works
// out which unknowns grounded sources eliminate.
func (e *Engine) classify() {
	// A node is only eliminable when exactly one grounded source forces
	// it; two sources on one node is a source loop (netlint flags it)
	// and must keep the legacy branch formulation so the solve exposes
	// the inconsistency instead of silently picking one source.
	forced := map[int]int{}
	for _, el := range e.ckt.Elements() {
		if gs, ok := el.(circuit.GroundedSource); ok {
			if node, _, ok := gs.PinnedNode(); ok {
				forced[node]++
			}
		}
	}
	eliminated := make(map[int]bool) // x indices removed from the solve
	for _, el := range e.ckt.Elements() {
		if cm, ok := el.(circuit.Committer); ok {
			e.committers = append(e.committers, cm)
		}
		if r, ok := el.(resetter); ok {
			e.stateful = append(e.stateful, r)
		}
		if gs, ok := el.(circuit.GroundedSource); ok {
			if node, branch, ok := gs.PinnedNode(); ok && forced[node] == 1 {
				e.pinned = append(e.pinned, pinnedNode{node: node, branch: branch, src: gs})
				eliminated[node-1] = true
				eliminated[branch] = true
				continue // fully replaced by the known voltage; never stamped
			}
		}
		if ss, ok := el.(circuit.SplitStamper); ok {
			e.split = append(e.split, ss)
		} else {
			e.dynamic = append(e.dynamic, el)
		}
	}
	n := e.ckt.Size()
	e.free = make([]int, 0, n-len(eliminated))
	e.rowMap = make([]int, n)
	for i := 0; i < n; i++ {
		if eliminated[i] {
			e.rowMap[i] = -1
		} else {
			e.rowMap[i] = len(e.free)
			e.free = append(e.free, i)
		}
	}
	e.pinnedV = make([]float64, len(e.pinned))
	e.pinnedX = make([]float64, n)
}

// Time returns the current simulation time.
func (e *Engine) Time() float64 { return e.time }

// SetTime resets the simulation clock (used when restarting a stimulus
// schedule on a reused engine).
func (e *Engine) SetTime(t float64) { e.time = t }

// Voltage returns the node voltage of the named net in the current
// solution. It panics if the net does not exist.
func (e *Engine) Voltage(net string) float64 {
	idx, ok := e.ckt.NodeIndex(net)
	if !ok {
		panic(fmt.Sprintf("spice: unknown net %q", net))
	}
	return e.voltageAt(idx)
}

func (e *Engine) voltageAt(idx int) float64 {
	if idx == 0 {
		return 0
	}
	return e.x[idx-1]
}

// VoltageFn returns an accessor closure over the current solution,
// suitable for device current queries.
func (e *Engine) VoltageFn() func(int) float64 { return e.voltageAt }

// SetNodeVoltage forcibly sets a node voltage in the engine state. This
// implements the paper's fault-analysis methodology of *initializing
// floating voltages* (Section 2): before applying an operation, the
// analysis overwrites the floating line (bit line, cell node, word line,
// reference cell) with the swept initial value U.
func (e *Engine) SetNodeVoltage(net string, v float64) {
	idx, ok := e.ckt.NodeIndex(net)
	if !ok {
		panic(fmt.Sprintf("spice: unknown net %q", net))
	}
	if idx == 0 {
		panic("spice: cannot set ground voltage")
	}
	e.x[idx-1] = v
	// A forced state change invalidates stored integration state; the
	// stateful set is precomputed instead of rescanning every element.
	for _, r := range e.stateful {
		r.ResetState()
	}
}

// InvalidateStamps discards the cached static stamp. Callers must invoke
// it after mutating a linear element's parameters in place (e.g.
// Resistor.SetResistance during defect injection); waveform swaps on
// sources do not require it, as the right-hand side is rebuilt each
// step.
func (e *Engine) InvalidateStamps() {
	e.staticOK = false
	if e.ws != nil {
		e.ws.InvalidateCache()
	}
}

// Reset returns the engine to the state of a freshly constructed one:
// zero solution vector, zero clock, element integration state cleared,
// caches dropped. Column pooling uses it to recycle engines across
// sweep grid points.
func (e *Engine) Reset() {
	for i := range e.x {
		e.x[i] = 0
	}
	e.time = 0
	for _, r := range e.stateful {
		r.ResetState()
	}
	e.InvalidateStamps()
}

// State returns a copy of the solution vector and the simulation time —
// together with the element waveforms (owned by the caller's netlist
// layer) the full dynamic state of a backward-Euler transient.
func (e *Engine) State() ([]float64, float64) {
	x := make([]float64, len(e.x))
	copy(x, e.x)
	return x, e.time
}

// RestoreState reinstates a solution vector and clock captured by State.
// Element integration state is cleared, exactly as after a forced node
// initialization; under backward Euler the (x, time, waveforms) triple
// fully determines all subsequent behaviour. It panics under trapezoidal
// integration, where capacitor branch currents are genuine state that
// State does not capture.
func (e *Engine) RestoreState(x []float64, t float64) {
	if e.opts.Trapezoidal {
		panic("spice: RestoreState is only valid under backward Euler")
	}
	if len(x) != len(e.x) {
		panic("spice: RestoreState dimension mismatch")
	}
	copy(e.x, x)
	e.time = t
	for _, r := range e.stateful {
		r.ResetState()
	}
}

// FactorizationCounts returns how many LU factorizations ran and how
// many were bypassed because the Jacobian was unchanged.
func (e *Engine) FactorizationCounts() (factorized, bypassed uint64) {
	return e.factorizations, e.bypasses
}

// refreshStatic rebuilds the cached static stamp when the dt regime
// changed or the cache was invalidated. Under trapezoidal integration
// capacitor companion conductances depend on per-step element state, so
// the static stamp is rebuilt every solve.
func (e *Engine) refreshStatic(dt float64) {
	if e.staticOK && math.Float64bits(dt) == math.Float64bits(e.staticDt) && !e.opts.Trapezoidal {
		return
	}
	e.staticA.Zero()
	ctx := &circuit.StampContext{
		A: e.staticA, Dt: dt, Trapezoidal: e.opts.Trapezoidal,
	}
	for _, el := range e.split {
		el.StampStaticA(ctx)
	}
	// gmin to ground on every node.
	for n := 0; n < e.ckt.NumNodes(); n++ {
		e.staticA.Add(n, n, e.opts.Gmin)
	}
	// Project the full-size static stamp onto the reduced system once per
	// regime: the free-by-free block and the couplings to pinned columns.
	for fi, gi := range e.free {
		row := e.staticA.Row(gi)
		rr := e.aRedS.Row(fi)
		for fj, gj := range e.free {
			rr[fj] = row[gj]
		}
		if e.cStat != nil {
			cr := e.cStat.Row(fi)
			for k, p := range e.pinned {
				cr[k] = row[p.node-1]
			}
		}
	}
	e.staticDt = dt
	e.staticOK = true
}

// buildStepB rebuilds the linear right-hand side for the current step
// and evaluates the pinned node voltages at the step time.
func (e *Engine) buildStepB(xPrev []float64, dt float64) {
	for i := range e.stepB {
		e.stepB[i] = 0
	}
	ctx := &circuit.StampContext{
		B: e.stepB, XPrev: xPrev,
		Dt: dt, Time: e.time,
		Trapezoidal: e.opts.Trapezoidal,
	}
	for _, el := range e.split {
		el.StampStepB(ctx)
	}
	for i, p := range e.pinned {
		v := p.src.PinnedValue(e.time)
		e.pinnedV[i] = v
		e.pinnedX[p.node-1] = v
	}
	// Fold the step RHS and the static pinned couplings into the reduced
	// base vector; each Newton iteration copies it and adds only the
	// nonlinear contributions.
	for fi, gi := range e.free {
		s := e.stepB[gi]
		if e.cStat != nil {
			cr := e.cStat.Row(fi)
			for k := range e.pinned {
				s -= cr[k] * e.pinnedV[k]
			}
		}
		e.bRedBase[fi] = s
	}
}

// newtonSolve iterates to convergence starting from guess, with xPrev as
// the previous-timestep state for companion models. On success the
// engine's solution vector is updated.
func (e *Engine) newtonSolve(guess, xPrev []float64, dt float64) error {
	e.refreshStatic(dt)
	e.buildStepB(xPrev, dt)
	xIter := e.xIter
	copy(xIter, guess)
	for k, p := range e.pinned {
		xIter[p.node-1] = e.pinnedV[k]
		xIter[p.branch] = 0
	}
	xNew := e.xNew
	nNodes := e.ckt.NumNodes()
	// Nonlinear elements stamp straight into the reduced system through
	// the RowMap/PinnedX indirection; the full-size matrix is never
	// touched inside the Newton loop.
	ctx := &circuit.StampContext{
		A: e.aRed, B: e.bRed,
		X: xIter, XPrev: xPrev,
		Dt: dt, Time: e.time,
		Trapezoidal: e.opts.Trapezoidal,
		RowMap:      e.rowMap,
		PinnedX:     e.pinnedX,
	}
	for iter := 0; iter < e.opts.MaxNewtonIter; iter++ {
		if len(e.free) > 0 {
			e.aRed.CopyFrom(e.aRedS)
			copy(e.bRed, e.bRedBase)
			for _, el := range e.dynamic {
				el.Stamp(ctx)
			}
			reused, err := e.ws.FactorizeCached(e.aRed)
			if err != nil {
				return fmt.Errorf("spice: %w (iteration %d)", err, iter)
			}
			if reused {
				e.bypasses++
			} else {
				e.factorizations++
			}
			e.ws.Solve(e.bRed, e.xRed)
			for fi, gi := range e.free {
				xNew[gi] = e.xRed[fi]
			}
		}
		for k, p := range e.pinned {
			xNew[p.node-1] = e.pinnedV[k]
			xNew[p.branch] = 0
		}
		// Damp node-voltage updates.
		for i := 0; i < nNodes; i++ {
			d := xNew[i] - xIter[i]
			if d > e.opts.MaxStepVoltage {
				xNew[i] = xIter[i] + e.opts.MaxStepVoltage
			} else if d < -e.opts.MaxStepVoltage {
				xNew[i] = xIter[i] - e.opts.MaxStepVoltage
			}
		}
		delta := numeric.MaxAbsDiff(xNew[:nNodes], xIter[:nNodes])
		copy(xIter, xNew)
		if delta < e.opts.VTol {
			copy(e.x, xIter)
			return nil
		}
	}
	return ErrNoConvergence
}

// OperatingPoint solves the DC operating point (capacitors open) and
// stores it as the current solution.
func (e *Engine) OperatingPoint() error {
	return e.newtonSolve(e.x, e.x, 0)
}

// Step advances the transient solution by dt seconds using backward
// Euler. The previous solution is both the integration state and the
// Newton starting guess.
func (e *Engine) Step(dt float64) error {
	if dt <= 0 {
		panic("spice: Step requires dt > 0")
	}
	xPrev := e.xPrev
	copy(xPrev, e.x)
	e.time += dt
	if err := e.newtonSolve(xPrev, xPrev, dt); err != nil {
		e.time -= dt
		return err
	}
	if len(e.committers) > 0 {
		// Let stateful elements (trapezoidal capacitors) record the step.
		ctx := &circuit.StampContext{
			X: e.x, XPrev: xPrev,
			Dt: dt, Time: e.time,
			Trapezoidal: e.opts.Trapezoidal,
		}
		for _, cm := range e.committers {
			cm.Commit(ctx)
		}
	}
	return nil
}

// Run advances the transient by duration seconds in n equal steps,
// invoking observe (if non-nil) after every step with the engine.
func (e *Engine) Run(duration float64, n int, observe func(*Engine)) error {
	if n <= 0 {
		panic("spice: Run requires n > 0 steps")
	}
	dt := duration / float64(n)
	for i := 0; i < n; i++ {
		if err := e.Step(dt); err != nil {
			return fmt.Errorf("spice: step %d at t=%.3e: %w", i, e.time, err)
		}
		if observe != nil {
			observe(e)
		}
	}
	return nil
}

// Circuit returns the simulated circuit.
func (e *Engine) Circuit() *circuit.Circuit { return e.ckt }
