// Package bitsim is the bit-plane march engine: 64 detection scenarios
// live in one machine word and march operations become word-wide
// bitwise kernels instead of the scalar simulator's per-cell hook
// dispatch.
//
// The engine exploits the structure of guarantee-semantics evaluation:
// scenario v is "the fault injected at victim v", and in any scenario
// every non-victim cell follows the same fault-free trajectory, because
// a march element applies identical operations at every address and the
// single injected fault only touches its victim. The fault-free array
// state is therefore a scalar per operation step, and the only
// per-scenario state is the victim cell itself plus the hidden line
// state *as seen by the victim* — a handful of ternary bit planes
// indexed by victim lane. One walk over the test's elements evaluates
// all N victims at once in O(len·N/64) word operations, against the
// scalar engine's O(len·N²) cell operations.
//
// Lanes shard into word-aligned blocks evaluated concurrently on a
// bounded worker pool; the per-shard detection bitmaps merge into
// disjoint word ranges, so reduction order cannot change the result.
// The scalar memsim engine remains the differential oracle: the
// equivalence suite proves both engines produce identical verdicts for
// every library test × catalog entry on all shared geometries.
package bitsim

import "math/bits"

// plane is a ternary (0/1/X) value per lane, packed as value and known
// bitmaps: lane i holds X when k's bit is clear, else v's bit.
type plane struct {
	v, k []uint64
}

func newPlane(w int) plane {
	return plane{v: make([]uint64, w), k: make([]uint64, w)}
}

// setConst sets every lane to t (0, 1 or X).
func (p plane) setConst(t int) {
	switch t {
	case 0:
		wzero(p.v)
		wfill(p.k)
	case 1:
		wfill(p.v)
		wfill(p.k)
	default:
		wzero(p.v)
		wzero(p.k)
	}
}

// eq writes the lanes where p is known and equals the bit want.
func (p plane) eq(want int, dst []uint64) {
	if want == 1 {
		for i := range dst {
			dst[i] = p.k[i] & p.v[i]
		}
	} else {
		for i := range dst {
			dst[i] = p.k[i] &^ p.v[i]
		}
	}
}

// setConstWhere sets the lanes selected by mask to t, keeping the rest.
func (p plane) setConstWhere(mask []uint64, t int) {
	switch t {
	case 0:
		for i := range mask {
			p.v[i] &^= mask[i]
			p.k[i] |= mask[i]
		}
	case 1:
		for i := range mask {
			p.v[i] |= mask[i]
			p.k[i] |= mask[i]
		}
	default:
		for i := range mask {
			p.v[i] &^= mask[i]
			p.k[i] &^= mask[i]
		}
	}
}

// setPlaneWhere copies q into the lanes selected by mask.
func (p plane) setPlaneWhere(mask []uint64, q plane) {
	for i := range mask {
		p.v[i] = (p.v[i] &^ mask[i]) | (q.v[i] & mask[i])
		p.k[i] = (p.k[i] &^ mask[i]) | (q.k[i] & mask[i])
	}
}

func (p plane) copyFrom(q plane) {
	copy(p.v, q.v)
	copy(p.k, q.k)
}

func wzero(d []uint64) {
	for i := range d {
		d[i] = 0
	}
}

func wfill(d []uint64) {
	for i := range d {
		d[i] = ^uint64(0)
	}
}

// wand, wor, wandnot fold s into d.
func wand(d, s []uint64) {
	for i := range d {
		d[i] &= s[i]
	}
}

func wor(d, s []uint64) {
	for i := range d {
		d[i] |= s[i]
	}
}

func wandnot(d, s []uint64) {
	for i := range d {
		d[i] &^= s[i]
	}
}

// wnot writes the complement of s into d.
func wnot(d, s []uint64) {
	for i := range d {
		d[i] = ^s[i]
	}
}

func popcount(d []uint64) int {
	n := 0
	for _, w := range d {
		n += bits.OnesCount64(w)
	}
	return n
}
