package bitsim

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/memsim"
)

// Two-cell coupling faults evaluate per aggressor *offset*: one pass
// over the lanes handles every (victim v, aggressor v+δ) pair at once.
// The aggressor cell is always fault-free, so its value is a scalar
// whose phase depends only on whether the walk visits the aggressor
// before or after the victim — (order == Up) == (δ < 0) — which is
// uniform across lanes for a fixed δ. Shifted range masks express the
// per-lane boundary cases (aggressor at the walk edge, aggressor's
// column position), keeping the kernels word-parallel.

// tcSpec is the compiled two-cell fault: the memsim spec plus the
// primitive it was compiled from.
type tcSpec struct {
	kind fp.CFKind
	trig memsim.TriggerKind
	comp int
	p    fp.TwoCellFP
}

func compileTwoCell(entry march.TwoCellCatalogEntry) (tcSpec, error) {
	c, err := memsim.CompileTwoCellFault(entry.Make(0, 1))
	if err != nil {
		return tcSpec{}, err
	}
	if c.Kind == fp.CFst && (c.Trig == memsim.TrigBitLine || c.Trig == memsim.TrigIO) {
		// State coupling is evaluated after every operation has driven
		// the lines; the catalog deliberately has no line-mediated CFst
		// (see memsim/twocell.go), and the bit-plane engine does not
		// model the combination rather than risk a silent divergence.
		// Wrapping ErrEngineUnsupported lets harnesses fall back to the
		// scalar oracle for just this entry instead of aborting.
		return tcSpec{}, fmt.Errorf("bitsim: line-mediated CFst (%s): %w", entry.Name, march.ErrEngineUnsupported)
	}
	return tcSpec{kind: c.Kind, trig: c.Trig, comp: c.Comp, p: entry.FP}, nil
}

// tcRun evaluates one compiled coupling fault for one aggressor offset
// over all victim lanes of a shard, for one order assignment.
type tcRun struct {
	g     geom
	sh    shard
	s     tcSpec
	delta int
	up    orderMasks
	down  orderMasks

	V, BL, IO plane
	// lineAgg is the mediating line value as seen at aggressor
	// operations (bit line or IO path, per the trigger kind).
	lineAgg plane
	out     plane
	det     []uint64
	// valid masks lanes whose aggressor v+δ is inside the array.
	valid          []uint64
	t1, t2, t3, t4 []uint64
}

func newTCRun(g geom, sh shard, s tcSpec, delta int) *tcRun {
	w := sh.w
	r := &tcRun{
		g: g, sh: sh, s: s, delta: delta,
		up:   masksFor(g, sh, march.Up),
		down: masksFor(g, sh, march.Down),
		V:    newPlane(w), BL: newPlane(w), IO: newPlane(w),
		lineAgg: newPlane(w), out: newPlane(w),
		det: make([]uint64, w), valid: make([]uint64, w),
		t1: make([]uint64, w), t2: make([]uint64, w),
		t3: make([]uint64, w), t4: make([]uint64, w),
	}
	r.V.setConst(memsim.X)
	r.BL.setConst(memsim.X)
	r.IO.setConst(memsim.X)
	sh.rangeMask(-delta, g.n-delta, r.valid)
	return r
}

func (r *tcRun) masks(o march.Order) orderMasks {
	if o == march.Down {
		return r.down
	}
	return r.up
}

// armedNow writes the mediating-line trigger mask at the victim's
// current line view (pre-operation, as the fire hooks see it).
func (r *tcRun) armedNow(dst []uint64) {
	switch r.s.trig {
	case memsim.TrigAlways:
		wfill(dst)
	case memsim.TrigBitLine:
		r.BL.eq(r.s.comp, dst)
	case memsim.TrigIO:
		r.IO.eq(r.s.comp, dst)
	default:
		wzero(dst)
	}
}

// cfstCheck applies state coupling at an operation-period checkpoint:
// the aggressor holds aggVal (a fault-free scalar), the victim plane is
// current. Re-checking an unchanged (aggressor, victim) condition is
// idempotent, so checkpoints only need to cover every distinct phase.
func (r *tcRun) cfstCheck(aggVal int) {
	if r.s.kind != fp.CFst || r.s.trig != memsim.TrigAlways {
		return
	}
	if aggVal != r.s.p.AggState {
		return
	}
	r.V.eq(r.s.p.VictimState, r.t1)
	wand(r.t1, r.valid)
	r.V.setConstWhere(r.t1, r.s.p.F)
}

// aggOpMatches mirrors memsim's fireAggressorOp operation gate for a
// fault-free aggressor with pre-operation value fpre.
func (r *tcRun) aggOpMatches(op ffOp, fpre int) bool {
	ao := r.s.p.AggOp
	if (ao.Kind == fp.OpWrite) != !op.read {
		return false
	}
	if fpre != r.s.p.AggState {
		return false
	}
	if ao.Kind == fp.OpWrite && ao.Data != op.data {
		return false
	}
	if ao.Kind == fp.OpRead && fpre != ao.Data {
		return false
	}
	return true
}

// colPredMask writes the lanes whose column contains at least one
// address the walk visits before the aggressor — the different-column
// arrival condition for the victim's bit line as seen at aggressor
// operations. The condition is row-uniform, hence a contiguous range.
func (r *tcRun) colPredMask(o march.Order, dst []uint64) {
	cols, rows := r.g.cols, r.g.rows
	if o == march.Up {
		// δ < 0 here: a column predecessor exists iff row(v)·cols > -δ.
		r0 := (-r.delta)/cols + 1
		r.sh.rangeMask(r0*cols, r.g.n, dst)
	} else {
		// δ > 0 here: one exists iff (rows-1-row(v))·cols > δ.
		rMax := rows - 2 - r.delta/cols
		r.sh.rangeMask(0, (rMax+1)*cols, dst)
	}
}

// aggLineArrive computes the mediating line value each lane's trigger
// sees when its aggressor's pass begins. before says whether the walk
// visits the aggressor before the victim.
func (r *tcRun) aggLineArrive(e ffElem, before bool) {
	tail := e.tail
	d := r.delta
	abs := d
	if abs < 0 {
		abs = -abs
	}
	if r.s.trig == memsim.TrigIO {
		if before {
			// Every predecessor of the aggressor is fault-free.
			if tail == memsim.X {
				r.lineAgg.copyFrom(r.IO)
				return
			}
			r.lineAgg.setConst(tail)
			// The lane whose aggressor is walk-first keeps the carry.
			r.sh.bitMask(r.g.firstAddr(e.order)-d, r.t4)
			r.lineAgg.setPlaneWhere(r.t4, r.IO)
		} else {
			// The victim's own pass is among the predecessors; a full
			// fault-free pass sits in between iff the walk distance
			// exceeds one.
			if abs >= 2 && tail != memsim.X {
				r.lineAgg.setConst(tail)
			} else {
				r.lineAgg.copyFrom(r.IO)
			}
		}
		return
	}
	// TrigBitLine.
	cols := r.g.cols
	if d%cols == 0 {
		// Same column: aggressor operations drive the victim's bit line.
		if before {
			if tail == memsim.X {
				r.lineAgg.copyFrom(r.BL)
				return
			}
			r.lineAgg.setConst(tail)
			// Lanes whose aggressor sits in the first-visited row have no
			// column predecessor and keep the carry.
			a, b := r.g.firstRowRange(e.order)
			r.sh.rangeMask(a-d, b-d, r.t4)
			r.lineAgg.setPlaneWhere(r.t4, r.BL)
		} else {
			// A fault-free same-column pass sits between victim and
			// aggressor iff they are at least two rows apart.
			if abs >= 2*cols && tail != memsim.X {
				r.lineAgg.setConst(tail)
			} else {
				r.lineAgg.copyFrom(r.BL)
			}
		}
		return
	}
	// Different column: aggressor operations never drive the victim's
	// bit line, so the arrival value holds through the aggressor pass.
	if before {
		r.lineAgg.copyFrom(r.BL)
		if tail != memsim.X {
			r.colPredMask(e.order, r.t4)
			r.lineAgg.setConstWhere(r.t4, tail)
		}
	} else {
		// The victim itself is a column predecessor; a fault-free
		// column pass sits in between iff the walk distance exceeds the
		// column period.
		if abs > cols && tail != memsim.X {
			r.lineAgg.setConst(tail)
		} else {
			r.lineAgg.copyFrom(r.BL)
		}
	}
}

// aggPass runs the aggressor's pass: CFds fires at matching aggressor
// operations, CFst checks every operation period the aggressor's value
// changes through.
func (r *tcRun) aggPass(e ffElem, before bool) {
	needDs := r.s.kind == fp.CFds && r.s.p.AggOp != nil && r.s.trig != memsim.TrigNever
	needSt := r.s.kind == fp.CFst && r.s.trig == memsim.TrigAlways
	if !needDs && !needSt {
		return
	}
	lineTrig := r.s.trig == memsim.TrigBitLine || r.s.trig == memsim.TrigIO
	if needDs && lineTrig {
		r.aggLineArrive(e, before)
	}
	sameCol := r.delta%r.g.cols == 0
	if needSt && before {
		// Element-boundary phase (idempotent with the previous element's
		// last checkpoint).
		r.cfstCheck(e.ops[0].pre)
	}
	for _, op := range e.ops {
		fpre := op.pre
		if needDs && r.aggOpMatches(op, fpre) {
			fire := r.t1
			if lineTrig {
				r.lineAgg.eq(r.s.comp, fire)
			} else {
				wfill(fire)
			}
			r.V.eq(r.s.p.VictimState, r.t2)
			wand(fire, r.t2)
			wand(fire, r.valid)
			r.V.setConstWhere(fire, r.s.p.F)
		}
		if needDs && lineTrig && op.driven != memsim.X {
			// The operation drives the IO path always, the victim's bit
			// line only from the same column.
			if r.s.trig == memsim.TrigIO || sameCol {
				r.lineAgg.setConst(op.driven)
			}
		}
		if needSt {
			r.cfstCheck(op.post)
		}
	}
}

// victimPass runs the victim's own pass with the aggressor frozen at
// its phase value.
func (r *tcRun) victimPass(e ffElem, aggVal int) {
	p := &r.s.p
	aggMatch := aggVal == p.AggState
	for _, op := range e.ops {
		fire := r.t2
		wzero(fire)
		if !op.read {
			if (r.s.kind == fp.CFtr || r.s.kind == fp.CFwd) && p.VictimOp != nil &&
				p.VictimOp.Kind == fp.OpWrite && p.VictimOp.Data == op.data && aggMatch {
				r.armedNow(r.t1)
				r.V.eq(p.VictimState, fire)
				wand(fire, r.t1)
				wand(fire, r.valid)
			}
			r.V.setConst(op.data)
			r.V.setConstWhere(fire, p.F)
			r.BL.setConst(op.data)
			r.IO.setConst(op.data)
		} else {
			if (r.s.kind == fp.CFrd || r.s.kind == fp.CFdr || r.s.kind == fp.CFir) && p.VictimOp != nil &&
				p.VictimOp.Kind == fp.OpRead && p.VictimOp.Data == op.data && aggMatch {
				r.armedNow(r.t1)
				r.V.eq(op.data, fire)
				wand(fire, r.t1)
				r.V.eq(p.VictimState, r.t3)
				wand(fire, r.t3)
				wand(fire, r.valid)
			}
			r.out.copyFrom(r.V)
			if rb, ok := p.R.Bit(); ok {
				r.out.setConstWhere(fire, rb)
			}
			r.V.setConstWhere(fire, p.F)
			r.out.eq(1-op.data, r.t3)
			wor(r.det, r.t3)
			r.BL.setPlaneWhere(r.V.k, r.V)
			r.IO.setPlaneWhere(r.out.k, r.out)
		}
		r.cfstCheck(aggVal)
	}
}

func (r *tcRun) element(e ffElem) {
	m := r.masks(e.order)
	aggBefore := (e.order == march.Up) == (r.delta < 0)
	if aggBefore {
		r.aggPass(e, true)
		arriveLines(r.BL, r.IO, e, m, r.t1)
		r.victimPass(e, e.ops[len(e.ops)-1].post)
	} else {
		r.cfstCheck(e.ops[0].pre)
		arriveLines(r.BL, r.IO, e, m, r.t1)
		r.victimPass(e, e.ops[0].pre)
		r.aggPass(e, false)
	}
	endLines(r.BL, r.IO, e, m, r.t1)
}

// runTwoCell evaluates one (assignment, offset) detection bitmap for a
// shard: bit (v - sh.lo) set means the pair (v, v+δ) was caught.
func runTwoCell(g geom, sh shard, s tcSpec, delta int, elems []ffElem) []uint64 {
	r := newTCRun(g, sh, s, delta)
	ffMM := false
	for _, e := range elems {
		r.element(e)
		ffMM = ffMM || e.mm
	}
	if ffMM {
		// Pair scenarios always have a fault-free non-victim cell.
		wfill(r.det)
	}
	wand(r.det, r.valid)
	return r.det
}

// DetectsTwoCell evaluates a two-cell catalog entry over all ordered
// (victim, aggressor) pairs and ⇕-order assignments, with verdicts
// identical to the scalar engine's. Every offset δ ∈ [-(n-1), n-1]\{0}
// runs as its own plane pass, so this is exact but O(n) passes; for
// megabit geometries use DetectsTwoCellOffsets with a neighbor set.
func (e *Engine) DetectsTwoCell(t march.Test, rows, cols int, entry march.TwoCellCatalogEntry) (march.Detection, error) {
	g, err := checkGeometry(t, rows, cols)
	if err != nil {
		return march.Detection{}, err
	}
	offsets := make([]int, 0, 2*(g.n-1))
	for d := -(g.n - 1); d <= g.n-1; d++ {
		if d != 0 {
			offsets = append(offsets, d)
		}
	}
	return e.detectsTwoCellOffsets(g, t, entry, offsets)
}

// DetectsTwoCellOffsets evaluates a two-cell entry restricted to the
// given aggressor offsets (aggressor = victim + δ; δ = ±1 and ±cols
// cover physical neighbors). Scenarios counts only in-array pairs.
func (e *Engine) DetectsTwoCellOffsets(t march.Test, rows, cols int, entry march.TwoCellCatalogEntry, offsets []int) (march.Detection, error) {
	g, err := checkGeometry(t, rows, cols)
	if err != nil {
		return march.Detection{}, err
	}
	seen := map[int]bool{}
	for _, d := range offsets {
		if d == 0 {
			return march.Detection{}, fmt.Errorf("bitsim: aggressor offset must be non-zero")
		}
		if seen[d] {
			return march.Detection{}, fmt.Errorf("bitsim: duplicate aggressor offset %d", d)
		}
		seen[d] = true
	}
	return e.detectsTwoCellOffsets(g, t, entry, offsets)
}

func (e *Engine) detectsTwoCellOffsets(g geom, t march.Test, entry march.TwoCellCatalogEntry, offsets []int) (march.Detection, error) {
	s, err := compileTwoCell(entry)
	if err != nil {
		return march.Detection{}, err
	}
	if len(offsets) == 0 || g.n < 2 {
		return march.Detection{}, nil
	}
	assignments := t.OrderAssignments()
	traces := make([][]ffElem, len(assignments))
	for i, orders := range assignments {
		traces[i] = ffTrace(t, resolveOrders(t, orders))
	}
	bitmaps := e.runSharded(g, len(assignments)*len(offsets), func(row int, sh shard) []uint64 {
		ai, oi := row/len(offsets), row%len(offsets)
		return runTwoCell(g, sh, s, offsets[oi], traces[ai])
	})
	caught, total := 0, 0
	for _, bm := range bitmaps {
		caught += popcount(bm)
	}
	for _, d := range offsets {
		abs := d
		if abs < 0 {
			abs = -abs
		}
		if c := g.n - abs; c > 0 {
			total += c * len(assignments)
		}
	}
	return march.Detection{Detected: caught == total && total > 0, Caught: caught, Scenarios: total}, nil
}
