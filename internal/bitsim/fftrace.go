package bitsim

import (
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/memsim"
)

// ffOp is one operation of the fault-free trace. Because a march
// element applies the same operations at every address and a single
// injected fault only touches its victim, every non-victim cell follows
// this one scalar trajectory — the collapse that makes the bit-plane
// engine linear instead of quadratic.
type ffOp struct {
	read bool
	data int
	// pre and post are the fault-free cell value around the operation.
	pre, post int
	// driven is the value the operation leaves on the lines it touches
	// (writes drive their data, reads the restored cell value); X drives
	// nothing, matching memsim's unknown-preserving line updates.
	driven int
}

// ffElem is one element's fault-free trace under a concrete order.
type ffElem struct {
	order march.Order
	ops   []ffOp
	// tail is the last known driven value of one full pass (X if the
	// whole pass drives nothing known): the line value any lane inherits
	// from a completed fault-free predecessor pass.
	tail int
	// mm records a fault-free read mismatch in this element: a read
	// whose expected value differs from a *known* fault-free cell value.
	// Uniformity makes it fire at every address, so any scenario on an
	// array with a second cell is caught.
	mm bool
}

// resolveOrders fixes each element's concrete order under a ⇕
// assignment, mirroring Test.Run's occurrence indexing.
func resolveOrders(t march.Test, anyOrders []march.Order) []march.Order {
	out := make([]march.Order, len(t.Elements))
	anyIdx := 0
	for i, e := range t.Elements {
		order := e.Order
		if order == march.Any {
			order = march.Up
			if anyIdx < len(anyOrders) && anyOrders[anyIdx] == march.Down {
				order = march.Down
			}
			anyIdx++
		}
		out[i] = order
	}
	return out
}

// ffTrace computes the per-element fault-free traces of a test under a
// concrete order assignment.
func ffTrace(t march.Test, orders []march.Order) []ffElem {
	out := make([]ffElem, len(t.Elements))
	state := memsim.X
	for i, e := range t.Elements {
		fe := ffElem{order: orders[i], tail: memsim.X}
		for _, op := range e.Ops {
			fo := ffOp{read: op.Read, data: op.Data, pre: state}
			if op.Read {
				fo.driven = state
				if state != memsim.X && state != op.Data {
					fe.mm = true
				}
			} else {
				state = op.Data
				fo.driven = op.Data
			}
			fo.post = state
			fe.ops = append(fe.ops, fo)
			if fo.driven != memsim.X {
				fe.tail = fo.driven
			}
		}
		out[i] = fe
	}
	return out
}
