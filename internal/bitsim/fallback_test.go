package bitsim

import (
	"errors"
	"testing"

	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/march"
)

// lineMediatedCFst builds the fault-entry shape the bit-plane engine
// deliberately does not model: state coupling gated by a floating bit
// line. The standard catalog excludes it by design, but the entry is
// injectable through the public API, and memsim defines its semantics —
// so harnesses must fall back to the scalar oracle, not abort.
func lineMediatedCFst() march.TwoCellCatalogEntry {
	comp := fp.CWBL(0)
	return march.TwoCellCatalogEntry{
		Name:    "CFst partial (bit line) <1;0/1> test-only",
		FP:      fp.TwoCellFP{AggState: 1, VictimState: 0, F: 1},
		Comp:    &comp,
		Float:   defect.FloatBitLine,
		Partial: true,
	}
}

func TestLineMediatedCFstReportsUnsupported(t *testing.T) {
	eng := New()
	_, err := eng.DetectsTwoCell(march.MATSPlus(), 2, 2, lineMediatedCFst())
	if err == nil {
		t.Fatal("line-mediated CFst did not error")
	}
	if !errors.Is(err, march.ErrEngineUnsupported) {
		t.Fatalf("error %v does not wrap march.ErrEngineUnsupported", err)
	}
	_, err = eng.DetectsTwoCellOffsets(march.MATSPlus(), 2, 2, lineMediatedCFst(), []int{1, -1})
	if !errors.Is(err, march.ErrEngineUnsupported) {
		t.Fatalf("offsets path: error %v does not wrap march.ErrEngineUnsupported", err)
	}
}

// TestCertificateFallsBackForLineMediatedCFst is the end-to-end bugfix
// test: before the per-entry fallback, one such entry aborted the whole
// TwoCellCertificateWith run under the bit-plane engine.
func TestCertificateFallsBackForLineMediatedCFst(t *testing.T) {
	test := march.MATSPlus()
	catalog := append(march.TwoCellCatalog()[:3], lineMediatedCFst())
	eng := New()
	cert, err := march.TwoCellCertificateWith(eng, test, catalog, 2, 2)
	if err != nil {
		t.Fatalf("certificate aborted on the unsupported entry: %v", err)
	}
	if len(cert.Entries) != len(catalog) {
		t.Fatalf("%d rows, want %d", len(cert.Entries), len(catalog))
	}
	for i, row := range cert.Entries {
		want := eng.Name()
		if i == len(catalog)-1 {
			want = march.ScalarEngine{}.Name()
		}
		if row.Engine != want {
			t.Fatalf("row %d (%s) engine = %q, want %q", i, row.Entry, row.Engine, want)
		}
	}
	// The fallback row must carry the scalar oracle's verdict.
	det, caught, total, err := march.DetectsTwoCellEntry(test, 2, 2, lineMediatedCFst())
	if err != nil {
		t.Fatal(err)
	}
	last := cert.Entries[len(cert.Entries)-1]
	if last.Detected != det || last.Caught != caught || last.Scenarios != total {
		t.Fatalf("fallback row %+v, oracle (%v %d/%d)", last, det, caught, total)
	}
}

// TestTwoCellOffsetsScalarBitsimEquivalence differentially checks the
// new scalar offsets walk against the bit-plane offsets engine on a
// physical-neighbor set.
func TestTwoCellOffsetsScalarBitsimEquivalence(t *testing.T) {
	rows, cols := 4, 4
	offsets := []int{1, -1, cols, -cols}
	eng := New()
	scalar := march.ScalarEngine{}
	for _, test := range []march.Test{march.MATSPlus(), march.MarchCMinus()} {
		for _, e := range march.TwoCellCatalog()[:6] {
			want, err := scalar.DetectsTwoCellOffsets(test, rows, cols, e, offsets)
			if err != nil {
				t.Fatal(err)
			}
			got, err := eng.DetectsTwoCellOffsets(test, rows, cols, e, offsets)
			if err != nil {
				t.Fatal(err)
			}
			if want != got {
				t.Errorf("%s × %s: scalar %+v, bitsim %+v", test.Name, e.Name, want, got)
			}
		}
	}
}

// TestTwoCellCertificateOffsetsWithBitsim drives the offsets-restricted
// certificate through the bit-plane engine, mixing in the unsupported
// entry so both new paths compose.
func TestTwoCellCertificateOffsetsWithBitsim(t *testing.T) {
	test := march.MATSPlus()
	catalog := append(march.TwoCellCatalog()[:2], lineMediatedCFst())
	offsets := []int{1, -1}
	eng := New()
	cert, err := march.TwoCellCertificateOffsetsWith(eng, test, catalog, 3, 3, offsets)
	if err != nil {
		t.Fatal(err)
	}
	for i, row := range cert.Entries {
		det, caught, total, err := march.DetectsTwoCellEntryOffsets(test, 3, 3, catalog[i], offsets)
		if err != nil {
			t.Fatal(err)
		}
		if row.Detected != det || row.Caught != caught || row.Scenarios != total {
			t.Fatalf("row %d (%s): %+v vs scalar (%v %d/%d)", i, row.Entry, row, det, caught, total)
		}
	}
	if last := cert.Entries[len(cert.Entries)-1]; last.Engine != (march.ScalarEngine{}).Name() {
		t.Fatalf("unsupported entry engine = %q", last.Engine)
	}
}
