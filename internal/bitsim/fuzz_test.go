package bitsim

import (
	"testing"

	"github.com/memtest/partialfaults/internal/march"
)

// FuzzBitsimEquivalence throws parser-accepted march tests at both
// engines on small geometries and demands identical verdicts for a
// fuzz-chosen catalog entry. Anything Parse accepts is fair game —
// including degenerate tests the library would never ship.
func FuzzBitsimEquivalence(f *testing.F) {
	f.Add("{m(w0); u(r0,w1); d(r1,w0)}", uint8(0), uint8(0))
	f.Add("{m(w0); u(r0,w1,r1,w0,r0,w1); d(r1,w0,r0,w1,r1,w0); m(r0)}", uint8(3), uint8(1))
	f.Add("{m(w0); m(r0,w1); m(r1,w0); m(r0)}", uint8(7), uint8(2))
	f.Add("{u(w0); u(r0); u(w1); u(r1)}", uint8(11), uint8(3))
	f.Add("{d(w1); m(r1,w0,w1); u(r1)}", uint8(20), uint8(0))

	singles := singleCatalog()
	twos := march.TwoCellCatalog()
	scalar := march.ScalarEngine{}
	eng := New()
	geoms := [][2]int{{2, 2}, {2, 3}, {3, 3}}

	f.Fuzz(func(t *testing.T, notation string, entryIdx, geomIdx uint8) {
		test, err := march.Parse("fuzz", notation)
		if err != nil {
			t.Skip()
		}
		// Bound the assignment blow-up: 2^k order assignments.
		anyCount := 0
		for _, e := range test.Elements {
			if e.Order == march.Any {
				anyCount++
			}
			if len(e.Ops) > 8 {
				t.Skip()
			}
		}
		if len(test.Elements) > 6 || anyCount > 4 {
			t.Skip()
		}
		g := geoms[int(geomIdx)%len(geoms)]

		se := singles[int(entryIdx)%len(singles)]
		want, wantErr := scalar.Detects(test, g[0], g[1], se)
		got, gotErr := eng.Detects(test, g[0], g[1], se)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("%q × %s @ %dx%d: scalar err=%v, bitsim err=%v", notation, se.Name, g[0], g[1], wantErr, gotErr)
		}
		if wantErr == nil && want != got {
			t.Fatalf("%q × %s @ %dx%d: scalar %+v, bitsim %+v", notation, se.Name, g[0], g[1], want, got)
		}

		te := twos[int(entryIdx)%len(twos)]
		want, wantErr = scalar.DetectsTwoCell(test, g[0], g[1], te)
		got, gotErr = eng.DetectsTwoCell(test, g[0], g[1], te)
		if (wantErr != nil) != (gotErr != nil) {
			t.Fatalf("%q × %s @ %dx%d: scalar err=%v, bitsim err=%v", notation, te.Name, g[0], g[1], wantErr, gotErr)
		}
		if wantErr == nil && want != got {
			t.Fatalf("%q × %s @ %dx%d: scalar %+v, bitsim %+v", notation, te.Name, g[0], g[1], want, got)
		}
	})
}
