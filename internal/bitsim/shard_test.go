package bitsim

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/memtest/partialfaults/internal/march"
)

// TestMergeResultsOrderIndependent pins the reducer property the
// streaming pipeline relies on: shards own disjoint word ranges, so the
// merged per-assignment bitmaps cannot depend on completion order.
func TestMergeResultsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := geom{rows: 40, cols: 10, n: 400}
	shards := makeShards(g.n, 64)
	const nAssign = 3
	var results []shardResult
	for ai := 0; ai < nAssign; ai++ {
		for si, sh := range shards {
			det := make([]uint64, sh.w)
			for i := range det {
				det[i] = rng.Uint64()
			}
			results = append(results, shardResult{assign: ai, shardIdx: si, det: det})
		}
	}
	want := mergeResults(g, shards, nAssign, results)
	for trial := 0; trial < 20; trial++ {
		perm := make([]shardResult, len(results))
		copy(perm, results)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		got := mergeResults(g, shards, nAssign, perm)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: merged bitmaps depend on reduction order", trial)
		}
	}
}

// TestShardEquivalence256x256 proves the sharded concurrent evaluation
// equals a serial single-shard run at scale; under -race it also
// exercises the pool/reducer for data races.
func TestShardEquivalence256x256(t *testing.T) {
	const rows, cols = 256, 256
	test := march.MarchPF()
	sharded := &Engine{Workers: 4, ShardLanes: 4096}
	serial := &Engine{Workers: 1, ShardLanes: rows * cols}

	entries := []march.CatalogEntry{
		march.ClassicalFaultCatalog()[0],
		march.PaperFaultCatalog()[0],
	}
	for _, e := range entries {
		a, err := sharded.DetectionBitmaps(test, rows, cols, e)
		if err != nil {
			t.Fatal(err)
		}
		b, err := serial.DetectionBitmaps(test, rows, cols, e)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: sharded and serial bitmaps differ", e.Name)
		}
	}

	offsets := []int{1, -1, cols, -cols}
	for _, e := range march.TwoCellCatalog()[:2] {
		a, err := sharded.DetectsTwoCellOffsets(test, rows, cols, e, offsets)
		if err != nil {
			t.Fatal(err)
		}
		b, err := serial.DetectsTwoCellOffsets(test, rows, cols, e, offsets)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("%s: sharded %+v, serial %+v", e.Name, a, b)
		}
	}
}

// TestShardLanesVariation checks verdicts are invariant under the shard
// partition itself.
func TestShardLanesVariation(t *testing.T) {
	test := march.MarchCMinus()
	e := march.PaperFaultCatalog()[1]
	var want march.Detection
	for i, lanes := range []int{0, 64, 128, 1 << 20} {
		eng := &Engine{ShardLanes: lanes}
		got, err := eng.Detects(test, 16, 16, e)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
		} else if got != want {
			t.Fatalf("ShardLanes=%d: %+v, want %+v", lanes, got, want)
		}
	}
}

func TestMakeShards(t *testing.T) {
	shards := makeShards(400, 100) // rounds up to 128 lanes
	if len(shards) != 4 {
		t.Fatalf("got %d shards, want 4", len(shards))
	}
	covered := 0
	for i, sh := range shards {
		if sh.lo%64 != 0 {
			t.Errorf("shard %d not word-aligned: lo=%d", i, sh.lo)
		}
		if sh.w != (sh.hi-sh.lo+63)/64 {
			t.Errorf("shard %d word count wrong", i)
		}
		covered += sh.hi - sh.lo
	}
	if covered != 400 {
		t.Fatalf("shards cover %d lanes, want 400", covered)
	}
}
