package bitsim

import (
	"fmt"
	"sync"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/memsim"
)

// Engine is the bit-plane march backend. The zero value is ready to
// use; New returns one for symmetry with the rest of the codebase.
type Engine struct {
	// Workers bounds concurrent shard evaluations (<= 0: GOMAXPROCS),
	// via the same bounded-pool shape the analysis pipeline uses.
	Workers int
	// ShardLanes is the victim-lane count per shard, rounded up to a
	// multiple of 64 (<= 0: a default that keeps per-shard state small
	// while giving the pool enough parallel work).
	ShardLanes int
}

// New returns a default-configured engine.
func New() *Engine { return &Engine{} }

// Name identifies the backend.
func (e *Engine) Name() string { return "bitsim" }

// march.Engine conformance.
var _ march.Engine = (*Engine)(nil)

const defaultShardLanes = 1 << 14

func (e *Engine) shardLanes() int {
	if e.ShardLanes > 0 {
		return e.ShardLanes
	}
	return defaultShardLanes
}

func checkGeometry(t march.Test, rows, cols int) (geom, error) {
	if err := t.Validate(); err != nil {
		return geom{}, err
	}
	if rows <= 0 || cols <= 0 {
		return geom{}, fmt.Errorf("bitsim: invalid geometry %dx%d", rows, cols)
	}
	return geom{rows: rows, cols: cols, n: rows * cols}, nil
}

// shardResult is one shard's detection bitmap for one assignment,
// identified by its position so the reducer can merge deterministically
// regardless of completion order.
type shardResult struct {
	assign, shardIdx int
	det              []uint64
}

// mergeResults folds per-shard detection bitmaps into one bitmap per
// assignment (g.n lanes each). Shards occupy disjoint word ranges, so
// the merge is order-independent — the property the reduction-order
// test pins down.
func mergeResults(g geom, shards []shard, nAssign int, results []shardResult) [][]uint64 {
	words := (g.n + 63) / 64
	out := make([][]uint64, nAssign)
	for i := range out {
		out[i] = make([]uint64, words)
	}
	for _, r := range results {
		base := shards[r.shardIdx].lo / 64
		for i, w := range r.det {
			out[r.assign][base+i] |= w
		}
	}
	return out
}

// runSharded fans (assignment × shard) jobs across the worker pool and
// streams results into per-assignment bitmaps as they complete.
func (e *Engine) runSharded(g geom, nAssign int, job func(assign int, sh shard) []uint64) [][]uint64 {
	shards := makeShards(g.n, e.shardLanes())
	pool := analysis.NewPool(e.Workers)
	results := make(chan shardResult, len(shards))
	var wg sync.WaitGroup
	for ai := 0; ai < nAssign; ai++ {
		for si := range shards {
			ai, si := ai, si
			wg.Add(1)
			go func() {
				defer wg.Done()
				pool.Do(func() {
					results <- shardResult{assign: ai, shardIdx: si, det: job(ai, shards[si])}
				})
			}()
		}
	}
	go func() {
		wg.Wait()
		close(results)
	}()
	// Streaming reduction: disjoint word ranges make arrival order
	// irrelevant to the merged bitmaps.
	words := (g.n + 63) / 64
	out := make([][]uint64, nAssign)
	for i := range out {
		out[i] = make([]uint64, words)
	}
	for r := range results {
		base := shards[r.shardIdx].lo / 64
		for i, w := range r.det {
			out[r.assign][base+i] |= w
		}
	}
	return out
}

// DetectionBitmaps evaluates a single-cell catalog entry and returns
// one detection bitmap per ⇕-order assignment: bit v set means scenario
// (victim v, assignment) produced at least one mismatch.
func (e *Engine) DetectionBitmaps(t march.Test, rows, cols int, entry march.CatalogEntry) ([][]uint64, error) {
	g, err := checkGeometry(t, rows, cols)
	if err != nil {
		return nil, err
	}
	spec, err := memsim.CompileFault(entry.Make(0))
	if err != nil {
		return nil, err
	}
	assignments := t.OrderAssignments()
	traces := make([][]ffElem, len(assignments))
	for i, orders := range assignments {
		traces[i] = ffTrace(t, resolveOrders(t, orders))
	}
	return e.runSharded(g, len(assignments), func(ai int, sh shard) []uint64 {
		return runSingle(g, sh, spec, traces[ai])
	}), nil
}

// Detects evaluates a single-cell catalog entry over all victims and
// ⇕-order assignments, with verdicts identical to the scalar engine's.
func (e *Engine) Detects(t march.Test, rows, cols int, entry march.CatalogEntry) (march.Detection, error) {
	bitmaps, err := e.DetectionBitmaps(t, rows, cols, entry)
	if err != nil {
		return march.Detection{}, err
	}
	n := rows * cols
	caught, total := 0, n*len(bitmaps)
	for _, bm := range bitmaps {
		caught += popcount(bm)
	}
	return march.Detection{Detected: caught == total && total > 0, Caught: caught, Scenarios: total}, nil
}
