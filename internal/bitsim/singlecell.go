package bitsim

import (
	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/memsim"
)

// scRun evaluates one compiled single-cell fault over all victim lanes
// of a shard, for one concrete order assignment. Lane v is the scenario
// "fault at victim v"; the planes hold the scenario's victim-visible
// state. The kernels mirror memsim's hook order exactly: sensitized
// fire hooks see the pre-operation line state, the victim-history
// recorder sees write data / restored read values, line updates follow,
// and state faults fire after every operation period.
type scRun struct {
	g    geom
	sh   shard
	spec memsim.CompiledFault
	up   orderMasks
	down orderMasks

	// V is the victim cell; BL and IO are the floating bit-line and
	// output-buffer values as the victim's trigger sees them.
	V, BL, IO plane
	// hist is the victim operation-value ring (TrigVictimSeq only),
	// oldest first; histCnt counts recorded victim operations.
	hist    []plane
	histCnt int
	// prev* track the globally previous operation for dynamic pairs:
	// prevAt masks lanes whose previous operation was at their victim.
	prevValid, prevIsWrite bool
	prevAt                 []uint64
	prevData, prevPre      plane
	// det accumulates caught lanes.
	det []uint64
	// out is the read-output scratch plane.
	out plane
	// t1..t4 are word scratch buffers.
	t1, t2, t3, t4 []uint64
}

func newSCRun(g geom, sh shard, spec memsim.CompiledFault) *scRun {
	w := sh.w
	r := &scRun{
		g: g, sh: sh, spec: spec,
		up:   masksFor(g, sh, march.Up),
		down: masksFor(g, sh, march.Down),
		V:    newPlane(w), BL: newPlane(w), IO: newPlane(w),
		det: make([]uint64, w), out: newPlane(w),
		t1: make([]uint64, w), t2: make([]uint64, w),
		t3: make([]uint64, w), t4: make([]uint64, w),
	}
	r.V.setConst(memsim.X)
	r.BL.setConst(memsim.X)
	r.IO.setConst(memsim.X)
	if spec.Kind == memsim.TrigVictimSeq {
		r.hist = make([]plane, len(spec.Seq))
		for i := range r.hist {
			r.hist[i] = newPlane(w)
			r.hist[i].setConst(memsim.X)
		}
	}
	if spec.Dynamic {
		r.prevAt = make([]uint64, w)
		r.prevData = newPlane(w)
		r.prevPre = newPlane(w)
	}
	return r
}

func (r *scRun) masks(o march.Order) orderMasks {
	if o == march.Down {
		return r.down
	}
	return r.up
}

// armedNow writes the trigger's armed mask for the current hidden
// state (exact: used at victim operations and their state-fault
// periods).
func (r *scRun) armedNow(dst []uint64) {
	switch r.spec.Kind {
	case memsim.TrigAlways:
		wfill(dst)
	case memsim.TrigNever:
		wzero(dst)
	case memsim.TrigBitLine:
		r.BL.eq(r.spec.Seq[len(r.spec.Seq)-1], dst)
	case memsim.TrigIO:
		r.IO.eq(r.spec.Seq[len(r.spec.Seq)-1], dst)
	case memsim.TrigVictimSeq:
		r.histMatch(dst)
	default:
		wzero(dst)
	}
}

func (r *scRun) histMatch(dst []uint64) {
	if r.histCnt < len(r.spec.Seq) {
		wzero(dst)
		return
	}
	wfill(dst)
	for i, want := range r.spec.Seq {
		r.hist[i].eq(want, r.t4)
		wand(dst, r.t4)
	}
}

func (r *scRun) pushHist(record func(plane)) {
	if r.spec.Kind != memsim.TrigVictimSeq {
		return
	}
	h0 := r.hist[0]
	copy(r.hist, r.hist[1:])
	r.hist[len(r.hist)-1] = h0
	record(h0)
	r.histCnt++
}

// initSat writes the victim-state precondition mask.
func (r *scRun) initSat(dst []uint64) {
	if r.spec.Init == memsim.X {
		wfill(dst)
		return
	}
	r.V.eq(r.spec.Init, dst)
}

// dynGate writes the dynamic-pair adjacency gate: the globally previous
// operation was the pair's first operation at the victim.
func (r *scRun) dynGate(dst []uint64) {
	if !r.spec.Dynamic {
		wfill(dst)
		return
	}
	if !r.prevValid || r.prevIsWrite != r.spec.DynWrite {
		wzero(dst)
		return
	}
	copy(dst, r.prevAt)
	r.prevData.eq(r.spec.DynData, r.t4)
	wand(dst, r.t4)
	if r.spec.DynPre != memsim.X {
		r.prevPre.eq(r.spec.DynPre, r.t4)
		wand(dst, r.t4)
	}
}

// fireStatePeriod applies an armed state fault after an operation
// period (memsim's applyStateFaults at a victim operation).
func (r *scRun) fireStatePeriod() {
	if !r.spec.OpFree || r.spec.Init == memsim.X || r.spec.Kind == memsim.TrigNever {
		return
	}
	r.armedNow(r.t1)
	r.initSat(r.t2)
	wand(r.t1, r.t2)
	r.V.setConstWhere(r.t1, r.spec.FaultyF)
}

// segArmed computes "armed at some post-operation moment of the
// segment" for a line trigger, over the fault-free passes before
// (segment A) or after (segment B) the victim pass. carry is the line
// value entering the segment; frozen selects lanes whose line receives
// no drive in the segment (bit line in the boundary row), where the
// condition degenerates to carry == want.
func (r *scRun) segArmed(dst []uint64, carry plane, e ffElem, frozen []uint64, want int) {
	anyEq := false
	for _, op := range e.ops {
		if op.driven == want {
			anyEq = true
			break
		}
	}
	d1Unknown := e.ops[0].driven == memsim.X
	switch {
	case anyEq:
		// Some known drive in every pass attains want.
		wfill(dst)
	case d1Unknown:
		// No known drive equals want; the carry value is still observable
		// after the pass's leading unknown drives.
		carry.eq(want, dst)
	default:
		wzero(dst)
	}
	if frozen != nil {
		// Frozen lanes only ever observe the carry.
		carry.eq(want, r.t4)
		for i := range dst {
			dst[i] = (dst[i] &^ frozen[i]) | (r.t4[i] & frozen[i])
		}
	}
}

// fireStateSegment fires a state fault over the operation periods of a
// fault-free segment: the addresses visited before (pre=true) or after
// the victim in this element. The victim cell is constant across the
// segment, so one evaluation with "armed at some checkpoint" is exact;
// re-firing an already-fired fault is idempotent.
func (r *scRun) fireStateSegment(e ffElem, m orderMasks, pre bool) {
	if !r.spec.OpFree || r.spec.Init == memsim.X || r.spec.Kind == memsim.TrigNever {
		return
	}
	// exist: lanes with at least one operation period in the segment.
	exist := r.t3
	if pre {
		wnot(exist, m.firstBit)
	} else {
		wnot(exist, m.lastBit)
	}
	armed := r.t1
	switch r.spec.Kind {
	case memsim.TrigAlways:
		wfill(armed)
	case memsim.TrigVictimSeq:
		// Victim operations only happen in the victim pass, so the
		// history — and the match — is constant across the segment.
		r.histMatch(armed)
	case memsim.TrigIO:
		r.segArmed(armed, r.IO, e, nil, r.spec.Seq[len(r.spec.Seq)-1])
	case memsim.TrigBitLine:
		frozen := m.firstRow
		if !pre {
			frozen = m.lastRow
		}
		r.segArmed(armed, r.BL, e, frozen, r.spec.Seq[len(r.spec.Seq)-1])
	}
	wand(armed, exist)
	r.initSat(r.t2)
	wand(armed, r.t2)
	r.V.setConstWhere(armed, r.spec.FaultyF)
}

// arriveLines turns the end-of-previous-element line planes into the
// values each lane sees when its own pass begins: the walk-first lane
// (and, for the bit line, the first-visited row) keeps the carry, every
// other lane inherits the last known drive of a completed fault-free
// pass.
func arriveLines(BL, IO plane, e ffElem, m orderMasks, scratch []uint64) {
	if e.tail == memsim.X {
		return
	}
	wnot(scratch, m.firstBit)
	IO.setConstWhere(scratch, e.tail)
	wnot(scratch, m.firstRow)
	BL.setConstWhere(scratch, e.tail)
}

// endLines turns the post-victim line planes into end-of-element
// values: the walk-last lane (and last-visited row) keeps its
// post-victim state, every other lane sees the trailing fault-free
// passes drive the line.
func endLines(BL, IO plane, e ffElem, m orderMasks, scratch []uint64) {
	if e.tail == memsim.X {
		return
	}
	wnot(scratch, m.lastBit)
	IO.setConstWhere(scratch, e.tail)
	wnot(scratch, m.lastRow)
	BL.setConstWhere(scratch, e.tail)
}

// victimOp runs one operation of the victim pass on every lane.
func (r *scRun) victimOp(op ffOp) {
	spec := &r.spec
	r.armedNow(r.t1)
	fire := r.t2
	wzero(fire)
	if !op.read {
		if !spec.OpFree && !spec.FinalRead && op.data == spec.FinalData {
			copy(fire, r.t1)
			r.dynGate(r.t3)
			wand(fire, r.t3)
			r.initSat(r.t3)
			wand(fire, r.t3)
		}
		if spec.Dynamic {
			r.prevPre.copyFrom(r.V)
		}
		r.V.setConst(op.data)
		r.V.setConstWhere(fire, spec.FaultyF)
		r.pushHist(func(h plane) { h.setConst(op.data) })
		r.BL.setConst(op.data)
		r.IO.setConst(op.data)
		if spec.Dynamic {
			r.prevValid, r.prevIsWrite = true, true
			r.prevData.setConst(op.data)
			wfill(r.prevAt)
		}
	} else {
		if !spec.OpFree && spec.FinalRead && op.data == spec.FinalData {
			copy(fire, r.t1)
			r.dynGate(r.t3)
			wand(fire, r.t3)
			r.initSat(r.t3)
			wand(fire, r.t3)
			r.V.eq(spec.FinalData, r.t3)
			wand(fire, r.t3)
		}
		if spec.Dynamic {
			r.prevPre.copyFrom(r.V)
		}
		r.out.copyFrom(r.V)
		r.out.setConstWhere(fire, spec.FaultyR)
		r.V.setConstWhere(fire, spec.FaultyF)
		// A known output differing from the expectation is a detection.
		r.out.eq(1-op.data, r.t3)
		wor(r.det, r.t3)
		r.pushHist(func(h plane) { h.copyFrom(r.V) })
		// The restored cell drives the bit line, the output the IO path;
		// unknowns leave the floating value in place.
		r.BL.setPlaneWhere(r.V.k, r.V)
		r.IO.setPlaneWhere(r.out.k, r.out)
		if spec.Dynamic {
			r.prevValid, r.prevIsWrite = true, false
			r.prevData.copyFrom(r.V)
			wfill(r.prevAt)
		}
	}
	r.fireStatePeriod()
}

// element advances the run through one march element.
func (r *scRun) element(e ffElem) {
	m := r.masks(e.order)
	// Segment A: fault-free passes before the victim pass. State faults
	// may fire at any of their operation periods; line values evolve
	// from the end-of-previous-element planes.
	r.fireStateSegment(e, m, true)
	// Victim-pass arrival values.
	arriveLines(r.BL, r.IO, e, m, r.t1)
	if r.spec.Dynamic {
		// Only the walk-first lane can see the previous element's final
		// operation as its immediate predecessor.
		wand(r.prevAt, m.firstBit)
	}
	for _, op := range e.ops {
		r.victimOp(op)
	}
	// Segment B: fault-free passes after the victim pass.
	r.fireStateSegment(e, m, false)
	// End-of-element line planes.
	endLines(r.BL, r.IO, e, m, r.t1)
	if r.spec.Dynamic {
		// The element's globally last operation happened at the walk-last
		// address; only that lane enters the next element with a
		// previous-operation-at-victim record.
		r.sh.bitMask(r.g.lastAddr(e.order), r.prevAt)
	}
}

// runSingle evaluates one assignment's detection bitmap for a shard:
// bit (v - sh.lo) is set when scenario v yields at least one mismatch.
func runSingle(g geom, sh shard, spec memsim.CompiledFault, elems []ffElem) []uint64 {
	r := newSCRun(g, sh, spec)
	ffMM := false
	for _, e := range elems {
		r.element(e)
		ffMM = ffMM || e.mm
	}
	if ffMM && g.n > 1 {
		// A fault-free mismatch occurs at every address; any scenario
		// with at least one non-victim cell is caught.
		wfill(r.det)
	}
	sh.laneMask(r.t1)
	wand(r.det, r.t1)
	return r.det
}
