package bitsim

import (
	"testing"

	"github.com/memtest/partialfaults/internal/march"
	"github.com/memtest/partialfaults/internal/memsim"
)

// The differential equivalence suite: the bit-plane engine must return
// verdicts identical to the scalar memsim oracle for every catalog
// entry × library test on every overlapping geometry. Any divergence is
// a bug in the mask compilation, never an acceptable approximation.

func singleCatalog() []march.CatalogEntry {
	var out []march.CatalogEntry
	out = append(out, march.ClassicalFaultCatalog()...)
	out = append(out, march.PaperFaultCatalog()...)
	for _, p := range memsim.DynamicFaultCatalog() {
		out = append(out, march.CatalogEntry{Name: p.String(), FP: p})
	}
	return out
}

func compareDetections(t *testing.T, test march.Test, rows, cols int, name string, want, got march.Detection, wantErr, gotErr error) {
	t.Helper()
	if (wantErr != nil) != (gotErr != nil) {
		t.Errorf("%s × %s @ %dx%d: scalar err=%v, bitsim err=%v", test.Name, name, rows, cols, wantErr, gotErr)
		return
	}
	if wantErr != nil {
		return
	}
	if want != got {
		t.Errorf("%s × %s @ %dx%d: scalar %+v, bitsim %+v", test.Name, name, rows, cols, want, got)
	}
}

func TestSingleCellEquivalence(t *testing.T) {
	scalar := march.ScalarEngine{}
	eng := New()
	catalog := singleCatalog()
	geoms := [][2]int{{2, 2}, {2, 4}, {4, 4}}
	for _, g := range geoms {
		for _, test := range march.All() {
			for _, e := range catalog {
				want, wantErr := scalar.Detects(test, g[0], g[1], e)
				got, gotErr := eng.Detects(test, g[0], g[1], e)
				compareDetections(t, test, g[0], g[1], e.Name, want, got, wantErr, gotErr)
			}
		}
	}
}

func TestSingleCellEquivalence8x8(t *testing.T) {
	scalar := march.ScalarEngine{}
	eng := New()
	catalog := singleCatalog()
	tests := []march.Test{march.MATSPlus(), march.MarchCMinus(), march.MarchRAW(), march.MarchPF()}
	for _, test := range tests {
		for _, e := range catalog {
			want, wantErr := scalar.Detects(test, 8, 8, e)
			got, gotErr := eng.Detects(test, 8, 8, e)
			compareDetections(t, test, 8, 8, e.Name, want, got, wantErr, gotErr)
		}
	}
}

// TestSingleCellEquivalence64x64 is the top-end spot check: the
// largest geometry the scalar oracle can still differentially cover.
func TestSingleCellEquivalence64x64(t *testing.T) {
	if testing.Short() {
		t.Skip("64x64 scalar runs are the long differential pass")
	}
	scalar := march.ScalarEngine{}
	eng := New()
	catalog := singleCatalog()
	test := march.MATSPlus()
	for _, e := range []march.CatalogEntry{catalog[0], catalog[13], catalog[len(catalog)-1]} {
		want, wantErr := scalar.Detects(test, 64, 64, e)
		got, gotErr := eng.Detects(test, 64, 64, e)
		compareDetections(t, test, 64, 64, e.Name, want, got, wantErr, gotErr)
	}
}

func TestTwoCellEquivalence(t *testing.T) {
	scalar := march.ScalarEngine{}
	eng := New()
	catalog := march.TwoCellCatalog()
	geoms := [][2]int{{2, 2}, {2, 4}}
	for _, g := range geoms {
		for _, test := range march.All() {
			for _, e := range catalog {
				want, wantErr := scalar.DetectsTwoCell(test, g[0], g[1], e)
				got, gotErr := eng.DetectsTwoCell(test, g[0], g[1], e)
				compareDetections(t, test, g[0], g[1], e.Name, want, got, wantErr, gotErr)
			}
		}
	}
}

func TestTwoCellEquivalence4x4(t *testing.T) {
	if testing.Short() {
		t.Skip("4x4 two-cell sweep is the long differential pass")
	}
	scalar := march.ScalarEngine{}
	eng := New()
	catalog := march.TwoCellCatalog()
	tests := []march.Test{march.MATSPlus(), march.MarchCMinus(), march.MarchSS(), march.MarchPF()}
	for _, test := range tests {
		for _, e := range catalog {
			want, wantErr := scalar.DetectsTwoCell(test, 4, 4, e)
			got, gotErr := eng.DetectsTwoCell(test, 4, 4, e)
			compareDetections(t, test, 4, 4, e.Name, want, got, wantErr, gotErr)
		}
	}
}
