package bitsim

import "github.com/memtest/partialfaults/internal/march"

// geom is the evaluated array geometry. Address a sits at row a/cols,
// column a%cols; same column = same bit line, matching memsim.
type geom struct {
	rows, cols, n int
}

func (g geom) firstAddr(o march.Order) int {
	if o == march.Down {
		return g.n - 1
	}
	return 0
}

func (g geom) lastAddr(o march.Order) int {
	if o == march.Down {
		return 0
	}
	return g.n - 1
}

// firstRowRange is the address range of the first-visited row: the
// lanes whose column receives no operations before the victim pass.
func (g geom) firstRowRange(o march.Order) (int, int) {
	if o == march.Down {
		return g.n - g.cols, g.n
	}
	return 0, g.cols
}

// lastRowRange is the address range of the last-visited row: the lanes
// whose column receives no operations after the victim pass.
func (g geom) lastRowRange(o march.Order) (int, int) {
	if o == march.Down {
		return 0, g.cols
	}
	return g.n - g.cols, g.n
}

// shard is a word-aligned block of victim lanes [lo, hi) evaluated as
// one unit; w counts its words (the last may be partial).
type shard struct {
	lo, hi, w int
}

// makeShards splits n lanes into word-aligned blocks of at most
// lanesPerShard lanes (rounded up to a multiple of 64).
func makeShards(n, lanesPerShard int) []shard {
	if lanesPerShard < 64 {
		lanesPerShard = 64
	}
	lanesPerShard = (lanesPerShard + 63) &^ 63
	var out []shard
	for lo := 0; lo < n; lo += lanesPerShard {
		hi := lo + lanesPerShard
		if hi > n {
			hi = n
		}
		out = append(out, shard{lo: lo, hi: hi, w: (hi - lo + 63) / 64})
	}
	return out
}

// rangeMask writes the shard-local mask of global lanes [a, b).
func (s shard) rangeMask(a, b int, dst []uint64) {
	wzero(dst)
	if a < s.lo {
		a = s.lo
	}
	if b > s.hi {
		b = s.hi
	}
	if a >= b {
		return
	}
	a -= s.lo
	b -= s.lo
	for i := a / 64; i <= (b-1)/64; i++ {
		w := ^uint64(0)
		if lo := i * 64; lo < a {
			w &= ^uint64(0) << (a - lo)
		}
		if hi := i*64 + 64; hi > b {
			w &= ^uint64(0) >> (hi - b)
		}
		dst[i] |= w
	}
}

// bitMask writes the shard-local single-lane mask for a global address
// (empty when the address falls outside the shard).
func (s shard) bitMask(addr int, dst []uint64) {
	wzero(dst)
	if addr >= s.lo && addr < s.hi {
		dst[(addr-s.lo)/64] |= 1 << uint((addr-s.lo)%64)
	}
}

// laneMask writes the mask of lanes the shard actually covers (the
// last word may have tail bits beyond hi).
func (s shard) laneMask(dst []uint64) {
	s.rangeMask(s.lo, s.hi, dst)
}

// orderMasks caches the per-order boundary masks of one shard.
type orderMasks struct {
	// firstBit / lastBit select the walk-first / walk-last lane.
	firstBit, lastBit []uint64
	// firstRow / lastRow select the first- / last-visited row: lanes
	// whose bit line is untouched before / after their victim pass.
	firstRow, lastRow []uint64
}

func masksFor(g geom, s shard, o march.Order) orderMasks {
	m := orderMasks{
		firstBit: make([]uint64, s.w), lastBit: make([]uint64, s.w),
		firstRow: make([]uint64, s.w), lastRow: make([]uint64, s.w),
	}
	s.bitMask(g.firstAddr(o), m.firstBit)
	s.bitMask(g.lastAddr(o), m.lastBit)
	a, b := g.firstRowRange(o)
	s.rangeMask(a, b, m.firstRow)
	a, b = g.lastRowRange(o)
	s.rangeMask(a, b, m.lastRow)
	return m
}
