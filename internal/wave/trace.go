// Package wave provides waveform capture and inspection for transient
// simulations: named signal traces sampled per timestep, threshold
// crossing search, and CSV export for external plotting.
package wave

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Trace is a single named signal sampled over time.
type Trace struct {
	Name   string
	Times  []float64
	Values []float64
}

// Append records a sample. Times must be non-decreasing.
func (t *Trace) Append(time, value float64) {
	if n := len(t.Times); n > 0 && time < t.Times[n-1] {
		panic(fmt.Sprintf("wave: trace %s sample time decreased (%g after %g)", t.Name, time, t.Times[n-1]))
	}
	t.Times = append(t.Times, time)
	t.Values = append(t.Values, value)
}

// Len returns the number of samples.
func (t *Trace) Len() int { return len(t.Times) }

// Last returns the most recent sample value, or NaN if empty.
func (t *Trace) Last() float64 {
	if len(t.Values) == 0 {
		return math.NaN()
	}
	return t.Values[len(t.Values)-1]
}

// At returns the linearly interpolated value at the given time. Outside
// the sampled range it clamps to the first/last sample.
func (t *Trace) At(time float64) float64 {
	n := len(t.Times)
	if n == 0 {
		return math.NaN()
	}
	if time <= t.Times[0] {
		return t.Values[0]
	}
	if time >= t.Times[n-1] {
		return t.Values[n-1]
	}
	i := sort.SearchFloat64s(t.Times, time)
	if t.Times[i] == time {
		return t.Values[i]
	}
	t0, t1 := t.Times[i-1], t.Times[i]
	v0, v1 := t.Values[i-1], t.Values[i]
	if t1 == t0 {
		return v1
	}
	return v0 + (v1-v0)*(time-t0)/(t1-t0)
}

// CrossingTime returns the first time the trace crosses the given level
// in the requested direction (+1 rising, −1 falling, 0 either), or
// (0, false) if it never does.
func (t *Trace) CrossingTime(level float64, direction int) (float64, bool) {
	for i := 1; i < len(t.Values); i++ {
		v0, v1 := t.Values[i-1], t.Values[i]
		rising := v0 < level && v1 >= level
		falling := v0 > level && v1 <= level
		if (direction >= 0 && rising) || (direction <= 0 && falling) {
			// Interpolate the crossing instant.
			if v1 == v0 {
				return t.Times[i], true
			}
			frac := (level - v0) / (v1 - v0)
			return t.Times[i-1] + frac*(t.Times[i]-t.Times[i-1]), true
		}
	}
	return 0, false
}

// Min and Max return the sampled extrema (NaN if empty).
func (t *Trace) Min() float64 { return t.extremum(false) }

// Max returns the maximum sampled value (NaN if empty).
func (t *Trace) Max() float64 { return t.extremum(true) }

func (t *Trace) extremum(max bool) float64 {
	if len(t.Values) == 0 {
		return math.NaN()
	}
	out := t.Values[0]
	for _, v := range t.Values[1:] {
		if (max && v > out) || (!max && v < out) {
			out = v
		}
	}
	return out
}

// Recorder captures multiple traces with a shared time base.
type Recorder struct {
	order  []string
	traces map[string]*Trace
}

// NewRecorder creates a recorder for the named signals.
func NewRecorder(names ...string) *Recorder {
	r := &Recorder{traces: map[string]*Trace{}}
	for _, n := range names {
		r.order = append(r.order, n)
		r.traces[n] = &Trace{Name: n}
	}
	return r
}

// Sample records one value per signal at the given time. The values must
// match the recorder's signal order.
func (r *Recorder) Sample(time float64, values ...float64) {
	if len(values) != len(r.order) {
		panic("wave: Sample value count mismatch")
	}
	for i, n := range r.order {
		r.traces[n].Append(time, values[i])
	}
}

// Trace returns the named trace or nil.
func (r *Recorder) Trace(name string) *Trace { return r.traces[name] }

// Names returns the signal names in recording order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// WriteCSV emits "time,sig1,sig2,..." rows to w.
func (r *Recorder) WriteCSV(w io.Writer) error {
	header := append([]string{"time"}, r.order...)
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	if len(r.order) == 0 {
		return nil
	}
	base := r.traces[r.order[0]]
	for i, tm := range base.Times {
		row := make([]string, 0, len(r.order)+1)
		row = append(row, fmt.Sprintf("%.6e", tm))
		for _, n := range r.order {
			row = append(row, fmt.Sprintf("%.6e", r.traces[n].Values[i]))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
