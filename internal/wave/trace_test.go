package wave

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestTraceAppendAndAt(t *testing.T) {
	tr := &Trace{Name: "v"}
	tr.Append(0, 0)
	tr.Append(1, 10)
	tr.Append(2, 10)
	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	cases := []struct{ tm, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.7, 10}, {5, 10},
	}
	for _, c := range cases {
		if got := tr.At(c.tm); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("At(%g) = %g, want %g", c.tm, got, c.want)
		}
	}
	if tr.Last() != 10 {
		t.Errorf("Last = %g, want 10", tr.Last())
	}
}

func TestTraceEmpty(t *testing.T) {
	tr := &Trace{Name: "v"}
	if !math.IsNaN(tr.Last()) || !math.IsNaN(tr.At(0)) || !math.IsNaN(tr.Min()) || !math.IsNaN(tr.Max()) {
		t.Error("empty trace queries must return NaN")
	}
}

func TestTraceAppendTimeOrdering(t *testing.T) {
	tr := &Trace{Name: "v"}
	tr.Append(1, 0)
	defer func() {
		if recover() == nil {
			t.Error("Append with decreasing time should panic")
		}
	}()
	tr.Append(0.5, 0)
}

func TestTraceCrossing(t *testing.T) {
	tr := &Trace{Name: "v"}
	tr.Append(0, 0)
	tr.Append(1, 2)
	tr.Append(2, 0)

	rise, ok := tr.CrossingTime(1, +1)
	if !ok || math.Abs(rise-0.5) > 1e-12 {
		t.Errorf("rising crossing = %g,%v, want 0.5,true", rise, ok)
	}
	fall, ok := tr.CrossingTime(1, -1)
	if !ok || math.Abs(fall-1.5) > 1e-12 {
		t.Errorf("falling crossing = %g,%v, want 1.5,true", fall, ok)
	}
	either, ok := tr.CrossingTime(1, 0)
	if !ok || math.Abs(either-0.5) > 1e-12 {
		t.Errorf("either crossing = %g,%v, want 0.5,true", either, ok)
	}
	if _, ok := tr.CrossingTime(5, 0); ok {
		t.Error("crossing above the trace must not be found")
	}
}

func TestTraceMinMax(t *testing.T) {
	tr := &Trace{Name: "v"}
	for i, v := range []float64{3, -1, 7, 2} {
		tr.Append(float64(i), v)
	}
	if tr.Min() != -1 || tr.Max() != 7 {
		t.Errorf("Min/Max = %g/%g, want -1/7", tr.Min(), tr.Max())
	}
}

func TestRecorderSampleAndCSV(t *testing.T) {
	r := NewRecorder("bt", "bc")
	r.Sample(0, 1.65, 1.65)
	r.Sample(1e-9, 3.3, 0)
	bt := r.Trace("bt")
	if bt == nil {
		t.Fatal("recorder lost its bt trace")
	}
	if got := bt.Last(); got != 3.3 {
		t.Errorf("bt last = %g, want 3.3", got)
	}
	var buf bytes.Buffer
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "time,bt,bc\n") {
		t.Errorf("CSV header wrong: %q", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("CSV has %d lines, want 3", lines)
	}
}

func TestRecorderSampleCountMismatch(t *testing.T) {
	r := NewRecorder("a", "b")
	defer func() {
		if recover() == nil {
			t.Error("Sample with wrong arity should panic")
		}
	}()
	r.Sample(0, 1)
}

// Property: At() of a monotone trace stays within the sampled bounds.
func TestTraceAtWithinBoundsProperty(t *testing.T) {
	prop := func(raw []uint8, q uint8) bool {
		if len(raw) < 2 {
			return true
		}
		tr := &Trace{Name: "p"}
		for i, r := range raw {
			tr.Append(float64(i), float64(r))
		}
		tm := float64(q) / 255 * float64(len(raw)-1)
		v := tr.At(tm)
		return v >= tr.Min()-1e-9 && v <= tr.Max()+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
