package behav

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/numeric"
)

// phase describes which control paths are active during an interval,
// mirroring the signals of dram/controller.go.
type phase struct {
	pre, dref      bool
	wl0, wl1, dwlc bool
	sen            bool
	csl, ren, wen  bool
	wdata          int
}

// run integrates the model over dur seconds with the given phase active,
// using a Jacobi-implicit nodal update per step: every node moves to the
// conductance-weighted average of its own state and its neighbours'
// previous values,
//
//	v' = (C/dt·v + Σ g·v_neigh) / (C/dt + Σ g),
//
// which is unconditionally stable (a convex combination) and resolves
// simultaneous competition — e.g. the write driver overpowering the
// sense amplifier — by conductance ratio, like the electrical model.
//
// The phase's resistive topology is compiled once per call into a term
// program with all static conductances (and the per-step C/dt factors)
// precomputed, so the inner step loop runs no divisions for static
// terms. Compilation reads the live parameters and site resistances, so
// there is no cache to invalidate; the term order matches the legacy
// step() exactly, keeping every accumulation — and therefore every
// result bit — identical.
func (m *Model) run(dur float64, ph phase) {
	steps := int(dur/m.P.DT + 0.5)
	if steps < 1 {
		steps = 1
	}
	dt := dur / float64(steps)
	m.compile(ph, dt)
	for s := 0; s < steps; s++ {
		m.stepProg(dt)
	}
}

// termKind discriminates the compiled step-program entries.
type termKind uint8

const (
	tPair   termKind = iota // static resistive pair: a—b with conductance g
	tSrc                    // static source: node a pulled to vs with conductance g
	tVictim                 // victim access device (gate-voltage dependent)
	tSense                  // rule-based sense amplifier (sign dependent)
)

// term is one entry of the compiled per-phase step program.
type term struct {
	kind termKind
	a, b int
	g    float64
	vs   float64
}

// compile lowers the phase's resistive topology into m.prog, precomputing
// every static conductance, and fills m.gcDt with the per-node C/dt
// factors for the update. Terms appear in exactly the order the legacy
// step() accumulates them; only the victim access device and the sense
// amplifier stay dynamic (they depend on per-step voltages) and read the
// live parameters when executed.
func (m *Model) compile(ph phase, dt float64) {
	t := m.P.Tech
	rw := m.P.RWire
	site := func(i int) float64 {
		if r := m.sites[i]; r > rw {
			return r
		}
		return rw
	}
	p := m.prog[:0]
	addPair := func(a, b int, r float64) { p = append(p, term{kind: tPair, a: a, b: b, g: 1 / r}) }
	addSrc := func(a int, vs, r float64) { p = append(p, term{kind: tSrc, a: a, g: 1 / r, vs: vs}) }

	wlTarget := 0.0
	if ph.wl0 {
		wlTarget = t.VPP
	}
	addSrc(nWL0Gate, wlTarget, m.sites[sOpen9]+100)

	addPair(nBTPre, nBTCell, site(sOpen4))
	addPair(nBTCell, nBTRef, site(sOpen5))
	addPair(nBTRef, nBTSA, site(sOpen6))
	addPair(nBTSA, nBTIO, site(sOpen8))
	addPair(nBCPre, nBCCell, rw)
	addPair(nBCCell, nBCRef, rw)
	addPair(nBCRef, nBCSA, rw)
	addPair(nBCSA, nBCIO, rw)

	if ph.pre {
		addSrc(nBTPre, t.VBLEQ, m.P.RPre+m.sites[sOpen3])
		addSrc(nBCPre, t.VBLEQ, m.P.RPre)
	}
	if ph.dref {
		addSrc(nRefC, t.VRefCell, m.P.RAccess+m.sites[sOpen2])
		addSrc(nRefT, t.VRefCell, m.P.RAccess)
	}

	p = append(p, term{kind: tVictim})
	if ph.wl1 {
		addPair(nBTCell, nCell1, m.P.RAccess)
	}
	if ph.dwlc {
		addPair(nBCRef, nRefC, m.P.RAccess+m.sites[sOpen2])
	}
	if ph.sen {
		p = append(p, term{kind: tSense})
	}

	if ph.csl {
		addPair(nBTIO, nIO, m.P.RCSL)
		addPair(nBCIO, nIOB, m.P.RCSL)
	}
	if ph.wen {
		hi, lo := 0.0, t.VDD
		if ph.wdata == 1 {
			hi, lo = t.VDD, 0
		}
		addSrc(nIO, hi, t.RWriteDriver)
		addSrc(nIOB, lo, t.RWriteDriver)
	}
	if ph.ren {
		addPair(nIO, nOutBuf, t.ROutSwitch)
	}

	addSrc(nCell0, 0, m.sites[sShortCellGnd])
	addSrc(nBTCell, t.VDD, m.sites[sShortBLVdd])
	addPair(nBTCell, nBCCell, m.sites[sBridgeBLBL])
	addPair(nCell0, nCell1, m.sites[sBridgeCells])

	m.prog = p
	for n := 0; n < numNodes; n++ {
		m.gcDt[n] = m.cap[n] / dt
	}
}

// stepProg executes one Jacobi-implicit step of the compiled program.
func (m *Model) stepProg(dt float64) {
	for i := range m.accG {
		m.accG[i] = 0
		m.accGV[i] = 0
	}
	for i := range m.prog {
		tm := &m.prog[i]
		switch tm.kind {
		case tPair:
			g := tm.g
			a, b := tm.a, tm.b
			m.accG[a] += g
			m.accGV[a] += g * m.v[b]
			m.accG[b] += g
			m.accGV[b] += g * m.v[a]
		case tSrc:
			a := tm.a
			m.accG[a] += tm.g
			m.accGV[a] += tm.g * tm.vs
		case tVictim:
			if frac := m.wlFraction(); frac > 1e-6 {
				m.pair(nBTCell, nCell0, m.P.RAccess/frac+m.sites[sOpen1])
			}
		case tSense:
			t := m.P.Tech
			delta := m.v[nBTSA] - m.v[nBCSA] + m.P.VOffset
			rDown := m.P.RSA + m.sites[sOpen7]
			if delta >= 0 {
				m.src(nBTSA, t.VDD, m.P.RSA)
				m.src(nBCSA, 0, rDown)
			} else {
				m.src(nBCSA, t.VDD, m.P.RSA)
				m.src(nBTSA, 0, rDown)
			}
		}
	}
	for n := 0; n < numNodes; n++ {
		gc := m.gcDt[n]
		m.v[n] = (gc*m.v[n] + m.accGV[n]) / (gc + m.accG[n])
	}
	m.time += dt
}

// pair accumulates a resistive connection between nodes a and b.
func (m *Model) pair(a, b int, r float64) {
	g := 1 / r
	va, vb := m.v[a], m.v[b]
	m.accG[a] += g
	m.accGV[a] += g * vb
	m.accG[b] += g
	m.accGV[b] += g * va
}

// src accumulates a resistive connection from node a to a fixed source.
func (m *Model) src(a int, vs, r float64) {
	g := 1 / r
	m.accG[a] += g
	m.accGV[a] += g * vs
}

func (m *Model) step(dt float64, ph phase) {
	t := m.P.Tech
	rw := m.P.RWire
	site := func(i int) float64 {
		if r := m.sites[i]; r > rw {
			return r
		}
		return rw
	}
	for i := range m.accG {
		m.accG[i] = 0
		m.accGV[i] = 0
	}

	// Word-line gate follows its driver through the Open 9 site.
	wlTarget := 0.0
	if ph.wl0 {
		wlTarget = t.VPP
	}
	m.src(nWL0Gate, wlTarget, m.sites[sOpen9]+100)

	// Bit-line chains (Open 4, 5, 6, 8 sites on BT).
	m.pair(nBTPre, nBTCell, site(sOpen4))
	m.pair(nBTCell, nBTRef, site(sOpen5))
	m.pair(nBTRef, nBTSA, site(sOpen6))
	m.pair(nBTSA, nBTIO, site(sOpen8))
	m.pair(nBCPre, nBCCell, rw)
	m.pair(nBCCell, nBCRef, rw)
	m.pair(nBCRef, nBCSA, rw)
	m.pair(nBCSA, nBCIO, rw)

	if ph.pre {
		m.src(nBTPre, t.VBLEQ, m.P.RPre+m.sites[sOpen3])
		m.src(nBCPre, t.VBLEQ, m.P.RPre)
	}
	if ph.dref {
		m.src(nRefC, t.VRefCell, m.P.RAccess+m.sites[sOpen2])
		m.src(nRefT, t.VRefCell, m.P.RAccess)
	}

	// Victim access device: conductance scales with the (possibly
	// floating) gate voltage; in series with the Open 1 site.
	if frac := m.wlFraction(); frac > 1e-6 {
		m.pair(nBTCell, nCell0, m.P.RAccess/frac+m.sites[sOpen1])
	}
	if ph.wl1 {
		m.pair(nBTCell, nCell1, m.P.RAccess)
	}
	if ph.dwlc {
		m.pair(nBCRef, nRefC, m.P.RAccess+m.sites[sOpen2])
	}

	if ph.sen {
		// Rule-based regenerative sense amplifier with the Open 7 site
		// in the pull-down (NMOS) path. The input-referred offset makes
		// zero differential resolve to 1.
		delta := m.v[nBTSA] - m.v[nBCSA] + m.P.VOffset
		rDown := m.P.RSA + m.sites[sOpen7]
		if delta >= 0 {
			m.src(nBTSA, t.VDD, m.P.RSA)
			m.src(nBCSA, 0, rDown)
		} else {
			m.src(nBCSA, t.VDD, m.P.RSA)
			m.src(nBTSA, 0, rDown)
		}
	}

	if ph.csl {
		m.pair(nBTIO, nIO, m.P.RCSL)
		m.pair(nBCIO, nIOB, m.P.RCSL)
	}
	if ph.wen {
		hi, lo := 0.0, t.VDD
		if ph.wdata == 1 {
			hi, lo = t.VDD, 0
		}
		m.src(nIO, hi, t.RWriteDriver)
		m.src(nIOB, lo, t.RWriteDriver)
	}
	if ph.ren {
		m.pair(nIO, nOutBuf, t.ROutSwitch)
	}

	// Short/bridge sites (negligible conductance when healthy).
	m.src(nCell0, 0, m.sites[sShortCellGnd])
	m.src(nBTCell, t.VDD, m.sites[sShortBLVdd])
	m.pair(nBTCell, nBCCell, m.sites[sBridgeBLBL])
	m.pair(nCell0, nCell1, m.sites[sBridgeCells])

	// Jacobi-implicit nodal update.
	for n := 0; n < numNodes; n++ {
		gc := m.cap[n] / dt
		m.v[n] = (gc*m.v[n] + m.accGV[n]) / (gc + m.accG[n])
	}
	m.time += dt
}

// wlFraction maps the victim's gate voltage to an access-conductance
// fraction in [0,1].
func (m *Model) wlFraction() float64 {
	t := m.P.Tech
	von := m.P.WLOnFraction * t.VPP
	return numeric.Clamp((m.v[nWL0Gate]-1.0)/(von-1.0), 0, 1)
}

// Precharge runs one precharge/equalize phase.
func (m *Model) Precharge() error {
	m.run(m.P.Tech.TPre, phase{pre: true, dref: true})
	return nil
}

// access mirrors dram.Column: release precharge, raise word lines, share,
// then sense (which also restores).
func (m *Model) access(cell int) phase {
	t := m.P.Tech
	ph := phase{dwlc: true}
	if cell == 0 {
		ph.wl0 = true
	} else {
		ph.wl1 = true
	}
	m.run(t.TSettle, phase{})
	m.run(t.TShare, ph)
	ph.sen = true
	m.run(t.TSense, ph)
	return ph
}

// closeOp drops the word lines, then the SA.
func (m *Model) closeOp(ph phase) {
	t := m.P.Tech
	ph.wl0, ph.wl1, ph.dwlc = false, false, false
	m.run(t.TClose, ph)
	ph.sen = false
	m.run(t.TClose, ph)
}

// Write performs a w0/w1 to the cell (read-modify-write, like the
// electrical controller).
func (m *Model) Write(cell, bit int) error {
	if bit != 0 && bit != 1 {
		panic(fmt.Sprintf("behav: write data %d out of range", bit))
	}
	t := m.P.Tech
	if err := m.Precharge(); err != nil {
		return err
	}
	ph := m.access(cell)
	ph.csl, ph.wen, ph.wdata = true, true, bit
	m.run(t.TWrite, ph)
	ph.csl, ph.wen = false, false
	m.run(t.TSettle, ph)
	m.closeOp(ph)
	return nil
}

// Read performs a read and returns the output-buffer value.
func (m *Model) Read(cell int) (int, error) {
	t := m.P.Tech
	if err := m.Precharge(); err != nil {
		return 0, err
	}
	ph := m.access(cell)
	ph.csl, ph.ren = true, true
	m.run(t.TIO, ph)
	ph.csl, ph.ren = false, false
	m.run(t.TSettle, ph)
	m.closeOp(ph)
	return m.OutputBit(), nil
}
