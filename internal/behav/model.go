// Package behav is the fast analytical model of the DRAM column: the
// same topology, defect sites, floating nets and operation phases as
// internal/dram, but integrated with a Jacobi-implicit nodal RC update
// and a rule-based sense amplifier instead of full Newton transient
// simulation. It is orders of magnitude faster, which makes
// full-resolution (R_def, U) planes and the Table 1 pipeline cheap, and
// it serves as the fidelity ablation against the electrical model
// (cross-validated in behav tests and the benchmark harness).
package behav

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/dram"
)

// Params tunes the analytical model. Defaults mirror dram.Default().
type Params struct {
	// Tech supplies voltages, capacitances and phase timings.
	Tech dram.Technology
	// DT is the integration step. The Jacobi-implicit update is
	// unconditionally stable, but couplings propagate one hop per step,
	// so DT must stay well below the fastest RC product for accuracy.
	DT float64
	// RAccess is the on-resistance of an access device.
	RAccess float64
	// RPre is the on-resistance of a precharge device.
	RPre float64
	// RCSL is the on-resistance of a column-select device.
	RCSL float64
	// RSA is the characteristic drive resistance of the sense amp.
	RSA float64
	// VOffset is the input-referred SA offset: zero differential
	// resolves to 1 (the dram package's SAImbalance analogue).
	VOffset float64
	// WLOnFraction of VPP above which an access device is fully on.
	WLOnFraction float64
	// RWire is the minimum (distributed-wire) resistance of bit-line
	// segments in the analytical model; healthy defect sites are floored
	// to it so the Jacobi update stays well damped.
	RWire float64
}

// DefaultParams returns the calibrated analytical parameters.
func DefaultParams() Params {
	return Params{
		Tech:         dram.Default(),
		DT:           0.005e-9,
		RAccess:      6e3,
		RPre:         900,
		RCSL:         250,
		RSA:          2e3,
		VOffset:      0.06,
		WLOnFraction: 0.55,
		RWire:        300,
	}
}

// Node indices of the analytical model. The string net names of the dram
// package are interned to these for speed.
const (
	nBTPre = iota
	nBTCell
	nBTRef
	nBTSA
	nBTIO
	nBCPre
	nBCCell
	nBCRef
	nBCSA
	nBCIO
	nCell0
	nCell1
	nRefC
	nRefT
	nWL0Gate
	nIO
	nIOB
	nOutBuf
	numNodes
)

// netIndex maps dram net names to node indices.
var netIndex = map[string]int{
	dram.NetBTPre: nBTPre, dram.NetBTCell: nBTCell, dram.NetBTRef: nBTRef,
	dram.NetBTSA: nBTSA, dram.NetBTIO: nBTIO,
	dram.NetBCPre: nBCPre, dram.NetBCCell: nBCCell, dram.NetBCRef: nBCRef,
	dram.NetBCSA: nBCSA, dram.NetBCIO: nBCIO,
	dram.NetCell0Store: nCell0, dram.NetCell1Store: nCell1,
	dram.NetRefStore: nRefC, "dts": nRefT,
	dram.NetWL0Gate: nWL0Gate,
	dram.NetIO:      nIO, dram.NetIOB: nIOB,
	dram.NetOutBuf: nOutBuf,
}

// Site indices for the defect-site resistances.
const (
	sOpen1 = iota
	sOpen2
	sOpen3
	sOpen4
	sOpen5
	sOpen6
	sOpen7
	sOpen8
	sOpen9
	sShortCellGnd
	sShortBLVdd
	sBridgeBLBL
	sBridgeCells
	numSites
)

// siteIndex maps dram site names to site indices.
var siteIndex = map[string]int{
	dram.SiteOpen1Cell: sOpen1, dram.SiteOpen2RefCell: sOpen2,
	dram.SiteOpen3Pre: sOpen3, dram.SiteOpen4BLPre: sOpen4,
	dram.SiteOpen5BLCell: sOpen5, dram.SiteOpen6BLRef: sOpen6,
	dram.SiteOpen7SA: sOpen7, dram.SiteOpen8BLIO: sOpen8,
	dram.SiteOpen9WL:      sOpen9,
	dram.SiteShortCellGnd: sShortCellGnd, dram.SiteShortBLVdd: sShortBLVdd,
	dram.SiteBridgeBLBL: sBridgeBLBL, dram.SiteBridgeCells: sBridgeCells,
}

// shortSites are absent (ROff) when healthy, unlike the open sites.
var shortSites = map[int]bool{
	sShortCellGnd: true, sShortBLVdd: true, sBridgeBLBL: true, sBridgeCells: true,
}

// Model is the analytical column. It accepts the same net and defect-site
// names as dram.Column so the defect package's float groups apply
// unchanged.
type Model struct {
	P Params

	v     [numNodes]float64
	cap   [numNodes]float64
	sites [numSites]float64
	time  float64

	accG, accGV [numNodes]float64

	// Compiled step program, rebuilt by every run() call from the live
	// parameters and site resistances (see ops.go). prog and gcDt are
	// scratch, not state: a value copy of Model remains a full snapshot.
	prog []term
	gcDt [numNodes]float64
}

// New builds a healthy analytical column in the standby state.
func New(p Params) *Model {
	t := p.Tech
	m := &Model{P: p}
	for i := range m.sites {
		if shortSites[i] {
			m.sites[i] = 1e12 // absent
		} else {
			m.sites[i] = t.RWire
		}
	}
	m.cap = [numNodes]float64{
		nBTPre: t.CBLPre, nBTCell: t.CBLCell, nBTRef: t.CBLRef,
		nBTSA: t.CBLSA, nBTIO: t.CBLIO,
		nBCPre: t.CBLPre, nBCCell: t.CBLCell, nBCRef: t.CBLRef,
		nBCSA: t.CBLSA, nBCIO: t.CBLIO,
		nCell0: t.CCell, nCell1: t.CCell,
		nRefC: t.CRefCell, nRefT: t.CRefCell,
		nWL0Gate: t.CWLGate,
		nIO:      t.CIO, nIOB: t.CIO,
		nOutBuf: t.COut,
	}
	// Standby state.
	for _, n := range []int{nBTPre, nBTCell, nBTRef, nBTSA, nBTIO, nBCPre, nBCCell, nBCRef, nBCSA, nBCIO} {
		m.v[n] = t.VBLEQ
	}
	m.v[nRefC] = t.VRefCell
	m.v[nRefT] = t.VRefCell
	return m
}

// SetSiteResistance injects an open at a named site.
func (m *Model) SetSiteResistance(site string, ohms float64) {
	idx, ok := siteIndex[site]
	if !ok {
		panic(fmt.Sprintf("behav: unknown defect site %q", site))
	}
	if ohms <= 0 {
		panic("behav: resistance must be positive")
	}
	m.sites[idx] = ohms
}

// Voltage returns a net voltage.
func (m *Model) Voltage(net string) float64 {
	idx, ok := netIndex[net]
	if !ok {
		panic(fmt.Sprintf("behav: unknown net %q", net))
	}
	return m.v[idx]
}

// SetNodeVoltages forces the named nets to v.
func (m *Model) SetNodeVoltages(v float64, nets ...string) {
	for _, n := range nets {
		idx, ok := netIndex[n]
		if !ok {
			panic(fmt.Sprintf("behav: unknown net %q", n))
		}
		m.v[idx] = v
	}
}

// CellVoltage returns the storage voltage of cell 0 or 1.
func (m *Model) CellVoltage(cell int) float64 {
	return m.v[storeNode(cell)]
}

// CellBit classifies a cell's stored state.
func (m *Model) CellBit(cell int) int {
	if m.CellVoltage(cell) > m.P.Tech.LogicThreshold() {
		return 1
	}
	return 0
}

// OutputBit classifies the output buffer.
func (m *Model) OutputBit() int {
	if m.v[nOutBuf] > m.P.Tech.LogicThreshold() {
		return 1
	}
	return 0
}

func storeNode(cell int) int {
	switch cell {
	case 0:
		return nCell0
	case 1:
		return nCell1
	}
	panic(fmt.Sprintf("behav: cell index %d out of range", cell))
}
