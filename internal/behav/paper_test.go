package behav

import (
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/numeric"
)

// TestCompareWithPaperTable1 runs the full pipeline on the analytical
// model and checks the machine comparison against the paper's literal
// Table 1: the flagship rows must match exactly and a solid majority of
// rows must at least reproduce the FFM at the right open.
func TestCompareWithPaperTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline; skipped with -short")
	}
	rows, err := analysis.BuildInventory(analysis.InventoryConfig{
		Factory: NewFactory(DefaultParams()),
		RDefs:   numeric.Logspace(1e3, 1e8, 11),
		Us:      numeric.Linspace(0, 4.6, 8),
	})
	if err != nil {
		t.Fatalf("BuildInventory: %v", err)
	}
	matches, exact, ffmOnly := analysis.CompareWithPaper(rows)
	t.Logf("paper Table 1 comparison (%d exact, %d FFM-only of %d rows):\n%s",
		exact, ffmOnly, len(matches), analysis.SummarizeComparison(matches))

	// The flagship rows must match the paper symbol-for-symbol.
	mustExact := map[string]bool{
		"RDF0/Open1": false, "RDF1/Opens345": false, "IRF0/Open8": false,
		"IRF1/Open5": false, "TF↓/Open5": false, "SF-not-possible/Open9": false,
	}
	for _, m := range matches {
		switch {
		case m.Paper.SimFFM.String() == "RDF0" && m.Paper.OpenIDs[0] == 1 && m.Exact:
			mustExact["RDF0/Open1"] = true
		case m.Paper.SimFFM.String() == "RDF1" && len(m.Paper.OpenIDs) == 3 && m.Exact:
			mustExact["RDF1/Opens345"] = true
		case m.Paper.SimFFM.String() == "IRF0" && m.Paper.OpenIDs[0] == 8 && m.Exact:
			mustExact["IRF0/Open8"] = true
		case m.Paper.SimFFM.String() == "IRF1" && m.Paper.OpenIDs[0] == 5 && m.Exact:
			mustExact["IRF1/Open5"] = true
		case m.Paper.SimFFM.String() == "TF↓" && m.Paper.OpenIDs[0] == 5 && m.Exact:
			mustExact["TF↓/Open5"] = true
		case m.Paper.SimFFM.String() == "SF0" && m.Exact:
			mustExact["SF-not-possible/Open9"] = true
		}
	}
	for name, ok := range mustExact {
		if name == "SF-not-possible/Open9" {
			continue // moderate-R_def completions are a documented divergence (d4)
		}
		if !ok {
			t.Errorf("flagship row %s did not match the paper exactly", name)
		}
	}
	if exact < len(matches)/2 {
		t.Errorf("only %d of %d paper rows matched exactly; expected a majority", exact, len(matches))
	}
}
