package behav

import (
	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
)

// memory adapts Model to analysis.Memory.
type memory struct {
	m *Model
}

func (a *memory) Write(cell, bit int) error  { return a.m.Write(cell, bit) }
func (a *memory) Read(cell int) (int, error) { return a.m.Read(cell) }
func (a *memory) Idle() error                { return a.m.Precharge() }

func (a *memory) ForceVictim(bit int) {
	v := 0.0
	if bit == 1 {
		v = a.m.P.Tech.VDD
	}
	a.m.SetNodeVoltages(v, dram.NetCell0Store)
}

func (a *memory) SetFloat(nets []string, u float64) {
	a.m.SetNodeVoltages(u, nets...)
}

func (a *memory) VictimBit() int { return a.m.CellBit(0) }

// NewFactory returns an analysis.Factory backed by the analytical model.
func NewFactory(p Params) analysis.Factory {
	return func(open defect.Open, rdef float64) (analysis.Memory, error) {
		m := New(p)
		m.SetSiteResistance(open.Site, rdef)
		return &memory{m: m}, nil
	}
}
