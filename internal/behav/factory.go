package behav

import (
	"fmt"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
)

// memory adapts Model to analysis.Memory.
type memory struct {
	m *Model
}

func (a *memory) Write(cell, bit int) error  { return a.m.Write(cell, bit) }
func (a *memory) Read(cell int) (int, error) { return a.m.Read(cell) }
func (a *memory) Idle() error                { return a.m.Precharge() }

func (a *memory) ForceVictim(bit int) {
	v := 0.0
	if bit == 1 {
		v = a.m.P.Tech.VDD
	}
	a.m.SetNodeVoltages(v, dram.NetCell0Store)
}

func (a *memory) SetFloat(nets []string, u float64) {
	a.m.SetNodeVoltages(u, nets...)
}

func (a *memory) VictimBit() int { return a.m.CellBit(0) }

// modelState is the dynamic state of a Model within one analysis
// protocol: parameters, capacitances and site resistances are fixed
// after construction and defect injection, so node voltages plus the
// clock fully determine all subsequent behaviour. (accG/accGV, the
// compiled program and gcDt are per-step/per-run scratch.)
type modelState struct {
	v    [numNodes]float64
	time float64
}

// Snapshot implements analysis.Snapshotter.
func (a *memory) Snapshot() any {
	return &modelState{v: a.m.v, time: a.m.time}
}

// Restore implements analysis.Snapshotter. It must only be applied to
// the model that produced the snapshot (or one configured identically).
func (a *memory) Restore(state any) {
	s := state.(*modelState)
	a.m.v = s.v
	a.m.time = s.time
}

// NewFactory returns an analysis.Factory backed by the analytical model.
// Model construction is cheap, so no pooling is needed; the memories
// implement analysis.Snapshotter for the replay cache.
func NewFactory(p Params) analysis.Factory {
	return func(open defect.Open, rdef float64) (analysis.Memory, error) {
		m := New(p)
		m.SetSiteResistance(open.Site, rdef)
		for _, x := range open.Extra {
			ohms := x.Ohms
			if ohms == 0 {
				ohms = rdef
			}
			m.SetSiteResistance(x.Site, ohms)
		}
		return &memory{m: m}, nil
	}
}

// Fingerprint identifies the analytical model for memo and store
// keying: the "behav" kind plus every tuning parameter and the full
// embedded technology, so any calibration change invalidates cached
// outcomes. %#v renders Params fields in declaration order, making the
// encoding deterministic.
func Fingerprint(p Params) analysis.Fingerprint {
	return analysis.NewFingerprint("behav", fmt.Sprintf("%#v", p))
}
