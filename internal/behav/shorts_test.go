package behav

import (
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/numeric"
)

// TestShortsAndBridgesProduceNoPartialFaults reproduces the paper's
// Section 2 claim: shorts and bridges do not restrict current flow, so
// the faulty behaviour they cause does not depend on initialized
// floating voltages — at every defect strength where a fault appears, it
// appears for every U.
func TestShortsAndBridgesProduceNoPartialFaults(t *testing.T) {
	factory := NewFactory(DefaultParams())
	// Short/bridge severity axis: LOW resistance = severe.
	rdefs := numeric.Logspace(1e2, 1e6, 5)
	us := []float64{0, 1.65, 3.3}
	anyFault := false
	for _, sb := range defect.ShortsAndBridges() {
		o := sb.AsOpenDescriptor()
		for _, sos := range analysis.StaticSOSes() {
			plane, err := analysis.SweepPlane(analysis.SweepConfig{
				Factory: factory, Open: o, Float: sb.Probe, SOS: sos,
				RDefs: rdefs, Us: us,
			})
			if err != nil {
				t.Fatalf("%s / %q: %v", sb.Name(), sos, err)
			}
			if plane.FaultyFraction() > 0 {
				anyFault = true
			}
			if findings := analysis.IdentifyPartialFaults(plane); len(findings) != 0 {
				t.Errorf("%s / %q: partial findings %v — shorts/bridges must not create partial faults",
					sb.Name(), sos, findings)
			}
		}
	}
	if !anyFault {
		t.Error("hard shorts must cause some (non-partial) faulty behaviour")
	}
}

// TestHardCellShortIsStuckAt checks the cell-to-ground short behaves as
// an ordinary stuck-at-0: every 1-state SOS fails identically for all U.
func TestHardCellShortIsStuckAt(t *testing.T) {
	factory := NewFactory(DefaultParams())
	sb := defect.ShortsAndBridges()[0] // cell to ground
	o := sb.AsOpenDescriptor()
	for _, u := range []float64{0, 3.3} {
		out, err := analysis.RunSOS(factory, o, 200, sb.Probe.Nets, u, analysis.StaticSOSes()[1] /* init 1, no op */)
		if err != nil {
			t.Fatal(err)
		}
		if out.F != 0 {
			t.Errorf("U=%g: cell shorted to ground holds %d, want 0", u, out.F)
		}
	}
}
