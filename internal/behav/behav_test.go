package behav

import (
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/dram"
	"github.com/memtest/partialfaults/internal/fp"
)

func TestHealthyWriteReadRoundTrip(t *testing.T) {
	m := New(DefaultParams())
	for _, cell := range []int{0, 1} {
		for _, bit := range []int{1, 0, 1} {
			if err := m.Write(cell, bit); err != nil {
				t.Fatalf("Write(%d,%d): %v", cell, bit, err)
			}
			got, err := m.Read(cell)
			if err != nil {
				t.Fatalf("Read: %v", err)
			}
			if got != bit {
				t.Errorf("cell %d: read %d after writing %d", cell, got, bit)
			}
		}
	}
}

func TestReadRestoresCell(t *testing.T) {
	m := New(DefaultParams())
	if err := m.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if got, _ := m.Read(0); got != 1 {
			t.Fatalf("read %d returned %d", i, got)
		}
	}
	if v := m.CellVoltage(0); v < 0.8*m.P.Tech.VDD {
		t.Errorf("cell not restored: %gV", v)
	}
}

func TestCellIndependence(t *testing.T) {
	m := New(DefaultParams())
	if err := m.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.Write(1, 0); err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Read(0); got != 1 {
		t.Error("cell 0 disturbed by cell 1 write")
	}
	if got, _ := m.Read(1); got != 0 {
		t.Error("cell 1 wrong")
	}
}

func TestUnknownNetAndSitePanic(t *testing.T) {
	m := New(DefaultParams())
	for name, fn := range map[string]func(){
		"voltage": func() { m.Voltage("nope") },
		"set":     func() { m.SetNodeVoltages(1, "nope") },
		"site":    func() { m.SetSiteResistance("nope", 1e3) },
		"badR":    func() { m.SetSiteResistance(dram.SiteOpen1Cell, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

// TestOpen4MatchesSpiceModel cross-validates the analytical model against
// the electrical simulation on the paper's Figure 3(a) experiment: same
// qualitative region — RDF1 at low floating BL voltage for a large
// bit-line open, no fault at high voltage or small resistance.
func TestOpen4MatchesSpiceModel(t *testing.T) {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	sos := fp.NewSOS(fp.Init1, fp.R(1))
	spice := analysis.NewSpiceFactory(dram.Default())
	fast := NewFactory(DefaultParams())

	for _, tc := range []struct {
		rdef, u float64
	}{
		{1e3, 0}, {1e7, 0}, {1e7, 3.3}, {1e5, 0.5}, {1e5, 2.8},
	} {
		a, err := analysis.RunSOS(spice, o, tc.rdef, grp.Nets, tc.u, sos)
		if err != nil {
			t.Fatalf("spice point (%g,%g): %v", tc.rdef, tc.u, err)
		}
		b, err := analysis.RunSOS(fast, o, tc.rdef, grp.Nets, tc.u, sos)
		if err != nil {
			t.Fatalf("behav point (%g,%g): %v", tc.rdef, tc.u, err)
		}
		_, aF := analysis.ClassifyOutcome(sos, a)
		_, bF := analysis.ClassifyOutcome(sos, b)
		if aF != bF {
			t.Errorf("point (R=%g, U=%g): spice faulty=%v, behav faulty=%v", tc.rdef, tc.u, aF, bF)
		}
	}
}

// TestOpen1WedgeShape reproduces Figure 4(a)'s qualitative wedge in the
// analytical model: RDF0 onset at high floating cell voltage is at much
// lower R_def than at U = 0.
func TestOpen1WedgeShape(t *testing.T) {
	o, _ := defect.ByID(1)
	grp, _ := o.Float(defect.FloatMemoryCell)
	fast := NewFactory(DefaultParams())
	plane, err := analysis.SweepPlane(analysis.SweepConfig{
		Factory: fast, Open: o, Float: grp,
		SOS:   fp.NewSOS(fp.Init0, fp.R(0)),
		RDefs: []float64{1e4, 5e4, 1e5, 3e5, 1e6, 3e6},
		Us:    []float64{0, 1.6},
	})
	if err != nil {
		t.Fatalf("SweepPlane: %v", err)
	}
	onHigh, okH := plane.MinRDefWithFFM(fp.RDF0, 1)
	onLow, okL := plane.MinRDefWithFFM(fp.RDF0, 0)
	if !okH {
		t.Fatal("RDF0 never appears at U=1.6")
	}
	if okL && onLow <= onHigh {
		t.Errorf("onset at U=0 (%.0e) must exceed onset at U=1.6 (%.0e)", onLow, onHigh)
	}
}

// TestCompletionSearchFast runs the full completing-operation search on
// the analytical model for Open 4's RDF1 and expects the paper's result.
func TestCompletionSearchFast(t *testing.T) {
	o, _ := defect.ByID(4)
	grp, _ := o.Float(defect.FloatBitLine)
	comp, err := analysis.SearchCompletion(analysis.CompletionConfig{
		Factory: NewFactory(DefaultParams()), Open: o, Float: grp,
		Base:  fp.MustParse("<1r1/0/0>"),
		RDefs: []float64{1e6, 1e7},
		Us:    []float64{0, 0.8, 1.65, 2.5, 3.3},
	})
	if err != nil {
		t.Fatalf("SearchCompletion: %v", err)
	}
	if !comp.Possible {
		t.Fatal("completion must exist")
	}
	if got := comp.Completed.String(); got != "<1v [w0BL] r1v/0/0>" {
		t.Errorf("completed = %s, want <1v [w0BL] r1v/0/0>", got)
	}
}

func TestOpen9WordLineStateFault(t *testing.T) {
	// Open 9 with a floating-high word line: the cell charges from the
	// precharged bit line without any operation — the paper's SF0, which
	// no completing operation can fix ("Not possible").
	o, _ := defect.ByID(9)
	grp, _ := o.Float(defect.FloatWordLine)
	fast := NewFactory(DefaultParams())
	sos := fp.NewSOS(fp.Init0) // no operations: state fault
	// Floating WL high: cell connects to BL and charges up.
	out, err := analysis.RunSOS(fast, o, 1e8, grp.Nets, 4.0, sos)
	if err != nil {
		t.Fatal(err)
	}
	obs, faulty := analysis.ClassifyOutcome(sos, out)
	if !faulty {
		t.Fatal("floating-high WL must charge the cell (SF0)")
	}
	if obs.Classify() != fp.SF0 {
		t.Errorf("classified %s, want SF0", obs.Classify())
	}
	// Floating WL low: cell stays isolated, no fault.
	out, err = analysis.RunSOS(fast, o, 1e8, grp.Nets, 0, sos)
	if err != nil {
		t.Fatal(err)
	}
	if _, faulty := analysis.ClassifyOutcome(sos, out); faulty {
		t.Error("floating-low WL must leave the cell at 0")
	}
}

func TestOpen9CompletionNotPossible(t *testing.T) {
	// The word line cannot be manipulated by memory operations, so the
	// search must come back empty — Table 1's "Not possible".
	o, _ := defect.ByID(9)
	grp, _ := o.Float(defect.FloatWordLine)
	comp, err := analysis.SearchCompletion(analysis.CompletionConfig{
		Factory: NewFactory(DefaultParams()), Open: o, Float: grp,
		Base:   fp.MustParse("<0/1/->"),
		RDefs:  []float64{1e8},
		Us:     []float64{0, 4.0},
		MaxOps: 2,
	})
	if err != nil {
		t.Fatalf("SearchCompletion: %v", err)
	}
	if comp.Possible {
		t.Errorf("SF0 on Open 9 completed as %s; the paper proves this impossible", comp.Completed)
	}
}
