package behav

import (
	"testing"

	"github.com/memtest/partialfaults/internal/analysis"
	"github.com/memtest/partialfaults/internal/defect"
	"github.com/memtest/partialfaults/internal/fp"
	"github.com/memtest/partialfaults/internal/numeric"
)

// miniInventory runs the Table 1 pipeline on a single open with a small
// grid.
func miniInventory(t *testing.T, openID int) []analysis.Row {
	t.Helper()
	o, ok := defect.ByID(openID)
	if !ok {
		t.Fatalf("open %d missing", openID)
	}
	rows, err := analysis.BuildInventory(analysis.InventoryConfig{
		Factory: NewFactory(DefaultParams()),
		Opens:   []defect.Open{o},
		RDefs:   numeric.Logspace(1e4, 1e8, 5),
		Us:      numeric.Linspace(0, 4.6, 4),
	})
	if err != nil {
		t.Fatalf("BuildInventory(open %d): %v", openID, err)
	}
	return rows
}

func TestInventoryOpen4FindsThePaperRow(t *testing.T) {
	rows := miniInventory(t, 4)
	var found bool
	for _, r := range rows {
		if r.SimFFM == fp.RDF1 && r.Possible &&
			r.Completed.String() == "<1v [w0BL] r1v/0/0>" {
			found = true
			if r.ComFFM != fp.RDF0 {
				t.Errorf("Com. FFM = %s, want RDF0", r.ComFFM)
			}
			if r.Float != defect.FloatBitLine {
				t.Errorf("mediating voltage = %s, want Bit line", r.Float)
			}
		}
	}
	if !found {
		t.Fatalf("inventory lacks the paper's RDF1 row; rows: %v", rowStrings(rows))
	}
}

func TestInventoryOpen1FindsTripleWriteCompletion(t *testing.T) {
	rows := miniInventory(t, 1)
	var found bool
	for _, r := range rows {
		if r.SimFFM == fp.RDF0 && r.Possible &&
			r.Completed.String() == "<[w1 w1 w0] r0/1/1>" {
			found = true
		}
	}
	if !found {
		t.Fatalf("inventory lacks the paper's <[w1 w1 w0] r0/1/1> row; rows: %v", rowStrings(rows))
	}
}

// TestInventorySatisfiesSection4Relations verifies the paper's Section 4
// property on every completed row: the completed FP has at least as many
// cell accesses and/or operations as its partial counterpart.
func TestInventorySatisfiesSection4Relations(t *testing.T) {
	for _, id := range []int{1, 4, 5} {
		for _, r := range miniInventory(t, id) {
			if !r.Possible {
				continue
			}
			base := r.Completed.Base()
			if !fp.CompletedSatisfiesRelations(base, r.Completed) {
				t.Errorf("open %d: completed %s violates the #C/#O relations vs %s",
					id, r.Completed, base)
			}
			if got := r.Completed.S.NumOps(); got <= base.S.NumOps()-1 {
				t.Errorf("open %d: completed %s has fewer ops than its base", id, r.Completed)
			}
		}
	}
}

// TestInventoryComplementConsistency: every row's Com. FFM must be the
// data complement of its Sim. FFM (the [Al-Ars00] relation).
func TestInventoryComplementConsistency(t *testing.T) {
	for _, r := range miniInventory(t, 4) {
		if r.ComFFM != r.SimFFM.Complement() {
			t.Errorf("row %s: Com. FFM %s is not the complement", r.SimFFM, r.ComFFM)
		}
	}
}

func rowStrings(rows []analysis.Row) []string {
	out := make([]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, r.SimFFM.String()+":"+r.CompletedString())
	}
	return out
}
