package device

import "github.com/memtest/partialfaults/internal/circuit"

// This file implements circuit.Topological for every device model, so
// the static-analysis layer (internal/netlint) can reason about
// connectivity — floating nets, MNA solvability, per-defect floating-line
// prediction — without running a transient simulation.

// Branches implements circuit.Topological.
func (r *Resistor) Branches() []circuit.Branch {
	return []circuit.Branch{{A: r.a, B: r.b, Kind: circuit.PathConductive, Ohms: r.ohms}}
}

// Branches implements circuit.Topological.
func (c *Capacitor) Branches() []circuit.Branch {
	return []circuit.Branch{{A: c.a, B: c.b, Kind: circuit.PathCapacitive}}
}

// Branches implements circuit.Topological.
func (v *VSource) Branches() []circuit.Branch {
	return []circuit.Branch{{A: v.p, B: v.n, Kind: circuit.PathSource}}
}

// Branches implements circuit.Topological.
func (s *ISource) Branches() []circuit.Branch {
	return []circuit.Branch{{A: s.p, B: s.n, Kind: circuit.PathCurrent}}
}

// Branches implements circuit.Topological: the switch channel conducts
// when v(ctrl) − v(ctrlRef) exceeds the threshold, i.e. active-high.
func (s *Switch) Branches() []circuit.Branch {
	return []circuit.Branch{
		{A: s.a, B: s.b, Kind: circuit.PathGated, Gate: s.ctrl, GateActiveHigh: true},
		{A: s.ctrl, B: s.ctrlRef, Kind: circuit.PathSense},
	}
}

// Branches implements circuit.Topological: the channel is gated by the
// gate net (active-high for NMOS, active-low for PMOS); the gate itself
// is a high-impedance sense terminal.
func (m *MOSFET) Branches() []circuit.Branch {
	return []circuit.Branch{
		{A: m.d, B: m.s, Kind: circuit.PathGated, Gate: m.g, GateActiveHigh: !m.pmos},
		{A: m.g, B: m.s, Kind: circuit.PathSense},
	}
}
