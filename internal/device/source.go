package device

import (
	"fmt"
	"sort"
)

// Waveform maps simulation time to a source value. Implementations must
// be pure functions of time so that Newton iterations within a timestep
// see a consistent value.
type Waveform interface {
	// At returns the source value at absolute time t (seconds).
	At(t float64) float64
}

// DC is a constant waveform.
type DC float64

// At implements Waveform.
func (d DC) At(float64) float64 { return float64(d) }

// PWL is a piecewise-linear waveform defined by (time, value) breakpoints.
// Before the first breakpoint it holds the first value; after the last it
// holds the last value.
type PWL struct {
	times  []float64
	values []float64
}

// NewPWL builds a piecewise-linear waveform. Times must be strictly
// increasing and at least one point must be given.
func NewPWL(points ...[2]float64) *PWL {
	if len(points) == 0 {
		panic("device: PWL requires at least one point")
	}
	p := &PWL{}
	for i, pt := range points {
		if i > 0 && pt[0] <= p.times[i-1] {
			panic(fmt.Sprintf("device: PWL times must be strictly increasing (point %d)", i))
		}
		p.times = append(p.times, pt[0])
		p.values = append(p.values, pt[1])
	}
	return p
}

// At implements Waveform by linear interpolation.
func (p *PWL) At(t float64) float64 {
	n := len(p.times)
	if t <= p.times[0] {
		return p.values[0]
	}
	if t >= p.times[n-1] {
		return p.values[n-1]
	}
	// First breakpoint strictly greater than t.
	i := sort.SearchFloat64s(p.times, t)
	if p.times[i] == t {
		return p.values[i]
	}
	t0, t1 := p.times[i-1], p.times[i]
	v0, v1 := p.values[i-1], p.values[i]
	return v0 + (v1-v0)*(t-t0)/(t1-t0)
}

// Append adds a breakpoint after the existing ones.
func (p *PWL) Append(t, v float64) {
	if n := len(p.times); n > 0 && t <= p.times[n-1] {
		panic("device: PWL Append time must increase")
	}
	p.times = append(p.times, t)
	p.values = append(p.values, v)
}

// Last returns the final breakpoint time.
func (p *PWL) Last() float64 { return p.times[len(p.times)-1] }
