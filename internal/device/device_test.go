package device

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/memtest/partialfaults/internal/circuit"
	"github.com/memtest/partialfaults/internal/numeric"
)

// stampOnce builds a tiny context and stamps a single element.
func stampOnce(e circuit.Element, size int, x, xPrev []float64, dt, tm float64) (*numeric.Matrix, []float64) {
	a := numeric.NewMatrix(size, size)
	b := make([]float64, size)
	ctx := &circuit.StampContext{A: a, B: b, X: x, XPrev: xPrev, Dt: dt, Time: tm}
	e.Stamp(ctx)
	return a, b
}

func TestResistorStamp(t *testing.T) {
	r := NewResistor("R1", 1, 2, 100)
	a, _ := stampOnce(r, 2, []float64{0, 0}, []float64{0, 0}, 0, 0)
	g := 0.01
	if a.At(0, 0) != g || a.At(1, 1) != g || a.At(0, 1) != -g || a.At(1, 0) != -g {
		t.Errorf("resistor stamp wrong: %v", a)
	}
}

func TestResistorToGroundStamp(t *testing.T) {
	r := NewResistor("R1", 1, 0, 200)
	a, _ := stampOnce(r, 1, []float64{0}, []float64{0}, 0, 0)
	if a.At(0, 0) != 0.005 {
		t.Errorf("grounded resistor stamp = %g, want 0.005", a.At(0, 0))
	}
}

func TestResistorSetResistance(t *testing.T) {
	r := NewResistor("R1", 1, 0, 100)
	r.SetResistance(500)
	if r.Resistance() != 500 {
		t.Errorf("Resistance = %g, want 500", r.Resistance())
	}
	defer func() {
		if recover() == nil {
			t.Error("SetResistance(0) should panic")
		}
	}()
	r.SetResistance(0)
}

func TestCapacitorStampDCIsOpen(t *testing.T) {
	c := NewCapacitor("C1", 1, 0, 1e-12)
	a, b := stampOnce(c, 1, []float64{1}, []float64{1}, 0, 0)
	if a.At(0, 0) != 0 || b[0] != 0 {
		t.Error("capacitor must not stamp at DC")
	}
}

func TestCapacitorCompanionHoldsVoltage(t *testing.T) {
	// With no other current, solving the 1-node system must return the
	// previous voltage exactly (companion model consistency).
	c := NewCapacitor("C1", 1, 0, 1e-12)
	xPrev := []float64{2.5}
	a, b := stampOnce(c, 1, xPrev, xPrev, 1e-9, 0)
	v := b[0] / a.At(0, 0)
	if math.Abs(v-2.5) > 1e-12 {
		t.Errorf("companion model drift: v = %g, want 2.5", v)
	}
}

func TestPWLInterpolation(t *testing.T) {
	p := NewPWL([2]float64{0, 0}, [2]float64{1, 10}, [2]float64{3, 10}, [2]float64{4, 0})
	cases := []struct{ t, want float64 }{
		{-1, 0}, {0, 0}, {0.5, 5}, {1, 10}, {2, 10}, {3.5, 5}, {4, 0}, {9, 0},
	}
	for _, c := range cases {
		if got := p.At(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PWL.At(%g) = %g, want %g", c.t, got, c.want)
		}
	}
}

func TestPWLAppendAndLast(t *testing.T) {
	p := NewPWL([2]float64{0, 1})
	p.Append(2, 5)
	if p.Last() != 2 {
		t.Errorf("Last = %g, want 2", p.Last())
	}
	if got := p.At(1); got != 3 {
		t.Errorf("At(1) = %g, want 3", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Append with non-increasing time should panic")
		}
	}()
	p.Append(1, 0)
}

func TestPWLValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewPWL with no points should panic")
		}
	}()
	NewPWL()
}

func TestDCWaveform(t *testing.T) {
	if DC(2.2).At(123) != 2.2 {
		t.Error("DC waveform must be constant")
	}
}

func TestLevel1Regions(t *testing.T) {
	beta, vt, lambda := 1e-3, 0.5, 0.0
	// Cutoff.
	if id, gm, gds := level1(beta, vt, lambda, 0.3, 1.0); id != 0 || gm != 0 || gds != 0 {
		t.Error("cutoff must give zero current and conductances")
	}
	// Saturation: id = beta/2 (vgs−vt)².
	id, gm, _ := level1(beta, vt, lambda, 1.5, 3.0)
	wantID := beta / 2 * 1.0 * 1.0
	if math.Abs(id-wantID) > 1e-15 {
		t.Errorf("sat id = %g, want %g", id, wantID)
	}
	if math.Abs(gm-beta*1.0) > 1e-15 {
		t.Errorf("sat gm = %g, want %g", gm, beta)
	}
	// Triode: id = beta((vgs−vt)vds − vds²/2).
	idT, _, gdsT := level1(beta, vt, lambda, 1.5, 0.2)
	wantT := beta * (1.0*0.2 - 0.02)
	if math.Abs(idT-wantT) > 1e-15 {
		t.Errorf("triode id = %g, want %g", idT, wantT)
	}
	if gdsT <= 0 {
		t.Error("triode gds must be positive")
	}
}

// TestLevel1ContinuityProperty: the current is continuous across the
// triode/saturation boundary (vds = vov) and monotone in vgs.
func TestLevel1ContinuityProperty(t *testing.T) {
	prop := func(vgsRaw, vdsRaw uint16) bool {
		beta, vt, lambda := 2e-4, 0.55, 0.05
		vgs := float64(vgsRaw%330) / 100 // 0..3.3
		vov := vgs - vt
		if vov <= 0.01 {
			return true
		}
		// Continuity across the boundary.
		lo, _, _ := level1(beta, vt, lambda, vgs, vov-1e-9)
		hi, _, _ := level1(beta, vt, lambda, vgs, vov+1e-9)
		if math.Abs(lo-hi) > 1e-9*beta {
			return false
		}
		// Monotone in vgs at fixed vds.
		vds := float64(vdsRaw%330) / 100
		a, _, _ := level1(beta, vt, lambda, vgs, vds)
		b, _, _ := level1(beta, vt, lambda, vgs+0.1, vds)
		return b >= a
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLevel1DerivativesMatchFiniteDifference(t *testing.T) {
	beta, vt, lambda := 3e-4, 0.55, 0.05
	h := 1e-7
	for _, pt := range [][2]float64{{1.2, 0.3}, {1.2, 2.5}, {2.8, 0.9}, {2.8, 3.0}} {
		vgs, vds := pt[0], pt[1]
		id, gm, gds := level1(beta, vt, lambda, vgs, vds)
		idG, _, _ := level1(beta, vt, lambda, vgs+h, vds)
		idD, _, _ := level1(beta, vt, lambda, vgs, vds+h)
		fdGm := (idG - id) / h
		fdGds := (idD - id) / h
		if math.Abs(fdGm-gm) > 1e-3*beta+1e-6*math.Abs(gm) {
			t.Errorf("gm mismatch at %v: analytic %g, FD %g", pt, gm, fdGm)
		}
		if math.Abs(fdGds-gds) > 1e-3*beta+1e-6*math.Abs(gds) {
			t.Errorf("gds mismatch at %v: analytic %g, FD %g", pt, gds, fdGds)
		}
	}
}

func TestMOSFETPolarityValidation(t *testing.T) {
	n := DefaultNMOS()
	n.Vt0 = -0.5
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NewNMOS with negative Vt0 should panic")
			}
		}()
		NewNMOS("M", 1, 2, 0, n)
	}()
	p := DefaultPMOS()
	p.Vt0 = 0.5
	defer func() {
		if recover() == nil {
			t.Error("NewPMOS with positive Vt0 should panic")
		}
	}()
	NewPMOS("M", 1, 2, 0, p)
}

func TestMOSFETDrainCurrentSigns(t *testing.T) {
	// NMOS conducting: current flows d→s (positive).
	n := NewNMOS("MN", 1, 2, 0, DefaultNMOS())
	v := func(idx int) float64 {
		switch idx {
		case 1:
			return 3.3 // drain
		case 2:
			return 3.3 // gate
		}
		return 0
	}
	if i := n.DrainCurrent(v); i <= 0 {
		t.Errorf("NMOS conduction current = %g, want > 0", i)
	}
	// PMOS with source at VDD (node1), gate 0, drain 0V (ground): current
	// flows source→drain, i.e. from node 1 toward ground: the returned
	// effective-drain→source current is negative in primed space mapping.
	p := NewPMOS("MP", 3, 2, 1, DefaultPMOS())
	vp := func(idx int) float64 {
		switch idx {
		case 1:
			return 3.3 // source at VDD
		case 2:
			return 0 // gate low → on
		case 3:
			return 1.0 // drain
		}
		return 0
	}
	if i := p.DrainCurrent(vp); i == 0 {
		t.Error("PMOS should conduct with Vgs = −3.3V")
	}
}

func TestSwitchConductanceBand(t *testing.T) {
	s := NewSwitch("S", 1, 2, 3, 0, 1.0, 10, 1e9)
	if g := s.conductance(0); g != 1e-9 {
		t.Errorf("off conductance = %g, want 1e-9", g)
	}
	if g := s.conductance(2); g != 0.1 {
		t.Errorf("on conductance = %g, want 0.1", g)
	}
	mid := s.conductance(1.0)
	if mid <= 1e-9 || mid >= 0.1 {
		t.Errorf("band conductance = %g, want strictly between off and on", mid)
	}
}

func TestSwitchValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSwitch with Ron >= Roff should panic")
		}
	}()
	NewSwitch("S", 1, 2, 3, 0, 1, 100, 100)
}

func TestVSourceRequiresWaveform(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewVSource(nil waveform) should panic")
		}
	}()
	NewVSource("V", 1, 0, nil)
}

func TestNegativeComponentValuesPanic(t *testing.T) {
	func() {
		defer func() { _ = recover() }()
		NewResistor("R", 1, 0, -5)
		t.Error("negative resistance should panic")
	}()
	func() {
		defer func() { _ = recover() }()
		NewCapacitor("C", 1, 0, 0)
		t.Error("zero capacitance should panic")
	}()
}
